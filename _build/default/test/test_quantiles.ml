(* Tests for duplicate-resilient quantiles (dyadic FM decomposition). *)

module Rng = Wd_hashing.Rng
module Dq = Wd_aggregate.Distinct_quantiles
module Dc = Wd_protocol.Dc_tracker

let cfg = { Dq.universe = 4_096; rows = 3; cols = 128; bitmaps = 16 }

let mk_family ?(seed = 121) () = Dq.family ~rng:(Rng.create seed) cfg

let test_levels () =
  let fam = mk_family () in
  (* 4096 = 2^12 -> 13 levels. *)
  Alcotest.(check int) "levels" 13 (Dq.levels fam)

let test_rank_accuracy () =
  let fam = mk_family () in
  let q = Dq.Centralized.create ~family:fam in
  (* Insert all even numbers in [0, 4096): rank(x) = x/2 + 1. *)
  for v = 0 to 2_047 do
    Dq.Centralized.add q (2 * v)
  done;
  List.iter
    (fun x ->
      let expected = Float.of_int ((x / 2) + 1) in
      let got = Dq.Centralized.rank q x in
      Alcotest.(check bool)
        (Printf.sprintf "rank(%d) = %.0f vs %.0f" x got expected)
        true
        (Float.abs (got -. expected) /. expected < 0.5))
    [ 255; 1_023; 2_047; 4_095 ]

let test_median_of_uniform_range () =
  let fam = mk_family () in
  let q = Dq.Centralized.create ~family:fam in
  for v = 1_000 to 2_999 do
    Dq.Centralized.add q v
  done;
  let median = Dq.Centralized.median q in
  Alcotest.(check bool)
    (Printf.sprintf "median %d in [1600, 2400]" median)
    true
    (median >= 1_600 && median <= 2_400)

let test_duplicate_resilience () =
  (* A heavily repeated low value must not drag the quantile down. *)
  let fam = mk_family () in
  let q = Dq.Centralized.create ~family:fam in
  for v = 2_000 to 2_999 do
    Dq.Centralized.add q v
  done;
  for _ = 1 to 50_000 do
    Dq.Centralized.add q 5
  done;
  (* Distinct items: {5} U [2000, 3000): median ~ 2500, despite 5
     accounting for 98% of arrivals. *)
  let median = Dq.Centralized.median q in
  Alcotest.(check bool)
    (Printf.sprintf "duplicate-resilient median %d in [2100, 2900]" median)
    true
    (median >= 2_100 && median <= 2_900)

let test_quantile_monotone_in_q () =
  let fam = mk_family () in
  let q = Dq.Centralized.create ~family:fam in
  let rng = Rng.create 122 in
  for _ = 1 to 3_000 do
    Dq.Centralized.add q (Rng.int rng 4_096)
  done;
  let q25 = Dq.Centralized.quantile q 0.25 in
  let q50 = Dq.Centralized.quantile q 0.5 in
  let q75 = Dq.Centralized.quantile q 0.75 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %d <= %d <= %d" q25 q50 q75)
    true
    (q25 <= q50 && q50 <= q75)

let test_universe_validation () =
  let fam = mk_family () in
  let q = Dq.Centralized.create ~family:fam in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Distinct_quantiles: item outside the universe")
    (fun () -> Dq.Centralized.add q 4_096)

let test_exact_helpers () =
  let m = Hashtbl.create 16 in
  List.iter (fun (v, c) -> Hashtbl.replace m v c) [ (1, 5); (10, 1); (20, 2) ];
  Alcotest.(check int) "exact rank" 2 (Dq.exact_rank m 15);
  Alcotest.(check (option int)) "exact median" (Some 10)
    (Dq.exact_quantile m 0.5);
  Alcotest.(check (option int)) "empty" None
    (Dq.exact_quantile (Hashtbl.create 1) 0.5)

(* --- Tracked --- *)

let test_tracked_matches_centralized algo () =
  let fam = mk_family () in
  let central = Dq.Centralized.create ~family:fam in
  let tracked =
    Dq.Tracked.create ~algorithm:algo ~theta:0.3 ~sites:3 ~family:fam ()
  in
  let rng = Rng.create 123 in
  for j = 0 to 4_999 do
    let v = 1_000 + Rng.int rng 2_000 in
    Dq.Centralized.add central v;
    Dq.Tracked.observe tracked ~site:(j mod 3) v
  done;
  let mc = Dq.Centralized.median central in
  let mt = Dq.Tracked.median tracked in
  Alcotest.(check bool)
    (Printf.sprintf "%s: tracked median %d vs central %d"
       (Dc.algorithm_to_string algo) mt mc)
    true
    (abs (mt - mc) < 400);
  Alcotest.(check bool) "tracker paid some communication" true
    (Wd_net.Network.total_bytes (Dq.Tracked.network tracked) > 0)

let test_tracked_distinct_estimate () =
  let fam = mk_family () in
  let tracked =
    Dq.Tracked.create ~algorithm:Dc.LS ~theta:0.3 ~sites:2 ~family:fam ()
  in
  for v = 0 to 1_999 do
    Dq.Tracked.observe tracked ~site:(v mod 2) v
  done;
  let d = Dq.Tracked.distinct tracked in
  Alcotest.(check bool)
    (Printf.sprintf "distinct %.0f ~ 2000" d)
    true
    (Float.abs (d -. 2_000.0) /. 2_000.0 < 0.5)

let () =
  let per_algo name f =
    List.map
      (fun a ->
        Alcotest.test_case
          (Printf.sprintf "%s (%s)" name (Dc.algorithm_to_string a))
          `Quick (f a))
      [ Dc.NS; Dc.LS ]
  in
  Alcotest.run "distinct-quantiles"
    [
      ( "centralized",
        [
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "rank accuracy" `Quick test_rank_accuracy;
          Alcotest.test_case "median uniform" `Quick test_median_of_uniform_range;
          Alcotest.test_case "duplicate resilience" `Quick
            test_duplicate_resilience;
          Alcotest.test_case "quantile monotone" `Quick
            test_quantile_monotone_in_q;
          Alcotest.test_case "universe validation" `Quick test_universe_validation;
          Alcotest.test_case "exact helpers" `Quick test_exact_helpers;
        ] );
      ( "tracked",
        per_algo "matches centralized" test_tracked_matches_centralized
        @ [
            Alcotest.test_case "distinct estimate" `Quick
              test_tracked_distinct_estimate;
          ] );
    ]
