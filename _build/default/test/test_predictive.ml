(* Tests for the prediction-model tracker (Section 8 extension). *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module P = Wd_protocol.Predictive
module Network = Wd_net.Network

let mk_family ?(seed = 141) ?(bitmaps = 256) () =
  Fm.family_custom ~rng:(Rng.create seed) ~variant:Fm.Stochastic ~bitmaps

(* Steady growth: each event fresh with probability [p], else a repeat. *)
let steady_stream ~events ~sites ~p seed =
  let rng = Rng.create seed in
  let fresh = ref 0 in
  Array.init events (fun _ ->
      let site = Rng.int rng sites in
      let v =
        if !fresh = 0 || Rng.float rng 1.0 < p then begin
          incr fresh;
          !fresh - 1
        end
        else Rng.int rng !fresh
      in
      (site, v))

let run model stream ~sites ~theta =
  let tr = P.create ~model ~theta ~sites ~family:(mk_family ()) () in
  Array.iter (fun (site, v) -> P.observe tr ~site v) stream;
  tr

let distinct stream =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun (_, v) -> Hashtbl.replace seen v ()) stream;
  Hashtbl.length seen

let test_static_tracks_accurately () =
  let stream = steady_stream ~events:60_000 ~sites:4 ~p:0.5 142 in
  let tr = run P.Static stream ~sites:4 ~theta:0.1 in
  let truth = Float.of_int (distinct stream) in
  let err = Float.abs (P.estimate tr -. truth) /. truth in
  Alcotest.(check bool)
    (Printf.sprintf "static err %.3f" err)
    true (err < 0.15)

let test_linear_tracks_accurately () =
  let stream = steady_stream ~events:60_000 ~sites:4 ~p:0.5 143 in
  let tr = run P.Linear_growth stream ~sites:4 ~theta:0.1 in
  let truth = Float.of_int (distinct stream) in
  let err = Float.abs (P.estimate tr -. truth) /. truth in
  Alcotest.(check bool)
    (Printf.sprintf "linear err %.3f" err)
    true (err < 0.15)

let test_linear_saves_syncs_on_steady_growth () =
  let stream = steady_stream ~events:60_000 ~sites:4 ~p:0.5 144 in
  let static = run P.Static stream ~sites:4 ~theta:0.1 in
  let linear = run P.Linear_growth stream ~sites:4 ~theta:0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "linear %d syncs <= static %d syncs" (P.sends linear)
       (P.sends static))
    true
    (P.sends linear <= P.sends static)

let test_gamma_learns_overlap () =
  (* Disjoint sites: every locally-new item is globally new, gamma ~ 1.
     Fully mirrored sites: local growth mostly duplicates, gamma low. *)
  let sites = 4 and events = 40_000 in
  let disjoint =
    Array.init events (fun j -> (j mod sites, j))
  in
  let rng = Rng.create 145 in
  let mirrored =
    Array.init events (fun j -> (Rng.int rng sites, j / sites))
  in
  let g stream = P.gamma (run P.Linear_growth stream ~sites ~theta:0.1) in
  let g_disjoint = g disjoint and g_mirrored = g mirrored in
  Alcotest.(check bool)
    (Printf.sprintf "gamma disjoint %.2f > mirrored %.2f" g_disjoint g_mirrored)
    true
    (g_disjoint > g_mirrored);
  Alcotest.(check bool) "disjoint near 1" true (g_disjoint > 0.7)

let test_duplicates_are_free () =
  (* Pure duplicates after a warmup cause no further syncs: the sketch
     never changes. *)
  let tr = P.create ~model:P.Linear_growth ~theta:0.1 ~sites:2 ~family:(mk_family ()) () in
  for v = 0 to 4_999 do
    P.observe tr ~site:(v mod 2) v
  done;
  let sends_before = P.sends tr in
  for _ = 1 to 3 do
    for v = 0 to 4_999 do
      P.observe tr ~site:(v mod 2) v
    done
  done;
  Alcotest.(check int) "no syncs from duplicates" sends_before (P.sends tr)

let test_validation () =
  Alcotest.check_raises "theta > 0"
    (Invalid_argument "Predictive.create: theta must be positive") (fun () ->
      ignore
        (P.create ~model:P.Static ~theta:0.0 ~sites:2 ~family:(mk_family ()) ()
          : P.t));
  let tr = P.create ~model:P.Static ~theta:0.1 ~sites:2 ~family:(mk_family ()) () in
  Alcotest.check_raises "site range"
    (Invalid_argument "Predictive.observe: site index out of range") (fun () ->
      P.observe tr ~site:3 1)

let prop_estimate_nonnegative =
  QCheck.Test.make ~name:"estimates stay nonnegative" ~count:30
    QCheck.(
      pair (int_range 1 4)
        (list_of_size (Gen.int_range 1 300) (int_range 0 100)))
    (fun (k, items) ->
      let tr =
        P.create ~model:P.Linear_growth ~theta:0.2 ~sites:k
          ~family:(mk_family ~bitmaps:16 ()) ()
      in
      List.iteri (fun j v -> P.observe tr ~site:(j mod k) v) items;
      P.estimate tr >= 0.0 && P.gamma tr >= 0.0 && P.gamma tr <= 1.0)

let () =
  Alcotest.run "predictive"
    [
      ( "accuracy",
        [
          Alcotest.test_case "static" `Quick test_static_tracks_accurately;
          Alcotest.test_case "linear" `Quick test_linear_tracks_accurately;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "linear saves syncs" `Quick
            test_linear_saves_syncs_on_steady_growth;
          Alcotest.test_case "gamma learns overlap" `Quick test_gamma_learns_overlap;
          Alcotest.test_case "duplicates free" `Quick test_duplicates_are_free;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_estimate_nonnegative ]);
    ]
