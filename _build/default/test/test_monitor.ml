(* Tests for the bundled Monitor facade. *)

module M = Whats_different.Monitor
module Rng = Wd_hashing.Rng

let test_unkeyed_round () =
  let m = M.create (M.default_config ~sites:3) in
  let rng = Rng.create 201 in
  let truth = Hashtbl.create 256 in
  (* 4000 distinct events, each seen 1-3 times across sites. *)
  for v = 0 to 3_999 do
    let copies = 1 + Rng.int rng 3 in
    Hashtbl.replace truth v copies;
    for c = 0 to copies - 1 do
      M.observe m ~site:((v + c) mod 3) v
    done
  done;
  let d = M.distinct m in
  Alcotest.(check bool)
    (Printf.sprintf "distinct %.0f ~ 4000" d)
    true
    (Float.abs (d -. 4_000.0) /. 4_000.0 < 0.15);
  let true_unique =
    Hashtbl.fold (fun _ c acc -> if c = 1 then acc + 1 else acc) truth 0
  in
  let u = M.unique m in
  Alcotest.(check bool)
    (Printf.sprintf "unique %.0f ~ %d" u true_unique)
    true
    (Float.abs (u -. Float.of_int true_unique) /. Float.of_int true_unique
    < 0.25);
  (match M.median_duplication m with
  | Some median ->
    Alcotest.(check bool)
      (Printf.sprintf "median duplication %d in {1,2,3}" median)
      true
      (median >= 1 && median <= 3)
  | None -> Alcotest.fail "no sample");
  Alcotest.(check bool) "fraction <=3 is 1" true
    (M.duplication_fraction m (fun c -> c <= 3) = 1.0);
  Alcotest.(check bool) "paid some bytes" true (M.total_bytes m > 0)

let test_keyed_round () =
  let m = M.create (M.default_config ~sites:4) in
  (* Key 5 has 400 distinct partners; keys 10..19 have 10 each; every
     pair repeated 3 times. *)
  for w = 0 to 399 do
    for r = 0 to 2 do
      M.observe_pair m ~site:(r mod 4) ~v:5 ~w
    done
  done;
  for v = 10 to 19 do
    for w = 0 to 9 do
      for r = 0 to 2 do
        M.observe_pair m ~site:(r mod 4) ~v ~w
      done
    done
  done;
  (match M.top_keys m ~k:1 with
  | [ (v, _) ] -> Alcotest.(check int) "heavy key found" 5 v
  | _ -> Alcotest.fail "no top key");
  let deg = M.key_degree m 5 in
  Alcotest.(check bool)
    (Printf.sprintf "degree %.0f ~ 400" deg)
    true
    (Float.abs (deg -. 400.0) /. 400.0 < 0.5);
  (* Pairs count once each as distinct events despite 3x repetition. *)
  let d = M.distinct m in
  Alcotest.(check bool)
    (Printf.sprintf "distinct pairs %.0f ~ 500" d)
    true
    (Float.abs (d -. 500.0) /. 500.0 < 0.25)

let test_hh_disabled () =
  let cfg = { (M.default_config ~sites:2) with M.hh = None } in
  let m = M.create cfg in
  M.observe_pair m ~site:0 ~v:1 ~w:2;
  Alcotest.(check (list (pair int (float 0.0)))) "no ranking" []
    (M.top_keys m ~k:3);
  Alcotest.(check (float 0.0)) "degree zero" 0.0 (M.key_degree m 1);
  Alcotest.(check bool) "pair still counted" true (M.distinct m > 0.0);
  match M.bytes_breakdown m with
  | [ _; _; ("heavy-hitters", 0) ] -> ()
  | _ -> Alcotest.fail "unexpected breakdown shape"

let test_breakdown_sums () =
  let m = M.create (M.default_config ~sites:2) in
  for v = 0 to 999 do
    M.observe m ~site:(v mod 2) v
  done;
  let total = M.total_bytes m in
  let parts = List.fold_left (fun acc (_, b) -> acc + b) 0 (M.bytes_breakdown m) in
  Alcotest.(check int) "breakdown sums to total" total parts

let () =
  Alcotest.run "monitor"
    [
      ( "facade",
        [
          Alcotest.test_case "unkeyed events" `Quick test_unkeyed_round;
          Alcotest.test_case "keyed events" `Quick test_keyed_round;
          Alcotest.test_case "hh disabled" `Quick test_hh_disabled;
          Alcotest.test_case "breakdown" `Quick test_breakdown_sums;
        ] );
    ]
