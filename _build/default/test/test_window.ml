(* Tests for the sliding-window FM sketch and the windowed distributed
   tracker (Section 8 extension). *)

module Rng = Wd_hashing.Rng
module Wfm = Wd_sketch.Fm_window
module W = Wd_protocol.Window_tracker
module Network = Wd_net.Network

let mk_family ?(seed = 131) ?(bitmaps = 256) () =
  Wfm.family_custom ~rng:(Rng.create seed) ~bitmaps

(* --- Fm_window sketch --- *)

let test_empty_estimates_zero_items () =
  let sk = Wfm.create (mk_family ()) in
  Alcotest.(check bool) "empty is tiny" true
    (Wfm.estimate sk ~now:100 ~window:50 < 2.0);
  Alcotest.(check int) "empty has no wire size" 0 (Wfm.size_bytes sk)

let test_window_zero_is_zero () =
  let sk = Wfm.create (mk_family ()) in
  ignore (Wfm.add sk ~time:5 42 : bool);
  Alcotest.(check (float 0.0)) "window 0" 0.0 (Wfm.estimate sk ~now:5 ~window:0)

let test_full_window_tracks_distinct () =
  let sk = Wfm.create (mk_family ()) in
  let n = 50_000 in
  for v = 0 to n - 1 do
    ignore (Wfm.add sk ~time:v v : bool)
  done;
  let est = Wfm.estimate sk ~now:(n - 1) ~window:n in
  let rel = Float.abs (est -. Float.of_int n) /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "full-window estimate %.0f rel %.3f" est rel)
    true (rel < 0.2);
  Alcotest.(check (float 1.0)) "estimate_all agrees" est (Wfm.estimate_all sk)

let test_expiry () =
  (* 10k distinct in [0, 10k), then 10k quiet ticks: a window covering
     only the quiet period must estimate ~0; a window covering
     everything still sees 10k. *)
  let sk = Wfm.create (mk_family ()) in
  for v = 0 to 9_999 do
    ignore (Wfm.add sk ~time:v v : bool)
  done;
  let now = 20_000 in
  Alcotest.(check bool) "expired window near zero" true
    (Wfm.estimate sk ~now ~window:5_000 < 50.0);
  let full = Wfm.estimate sk ~now ~window:30_000 in
  Alcotest.(check bool)
    (Printf.sprintf "full window keeps %.0f" full)
    true
    (Float.abs (full -. 10_000.0) /. 10_000.0 < 0.2)

let test_refresh_keeps_alive () =
  (* Items re-arriving keep their bits fresh: a re-observed set stays in
     the window even after its original timestamps expired. *)
  let sk = Wfm.create (mk_family ~bitmaps:64 ()) in
  for v = 0 to 999 do
    ignore (Wfm.add sk ~time:0 v : bool)
  done;
  for v = 0 to 999 do
    ignore (Wfm.add sk ~time:10_000 v : bool)
  done;
  let est = Wfm.estimate sk ~now:10_500 ~window:2_000 in
  Alcotest.(check bool)
    (Printf.sprintf "refreshed set visible: %.0f" est)
    true
    (est > 500.0 && est < 2_000.0)

let test_merge_is_pointwise_max () =
  let fam = mk_family ~bitmaps:32 () in
  let a = Wfm.create fam and b = Wfm.create fam and u = Wfm.create fam in
  for v = 0 to 499 do
    ignore (Wfm.add a ~time:v v : bool);
    ignore (Wfm.add u ~time:v v : bool)
  done;
  for v = 250 to 749 do
    ignore (Wfm.add b ~time:(1_000 + v) v : bool);
    ignore (Wfm.add u ~time:(1_000 + v) v : bool)
  done;
  Wfm.merge_into ~dst:a b;
  Alcotest.(check bool) "merge equals union processing" true (Wfm.equal a u)

let test_delta_bytes () =
  let fam = mk_family ~bitmaps:32 () in
  let a = Wfm.create fam and b = Wfm.create fam in
  ignore (Wfm.add a ~time:1 7 : bool);
  ignore (Wfm.add b ~time:1 7 : bool);
  Alcotest.(check int) "identical -> empty delta" 0 (Wfm.delta_bytes ~from:a b);
  ignore (Wfm.add b ~time:9 7 : bool);
  Alcotest.(check int) "refreshed timestamp -> one cell" 8
    (Wfm.delta_bytes ~from:a b);
  Alcotest.(check int) "other direction empty" 0 (Wfm.delta_bytes ~from:b a)

let test_add_validates_time () =
  let sk = Wfm.create (mk_family ()) in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Fm_window.add: time must be >= 0") (fun () ->
      ignore (Wfm.add sk ~time:(-1) 3 : bool))

(* --- Window tracker --- *)

let drifting_stream ~events ~sites ~per_phase ~phases seed =
  let rng = Rng.create seed in
  let phase_len = events / phases in
  Array.init events (fun j ->
      ( Rng.int rng sites,
        ((j / phase_len) * per_phase) + Rng.int rng per_phase ))

let exact_window items ~now ~window =
  let seen = Hashtbl.create 256 in
  for j = max 0 (now - window + 1) to now do
    Hashtbl.replace seen (snd items.(j)) ()
  done;
  Hashtbl.length seen

let test_tracker_tracks_rise_and_fall algo () =
  let events = 30_000 and sites = 3 and window = 6_000 in
  let items = drifting_stream ~events ~sites ~per_phase:1_500 ~phases:6 132 in
  let family = mk_family ~seed:133 ~bitmaps:256 () in
  let tr = W.create ~algorithm:algo ~theta:0.1 ~window ~sites ~family () in
  let errs = ref [] in
  Array.iteri
    (fun j (site, v) ->
      W.observe tr ~site ~time:j v;
      if j mod 2_000 = 1_999 then begin
        let truth = exact_window items ~now:j ~window in
        let est = W.estimate tr ~now:j in
        errs := (Float.abs (est -. Float.of_int truth) /. Float.of_int truth) :: !errs
      end)
    items;
  let mean =
    List.fold_left ( +. ) 0.0 !errs /. Float.of_int (List.length !errs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s mean windowed error %.3f < 0.25"
       (W.algorithm_to_string algo) mean)
    true (mean < 0.25)

let test_tick_reports_decay () =
  (* After traffic stops, ticks alone must bring the coordinator's
     estimate down as the window empties. *)
  let sites = 2 and window = 1_000 in
  let family = mk_family ~seed:134 ~bitmaps:128 () in
  let tr = W.create ~algorithm:W.LS ~theta:0.1 ~window ~sites ~family () in
  for v = 0 to 4_999 do
    W.observe tr ~site:(v mod 2) ~time:v v
  done;
  let busy = W.estimate tr ~now:4_999 in
  for tick = 1 to 20 do
    W.tick tr ~time:(4_999 + (tick * 100))
  done;
  let quiet = W.estimate tr ~now:6_999 in
  Alcotest.(check bool)
    (Printf.sprintf "estimate decayed: %.0f -> %.0f" busy quiet)
    true
    (quiet < 0.2 *. busy)

let test_tracker_cheaper_than_forwarding_on_duplicates () =
  (* Heavy duplication within the window: tracking must beat raw
     forwarding. *)
  let sites = 4 and window = 40_000 in
  let events = 40_000 in
  let rng = Rng.create 135 in
  let family = mk_family ~seed:136 ~bitmaps:64 () in
  let tr = W.create ~algorithm:W.NS ~theta:0.2 ~window ~sites ~family () in
  for j = 0 to events - 1 do
    W.observe tr ~site:(Rng.int rng sites) ~time:j (Rng.int rng 500)
  done;
  let got = Network.total_bytes (W.network tr) in
  let exact = W.exact_bytes ~updates:events in
  Alcotest.(check bool)
    (Printf.sprintf "tracked %d < forward-all %d" got exact)
    true (got < exact)

let test_tracker_validation () =
  let family = mk_family () in
  Alcotest.check_raises "window >= 1"
    (Invalid_argument "Window_tracker.create: window must be >= 1") (fun () ->
      ignore
        (W.create ~algorithm:W.NS ~theta:0.1 ~window:0 ~sites:2 ~family ()
          : W.t));
  let tr = W.create ~algorithm:W.NS ~theta:0.1 ~window:10 ~sites:2 ~family () in
  W.observe tr ~site:0 ~time:5 1;
  Alcotest.check_raises "time monotone"
    (Invalid_argument "Window_tracker.observe: time must be nondecreasing")
    (fun () -> W.observe tr ~site:0 ~time:4 2)

(* --- QCheck --- *)

let prop_merge_equals_direct =
  QCheck.Test.make ~name:"windowed merge = direct insertion" ~count:50
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 100) (pair (int_range 0 200) (int_range 0 100)))
        (list_of_size (Gen.int_range 0 100) (pair (int_range 0 200) (int_range 0 100))))
    (fun (xs, ys) ->
      let fam = mk_family ~seed:137 ~bitmaps:8 () in
      let a = Wfm.create fam and b = Wfm.create fam and d = Wfm.create fam in
      List.iter (fun (t, v) -> ignore (Wfm.add a ~time:t v : bool)) xs;
      List.iter (fun (t, v) -> ignore (Wfm.add b ~time:t v : bool)) ys;
      List.iter (fun (t, v) -> ignore (Wfm.add d ~time:t v : bool)) (xs @ ys);
      Wfm.merge_into ~dst:a b;
      Wfm.equal a d)

let prop_estimate_monotone_in_window =
  QCheck.Test.make ~name:"estimate monotone in window size" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 200) (pair (int_range 0 500) (int_range 0 200)))
    (fun events ->
      let fam = mk_family ~seed:138 ~bitmaps:16 () in
      let sk = Wfm.create fam in
      List.iter (fun (t, v) -> ignore (Wfm.add sk ~time:t v : bool)) events;
      let now = 500 in
      let windows = [ 10; 50; 100; 250; 600 ] in
      let estimates = List.map (fun w -> Wfm.estimate sk ~now ~window:w) windows in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      monotone estimates)

let () =
  let per_algo name f =
    List.map
      (fun a ->
        Alcotest.test_case
          (Printf.sprintf "%s (%s)" name (W.algorithm_to_string a))
          `Quick (f a))
      W.all_algorithms
  in
  Alcotest.run "window"
    [
      ( "sketch",
        [
          Alcotest.test_case "empty" `Quick test_empty_estimates_zero_items;
          Alcotest.test_case "window zero" `Quick test_window_zero_is_zero;
          Alcotest.test_case "full window" `Quick test_full_window_tracks_distinct;
          Alcotest.test_case "expiry" `Quick test_expiry;
          Alcotest.test_case "refresh" `Quick test_refresh_keeps_alive;
          Alcotest.test_case "merge max" `Quick test_merge_is_pointwise_max;
          Alcotest.test_case "delta bytes" `Quick test_delta_bytes;
          Alcotest.test_case "time validation" `Quick test_add_validates_time;
        ] );
      ( "tracker",
        per_algo "rise and fall" test_tracker_tracks_rise_and_fall
        @ [
            Alcotest.test_case "tick decay" `Quick test_tick_reports_decay;
            Alcotest.test_case "cheaper than forwarding" `Quick
              test_tracker_cheaper_than_forwarding_on_duplicates;
            Alcotest.test_case "validation" `Quick test_tracker_validation;
          ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_merge_equals_direct; prop_estimate_monotone_in_window ] );
    ]
