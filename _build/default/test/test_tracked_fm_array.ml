(* Direct tests for the per-cell tracked FM array (the machinery behind
   distributed distinct heavy hitters and quantiles). *)

module Rng = Wd_hashing.Rng
module Fm_array = Wd_aggregate.Fm_array
module Tracked = Wd_aggregate.Tracked_fm_array
module Dc = Wd_protocol.Dc_tracker
module Network = Wd_net.Network

let cfg = { Fm_array.rows = 3; cols = 64; bitmaps = 12 }

let mk_family ?(seed = 211) () = Fm_array.family ~rng:(Rng.create seed) cfg

let test_tracked_converges_to_centralized algo () =
  (* After a full pass, the coordinator's per-key estimates should be
     close to the centralized array's on the same inputs. *)
  let fam = mk_family () in
  let central = Fm_array.create fam in
  let tracked =
    Tracked.create ~algorithm:algo ~theta:0.2 ~sites:3 ~family:fam ()
  in
  let rng = Rng.create 212 in
  for j = 0 to 19_999 do
    let key = Rng.int rng 40 in
    let element = Rng.int rng 2_000 in
    ignore (Fm_array.add central ~key ~element : bool);
    Tracked.observe tracked ~site:(j mod 3) ~key ~element
  done;
  for key = 0 to 39 do
    let c = Fm_array.estimate central ~key in
    let t = Tracked.estimate tracked ~key in
    Alcotest.(check bool)
      (Printf.sprintf "%s key %d: tracked %.0f vs central %.0f"
         (Dc.algorithm_to_string algo) key t c)
      true
      (Float.abs (t -. c) <= 0.5 *. Float.max c 20.0)
  done

let test_shared_ledger () =
  let fam = mk_family () in
  let net = Network.create ~sites:2 () in
  let a =
    Tracked.create ~network:net ~algorithm:Dc.NS ~theta:0.2 ~sites:2
      ~family:fam ()
  in
  let b =
    Tracked.create ~network:net ~algorithm:Dc.NS ~theta:0.2 ~sites:2
      ~family:fam ()
  in
  Tracked.observe a ~site:0 ~key:1 ~element:1;
  Tracked.observe b ~site:1 ~key:2 ~element:2;
  Alcotest.(check bool) "both charged the shared ledger" true
    (Network.total_bytes net > 0);
  Alcotest.(check int) "same ledger visible from both" (Network.total_bytes net)
    (Network.total_bytes (Tracked.network a));
  Alcotest.(check int) "same ledger visible from both (b)"
    (Network.total_bytes net)
    (Network.total_bytes (Tracked.network b))

let test_duplicates_trigger_nothing_after_saturation () =
  let fam = mk_family () in
  let tracked =
    Tracked.create ~algorithm:Dc.NS ~theta:0.2 ~sites:2 ~family:fam ()
  in
  for e = 0 to 499 do
    Tracked.observe tracked ~site:(e mod 2) ~key:7 ~element:e
  done;
  let sends = Tracked.sends tracked in
  (* Replaying identical pairs cannot change any cell, hence no sends. *)
  for e = 0 to 499 do
    Tracked.observe tracked ~site:(e mod 2) ~key:7 ~element:e
  done;
  Alcotest.(check int) "no sends from pure duplicates" sends
    (Tracked.sends tracked)

let test_cold_keys_stay_cheap () =
  let fam = mk_family () in
  let tracked =
    Tracked.create ~algorithm:Dc.NS ~theta:0.2 ~sites:2 ~family:fam ()
  in
  for e = 0 to 999 do
    Tracked.observe tracked ~site:(e mod 2) ~key:(e mod 8) ~element:e
  done;
  (* A key far outside the observed universe should estimate near the
     collision noise floor, well under the hot keys. *)
  let hot = Tracked.estimate tracked ~key:3 in
  let cold = Tracked.estimate tracked ~key:987_654 in
  Alcotest.(check bool)
    (Printf.sprintf "cold %.1f < hot %.1f" cold hot)
    true (cold < hot)

let () =
  let per_algo name f =
    List.map
      (fun a ->
        Alcotest.test_case
          (Printf.sprintf "%s (%s)" name (Dc.algorithm_to_string a))
          `Quick (f a))
      [ Dc.NS; Dc.SC; Dc.LS ]
  in
  Alcotest.run "tracked-fm-array"
    [
      ("convergence", per_algo "matches centralized" test_tracked_converges_to_centralized);
      ( "mechanics",
        [
          Alcotest.test_case "shared ledger" `Quick test_shared_ledger;
          Alcotest.test_case "duplicate saturation" `Quick
            test_duplicates_trigger_nothing_after_saturation;
          Alcotest.test_case "cold keys" `Quick test_cold_keys_stay_cheap;
        ] );
    ]
