(* Unit and property tests for the hashing substrate. *)

module Rng = Wd_hashing.Rng
module Splitmix = Wd_hashing.Splitmix
module Universal = Wd_hashing.Universal
module Tabulation = Wd_hashing.Tabulation
module Geometric = Wd_hashing.Geometric

let check_float = Alcotest.(check (float 1e-9))

(* --- Splitmix --- *)

let test_mix_deterministic () =
  Alcotest.(check bool)
    "same input same output" true
    (Int64.equal (Splitmix.mix 12345L) (Splitmix.mix 12345L));
  Alcotest.(check bool)
    "different inputs differ" false
    (Int64.equal (Splitmix.mix 1L) (Splitmix.mix 2L))

let test_mix_avalanche () =
  (* Flipping one input bit should flip roughly half the output bits. *)
  let popcount x =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr c
    done;
    !c
  in
  let total = ref 0 in
  let trials = 200 in
  for t = 1 to trials do
    let x = Int64.of_int (t * 7919) in
    let y = Int64.logxor x (Int64.shift_left 1L (t mod 64)) in
    total := !total + popcount (Int64.logxor (Splitmix.mix x) (Splitmix.mix y))
  done;
  let avg = Float.of_int !total /. Float.of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "avalanche average %.1f in [24, 40]" avg)
    true
    (avg > 24.0 && avg < 40.0)

let test_generator_streams () =
  let a = Splitmix.create 9L and b = Splitmix.create 9L in
  for _ = 1 to 10 do
    Alcotest.(check bool)
      "equal seeds give equal streams" true
      (Int64.equal (Splitmix.next a) (Splitmix.next b))
  done;
  let c = Splitmix.split a in
  Alcotest.(check bool)
    "split stream diverges" false
    (Int64.equal (Splitmix.next a) (Splitmix.next c))

let test_state_roundtrip () =
  let g = Splitmix.create 77L in
  ignore (Splitmix.next g : int64);
  let snapshot = Splitmix.state g in
  let h = Splitmix.of_state snapshot in
  Alcotest.(check bool)
    "restored state continues identically" true
    (Int64.equal (Splitmix.next g) (Splitmix.next h))

(* --- Rng --- *)

let test_rng_copy_independent () =
  let g = Rng.create 3 in
  ignore (Rng.int64 g : int64);
  let h = Rng.copy g in
  let from_g = Rng.int64 g in
  let from_h = Rng.int64 h in
  Alcotest.(check bool) "copy continues from same point" true
    (Int64.equal from_g from_h);
  ignore (Rng.int64 g : int64);
  let g3 = Rng.int64 g and h2 = Rng.int64 h in
  Alcotest.(check bool) "streams advance independently" false
    (Int64.equal g3 h2)

let test_rng_int_bounds () =
  let g = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let g = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0 : int))

let test_rng_int_uniformity () =
  (* Chi-square-ish sanity: each of 10 buckets gets 10% +- 2.5%. *)
  let g = Rng.create 6 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let f = Float.of_int c /. Float.of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d frequency %.4f" i f)
        true
        (f > 0.075 && f < 0.125))
    buckets

let test_rng_float_range () =
  let g = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_geometric_level_distribution () =
  let g = Rng.create 8 in
  let n = 200_000 in
  let at_least = Array.make 8 0 in
  for _ = 1 to n do
    let l = Rng.geometric_level g in
    for i = 0 to min l 7 do
      at_least.(i) <- at_least.(i) + 1
    done
  done;
  (* Pr[level >= i] = 2^-i. *)
  for i = 0 to 7 do
    let expected = 2.0 ** Float.of_int (-i) in
    let got = Float.of_int at_least.(i) /. Float.of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "Pr[level >= %d] = %.4f vs %.4f" i got expected)
      true
      (Float.abs (got -. expected) < 0.02 +. (0.1 *. expected))
  done

(* --- Universal / Tabulation / Geometric --- *)

let test_universal_deterministic () =
  let h = Universal.create ~seed:99L in
  Alcotest.(check bool) "stable" true
    (Int64.equal (Universal.hash h 42) (Universal.hash h 42))

let test_universal_seeds_differ () =
  let h1 = Universal.create ~seed:1L and h2 = Universal.create ~seed:2L in
  let differ = ref 0 in
  for v = 0 to 99 do
    if not (Int64.equal (Universal.hash h1 v) (Universal.hash h2 v)) then
      incr differ
  done;
  Alcotest.(check bool) "most outputs differ across seeds" true (!differ > 95)

let test_to_range () =
  let g = Rng.create 10 in
  let h = Universal.of_rng g in
  for v = 0 to 999 do
    let r = Universal.to_range h ~buckets:7 v in
    Alcotest.(check bool) "bucket in range" true (r >= 0 && r < 7)
  done

let test_multiply_shift_spread () =
  let g = Rng.create 11 in
  let h = Universal.multiply_shift g in
  let buckets = Array.make 16 0 in
  for v = 0 to 9999 do
    let r = Universal.to_range h ~buckets:16 v in
    buckets.(r) <- buckets.(r) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform buckets" true (c > 400 && c < 900))
    buckets

let test_tabulation_spread () =
  let g = Rng.create 12 in
  let h = Tabulation.create g in
  let buckets = Array.make 16 0 in
  for v = 0 to 9999 do
    let r = Int64.to_int (Int64.logand (Tabulation.hash h v) 15L) in
    buckets.(r) <- buckets.(r) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform buckets" true (c > 400 && c < 900))
    buckets

let test_trailing_zeros () =
  Alcotest.(check int) "tz 0 = 64" 64 (Geometric.trailing_zeros 0L);
  Alcotest.(check int) "tz 1 = 0" 0 (Geometric.trailing_zeros 1L);
  Alcotest.(check int) "tz 8 = 3" 3 (Geometric.trailing_zeros 8L);
  Alcotest.(check int) "tz 2^40 = 40" 40
    (Geometric.trailing_zeros (Int64.shift_left 1L 40));
  Alcotest.(check int) "tz min_int = 63" 63
    (Geometric.trailing_zeros Int64.min_int)

let test_geometric_level_of_hash () =
  let g = Rng.create 13 in
  let h = Universal.of_rng g in
  let n = 100_000 in
  let count = Array.make 4 0 in
  for v = 0 to n - 1 do
    let l = Geometric.level h v in
    Alcotest.(check bool) "level within [0,63]" true (l >= 0 && l <= 63);
    if l <= 3 then count.(l) <- count.(l) + 1
  done;
  (* Pr[level = i] = 2^-(i+1). *)
  for i = 0 to 3 do
    let expected = 2.0 ** Float.of_int (-(i + 1)) in
    let got = Float.of_int count.(i) /. Float.of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "Pr[level = %d] ~ %.3f" i expected)
      true
      (Float.abs (got -. expected) < 0.015)
  done

(* --- QCheck properties --- *)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset"
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      let b = Array.copy a in
      Rng.shuffle_in_place (Rng.create seed) b;
      List.sort compare (Array.to_list a)
      = List.sort compare (Array.to_list b))

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Rng.create seed in
      let v = Rng.int g bound in
      v >= 0 && v < bound)

let prop_mix_injective_on_small_domain =
  QCheck.Test.make ~name:"mix has no collisions on small domains"
    QCheck.(int_range 0 10_000)
    (fun base ->
      let seen = Hashtbl.create 256 in
      let ok = ref true in
      for v = base to base + 100 do
        let h = Splitmix.mix (Int64.of_int v) in
        if Hashtbl.mem seen h then ok := false;
        Hashtbl.replace seen h ()
      done;
      !ok)

let () =
  ignore check_float;
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_shuffle_is_permutation;
        prop_rng_int_in_bounds;
        prop_mix_injective_on_small_domain;
      ]
  in
  Alcotest.run "hashing"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_mix_deterministic;
          Alcotest.test_case "avalanche" `Quick test_mix_avalanche;
          Alcotest.test_case "generator streams" `Quick test_generator_streams;
          Alcotest.test_case "state roundtrip" `Quick test_state_roundtrip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "copy independence" `Quick test_rng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects 0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "geometric level" `Quick test_geometric_level_distribution;
        ] );
      ( "hash families",
        [
          Alcotest.test_case "universal deterministic" `Quick test_universal_deterministic;
          Alcotest.test_case "universal seeds differ" `Quick test_universal_seeds_differ;
          Alcotest.test_case "to_range" `Quick test_to_range;
          Alcotest.test_case "multiply-shift spread" `Quick test_multiply_shift_spread;
          Alcotest.test_case "tabulation spread" `Quick test_tabulation_spread;
        ] );
      ( "geometric",
        [
          Alcotest.test_case "trailing zeros" `Quick test_trailing_zeros;
          Alcotest.test_case "level distribution" `Quick test_geometric_level_of_hash;
        ] );
      ("properties", qsuite);
    ]
