(* Regression tests for the experiment harnesses: every figure and
   ablation must run end-to-end at a tiny scale, produce a well-formed
   table, and keep its headline orderings. *)

module E = Whats_different.Experiments
module R = Whats_different.Report

let tiny = { E.default_options with scale = 0.05 }

let cell_float = function
  | R.F f | R.R f -> Some f
  | R.I i -> Some (Float.of_int i)
  | R.S _ -> None

let test_every_harness_runs () =
  List.iter
    (fun id ->
      match E.by_id id with
      | None -> Alcotest.failf "missing harness %s" id
      | Some f ->
        let t = f tiny in
        Alcotest.(check string) (id ^ " id") id t.E.id;
        Alcotest.(check bool) (id ^ " has rows") true (List.length t.E.rows > 0);
        List.iter
          (fun row ->
            Alcotest.(check int)
              (id ^ " row width")
              (List.length t.E.header) (List.length row))
          t.E.rows)
    E.ids

let test_ids_unique_and_ordered () =
  let sorted = List.sort_uniq compare E.ids in
  Alcotest.(check int) "no duplicate ids" (List.length E.ids)
    (List.length sorted);
  Alcotest.(check bool) "fig5a first" true (List.hd E.ids = "fig5a")

let test_unknown_id () =
  Alcotest.(check bool) "unknown id" true (E.by_id "fig9z" = None)

(* Headline shape assertions at small scale: these are the claims
   EXPERIMENTS.md stakes, so they must not silently regress. *)

let column table name =
  let rec index i = function
    | [] -> Alcotest.failf "column %s missing" name
    | h :: _ when h = name -> i
    | _ :: rest -> index (i + 1) rest
  in
  let i = index 0 table.E.header in
  List.filter_map (fun row -> cell_float (List.nth row i)) table.E.rows

let sum = List.fold_left ( +. ) 0.0

let test_fig5a_orderings () =
  (* The savings regime needs a workload meaningfully larger than the
     (scale-independent) sketch state, so this runs above tiny scale.
     Orderings are asserted over the practical lag range (theta <= 0.3
     eps, where the paper's optima live). *)
  let t = E.fig5a ~options:{ tiny with scale = 0.3 } () in
  let take5 xs = List.filteri (fun i _ -> i < 5) xs in
  let ls = sum (take5 (column t "LS"))
  and ns = sum (take5 (column t "NS"))
  and ss = sum (take5 (column t "SS")) in
  Alcotest.(check bool)
    (Printf.sprintf "LS (%.3f) cheapest vs NS (%.3f)" ls ns)
    true (ls < ns);
  Alcotest.(check bool)
    (Printf.sprintf "SS (%.3f) most expensive" ss)
    true
    (ss > ns);
  (* The headline: order-of-magnitude savings for the good protocols. *)
  List.iter
    (fun r -> Alcotest.(check bool) "LS ratio well below 1" true (r < 0.2))
    (take5 (column t "LS"))

let test_fig6a_orderings () =
  let t = E.fig6a ~options:tiny () in
  let lco = sum (column t "LCO")
  and gcs = sum (column t "GCS")
  and lcs = sum (column t "LCS") in
  Alcotest.(check bool)
    (Printf.sprintf "LCO (%.4f) < LCS (%.4f) < GCS (%.4f)" lco lcs gcs)
    true
    (lco < lcs && lcs < gcs);
  (* Cost grows with T. *)
  let lco_col = column t "LCO" in
  Alcotest.(check bool) "monotone in T" true
    (List.sort compare lco_col = lco_col)

let test_ablation_radio_helps_ss () =
  let t = E.ablation_radio ~options:tiny () in
  let find_row name =
    List.find
      (fun row -> match row with R.S s :: _ -> s = name | _ -> false)
      t.E.rows
  in
  match (find_row "SS", find_row "NS") with
  | ( [ _; R.R ss_uni; R.R ss_radio ], [ _; R.R ns_uni; R.R ns_radio ] ) ->
    Alcotest.(check bool) "radio cheaper for SS" true (ss_radio < ss_uni);
    Alcotest.(check (float 1e-12)) "NS unaffected by cost model" ns_uni
      ns_radio
  | _ -> Alcotest.fail "unexpected ablation_radio shape"

let test_fig5d_meets_target () =
  let t = E.fig5d ~options:{ tiny with scale = 0.2 } () in
  (* Last row is Pr[err <= eps]; every algorithm must meet ~90%. *)
  match List.rev t.E.rows with
  | last :: _ ->
    List.iteri
      (fun i cell ->
        if i > 0 then
          match cell with
          | R.F p ->
            Alcotest.(check bool)
              (Printf.sprintf "col %d: Pr=%.3f >= 0.85" i p)
              true (p >= 0.85)
          | _ -> Alcotest.fail "expected float")
      last
  | [] -> Alcotest.fail "empty fig5d"

let test_render_paths () =
  let t = E.fig5a ~options:tiny () in
  let rendered = R.render ~header:t.E.header t.E.rows in
  Alcotest.(check bool) "plain render nonempty" true
    (String.length rendered > 0);
  let csv = R.render_csv ~header:t.E.header t.E.rows in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check int) "csv rows" (1 + List.length t.E.rows)
    (List.length lines)

let () =
  Alcotest.run "experiments"
    [
      ( "harnesses",
        [
          Alcotest.test_case "all run at tiny scale" `Slow
            test_every_harness_runs;
          Alcotest.test_case "ids" `Quick test_ids_unique_and_ordered;
          Alcotest.test_case "unknown id" `Quick test_unknown_id;
        ] );
      ( "headline shapes",
        [
          Alcotest.test_case "fig5a orderings" `Slow test_fig5a_orderings;
          Alcotest.test_case "fig6a orderings" `Quick test_fig6a_orderings;
          Alcotest.test_case "radio ablation" `Quick test_ablation_radio_helps_ss;
          Alcotest.test_case "fig5d target" `Slow test_fig5d_meets_target;
        ] );
      ( "rendering",
        [ Alcotest.test_case "table and csv" `Quick test_render_paths ] );
    ]
