test/test_window.ml: Alcotest Array Float Gen Hashtbl List Printf QCheck QCheck_alcotest Wd_hashing Wd_net Wd_protocol Wd_sketch
