test/test_predictive.mli:
