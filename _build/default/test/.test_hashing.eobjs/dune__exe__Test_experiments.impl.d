test/test_experiments.ml: Alcotest Float List Printf String Whats_different
