test/test_edge_cases.ml: Alcotest Float List Printf Wd_hashing Wd_net Wd_protocol Wd_sketch Wd_workload Whats_different
