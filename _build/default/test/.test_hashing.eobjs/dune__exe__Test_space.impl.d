test/test_space.ml: Alcotest List Printf Wd_hashing Wd_protocol Wd_sketch Wd_workload
