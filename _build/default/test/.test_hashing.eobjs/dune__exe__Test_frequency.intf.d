test/test_frequency.mli:
