test/test_dc_tracker.mli:
