test/test_quantiles.mli:
