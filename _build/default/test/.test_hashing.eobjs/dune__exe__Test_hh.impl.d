test/test_hh.ml: Alcotest Array Float Hashtbl List Printf QCheck QCheck_alcotest Wd_aggregate Wd_hashing Wd_net Wd_protocol
