test/test_network.ml: Alcotest Gen List QCheck QCheck_alcotest Wd_net
