test/test_ds_tracker.mli:
