test/test_report_params.ml: Alcotest Format List String Wd_protocol Whats_different
