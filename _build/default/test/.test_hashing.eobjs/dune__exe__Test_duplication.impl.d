test/test_duplication.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Wd_aggregate Wd_hashing Wd_sketch
