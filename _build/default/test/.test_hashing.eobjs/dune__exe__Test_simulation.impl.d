test/test_simulation.ml: Alcotest Array Float List Printf Wd_aggregate Wd_protocol Wd_sketch Wd_workload Whats_different
