test/test_hashing.ml: Alcotest Array Float Hashtbl Int64 List Printf QCheck QCheck_alcotest Wd_hashing
