test/test_hh.mli:
