test/test_workload.ml: Alcotest Array Filename Float Fun Gen Hashtbl List Option Printf QCheck QCheck_alcotest String Sys Wd_hashing Wd_workload
