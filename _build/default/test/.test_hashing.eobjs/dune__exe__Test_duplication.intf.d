test/test_duplication.mli:
