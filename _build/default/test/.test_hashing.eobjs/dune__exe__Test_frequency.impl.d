test/test_frequency.ml: Alcotest Array Float Gen Hashtbl List Option Printf QCheck QCheck_alcotest Wd_aggregate Wd_frequency Wd_hashing
