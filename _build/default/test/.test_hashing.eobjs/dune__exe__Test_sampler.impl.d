test/test_sampler.ml: Alcotest Float Gen Hashtbl List Option Printf QCheck QCheck_alcotest Wd_hashing Wd_sketch
