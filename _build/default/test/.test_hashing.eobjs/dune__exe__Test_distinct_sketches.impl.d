test/test_distinct_sketches.ml: Alcotest Float Gen List Printf QCheck QCheck_alcotest Wd_hashing Wd_sketch
