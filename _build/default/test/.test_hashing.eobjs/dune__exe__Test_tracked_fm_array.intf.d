test/test_tracked_fm_array.mli:
