test/test_quantiles.ml: Alcotest Float Hashtbl List Printf Wd_aggregate Wd_hashing Wd_net Wd_protocol
