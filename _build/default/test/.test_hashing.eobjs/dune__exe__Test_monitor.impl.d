test/test_monitor.ml: Alcotest Float Hashtbl List Printf Wd_hashing Whats_different
