test/test_distinct_sketches.mli:
