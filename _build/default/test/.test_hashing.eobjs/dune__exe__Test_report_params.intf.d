test/test_report_params.mli:
