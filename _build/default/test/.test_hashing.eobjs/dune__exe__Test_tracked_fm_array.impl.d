test/test_tracked_fm_array.ml: Alcotest Float List Printf Wd_aggregate Wd_hashing Wd_net Wd_protocol
