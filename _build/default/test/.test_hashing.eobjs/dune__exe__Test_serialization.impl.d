test/test_serialization.ml: Alcotest Bytes Gen Int64 List QCheck QCheck_alcotest Wd_hashing Wd_sketch
