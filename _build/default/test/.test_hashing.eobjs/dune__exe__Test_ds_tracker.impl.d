test/test_ds_tracker.ml: Alcotest Array Float Gen Hashtbl List Option Printf QCheck QCheck_alcotest Wd_hashing Wd_net Wd_protocol Wd_sketch Wd_workload
