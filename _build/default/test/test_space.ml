(* Tests for the space accounting of the trackers (Section 4.2 / 5
   space-cost claims). *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Stream = Wd_workload.Stream
module Stream_gen = Wd_workload.Stream_gen

let stream = Stream_gen.zipf ~sites:4 ~events:40_000 ~universe:20_000 ()

let test_dc_site_space_bounded () =
  (* An approximate site holds its sketch plus at most pending_cap items:
     far below the exact algorithm's seen-set. *)
  let bitmaps = 64 in
  let family =
    Fm.family_custom ~rng:(Rng.create 151) ~variant:Fm.Stochastic ~bitmaps
  in
  let approx = Dc.Fm.create ~algorithm:Dc.NS ~theta:0.1 ~sites:4 ~family () in
  let exact = Dc.Fm.create ~algorithm:Dc.EC ~theta:0.1 ~sites:4 ~family () in
  Stream.iter
    (fun ~site ~item ->
      Dc.Fm.observe approx ~site item;
      Dc.Fm.observe exact ~site item)
    stream;
  let sketch_bytes = 8 * bitmaps in
  for i = 0 to 3 do
    let a = Dc.Fm.site_space_bytes approx i in
    let e = Dc.Fm.site_space_bytes exact i in
    (* Sketch + pending items, where pending is capped at one sketch's
       worth of items. *)
    Alcotest.(check bool)
      (Printf.sprintf "site %d: approx %d <= 2x sketch" i a)
      true
      (a <= 2 * sketch_bytes);
    Alcotest.(check bool)
      (Printf.sprintf "site %d: approx %d << exact %d" i a e)
      true (a < e / 4)
  done

let test_dc_coordinator_space () =
  let family =
    Fm.family_custom ~rng:(Rng.create 152) ~variant:Fm.Stochastic ~bitmaps:32
  in
  let t = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.1 ~sites:4 ~family () in
  Stream.iter (fun ~site ~item -> Dc.Fm.observe t ~site item) stream;
  (* Merged sketch + 4 per-site knowledge models = 5 sketches. *)
  Alcotest.(check int) "LS coordinator = 5 sketches" (5 * 8 * 32)
    (Dc.Fm.coordinator_space_bytes t);
  let no_delta =
    Dc.Fm.create ~algorithm:Dc.LS ~delta_replies:false ~theta:0.1 ~sites:4
      ~family ()
  in
  Stream.iter (fun ~site ~item -> Dc.Fm.observe no_delta ~site item) stream;
  Alcotest.(check int) "plain LS coordinator = 1 sketch" (8 * 32)
    (Dc.Fm.coordinator_space_bytes no_delta)

let test_ds_site_space_is_o_t () =
  let threshold = 64 in
  let family = Wd_sketch.Distinct_sampler.family ~rng:(Rng.create 153) ~threshold in
  List.iter
    (fun algorithm ->
      let t = Ds.create ~algorithm ~theta:0.3 ~sites:4 ~family () in
      Stream.iter (fun ~site ~item -> Ds.observe t ~site item) stream;
      (* Each site tracks at most the retained-level items it saw: three
         tables of at most T entries each. *)
      for i = 0 to 3 do
        let b = Ds.site_space_bytes t i in
        Alcotest.(check bool)
          (Printf.sprintf "%s site %d: %d <= 3 tables of T pairs"
             (Ds.algorithm_to_string algorithm) i b)
          true
          (b <= 3 * threshold * 16)
      done;
      Alcotest.(check bool) "coordinator O(T)" true
        (Ds.coordinator_space_bytes t <= threshold * 16))
    Ds.approximate_algorithms

let () =
  Alcotest.run "space"
    [
      ( "distinct count",
        [
          Alcotest.test_case "site space bounded" `Quick
            test_dc_site_space_bounded;
          Alcotest.test_case "coordinator space" `Quick
            test_dc_coordinator_space;
        ] );
      ( "distinct sample",
        [ Alcotest.test_case "site space O(T)" `Quick test_ds_site_space_is_o_t ] );
    ]
