(* Tests for the duplication / inverse-distribution estimators. *)

module D = Wd_aggregate.Duplication
module Rng = Wd_hashing.Rng
module Sampler = Wd_sketch.Distinct_sampler

let sample_fixture : D.sample =
  [ (1, 1); (2, 1); (3, 2); (4, 5); (5, 1); (6, 10) ]

let test_unique_count () =
  Alcotest.(check (float 0.001)) "level 0" 3.0
    (D.unique_count ~level:0 sample_fixture);
  Alcotest.(check (float 0.001)) "level 3 scales by 8" 24.0
    (D.unique_count ~level:3 sample_fixture);
  Alcotest.(check (float 0.001)) "empty" 0.0 (D.unique_count ~level:2 [])

let test_distinct_count () =
  Alcotest.(check (float 0.001)) "level 2" 24.0
    (D.distinct_count ~level:2 sample_fixture)

let test_fraction () =
  Alcotest.(check (float 0.001)) "half have count 1" 0.5
    (D.fraction (fun c -> c = 1) sample_fixture);
  Alcotest.(check (float 0.001)) "empty sample" 0.0
    (D.fraction (fun _ -> true) [])

let test_inverse_quantile () =
  Alcotest.(check (float 0.001)) "count <= 2" (4.0 /. 6.0)
    (D.inverse_quantile ~count:2 sample_fixture);
  Alcotest.(check (float 0.001)) "count <= 100" 1.0
    (D.inverse_quantile ~count:100 sample_fixture)

let test_inverse_range () =
  Alcotest.(check (float 0.001)) "2..5" (2.0 /. 6.0)
    (D.inverse_range ~lo:2 ~hi:5 sample_fixture)

let test_inverse_heavy_hitters () =
  let hh = D.inverse_heavy_hitters ~phi:0.4 sample_fixture in
  Alcotest.(check int) "only count=1 passes 40%" 1 (List.length hh);
  (match hh with
  | [ (c, share) ] ->
    Alcotest.(check int) "count 1" 1 c;
    Alcotest.(check (float 0.001)) "share" 0.5 share
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.check_raises "phi validated"
    (Invalid_argument "Duplication.inverse_heavy_hitters: phi must be in (0,1]")
    (fun () -> ignore (D.inverse_heavy_hitters ~phi:0.0 sample_fixture))

let test_count_quantile_and_median () =
  (* sorted counts: 1 1 1 2 5 10 *)
  Alcotest.(check (option int)) "median" (Some 2)
    (D.median_count sample_fixture);
  Alcotest.(check (option int)) "q=0" (Some 1)
    (D.count_quantile ~q:0.0 sample_fixture);
  Alcotest.(check (option int)) "q=1" (Some 10)
    (D.count_quantile ~q:1.0 sample_fixture);
  Alcotest.(check (option int)) "empty" None (D.median_count [])

let test_mean_count () =
  Alcotest.(check (float 0.001)) "mean" (20.0 /. 6.0)
    (D.mean_count sample_fixture);
  Alcotest.(check (float 0.001)) "empty" 0.0 (D.mean_count [])

let test_value_quantile () =
  (* Item values of the fixture: 1..6. *)
  Alcotest.(check (option int)) "median value" (Some 4)
    (D.value_median sample_fixture);
  Alcotest.(check (option int)) "q=0" (Some 1)
    (D.value_quantile ~q:0.0 sample_fixture);
  Alcotest.(check (option int)) "q=1" (Some 6)
    (D.value_quantile ~q:1.0 sample_fixture);
  Alcotest.(check (option int)) "empty" None (D.value_median []);
  Alcotest.check_raises "q validated"
    (Invalid_argument "Duplication.value_quantile: q must be in [0,1]")
    (fun () -> ignore (D.value_quantile ~q:1.5 sample_fixture))

let test_value_quantile_duplicate_resilient () =
  (* A sample drawn from a stream where low values are hugely repeated:
     counts do not influence the value quantile. *)
  let fam = Sampler.family ~rng:(Rng.create 103) ~threshold:512 in
  let s = Sampler.create fam in
  for v = 0 to 1_999 do
    Sampler.add_count s v (if v < 200 then 500 else 1)
  done;
  match D.value_median (Sampler.contents s) with
  | None -> Alcotest.fail "empty sample"
  | Some m ->
    Alcotest.(check bool)
      (Printf.sprintf "median value %d near 1000" m)
      true
      (m > 700 && m < 1_300)

(* End-to-end: estimators on a real distinct sample should approximate the
   exact inverse distribution. *)
let test_end_to_end_accuracy () =
  let fam = Sampler.family ~rng:(Rng.create 101) ~threshold:2_048 in
  let s = Sampler.create fam in
  (* 6000 distinct items: 3000 unique, 2000 seen 3x, 1000 seen 10x. *)
  let rng = Rng.create 102 in
  let events = ref [] in
  for v = 0 to 2_999 do
    events := v :: !events
  done;
  for v = 3_000 to 4_999 do
    for _ = 1 to 3 do
      events := v :: !events
    done
  done;
  for v = 5_000 to 5_999 do
    for _ = 1 to 10 do
      events := v :: !events
    done
  done;
  let arr = Array.of_list !events in
  Wd_hashing.Rng.shuffle_in_place rng arr;
  Array.iter (Sampler.add s) arr;
  let sample = Sampler.contents s in
  let level = Sampler.level s in
  let unique = D.unique_count ~level sample in
  Alcotest.(check bool)
    (Printf.sprintf "unique estimate %.0f ~ 3000" unique)
    true
    (Float.abs (unique -. 3_000.0) /. 3_000.0 < 0.15);
  let frac3 = D.fraction (fun c -> c = 3) sample in
  Alcotest.(check bool)
    (Printf.sprintf "fraction with count 3 = %.3f ~ 1/3" frac3)
    true
    (Float.abs (frac3 -. (1.0 /. 3.0)) < 0.05);
  (* The median sits exactly on the 1|3 population boundary (50% of items
     have count 1), so query an interior quantile: ranks 50%..83% all have
     count 3. *)
  Alcotest.(check (option int)) "0.65-quantile of duplication" (Some 3)
    (D.count_quantile ~q:0.65 sample)

(* QCheck: estimators are exact when the sample IS the full population at
   level 0. *)

let population_gen =
  QCheck.(list_of_size (Gen.int_range 1 200) (int_range 1 20))

let prop_fraction_exact_on_population =
  QCheck.Test.make ~name:"fraction exact on full population" population_gen
    (fun counts ->
      let sample = List.mapi (fun i c -> (i, c)) counts in
      let exact =
        Float.of_int (List.length (List.filter (fun c -> c = 1) counts))
        /. Float.of_int (List.length counts)
      in
      Float.abs (D.fraction (fun c -> c = 1) sample -. exact) < 1e-9)

let prop_inverse_quantile_monotone =
  QCheck.Test.make ~name:"inverse quantile monotone in count" population_gen
    (fun counts ->
      let sample = List.mapi (fun i c -> (i, c)) counts in
      let prev = ref 0.0 in
      List.for_all
        (fun c ->
          let q = D.inverse_quantile ~count:c sample in
          let ok = q >= !prev in
          prev := Float.max !prev q;
          ok)
        (List.sort_uniq compare counts))

let prop_count_quantile_within_range =
  QCheck.Test.make ~name:"count quantile returns an observed count"
    population_gen
    (fun counts ->
      let sample = List.mapi (fun i c -> (i, c)) counts in
      match D.count_quantile ~q:0.5 sample with
      | None -> false
      | Some c -> List.mem c counts)

let () =
  Alcotest.run "duplication"
    [
      ( "estimators",
        [
          Alcotest.test_case "unique count" `Quick test_unique_count;
          Alcotest.test_case "distinct count" `Quick test_distinct_count;
          Alcotest.test_case "fraction" `Quick test_fraction;
          Alcotest.test_case "inverse quantile" `Quick test_inverse_quantile;
          Alcotest.test_case "inverse range" `Quick test_inverse_range;
          Alcotest.test_case "inverse heavy hitters" `Quick
            test_inverse_heavy_hitters;
          Alcotest.test_case "count quantile / median" `Quick
            test_count_quantile_and_median;
          Alcotest.test_case "mean" `Quick test_mean_count;
          Alcotest.test_case "value quantile" `Quick test_value_quantile;
          Alcotest.test_case "value quantile resilience" `Quick
            test_value_quantile_duplicate_resilient;
        ] );
      ( "end to end",
        [ Alcotest.test_case "known population" `Quick test_end_to_end_accuracy ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fraction_exact_on_population;
            prop_inverse_quantile_monotone;
            prop_count_quantile_within_range;
          ] );
    ]
