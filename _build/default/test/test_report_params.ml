(* Tests for the Params accounting helpers and the Report renderer. *)

module P = Wd_protocol.Params
module R = Whats_different.Report

(* --- Params --- *)

let test_make_default_split () =
  let p = P.make ~epsilon:0.1 () in
  Alcotest.(check (float 1e-9)) "epsilon" 0.1 p.P.epsilon;
  Alcotest.(check (float 1e-9)) "theta = 0.3 eps" 0.03 p.P.theta;
  Alcotest.(check (float 1e-9)) "alpha = eps - theta" 0.07 p.P.alpha;
  Alcotest.(check (float 1e-9)) "delta" 0.1 (P.delta p)

let test_make_custom_fraction () =
  let p = P.make ~theta_fraction:0.15 ~confidence:0.95 ~epsilon:0.2 () in
  Alcotest.(check (float 1e-9)) "theta" 0.03 p.P.theta;
  Alcotest.(check (float 1e-9)) "alpha" 0.17 p.P.alpha;
  Alcotest.(check (float 1e-9)) "delta" 0.05 (P.delta p)

let test_with_theta () =
  let p = P.with_theta ~theta:0.02 ~alpha:0.05 () in
  Alcotest.(check (float 1e-9)) "epsilon is the sum" 0.07 p.P.epsilon

let test_params_validation () =
  Alcotest.check_raises "epsilon range"
    (Invalid_argument "Params: epsilon must be in (0,1), got 1.5") (fun () ->
      ignore (P.make ~epsilon:1.5 () : P.t));
  Alcotest.check_raises "theta positive"
    (Invalid_argument "Params: theta must be positive") (fun () ->
      ignore (P.with_theta ~theta:0.0 ~alpha:0.1 () : P.t))

let test_params_pp () =
  let p = P.make ~epsilon:0.1 () in
  let s = Format.asprintf "%a" P.pp p in
  Alcotest.(check bool) "pretty print mentions eps" true
    (String.length s > 0
    && String.sub s 0 5 = "{eps=")

(* --- Report --- *)

let test_render_alignment () =
  let out =
    R.render ~header:[ "name"; "value" ]
      [ [ R.S "a"; R.I 1 ]; [ R.S "long-name"; R.I 12345 ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* All lines padded to the same width. *)
  (match lines with
  | first :: rest ->
    List.iter
      (fun l ->
        Alcotest.(check int) "equal width" (String.length first)
          (String.length l))
      rest
  | [] -> Alcotest.fail "empty render")

let test_render_cell_formats () =
  let out =
    R.render ~header:[ "c" ]
      [ [ R.F 3.14159 ]; [ R.R 0.000123 ]; [ R.I 7 ]; [ R.S "x" ] ]
  in
  Alcotest.(check bool) "float trimmed" true
    (String.length out > 0);
  let has_needle needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "%.4g float" true (has_needle "3.142");
  Alcotest.(check bool) "scientific ratio" true (has_needle "1.230e-04")

let test_csv_quoting () =
  let out =
    R.render_csv ~header:[ "a"; "b" ] [ [ R.S "x,y"; R.S "say \"hi\"" ] ]
  in
  Alcotest.(check string) "quoted" "a,b\n\"x,y\",\"say \"\"hi\"\"\"" out

let test_csv_shape () =
  let out = R.render_csv ~header:[ "h1"; "h2" ] [ [ R.I 1; R.I 2 ] ] in
  Alcotest.(check string) "csv" "h1,h2\n1,2" out

let () =
  Alcotest.run "report-params"
    [
      ( "params",
        [
          Alcotest.test_case "default split" `Quick test_make_default_split;
          Alcotest.test_case "custom fraction" `Quick test_make_custom_fraction;
          Alcotest.test_case "with theta" `Quick test_with_theta;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "pp" `Quick test_params_pp;
        ] );
      ( "report",
        [
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "cell formats" `Quick test_render_cell_formats;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
          Alcotest.test_case "csv shape" `Quick test_csv_shape;
        ] );
    ]
