(* Tests for the FM-array structure and distinct heavy hitters,
   centralized and tracked. *)

module Rng = Wd_hashing.Rng
module Fm_array = Wd_aggregate.Fm_array
module Tracked = Wd_aggregate.Tracked_fm_array
module Hh = Wd_aggregate.Distinct_hh
module Dc = Wd_protocol.Dc_tracker
module Network = Wd_net.Network

let cfg = { Fm_array.rows = 3; cols = 128; bitmaps = 16 }

let mk_family ?(seed = 111) () = Fm_array.family ~rng:(Rng.create seed) cfg

(* --- Fm_array --- *)

let test_array_estimate_counts_distinct_elements () =
  let fam = mk_family () in
  let a = Fm_array.create fam in
  (* Key 7 gets 1000 distinct elements, each inserted 3 times. *)
  for e = 0 to 999 do
    for _ = 1 to 3 do
      ignore (Fm_array.add a ~key:7 ~element:e : bool)
    done
  done;
  let est = Fm_array.estimate a ~key:7 in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f ~ 1000" est)
    true
    (Float.abs (est -. 1_000.0) /. 1_000.0 < 0.5);
  (* An untouched key has a near-zero estimate. *)
  Alcotest.(check bool) "cold key small" true
    (Fm_array.estimate a ~key:999_999 < 100.0)

let test_array_merge_equals_union () =
  let fam = mk_family () in
  let a = Fm_array.create fam and b = Fm_array.create fam in
  let u = Fm_array.create fam in
  for e = 0 to 499 do
    ignore (Fm_array.add a ~key:1 ~element:e : bool);
    ignore (Fm_array.add u ~key:1 ~element:e : bool)
  done;
  for e = 300 to 799 do
    ignore (Fm_array.add b ~key:1 ~element:e : bool);
    ignore (Fm_array.add u ~key:1 ~element:e : bool)
  done;
  Fm_array.merge_into ~dst:a b;
  Alcotest.(check bool) "merged = union" true (Fm_array.equal a u)

let test_array_sizes () =
  let fam = mk_family () in
  Alcotest.(check int) "cells" 384 (Fm_array.config_cells cfg);
  Alcotest.(check int) "cell bytes" 128 (Fm_array.cell_size_bytes fam);
  Alcotest.(check int) "total bytes" (384 * 128) (Fm_array.size_bytes fam)

let test_pair_element_injective_in_practice () =
  let seen = Hashtbl.create 1024 in
  let collisions = ref 0 in
  for v = 0 to 99 do
    for w = 0 to 99 do
      let e = Fm_array.pair_element ~v ~w in
      if Hashtbl.mem seen e then incr collisions;
      Hashtbl.replace seen e ()
    done
  done;
  Alcotest.(check int) "no collisions among 10k pairs" 0 !collisions

(* --- Centralized distinct HH --- *)

(* Build a planted pair stream: object 0 has 800 distinct clients,
   object 1 has 400, objects 2..49 have 20 each; every pair repeated
   [repeat] times. *)
let planted_pairs ~repeat =
  let out = ref [] in
  let emit v w = for _ = 1 to repeat do out := (v, w) :: !out done in
  for w = 0 to 799 do
    emit 0 w
  done;
  for w = 0 to 399 do
    emit 1 w
  done;
  for v = 2 to 49 do
    for w = 0 to 19 do
      emit v w
    done
  done;
  let arr = Array.of_list !out in
  Wd_hashing.Rng.shuffle_in_place (Rng.create 112) arr;
  arr

let test_centralized_hh_finds_planted () =
  let hh = Hh.Centralized.create ~family:(mk_family ()) in
  Array.iter (fun (v, w) -> Hh.Centralized.add hh ~v ~w) (planted_pairs ~repeat:3);
  let top = Hh.Centralized.top hh ~k:2 |> List.map fst in
  Alcotest.(check (list int)) "top 2 planted objects" [ 0; 1 ] top;
  let est = Hh.Centralized.estimate hh 0 in
  Alcotest.(check bool)
    (Printf.sprintf "d_0 estimate %.0f ~ 800" est)
    true
    (Float.abs (est -. 800.0) /. 800.0 < 0.5)

let test_centralized_duplicate_resilient () =
  let once = Hh.Centralized.create ~family:(mk_family ()) in
  let thrice = Hh.Centralized.create ~family:(mk_family ()) in
  Array.iter (fun (v, w) -> Hh.Centralized.add once ~v ~w) (planted_pairs ~repeat:1);
  Array.iter (fun (v, w) -> Hh.Centralized.add thrice ~v ~w) (planted_pairs ~repeat:3);
  Alcotest.(check bool) "identical arrays" true
    (Fm_array.equal (Hh.Centralized.array once) (Hh.Centralized.array thrice))

let test_exact_degrees () =
  let pairs = [ (1, 10); (1, 10); (1, 11); (2, 10) ] in
  let d = Hh.exact_degrees (List.to_seq pairs) in
  Alcotest.(check (option int)) "d_1" (Some 2) (Hashtbl.find_opt d 1);
  Alcotest.(check (option int)) "d_2" (Some 1) (Hashtbl.find_opt d 2)

(* --- Tracked distinct HH --- *)

let spread_over_sites k pairs =
  Array.mapi (fun j (v, w) -> (j mod k, v, w)) pairs

let test_tracked_hh_matches_centralized_estimates algo () =
  let fam = mk_family () in
  let pairs = planted_pairs ~repeat:2 in
  let events = spread_over_sites 4 pairs in
  let central = Hh.Centralized.create ~family:fam in
  let tracked =
    Hh.Tracked.create ~algorithm:algo ~theta:0.2 ~sites:4 ~family:fam ()
  in
  Array.iter
    (fun (site, v, w) ->
      Hh.Centralized.add central ~v ~w;
      Hh.Tracked.observe tracked ~site ~v ~w)
    events;
  (* The coordinator's estimates should be close to the centralized ones
     for the planted heavy objects. *)
  List.iter
    (fun v ->
      let c = Hh.Centralized.estimate central v in
      let t = Hh.Tracked.estimate tracked v in
      Alcotest.(check bool)
        (Printf.sprintf "%s: object %d tracked %.0f vs central %.0f"
           (Dc.algorithm_to_string algo) v t c)
        true
        (Float.abs (t -. c) /. Float.max 1.0 c < 0.5))
    [ 0; 1 ]

let test_tracked_hh_top_recall algo () =
  let fam = mk_family () in
  let events = spread_over_sites 4 (planted_pairs ~repeat:2) in
  let tracked =
    Hh.Tracked.create ~algorithm:algo ~theta:0.2 ~sites:4 ~family:fam ()
  in
  Array.iter
    (fun (site, v, w) -> Hh.Tracked.observe tracked ~site ~v ~w)
    events;
  let top = Hh.Tracked.top tracked ~k:2 |> List.map fst in
  Alcotest.(check bool)
    (Printf.sprintf "%s: planted heavy objects found"
       (Dc.algorithm_to_string algo))
    true
    (List.mem 0 top && List.mem 1 top)

let test_tracked_cheaper_than_raw_pairs () =
  (* With heavy duplication, tracking must beat shipping every pair: the
     tracker pays per *distinct* pair (and only while its cell's sketch
     still changes) while the raw baseline pays per event. *)
  let fam = mk_family () in
  let events = spread_over_sites 4 (planted_pairs ~repeat:40) in
  let tracked =
    Hh.Tracked.create ~algorithm:Dc.LS ~theta:0.2 ~sites:4 ~family:fam ()
  in
  Array.iter
    (fun (site, v, w) -> Hh.Tracked.observe tracked ~site ~v ~w)
    events;
  let raw_bytes =
    Array.length events * Wd_net.Wire.message ~payload:(2 * Wd_net.Wire.item_bytes)
  in
  let got = Network.total_bytes (Hh.Tracked.network tracked) in
  Alcotest.(check bool)
    (Printf.sprintf "tracked %d < raw %d" got raw_bytes)
    true (got < raw_bytes)

let test_tracked_rejects_ec () =
  Alcotest.check_raises "EC rejected"
    (Invalid_argument "Tracked_fm_array.create: EC is not a per-cell algorithm")
    (fun () ->
      ignore
        (Tracked.create ~algorithm:Dc.EC ~theta:0.1 ~sites:2
           ~family:(mk_family ()) ()
          : Tracked.t))

(* --- QCheck --- *)

let prop_centralized_estimate_dominated_by_collisions =
  (* min-over-rows estimates never undershoot badly: for a key with d
     distinct elements the estimate is at least a constant fraction of d
     (FM bitmaps only overcount under collisions, undercount only through
     FM variance). *)
  QCheck.Test.make ~name:"estimates track planted degree" ~count:20
    QCheck.(int_range 50 500)
    (fun d ->
      let fam = Fm_array.family ~rng:(Rng.create 113) cfg in
      let a = Fm_array.create fam in
      for e = 0 to d - 1 do
        ignore (Fm_array.add a ~key:5 ~element:(e * 7919) : bool)
      done;
      let est = Fm_array.estimate a ~key:5 in
      est > 0.3 *. Float.of_int d && est < 3.0 *. Float.of_int d)

let () =
  let per_algo name f =
    List.map
      (fun a ->
        Alcotest.test_case
          (Printf.sprintf "%s (%s)" name (Dc.algorithm_to_string a))
          `Quick (f a))
      Dc.approximate_algorithms
  in
  Alcotest.run "distinct-hh"
    [
      ( "fm array",
        [
          Alcotest.test_case "distinct elements" `Quick
            test_array_estimate_counts_distinct_elements;
          Alcotest.test_case "merge union" `Quick test_array_merge_equals_union;
          Alcotest.test_case "sizes" `Quick test_array_sizes;
          Alcotest.test_case "pair encoding" `Quick
            test_pair_element_injective_in_practice;
        ] );
      ( "centralized",
        [
          Alcotest.test_case "finds planted" `Quick test_centralized_hh_finds_planted;
          Alcotest.test_case "duplicate resilient" `Quick
            test_centralized_duplicate_resilient;
          Alcotest.test_case "exact degrees" `Quick test_exact_degrees;
        ] );
      ( "tracked",
        per_algo "matches centralized" test_tracked_hh_matches_centralized_estimates
        @ per_algo "top recall" test_tracked_hh_top_recall
        @ [
            Alcotest.test_case "cheaper than raw" `Quick
              test_tracked_cheaper_than_raw_pairs;
            Alcotest.test_case "EC rejected" `Quick test_tracked_rejects_ec;
          ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_centralized_estimate_dominated_by_collisions ] );
    ]
