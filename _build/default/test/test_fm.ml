(* Unit and property tests for the Flajolet-Martin sketches. *)

module Rng = Wd_hashing.Rng
module Fm_bitmap = Wd_sketch.Fm_bitmap
module Fm = Wd_sketch.Fm

(* --- Single bitmap --- *)

let test_bitmap_empty () =
  let b = Fm_bitmap.create () in
  Alcotest.(check bool) "empty" true (Fm_bitmap.is_empty b);
  Alcotest.(check int) "lowest zero of empty" 0 (Fm_bitmap.lowest_zero b);
  Alcotest.(check (float 0.001)) "estimate of empty" (1.0 /. Fm_bitmap.phi)
    (Fm_bitmap.estimate b)

let test_bitmap_add_levels () =
  let b = Fm_bitmap.create () in
  Alcotest.(check bool) "level 0 fresh" true (Fm_bitmap.add_level b 0);
  Alcotest.(check bool) "level 0 repeat" false (Fm_bitmap.add_level b 0);
  Alcotest.(check int) "lowest zero after 0" 1 (Fm_bitmap.lowest_zero b);
  ignore (Fm_bitmap.add_level b 1 : bool);
  ignore (Fm_bitmap.add_level b 2 : bool);
  Alcotest.(check int) "lowest zero after 0,1,2" 3 (Fm_bitmap.lowest_zero b)

let test_bitmap_add_level_rejects_out_of_range () =
  let b = Fm_bitmap.create () in
  Alcotest.check_raises "negative level"
    (Invalid_argument "Fm_bitmap.add_level: level out of range") (fun () ->
      ignore (Fm_bitmap.add_level b (-1) : bool));
  Alcotest.check_raises "level 64"
    (Invalid_argument "Fm_bitmap.add_level: level out of range") (fun () ->
      ignore (Fm_bitmap.add_level b 64 : bool))

let test_bitmap_merge_is_or () =
  let a = Fm_bitmap.create () and b = Fm_bitmap.create () in
  ignore (Fm_bitmap.add_level a 0 : bool);
  ignore (Fm_bitmap.add_level a 3 : bool);
  ignore (Fm_bitmap.add_level b 1 : bool);
  Fm_bitmap.merge_into ~dst:a b;
  Alcotest.(check int64) "bits are OR" 0b1011L (Fm_bitmap.bits a)

let test_bitmap_copy_independent () =
  let a = Fm_bitmap.create () in
  ignore (Fm_bitmap.add_level a 2 : bool);
  let b = Fm_bitmap.copy a in
  ignore (Fm_bitmap.add_level b 5 : bool);
  Alcotest.(check bool) "copy diverges" false (Fm_bitmap.equal a b)

let test_bitmap_roundtrip () =
  let a = Fm_bitmap.of_bits 0xDEADBEEFL in
  Alcotest.(check int64) "of_bits/bits roundtrip" 0xDEADBEEFL (Fm_bitmap.bits a)

(* --- Multi-bitmap sketch --- *)

let mk_family ?(seed = 21) ?(variant = Fm.Stochastic) ?(bitmaps = 64) () =
  Fm.family_custom ~rng:(Rng.create seed) ~variant ~bitmaps

let fill sk lo hi =
  for v = lo to hi - 1 do
    ignore (Fm.add sk v : bool)
  done

let test_fm_estimate_accuracy variant () =
  (* With m = 256 bitmaps the standard error is ~5%; allow 20%. *)
  let fam = mk_family ~variant ~bitmaps:256 () in
  List.iter
    (fun n ->
      let sk = Fm.create fam in
      fill sk 0 n;
      let est = Fm.estimate sk in
      let rel = Float.abs (est -. Float.of_int n) /. Float.of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d est=%.0f rel=%.3f" n est rel)
        true (rel < 0.20))
    [ 2_000; 20_000; 100_000 ]

let test_fm_duplicates_ignored () =
  let fam = mk_family () in
  let once = Fm.create fam and thrice = Fm.create fam in
  fill once 0 5_000;
  for _ = 1 to 3 do
    fill thrice 0 5_000
  done;
  Alcotest.(check bool) "duplicated stream gives identical sketch" true
    (Fm.equal once thrice)

let test_fm_merge_union () =
  let fam = mk_family () in
  let a = Fm.create fam and b = Fm.create fam and u = Fm.create fam in
  fill a 0 3_000;
  fill b 2_000 6_000;
  fill u 0 6_000;
  Fm.merge_into ~dst:a b;
  Alcotest.(check bool) "merge equals union sketch" true (Fm.equal a u)

let test_fm_estimate_monotone_under_merge () =
  let fam = mk_family ~bitmaps:32 () in
  let a = Fm.create fam and b = Fm.create fam in
  fill a 0 1_000;
  fill b 5_000 7_000;
  let before = Fm.estimate a in
  Fm.merge_into ~dst:a b;
  Alcotest.(check bool) "estimate grows under merge" true
    (Fm.estimate a >= before)

let test_fm_size_bytes () =
  let fam = mk_family ~bitmaps:40 () in
  Alcotest.(check int) "8 bytes per bitmap" 320 (Fm.size_bytes (Fm.create fam))

let test_fm_family_sizing () =
  let fam = Fm.family ~rng:(Rng.create 1) ~accuracy:0.1 ~confidence:0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "m=%d large enough for 10%%" (Fm.bitmaps fam))
    true
    (Fm.bitmaps fam >= 60);
  Alcotest.check_raises "accuracy >= 1 rejected"
    (Invalid_argument "Fm.family: accuracy must be in (0,1)") (fun () ->
      ignore
        (Fm.family ~rng:(Rng.create 1) ~accuracy:1.5 ~confidence:0.9
          : Fm.family))

let test_fm_copy_independent () =
  let fam = mk_family () in
  let a = Fm.create fam in
  fill a 0 100;
  let b = Fm.copy a in
  fill b 100 200;
  Alcotest.(check bool) "copy diverges" false (Fm.equal a b)

let test_fm_averaged_small_counts () =
  (* The averaged variant should track tiny cardinalities loosely but
     monotonically. *)
  let fam = mk_family ~variant:Fm.Averaged ~bitmaps:64 () in
  let sk = Fm.create fam in
  let prev = ref (Fm.estimate sk) in
  for v = 0 to 63 do
    ignore (Fm.add sk v : bool);
    let e = Fm.estimate sk in
    Alcotest.(check bool) "monotone" true (e >= !prev -. 1e-9);
    prev := e
  done

let test_fm_small_range_correction () =
  (* Stochastic estimates must not have a floor of ~1.3 m at small n. *)
  let fam = mk_family ~variant:Fm.Stochastic ~bitmaps:128 () in
  let sk = Fm.create fam in
  fill sk 0 20;
  let est = Fm.estimate sk in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.1f close to 20" est)
    true
    (est > 5.0 && est < 60.0)

let test_fm_delta_bytes () =
  let fam = mk_family ~bitmaps:16 () in
  let a = Fm.create fam and b = Fm.create fam in
  fill a 0 100;
  fill b 0 100;
  Alcotest.(check int) "identical -> zero delta" 0 (Fm.delta_bytes ~from:a b);
  fill b 100 200;
  let d = Fm.delta_bytes ~from:a b in
  Alcotest.(check bool)
    (Printf.sprintf "delta %d positive and cheaper than full" d)
    true
    (d > 0 && d <= Fm.size_bytes b);
  Alcotest.(check int) "subset direction still zero" 0
    (Fm.delta_bytes ~from:b a)

(* --- QCheck properties --- *)

let stream_gen = QCheck.(list_of_size (Gen.int_range 0 300) (int_range 0 10_000))

let prop_merge_commutes =
  QCheck.Test.make ~name:"merge commutes (same final sketch)"
    QCheck.(pair stream_gen stream_gen)
    (fun (xs, ys) ->
      let fam = mk_family ~bitmaps:16 () in
      let ab = Fm.create fam and ba = Fm.create fam in
      let a = Fm.create fam and b = Fm.create fam in
      List.iter (fun v -> ignore (Fm.add a v : bool)) xs;
      List.iter (fun v -> ignore (Fm.add b v : bool)) ys;
      Fm.merge_into ~dst:ab a;
      Fm.merge_into ~dst:ab b;
      Fm.merge_into ~dst:ba b;
      Fm.merge_into ~dst:ba a;
      Fm.equal ab ba)

let prop_merge_equals_direct_insertion =
  QCheck.Test.make ~name:"merged sketch = sketch of concatenated stream"
    QCheck.(pair stream_gen stream_gen)
    (fun (xs, ys) ->
      let fam = mk_family ~bitmaps:16 () in
      let a = Fm.create fam and b = Fm.create fam and d = Fm.create fam in
      List.iter (fun v -> ignore (Fm.add a v : bool)) xs;
      List.iter (fun v -> ignore (Fm.add b v : bool)) ys;
      List.iter (fun v -> ignore (Fm.add d v : bool)) (xs @ ys);
      Fm.merge_into ~dst:a b;
      Fm.equal a d)

let prop_add_changed_tracks_equality =
  QCheck.Test.make ~name:"add returns true iff the sketch changed"
    QCheck.(pair stream_gen (int_range 0 10_000))
    (fun (xs, v) ->
      let fam = mk_family ~bitmaps:8 () in
      let sk = Fm.create fam in
      List.iter (fun x -> ignore (Fm.add sk x : bool)) xs;
      let before = Fm.copy sk in
      let changed = Fm.add sk v in
      changed = not (Fm.equal before sk))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_merge_commutes;
        prop_merge_equals_direct_insertion;
        prop_add_changed_tracks_equality;
      ]
  in
  Alcotest.run "fm"
    [
      ( "bitmap",
        [
          Alcotest.test_case "empty" `Quick test_bitmap_empty;
          Alcotest.test_case "add levels" `Quick test_bitmap_add_levels;
          Alcotest.test_case "level range" `Quick
            test_bitmap_add_level_rejects_out_of_range;
          Alcotest.test_case "merge is OR" `Quick test_bitmap_merge_is_or;
          Alcotest.test_case "copy independent" `Quick
            test_bitmap_copy_independent;
          Alcotest.test_case "bits roundtrip" `Quick test_bitmap_roundtrip;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "accuracy (stochastic)" `Quick
            (test_fm_estimate_accuracy Fm.Stochastic);
          Alcotest.test_case "accuracy (averaged)" `Slow
            (test_fm_estimate_accuracy Fm.Averaged);
          Alcotest.test_case "duplicates ignored" `Quick
            test_fm_duplicates_ignored;
          Alcotest.test_case "merge union" `Quick test_fm_merge_union;
          Alcotest.test_case "monotone merge" `Quick
            test_fm_estimate_monotone_under_merge;
          Alcotest.test_case "size bytes" `Quick test_fm_size_bytes;
          Alcotest.test_case "family sizing" `Quick test_fm_family_sizing;
          Alcotest.test_case "copy independent" `Quick test_fm_copy_independent;
          Alcotest.test_case "averaged small counts" `Quick
            test_fm_averaged_small_counts;
          Alcotest.test_case "small-range correction" `Quick
            test_fm_small_range_correction;
          Alcotest.test_case "delta bytes" `Quick test_fm_delta_bytes;
        ] );
      ("properties", qsuite);
    ]
