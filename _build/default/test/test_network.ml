(* Tests for the byte-accounting network simulator. *)

module Network = Wd_net.Network
module Wire = Wd_net.Wire

let test_wire_sizes () =
  Alcotest.(check int) "message adds header" (Wire.header_bytes + 10)
    (Wire.message ~payload:10);
  Alcotest.(check int) "items payload" (5 * Wire.item_bytes) (Wire.items 5);
  Alcotest.(check int) "pair payload"
    (3 * (Wire.item_bytes + Wire.count_bytes))
    (Wire.item_count_pairs 3)

let test_send_up_accounting () =
  let net = Network.create ~sites:3 () in
  Network.send_up net ~site:0 ~payload:10;
  Network.send_up net ~site:2 ~payload:20;
  Alcotest.(check int) "bytes up"
    (Wire.message ~payload:10 + Wire.message ~payload:20)
    (Network.bytes_up net);
  Alcotest.(check int) "messages up" 2 (Network.messages_up net);
  Alcotest.(check int) "bytes down" 0 (Network.bytes_down net);
  Alcotest.(check int) "site 0 up" (Wire.message ~payload:10)
    (Network.site_bytes_up net 0);
  Alcotest.(check int) "site 1 up" 0 (Network.site_bytes_up net 1)

let test_unicast_broadcast_costs_k () =
  let net = Network.create ~sites:5 () in
  Network.broadcast_down net ~except:None ~payload:8;
  Alcotest.(check int) "5 messages" 5 (Network.messages_down net);
  Alcotest.(check int) "5x bytes" (5 * Wire.message ~payload:8)
    (Network.bytes_down net)

let test_unicast_broadcast_except () =
  let net = Network.create ~sites:5 () in
  Network.broadcast_down net ~except:(Some 2) ~payload:8;
  Alcotest.(check int) "4 messages" 4 (Network.messages_down net);
  Alcotest.(check int) "excluded site got nothing" 0
    (Network.site_bytes_down net 2)

let test_radio_broadcast_costs_once () =
  let net = Network.create ~cost_model:Network.Radio_broadcast ~sites:5 () in
  Network.broadcast_down net ~except:None ~payload:8;
  Network.broadcast_down net ~except:(Some 1) ~payload:8;
  Alcotest.(check int) "one message each" 2 (Network.messages_down net);
  Alcotest.(check int) "single-copy bytes" (2 * Wire.message ~payload:8)
    (Network.bytes_down net)

let test_totals_and_reset () =
  let net = Network.create ~sites:2 () in
  Network.send_up net ~site:0 ~payload:4;
  Network.send_down net ~site:1 ~payload:4;
  Alcotest.(check int) "total = up + down"
    (Network.bytes_up net + Network.bytes_down net)
    (Network.total_bytes net);
  Alcotest.(check int) "total messages" 2 (Network.total_messages net);
  Network.reset net;
  Alcotest.(check int) "reset zeroes bytes" 0 (Network.total_bytes net);
  Alcotest.(check int) "reset zeroes messages" 0 (Network.total_messages net);
  Alcotest.(check int) "reset keeps topology" 2 (Network.sites net)

let test_validation () =
  Alcotest.check_raises "zero sites"
    (Invalid_argument "Network.create: sites must be >= 1") (fun () ->
      ignore (Network.create ~sites:0 () : Network.t));
  let net = Network.create ~sites:2 () in
  Alcotest.check_raises "site out of range"
    (Invalid_argument "Network: site index out of range") (fun () ->
      Network.send_up net ~site:2 ~payload:1)

let prop_ledger_totals_consistent =
  QCheck.Test.make ~name:"per-site bytes sum to totals"
    QCheck.(list_of_size (Gen.int_range 0 100) (pair (int_range 0 3) (int_range 0 64)))
    (fun ops ->
      let net = Network.create ~sites:4 () in
      List.iter
        (fun (site, payload) ->
          if payload mod 2 = 0 then Network.send_up net ~site ~payload
          else Network.send_down net ~site ~payload)
        ops;
      let sum_up = ref 0 and sum_down = ref 0 in
      for s = 0 to 3 do
        sum_up := !sum_up + Network.site_bytes_up net s;
        sum_down := !sum_down + Network.site_bytes_down net s
      done;
      !sum_up = Network.bytes_up net && !sum_down = Network.bytes_down net)

let () =
  Alcotest.run "network"
    [
      ( "accounting",
        [
          Alcotest.test_case "wire sizes" `Quick test_wire_sizes;
          Alcotest.test_case "send up" `Quick test_send_up_accounting;
          Alcotest.test_case "unicast broadcast" `Quick
            test_unicast_broadcast_costs_k;
          Alcotest.test_case "broadcast except" `Quick test_unicast_broadcast_except;
          Alcotest.test_case "radio broadcast" `Quick test_radio_broadcast_costs_once;
          Alcotest.test_case "totals and reset" `Quick test_totals_and_reset;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_ledger_totals_consistent ] );
    ]
