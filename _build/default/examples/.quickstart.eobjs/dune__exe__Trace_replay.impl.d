examples/trace_replay.ml: Filename Float List Printf Sys Wd_protocol Wd_workload Whats_different
