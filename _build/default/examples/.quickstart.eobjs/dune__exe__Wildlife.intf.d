examples/wildlife.mli:
