examples/dashboard.mli:
