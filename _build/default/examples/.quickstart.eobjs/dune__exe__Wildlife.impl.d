examples/wildlife.ml: Hashtbl List Printf Wd_aggregate Wd_hashing Wd_net Wd_protocol Wd_sketch
