examples/inverse_distribution.ml: List Printf Wd_aggregate Wd_hashing Wd_net Wd_protocol Wd_sketch Wd_workload
