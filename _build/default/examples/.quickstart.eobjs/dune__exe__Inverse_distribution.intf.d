examples/inverse_distribution.mli:
