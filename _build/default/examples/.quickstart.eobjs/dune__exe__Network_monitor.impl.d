examples/network_monitor.ml: Float List Printf Wd_aggregate Wd_hashing Wd_net Wd_protocol Wd_sketch
