examples/dashboard.ml: List Printf Wd_aggregate Wd_hashing Wd_net Wd_workload Whats_different
