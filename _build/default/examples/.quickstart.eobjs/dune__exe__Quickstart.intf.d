examples/quickstart.mli:
