(* A continuous monitoring dashboard over the bundled Monitor facade.

   A CDN operator watches 6 edge sites.  Requests are keyed
   (content_id, user_id); the same request may be logged at several
   edges (anycast retries).  Every "hour" the dashboard refreshes all of
   the Section 6 query menu from coordinator state alone — no extra
   communication is spent on queries, only on the tracking protocol
   itself.

   Run with:  dune exec examples/dashboard.exe *)

module M = Whats_different.Monitor
module Rng = Wd_hashing.Rng

let sites = 6
let contents = 3_000
let users = 20_000

let () =
  let m =
    M.create
      {
        (M.default_config ~sites) with
        M.sample_threshold = 800;
        (* Enough columns that the 3000 content keys rarely collide. *)
        hh = Some { Wd_aggregate.Fm_array.rows = 4; cols = 1024; bitmaps = 12 };
        seed = 5;
      }
  in
  let rng = Rng.create 29 in
  let content_pop = Wd_workload.Zipf.create ~n:contents ~skew:1.0 in
  let user_act = Wd_workload.Zipf.create ~n:users ~skew:0.8 in

  let hours = 8 in
  let requests_per_hour = 30_000 in
  for hour = 1 to hours do
    for _ = 1 to requests_per_hour do
      let v = Wd_workload.Zipf.sample content_pop rng in
      let w = Wd_workload.Zipf.sample user_act rng in
      (* 1-2 edges log the request. *)
      let copies = 1 + (if Rng.float rng 1.0 < 0.3 then 1 else 0) in
      for c = 0 to copies - 1 do
        M.observe_pair m ~site:((w + c) mod sites) ~v ~w
      done
    done;
    Printf.printf "hour %d | distinct requests ~%8.0f | one-off requests ~%8.0f\n"
      hour (M.distinct m) (M.unique m)
  done;

  Printf.printf "\n== end-of-day dashboard ==\n";
  Printf.printf "distinct (content,user) requests : ~%.0f\n" (M.distinct m);
  Printf.printf "requests logged exactly once     : ~%.0f\n" (M.unique m);
  (match M.median_duplication m with
  | Some d -> Printf.printf "median log copies per request    : %d\n" d
  | None -> ());
  Printf.printf "requests logged 2+ times         : %.0f%%\n"
    (100.0 *. M.duplication_fraction m (fun c -> c >= 2));

  Printf.printf "\ntop content by distinct users:\n";
  List.iter
    (fun (v, est) -> Printf.printf "  content %4d  ~%.0f users\n" v est)
    (M.top_keys m ~k:5);

  Printf.printf "\ncommunication spent:\n";
  List.iter
    (fun (name, b) -> Printf.printf "  %-16s %9d bytes\n" name b)
    (M.bytes_breakdown m);
  Printf.printf "  %-16s %9d bytes\n" "total" (M.total_bytes m);
  let raw =
    hours * requests_per_hour * 13 / 10 (* ~1.3 copies *)
    * Wd_net.Wire.message ~payload:(2 * Wd_net.Wire.item_bytes)
  in
  Printf.printf "  %-16s %9d bytes\n" "raw forwarding" raw
