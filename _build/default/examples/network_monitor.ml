(* Network-wide IP monitoring (the paper's motivating application).

   An ISP taps k = 8 routers.  Every packet's flow can be observed at
   several routers along its path — the same flow must be counted once.
   This example tracks, continuously and with bounded communication:

   - the number of distinct active flows (LS distinct-count tracking);
   - a DDoS-style alarm: a sudden surge in DISTINCT source addresses
     talking to one victim, detected from the continuously available
     coordinator estimate — duplicate-resilient, so retransmissions and
     multi-tap observation do not trigger false alarms;
   - the destinations contacted by the most distinct sources (distinct
     heavy hitters), which is how scanners and DDoS victims surface.

   Run with:  dune exec examples/network_monitor.exe *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Dc = Wd_protocol.Dc_tracker
module Hh = Wd_aggregate.Distinct_hh
module Network = Wd_net.Network

let routers = 8
let normal_sources = 3_000

(* The victim is an ordinary destination that also receives some
   legitimate traffic, so the detector has a nonzero baseline. *)
let victim = 1_500

(* A flow observation: (src, dst) seen at 1-3 routers on its path. *)
let route rng =
  let hops = 1 + Rng.int rng 3 in
  List.init hops (fun _ -> Rng.int rng routers)

let flow_id ~src ~dst = (src * 1_000_003) + dst

let () =
  let rng = Rng.create 7 in

  (* Distinct flow count, tracked by LS. *)
  let family = Fm.family ~rng ~accuracy:0.07 ~confidence:0.9 in
  let flows =
    Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:routers ~family ()
  in

  (* Distinct sources per victim: the DDoS detector tracks the count of
     distinct sources sending to the watched address. *)
  let srcs_family = Fm.family ~rng ~accuracy:0.07 ~confidence:0.9 in
  let victim_sources =
    Dc.Fm.create ~algorithm:Dc.LS ~theta:0.05 ~sites:routers
      ~family:srcs_family ()
  in

  (* Distinct heavy hitters: destinations by distinct sources. *)
  let hh_family =
    Wd_aggregate.Fm_array.family ~rng
      { Wd_aggregate.Fm_array.rows = 3; cols = 256; bitmaps = 10 }
  in
  let top_destinations =
    Hh.Tracked.create ~item_batching:true ~algorithm:Dc.LS ~theta:0.05
      ~sites:routers ~family:hh_family ()
  in

  let baseline = ref 0.0 in
  let alarmed = ref false in
  let observe_packet ~src ~dst =
    let fid = flow_id ~src ~dst in
    List.iter
      (fun router ->
        Dc.Fm.observe flows ~site:router fid;
        if dst = victim then Dc.Fm.observe victim_sources ~site:router src;
        Hh.Tracked.observe top_destinations ~site:router ~v:dst ~w:src)
      (route rng)
  in

  (* Phase 1: normal traffic. *)
  for _ = 1 to 80_000 do
    let src = Rng.int rng normal_sources in
    let dst = Rng.int rng 2_000 in
    observe_packet ~src ~dst
  done;
  baseline := Dc.Fm.estimate victim_sources;
  Printf.printf "baseline: ~%.0f distinct flows, ~%.0f distinct sources to victim\n"
    (Dc.Fm.estimate flows) !baseline;

  (* Phase 2: a DDoS against [victim] from 20k spoofed sources, heavily
     retransmitted (TCP retries + multiple taps = duplicates galore). *)
  for i = 1 to 60_000 do
    let src = 100_000 + Rng.int rng 20_000 in
    observe_packet ~src ~dst:victim;
    (* The retransmission: same packet again somewhere. *)
    observe_packet ~src ~dst:victim;
    if (not !alarmed) && i mod 1_000 = 0 then begin
      let now = Dc.Fm.estimate victim_sources in
      if now > 10.0 *. Float.max 1.0 !baseline then begin
        alarmed := true;
        Printf.printf
          "ALARM after %d attack packets: distinct sources to victim ~%.0f (baseline %.0f)\n"
          (2 * i) now !baseline
      end
    end
  done;
  if not !alarmed then print_endline "no alarm raised (unexpected)";

  Printf.printf "\ntop destinations by distinct sources:\n";
  List.iter
    (fun (dst, est) ->
      Printf.printf "  dst %6d  ~%.0f distinct sources%s\n" dst est
        (if dst = victim then "   <-- victim" else ""))
    (Hh.Tracked.top top_destinations ~k:5);

  let report name net =
    Printf.printf "%-18s: %7d bytes total (up %7d, down %7d)\n" name
      (Network.total_bytes net) (Network.bytes_up net) (Network.bytes_down net)
  in
  Printf.printf "\ncommunication used under continuous monitoring:\n";
  report "flow counter" (Dc.Fm.network flows);
  report "victim sources" (Dc.Fm.network victim_sources);
  report "top destinations" (Hh.Tracked.network top_destinations)
