(* Inverse-distribution and duplicate-resilient quantile queries
   (Section 6 applications beyond counting).

   A payment platform observes transactions at 6 regional gateways; the
   same transaction can be logged by several gateways (failover,
   auditing).  Analysts ask questions about the DISTINCT transaction ids
   and about per-merchant activity:

   - What fraction of transactions were retried at most twice?
     (inverse quantile of the duplication distribution)
   - Which retry counts are most common?  (inverse heavy hitters)
   - What is the median merchant id weighted by distinct transactions —
     i.e., the duplicate-resilient median over merchant ids?
     (distinct quantiles via the dyadic FM structure)

   Run with:  dune exec examples/inverse_distribution.exe *)

module Rng = Wd_hashing.Rng
module Sampler = Wd_sketch.Distinct_sampler
module Ds = Wd_protocol.Ds_tracker
module Dq = Wd_aggregate.Distinct_quantiles
module D = Wd_aggregate.Duplication
module Dc = Wd_protocol.Dc_tracker
module Network = Wd_net.Network

let gateways = 6
let merchants = 4_096

let () =
  let rng = Rng.create 23 in

  (* Distinct sample over transaction ids, with per-id observation
     counts: the inverse distribution lives here. *)
  let ds_family = Sampler.family ~rng ~threshold:1_024 in
  let txns =
    Ds.create ~algorithm:Ds.LCS ~theta:0.2 ~sites:gateways ~family:ds_family ()
  in

  (* Duplicate-resilient quantiles over merchant ids: every distinct
     transaction contributes its merchant once, no matter how often the
     transaction is re-logged. *)
  let dq_family =
    Dq.family ~rng { Dq.universe = merchants; rows = 3; cols = 256; bitmaps = 10 }
  in
  let merchants_q =
    Dq.Tracked.create ~item_batching:true ~algorithm:Dc.LS ~theta:0.03
      ~sites:gateways ~family:dq_family ()
  in

  (* Merchants are Zipf-popular; popular merchants sit at LOW ids here so
     the distinct-median over merchant ids is informative. *)
  let merchant_dist = Wd_workload.Zipf.create ~n:merchants ~skew:0.9 in
  let n_txns = 50_000 in
  for txn = 0 to n_txns - 1 do
    let merchant = Wd_workload.Zipf.sample merchant_dist rng in
    (* 1 original + geometric retries/failovers, each logged at a random
       gateway. *)
    let copies = 1 + Wd_hashing.Rng.geometric_level rng in
    for _ = 1 to copies do
      let gw = Rng.int rng gateways in
      Ds.observe txns ~site:gw txn;
      Dq.Tracked.observe merchants_q ~site:gw merchant
    done
  done;

  let sample = Ds.sample txns in
  let level = Ds.level txns in
  Printf.printf "-- transaction duplication (from a %d-item distinct sample) --\n"
    (List.length sample);
  Printf.printf "distinct transactions     : ~%.0f (truth %d)\n"
    (D.distinct_count ~level sample)
    n_txns;
  Printf.printf "logged exactly once       : ~%.0f (expected ~%d)\n"
    (D.unique_count ~level sample)
    (n_txns / 2);
  Printf.printf "logged at most twice      : %.0f%% (expected ~75%%)\n"
    (100.0 *. D.inverse_quantile ~count:2 sample);
  Printf.printf "common retry counts (inverse heavy hitters, phi = 10%%):\n";
  List.iter
    (fun (count, share) ->
      Printf.printf "  %d cop%s -> %.0f%% of transactions\n" count
        (if count = 1 then "y" else "ies")
        (100.0 *. share))
    (D.inverse_heavy_hitters ~phi:0.1 sample);

  Printf.printf "\n-- merchant activity (duplicate-resilient quantiles) --\n";
  Printf.printf "distinct txns estimate    : ~%.0f\n"
    (Dq.Tracked.distinct merchants_q);
  Printf.printf "median merchant id        : %d\n"
    (Dq.Tracked.median merchants_q);
  Printf.printf "p90 merchant id           : %d\n"
    (Dq.Tracked.quantile merchants_q 0.9);

  Printf.printf "\ncommunication: sample %d bytes, quantiles %d bytes\n"
    (Network.total_bytes (Ds.network txns))
    (Network.total_bytes (Dq.Tracked.network merchants_q))
