(* Quickstart: continuous distinct counting and distinct sampling over
   three sites that observe overlapping streams.

   Run with:  dune exec examples/quickstart.exe *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Sampler = Wd_sketch.Distinct_sampler
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Network = Wd_net.Network

let () =
  let sites = 3 in
  let rng = Rng.create 2026 in

  (* 1. Distinct count tracking.  All sites and the coordinator share one
     sketch family (the public hash functions of the model); the Lazily
     Shared Sketch (LS) algorithm is the paper's best all-rounder. *)
  let family = Fm.family ~rng ~accuracy:0.07 ~confidence:0.9 in
  let dc = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites ~family () in

  (* 2. Distinct sample tracking: a uniform sample of the distinct items
     with approximate global counts, maintained continuously. *)
  let sampler_family = Sampler.family ~rng ~threshold:256 in
  let ds = Ds.create ~algorithm:Ds.LCO ~theta:0.25 ~sites ~family:sampler_family () in

  (* Feed 60k observations: each event is seen by 1-3 sites (duplicated
     observations are exactly what these aggregates must tolerate). *)
  let truth = Hashtbl.create 1024 in
  for event = 1 to 60_000 do
    let item = Rng.int rng 20_000 in
    Hashtbl.replace truth item ();
    let copies = 1 + Rng.int rng 3 in
    for c = 0 to copies - 1 do
      let site = (item + c) mod sites in
      Dc.Fm.observe dc ~site item;
      Ds.observe ds ~site item
    done;
    (* The coordinator can answer at ANY moment without extra
       communication; print a few progress snapshots. *)
    if event mod 20_000 = 0 then
      Printf.printf "after %6d events: distinct ~ %8.0f (truth %6d)\n" event
        (Dc.Fm.estimate dc) (Hashtbl.length truth)
  done;

  let n0 = Hashtbl.length truth in
  Printf.printf "\n-- distinct count (LS) --\n";
  Printf.printf "estimate            : %.0f (truth %d, error %.2f%%)\n"
    (Dc.Fm.estimate dc) n0
    (100.0 *. Float.abs ((Dc.Fm.estimate dc /. Float.of_int n0) -. 1.0));
  Printf.printf "communication       : %d bytes (up %d, down %d)\n"
    (Network.total_bytes (Dc.Fm.network dc))
    (Network.bytes_up (Dc.Fm.network dc))
    (Network.bytes_down (Dc.Fm.network dc));

  Printf.printf "\n-- distinct sample (LCO) --\n";
  let sample = Ds.sample ds in
  let level = Ds.level ds in
  Printf.printf "sample size / level : %d / %d\n" (List.length sample) level;
  Printf.printf "distinct estimate   : %.0f\n" (Ds.estimate_distinct ds);
  Printf.printf "unique-event est.   : %.0f\n"
    (Wd_aggregate.Duplication.unique_count ~level sample);
  (match Wd_aggregate.Duplication.median_count sample with
  | Some m -> Printf.printf "median duplication  : %d\n" m
  | None -> ());
  Printf.printf "communication       : %d bytes\n"
    (Network.total_bytes (Ds.network ds))
