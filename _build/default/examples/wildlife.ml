(* Wildlife monitoring (the paper's ZebraNet-style application).

   Collared zebras carry sensors; base stations (some mobile) collect
   readings.  To survive spotty radio contact, sensors gossip stored
   readings among themselves, so the same sighting event reaches several
   stations — classic duplication that must not corrupt the statistics.

   Continuously tracked here, all duplicate-resiliently:
   - sighting events: how many DISTINCT (animal, day) sightings happened,
     versus the raw reading volume the gossip produced;
   - herd coverage: how many distinct animals have been sighted at all;
   - gossip amplification: how many copies of a sighting the network
     produces (median/mean occurrence count of the distinct sample);
   - the most-observed animals: animals ranked by DISTINCT sighting days
     (distinct heavy hitters), immune to gossip repetition.

   Run with:  dune exec examples/wildlife.exe *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Sampler = Wd_sketch.Distinct_sampler
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Hh = Wd_aggregate.Distinct_hh
module D = Wd_aggregate.Duplication
module Network = Wd_net.Network

let stations = 5
let herd = 800
let days = 120

let event_id ~animal ~day = (animal * 1_000) + day

let () =
  let rng = Rng.create 19 in

  (* Distinct sighting events, deduplicating the gossip. *)
  let fm_family = Fm.family ~rng ~accuracy:0.07 ~confidence:0.9 in
  let events =
    Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:stations
      ~family:fm_family ()
  in
  (* Distinct sample over sighting events: its per-item counts measure
     how many copies the gossip makes of each reading. *)
  let ds_family = Sampler.family ~rng ~threshold:512 in
  let copies =
    Ds.create ~algorithm:Ds.LCO ~theta:0.2 ~sites:stations ~family:ds_family ()
  in
  (* Herd coverage: distinct animals. *)
  let animals =
    Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:stations
      ~family:(Fm.family ~rng ~accuracy:0.07 ~confidence:0.9) ()
  in
  (* Animals by distinct sighting DAYS: gossip repeats a day's sighting
     but cannot add days. *)
  let hh_family =
    Wd_aggregate.Fm_array.family ~rng
      { Wd_aggregate.Fm_array.rows = 4; cols = 512; bitmaps = 16 }
  in
  let most_observed =
    Hh.Tracked.create ~item_batching:true ~algorithm:Dc.LS ~theta:0.05
      ~sites:stations ~family:hh_family ()
  in

  let true_events = Hashtbl.create 1024 in
  let true_animals = Hashtbl.create 256 in
  let raw_readings = ref 0 in

  let sight ~animal ~day =
    Hashtbl.replace true_events (event_id ~animal ~day) ();
    Hashtbl.replace true_animals animal ();
    (* The sensor uploads at one station; gossip may replicate the
       reading to a few more. *)
    let deliveries = 1 + Rng.int rng 4 in
    for _ = 1 to deliveries do
      incr raw_readings;
      let station = Rng.int rng stations in
      let ev = event_id ~animal ~day in
      Dc.Fm.observe events ~site:station ev;
      Ds.observe copies ~site:station ev;
      Dc.Fm.observe animals ~site:station animal;
      Hh.Tracked.observe most_observed ~site:station ~v:animal ~w:day
    done
  in

  for day = 1 to days do
    (* Core group: animals 0..99 sighted most days. *)
    for animal = 0 to 99 do
      if Rng.float rng 1.0 < 0.8 then sight ~animal ~day
    done;
    (* Periphery: rare encounters across the rest of the herd. *)
    for _ = 1 to 25 do
      sight ~animal:(100 + Rng.int rng (herd - 100)) ~day
    done
  done;

  Printf.printf "-- season summary --\n";
  Printf.printf "raw readings collected    : %d\n" !raw_readings;
  Printf.printf "distinct sighting events  : ~%.0f (truth %d)\n"
    (Dc.Fm.estimate events)
    (Hashtbl.length true_events);
  Printf.printf "distinct animals sighted  : ~%.0f (truth %d)\n"
    (Dc.Fm.estimate animals)
    (Hashtbl.length true_animals);

  let sample = Ds.sample copies in
  Printf.printf "\n-- gossip amplification (copies per sighting) --\n";
  (match D.median_count sample with
  | Some m -> Printf.printf "median copies             : %d\n" m
  | None -> ());
  Printf.printf "mean copies               : %.2f\n" (D.mean_count sample);
  Printf.printf "share delivered just once : %.0f%%\n"
    (100.0 *. D.fraction (fun c -> c = 1) sample);

  Printf.printf "\n-- most-observed animals (by distinct sighting days) --\n";
  List.iter
    (fun (animal, est) ->
      Printf.printf "  animal %3d  ~%.0f days%s\n" animal est
        (if animal < 100 then "  (core group)" else ""))
    (Hh.Tracked.top most_observed ~k:5);

  let report name net =
    Printf.printf "  %-16s: %8d bytes\n" name (Network.total_bytes net)
  in
  Printf.printf "\ncommunication under continuous monitoring:\n";
  report "event counter" (Dc.Fm.network events);
  report "copy sampler" (Ds.network copies);
  report "herd counter" (Dc.Fm.network animals);
  report "animal ranking" (Hh.Tracked.network most_observed);
  Printf.printf "  %-16s: %8d bytes\n" "raw forwarding"
    (!raw_readings * Wd_net.Wire.message ~payload:Wd_net.Wire.item_bytes)
