lib/net/wire.ml:
