lib/net/network.mli:
