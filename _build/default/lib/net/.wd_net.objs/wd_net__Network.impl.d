lib/net/network.ml: Array Wire
