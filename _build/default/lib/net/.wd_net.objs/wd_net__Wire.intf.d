lib/net/wire.mli:
