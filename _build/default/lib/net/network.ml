type cost_model = Unicast | Radio_broadcast

let cost_model_to_string = function
  | Unicast -> "unicast"
  | Radio_broadcast -> "radio-broadcast"

type t = {
  k : int;
  model : cost_model;
  mutable bytes_up : int;
  mutable bytes_down : int;
  mutable messages_up : int;
  mutable messages_down : int;
  per_site_up : int array;
  per_site_down : int array;
}

let create ?(cost_model = Unicast) ~sites () =
  if sites < 1 then invalid_arg "Network.create: sites must be >= 1";
  {
    k = sites;
    model = cost_model;
    bytes_up = 0;
    bytes_down = 0;
    messages_up = 0;
    messages_down = 0;
    per_site_up = Array.make sites 0;
    per_site_down = Array.make sites 0;
  }

let sites t = t.k
let cost_model t = t.model

let check_site t site =
  if site < 0 || site >= t.k then invalid_arg "Network: site index out of range"

let send_up t ~site ~payload =
  check_site t site;
  let bytes = Wire.message ~payload in
  t.bytes_up <- t.bytes_up + bytes;
  t.messages_up <- t.messages_up + 1;
  t.per_site_up.(site) <- t.per_site_up.(site) + bytes

let send_down t ~site ~payload =
  check_site t site;
  let bytes = Wire.message ~payload in
  t.bytes_down <- t.bytes_down + bytes;
  t.messages_down <- t.messages_down + 1;
  t.per_site_down.(site) <- t.per_site_down.(site) + bytes

let broadcast_down t ~except ~payload =
  match t.model with
  | Unicast ->
    for site = 0 to t.k - 1 do
      if Some site <> except then send_down t ~site ~payload
    done
  | Radio_broadcast ->
    (* One transmission reaches everyone; charge it once. *)
    let bytes = Wire.message ~payload in
    t.bytes_down <- t.bytes_down + bytes;
    t.messages_down <- t.messages_down + 1;
    t.per_site_down.(0) <- t.per_site_down.(0) + bytes

let bytes_up t = t.bytes_up
let bytes_down t = t.bytes_down
let total_bytes t = t.bytes_up + t.bytes_down
let messages_up t = t.messages_up
let messages_down t = t.messages_down
let total_messages t = t.messages_up + t.messages_down

let site_bytes_up t site =
  check_site t site;
  t.per_site_up.(site)

let site_bytes_down t site =
  check_site t site;
  t.per_site_down.(site)

let reset t =
  t.bytes_up <- 0;
  t.bytes_down <- 0;
  t.messages_up <- 0;
  t.messages_down <- 0;
  Array.fill t.per_site_up 0 t.k 0;
  Array.fill t.per_site_down 0 t.k 0
