type t = { mutable bits : int64 }

let phi = 0.77351

let create () = { bits = 0L }

let copy t = { bits = t.bits }

let add_level t lvl =
  if lvl < 0 || lvl > 63 then invalid_arg "Fm_bitmap.add_level: level out of range";
  let mask = Int64.shift_left 1L lvl in
  let fresh = Int64.logand t.bits mask = 0L in
  if fresh then t.bits <- Int64.logor t.bits mask;
  fresh

let lowest_zero t =
  (* Index of lowest zero = trailing zeros of the complement. *)
  Wd_hashing.Geometric.trailing_zeros (Int64.lognot t.bits)

let estimate t = (2.0 ** Float.of_int (lowest_zero t)) /. phi

let merge_into ~dst src = dst.bits <- Int64.logor dst.bits src.bits

let equal a b = Int64.equal a.bits b.bits

let is_empty t = Int64.equal t.bits 0L

let bits t = t.bits

let of_bits bits = { bits }

let size_bytes = 8
