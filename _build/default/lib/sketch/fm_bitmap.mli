(** A single Flajolet–Martin bitmap (FOCS 1983).

    A 64-bit bitmap where bit [i] is set iff some inserted item hashed to
    geometric level [i] (probability [2^-(i+1)]).  The index [z] of the
    lowest unset bit estimates [log2 (phi * n)] where [n] is the number of
    distinct items and [phi ~= 0.77351] is the FM correction constant.

    One bitmap has large variance; {!Fm} combines many of them.  This module
    is the building block and is also used directly by the distinct
    heavy-hitter structure, which stores arrays of small FM sketches. *)

type t
(** One mutable 64-bit bitmap. *)

val phi : float
(** The Flajolet–Martin correction constant, 0.77351. *)

val create : unit -> t
(** An empty bitmap (all zero). *)

val copy : t -> t

val add_level : t -> int -> bool
(** [add_level t lvl] sets bit [lvl] and reports whether it was previously
    unset.  [lvl] must be in [\[0, 63\]]. *)

val lowest_zero : t -> int
(** Index of the least significant zero bit ([0] when empty, [64] when
    saturated). *)

val estimate : t -> float
(** [2^(lowest_zero t) / phi]: the single-bitmap distinct estimate. *)

val merge_into : dst:t -> t -> unit
(** Bitwise OR: the merged bitmap summarizes the union of the item sets. *)

val equal : t -> t -> bool

val is_empty : t -> bool

val bits : t -> int64
(** Raw bitmap contents (for serialization and tests). *)

val of_bits : int64 -> t

val size_bytes : int
(** Wire size: 8 bytes. *)
