module Rng = Wd_hashing.Rng
module Universal = Wd_hashing.Universal
module Geometric = Wd_hashing.Geometric

type family = { m : int; log2m : int; hash : Universal.t }

type t = { fam : family; regs : Bytes.t }

let name = "hll"

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let family_custom ~rng ~registers =
  if registers < 16 || not (is_power_of_two registers) then
    invalid_arg "Hyperloglog.family_custom: registers must be a power of two >= 16";
  let rec log2 n acc = if n = 1 then acc else log2 (n / 2) (acc + 1) in
  { m = registers; log2m = log2 registers 0; hash = Universal.of_rng rng }

let family ~rng ~accuracy ~confidence =
  if accuracy <= 0.0 || accuracy >= 1.0 then
    invalid_arg "Hyperloglog.family: accuracy must be in (0,1)";
  let delta = 1.0 -. confidence in
  let target =
    (1.04 /. accuracy) ** 2.0 *. Float.max 1.0 (Float.log (1.0 /. delta))
  in
  let m = ref 16 in
  while Float.of_int !m < target do
    m := !m * 2
  done;
  family_custom ~rng ~registers:!m

let registers fam = fam.m

let create fam = { fam; regs = Bytes.make fam.m '\000' }

let copy t = { t with regs = Bytes.copy t.regs }

let add t v =
  let fam = t.fam in
  let h = Universal.hash fam.hash v in
  (* Bucket from the top log2m bits; rank from the remaining low bits. *)
  let j = Int64.to_int (Int64.shift_right_logical h (64 - fam.log2m)) in
  let rest = Int64.shift_left h fam.log2m in
  let rank = min 63 (1 + Geometric.trailing_zeros (Int64.shift_right_logical rest fam.log2m)) in
  if rank > Char.code (Bytes.get t.regs j) then begin
    Bytes.set t.regs j (Char.chr rank);
    true
  end
  else false

let merge_into ~dst src =
  for j = 0 to dst.fam.m - 1 do
    let a = Bytes.get dst.regs j and b = Bytes.get src.regs j in
    if Char.code b > Char.code a then Bytes.set dst.regs j b
  done

let alpha m =
  match m with
  | 16 -> 0.673
  | 32 -> 0.697
  | 64 -> 0.709
  | _ -> 0.7213 /. (1.0 +. (1.079 /. Float.of_int m))

let estimate t =
  let m = t.fam.m in
  let sum = ref 0.0 and zeros = ref 0 in
  for j = 0 to m - 1 do
    let r = Char.code (Bytes.get t.regs j) in
    sum := !sum +. (2.0 ** Float.of_int (-r));
    if r = 0 then incr zeros
  done;
  let mf = Float.of_int m in
  let raw = alpha m *. mf *. mf /. !sum in
  if raw <= 2.5 *. mf && !zeros > 0 then mf *. Float.log (mf /. Float.of_int !zeros)
  else raw

let size_bytes t = t.fam.m

(* Each register of the target exceeding the receiver's ships as a
   (register index, value) pair: 3 bytes. *)
let delta_bytes ~from target =
  let missing = ref 0 in
  for j = 0 to target.fam.m - 1 do
    if Char.code (Bytes.get target.regs j) > Char.code (Bytes.get from.regs j)
    then incr missing
  done;
  3 * !missing

let equal a b = Bytes.equal a.regs b.regs

let family_of t = t.fam

let to_bytes t = Bytes.copy t.regs

let of_bytes fam buf =
  if Bytes.length buf <> fam.m then
    invalid_arg "Hyperloglog.of_bytes: buffer length does not match the family";
  Bytes.iter
    (fun c ->
      if Char.code c > 63 then
        invalid_arg "Hyperloglog.of_bytes: register value out of range")
    buf;
  { fam; regs = Bytes.copy buf }
