lib/sketch/fm.ml: Array Bytes Float Fm_bitmap Int64 Wd_hashing
