lib/sketch/bjkst.ml: Array Bytes Float Hashtbl Int32 Int64 Wd_hashing
