lib/sketch/fm_window.mli: Wd_hashing
