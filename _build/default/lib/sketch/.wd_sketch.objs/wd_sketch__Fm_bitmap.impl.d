lib/sketch/fm_bitmap.ml: Float Int64 Wd_hashing
