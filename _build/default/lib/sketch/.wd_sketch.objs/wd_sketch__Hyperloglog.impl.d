lib/sketch/hyperloglog.ml: Bytes Char Float Int64 Wd_hashing
