lib/sketch/distinct_sampler.ml: Bytes Float Hashtbl Int32 Int64 Option Wd_hashing
