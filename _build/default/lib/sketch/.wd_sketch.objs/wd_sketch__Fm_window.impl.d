lib/sketch/fm_window.ml: Array Float Fm_bitmap Wd_hashing
