lib/sketch/hyperloglog.mli: Wd_hashing
