lib/sketch/fm.mli: Wd_hashing
