lib/sketch/bjkst.mli: Wd_hashing
