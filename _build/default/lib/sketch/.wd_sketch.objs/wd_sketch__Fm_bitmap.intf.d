lib/sketch/fm_bitmap.mli:
