lib/sketch/sketch_intf.ml: Wd_hashing
