lib/sketch/distinct_sampler.mli: Wd_hashing
