type t = { epsilon : float; theta : float; alpha : float; confidence : float }

let check_unit_interval name x =
  if x <= 0.0 || x >= 1.0 then
    invalid_arg (Printf.sprintf "Params: %s must be in (0,1), got %g" name x)

let make ?(theta_fraction = 0.3) ?(confidence = 0.9) ~epsilon () =
  check_unit_interval "epsilon" epsilon;
  check_unit_interval "theta_fraction" theta_fraction;
  check_unit_interval "confidence" confidence;
  let theta = theta_fraction *. epsilon in
  { epsilon; theta; alpha = epsilon -. theta; confidence }

let with_theta ~theta ~alpha ?(confidence = 0.9) () =
  if theta <= 0.0 then invalid_arg "Params: theta must be positive";
  if alpha <= 0.0 then invalid_arg "Params: alpha must be positive";
  check_unit_interval "confidence" confidence;
  { epsilon = theta +. alpha; theta; alpha; confidence }

let delta t = 1.0 -. t.confidence

let pp ppf t =
  Format.fprintf ppf "{eps=%g theta=%g alpha=%g conf=%g}" t.epsilon t.theta
    t.alpha t.confidence
