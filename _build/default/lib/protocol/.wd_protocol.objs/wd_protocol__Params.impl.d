lib/protocol/params.ml: Format Printf
