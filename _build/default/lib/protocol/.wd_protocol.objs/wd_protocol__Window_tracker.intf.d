lib/protocol/window_tracker.mli: Wd_net Wd_sketch
