lib/protocol/ds_tracker.mli: Wd_net Wd_sketch
