lib/protocol/window_tracker.ml: Array Float Wd_net Wd_sketch
