lib/protocol/predictive.ml: Array Float Wd_net Wd_sketch
