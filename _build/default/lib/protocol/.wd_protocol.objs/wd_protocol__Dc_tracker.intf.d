lib/protocol/dc_tracker.mli: Wd_net Wd_sketch
