lib/protocol/ds_tracker.ml: Array Float Hashtbl Option String Wd_net Wd_sketch
