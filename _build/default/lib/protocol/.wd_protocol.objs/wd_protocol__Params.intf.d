lib/protocol/params.mli: Format
