lib/protocol/predictive.mli: Wd_net Wd_sketch
