lib/protocol/dc_tracker.ml: Array Float Hashtbl String Wd_net Wd_sketch
