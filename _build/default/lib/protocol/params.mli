(** Accuracy-parameter bookkeeping for the tracking protocols.

    The coordinator's total error guarantee [epsilon] (Definition 1) is
    split between two sources (Section 4):

    - [alpha] — the inherent sketch approximation error, and
    - [theta] — the permitted "lag": how far the true quantity may drift
      beyond what the coordinator last heard before a site must speak up.

    All protocols guarantee error at most [alpha + theta] with probability
    [>= 1 - delta] (Lemma 1), so any split with [alpha + theta = epsilon]
    is sound; the communication cost depends strongly on the split, which
    is exactly what Figures 5(a)/5(e) explore.  The paper's experimental
    optimum is around [theta = 0.3 * epsilon] (closer to [0.15 * epsilon]
    for the LS algorithm). *)

type t = private {
  epsilon : float;  (** total relative-error budget at the coordinator *)
  theta : float;  (** lag share of the budget *)
  alpha : float;  (** sketch share: [epsilon - theta] *)
  confidence : float;  (** [1 - delta] *)
}

val make : ?theta_fraction:float -> ?confidence:float -> epsilon:float ->
  unit -> t
(** [make ~epsilon ()] splits the budget as [theta = theta_fraction *
    epsilon] (default [0.3], the paper's experimental optimum) with
    confidence [0.9] (the paper's [delta = 0.1]).  Requires
    [0 < epsilon < 1] and [0 < theta_fraction < 1]. *)

val with_theta : theta:float -> alpha:float -> ?confidence:float -> unit -> t
(** Explicit split; [epsilon] is their sum.  Both must be positive. *)

val delta : t -> float
(** [1 - confidence]. *)

val pp : Format.formatter -> t -> unit
