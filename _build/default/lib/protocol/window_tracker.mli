(** Continuous distributed tracking of the number of distinct items in a
    sliding window — the Section 8 extension of the distinct-count
    protocols.

    Same star topology and conservative skeleton as {!Dc_tracker}, with
    three changes forced by window semantics:

    - sites hold {!Wd_sketch.Fm_window} sketches, and every arrival
      carries a timestamp (a shared, nondecreasing clock: event index or
      tick count);
    - the tracked quantity can {e fall} as the window slides, so sites
      trigger on leaving a two-sided band
      [(D^t / (1 + theta/k), D^t (1 + theta/k))], and must be prodded by
      {!tick} even when no items arrive (an idle site's old items still
      expire);
    - both directions of sketch traffic are delta-encoded against the
      coordinator's model of each site (the Section 4.2 difference
      encoding) — timestamp refreshes would otherwise make full-sketch
      shipping prohibitively chatty.

    Supported algorithms: [NS], [SC] and [LS] (the useful points of the
    design space); [SS]'s eager broadcast and [EC] do not transfer
    meaningfully to windows — the exact baseline is {!exact_bytes}:
    forwarding every update with its timestamp. *)

type algorithm = NS | SC | LS

val algorithm_to_string : algorithm -> string
val all_algorithms : algorithm list

type t

val create :
  ?cost_model:Wd_net.Network.cost_model ->
  algorithm:algorithm ->
  theta:float ->
  window:int ->
  sites:int ->
  family:Wd_sketch.Fm_window.family ->
  unit ->
  t
(** Requires [sites >= 1], [theta > 0], [window >= 1]. *)

val observe : t -> site:int -> time:int -> int -> unit
(** [observe t ~site ~time v]: item [v] arrives at [site] at [time].
    Times must be nondecreasing across calls (a shared clock). *)

val tick : t -> time:int -> unit
(** [tick t ~time] advances the clock without an arrival, letting every
    site notice windowed estimates that have decayed out of its band.
    Call at whatever granularity the monitoring application needs. *)

val estimate : t -> now:int -> float
(** The coordinator's windowed distinct estimate at time [now] — no
    communication needed; expiry is evaluated locally. *)

val window : t -> int
val algorithm_of : t -> algorithm
val network : t -> Wd_net.Network.t
val sends : t -> int

val exact_bytes : updates:int -> int
(** Cost of the exact baseline on [updates] arrivals: every update is
    forwarded with its timestamp (item + 6-byte timestamp + header). *)
