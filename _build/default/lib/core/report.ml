type cell = S of string | I of int | F of float | R of float

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.4g" f
  | R r -> Printf.sprintf "%.3e" r

let render ~header rows =
  let rows_s = List.map (List.map cell_to_string) rows in
  let all = header :: rows_s in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let s = Option.value (List.nth_opt row c) ~default:"" in
           (* Left-align the first column (labels), right-align numbers. *)
           if c = 0 then Printf.sprintf "%-*s" w s
           else Printf.sprintf "%*s" w s)
         widths)
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows_s)

let render_csv ~header rows =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n"
    (line header :: List.map (fun r -> line (List.map cell_to_string r)) rows)

let print_section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar

let print_table ~header rows = print_endline (render ~header rows)

let print_kv kvs =
  let w =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 kvs
  in
  List.iter (fun (k, v) -> Printf.printf "%-*s : %s\n" w k v) kvs
