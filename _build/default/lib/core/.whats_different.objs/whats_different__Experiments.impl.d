lib/core/experiments.ml: Array Float Fun Hashtbl List Option Printf Report Simulation Wd_aggregate Wd_frequency Wd_hashing Wd_net Wd_protocol Wd_sketch Wd_workload
