lib/core/monitor.ml: List Option Wd_aggregate Wd_hashing Wd_net Wd_protocol Wd_sketch
