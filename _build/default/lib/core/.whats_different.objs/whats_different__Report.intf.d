lib/core/report.mli:
