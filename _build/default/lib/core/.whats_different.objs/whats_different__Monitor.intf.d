lib/core/monitor.mli: Wd_aggregate Wd_net Wd_protocol
