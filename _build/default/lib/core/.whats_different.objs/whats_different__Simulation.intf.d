lib/core/simulation.mli: Wd_aggregate Wd_net Wd_protocol Wd_sketch Wd_workload
