lib/core/simulation.ml: Array Float Hashtbl List Seq Wd_aggregate Wd_hashing Wd_net Wd_protocol Wd_sketch Wd_workload
