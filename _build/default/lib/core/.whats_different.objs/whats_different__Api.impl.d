lib/core/api.ml: Wd_aggregate Wd_frequency Wd_hashing Wd_net Wd_protocol Wd_sketch Wd_workload
