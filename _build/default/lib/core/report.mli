(** Plain-text table rendering for experiment output.

    The benchmark harness prints, for every figure of the paper, the rows
    or series that figure plots; this module renders them as aligned
    monospace tables (and optionally CSV) so the output can be read
    directly or piped into a plotting tool. *)

type cell = S of string | I of int | F of float | R of float
(** One table cell: string, integer, float ([%.4g]) or ratio
    ([%.3e] — communication-cost ratios span orders of magnitude). *)

val render : header:string list -> cell list list -> string
(** Aligned monospace table with a rule under the header. *)

val render_csv : header:string list -> cell list list -> string

val print_section : string -> unit
(** A titled separator on stdout. *)

val print_table : header:string list -> cell list list -> unit

val print_kv : (string * string) list -> unit
(** Aligned [key: value] lines, for experiment parameter blocks. *)
