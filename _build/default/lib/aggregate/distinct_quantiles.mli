(** Duplicate-resilient quantiles (Section 6.2, footnote 3).

    The [q]-quantile over distinct items: the value [x] such that a [q]
    fraction of the {e distinct} items of the union stream are [<= x] —
    insensitive to how often each item is repeated or at how many sites it
    appears.

    Following the paper's pointer to [10], the structure is a dyadic
    decomposition over the item domain [\[0, universe)] (rounded up to a
    power of two): one {!Fm_array} per dyadic level [h], keyed by the
    bucket [item lsr h] and counting the distinct items inside the bucket.
    The duplicate-resilient rank of [x] is then the sum of the distinct
    counts of the O(log U) dyadic intervals composing [\[0, x\]], and a
    quantile query binary-searches the rank.

    {!Centralized} is the single-site structure; {!Tracked} runs every
    cell of every level under a distinct-count tracking protocol, exactly
    as for distinct heavy hitters. *)

type config = {
  universe : int;  (** item domain size; rounded up to a power of two *)
  rows : int;  (** hash rows per level *)
  cols : int;  (** cells per row per level *)
  bitmaps : int;  (** FM repetitions per cell *)
}

val default_config : config
(** [universe = 16384; rows = 3; cols = 256; bitmaps = 8]. *)

type family

val family : rng:Wd_hashing.Rng.t -> config -> family
val levels : family -> int
(** Number of dyadic levels, [log2 universe + 1]. *)

module Centralized : sig
  type t

  val create : family:family -> t
  val add : t -> int -> unit
  (** [add t x] inserts item [x] in [\[0, universe)]. *)

  val rank : t -> int -> float
  (** [rank t x] approximates the number of distinct items [<= x]. *)

  val distinct : t -> float
  (** Approximate total distinct count ([rank] of the top of the domain). *)

  val quantile : t -> float -> int
  (** [quantile t q] for [q] in [\[0, 1\]]: the smallest [x] whose rank
      reaches [q * distinct]. *)

  val median : t -> int
end

module Tracked : sig
  type t

  val create :
    ?cost_model:Wd_net.Network.cost_model ->
    ?item_batching:bool ->
    algorithm:Wd_protocol.Dc_tracker.algorithm ->
    theta:float ->
    sites:int ->
    family:family ->
    unit ->
    t

  val observe : t -> site:int -> int -> unit
  val rank : t -> int -> float
  val distinct : t -> float
  val quantile : t -> float -> int
  val median : t -> int
  val network : t -> Wd_net.Network.t
end

val exact_rank : (int, int) Hashtbl.t -> int -> int
(** Ground truth from exact multiplicities: number of distinct keys
    [<= x]. *)

val exact_quantile : (int, int) Hashtbl.t -> float -> int option
(** Ground truth [q]-quantile over distinct keys. *)
