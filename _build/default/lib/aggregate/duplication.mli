(** Duplicate-resilient "amount of duplication" aggregates (Section 6.1)
    and the inverse-distribution queries they generalize to.

    All estimators consume a {e distinct sample}: the coordinator output of
    a {!Wd_protocol.Ds_tracker} (or a standalone
    {!Wd_sketch.Distinct_sampler}) — [(item, count)] pairs drawn uniformly
    from the distinct items, each count within a [1 + theta] factor of the
    item's true global occurrence count, plus the sampling [level].

    Because the sample is uniform over {e distinct} items (not weighted by
    multiplicity), the fraction of sampled items satisfying a predicate on
    their count is an unbiased estimator of the same fraction over all
    distinct items — the inverse distribution [f^-1] of Cormode,
    Muthukrishnan & Rozenbaum (VLDB 2005).  With sample size
    [T = Omega(1/eps^2 log 1/delta)] every such fraction is within
    [+- eps] with probability [1 - delta].

    Count-valued answers (median duplication, count quantiles) inherit the
    extra [1 + theta] count uncertainty; purely threshold-based answers
    (e.g. "is the count exactly 1") are unaffected by [theta] as long as
    [theta < 1], since a true count of 1 cannot be confused with a true
    count of 2 or more. *)

type sample = (int * int) list
(** Retained [(item, count)] pairs from the coordinator. *)

val unique_count : level:int -> sample -> float
(** Estimated number of items seen {e exactly once} globally: the number
    of count-1 pairs scaled by [2^level] (each retained item stands for
    [2^level] distinct items). *)

val distinct_count : level:int -> sample -> float
(** The sampler's own distinct-count estimate, [|sample| * 2^level]. *)

val fraction : (int -> bool) -> sample -> float
(** [fraction pred s] is the fraction of distinct items whose occurrence
    count satisfies [pred] ([0] on an empty sample). *)

val inverse_quantile : count:int -> sample -> float
(** [inverse_quantile ~count s] estimates the fraction of distinct items
    occurring at most [count] times — the inverse cumulative
    distribution evaluated at [count]. *)

val inverse_range : lo:int -> hi:int -> sample -> float
(** Fraction of distinct items with count in [\[lo, hi\]]. *)

val inverse_heavy_hitters : phi:float -> sample -> (int * float) list
(** Occurrence counts [c] whose share of distinct items is at least
    [phi], with their estimated shares, sorted by share descending — the
    "inverse heavy hitters" of the inverse distribution. *)

val count_quantile : q:float -> sample -> int option
(** [count_quantile ~q s] is the [q]-quantile (in [\[0,1\]]) of the
    per-item occurrence counts: an approximation of the count [c] such
    that a [q] fraction of distinct items occur at most [c] times.
    [None] on an empty sample. *)

val median_count : sample -> int option
(** [count_quantile ~q:0.5]: the median amount of duplication. *)

val mean_count : sample -> float
(** Average occurrence count over distinct items ([0] on empty). *)

val value_quantile : q:float -> sample -> int option
(** [value_quantile ~q s] is the [q]-quantile of the {e item values}
    over the distinct items — a duplicate-resilient quantile in the
    sense of Section 6.2, estimated directly from the distinct sample
    (each sampled item stands for [2^level] distinct items uniformly, so
    the sample's order statistics estimate the population's).  This is
    the sampling route to the same query the dyadic-FM structure
    ({!Distinct_quantiles}) answers; the [ablation_quantiles] benchmark
    compares the two. *)

val value_median : sample -> int option
(** [value_quantile ~q:0.5]. *)
