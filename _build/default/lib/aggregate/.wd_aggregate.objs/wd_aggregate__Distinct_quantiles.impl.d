lib/aggregate/distinct_quantiles.ml: Array Float Fm_array Hashtbl List Tracked_fm_array Wd_hashing Wd_net
