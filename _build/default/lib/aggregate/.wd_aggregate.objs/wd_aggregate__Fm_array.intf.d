lib/aggregate/fm_array.mli: Wd_hashing Wd_sketch
