lib/aggregate/duplication.ml: Float Hashtbl List Option
