lib/aggregate/tracked_fm_array.mli: Fm_array Wd_net Wd_protocol
