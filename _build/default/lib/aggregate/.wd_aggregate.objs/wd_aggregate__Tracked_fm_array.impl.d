lib/aggregate/tracked_fm_array.ml: Array Float Fm_array Wd_net Wd_protocol
