lib/aggregate/distinct_quantiles.mli: Hashtbl Wd_hashing Wd_net Wd_protocol
