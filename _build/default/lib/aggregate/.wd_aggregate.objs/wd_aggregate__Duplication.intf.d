lib/aggregate/duplication.mli:
