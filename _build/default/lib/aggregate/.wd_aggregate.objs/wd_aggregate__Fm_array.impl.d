lib/aggregate/fm_array.ml: Array Float Int64 Splitmix Wd_hashing Wd_sketch
