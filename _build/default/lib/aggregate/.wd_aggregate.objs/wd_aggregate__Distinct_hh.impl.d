lib/aggregate/distinct_hh.ml: Float Fm_array Hashtbl List Seq Tracked_fm_array
