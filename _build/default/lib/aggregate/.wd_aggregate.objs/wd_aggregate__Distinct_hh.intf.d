lib/aggregate/distinct_hh.mli: Fm_array Hashtbl Seq Wd_net Wd_protocol
