module Rng = Wd_hashing.Rng
module Universal = Wd_hashing.Universal
module Fm = Wd_sketch.Fm

type config = { rows : int; cols : int; bitmaps : int }

let config_cells c = c.rows * c.cols

type family = {
  cfg : config;
  row_hashes : Universal.t array;
  fm_family : Fm.family;
}

type t = { fam : family; cells : Fm.t array (* row-major rows x cols *) }

let family ~rng cfg =
  if cfg.rows < 1 || cfg.cols < 1 || cfg.bitmaps < 1 then
    invalid_arg "Fm_array.family: rows, cols, bitmaps must be >= 1";
  {
    cfg;
    row_hashes = Array.init cfg.rows (fun _ -> Universal.of_rng rng);
    fm_family = Fm.family_custom ~rng ~variant:Fm.Stochastic ~bitmaps:cfg.bitmaps;
  }

let config fam = fam.cfg

let fm_family fam = fam.fm_family

let create fam =
  {
    fam;
    cells = Array.init (config_cells fam.cfg) (fun _ -> Fm.create fam.fm_family);
  }

let copy t = { t with cells = Array.map Fm.copy t.cells }

let cell_index fam ~row ~key =
  Universal.to_range fam.row_hashes.(row) ~buckets:fam.cfg.cols key

let cell t ~row ~col = t.cells.((row * t.fam.cfg.cols) + col)

let add t ~key ~element =
  let fam = t.fam in
  let changed = ref false in
  for row = 0 to fam.cfg.rows - 1 do
    let col = cell_index fam ~row ~key in
    if Fm.add (cell t ~row ~col) element then changed := true
  done;
  !changed

let estimate t ~key =
  let fam = t.fam in
  let best = ref Float.infinity in
  for row = 0 to fam.cfg.rows - 1 do
    let col = cell_index fam ~row ~key in
    let e = Fm.estimate (cell t ~row ~col) in
    if e < !best then best := e
  done;
  !best

let merge_into ~dst src =
  Array.iteri
    (fun i c -> Fm.merge_into ~dst:dst.cells.(i) c)
    src.cells

let equal a b =
  Array.length a.cells = Array.length b.cells
  && (let ok = ref true in
      Array.iteri
        (fun i c -> if not (Fm.equal c b.cells.(i)) then ok := false)
        a.cells;
      !ok)

let cell_size_bytes fam = 8 * fam.cfg.bitmaps

let size_bytes fam = config_cells fam.cfg * cell_size_bytes fam

let pair_element ~v ~w =
  let open Wd_hashing in
  let mixed = Splitmix.mix_seeded ~seed:(Int64.of_int v) (Int64.of_int w) in
  Int64.to_int (Int64.shift_right_logical mixed 2)
