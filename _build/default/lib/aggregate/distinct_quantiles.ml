module Rng = Wd_hashing.Rng

type config = { universe : int; rows : int; cols : int; bitmaps : int }

let default_config = { universe = 16_384; rows = 3; cols = 256; bitmaps = 8 }

let round_up_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

type family = {
  cfg : config;
  pow2_universe : int;
  nlevels : int; (* log2 pow2_universe + 1 *)
  per_level : Fm_array.family array;
}

let family ~rng cfg =
  if cfg.universe < 2 then
    invalid_arg "Distinct_quantiles.family: universe must be >= 2";
  let pow2_universe = round_up_pow2 cfg.universe in
  let rec log2 n acc = if n = 1 then acc else log2 (n / 2) (acc + 1) in
  let nlevels = log2 pow2_universe 0 + 1 in
  let level_family h =
    (* Level h has pow2_universe / 2^h buckets; no point hashing a handful
       of buckets into more columns than there are buckets. *)
    let buckets = pow2_universe lsr h in
    let cols = max 1 (min cfg.cols buckets) in
    Fm_array.family ~rng { rows = cfg.rows; cols; bitmaps = cfg.bitmaps }
  in
  { cfg; pow2_universe; nlevels; per_level = Array.init nlevels level_family }

let levels fam = fam.nlevels

let check_item fam x =
  if x < 0 || x >= fam.pow2_universe then
    invalid_arg "Distinct_quantiles: item outside the universe"

(* Decompose [0, x] into dyadic intervals and sum their per-level
   estimates via [estimate_at : level -> bucket -> float]. *)
let rank_with fam ~estimate_at x =
  check_item fam x;
  let remaining = x + 1 in
  let total = ref 0.0 and pos = ref 0 in
  for h = fam.nlevels - 1 downto 0 do
    if (remaining lsr h) land 1 = 1 then begin
      total := !total +. estimate_at h (!pos lsr h);
      pos := !pos + (1 lsl h)
    end
  done;
  !total

let quantile_with fam ~rank q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Distinct_quantiles.quantile: q must be in [0,1]";
  let target = q *. rank (fam.pow2_universe - 1) in
  (* Least x whose rank reaches the target. *)
  let lo = ref 0 and hi = ref (fam.pow2_universe - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if rank mid >= target then hi := mid else lo := mid + 1
  done;
  !lo

module Centralized = struct
  type t = { fam : family; arrays : Fm_array.t array }

  let create ~family:fam =
    { fam; arrays = Array.map Fm_array.create fam.per_level }

  let add t x =
    check_item t.fam x;
    for h = 0 to t.fam.nlevels - 1 do
      ignore (Fm_array.add t.arrays.(h) ~key:(x lsr h) ~element:x : bool)
    done

  let rank t x =
    rank_with t.fam
      ~estimate_at:(fun h bucket -> Fm_array.estimate t.arrays.(h) ~key:bucket)
      x

  let distinct t = rank t (t.fam.pow2_universe - 1)

  let quantile t q = quantile_with t.fam ~rank:(rank t) q

  let median t = quantile t 0.5
end

module Tracked = struct
  type t = { fam : family; arrays : Tracked_fm_array.t array; net : Wd_net.Network.t }

  let create ?(cost_model = Wd_net.Network.Unicast) ?item_batching ~algorithm
      ~theta ~sites ~family:fam () =
    (* One ledger shared by every cell of every level: [network t] reports
       the full communication cost of the quantile structure. *)
    let net = Wd_net.Network.create ~cost_model ~sites () in
    let arrays =
      Array.map
        (fun lf ->
          Tracked_fm_array.create ~network:net ?item_batching ~algorithm
            ~theta ~sites ~family:lf ())
        fam.per_level
    in
    { fam; arrays; net }

  let observe t ~site x =
    check_item t.fam x;
    for h = 0 to t.fam.nlevels - 1 do
      Tracked_fm_array.observe t.arrays.(h) ~site ~key:(x lsr h) ~element:x
    done

  let rank t x =
    rank_with t.fam
      ~estimate_at:(fun h bucket ->
        Tracked_fm_array.estimate t.arrays.(h) ~key:bucket)
      x

  let distinct t = rank t (t.fam.pow2_universe - 1)

  let quantile t q = quantile_with t.fam ~rank:(rank t) q

  let median t = quantile t 0.5

  let network t = t.net
end

let exact_rank multiplicities x =
  Hashtbl.fold (fun v _ acc -> if v <= x then acc + 1 else acc) multiplicities 0

let exact_quantile multiplicities q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Distinct_quantiles.exact_quantile: q must be in [0,1]";
  let keys =
    List.sort compare (Hashtbl.fold (fun v _ acc -> v :: acc) multiplicities [])
  in
  match keys with
  | [] -> None
  | _ ->
    let n = List.length keys in
    let rank = min (n - 1) (int_of_float (q *. Float.of_int n)) in
    Some (List.nth keys rank)
