(** A [rows x cols] array of small FM sketches keyed by hashing — the
    data structure of Cormode & Muthukrishnan (PODS 2005) and
    Hadjieleftheriou, Byers & Kollios (2005) that Section 6.2 builds
    distinct heavy hitters on.

    Conceptually a Count-Min layout where each counter is replaced by an
    FM sketch: row [j] hashes the key [v] to one of [cols] cells with
    [f_j], and the {e element} (for heavy hitters, the full pair [(v, w)])
    is inserted into that cell's FM sketch.  The estimate for [v] —
    the number of distinct elements inserted under key [v] — is the
    minimum over rows of the FM estimate of [v]'s cell, since colliding
    keys can only inflate a cell.

    Mergeable cell-by-cell (bitwise OR), so the same structure works
    centralized or distributed. *)

type config = {
  rows : int;  (** independent hash rows [d] (paper experiment: 3) *)
  cols : int;  (** cells per row [c] (paper experiment: ~500) *)
  bitmaps : int;  (** FM repetitions per cell (paper experiment: 10) *)
}

val config_cells : config -> int
(** [rows * cols] — the paper quotes "about 1500 FM sketches". *)

type family
(** Shared row hashes and per-cell FM family; all arrays of one family
    are mergeable. *)

type t

val family : rng:Wd_hashing.Rng.t -> config -> family
val config : family -> config

val fm_family : family -> Wd_sketch.Fm.family
(** The per-cell FM family (shared by every cell of the array). *)

val create : family -> t
val copy : t -> t

val add : t -> key:int -> element:int -> bool
(** [add t ~key ~element] inserts [element] into [key]'s cell in every
    row; [true] iff any cell sketch changed. *)

val estimate : t -> key:int -> float
(** Min-over-rows distinct-element estimate for [key]. *)

val merge_into : dst:t -> t -> unit
val equal : t -> t -> bool

val cell : t -> row:int -> col:int -> Wd_sketch.Fm.t
(** Direct cell access (used by the distributed tracker and tests). *)

val cell_index : family -> row:int -> key:int -> int
(** The column [f_row key] a key maps to. *)

val size_bytes : family -> int
(** Wire size of a full array: [rows * cols * bitmaps * 8]. *)

val cell_size_bytes : family -> int
(** Wire size of one cell sketch: [bitmaps * 8]. *)

val pair_element : v:int -> w:int -> int
(** Injective-with-high-probability encoding of a pair [(v, w)] into one
    element: a 62-bit mix of both coordinates.  Used to make "(v, w) pair"
    streams insertable into per-cell FM sketches. *)
