let golden_gamma = 0x9E3779B97F4A7C15L

(* Constants from Steele, Lea & Flood; identical to Java's SplittableRandom. *)
let mix x =
  let x = Int64.logxor x (Int64.shift_right_logical x 30) in
  let x = Int64.mul x 0xBF58476D1CE4E5B9L in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  let x = Int64.mul x 0x94D049BB133111EBL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let mix_seeded ~seed x = mix (Int64.add (mix seed) x)

type t = { mutable state : int64 }

let create seed = { state = mix seed }

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = create (next g)

let state g = g.state

let of_state s = { state = s }
