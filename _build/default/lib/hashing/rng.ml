type t = Splitmix.t

let create seed = Splitmix.create (Int64.of_int seed)

let int64 = Splitmix.next

let split = Splitmix.split

let copy g = Splitmix.of_state (Splitmix.state g)

let bits30 g = Int64.to_int (Int64.shift_right_logical (int64 g) 34)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n <= 1 lsl 30 then begin
    (* Rejection sampling on 30-bit words to avoid modulo bias. *)
    let bound = 1 lsl 30 in
    let limit = bound - (bound mod n) in
    let rec draw () =
      let r = bits30 g in
      if r < limit then r mod n else draw ()
    in
    draw ()
  end
  else begin
    let mask = (1 lsl 62) - 1 in
    let rec draw () =
      let r = Int64.to_int (Int64.shift_right_logical (int64 g) 2) land mask in
      if r < mask - (mask mod n) then r mod n else draw ()
    in
    draw ()
  end

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (int64 g) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (int64 g) 1L = 1L

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let geometric_level g =
  (* Trailing zeros of a uniform word are geometric with p = 1/2. *)
  let rec count x i =
    if i >= 63 then i
    else if Int64.logand x 1L = 1L then i
    else count (Int64.shift_right_logical x 1) (i + 1)
  in
  count (int64 g) 0
