lib/hashing/rng.mli:
