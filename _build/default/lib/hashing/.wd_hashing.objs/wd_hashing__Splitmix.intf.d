lib/hashing/splitmix.mli:
