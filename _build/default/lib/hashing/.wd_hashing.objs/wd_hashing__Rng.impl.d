lib/hashing/rng.ml: Array Int64 Splitmix
