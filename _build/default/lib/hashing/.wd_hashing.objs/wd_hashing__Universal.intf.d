lib/hashing/universal.mli: Rng
