lib/hashing/geometric.mli: Universal
