lib/hashing/tabulation.mli: Rng
