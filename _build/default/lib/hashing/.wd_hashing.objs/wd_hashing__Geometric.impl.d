lib/hashing/geometric.ml: Int64 Universal
