lib/hashing/universal.ml: Int64 Rng Splitmix
