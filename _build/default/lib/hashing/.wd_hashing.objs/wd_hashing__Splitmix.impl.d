lib/hashing/splitmix.ml: Int64
