type t = int64 array array (* 8 tables of 256 random words *)

let create rng =
  Array.init 8 (fun _ -> Array.init 256 (fun _ -> Rng.int64 rng))

let hash64 (tables : t) x =
  let h = ref 0L in
  for byte = 0 to 7 do
    let idx =
      Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * byte)) 0xFFL)
    in
    h := Int64.logxor !h tables.(byte).(idx)
  done;
  !h

let hash tables x = hash64 tables (Int64.of_int x)
