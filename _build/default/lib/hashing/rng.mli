(** Deterministic pseudo-random number generator used throughout the
    reproduction.

    All experiment randomness (workload generation, hash-family seeds,
    shuffles) flows through explicit [Rng.t] values created from integer
    seeds, so that every test and every benchmark is reproducible bit-for-bit
    across runs.  The generator is SplitMix64 ({!Splitmix}). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator determined entirely by [seed]. *)

val copy : t -> t
(** [copy g] is an independent generator currently in the same state as
    [g]; advancing one does not affect the other. *)

val split : t -> t
(** [split g] advances [g] and returns a generator with an independent
    stream.  Use to hand sub-generators to sub-components. *)

val int64 : t -> int64
(** [int64 g] is a uniform 64-bit word. *)

val bits30 : t -> int
(** [bits30 g] is a uniform integer in [\[0, 2^30)]. *)

val int : t -> int -> int
(** [int g n] is a uniform integer in [\[0, n)].  Requires [n > 0];
    unbiased (rejection sampling). *)

val float : t -> float -> float
(** [float g x] is a uniform float in [\[0, x)]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place g a] applies a uniform Fisher–Yates permutation. *)

val geometric_level : t -> int
(** [geometric_level g] draws [i >= 0] with probability [2^-(i+1)]: the
    number of leading heads in a sequence of fair coin flips.  Matches the
    level distribution of {!Geometric.level} over fresh random keys. *)
