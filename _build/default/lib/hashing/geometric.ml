(* Branchless-ish trailing-zero count via de Bruijn would be overkill here;
   a byte-stepped loop is fast enough and obviously correct. *)
let trailing_zeros w =
  if w = 0L then 64
  else begin
    let w = ref w and n = ref 0 in
    while Int64.logand !w 0xFFL = 0L do
      w := Int64.shift_right_logical !w 8;
      n := !n + 8
    done;
    while Int64.logand !w 1L = 0L do
      w := Int64.shift_right_logical !w 1;
      incr n
    done;
    !n
  end

let level64 h v = min 63 (trailing_zeros (Universal.hash64 h v))

let level h v = level64 h (Int64.of_int v)
