(** Keyed 64-bit hash functions.

    A {!t} is one member of a hash family, selected by a seed.  The default
    family is the SplitMix64 finalizer keyed by the seed, which behaves like
    an ideal hash in practice; {!multiply_shift} gives the classical
    2-universal multiply-shift family of Dietzfelbinger et al. when provable
    (rather than empirical) universality is wanted. *)

type t
(** One hash function: a total map from 64-bit keys to 64-bit values. *)

val create : seed:int64 -> t
(** [create ~seed] is the seeded SplitMix64-finalizer hash. *)

val of_rng : Rng.t -> t
(** [of_rng rng] draws a fresh function from [rng]. *)

val multiply_shift : Rng.t -> t
(** [multiply_shift rng] draws a member of the 2-universal multiply-shift
    family: [h(x) = (a*x + b) >>> 0] over 64-bit arithmetic with odd [a]. *)

val hash : t -> int -> int64
(** [hash h x] applies [h] to the (non-negative) integer key [x]. *)

val hash64 : t -> int64 -> int64
(** [hash64 h x] applies [h] to a raw 64-bit key. *)

val to_range : t -> buckets:int -> int -> int
(** [to_range h ~buckets x] maps [x] uniformly onto [\[0, buckets)].
    Requires [buckets > 0]. *)
