(** Simple tabulation hashing (Zobrist; Pǎtraşcu & Thorup).

    The 64-bit key is split into eight bytes; each byte indexes a table of
    random 64-bit words and the results are XORed.  Simple tabulation is
    3-independent and behaves far better than its independence suggests
    (Chernoff-style concentration for many applications, including distinct
    counting).  It is the strongest family offered here and the one used by
    the sketches when [~family:`Tabulation] is requested. *)

type t

val create : Rng.t -> t
(** [create rng] fills the 8×256 tables from [rng] (2 KiB of state). *)

val hash : t -> int -> int64
(** [hash h x] hashes the non-negative integer key [x]. *)

val hash64 : t -> int64 -> int64
(** [hash64 h x] hashes a raw 64-bit key. *)
