(** SplitMix64: a fast, high-quality 64-bit mixing function and sequential
    pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).

    Two distinct uses in this library:

    - {!mix} is a stateless bijective finalizer used to build hash functions
      over 64-bit keys.  It passes avalanche tests and is the standard way to
      approximate the "ideal" hash functions assumed by the Flajolet–Martin
      analysis.
    - {!t} is a tiny splittable PRNG used to seed the other generators and
      hash families deterministically. *)

(** {1 Stateless mixing} *)

val mix : int64 -> int64
(** [mix x] is the SplitMix64 finalizer of [x]: a fixed bijection on 64-bit
    words with full avalanche (each input bit flips each output bit with
    probability close to 1/2). *)

val mix_seeded : seed:int64 -> int64 -> int64
(** [mix_seeded ~seed x] mixes [x] after combining it with [seed], giving a
    cheap keyed hash family indexed by [seed].  Distinct seeds give
    (empirically) independent hash functions. *)

(** {1 Sequential generator} *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val next : t -> int64
(** [next g] advances [g] and returns the next 64-bit output. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of the remainder of [g]'s stream. *)

val state : t -> int64
(** [state g] is the raw internal state word, for checkpointing. *)

val of_state : int64 -> t
(** [of_state s] is a generator whose internal state is exactly [s];
    inverse of {!state}. *)
