module Rng = Wd_hashing.Rng

let phase_boundary ~sites ~per_site = sites * per_site

let generate ?(seed = 7) ~sites:k ~per_site:n () =
  if k < 1 || n < 1 then invalid_arg "Two_phase.generate: need sites, per_site >= 1";
  let rng = Rng.create seed in
  let universe = k * n in
  let phase1 =
    Array.init k (fun i ->
        let items = Array.init n (fun j -> (i * n) + j) in
        Wd_hashing.Rng.shuffle_in_place rng items;
        Stream.make ~sites:(Array.make n i) ~items)
  in
  let phase2 =
    Array.init k (fun i ->
        let items = Array.init universe Fun.id in
        Rng.shuffle_in_place rng items;
        Stream.make ~sites:(Array.make universe i) ~items)
  in
  Stream.concat [ Stream.round_robin phase1; Stream.round_robin phase2 ]
