type t = { sites : int array; items : int array }

let make ~sites ~items =
  if Array.length sites <> Array.length items then
    invalid_arg "Stream.make: sites and items must have equal length";
  { sites; items }

let length t = Array.length t.sites

let site t j = t.sites.(j)
let item t j = t.items.(j)

let num_sites t = Array.fold_left (fun acc s -> max acc (s + 1)) 0 t.sites

let iter f t =
  for j = 0 to length t - 1 do
    f ~site:t.sites.(j) ~item:t.items.(j)
  done

let iteri f t =
  for j = 0 to length t - 1 do
    f j ~site:t.sites.(j) ~item:t.items.(j)
  done

let concat ts =
  {
    sites = Array.concat (List.map (fun t -> t.sites) ts);
    items = Array.concat (List.map (fun t -> t.items) ts);
  }

let prefix t n =
  if n < 0 || n > length t then invalid_arg "Stream.prefix: bad length";
  { sites = Array.sub t.sites 0 n; items = Array.sub t.items 0 n }

let of_events events =
  {
    sites = Array.of_list (List.map fst events);
    items = Array.of_list (List.map snd events);
  }

let round_robin per_site =
  let k = Array.length per_site in
  let total = Array.fold_left (fun acc s -> acc + length s) 0 per_site in
  let sites = Array.make total 0 and items = Array.make total 0 in
  let cursors = Array.make k 0 in
  let out = ref 0 in
  while !out < total do
    for i = 0 to k - 1 do
      if cursors.(i) < length per_site.(i) then begin
        sites.(!out) <- i;
        items.(!out) <- per_site.(i).items.(cursors.(i));
        cursors.(i) <- cursors.(i) + 1;
        incr out
      end
    done
  done;
  { sites; items }

let shuffle rng t =
  let n = length t in
  let perm = Array.init n Fun.id in
  Wd_hashing.Rng.shuffle_in_place rng perm;
  {
    sites = Array.map (fun j -> t.sites.(j)) perm;
    items = Array.map (fun j -> t.items.(j)) perm;
  }

let multiplicities t =
  let counts = Hashtbl.create 4096 in
  iter
    (fun ~site:_ ~item ->
      Hashtbl.replace counts item
        (1 + Option.value (Hashtbl.find_opt counts item) ~default:0))
    t;
  counts

let distinct_count t = Hashtbl.length (multiplicities t)

let duplication_factor t =
  let d = distinct_count t in
  if d = 0 then 0.0 else Float.of_int (length t) /. Float.of_int d
