(* Fenwick tree over arrival positions: each distinct item contributes
   one credit at its latest occurrence position, so a windowed distinct
   count is a prefix-sum difference. *)

type t = {
  mutable bit : int array; (* 1-based Fenwick array *)
  mutable capacity : int; (* positions currently representable *)
  mutable n : int; (* arrivals processed *)
  last : (int, int) Hashtbl.t; (* item -> latest position *)
}

let create ?(initial_capacity = 1024) () =
  let capacity = max 16 initial_capacity in
  {
    bit = Array.make (capacity + 1) 0;
    capacity;
    n = 0;
    last = Hashtbl.create 256;
  }

(* Point update; position must be within capacity. *)
let bump t pos delta =
  let i = ref (pos + 1) in
  while !i <= t.capacity do
    t.bit.(!i) <- t.bit.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* Grow (doubling) until [pos] fits, rebuilding the tree from the live
   item table — called before any update of the current arrival, when
   the table and the tree agree.  Amortized O(log n) per arrival. *)
let ensure_capacity t pos =
  if pos + 1 > t.capacity then begin
    while pos + 1 > t.capacity do
      t.capacity <- 2 * t.capacity
    done;
    t.bit <- Array.make (t.capacity + 1) 0;
    Hashtbl.iter (fun _ p -> bump t p 1) t.last
  end

let add t v =
  let pos = t.n in
  ensure_capacity t pos;
  (match Hashtbl.find_opt t.last v with
  | Some prev -> bump t prev (-1)
  | None -> ());
  bump t pos 1;
  Hashtbl.replace t.last v pos;
  t.n <- t.n + 1

let arrivals t = t.n

let distinct_total t = Hashtbl.length t.last

(* Sum of credits at positions [0, pos]. *)
let prefix t pos =
  let pos = min pos (t.capacity - 1) in
  let acc = ref 0 and i = ref (pos + 1) in
  while !i > 0 do
    acc := !acc + t.bit.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

let distinct_between t ~lo ~hi =
  if hi < lo || hi < 0 then 0
  else
    let lo = max 0 lo in
    prefix t hi - (if lo = 0 then 0 else prefix t (lo - 1))

let distinct_last t w =
  if w <= 0 || t.n = 0 then 0
  else distinct_between t ~lo:(t.n - w) ~hi:(t.n - 1)
