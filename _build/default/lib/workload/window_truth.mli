(** Exact sliding-window distinct counting (evaluation ground truth).

    The number of distinct items among the last [w] arrivals equals the
    number of items whose {e most recent} occurrence lies in the window.
    This module maintains, over a stream processed in arrival order, a
    Fenwick tree over arrival positions holding one credit at each item's
    latest position — so any windowed distinct count is a two-prefix-sum
    query.

    O(log n) per arrival and per query, O(n + distinct) space — linear
    space, so strictly an {e offline} evaluation tool (the whole point of
    the paper's sketches is to avoid this cost online).  Used as ground
    truth by the windowed-tracking tests and experiments. *)

type t

val create : ?initial_capacity:int -> unit -> t

val add : t -> int -> unit
(** Process the next arrival (arrival positions are implicit: 0, 1, ...). *)

val arrivals : t -> int
(** Number of arrivals processed. *)

val distinct_total : t -> int
(** Distinct items over the whole history. *)

val distinct_last : t -> int -> int
(** [distinct_last t w] is the exact number of distinct items among the
    last [w] arrivals ([w >= arrivals] covers everything; [w <= 0] is 0). *)

val distinct_between : t -> lo:int -> hi:int -> int
(** Distinct items whose latest occurrence position is in [\[lo, hi\]]
    (positions are 0-based arrival indices). *)
