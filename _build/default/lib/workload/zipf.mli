(** Zipf-distributed sampling over a finite universe.

    [Pr[rank = r] ∝ 1 / (r + 1)^skew] for ranks [0 .. n-1].  Web request
    data — clients and objects of the WorldCup'98 trace the paper uses —
    is classically Zipf-like, so the synthetic substitute trace
    ({!Http_trace}) draws both from this module.

    Sampling is inversion on a precomputed cumulative table: O(n) setup,
    O(log n) per draw, deterministic given the {!Wd_hashing.Rng.t}. *)

type t

val create : n:int -> skew:float -> t
(** Requires [n >= 1] and [skew >= 0] ([skew = 0] is uniform). *)

val n : t -> int
val skew : t -> float

val sample : t -> Wd_hashing.Rng.t -> int
(** A rank in [\[0, n)]; rank 0 is the most popular. *)

val probability : t -> int -> float
(** [probability t r] is [Pr[sample = r]]. *)

val expected_distinct : t -> int -> float
(** [expected_distinct t draws] is the expected number of distinct ranks
    in [draws] independent samples — used to calibrate workload
    duplication factors. *)
