(** Synthetic substitute for the WorldCup'98 HTTP request trace.

    The paper's real-data experiments use entire days of the 1998 World Cup
    web-site logs from the Internet Traffic Archive: ~20M requests served
    by 29 servers located in 4 geographic regions, with ~120K distinct
    clientIDs and ~16M distinct (clientID, objectID) pairs.  The trace is
    not available in this offline environment, so this module generates a
    request log with the same structure and — crucially — the same two
    duplication regimes the paper exercises:

    - the {e clientID view} is highly duplicated (every client issues many
      requests that land on many servers): duplication factor ~170 at
      paper scale;
    - the {e (clientID, objectID) pair view} is lightly duplicated
      (~1.25), pairs repeating only when a client re-fetches an object
      (reloads, retransmissions) or a request is mirrored to a second
      server.

    Requests are generated as: client ~ Zipf over [clients], object ~ Zipf
    over [objects], server = a mix of the object's home server and a
    uniformly random server (load balancing), then duplicated at the same
    server with probability [retransmit_prob] (TCP retransmission) and
    mirrored to a second random server with probability [mirror_prob].

    The default configuration is a 1:100 scale-down of the paper's trace
    (200K requests, 1.2K clients, 40K objects) preserving both duplication
    factors; tests assert the calibration. *)

type request = { client : int; obj : int; server : int }

type config = {
  servers : int;  (** number of web servers (paper: 29) *)
  regions : int;  (** geographic regions grouping the servers (paper: 4) *)
  clients : int;  (** distinct clientIDs *)
  objects : int;  (** distinct objectIDs *)
  requests : int;  (** total request events before duplication *)
  client_skew : float;  (** Zipf skew of client activity *)
  object_skew : float;  (** Zipf skew of object popularity *)
  locality : float;
      (** probability a request is served by its object's home server
          rather than a random one *)
  retransmit_prob : float;  (** same-server duplicate probability *)
  mirror_prob : float;  (** second-server duplicate probability *)
  flash_crowds : int;
      (** number of flash-crowd episodes — the WorldCup'98 trace's
          signature feature: during a match, traffic concentrates on a
          handful of hot objects (live scores) from a surge of clients.
          Each episode redirects a contiguous ~5% slice of the requests:
          80% of those go to one of 3 episode-hot objects, drawn by a
          fresh surge of clients biased to new IDs. 0 disables. *)
  seed : int;
}

val default : config
(** The calibrated 1:100 scale-down described above. *)

val scaled : ?seed:int -> float -> config
(** [scaled f] multiplies the default's [requests], [clients] and
    [objects] by [f] (at least 1 each), e.g. [scaled 10.0] approaches the
    paper's full-day scale. *)

val generate : config -> request array
(** The raw request log, in arrival order. *)

(** {1 Views}

    A view turns the request log into a multi-site {!Stream.t}: which
    attribute is the tracked item, and whether each server is its own site
    or servers are grouped into one site per region (the paper runs both a
    29-site and a 4-region-site configuration). *)

type item_view = Client_id | Object_id | Client_object_pair
type site_view = Per_server | Per_region

val view : config -> item_view -> site_view -> request array -> Stream.t
(** Encode the chosen attribute as the stream item: [Client_id] is the
    clientID (heavily duplicated), [Object_id] the objectID (moderately
    duplicated), and [Client_object_pair] packs [(client, obj)]
    injectively into one integer (lightly duplicated). *)

val sites_of : config -> site_view -> int
(** Number of stream sites the view produces. *)
