(** A materialized multi-site stream: a global arrival order of
    [(site, item)] events.

    This is the input format of every tracking protocol in the library:
    event [j] means item [items.(j)] arrives at remote site [sites.(j)].
    The struct-of-arrays layout keeps multi-million-event workloads compact
    and allocation-free to traverse. *)

type t = private { sites : int array; items : int array }

val make : sites:int array -> items:int array -> t
(** Requires the arrays to have equal length. *)

val length : t -> int

val site : t -> int -> int
val item : t -> int -> int

val num_sites : t -> int
(** [1 + max site index] ([0] for the empty stream). *)

val iter : (site:int -> item:int -> unit) -> t -> unit

val iteri : (int -> site:int -> item:int -> unit) -> t -> unit
(** Like {!iter} with the event index. *)

val concat : t list -> t

val prefix : t -> int -> t
(** [prefix t n] is the first [n] events (shared storage is not assumed;
    arrays are copied). *)

val of_events : (int * int) list -> t
(** From [(site, item)] pairs in arrival order. *)

val round_robin : t array -> t
(** [round_robin per_site] interleaves one per-site stream per array slot
    (site index taken from the slot, the [sites] fields of the inputs are
    ignored) by cycling across sites, which models synchronized arrival
    rates.  Streams may have different lengths; exhausted sites are
    skipped. *)

val shuffle : Wd_hashing.Rng.t -> t -> t
(** A uniformly random global reordering of the events (site/item pairs
    move together). *)

(** {1 Exact (offline) statistics} — used for ground truth, never by the
    protocols. *)

val distinct_count : t -> int

val multiplicities : t -> (int, int) Hashtbl.t
(** Exact global occurrence count of every item. *)

val duplication_factor : t -> float
(** [length / distinct_count]; [0] for the empty stream. *)
