(** The paper's synthetic two-phase workload (Section 7.1).

    Designed "to test the ability of the sites to use information about
    the distribution seen so far": with [k] sites and [n] items per site,

    - {e phase 1}: each site receives [n] items disjoint from every other
      site's (site [i] gets the range [\[i*n, (i+1)*n)]), so everything is
      globally new and must reach the coordinator;
    - {e phase 2}: every site receives all [k*n] items of phase 1 in an
      independent uniformly random order, so {e nothing} is globally new —
      an algorithm that exploits global knowledge (shared sketches/counts)
      can stay almost silent, while local-only algorithms keep paying.

    The per-site streams are interleaved round-robin into one global
    arrival order, phase 1 entirely before phase 2. *)

val generate : ?seed:int -> sites:int -> per_site:int -> unit -> Stream.t
(** [generate ~sites:k ~per_site:n ()] has [k*n + k*k*n] events over
    universe [\[0, k*n)].  Requires [k >= 1], [n >= 1]. *)

val phase_boundary : sites:int -> per_site:int -> int
(** Index of the first phase-2 event in the generated stream. *)
