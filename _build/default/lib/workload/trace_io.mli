(** Reading and writing multi-site streams as files.

    Two formats:

    - {e CSV}: one `site,item` pair per line (a header line
      `site,item` is written and tolerated on read) — interoperable with
      external tooling and real traces exported from flow logs;
    - {e binary}: a small magic header then fixed 16-byte little-endian
      records — compact and fast for large replays.

    Both preserve arrival order exactly, so an experiment on a saved
    trace reproduces the in-memory run bit for bit. *)

val save_csv : string -> Stream.t -> unit
(** [save_csv path stream] writes the stream (with a header line). *)

val load_csv : string -> Stream.t
(** Raises [Failure] with a line-numbered message on malformed input
    (wrong field count, non-integer fields, negative site). *)

val save_binary : string -> Stream.t -> unit

val load_binary : string -> Stream.t
(** Raises [Failure] on a bad magic number or truncated payload. *)
