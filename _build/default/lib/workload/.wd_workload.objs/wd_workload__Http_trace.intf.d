lib/workload/http_trace.mli: Stream
