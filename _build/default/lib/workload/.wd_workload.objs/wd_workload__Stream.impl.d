lib/workload/stream.ml: Array Float Fun Hashtbl List Option Wd_hashing
