lib/workload/stream_gen.ml: Array List Printf Stream Wd_hashing Zipf
