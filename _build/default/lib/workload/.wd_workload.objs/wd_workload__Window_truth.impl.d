lib/workload/window_truth.ml: Array Hashtbl
