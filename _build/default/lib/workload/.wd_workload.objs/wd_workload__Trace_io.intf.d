lib/workload/trace_io.mli: Stream
