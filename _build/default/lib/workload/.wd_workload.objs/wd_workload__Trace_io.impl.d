lib/workload/trace_io.ml: Array Bytes Fun Int64 List Printf Stream String
