lib/workload/stream_gen.mli: Stream
