lib/workload/two_phase.ml: Array Fun Stream Wd_hashing
