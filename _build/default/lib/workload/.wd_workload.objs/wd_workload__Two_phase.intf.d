lib/workload/two_phase.mli: Stream
