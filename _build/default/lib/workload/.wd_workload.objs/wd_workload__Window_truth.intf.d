lib/workload/window_truth.mli:
