lib/workload/http_trace.ml: Array Float List Stream Wd_hashing Zipf
