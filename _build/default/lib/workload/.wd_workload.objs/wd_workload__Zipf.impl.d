lib/workload/zipf.ml: Array Float Wd_hashing
