lib/workload/zipf.mli: Wd_hashing
