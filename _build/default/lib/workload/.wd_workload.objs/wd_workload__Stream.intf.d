lib/workload/stream.mli: Hashtbl Wd_hashing
