module Rng = Wd_hashing.Rng

type request = { client : int; obj : int; server : int }

type config = {
  servers : int;
  regions : int;
  clients : int;
  objects : int;
  requests : int;
  client_skew : float;
  object_skew : float;
  locality : float;
  retransmit_prob : float;
  mirror_prob : float;
  flash_crowds : int;
  seed : int;
}

let default =
  {
    servers = 29;
    regions = 4;
    clients = 1_200;
    objects = 40_000;
    requests = 200_000;
    client_skew = 0.9;
    object_skew = 0.85;
    locality = 0.5;
    retransmit_prob = 0.05;
    mirror_prob = 0.08;
    flash_crowds = 2;
    seed = 42;
  }

let scaled ?(seed = default.seed) f =
  if f <= 0.0 then invalid_arg "Http_trace.scaled: factor must be positive";
  let scale n = max 1 (int_of_float (Float.of_int n *. f)) in
  {
    default with
    requests = scale default.requests;
    clients = scale default.clients;
    objects = scale default.objects;
    seed;
  }

let validate c =
  if c.servers < 1 then invalid_arg "Http_trace: servers must be >= 1";
  if c.regions < 1 || c.regions > c.servers then
    invalid_arg "Http_trace: need 1 <= regions <= servers";
  if c.clients < 1 || c.objects < 1 || c.requests < 0 then
    invalid_arg "Http_trace: clients/objects/requests out of range";
  if c.flash_crowds < 0 then
    invalid_arg "Http_trace: flash_crowds must be >= 0"

let generate c =
  validate c;
  let rng = Rng.create c.seed in
  let client_dist = Zipf.create ~n:c.clients ~skew:c.client_skew in
  let object_dist = Zipf.create ~n:c.objects ~skew:c.object_skew in
  (* Every object has a home server; locality routes most of its traffic
     there, the rest is spread uniformly (load balancing / proxies). *)
  let home = Array.init c.objects (fun _ -> Rng.int rng c.servers) in
  (* Flash-crowd episodes: contiguous request slices with their own hot
     objects and a surge of episode-specific clients. *)
  let episode_len = c.requests / 20 in
  let episodes =
    Array.init c.flash_crowds (fun _ ->
        let start =
          if c.requests <= episode_len then 0
          else Rng.int rng (c.requests - episode_len)
        in
        let hot = Array.init 2 (fun _ -> Rng.int rng c.objects) in
        let surge_base = Rng.int rng c.clients in
        (start, hot, surge_base))
  in
  let in_episode i =
    let found = ref None in
    Array.iter
      (fun (start, hot, surge) ->
        if !found = None && i >= start && i < start + episode_len then
          found := Some (hot, surge))
      episodes;
    !found
  in
  let buf = ref [] in
  for i = 1 to c.requests do
    let client, obj =
      match in_episode i with
      | Some (hot, surge_base) when Rng.float rng 1.0 < 0.8 ->
        (* Surge traffic: a hot object, from a client biased towards a
           crowd of episode followers (half fresh surge IDs). *)
        let client =
          if Rng.bool rng then (surge_base + Rng.int rng (c.clients / 2)) mod c.clients
          else Zipf.sample client_dist rng
        in
        (client, hot.(Rng.int rng (Array.length hot)))
      | _ -> (Zipf.sample client_dist rng, Zipf.sample object_dist rng)
    in
    let server =
      if Rng.float rng 1.0 < c.locality then home.(obj)
      else Rng.int rng c.servers
    in
    let push r = buf := r :: !buf in
    push { client; obj; server };
    if Rng.float rng 1.0 < c.retransmit_prob then push { client; obj; server };
    if c.servers > 1 && Rng.float rng 1.0 < c.mirror_prob then begin
      let other = (server + 1 + Rng.int rng (c.servers - 1)) mod c.servers in
      push { client; obj; server = other }
    end
  done;
  Array.of_list (List.rev !buf)

type item_view = Client_id | Object_id | Client_object_pair
type site_view = Per_server | Per_region

let region_of c server = server * c.regions / c.servers

let sites_of c = function Per_server -> c.servers | Per_region -> c.regions

let view c item_view site_view reqs =
  validate c;
  let n = Array.length reqs in
  let sites = Array.make n 0 and items = Array.make n 0 in
  for j = 0 to n - 1 do
    let r = reqs.(j) in
    sites.(j) <-
      (match site_view with
      | Per_server -> r.server
      | Per_region -> region_of c r.server);
    items.(j) <-
      (match item_view with
      | Client_id -> r.client
      | Object_id -> r.obj
      | Client_object_pair -> (r.client * c.objects) + r.obj)
  done;
  Stream.make ~sites ~items
