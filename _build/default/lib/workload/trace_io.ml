let with_out path f =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let save_csv path stream =
  with_out path (fun oc ->
      output_string oc "site,item\n";
      Stream.iter
        (fun ~site ~item -> Printf.fprintf oc "%d,%d\n" site item)
        stream)

let load_csv path =
  with_in path (fun ic ->
      let sites = ref [] and items = ref [] and lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = String.trim (input_line ic) in
           if line <> "" && line <> "site,item" then
             match String.split_on_char ',' line with
             | [ s; v ] -> (
               match (int_of_string_opt (String.trim s),
                      int_of_string_opt (String.trim v)) with
               | Some site, Some item when site >= 0 ->
                 sites := site :: !sites;
                 items := item :: !items
               | _ ->
                 failwith
                   (Printf.sprintf "%s: line %d: malformed record %S" path
                      !lineno line))
             | _ ->
               failwith
                 (Printf.sprintf "%s: line %d: expected 2 fields" path !lineno)
         done
       with End_of_file -> ());
      Stream.make
        ~sites:(Array.of_list (List.rev !sites))
        ~items:(Array.of_list (List.rev !items)))

let magic = "WDTRACE1"

let save_binary path stream =
  with_out path (fun oc ->
      output_string oc magic;
      let n = Stream.length stream in
      let buf = Bytes.create 8 in
      Bytes.set_int64_le buf 0 (Int64.of_int n);
      output_bytes oc buf;
      let rec_buf = Bytes.create 16 in
      Stream.iter
        (fun ~site ~item ->
          Bytes.set_int64_le rec_buf 0 (Int64.of_int site);
          Bytes.set_int64_le rec_buf 8 (Int64.of_int item);
          output_bytes oc rec_buf)
        stream)

let load_binary path =
  with_in path (fun ic ->
      let header = Bytes.create (String.length magic) in
      (try really_input ic header 0 (String.length magic)
       with End_of_file -> failwith (path ^ ": truncated header"));
      if Bytes.to_string header <> magic then
        failwith (path ^ ": not a WDTRACE1 file");
      let buf = Bytes.create 8 in
      (try really_input ic buf 0 8
       with End_of_file -> failwith (path ^ ": truncated length"));
      let n = Int64.to_int (Bytes.get_int64_le buf 0) in
      if n < 0 then failwith (path ^ ": negative record count");
      let sites = Array.make n 0 and items = Array.make n 0 in
      let rec_buf = Bytes.create 16 in
      for j = 0 to n - 1 do
        (try really_input ic rec_buf 0 16
         with End_of_file ->
           failwith (Printf.sprintf "%s: truncated at record %d" path j));
        sites.(j) <- Int64.to_int (Bytes.get_int64_le rec_buf 0);
        items.(j) <- Int64.to_int (Bytes.get_int64_le rec_buf 8)
      done;
      Stream.make ~sites ~items)
