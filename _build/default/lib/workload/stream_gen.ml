module Rng = Wd_hashing.Rng

let check_positive name v =
  if v < 1 then invalid_arg (Printf.sprintf "Stream_gen: %s must be >= 1" name)

let build ~events f =
  let sites = Array.make events 0 and items = Array.make events 0 in
  for j = 0 to events - 1 do
    let s, v = f j in
    sites.(j) <- s;
    items.(j) <- v
  done;
  Stream.make ~sites ~items

let uniform ?(seed = 11) ~sites:k ~events ~universe () =
  check_positive "sites" k;
  check_positive "universe" universe;
  let rng = Rng.create seed in
  build ~events (fun _ -> (Rng.int rng k, Rng.int rng universe))

let zipf ?(seed = 12) ?(skew = 1.0) ~sites:k ~events ~universe () =
  check_positive "sites" k;
  check_positive "universe" universe;
  let rng = Rng.create seed in
  let dist = Zipf.create ~n:universe ~skew in
  build ~events (fun _ -> (Rng.int rng k, Zipf.sample dist rng))

let partitioned ?(seed = 13) ~sites:k ~per_site () =
  check_positive "sites" k;
  check_positive "per_site" per_site;
  let rng = Rng.create seed in
  build ~events:(k * per_site) (fun j ->
      let s = j mod k in
      (s, (s * per_site) + Rng.int rng per_site))

let overlapping ?(seed = 14) ~sites:k ~per_site ~shared_fraction () =
  check_positive "sites" k;
  check_positive "per_site" per_site;
  if shared_fraction < 0.0 || shared_fraction > 1.0 then
    invalid_arg "Stream_gen.overlapping: shared_fraction must be in [0,1]";
  let rng = Rng.create seed in
  (* Private ranges start after the shared pool [0, per_site). *)
  build ~events:(k * per_site) (fun j ->
      let s = j mod k in
      let v =
        if Rng.float rng 1.0 < shared_fraction then Rng.int rng per_site
        else per_site + (s * per_site) + Rng.int rng per_site
      in
      (s, v))

let duplicated ?(seed = 15) ~sites:k ~distinct ~copies () =
  check_positive "sites" k;
  check_positive "distinct" distinct;
  check_positive "copies" copies;
  let rng = Rng.create seed in
  let events = distinct * copies in
  let base =
    build ~events (fun j -> (Rng.int rng k, j mod distinct))
  in
  Stream.shuffle rng base

let sensor_gossip ?(seed = 16) ~sites:k ~readings ~gossip_rounds () =
  check_positive "sites" k;
  check_positive "readings" readings;
  if gossip_rounds < 0 then
    invalid_arg "Stream_gen.sensor_gossip: gossip_rounds must be >= 0";
  let rng = Rng.create seed in
  let initial =
    build ~events:readings (fun j -> (Rng.int rng k, j))
  in
  let rounds =
    List.init gossip_rounds (fun _ ->
        Stream.shuffle rng
          (build ~events:readings (fun j -> (Rng.int rng k, j))))
  in
  Stream.concat (initial :: rounds)
