(** Generic multi-site stream builders for tests, examples and ablation
    benchmarks.

    All builders are deterministic given [seed] and produce a global
    arrival order with sites interleaved round-robin unless noted. *)

val uniform :
  ?seed:int -> sites:int -> events:int -> universe:int -> unit -> Stream.t
(** Each event: uniform site, uniform item from [\[0, universe)]. *)

val zipf :
  ?seed:int -> ?skew:float -> sites:int -> events:int -> universe:int ->
  unit -> Stream.t
(** Uniform site, Zipf item (default [skew = 1.0]). *)

val partitioned :
  ?seed:int -> sites:int -> per_site:int -> unit -> Stream.t
(** Site [i] draws only from its private range [\[i*n, (i+1)*n)] (with
    repetition), so there is no cross-site duplication. *)

val overlapping :
  ?seed:int -> sites:int -> per_site:int -> shared_fraction:float -> unit ->
  Stream.t
(** Like {!partitioned}, but each event instead draws from a common shared
    pool with probability [shared_fraction] — a dial for cross-site
    duplication.  [shared_fraction] in [\[0, 1\]]; the shared pool has
    [per_site] items. *)

val duplicated :
  ?seed:int -> sites:int -> distinct:int -> copies:int -> unit -> Stream.t
(** Every item of [\[0, distinct)] appears exactly [copies] times, each
    copy at a uniformly random site, in globally shuffled order — exact
    control of the duplication factor. *)

val sensor_gossip :
  ?seed:int -> sites:int -> readings:int -> gossip_rounds:int -> unit ->
  Stream.t
(** ZebraNet-style duplication: [readings] unique observation events are
    first registered each at one random sensor; then [gossip_rounds]
    rounds re-announce every reading at another random sensor (periodic
    pairwise data exchange), so each reading appears [1 + gossip_rounds]
    times across the network. *)
