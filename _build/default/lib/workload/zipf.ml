type t = { n : int; skew : float; cumulative : float array }

let create ~n ~skew =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if skew < 0.0 then invalid_arg "Zipf.create: skew must be >= 0";
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. (Float.of_int (r + 1) ** skew));
    cumulative.(r) <- !total
  done;
  (* Normalize so the last entry is exactly 1. *)
  for r = 0 to n - 1 do
    cumulative.(r) <- cumulative.(r) /. !total
  done;
  cumulative.(n - 1) <- 1.0;
  { n; skew; cumulative }

let n t = t.n
let skew t = t.skew

let sample t rng =
  let u = Wd_hashing.Rng.float rng 1.0 in
  (* Least r with cumulative.(r) >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t r =
  if r < 0 || r >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if r = 0 then t.cumulative.(0)
  else t.cumulative.(r) -. t.cumulative.(r - 1)

let expected_distinct t draws =
  let d = Float.of_int draws in
  let acc = ref 0.0 in
  for r = 0 to t.n - 1 do
    acc := !acc +. (1.0 -. ((1.0 -. probability t r) ** d))
  done;
  !acc
