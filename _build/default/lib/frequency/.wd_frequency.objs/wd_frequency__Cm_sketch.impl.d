lib/frequency/cm_sketch.ml: Array Float Wd_hashing
