lib/frequency/space_saving.mli:
