lib/frequency/cm_sketch.mli: Wd_hashing
