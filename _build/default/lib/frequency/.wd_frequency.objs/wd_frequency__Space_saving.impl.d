lib/frequency/space_saving.ml: Array Hashtbl List
