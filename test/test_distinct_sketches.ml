(* Tests for the alternative distinct sketches (BJKST, HyperLogLog) and
   their conformance to the shared DISTINCT_SKETCH behaviour. *)

module Rng = Wd_hashing.Rng
module Bjkst = Wd_sketch.Bjkst
module Hll = Wd_sketch.Hyperloglog

let fill_b sk lo hi =
  for v = lo to hi - 1 do
    ignore (Bjkst.add sk v : bool)
  done

let fill_h sk lo hi =
  for v = lo to hi - 1 do
    ignore (Hll.add sk v : bool)
  done

(* --- BJKST --- *)

let test_bjkst_small_exact () =
  let fam = Bjkst.family_custom ~rng:(Rng.create 31) ~k:256 in
  let sk = Bjkst.create fam in
  fill_b sk 0 100;
  (* Below k, the summary stores every distinct hash: exact. *)
  Alcotest.(check (float 0.001)) "exact below k" 100.0 (Bjkst.estimate sk)

let test_bjkst_accuracy () =
  let fam = Bjkst.family_custom ~rng:(Rng.create 32) ~k:1024 in
  List.iter
    (fun n ->
      let sk = Bjkst.create fam in
      fill_b sk 0 n;
      let est = Bjkst.estimate sk in
      let rel = Float.abs (est -. Float.of_int n) /. Float.of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d est=%.0f rel=%.3f" n est rel)
        true (rel < 0.15))
    [ 5_000; 50_000 ]

let test_bjkst_duplicates () =
  let fam = Bjkst.family_custom ~rng:(Rng.create 33) ~k:64 in
  let once = Bjkst.create fam and many = Bjkst.create fam in
  fill_b once 0 1_000;
  for _ = 1 to 4 do
    fill_b many 0 1_000
  done;
  Alcotest.(check bool) "duplicate insensitive" true (Bjkst.equal once many)

let test_bjkst_merge_union () =
  let fam = Bjkst.family_custom ~rng:(Rng.create 34) ~k:64 in
  let a = Bjkst.create fam and b = Bjkst.create fam and u = Bjkst.create fam in
  fill_b a 0 500;
  fill_b b 300 900;
  fill_b u 0 900;
  Bjkst.merge_into ~dst:a b;
  Alcotest.(check bool) "merge equals union" true (Bjkst.equal a u);
  Alcotest.(check (float 0.001)) "same estimate" (Bjkst.estimate u)
    (Bjkst.estimate a)

let test_bjkst_size_bytes () =
  let fam = Bjkst.family_custom ~rng:(Rng.create 35) ~k:64 in
  let sk = Bjkst.create fam in
  Alcotest.(check int) "empty is free" 0 (Bjkst.size_bytes sk);
  fill_b sk 0 10;
  Alcotest.(check int) "8 bytes per stored value" 80 (Bjkst.size_bytes sk);
  fill_b sk 0 1_000;
  Alcotest.(check int) "capped at 8k" (8 * 64) (Bjkst.size_bytes sk)

let test_bjkst_add_changed () =
  let fam = Bjkst.family_custom ~rng:(Rng.create 36) ~k:8 in
  let sk = Bjkst.create fam in
  Alcotest.(check bool) "first add changes" true (Bjkst.add sk 5);
  Alcotest.(check bool) "repeat add does not" false (Bjkst.add sk 5)

(* --- HyperLogLog --- *)

let test_hll_accuracy () =
  let fam = Hll.family_custom ~rng:(Rng.create 41) ~registers:1024 in
  List.iter
    (fun n ->
      let sk = Hll.create fam in
      fill_h sk 0 n;
      let est = Hll.estimate sk in
      let rel = Float.abs (est -. Float.of_int n) /. Float.of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d est=%.0f rel=%.3f" n est rel)
        true (rel < 0.15))
    [ 100; 5_000; 100_000 ]

let test_hll_duplicates () =
  let fam = Hll.family_custom ~rng:(Rng.create 42) ~registers:64 in
  let once = Hll.create fam and many = Hll.create fam in
  fill_h once 0 1_000;
  for _ = 1 to 4 do
    fill_h many 0 1_000
  done;
  Alcotest.(check bool) "duplicate insensitive" true (Hll.equal once many)

let test_hll_merge_union () =
  let fam = Hll.family_custom ~rng:(Rng.create 43) ~registers:64 in
  let a = Hll.create fam and b = Hll.create fam and u = Hll.create fam in
  fill_h a 0 500;
  fill_h b 300 900;
  fill_h u 0 900;
  Hll.merge_into ~dst:a b;
  Alcotest.(check bool) "merge equals union" true (Hll.equal a u)

let test_hll_size_bytes () =
  let fam = Hll.family_custom ~rng:(Rng.create 44) ~registers:256 in
  Alcotest.(check int) "1 byte per register" 256 (Hll.size_bytes (Hll.create fam))

let test_hll_register_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument
       "Hyperloglog.family_custom: registers must be a power of two >= 16")
    (fun () ->
      ignore (Hll.family_custom ~rng:(Rng.create 1) ~registers:100 : Hll.family))

let test_hll_family_sizing () =
  let fam = Hll.family ~rng:(Rng.create 45) ~accuracy:0.05 ~confidence:0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "registers=%d for 5%%" (Hll.registers fam))
    true
    (Hll.registers fam >= 433)

(* The bias constant at and below the constructible minimum of 16
   registers: small m must clamp to the m=16 constant, never extrapolate
   the asymptotic formula downward. *)
let test_hll_alpha_boundary () =
  let check name expected got =
    Alcotest.(check (float 1e-12)) name expected got
  in
  check "alpha 16" 0.673 (Hll.alpha 16);
  check "alpha 8 clamps to m=16 constant" 0.673 (Hll.alpha 8);
  check "alpha 1 clamps to m=16 constant" 0.673 (Hll.alpha 1);
  check "alpha 32" 0.697 (Hll.alpha 32);
  check "alpha 64" 0.709 (Hll.alpha 64);
  check "alpha 128 asymptotic" (0.7213 /. (1.0 +. (1.079 /. 128.0)))
    (Hll.alpha 128);
  (* No family can be built below the clamp point, so the clamp is the
     only path that can ever see m < 16. *)
  Alcotest.check_raises "registers 8 rejected"
    (Invalid_argument
       "Hyperloglog.family_custom: registers must be a power of two >= 16")
    (fun () ->
      ignore (Hll.family_custom ~rng:(Rng.create 1) ~registers:8 : Hll.family));
  let loosest = Hll.family ~rng:(Rng.create 46) ~accuracy:0.99 ~confidence:0.01 in
  Alcotest.(check bool)
    "sized family never below 16" true
    (Hll.registers loosest >= 16)

(* --- Cross-sketch conformance through the functor interface --- *)

module Conformance (S : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) = struct
  let run () =
    let fam = S.family ~rng:(Rng.create 55) ~accuracy:0.1 ~confidence:0.9 in
    let a = S.create fam and b = S.create fam in
    for v = 0 to 999 do
      ignore (S.add a v : bool)
    done;
    for v = 500 to 1_499 do
      ignore (S.add b v : bool)
    done;
    S.merge_into ~dst:a b;
    let est = S.estimate a in
    let rel = Float.abs (est -. 1_500.0) /. 1_500.0 in
    Alcotest.(check bool)
      (Printf.sprintf "%s merged estimate %.0f within 30%%" S.name est)
      true (rel < 0.30);
    Alcotest.(check bool)
      (Printf.sprintf "%s has positive wire size" S.name)
      true
      (S.size_bytes a > 0)
end

module Fm_conf = Conformance (Wd_sketch.Fm)
module Bjkst_conf = Conformance (Wd_sketch.Bjkst)
module Hll_conf = Conformance (Wd_sketch.Hyperloglog)

(* --- QCheck: BJKST/HLL merge = direct insertion --- *)

let stream_gen = QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 5_000))

let prop_bjkst_merge_direct =
  QCheck.Test.make ~name:"bjkst merge = direct insertion"
    QCheck.(pair stream_gen stream_gen)
    (fun (xs, ys) ->
      let fam = Bjkst.family_custom ~rng:(Rng.create 66) ~k:32 in
      let a = Bjkst.create fam and b = Bjkst.create fam and d = Bjkst.create fam in
      List.iter (fun v -> ignore (Bjkst.add a v : bool)) xs;
      List.iter (fun v -> ignore (Bjkst.add b v : bool)) ys;
      List.iter (fun v -> ignore (Bjkst.add d v : bool)) (xs @ ys);
      Bjkst.merge_into ~dst:a b;
      Bjkst.equal a d)

let prop_hll_merge_direct =
  QCheck.Test.make ~name:"hll merge = direct insertion"
    QCheck.(pair stream_gen stream_gen)
    (fun (xs, ys) ->
      let fam = Hll.family_custom ~rng:(Rng.create 67) ~registers:16 in
      let a = Hll.create fam and b = Hll.create fam and d = Hll.create fam in
      List.iter (fun v -> ignore (Hll.add a v : bool)) xs;
      List.iter (fun v -> ignore (Hll.add b v : bool)) ys;
      List.iter (fun v -> ignore (Hll.add d v : bool)) (xs @ ys);
      Hll.merge_into ~dst:a b;
      Hll.equal a d)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_bjkst_merge_direct; prop_hll_merge_direct ]
  in
  Alcotest.run "distinct-sketches"
    [
      ( "bjkst",
        [
          Alcotest.test_case "small exact" `Quick test_bjkst_small_exact;
          Alcotest.test_case "accuracy" `Quick test_bjkst_accuracy;
          Alcotest.test_case "duplicates" `Quick test_bjkst_duplicates;
          Alcotest.test_case "merge union" `Quick test_bjkst_merge_union;
          Alcotest.test_case "size bytes" `Quick test_bjkst_size_bytes;
          Alcotest.test_case "add changed" `Quick test_bjkst_add_changed;
        ] );
      ( "hyperloglog",
        [
          Alcotest.test_case "accuracy" `Quick test_hll_accuracy;
          Alcotest.test_case "duplicates" `Quick test_hll_duplicates;
          Alcotest.test_case "merge union" `Quick test_hll_merge_union;
          Alcotest.test_case "size bytes" `Quick test_hll_size_bytes;
          Alcotest.test_case "register validation" `Quick
            test_hll_register_validation;
          Alcotest.test_case "family sizing" `Quick test_hll_family_sizing;
          Alcotest.test_case "alpha boundary" `Quick test_hll_alpha_boundary;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "fm" `Quick Fm_conf.run;
          Alcotest.test_case "bjkst" `Quick Bjkst_conf.run;
          Alcotest.test_case "hll" `Quick Hll_conf.run;
        ] );
      ("properties", qsuite);
    ]
