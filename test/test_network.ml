(* Tests for the byte-accounting network simulator. *)

module Network = Wd_net.Network
module Wire = Wd_net.Wire
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event

let sum_site_bytes_down net =
  let total = ref 0 in
  for s = 0 to Network.sites net - 1 do
    total := !total + Network.site_bytes_down net s
  done;
  !total

let test_wire_sizes () =
  Alcotest.(check int) "message adds header" (Wire.header_bytes + 10)
    (Wire.message ~payload:10);
  Alcotest.(check int) "items payload" (5 * Wire.item_bytes) (Wire.items 5);
  Alcotest.(check int) "pair payload"
    (3 * (Wire.item_bytes + Wire.count_bytes))
    (Wire.item_count_pairs 3)

let test_send_up_accounting () =
  let net = Network.create ~sites:3 () in
  Network.send_up net ~site:0 ~payload:10;
  Network.send_up net ~site:2 ~payload:20;
  Alcotest.(check int) "bytes up"
    (Wire.message ~payload:10 + Wire.message ~payload:20)
    (Network.bytes_up net);
  Alcotest.(check int) "messages up" 2 (Network.messages_up net);
  Alcotest.(check int) "bytes down" 0 (Network.bytes_down net);
  Alcotest.(check int) "site 0 up" (Wire.message ~payload:10)
    (Network.site_bytes_up net 0);
  Alcotest.(check int) "site 1 up" 0 (Network.site_bytes_up net 1)

let test_unicast_broadcast_costs_k () =
  let net = Network.create ~sites:5 () in
  Network.broadcast_down net ~except:None ~payload:8;
  Alcotest.(check int) "5 messages" 5 (Network.messages_down net);
  Alcotest.(check int) "5x bytes" (5 * Wire.message ~payload:8)
    (Network.bytes_down net)

let test_unicast_broadcast_except () =
  let net = Network.create ~sites:5 () in
  Network.broadcast_down net ~except:(Some 2) ~payload:8;
  Alcotest.(check int) "4 messages" 4 (Network.messages_down net);
  Alcotest.(check int) "excluded site got nothing" 0
    (Network.site_bytes_down net 2)

let test_radio_broadcast_costs_once () =
  let net = Network.create ~cost_model:Network.Radio_broadcast ~sites:5 () in
  Network.broadcast_down net ~except:None ~payload:8;
  Network.broadcast_down net ~except:(Some 1) ~payload:8;
  Alcotest.(check int) "one message each" 2 (Network.messages_down net);
  Alcotest.(check int) "single-copy bytes" (2 * Wire.message ~payload:8)
    (Network.bytes_down net)

let test_totals_and_reset () =
  let net = Network.create ~sites:2 () in
  Network.send_up net ~site:0 ~payload:4;
  Network.send_down net ~site:1 ~payload:4;
  Alcotest.(check int) "total = up + down"
    (Network.bytes_up net + Network.bytes_down net)
    (Network.total_bytes net);
  Alcotest.(check int) "total messages" 2 (Network.total_messages net);
  Network.reset net;
  Alcotest.(check int) "reset zeroes bytes" 0 (Network.total_bytes net);
  Alcotest.(check int) "reset zeroes messages" 0 (Network.total_messages net);
  Alcotest.(check int) "reset keeps topology" 2 (Network.sites net)

let test_validation () =
  Alcotest.check_raises "zero sites"
    (Invalid_argument "Network.create: sites must be >= 1") (fun () ->
      ignore (Network.create ~sites:0 () : Network.t));
  let net = Network.create ~sites:2 () in
  Alcotest.check_raises "site out of range"
    (Invalid_argument "Network: site index out of range") (fun () ->
      Network.send_up net ~site:2 ~payload:1)

let test_radio_medium_accounting () =
  let net = Network.create ~cost_model:Network.Radio_broadcast ~sites:5 () in
  Network.broadcast_down net ~except:None ~payload:8;
  Network.broadcast_down net ~except:(Some 1) ~payload:8;
  for s = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "site %d link idle" s)
      0
      (Network.site_bytes_down net s)
  done;
  Alcotest.(check int) "medium carries all broadcast bytes"
    (Network.bytes_down net) (Network.medium_bytes net);
  Network.send_down net ~site:3 ~payload:4;
  Alcotest.(check int) "unicast send rides the site link"
    (Wire.message ~payload:4)
    (Network.site_bytes_down net 3);
  Alcotest.(check int) "down = medium + site links"
    (Network.bytes_down net)
    (Network.medium_bytes net + sum_site_bytes_down net)

let test_unicast_medium_is_zero () =
  let net = Network.create ~sites:4 () in
  Network.broadcast_down net ~except:(Some 0) ~payload:8;
  Network.send_down net ~site:0 ~payload:2;
  Alcotest.(check int) "no shared medium under unicast" 0
    (Network.medium_bytes net);
  Alcotest.(check int) "down = site links"
    (Network.bytes_down net)
    (sum_site_bytes_down net)

let test_reset_zeroes_observability_state () =
  let net = Network.create ~cost_model:Network.Radio_broadcast ~sites:3 () in
  Network.set_time net 42;
  Network.send_up net ~site:1 ~payload:4;
  Network.broadcast_down net ~except:None ~payload:6;
  Network.reset net;
  Alcotest.(check int) "medium zeroed" 0 (Network.medium_bytes net);
  Alcotest.(check int) "clock zeroed" 0 (Network.time net);
  for s = 0 to 2 do
    Alcotest.(check int) "per-site up zeroed" 0 (Network.site_bytes_up net s);
    Alcotest.(check int) "per-site down zeroed" 0
      (Network.site_bytes_down net s)
  done

(* The acceptance criterion of the trace layer: summing event bytes by
   direction reproduces the ledger totals exactly. *)
let trace_bytes events =
  List.fold_left
    (fun (up, down) (ev : Event.t) ->
      match ev.Event.kind with
      | Event.Message { dir = Event.Up; bytes; _ } -> (up + bytes, down)
      | Event.Message { dir = Event.Down; bytes; _ } -> (up, down + bytes)
      | Event.Broadcast { bytes; _ } -> (up, down + bytes)
      | _ -> (up, down))
    (0, 0) events

let exercise_ledger net =
  Network.send_up net ~site:0 ~payload:10;
  Network.send_up net ~site:2 ~payload:6;
  Network.send_down net ~site:1 ~payload:8;
  Network.broadcast_down net ~except:None ~payload:5;
  Network.broadcast_down net ~except:(Some 2) ~payload:7

let test_sink_events_match_ledger () =
  List.iter
    (fun cost_model ->
      let net = Network.create ~cost_model ~sites:3 () in
      let ring = Sink.ring ~capacity:64 in
      Network.set_sink net ring;
      exercise_ledger net;
      let up, down = trace_bytes (Sink.ring_contents ring) in
      Alcotest.(check int) "event bytes up = ledger" (Network.bytes_up net) up;
      Alcotest.(check int) "event bytes down = ledger"
        (Network.bytes_down net) down)
    [ Network.Unicast; Network.Radio_broadcast ]

let test_events_carry_logical_clock () =
  let net = Network.create ~sites:2 () in
  let ring = Sink.ring ~capacity:4 in
  Network.set_sink net ring;
  Network.set_time net 17;
  Network.send_up net ~site:0 ~payload:1;
  match Sink.ring_contents ring with
  | [ ev ] -> Alcotest.(check int) "stamped with update index" 17 ev.Event.time
  | evs ->
    Alcotest.failf "expected exactly one event, got %d" (List.length evs)

let prop_ledger_totals_consistent =
  QCheck.Test.make ~name:"per-site bytes sum to totals"
    QCheck.(list_of_size (Gen.int_range 0 100) (pair (int_range 0 3) (int_range 0 64)))
    (fun ops ->
      let net = Network.create ~sites:4 () in
      List.iter
        (fun (site, payload) ->
          if payload mod 2 = 0 then Network.send_up net ~site ~payload
          else Network.send_down net ~site ~payload)
        ops;
      let sum_up = ref 0 and sum_down = ref 0 in
      for s = 0 to 3 do
        sum_up := !sum_up + Network.site_bytes_up net s;
        sum_down := !sum_down + Network.site_bytes_down net s
      done;
      !sum_up = Network.bytes_up net && !sum_down = Network.bytes_down net)

(* Like the above but including broadcasts, under both cost models: the
   generalized invariant is bytes_down = medium_bytes + sum of site links,
   and the event trace must agree with the ledger byte for byte. *)
let prop_broadcast_invariant =
  let op =
    QCheck.(
      oneof
        [
          map (fun (s, p) -> `Up (s, p)) (pair (int_range 0 3) (int_range 0 64));
          map (fun (s, p) -> `Down (s, p)) (pair (int_range 0 3) (int_range 0 64));
          map (fun (e, p) -> `Bcast (e, p)) (pair (int_range (-1) 3) (int_range 0 64));
        ])
  in
  QCheck.Test.make ~name:"ledger and trace agree under broadcasts"
    QCheck.(pair bool (list_of_size (Gen.int_range 0 60) op))
    (fun (radio, ops) ->
      let cost_model =
        if radio then Network.Radio_broadcast else Network.Unicast
      in
      let net = Network.create ~cost_model ~sites:4 () in
      let ring = Sink.ring ~capacity:1024 in
      Network.set_sink net ring;
      List.iter
        (function
          | `Up (site, payload) -> Network.send_up net ~site ~payload
          | `Down (site, payload) -> Network.send_down net ~site ~payload
          | `Bcast (e, payload) ->
            let except = if e < 0 then None else Some e in
            Network.broadcast_down net ~except ~payload)
        ops;
      let up, down = trace_bytes (Sink.ring_contents ring) in
      Network.bytes_down net
      = Network.medium_bytes net + sum_site_bytes_down net
      && (radio || Network.medium_bytes net = 0)
      && up = Network.bytes_up net
      && down = Network.bytes_down net)

let () =
  Alcotest.run "network"
    [
      ( "accounting",
        [
          Alcotest.test_case "wire sizes" `Quick test_wire_sizes;
          Alcotest.test_case "send up" `Quick test_send_up_accounting;
          Alcotest.test_case "unicast broadcast" `Quick
            test_unicast_broadcast_costs_k;
          Alcotest.test_case "broadcast except" `Quick test_unicast_broadcast_except;
          Alcotest.test_case "radio broadcast" `Quick test_radio_broadcast_costs_once;
          Alcotest.test_case "totals and reset" `Quick test_totals_and_reset;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "radio medium accounting" `Quick
            test_radio_medium_accounting;
          Alcotest.test_case "unicast has no medium" `Quick
            test_unicast_medium_is_zero;
          Alcotest.test_case "reset zeroes observability state" `Quick
            test_reset_zeroes_observability_state;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "sink events match ledger" `Quick
            test_sink_events_match_ledger;
          Alcotest.test_case "events carry logical clock" `Quick
            test_events_carry_logical_clock;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_ledger_totals_consistent;
          QCheck_alcotest.to_alcotest prop_broadcast_invariant;
        ] );
    ]
