(* Tests for the duplicate-SENSITIVE frequency baselines (Count-Min,
   Space-Saving) used to contrast against the paper's duplicate-resilient
   aggregates. *)

module Rng = Wd_hashing.Rng
module Cm = Wd_frequency.Cm_sketch
module Ss = Wd_frequency.Space_saving

(* --- Count-Min --- *)

let test_cm_never_underestimates () =
  let cm = Cm.create ~rng:(Rng.create 181) ~rows:4 ~cols:256 in
  let rng = Rng.create 182 in
  let exact = Hashtbl.create 256 in
  for _ = 1 to 20_000 do
    let v = Rng.int rng 2_000 in
    Cm.add cm v;
    Hashtbl.replace exact v
      (1 + Option.value (Hashtbl.find_opt exact v) ~default:0)
  done;
  Hashtbl.iter
    (fun v c ->
      Alcotest.(check bool)
        (Printf.sprintf "query(%d) >= %d" v c)
        true
        (Cm.query cm v >= c))
    exact

let test_cm_error_bound () =
  (* epsilon = e/cols; overestimate <= eps*N with confidence from rows. *)
  let cols = 512 in
  let cm = Cm.create ~rng:(Rng.create 183) ~rows:5 ~cols in
  let rng = Rng.create 184 in
  let exact = Hashtbl.create 256 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Rng.int rng 5_000 in
    Cm.add cm v;
    Hashtbl.replace exact v
      (1 + Option.value (Hashtbl.find_opt exact v) ~default:0)
  done;
  let bound =
    int_of_float (Float.exp 1.0 /. Float.of_int cols *. Float.of_int n)
  in
  let violations = ref 0 and checked = ref 0 in
  Hashtbl.iter
    (fun v c ->
      incr checked;
      if Cm.query cm v - c > bound then incr violations)
    exact;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d above the eps*N bound" !violations !checked)
    true
    (Float.of_int !violations < 0.02 *. Float.of_int !checked)

let test_cm_counts_duplicates () =
  (* The point of the baseline: it counts OCCURRENCES. *)
  let cm = Cm.create ~rng:(Rng.create 185) ~rows:4 ~cols:64 in
  for _ = 1 to 500 do
    Cm.add cm 7
  done;
  Alcotest.(check bool) "500 occurrences visible" true (Cm.query cm 7 >= 500);
  Alcotest.(check int) "total" 500 (Cm.total cm)

let test_cm_merge () =
  let mk () = Cm.create ~rng:(Rng.create 186) ~rows:3 ~cols:128 in
  let a = mk () and b = mk () and u = mk () in
  for v = 0 to 99 do
    Cm.add a v;
    Cm.add u v
  done;
  for v = 50 to 149 do
    Cm.add b v ~count:2;
    Cm.add u v ~count:2
  done;
  Cm.merge_into ~dst:a b;
  Alcotest.(check int) "totals add" (Cm.total u) (Cm.total a);
  for v = 0 to 149 do
    Alcotest.(check int) (Printf.sprintf "query %d" v) (Cm.query u v)
      (Cm.query a v)
  done

let test_cm_sizing () =
  let cm =
    Cm.of_params ~alpha:0.01 ~delta:0.01 ~seed:187
  in
  Alcotest.(check bool) "cols >= e/eps" true (Cm.cols cm >= 271);
  Alcotest.(check bool) "rows >= ln(1/delta)" true (Cm.rows cm >= 5)

(* --- Space-Saving --- *)

let test_ss_exact_below_capacity () =
  let ss = Ss.create ~capacity:100 in
  for v = 0 to 49 do
    Ss.add ss v ~count:(v + 1)
  done;
  for v = 0 to 49 do
    Alcotest.(check (option int))
      (Printf.sprintf "count of %d" v)
      (Some (v + 1)) (Ss.query ss v)
  done;
  Alcotest.(check int) "no error below capacity" 0 (Ss.max_error ss)

let test_ss_finds_true_heavy_hitters () =
  (* Any item with frequency > N/capacity must be monitored. *)
  let ss = Ss.create ~capacity:50 in
  let rng = Rng.create 188 in
  (* Heavy: items 0..4 get 2000 each; noise: 40k arrivals over 10k items. *)
  let arrivals = ref [] in
  for v = 0 to 4 do
    for _ = 1 to 2_000 do
      arrivals := v :: !arrivals
    done
  done;
  for _ = 1 to 40_000 do
    arrivals := (100 + Rng.int rng 10_000) :: !arrivals
  done;
  let arr = Array.of_list !arrivals in
  Rng.shuffle_in_place rng arr;
  Array.iter (Ss.add ss) arr;
  let top = Ss.top ss ~k:5 |> List.map fst in
  for v = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "heavy item %d monitored" v)
      true (List.mem v top)
  done

let test_ss_overestimate_bounded () =
  let cap = 64 in
  let ss = Ss.create ~capacity:cap in
  let rng = Rng.create 189 in
  let exact = Hashtbl.create 256 in
  let n = 30_000 in
  for _ = 1 to n do
    let v = Rng.int rng 3_000 in
    Ss.add ss v;
    Hashtbl.replace exact v
      (1 + Option.value (Hashtbl.find_opt exact v) ~default:0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "max_error %d <= N/capacity %d" (Ss.max_error ss) (n / cap))
    true
    (Ss.max_error ss <= n / cap);
  Hashtbl.iter
    (fun v c ->
      match Ss.query ss v with
      | None -> ()
      | Some est ->
        Alcotest.(check bool)
          (Printf.sprintf "est %d in [true %d, true + max_error]" est c)
          true
          (est >= c && est <= c + Ss.max_error ss))
    exact

let test_ss_monitored_capped () =
  let ss = Ss.create ~capacity:10 in
  for v = 0 to 999 do
    Ss.add ss v
  done;
  Alcotest.(check int) "monitored = capacity" 10 (Ss.monitored ss);
  Alcotest.(check int) "total" 1_000 (Ss.total ss)

(* --- The motivating contrast: frequency vs distinct heavy hitters --- *)

let test_duplication_fools_frequency_not_distinct () =
  (* Object A: requested once each by 1000 distinct clients.
     Object B: requested 5000 times by a single bot client.
     Frequency ranking puts B on top; distinct-client ranking puts A. *)
  let rng = Rng.create 190 in
  let pairs = ref [] in
  for w = 0 to 999 do
    pairs := (1, w) :: !pairs
  done;
  for _ = 1 to 5_000 do
    pairs := (2, 424242) :: !pairs
  done;
  let arr = Array.of_list !pairs in
  Rng.shuffle_in_place rng arr;
  let ss = Ss.create ~capacity:32 in
  let hh =
    Wd_aggregate.Distinct_hh.Centralized.create
      ~family:
        (Wd_aggregate.Fm_array.family ~rng
           { Wd_aggregate.Fm_array.rows = 3; cols = 64; bitmaps = 16 })
  in
  Array.iter
    (fun (v, w) ->
      Ss.add ss v;
      Wd_aggregate.Distinct_hh.Centralized.add hh ~v ~w)
    arr;
  (match Ss.top ss ~k:1 with
  | [ (v, _) ] -> Alcotest.(check int) "frequency crowns the bot target" 2 v
  | _ -> Alcotest.fail "space-saving top empty");
  match Wd_aggregate.Distinct_hh.Centralized.top hh ~k:1 with
  | [ (v, _) ] ->
    Alcotest.(check int) "distinct HH crowns the broadly popular object" 1 v
  | _ -> Alcotest.fail "distinct hh top empty"

(* --- QCheck --- *)

let prop_cm_dominates_truth =
  QCheck.Test.make ~name:"cm query >= exact count"
    QCheck.(list_of_size (Gen.int_range 0 300) (int_range 0 100))
    (fun xs ->
      let cm = Cm.create ~rng:(Rng.create 191) ~rows:3 ~cols:32 in
      List.iter (fun v -> Cm.add cm v) xs;
      let exact = Hashtbl.create 32 in
      List.iter
        (fun v ->
          Hashtbl.replace exact v
            (1 + Option.value (Hashtbl.find_opt exact v) ~default:0))
        xs;
      Hashtbl.fold (fun v c ok -> ok && Cm.query cm v >= c) exact true)

let prop_ss_total_preserved =
  QCheck.Test.make ~name:"space-saving preserves the total"
    QCheck.(list_of_size (Gen.int_range 0 500) (int_range 0 50))
    (fun xs ->
      let ss = Ss.create ~capacity:8 in
      List.iter (Ss.add ss) xs;
      Ss.total ss = List.length xs)

let () =
  Alcotest.run "frequency"
    [
      ( "count-min",
        [
          Alcotest.test_case "never underestimates" `Quick
            test_cm_never_underestimates;
          Alcotest.test_case "error bound" `Quick test_cm_error_bound;
          Alcotest.test_case "counts duplicates" `Quick test_cm_counts_duplicates;
          Alcotest.test_case "merge" `Quick test_cm_merge;
          Alcotest.test_case "sizing" `Quick test_cm_sizing;
        ] );
      ( "space-saving",
        [
          Alcotest.test_case "exact below capacity" `Quick
            test_ss_exact_below_capacity;
          Alcotest.test_case "finds heavy hitters" `Quick
            test_ss_finds_true_heavy_hitters;
          Alcotest.test_case "overestimate bounded" `Quick
            test_ss_overestimate_bounded;
          Alcotest.test_case "monitored capped" `Quick test_ss_monitored_capped;
        ] );
      ( "contrast",
        [
          Alcotest.test_case "duplication fools frequency" `Quick
            test_duplication_fools_frequency_not_distinct;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cm_dominates_truth; prop_ss_total_preserved ] );
    ]
