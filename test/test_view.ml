(* Tests for the continuous-view layer: the arena allocator, the shared
   fanout plane, query specs, the registry's fan-out equivalence against
   standalone trackers, and the unified Simulation.run view reports. *)

module Arena = Wd_view.Arena
module Fanout = Wd_view.Fanout_sketch
module Query = Wd_view.Query
module Registry = Wd_view.Registry
module Tracker_intf = Wd_protocol.Tracker_intf
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module W = Wd_protocol.Window_tracker
module Network = Wd_net.Network
module Stream = Wd_workload.Stream
module Stream_gen = Wd_workload.Stream_gen
module Sim = Whats_different.Simulation
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event
module Trace = Wd_obs.Trace
module Summary = Wd_obs.Summary
module Rng = Wd_hashing.Rng

(* ------------------------------------------------------------------ *)
(* Arena *)

let test_arena_alloc_and_growth () =
  let a = Arena.create ~capacity:4 () in
  let off0 = Arena.alloc a 3 in
  let off1 = Arena.alloc a 2 in
  Alcotest.(check int) "first offset" 0 off0;
  Alcotest.(check int) "bump" 3 off1;
  Alcotest.(check int) "used" 5 (Arena.used a);
  for i = 0 to 4 do
    Alcotest.(check int) "zero-initialized" 0 (Arena.get a i)
  done;
  for i = 0 to 4 do
    Arena.set a i (100 + i)
  done;
  (* Force several doublings; earlier regions must survive the moves. *)
  let big = Arena.alloc a 4096 in
  Alcotest.(check int) "big offset" 5 big;
  for i = 0 to 4 do
    Alcotest.(check int) "survives growth" (100 + i) (Arena.get a i)
  done;
  Alcotest.(check int) "fresh region zeroed" 0 (Arena.get a (big + 4095));
  Alcotest.(check bool) "capacity covers used" true
    (Arena.capacity a >= Arena.used a)

let test_arena_blit () =
  let a = Arena.create () in
  let src = Arena.alloc a 8 in
  let dst = Arena.alloc a 8 in
  for i = 0 to 7 do
    Arena.set a (src + i) (i * i)
  done;
  Arena.blit a ~src ~dst ~len:8;
  for i = 0 to 7 do
    Alcotest.(check int) "copied" (i * i) (Arena.get a (dst + i))
  done

(* ------------------------------------------------------------------ *)
(* Fanout sketch *)

let test_fanout_standalone_accuracy () =
  let rng = Rng.create 7 in
  let fam = Fanout.family ~rng ~accuracy:0.1 ~confidence:0.9 in
  let sk = Fanout.create fam in
  let n = 20_000 in
  for v = 0 to n - 1 do
    ignore (Fanout.add sk v)
  done;
  let est = Fanout.estimate sk in
  let err = Float.abs (est -. Float.of_int n) /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within 30%% of %d" est n)
    true (err < 0.3)

let test_fanout_shared_plane () =
  let plane = Fanout.plane ~rng:(Rng.create 11) () in
  let fam_a = Fanout.family_on ~plane ~accuracy:0.1 ~confidence:0.9 in
  let fam_b = Fanout.family_on ~plane ~accuracy:0.2 ~confidence:0.9 in
  let a = Fanout.create fam_a and b = Fanout.create fam_b in
  Alcotest.(check int) "plane words cover both registers"
    (Fanout.buckets fam_a + Fanout.buckets fam_b)
    (Fanout.plane_words plane);
  (* Interleaved adds of the same item exercise the hash memo; both
     sketches must agree with privately-fed twins. *)
  let a' = Fanout.create fam_a and b' = Fanout.create fam_b in
  for v = 0 to 9_999 do
    ignore (Fanout.add a v);
    ignore (Fanout.add b v);
    ignore (Fanout.add a' v)
  done;
  for v = 0 to 9_999 do
    ignore (Fanout.add b' v)
  done;
  Alcotest.(check bool) "memoized = private twin (a)" true
    (Fanout.equal a a');
  Alcotest.(check bool) "memoized = private twin (b)" true
    (Fanout.equal b b');
  Alcotest.(check (float 0.0)) "same estimate" (Fanout.estimate a)
    (Fanout.estimate a')

(* ------------------------------------------------------------------ *)
(* Query specs *)

let sample_queries =
  [
    Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS;
    Query.dc ~name:"edge" ~sketch:Query.Fanout
      ~selector:(Query.Key_mod { modulus = 100; residue = 7 })
      ~theta:0.05 ~alpha:0.1 Dc.NS;
    Query.dc ~sketch:Query.Fmc ~estimator:Wd_sketch.Sketch_intf.Mle
      ~confidence:0.95 ~theta:0.02 ~alpha:0.08 Dc.SC;
    Query.dc ~sketch:Query.Bjkst ~seed:99
      ~selector:(Query.Sites { first = 1; count = 3 })
      ~theta:0.1 ~alpha:0.1 Dc.SS;
    Query.dc ~sketch:Query.Hll ~theta:0.1 ~alpha:0.05 Dc.EC;
    Query.ds ~theta:0.3 ~threshold:64 Ds.LCO;
    Query.ds ~name:"sample"
      ~selector:(Query.Key_mod { modulus = 2; residue = 1 })
      ~theta:0.2 ~threshold:32 Ds.GCS;
    Query.hh ~theta:0.1 Dc.LS;
    Query.hh
      ~config:{ Wd_aggregate.Fm_array.rows = 2; cols = 100; bitmaps = 8 }
      ~theta:0.2 Dc.NS;
    Query.window ~theta:0.05 ~alpha:0.1 ~window:5_000 W.LS;
  ]

let test_spec_roundtrip () =
  List.iter
    (fun q ->
      let spec = Query.to_spec q in
      match Query.of_spec spec with
      | Error e -> Alcotest.failf "of_spec %S: %s" spec e
      | Ok q' ->
        Alcotest.(check string)
          (Printf.sprintf "roundtrip %s" spec)
          spec (Query.to_spec q');
        Alcotest.(check string) "label survives" (Query.label q)
          (Query.label q');
        Alcotest.(check bool) "record equal" true (q = q'))
    sample_queries

let test_spec_errors () =
  let bad =
    [
      "bogus:xx";
      "dc:nope";
      "dc";
      "dc:ls:mystery=1";
      "dc:ls:alpha=zero";
      "hh:ec";
      "dc:ls:sketch=cuckoo";
      "dc:ls:mod=10";
      "dc:ls:sites=3";
    ]
  in
  List.iter
    (fun s ->
      match Query.of_spec s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "of_spec %S unexpectedly parsed" s)
    bad

let test_of_file () =
  let path = Filename.temp_file "wd_views" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "# standing views\n\n\
         dc:ls:alpha=0.07,theta=0.03\n\
         ds:lco:theta=0.3,threshold=64\n";
      close_out oc;
      (match Query.of_file path with
      | Error e -> Alcotest.failf "of_file: %s" e
      | Ok qs ->
        Alcotest.(check int) "two specs" 2 (List.length qs);
        Alcotest.(check string) "labels" "dc-ls,ds-lco"
          (String.concat "," (List.map Query.label qs)));
      let oc = open_out path in
      output_string oc "dc:ls\nnot a spec\n";
      close_out oc;
      match Query.of_file path with
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the line: %s" e)
          true
          (String.length e > 0 && String.contains e '2')
      | Ok _ -> Alcotest.fail "of_file accepted a bad line")

let test_pack_pair_roundtrip =
  Prop.test_case ~name:"pack_pair roundtrip" ~count:500
    ~show:(Prop.show_pair Prop.show_int Prop.show_int)
    (Prop.pair (Prop.int_range 0 0x3FFFFFFF) (Prop.int_range 0 0x3FFFFFFF))
    (fun (v, w) ->
      let p = Query.pack_pair ~v ~w in
      Query.unpack_v p = v && Query.unpack_w p = w)

(* ------------------------------------------------------------------ *)
(* Registry: fan-out equivalence against standalone trackers *)

(* Feed every event of [stream] through the registry's packed tracker
   and return one (estimate, routed, sends, bytes) row per view. *)
let run_registry ~seed ~sites queries stream =
  let r = Registry.create ~seed ~sites ~default_window:1_000 queries in
  let packed = Registry.packed r in
  Stream.iter (fun ~site ~item -> Tracker_intf.observe packed ~site item) stream;
  let rows =
    List.init (Registry.views r) (fun i ->
        let tr = Registry.view_tracker r i in
        let net = Tracker_intf.network tr in
        ( Registry.estimate r i,
          Registry.routed r i,
          Tracker_intf.sends tr,
          Network.total_bytes net ))
  in
  Registry.close r;
  rows

(* The sub-stream a view's selector accepts, site-rebased as the
   registry rebases it. *)
let filtered_stream ~sites sel stream =
  let keep ~site ~item =
    match sel with
    | Query.All -> Some site
    | Query.Sites { first; count } ->
      if site >= first && site < first + count then Some (site - first)
      else None
    | Query.Key_mod { modulus; residue } ->
      let r = item mod modulus in
      if (if r < 0 then r + modulus else r) = residue then Some site else None
  in
  let events = ref [] in
  Stream.iter
    (fun ~site ~item ->
      match keep ~site ~item with
      | Some site -> events := (site, item) :: !events
      | None -> ())
    stream;
  let vsites =
    match sel with Query.Sites { count; _ } -> count | _ -> sites
  in
  (vsites, Stream.of_events (List.rev !events))

(* Every view of a multi-view registry must report exactly what a
   standalone single-view registry reports when fed the view's
   sub-stream with the same effective hash seed (and the same registry
   seed, which keys the shared fanout plane).  Returns the registry rows
   and a list of human-readable mismatches (empty on success). *)
let compare_registry_to_standalone ~seed ~sites queries stream =
  let rows = run_registry ~seed ~sites queries stream in
  let mismatches = ref [] in
  List.iteri
    (fun i q ->
      let est, routed, sends, bytes = List.nth rows i in
      let vseed = Option.value q.Query.seed ~default:(seed + i) in
      let vsites, sub = filtered_stream ~sites q.Query.selector stream in
      let solo_q = { q with Query.selector = Query.All; seed = Some vseed } in
      let solo =
        match run_registry ~seed ~sites:vsites [ solo_q ] sub with
        | [ row ] -> row
        | _ -> assert false
      in
      let s_est, s_routed, s_sends, s_bytes = solo in
      let bad what got want =
        mismatches :=
          Printf.sprintf "view %d (%s) %s: %s vs standalone %s" i
            (Query.to_spec q) what got want
          :: !mismatches
      in
      if routed <> s_routed then
        bad "routed" (string_of_int routed) (string_of_int s_routed);
      if est <> s_est then
        bad "estimate" (Printf.sprintf "%f" est) (Printf.sprintf "%f" s_est);
      if sends <> s_sends then
        bad "sends" (string_of_int sends) (string_of_int s_sends);
      if bytes <> s_bytes then
        bad "bytes" (string_of_int bytes) (string_of_int s_bytes))
    queries;
  (rows, List.rev !mismatches)

let check_registry_matches_standalone ~seed ~sites queries stream =
  let rows, mismatches =
    compare_registry_to_standalone ~seed ~sites queries stream
  in
  (match mismatches with
  | [] -> ()
  | ms -> Alcotest.fail (String.concat "\n" ms));
  rows

let mixed_stream = Stream_gen.zipf ~seed:3 ~sites:4 ~events:8_000 ~universe:2_000 ()

let test_registry_mixed_views_match_standalone () =
  let queries =
    [
      Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS;
      (* Three same-modulus key classes: the grouped dispatch path. *)
      Query.dc ~sketch:Query.Fanout
        ~selector:(Query.Key_mod { modulus = 3; residue = 0 })
        ~theta:0.05 ~alpha:0.1 Dc.NS;
      Query.dc ~sketch:Query.Fanout
        ~selector:(Query.Key_mod { modulus = 3; residue = 1 })
        ~theta:0.05 ~alpha:0.1 Dc.LS;
      Query.dc ~sketch:Query.Fanout
        ~selector:(Query.Key_mod { modulus = 3; residue = 2 })
        ~theta:0.05 ~alpha:0.1 Dc.LS;
      (* A lone key class stays on the scan path. *)
      Query.ds
        ~selector:(Query.Key_mod { modulus = 2; residue = 1 })
        ~theta:0.3 ~threshold:64 Ds.LCO;
      (* Site-sliced view runs a rebased 2-site tracker. *)
      Query.dc ~sketch:Query.Bjkst
        ~selector:(Query.Sites { first = 1; count = 2 })
        ~theta:0.05 ~alpha:0.1 Dc.LS;
      Query.window ~theta:0.05 ~alpha:0.1 ~window:2_000 W.LS;
    ]
  in
  let rows =
    check_registry_matches_standalone ~seed:42 ~sites:4 queries mixed_stream
  in
  (* The three mod-3 classes partition the arrivals. *)
  let routed i = match List.nth rows i with _, r, _, _ -> r in
  Alcotest.(check int) "key classes partition the stream"
    (Stream.length mixed_stream)
    (routed 1 + routed 2 + routed 3)

let test_registry_hh_view_matches_standalone () =
  (* HH views consume pair-packed keys; route a packed stream through a
     registry carrying an HH primary and a key-class HH satellite. *)
  let rng = Rng.create 5 in
  let events =
    List.init 6_000 (fun _ ->
        (Rng.int rng 4, Query.pack_pair ~v:(Rng.int rng 300) ~w:(Rng.int rng 50)))
  in
  let stream = Stream.of_events events in
  let queries =
    [
      Query.hh ~theta:0.1 Dc.LS;
      Query.hh ~theta:0.2
        ~selector:(Query.Key_mod { modulus = 7; residue = 3 })
        Dc.NS;
    ]
  in
  ignore (check_registry_matches_standalone ~seed:9 ~sites:4 queries stream)

let test_single_view_registry_is_its_tracker () =
  let r =
    Registry.create ~seed:1 ~sites:4 [ Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS ]
  in
  Alcotest.(check bool) "packed is the view tracker" true
    (Registry.packed r == Registry.view_tracker r 0);
  Registry.close r;
  (* With a satellite, the feed surface becomes the fan-out tracker. *)
  let r2 =
    Registry.create ~seed:1 ~sites:4
      [
        Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS;
        Query.dc ~theta:0.05 ~alpha:0.1 Dc.NS;
      ]
  in
  Alcotest.(check bool) "fan-out tracker wraps the views" true
    (Registry.packed r2 != Registry.view_tracker r2 0);
  Alcotest.(check string) "fan-out kind" "view"
    (match Registry.packed r2 with
    | Tracker_intf.Tracker ((module T), _) -> T.kind);
  Registry.close r2

let test_registry_validation () =
  let raises msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  let dc = Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS in
  raises "empty query list" (fun () ->
      Registry.create ~seed:1 ~sites:4 []);
  raises "sites slice out of range" (fun () ->
      Registry.create ~seed:1 ~sites:4
        [ { dc with Query.selector = Query.Sites { first = 2; count = 3 } } ]);
  raises "zero modulus" (fun () ->
      Registry.create ~seed:1 ~sites:4
        [ { dc with Query.selector = Query.Key_mod { modulus = 0; residue = 0 } } ]);
  raises "residue >= modulus" (fun () ->
      Registry.create ~seed:1 ~sites:4
        [ { dc with Query.selector = Query.Key_mod { modulus = 3; residue = 3 } } ]);
  raises "shards with a fanout view" (fun () ->
      Registry.create ~seed:1 ~sites:4 ~shards:2
        [ dc; { dc with Query.sketch = Query.Fanout } ]);
  raises "window query needs a width" (fun () ->
      Registry.create ~seed:1 ~sites:4
        [ Query.window ~theta:0.05 ~alpha:0.1 W.LS ])

(* Property: a random registry over a random stream — every view's
   final report matches its standalone twin.  Same-modulus key classes
   appear with high probability, so the grouped dispatch path is
   exercised alongside the scan path. *)
let test_registry_property =
  let gen_sat rng =
    let sel =
      match Prop.int_range 0 3 rng with
      | 0 -> Query.All
      | 1 ->
        let first = Prop.int_range 0 2 rng in
        let count = Prop.int_range 1 (3 - first) rng in
        Query.Sites { first; count }
      | _ ->
        (* Moduli drawn from {2, 3} so grouping is likely. *)
        let modulus = Prop.int_range 2 3 rng in
        Query.Key_mod { modulus; residue = Prop.int_range 0 (modulus - 1) rng }
    in
    let sketch =
      match Prop.int_range 0 4 rng with
      | 0 -> Query.Fm
      | 1 -> Query.Bjkst
      | 2 -> Query.Hll
      | 3 -> Query.Fmc
      | _ -> Query.Fanout
    in
    let algorithm = if Prop.int_range 0 1 rng = 0 then Dc.LS else Dc.NS in
    Query.dc ~sketch ~selector:sel ~theta:0.05 ~alpha:0.1 algorithm
  in
  let gen rng =
    let stream_seed = Prop.int_range 0 10_000 rng in
    let events = Prop.int_range 500 2_000 rng in
    let sats = Prop.list ~min_len:1 ~max_len:5 gen_sat rng in
    (stream_seed, events, sats)
  in
  let show (stream_seed, events, sats) =
    Printf.sprintf "seed=%d events=%d views=[%s]" stream_seed events
      (String.concat "; " (List.map Query.to_spec sats))
  in
  let shrink (stream_seed, events, sats) =
    List.map
      (fun sats -> (stream_seed, events, sats))
      (Prop.shrink_list Prop.no_shrink sats)
  in
  Prop.test_case ~name:"every view matches its standalone twin" ~count:12
    ~shrink ~show gen (fun (stream_seed, events, sats) ->
      let stream =
        Stream_gen.zipf ~seed:stream_seed ~sites:3 ~events ~universe:500 ()
      in
      let queries = Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS :: sats in
      let _, mismatches =
        compare_registry_to_standalone ~seed:17 ~sites:3 queries stream
      in
      mismatches = [])

(* ------------------------------------------------------------------ *)
(* Simulation.run with satellite views *)

let sat_views =
  [
    Query.dc ~sketch:Query.Fanout
      ~selector:(Query.Key_mod { modulus = 2; residue = 0 })
      ~theta:0.05 ~alpha:0.1 Dc.NS;
    Query.dc ~sketch:Query.Fanout
      ~selector:(Query.Key_mod { modulus = 2; residue = 1 })
      ~theta:0.05 ~alpha:0.1 Dc.NS;
  ]

let test_sim_views_leave_primary_untouched () =
  let q = Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS in
  let solo = Sim.run ~seed:7 q mixed_stream in
  let multi = Sim.run ~seed:7 ~views:sat_views q mixed_stream in
  Alcotest.(check (float 0.0)) "estimate unchanged" solo.Sim.final_estimate
    multi.Sim.final_estimate;
  Alcotest.(check int) "bytes unchanged" solo.Sim.total_bytes
    multi.Sim.total_bytes;
  Alcotest.(check int) "sends unchanged" solo.Sim.sends multi.Sim.sends;
  Alcotest.(check int) "one report per view" 3
    (Array.length multi.Sim.view_reports);
  Alcotest.(check int) "solo run reports the primary only" 1
    (Array.length solo.Sim.view_reports);
  let p = multi.Sim.view_reports.(0) in
  Alcotest.(check (float 0.0)) "primary row mirrors the run"
    multi.Sim.final_estimate p.Sim.view_estimate;
  Alcotest.(check int) "primary bytes mirror the run" multi.Sim.total_bytes
    p.Sim.view_total_bytes;
  Alcotest.(check int) "satellites partition the arrivals"
    (Stream.length mixed_stream)
    (multi.Sim.view_reports.(1).Sim.view_routed
    + multi.Sim.view_reports.(2).Sim.view_routed)

let test_sim_view_report_trace_roundtrip () =
  let q = Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS in
  let ring = Sink.ring ~capacity:65_536 in
  let r = Sim.run ~seed:7 ~sink:ring ~views:sat_views q mixed_stream in
  let events = Sink.ring_contents ring in
  let reports =
    List.filter
      (fun e ->
        match e.Event.kind with Event.View_report _ -> true | _ -> false)
      events
  in
  Alcotest.(check int) "one trace report per view" 3 (List.length reports);
  (* The JSONL codec roundtrips every report event. *)
  List.iter
    (fun e ->
      match Trace.decode_line (Trace.encode_line e) with
      | Ok e' ->
        Alcotest.(check bool) "codec roundtrip" true (e = e')
      | Error err -> Alcotest.failf "decode_line: %s" err)
    reports;
  (* Summary rows agree with the run's own view reports. *)
  let s = Summary.of_events events in
  Alcotest.(check int) "summary rows" 3 (List.length s.Summary.views);
  List.iteri
    (fun i (row : Summary.view_row) ->
      let vr = r.Sim.view_reports.(i) in
      Alcotest.(check int) "index" i row.Summary.v_index;
      Alcotest.(check string) "label" vr.Sim.view_label row.Summary.v_label;
      Alcotest.(check string) "spec" vr.Sim.view_spec row.Summary.v_spec;
      Alcotest.(check (float 0.0)) "estimate" vr.Sim.view_estimate
        row.Summary.v_estimate;
      Alcotest.(check int) "routed" vr.Sim.view_routed row.Summary.v_routed;
      Alcotest.(check int) "bytes" vr.Sim.view_total_bytes
        row.Summary.v_bytes)
    s.Summary.views;
  (* Single-view runs stay silent: legacy traces carry no view rows. *)
  let ring1 = Sink.ring ~capacity:65_536 in
  ignore (Sim.run ~seed:7 ~sink:ring1 q mixed_stream);
  Alcotest.(check int) "no reports without satellites" 0
    (List.length
       (List.filter
          (fun e ->
            match e.Event.kind with Event.View_report _ -> true | _ -> false)
          (Sink.ring_contents ring1)))

let () =
  Alcotest.run "view"
    [
      ( "arena",
        [
          Alcotest.test_case "alloc, zero-init, growth" `Quick
            test_arena_alloc_and_growth;
          Alcotest.test_case "blit" `Quick test_arena_blit;
        ] );
      ( "fanout sketch",
        [
          Alcotest.test_case "standalone accuracy" `Quick
            test_fanout_standalone_accuracy;
          Alcotest.test_case "shared plane, memoized adds" `Quick
            test_fanout_shared_plane;
        ] );
      ( "query specs",
        [
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "rejects malformed specs" `Quick test_spec_errors;
          Alcotest.test_case "of_file" `Quick test_of_file;
          test_pack_pair_roundtrip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "mixed views match standalone twins" `Quick
            test_registry_mixed_views_match_standalone;
          Alcotest.test_case "hh views on a packed pair stream" `Quick
            test_registry_hh_view_matches_standalone;
          Alcotest.test_case "one whole-stream view is its tracker" `Quick
            test_single_view_registry_is_its_tracker;
          Alcotest.test_case "rejects invalid registries" `Quick
            test_registry_validation;
          test_registry_property;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "satellites leave the primary untouched" `Quick
            test_sim_views_leave_primary_untouched;
          Alcotest.test_case "view report trace roundtrip" `Quick
            test_sim_view_report_trace_roundtrip;
        ] );
    ]
