(* Property tests over the sketch algebra — the invariants that make
   duplicate-resilient monitoring (and this PR's recovery-by-retransmission
   machinery) sound:

   - merge is commutative, associative, and idempotent for the bitmap
     sketches (FM both variants, BJKST, HLL);
   - merging partitioned streams equals sketching the concatenation
     (distributed = centralized), so estimates agree;
   - re-inserting duplicates never changes a bitmap sketch — which is
     exactly why a retransmitted sketch merge is harmless;
   - the distinct sampler merges commutatively/associatively, a merge of
     partitioned streams equals one sampler over the whole stream, and a
     self-merge preserves the retained support and level while doubling
     counts (counts are additive, not idempotent — the reason count
     reports ship absolute values under faults).

   Cases and generators live in [Prop] (hand-rolled, seeded by
   WD_PROP_SEED, default 42; >= 200 cases per invariant). *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Bjkst = Wd_sketch.Bjkst
module Hll = Wd_sketch.Hyperloglog
module Sampler = Wd_sketch.Distinct_sampler

(* One generated case: independent hash-family seed plus three item
   streams (with duplicates, small universe to force collisions). *)
type case = { fam_seed : int; xs : int list; ys : int list; zs : int list }

let case_gen rng =
  let items = Prop.list ~max_len:60 (Prop.int_range 0 150) in
  {
    fam_seed = Prop.int_range 0 10_000 rng;
    xs = items rng;
    ys = items rng;
    zs = items rng;
  }

let show_case c =
  Printf.sprintf "{fam_seed=%d; xs=%s; ys=%s; zs=%s}" c.fam_seed
    (Prop.show_list Prop.show_int c.xs)
    (Prop.show_list Prop.show_int c.ys)
    (Prop.show_list Prop.show_int c.zs)

let shrink_case c =
  let sl = Prop.shrink_list Prop.shrink_int in
  List.map (fun xs -> { c with xs }) (sl c.xs)
  @ List.map (fun ys -> { c with ys }) (sl c.ys)
  @ List.map (fun zs -> { c with zs }) (sl c.zs)

(* ------------------------------------------------------------------ *)
(* Generic suite over any bitmap-style sketch *)

module type BITMAP_SKETCH = sig
  type family
  type t

  val create : family -> t
  val add : t -> int -> bool
  val merge_into : dst:t -> t -> unit
  val equal : t -> t -> bool
  val estimate : t -> float
end

let bitmap_suite (type f) name (module M : BITMAP_SKETCH with type family = f)
    (mk_family : seed:int -> f) =
  let of_items fam items =
    let s = M.create fam in
    List.iter (fun v -> ignore (M.add s v)) items;
    s
  in
  let merged fam a b =
    let dst = of_items fam a in
    M.merge_into ~dst (of_items fam b);
    dst
  in
  let prop pname p =
    Prop.test_case ~shrink:shrink_case ~show:show_case
      ~name:(Printf.sprintf "%s %s" name pname)
      case_gen p
  in
  [
    prop "merge commutative" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        M.equal (merged fam c.xs c.ys) (merged fam c.ys c.xs));
    prop "merge associative" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        let ab_c =
          let dst = merged fam c.xs c.ys in
          M.merge_into ~dst (of_items fam c.zs);
          dst
        in
        let a_bc =
          let dst = of_items fam c.xs in
          M.merge_into ~dst (merged fam c.ys c.zs);
          dst
        in
        M.equal ab_c a_bc);
    prop "merge idempotent" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        M.equal (merged fam c.xs c.xs) (of_items fam c.xs));
    prop "distributed = centralized" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        let whole = of_items fam (c.xs @ c.ys) in
        let m = merged fam c.xs c.ys in
        M.equal m whole && M.estimate m = M.estimate whole);
    prop "duplicate insensitive" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        M.equal (of_items fam (c.xs @ c.xs)) (of_items fam c.xs));
  ]

let fm_suite variant name =
  bitmap_suite name
    (module Fm : BITMAP_SKETCH with type family = Fm.family)
    (fun ~seed ->
      Fm.family_custom ~rng:(Rng.create seed) ~variant ~bitmaps:8)

let bjkst_suite =
  bitmap_suite "bjkst"
    (module Bjkst : BITMAP_SKETCH with type family = Bjkst.family)
    (fun ~seed -> Bjkst.family_custom ~rng:(Rng.create seed) ~k:16)

let hll_suite =
  bitmap_suite "hll"
    (module Hll : BITMAP_SKETCH with type family = Hll.family)
    (fun ~seed -> Hll.family_custom ~rng:(Rng.create seed) ~registers:16)

(* ------------------------------------------------------------------ *)
(* Distinct sampler: algebra over (level, retained counts) *)

let sampler_family ~seed =
  Sampler.family ~rng:(Rng.create seed) ~threshold:16

let sampler_of fam items =
  let s = Sampler.create fam in
  List.iter (Sampler.add s) items;
  s

let sampler_state s =
  (Sampler.level s, List.sort compare (Sampler.contents s))

let sampler_merged fam a b =
  let dst = sampler_of fam a in
  Sampler.merge_into ~dst (sampler_of fam b);
  dst

let sampler_prop pname p =
  Prop.test_case ~shrink:shrink_case ~show:show_case
    ~name:(Printf.sprintf "sampler %s" pname)
    case_gen p

let sampler_suite =
  [
    sampler_prop "merge commutative" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        sampler_state (sampler_merged fam c.xs c.ys)
        = sampler_state (sampler_merged fam c.ys c.xs));
    sampler_prop "merge associative" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        let ab_c =
          let dst = sampler_merged fam c.xs c.ys in
          Sampler.merge_into ~dst (sampler_of fam c.zs);
          dst
        in
        let a_bc =
          let dst = sampler_of fam c.xs in
          Sampler.merge_into ~dst (sampler_merged fam c.ys c.zs);
          dst
        in
        sampler_state ab_c = sampler_state a_bc);
    sampler_prop "distributed = centralized" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        let m = sampler_merged fam c.xs c.ys in
        let whole = sampler_of fam (c.xs @ c.ys) in
        sampler_state m = sampler_state whole
        && Sampler.estimate_distinct m = Sampler.estimate_distinct whole);
    sampler_prop "self-merge keeps support, doubles counts" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        let a = sampler_of fam c.xs in
        let doubled = sampler_merged fam c.xs c.xs in
        Sampler.level doubled = Sampler.level a
        && List.sort compare
             (List.map (fun (v, n) -> (v, 2 * n)) (Sampler.contents a))
           = List.sort compare (Sampler.contents doubled));
    sampler_prop "add_count ignores below-level items" (fun c ->
        (* Validates the absolute-count recovery refactor: replaying a
           count for an item the sampler has moved past never resurrects
           it. *)
        let fam = sampler_family ~seed:c.fam_seed in
        let s = sampler_of fam (c.xs @ c.ys) in
        let lvl = Sampler.level s in
        let before = sampler_state s in
        List.iter
          (fun v ->
            if Sampler.item_level s v < lvl then Sampler.add_count s v 3)
          c.zs;
        sampler_state s = before);
  ]

let () =
  Alcotest.run "properties"
    [
      ("fm-stochastic", fm_suite Fm.Stochastic "fm-stochastic");
      ("fm-averaged", fm_suite Fm.Averaged "fm-averaged");
      ("bjkst", bjkst_suite);
      ("hll", hll_suite);
      ("sampler", sampler_suite);
    ]
