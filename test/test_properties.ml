(* Property tests over the sketch algebra — the invariants that make
   duplicate-resilient monitoring (and this PR's recovery-by-retransmission
   machinery) sound:

   - merge is commutative, associative, and idempotent for the bitmap
     sketches (FM both variants, BJKST, HLL);
   - merging partitioned streams equals sketching the concatenation
     (distributed = centralized), so estimates agree;
   - re-inserting duplicates never changes a bitmap sketch — which is
     exactly why a retransmitted sketch merge is harmless;
   - the distinct sampler merges commutatively/associatively, a merge of
     partitioned streams equals one sampler over the whole stream, and a
     self-merge preserves the retained support and level while doubling
     counts (counts are additive, not idempotent — the reason count
     reports ship absolute values under faults);
   - [add_batch] is observationally equal to folding [add], for every
     sketch behind DISTINCT_SKETCH and for the sampler, including across
     merges — and [observe_batch] is observationally equal to folding
     [observe] for both trackers (same estimates, byte ledgers and send
     counts), which is what licenses the batched simulator fast path;
   - hierarchical merging up a random tree (sites -> aggregators ->
     root, depth >= 2) equals the centralized sketch for every family
     and estimator, which is what licenses aggregators forwarding
     merged frames;
   - the per-hop byte ledger conserves on random tree topologies under
     drop and aggregator-crash faults (root bytes = sum of last-hop
     edge deliveries; grand total = site links + backbone), and a
     depth-1 explicit tree is the flat star bit for bit, for the DC, DS
     and HH trackers.

   Cases and generators live in [Prop] (hand-rolled, seeded by
   WD_PROP_SEED, default 42; >= 200 cases per invariant). *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Fmc = Wd_sketch.Fm_concentrated
module Bjkst = Wd_sketch.Bjkst
module Hll = Wd_sketch.Hyperloglog
module Sampler = Wd_sketch.Distinct_sampler

let mle = Wd_sketch.Sketch_intf.Mle

(* One generated case: independent hash-family seed plus three item
   streams (with duplicates, small universe to force collisions). *)
type case = { fam_seed : int; xs : int list; ys : int list; zs : int list }

let case_gen rng =
  let items = Prop.list ~max_len:60 (Prop.int_range 0 150) in
  {
    fam_seed = Prop.int_range 0 10_000 rng;
    xs = items rng;
    ys = items rng;
    zs = items rng;
  }

let show_case c =
  Printf.sprintf "{fam_seed=%d; xs=%s; ys=%s; zs=%s}" c.fam_seed
    (Prop.show_list Prop.show_int c.xs)
    (Prop.show_list Prop.show_int c.ys)
    (Prop.show_list Prop.show_int c.zs)

let shrink_case c =
  let sl = Prop.shrink_list Prop.shrink_int in
  List.map (fun xs -> { c with xs }) (sl c.xs)
  @ List.map (fun ys -> { c with ys }) (sl c.ys)
  @ List.map (fun zs -> { c with zs }) (sl c.zs)

(* ------------------------------------------------------------------ *)
(* Generic suite over any bitmap-style sketch *)

module type BITMAP_SKETCH = sig
  type family
  type t

  val create : family -> t
  val add : t -> int -> bool
  val add_batch : t -> int array -> unit
  val merge_into : dst:t -> t -> unit
  val equal : t -> t -> bool
  val estimate : t -> float
end

let bitmap_suite (type f) name (module M : BITMAP_SKETCH with type family = f)
    (mk_family : seed:int -> f) =
  let of_items fam items =
    let s = M.create fam in
    List.iter (fun v -> ignore (M.add s v)) items;
    s
  in
  let merged fam a b =
    let dst = of_items fam a in
    M.merge_into ~dst (of_items fam b);
    dst
  in
  let prop pname p =
    Prop.test_case ~shrink:shrink_case ~show:show_case
      ~name:(Printf.sprintf "%s %s" name pname)
      case_gen p
  in
  [
    prop "merge commutative" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        M.equal (merged fam c.xs c.ys) (merged fam c.ys c.xs));
    prop "merge associative" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        let ab_c =
          let dst = merged fam c.xs c.ys in
          M.merge_into ~dst (of_items fam c.zs);
          dst
        in
        let a_bc =
          let dst = of_items fam c.xs in
          M.merge_into ~dst (merged fam c.ys c.zs);
          dst
        in
        M.equal ab_c a_bc);
    prop "merge idempotent" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        M.equal (merged fam c.xs c.xs) (of_items fam c.xs));
    prop "distributed = centralized" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        let whole = of_items fam (c.xs @ c.ys) in
        let m = merged fam c.xs c.ys in
        M.equal m whole && M.estimate m = M.estimate whole);
    prop "tree-merged = centralized (depth >= 2)" (fun c ->
        (* Hierarchical deployment: sites sketch their shards, each
           aggregator merges its children, the root merges the last
           hops.  The result must be the centralized sketch bit for bit
           — this is what licenses aggregators forwarding merged frames
           instead of raw site traffic.  [Topology.random] always has
           at least one aggregator, so every generated tree is depth
           >= 2; aggregator parents are strictly higher-numbered, so an
           ascending sweep merges children before parents. *)
        let module Topology = Wd_net.Topology in
        let fam = mk_family ~seed:c.fam_seed in
        let all = c.xs @ c.ys @ c.zs in
        let items = Array.of_list all in
        let k = 4 in
        let topo = Topology.random ~seed:c.fam_seed ~sites:k in
        let site_sk = Array.init k (fun _ -> M.create fam) in
        Array.iteri
          (fun j v -> ignore (M.add site_sk.((j + v) mod k) v))
          items;
        let agg_sk =
          Array.init (Topology.aggs topo) (fun _ -> M.create fam)
        in
        let root = M.create fam in
        let merge_to parent sk =
          match parent with
          | Topology.Root -> M.merge_into ~dst:root sk
          | Topology.Agg j -> M.merge_into ~dst:agg_sk.(j) sk
        in
        for i = 0 to k - 1 do
          merge_to (Topology.site_parent topo i) site_sk.(i)
        done;
        for j = 0 to Topology.aggs topo - 1 do
          merge_to (Topology.agg_parent topo j) agg_sk.(j)
        done;
        let whole = of_items fam all in
        Topology.depth topo >= 2
        && M.equal root whole
        && M.estimate root = M.estimate whole);
    prop "duplicate insensitive" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        M.equal (of_items fam (c.xs @ c.xs)) (of_items fam c.xs));
    prop "add_batch = fold add" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        let batched = M.create fam in
        M.add_batch batched (Array.of_list c.xs);
        let folded = of_items fam c.xs in
        M.equal batched folded && M.estimate batched = M.estimate folded);
    prop "add_batch = fold add across merges" (fun c ->
        let fam = mk_family ~seed:c.fam_seed in
        let a = M.create fam and b = M.create fam in
        M.add_batch a (Array.of_list c.xs);
        M.add_batch b (Array.of_list c.ys);
        M.merge_into ~dst:a b;
        M.add_batch a (Array.of_list c.zs);
        let folded = merged fam (c.xs @ c.zs) c.ys in
        M.equal a folded);
  ]

let fm_suite variant name =
  bitmap_suite name
    (module Fm : BITMAP_SKETCH with type family = Fm.family)
    (fun ~seed ->
      Fm.family_custom ~rng:(Rng.create seed) ~variant ~bitmaps:8)

(* The concentrated family and the Mle estimator mode run through the
   same generic suite: merge laws, distributed = centralized (including
   estimate equality — MLE merge-compatibility), duplicate insensitivity
   and batch = fold must hold for every family x estimator the eval grid
   exercises. *)
let fmc_suite est name =
  bitmap_suite name
    (module Fmc : BITMAP_SKETCH with type family = Fmc.family)
    (fun ~seed ->
      Fmc.with_estimator est
        (Fmc.family_custom ~rng:(Rng.create seed) ~buckets:8))

let fm_mle_suite =
  bitmap_suite "fm-stochastic-mle"
    (module Fm : BITMAP_SKETCH with type family = Fm.family)
    (fun ~seed ->
      Fm.with_estimator mle
        (Fm.family_custom ~rng:(Rng.create seed) ~variant:Fm.Stochastic
           ~bitmaps:8))

let bjkst_suite_with est name =
  bitmap_suite name
    (module Bjkst : BITMAP_SKETCH with type family = Bjkst.family)
    (fun ~seed ->
      Bjkst.with_estimator est (Bjkst.family_custom ~rng:(Rng.create seed) ~k:16))

let bjkst_suite = bjkst_suite_with Wd_sketch.Sketch_intf.Classic "bjkst"

let hll_suite_with est name =
  bitmap_suite name
    (module Hll : BITMAP_SKETCH with type family = Hll.family)
    (fun ~seed ->
      Hll.with_estimator est
        (Hll.family_custom ~rng:(Rng.create seed) ~registers:16))

let hll_suite = hll_suite_with Wd_sketch.Sketch_intf.Classic "hll"

(* ------------------------------------------------------------------ *)
(* Distinct sampler: algebra over (level, retained counts) *)

let sampler_family ~seed =
  Sampler.family ~rng:(Rng.create seed) ~threshold:16

let sampler_of fam items =
  let s = Sampler.create fam in
  List.iter (Sampler.add s) items;
  s

let sampler_state s =
  (Sampler.level s, List.sort compare (Sampler.contents s))

let sampler_merged fam a b =
  let dst = sampler_of fam a in
  Sampler.merge_into ~dst (sampler_of fam b);
  dst

let sampler_prop pname p =
  Prop.test_case ~shrink:shrink_case ~show:show_case
    ~name:(Printf.sprintf "sampler %s" pname)
    case_gen p

let sampler_suite =
  [
    sampler_prop "merge commutative" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        sampler_state (sampler_merged fam c.xs c.ys)
        = sampler_state (sampler_merged fam c.ys c.xs));
    sampler_prop "merge associative" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        let ab_c =
          let dst = sampler_merged fam c.xs c.ys in
          Sampler.merge_into ~dst (sampler_of fam c.zs);
          dst
        in
        let a_bc =
          let dst = sampler_of fam c.xs in
          Sampler.merge_into ~dst (sampler_merged fam c.ys c.zs);
          dst
        in
        sampler_state ab_c = sampler_state a_bc);
    sampler_prop "distributed = centralized" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        let m = sampler_merged fam c.xs c.ys in
        let whole = sampler_of fam (c.xs @ c.ys) in
        sampler_state m = sampler_state whole
        && Sampler.estimate_distinct m = Sampler.estimate_distinct whole);
    sampler_prop "tree-merged = centralized (depth >= 2)" (fun c ->
        (* Same hierarchical-merge law as the bitmap sketches, but with
           additive counts: each occurrence lands at exactly one site,
           so the root's retained (item, count) multiset must match one
           sampler over the whole stream. *)
        let module Topology = Wd_net.Topology in
        let fam = sampler_family ~seed:c.fam_seed in
        let all = c.xs @ c.ys @ c.zs in
        let items = Array.of_list all in
        let k = 4 in
        let topo = Topology.random ~seed:c.fam_seed ~sites:k in
        let site_sk = Array.init k (fun _ -> Sampler.create fam) in
        Array.iteri (fun j v -> Sampler.add site_sk.((j + v) mod k) v) items;
        let agg_sk =
          Array.init (Topology.aggs topo) (fun _ -> Sampler.create fam)
        in
        let root = Sampler.create fam in
        let merge_to parent sk =
          match parent with
          | Topology.Root -> Sampler.merge_into ~dst:root sk
          | Topology.Agg j -> Sampler.merge_into ~dst:agg_sk.(j) sk
        in
        for i = 0 to k - 1 do
          merge_to (Topology.site_parent topo i) site_sk.(i)
        done;
        for j = 0 to Topology.aggs topo - 1 do
          merge_to (Topology.agg_parent topo j) agg_sk.(j)
        done;
        let whole = sampler_of fam all in
        Topology.depth topo >= 2
        && sampler_state root = sampler_state whole
        && Sampler.estimate_distinct root = Sampler.estimate_distinct whole);
    sampler_prop "self-merge keeps support, doubles counts" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        let a = sampler_of fam c.xs in
        let doubled = sampler_merged fam c.xs c.xs in
        Sampler.level doubled = Sampler.level a
        && List.sort compare
             (List.map (fun (v, n) -> (v, 2 * n)) (Sampler.contents a))
           = List.sort compare (Sampler.contents doubled));
    sampler_prop "add_batch = fold add" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        let batched = Sampler.create fam in
        Sampler.add_batch batched (Array.of_list c.xs);
        sampler_state batched = sampler_state (sampler_of fam c.xs)
        && Sampler.estimate_distinct batched
           = Sampler.estimate_distinct (sampler_of fam c.xs));
    sampler_prop "add_batch = fold add across merges" (fun c ->
        let fam = sampler_family ~seed:c.fam_seed in
        let a = Sampler.create fam and b = Sampler.create fam in
        Sampler.add_batch a (Array.of_list c.xs);
        Sampler.add_batch b (Array.of_list c.ys);
        Sampler.merge_into ~dst:a b;
        Sampler.add_batch a (Array.of_list c.zs);
        let folded = sampler_merged fam (c.xs @ c.zs) c.ys in
        sampler_state a = sampler_state folded);
    sampler_prop "add_count ignores below-level items" (fun c ->
        (* Validates the absolute-count recovery refactor: replaying a
           count for an item the sampler has moved past never resurrects
           it. *)
        let fam = sampler_family ~seed:c.fam_seed in
        let s = sampler_of fam (c.xs @ c.ys) in
        let lvl = Sampler.level s in
        let before = sampler_state s in
        List.iter
          (fun v ->
            if Sampler.item_level s v < lvl then Sampler.add_count s v 3)
          c.zs;
        sampler_state s = before);
  ]

(* ------------------------------------------------------------------ *)
(* Trackers: observe_batch must be observationally identical to folding
   observe — same estimates, same byte ledger, same send counts — for
   every algorithm, or the batched simulator would not be a fast path but
   a different protocol. *)

module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Network = Wd_net.Network

let tracker_sites = 3

(* Derive a (site, item) stream from a case: sites spread by position and
   value so every site sees duplicates and cross-site overlap occurs. *)
let case_stream c =
  let items = Array.of_list (c.xs @ c.ys) in
  let sites = Array.mapi (fun j v -> (j + v) mod tracker_sites) items in
  (sites, items)

let net_sig net =
  (Network.total_bytes net, Network.bytes_up net, Network.bytes_down net)

let tracker_prop pname p =
  Prop.test_case ~shrink:shrink_case ~show:show_case
    ~name:(Printf.sprintf "tracker %s" pname)
    case_gen p

let tracker_suite =
  [
    tracker_prop "dc observe_batch = fold observe" (fun c ->
        let sites, items = case_stream c in
        let n = Array.length items in
        List.for_all
          (fun alg ->
            let make () =
              let fam =
                Fm.family_custom ~rng:(Rng.create c.fam_seed)
                  ~variant:Fm.Stochastic ~bitmaps:8
              in
              Wd_protocol.Dc_tracker.Fm.create ~algorithm:alg ~theta:0.1
                ~sites:tracker_sites ~family:fam ()
            in
            let folded = make () in
            Array.iteri
              (fun j v ->
                Wd_protocol.Dc_tracker.Fm.observe folded ~site:sites.(j) v)
              items;
            let batched = make () in
            Wd_protocol.Dc_tracker.Fm.observe_batch batched ~sites ~items
              ~pos:0 ~len:n;
            let module T = Wd_protocol.Dc_tracker.Fm in
            T.estimate folded = T.estimate batched
            && net_sig (T.network folded) = net_sig (T.network batched)
            && T.sends folded = T.sends batched
            && T.updates folded = T.updates batched)
          Dc.all_algorithms);
    tracker_prop "ds observe_batch = fold observe" (fun c ->
        let sites, items = case_stream c in
        let n = Array.length items in
        List.for_all
          (fun alg ->
            let make () =
              let fam =
                Sampler.family ~rng:(Rng.create c.fam_seed) ~threshold:16
              in
              Ds.create ~algorithm:alg ~theta:0.5 ~sites:tracker_sites
                ~family:fam ()
            in
            let folded = make () in
            Array.iteri
              (fun j v -> Ds.observe folded ~site:sites.(j) v)
              items;
            let batched = make () in
            Ds.observe_batch batched ~sites ~items ~pos:0 ~len:n;
            List.sort compare (Ds.sample folded)
            = List.sort compare (Ds.sample batched)
            && Ds.level folded = Ds.level batched
            && net_sig (Ds.network folded) = net_sig (Ds.network batched)
            && Ds.sends folded = Ds.sends batched
            && Ds.updates folded = Ds.updates batched)
          Ds.all_algorithms);
  ]

(* ------------------------------------------------------------------ *)
(* Tree topologies: the per-hop ledger laws.  On any random tree, under
   any mix of link loss and aggregator crashes, the bytes the root
   records as arriving must equal the sum of bytes delivered over the
   last-hop edges (no bytes appear from nowhere, none vanish after
   their final hop), and the whole-tree ledger must decompose into site
   links plus backbone.  A depth-1 explicit tree must be the flat star,
   bit for bit. *)

module Topology = Wd_net.Topology
module Faults = Wd_net.Faults

type tree_case = { base : case; topo_seed : int; fault_kind : int }

let tree_case_gen rng =
  {
    base = case_gen rng;
    topo_seed = Prop.int_range 0 10_000 rng;
    fault_kind = Prop.int_range 0 2 rng;
  }

let show_tree_case tc =
  Printf.sprintf "{topo_seed=%d; fault_kind=%d; base=%s}" tc.topo_seed
    tc.fault_kind (show_case tc.base)

let shrink_tree_case tc =
  List.map (fun base -> { tc with base }) (shrink_case tc.base)

(* Fault plans carry generator state, so every run builds a fresh one.
   Kind 0: clean; kind 1: lossy site links; kind 2: lossy links plus
   the first aggregator crashing over the middle of the run. *)
let tree_faults tc topo =
  match tc.fault_kind with
  | 0 -> Faults.none
  | kind -> (
    let spec =
      if kind = 1 then "drop=0.15"
      else
        Printf.sprintf "drop=0.1,crash=%d:10:60"
          (Topology.node_of_agg topo 0)
    in
    match Faults.of_spec ~seed:tc.topo_seed spec with
    | Ok p -> p
    | Error e -> failwith e)

let conservation_holds net topo =
  Network.root_bytes_in net
  = List.fold_left
      (fun acc node -> acc + Network.edge_delivered_up net ~node)
      0
      (Topology.last_hop_nodes topo)
  && Network.grand_total_bytes net
     = Network.total_bytes net + Network.backbone_bytes net

(* Each run helper returns (estimate, sends, net) so the flat-identity
   property can compare protocol output alongside the ledger. *)
let dc_tree_run ?topology ?faults c =
  let module T = Wd_protocol.Dc_tracker.Fm in
  let sites, items = case_stream c in
  let fam =
    Fm.family_custom ~rng:(Rng.create c.fam_seed) ~variant:Fm.Stochastic
      ~bitmaps:8
  in
  let t =
    T.create ~algorithm:Dc.LS ~theta:0.1 ~sites:tracker_sites ~family:fam ()
  in
  let net = T.network t in
  Network.set_debug_checks net true;
  Option.iter (Network.set_topology net) topology;
  Option.iter (Network.set_faults net) faults;
  Array.iteri (fun j v -> T.observe t ~site:sites.(j) v) items;
  (T.estimate t, T.sends t, net)

let ds_tree_run ?topology ?faults c =
  let sites, items = case_stream c in
  let fam = Sampler.family ~rng:(Rng.create c.fam_seed) ~threshold:16 in
  let t =
    Ds.create ~algorithm:Ds.GCS ~theta:0.5 ~sites:tracker_sites ~family:fam ()
  in
  let net = Ds.network t in
  Network.set_debug_checks net true;
  Option.iter (Network.set_topology net) topology;
  Option.iter (Network.set_faults net) faults;
  Array.iteri (fun j v -> Ds.observe t ~site:sites.(j) v) items;
  (Ds.estimate_distinct t, Ds.sends t, net)

let hh_tree_run ?topology ?faults c =
  let module Hh = Wd_aggregate.Distinct_hh.Tracked in
  let sites, items = case_stream c in
  let fam =
    Wd_aggregate.Fm_array.family
      ~rng:(Rng.create c.fam_seed)
      { Wd_aggregate.Fm_array.rows = 2; cols = 8; bitmaps = 6 }
  in
  let t =
    Hh.create ~algorithm:Dc.LS ~theta:0.3 ~sites:tracker_sites ~family:fam ()
  in
  let net = Hh.network t in
  Network.set_debug_checks net true;
  Option.iter (Network.set_topology net) topology;
  Option.iter (Network.set_faults net) faults;
  Array.iteri (fun j v -> Hh.observe t ~site:sites.(j) ~v ~w:1) items;
  (Hh.estimate t 0, Hh.sends t, net)

let topo_prop pname p =
  Prop.test_case ~shrink:shrink_tree_case ~show:show_tree_case
    ~name:(Printf.sprintf "topology %s" pname)
    tree_case_gen p

type tree_run =
  ?topology:Topology.t -> ?faults:Faults.plan -> case -> float * int * Network.t

let conservation_prop name (run : tree_run) =
  topo_prop
    (Printf.sprintf "%s per-hop conservation under faults" name)
    (fun tc ->
      let topo = Topology.random ~seed:tc.topo_seed ~sites:tracker_sites in
      let _, _, net =
        run ~topology:topo ~faults:(tree_faults tc topo) tc.base
      in
      Topology.depth topo >= 2 && conservation_holds net topo)

let flat_identity_prop name (run : tree_run) =
  topo_prop
    (Printf.sprintf "%s flat star = depth-1 tree bit-identically" name)
    (fun tc ->
      let spec =
        "edges:"
        ^ String.concat ","
            (List.init tracker_sites (Printf.sprintf "s%d>root"))
      in
      match Topology.of_spec ~sites:tracker_sites spec with
      | Error e -> failwith e
      | Ok depth1 ->
        Topology.is_flat depth1
        && Topology.depth depth1 = 1
        && Topology.equal depth1 (Topology.flat ~sites:tracker_sites)
        &&
        let e0, s0, net0 = run tc.base in
        let e1, s1, net1 = run ~topology:depth1 tc.base in
        e0 = e1 && s0 = s1
        && net_sig net0 = net_sig net1
        && Network.backbone_bytes net1 = 0
        && Network.grand_total_bytes net1 = Network.total_bytes net1)

let topology_suite =
  [
    topo_prop "random trees round-trip through spec" (fun tc ->
        let topo = Topology.random ~seed:tc.topo_seed ~sites:tracker_sites in
        match Topology.of_spec ~sites:tracker_sites (Topology.to_spec topo) with
        | Ok t -> Topology.equal t topo
        | Error e -> failwith e);
    conservation_prop "dc" dc_tree_run;
    conservation_prop "ds" ds_tree_run;
    conservation_prop "hh" hh_tree_run;
    flat_identity_prop "dc" dc_tree_run;
    flat_identity_prop "ds" ds_tree_run;
    flat_identity_prop "hh" hh_tree_run;
  ]

let () =
  Alcotest.run "properties"
    [
      ("fm-stochastic", fm_suite Fm.Stochastic "fm-stochastic");
      ("fm-averaged", fm_suite Fm.Averaged "fm-averaged");
      ("fm-stochastic-mle", fm_mle_suite);
      ("fmc", fmc_suite Wd_sketch.Sketch_intf.Classic "fmc");
      ("fmc-mle", fmc_suite mle "fmc-mle");
      ("bjkst", bjkst_suite);
      ("bjkst-mle", bjkst_suite_with mle "bjkst-mle");
      ("hll", hll_suite);
      ("hll-mle", hll_suite_with mle "hll-mle");
      ("sampler", sampler_suite);
      ("tracker", tracker_suite);
      ("topology", topology_suite);
    ]
