(* Tests for the observability layer: JSON codec, JSONL traces, sinks,
   metrics, and trace summarization — including the acceptance criterion
   that trace byte sums reproduce the network ledger exactly. *)

module Json = Wd_obs.Json
module Event = Wd_obs.Event
module Trace = Wd_obs.Trace
module Sink = Wd_obs.Sink
module Metrics = Wd_obs.Metrics
module Summary = Wd_obs.Summary
module Sim = Whats_different.Simulation
module Query = Wd_view.Query
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Network = Wd_net.Network
module Stream_gen = Wd_workload.Stream_gen

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let json_roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("i", Json.Int (-42));
        ("big", Json.Int max_int);
        ("x", Json.Float 1.5);
        ("s", Json.Str "a \"quoted\"\nline\twith \\ specials");
        ("l", Json.List [ Json.Int 1; Json.Str "two"; Json.Null ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip equal" true (json_roundtrip v = v)

let test_json_numbers () =
  Alcotest.(check bool) "int stays int" true
    (Json.of_string "7" = Ok (Json.Int 7));
  Alcotest.(check bool) "decimal parses as float" true
    (Json.of_string "7.5" = Ok (Json.Float 7.5));
  Alcotest.(check bool) "exponent parses as float" true
    (Json.of_string "1e3" = Ok (Json.Float 1000.0));
  (* Floats must round-trip bit for bit, including ugly ones. *)
  List.iter
    (fun f ->
      match Json.to_float (json_roundtrip (Json.Float f)) with
      | Some f' -> Alcotest.(check (float 0.0)) (Printf.sprintf "%h" f) f f'
      | None -> Alcotest.fail "float decoded as non-number")
    [ 0.1; 1.0 /. 3.0; 1e-300; 96.00000000001; Float.max_float ];
  Alcotest.(check string) "nan renders null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_json_unicode_escape () =
  match Json.of_string "\"a\\u00e9 b\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf-8 decoded" "a\xc3\xa9 b" s
  | _ -> Alcotest.fail "unicode escape did not parse"

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_accessors () =
  let v = Json.Obj [ ("a", Json.Int 3); ("b", Json.Float 2.5) ] in
  Alcotest.(check (option int)) "member int" (Some 3)
    (Option.bind (Json.member "a" v) Json.to_int);
  Alcotest.(check bool) "int widens to float" true
    (Option.bind (Json.member "a" v) Json.to_float = Some 3.0);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (Json.member "z" v) Json.to_int);
  Alcotest.(check (option int)) "integral float narrows" (Some 4)
    (Json.to_int (Json.Float 4.0));
  Alcotest.(check (option int)) "fractional float does not" None
    (Json.to_int (Json.Float 4.5))

(* ------------------------------------------------------------------ *)
(* Trace codec *)

let sample_events =
  [
    {
      Event.time = 0;
      kind =
        Event.Run_meta
          {
            run_id = "dc-LS-seed7";
            protocol = "dc";
            algorithm = "LS";
            sites = 4;
            cost_model = "unicast";
          };
    };
    {
      Event.time = 3;
      kind = Event.Message { dir = Event.Up; site = 2; payload = 8; bytes = 12 };
    };
    {
      Event.time = 5;
      kind =
        Event.Message { dir = Event.Down; site = 0; payload = 4; bytes = 8 };
    };
    {
      Event.time = 9;
      kind =
        Event.Broadcast
          { except = Some 1; payload = 6; bytes = 30; messages = 3; recipients = 3 };
    };
    {
      Event.time = 9;
      kind =
        Event.Broadcast
          { except = None; payload = 6; bytes = 10; messages = 1; recipients = 4 };
    };
    {
      Event.time = 11;
      kind = Event.Sketch_sent { site = 1; bytes = 84; items = Some 10 };
    };
    {
      Event.time = 12;
      kind = Event.Sketch_sent { site = 3; bytes = 84; items = None };
    };
    {
      Event.time = 13;
      kind = Event.Count_sent { site = 0; item = 99; count = 12; delta = 3 };
    };
    {
      Event.time = 14;
      kind =
        Event.Threshold_crossed { site = 2; estimate = 96.5; threshold = 93.0 };
    };
    {
      Event.time = 14;
      kind = Event.Estimate_update { previous = 90.0; estimate = 96.5 };
    };
    { Event.time = 15; kind = Event.Level_advance { previous = 2; level = 3 } };
    { Event.time = 16; kind = Event.Resync { site = 2; bytes = 84 } };
    {
      Event.time = 17;
      kind =
        Event.Drop
          { dir = Event.Up; site = 1; bytes = 12; loss = Event.Link_drop };
    };
    {
      Event.time = 17;
      kind =
        Event.Drop
          { dir = Event.Down; site = 0; bytes = 0; loss = Event.Crash_drop };
    };
    {
      Event.time = 18;
      kind =
        Event.Drop
          { dir = Event.Up; site = 2; bytes = 9; loss = Event.Corrupt_drop };
    };
    {
      Event.time = 19;
      kind = Event.Duplicate { dir = Event.Down; site = 3; bytes = 8; copies = 2 };
    };
    {
      Event.time = 20;
      kind = Event.Retry { dir = Event.Up; site = 1; attempt = 2; bytes = 12 };
    };
    { Event.time = 21; kind = Event.Crash { site = 1 } };
    { Event.time = 22; kind = Event.Recover { site = 1; resync_bytes = 88 } };
  ]

let test_trace_roundtrip_all_kinds () =
  List.iter
    (fun ev ->
      match Trace.decode_line (Trace.encode_line ev) with
      | Ok ev' ->
        Alcotest.(check bool)
          (Event.kind_name ev.Event.kind ^ " roundtrips")
          true (ev = ev')
      | Error e ->
        Alcotest.failf "%s: %s" (Event.kind_name ev.Event.kind) e)
    sample_events

let test_trace_decode_errors () =
  List.iter
    (fun line ->
      match Trace.decode_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not decode" line)
    [
      "{}";
      {|{"t":1}|};
      {|{"t":1,"ev":"warp_drive"}|};
      {|{"t":1,"ev":"message","dir":"up","site":0,"payload":1}|};
      {|{"t":1,"ev":"message","dir":"sideways","site":0,"payload":1,"bytes":5}|};
      {|{"t":1,"ev":"drop","dir":"up","site":0,"bytes":5,"loss":"gremlins"}|};
      {|{"t":1,"ev":"drop","dir":"up","site":0,"bytes":5}|};
      {|{"t":1,"ev":"duplicate","dir":"up","site":0,"bytes":5}|};
      {|{"t":1,"ev":"retry","dir":"down","site":0,"attempt":1}|};
      {|{"t":1,"ev":"crash"}|};
      {|{"t":1,"ev":"recover","site":2}|};
      "[1,2]";
      "not json";
    ]

let test_trace_tolerates_extra_fields () =
  match
    Trace.decode_line
      {|{"t":4,"ev":"resync","site":1,"bytes":9,"note":"future field"}|}
  with
  | Ok { Event.time = 4; kind = Event.Resync { site = 1; bytes = 9 } } -> ()
  | Ok _ -> Alcotest.fail "decoded to the wrong event"
  | Error e -> Alcotest.failf "extra field rejected: %s" e

let prop_trace_roundtrip =
  let gen_kind =
    QCheck.Gen.(
      oneof
        [
          map3
            (fun site payload up ->
              Event.Message
                {
                  dir = (if up then Event.Up else Event.Down);
                  site;
                  payload;
                  bytes = payload + 4;
                })
            (int_bound 31) (int_bound 1000) bool;
          map3
            (fun except payload recipients ->
              Event.Broadcast
                {
                  except = (if except > 3 then None else Some except);
                  payload;
                  bytes = payload * max 1 recipients;
                  messages = max 1 recipients;
                  recipients = max 1 recipients;
                })
            (int_bound 7) (int_bound 1000) (int_bound 8);
          map3
            (fun site bytes items ->
              Event.Sketch_sent
                { site; bytes; items = (if items = 0 then None else Some items) })
            (int_bound 31) (int_bound 4096) (int_bound 40);
          map3
            (fun site est thr ->
              Event.Threshold_crossed
                { site; estimate = est; threshold = thr })
            (int_bound 31) (float_bound_inclusive 1e6)
            (float_bound_inclusive 1e6);
          map2
            (fun a b -> Event.Estimate_update { previous = a; estimate = b })
            (float_bound_inclusive 1e9) (float_bound_inclusive 1e9);
          map2
            (fun site bytes -> Event.Resync { site; bytes })
            (int_bound 31) (int_bound 4096);
          map3
            (fun site bytes pick ->
              Event.Drop
                {
                  dir = (if pick mod 2 = 0 then Event.Up else Event.Down);
                  site;
                  bytes;
                  loss =
                    (match pick mod 3 with
                    | 0 -> Event.Link_drop
                    | 1 -> Event.Corrupt_drop
                    | _ -> Event.Crash_drop);
                })
            (int_bound 31) (int_bound 4096) (int_bound 5);
          map3
            (fun site bytes copies ->
              Event.Duplicate
                { dir = Event.Down; site; bytes; copies = 2 + copies })
            (int_bound 31) (int_bound 4096) (int_bound 3);
          map3
            (fun site attempt bytes ->
              Event.Retry { dir = Event.Up; site; attempt = 1 + attempt; bytes })
            (int_bound 31) (int_bound 9) (int_bound 4096);
          map (fun site -> Event.Crash { site }) (int_bound 31);
          map2
            (fun site resync_bytes -> Event.Recover { site; resync_bytes })
            (int_bound 31) (int_bound 4096);
        ])
  in
  let gen =
    QCheck.Gen.(
      map2 (fun time kind -> { Event.time; kind }) (int_bound 1_000_000) gen_kind)
  in
  QCheck.Test.make ~name:"random events roundtrip through JSONL"
    (QCheck.make ~print:Trace.encode_line gen)
    (fun ev ->
      match Trace.decode_line (Trace.encode_line ev) with
      | Ok ev' -> ev = ev'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Sinks *)

let test_null_sink_disabled () =
  Alcotest.(check bool) "null disabled" false (Sink.enabled Sink.null);
  Alcotest.(check bool) "fanout of null disabled" false
    (Sink.enabled (Sink.fanout [ Sink.null; Sink.null ]));
  Alcotest.(check bool) "empty fanout disabled" false
    (Sink.enabled (Sink.fanout []));
  Alcotest.(check bool) "fanout with a live sink enabled" true
    (Sink.enabled (Sink.fanout [ Sink.null; Sink.ring ~capacity:2 ]))

let test_ring_keeps_most_recent () =
  let ring = Sink.ring ~capacity:3 in
  Alcotest.(check bool) "empty ring" true (Sink.ring_contents ring = []);
  List.iteri
    (fun i ev -> Sink.emit ring { ev with Event.time = i })
    [ List.nth sample_events 1; List.nth sample_events 2;
      List.nth sample_events 5; List.nth sample_events 8;
      List.nth sample_events 11 ];
  let times = List.map (fun e -> e.Event.time) (Sink.ring_contents ring) in
  Alcotest.(check (list int)) "last 3, oldest first" [ 2; 3; 4 ] times;
  Alcotest.check_raises "non-ring rejected"
    (Invalid_argument "Sink.ring_contents: not a ring sink") (fun () ->
      ignore (Sink.ring_contents Sink.null))

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "wd_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Sink.jsonl ~buffer_bytes:32 path in
      List.iter (Sink.emit sink) sample_events;
      Sink.close sink;
      Sink.close sink (* idempotent *);
      match Trace.read_file path with
      | Ok evs ->
        Alcotest.(check bool) "file reproduces emitted events" true
          (evs = sample_events)
      | Error e -> Alcotest.failf "read_file: %s" e)

let test_fold_file_and_blank_lines () =
  let path = Filename.temp_file "wd_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Trace.encode_line (List.hd sample_events));
      output_string oc "\n\n";
      output_string oc (Trace.encode_line (List.nth sample_events 1));
      output_string oc "\n";
      close_out oc;
      (match Trace.fold_file ~f:(fun n _ -> n + 1) ~init:0 path with
      | Ok n -> Alcotest.(check int) "blank line skipped" 2 n
      | Error e -> Alcotest.failf "fold_file: %s" e);
      let oc = open_out path in
      output_string oc "{\"t\":0,\"ev\":\"run_meta\"}\n";
      close_out oc;
      match Trace.read_file path with
      | Error e ->
        Alcotest.(check bool) "error names the line" true
          (contains_substring ~needle:"1" e)
      | Ok _ -> Alcotest.fail "truncated event should not decode")

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"a counter" "wd_test_total" in
  Metrics.inc c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check bool) "interned" true
    (Metrics.counter_value (Metrics.counter m "wd_test_total") = 5);
  let g = Metrics.gauge m "wd_test_gauge" ~labels:[ ("site", "0") ] in
  Metrics.set g 2.5;
  Metrics.set g 1.5;
  Alcotest.(check (float 0.0)) "gauge takes last" 1.5 (Metrics.gauge_value g);
  Alcotest.check_raises "type mismatch"
    (Invalid_argument
       "Metrics: wd_test_total registered twice with different types")
    (fun () -> ignore (Metrics.gauge m "wd_test_total"))

let test_metrics_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~min_exp:0 ~max_exp:3 "wd_test_hist" in
  List.iter (fun x -> Metrics.observe h x) [ 0.5; 1.0; 3.0; 9.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 113.5 (Metrics.histogram_sum h);
  (* Bounds 1,2,4,8,+inf.  Assignment is the half-open [2^k, 2^(k+1))
     convention, so an observation of exactly 1.0 falls in the bucket
     bounded by 2, not the one bounded by 1; cumulative le counts. *)
  let buckets = Metrics.histogram_buckets h in
  Alcotest.(check (list (pair (float 0.0) int)))
    "cumulative buckets"
    [ (1.0, 1); (2.0, 2); (4.0, 3); (8.0, 3); (Float.infinity, 5) ]
    buckets

(* Pin the [2^k, 2^(k+1)) convention at the boundaries themselves: an
   exact power of two opens its own bucket rather than closing the one
   below (the off-by-one this guards against put 2^k in the [le = 2^k]
   bucket). *)
let test_metrics_histogram_power_of_two_edges () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~min_exp:0 ~max_exp:6 "wd_test_edges" in
  (* k = 4: probe below, at, and above the 2^k boundary, plus the two
     smallest powers. *)
  List.iter (fun x -> Metrics.observe h x) [ 1.0; 2.0; 15.0; 16.0; 17.0 ];
  (* Bounds 1,2,4,8,16,32,64,+inf; counts per bucket (not cumulative):
     1.0 -> (1,2]-bucket? no: [1,2) -> le=2; 2.0 -> [2,4) -> le=4;
     15.0 -> [8,16) -> le=16; 16.0, 17.0 -> [16,32) -> le=32. *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "power-of-two edges"
    [
      (1.0, 0);
      (2.0, 1);
      (4.0, 2);
      (8.0, 2);
      (16.0, 3);
      (32.0, 5);
      (64.0, 5);
      (Float.infinity, 5);
    ]
    (Metrics.histogram_buckets h)

let test_metrics_prometheus_text () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"bytes by dir" "wd_bytes_total"
      ~labels:[ ("dir", "up") ] in
  Metrics.add c 12;
  let h = Metrics.histogram m ~min_exp:0 ~max_exp:1 "wd_sizes" in
  Metrics.observe h 1.5;
  let text = Metrics.to_prometheus m in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "exposition contains %S" needle)
        true
        (contains_substring ~needle text))
    [
      "# HELP wd_bytes_total bytes by dir";
      "# TYPE wd_bytes_total counter";
      "wd_bytes_total{dir=\"up\"} 12";
      "# TYPE wd_sizes histogram";
      "wd_sizes_bucket{le=\"+Inf\"} 1";
      "wd_sizes_sum 1.5";
      "wd_sizes_count 1";
    ]

let test_metrics_json_parses () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "wd_a_total") 3;
  Metrics.set (Metrics.gauge m "wd_b") 0.5;
  Metrics.observe (Metrics.histogram m "wd_c") 2.0;
  let j = Metrics.to_json m in
  match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "dump reparses to itself" true (j = j')
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e

(* ------------------------------------------------------------------ *)
(* End-to-end: traces and metrics against real protocol runs *)

let stream = Stream_gen.zipf ~sites:4 ~events:20_000 ~universe:5_000 ()

let trace_byte_sums events =
  List.fold_left
    (fun (up, down) (ev : Event.t) ->
      match ev.Event.kind with
      | Event.Message { dir = Event.Up; bytes; _ } -> (up + bytes, down)
      | Event.Message { dir = Event.Down; bytes; _ } -> (up, down + bytes)
      | Event.Broadcast { bytes; _ } -> (up, down + bytes)
      | _ -> (up, down))
    (0, 0) events

let test_dc_trace_matches_ledger () =
  List.iter
    (fun (cost_model, algorithm) ->
      let ring = Sink.ring ~capacity:100_000 in
      let r =
        Sim.run ~cost_model ~sink:ring
          (Query.dc ~theta:0.05 ~alpha:0.05 algorithm)
          stream
      in
      let up, down = trace_byte_sums (Sink.ring_contents ring) in
      Alcotest.(check int) "trace bytes up = ledger" r.Sim.bytes_up up;
      Alcotest.(check int) "trace bytes down = ledger" r.Sim.bytes_down down)
    [
      (Network.Unicast, Dc.LS);
      (Network.Unicast, Dc.NS);
      (Network.Radio_broadcast, Dc.SS);
      (Network.Unicast, Dc.EC);
    ]

let test_ds_trace_matches_ledger () =
  List.iter
    (fun algorithm ->
      let ring = Sink.ring ~capacity:100_000 in
      let r =
        Sim.run ~sink:ring (Query.ds ~theta:0.3 ~threshold:64 algorithm) stream
      in
      let up, down = trace_byte_sums (Sink.ring_contents ring) in
      Alcotest.(check int) "trace bytes up = ledger" r.Sim.bytes_up up;
      Alcotest.(check int) "trace bytes down = ledger" r.Sim.bytes_down down)
    [ Ds.LCO; Ds.GCS; Ds.LCS ]

let test_metrics_sink_matches_ledger () =
  let m = Metrics.create () in
  let r =
    Sim.run ~sink:(Sink.metrics m) ~metrics:m
      (Query.dc ~theta:0.05 ~alpha:0.05 Dc.LS)
      stream
  in
  let counter_value name labels =
    Metrics.counter_value (Metrics.counter m name ~labels)
  in
  Alcotest.(check int) "wd_bytes_total{up}" r.Sim.bytes_up
    (counter_value "wd_bytes_total" [ ("dir", "up") ]);
  Alcotest.(check int) "wd_bytes_total{down}" r.Sim.bytes_down
    (counter_value "wd_bytes_total" [ ("dir", "down") ]);
  let site_up_sum = ref 0 in
  for s = 0 to 3 do
    site_up_sum :=
      !site_up_sum
      + counter_value "wd_site_bytes_total"
          [ ("dir", "up"); ("site", string_of_int s) ]
  done;
  Alcotest.(check int) "per-site byte counters sum to the ledger"
    r.Sim.bytes_up !site_up_sum;
  Alcotest.(check bool) "accuracy histogram was fed" true
    (Metrics.histogram_count (Metrics.histogram m "wd_estimate_rel_error") > 0)

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_summary_of_crafted_events () =
  let s = Summary.of_events sample_events in
  Alcotest.(check int) "events" (List.length sample_events) s.Summary.events;
  Alcotest.(check int) "updates = max time" 22 s.Summary.updates;
  (* one delivered up message + two lost-but-charged up transmissions *)
  Alcotest.(check int) "msgs up" 3 s.Summary.msgs_up;
  Alcotest.(check int) "bytes up" 33 s.Summary.bytes_up;
  (* one unicast down (8) + unicast-model broadcast (30) + radio broadcast
     (10) + duplicate extra copies (8); the bytes-0 crash drop is free *)
  Alcotest.(check int) "bytes down" 56 s.Summary.bytes_down;
  Alcotest.(check int) "radio broadcast on the medium" 10
    s.Summary.medium_bytes;
  Alcotest.(check int) "broadcasts" 2 s.Summary.broadcasts;
  Alcotest.(check int) "level" 3 s.Summary.level;
  Alcotest.(check bool) "last estimate" true
    (s.Summary.last_estimate = Some 96.5);
  Alcotest.(check (list string)) "run metadata captured"
    [ "dc-LS-seed7"; "dc"; "LS"; "4"; "unicast" ]
    (List.map snd s.Summary.run);
  Alcotest.(check int) "drops" 3 s.Summary.drops;
  Alcotest.(check int) "dropped bytes" 21 s.Summary.dropped_bytes;
  Alcotest.(check int) "duplicate copies" 2 s.Summary.duplicates;
  Alcotest.(check int) "duplicate bytes" 8 s.Summary.duplicate_bytes;
  Alcotest.(check int) "retries" 1 s.Summary.retries;
  Alcotest.(check int) "crashes" 1 s.Summary.crashes;
  Alcotest.(check int) "recovers" 1 s.Summary.recovers;
  Alcotest.(check (list int)) "crash matched by recover" []
    s.Summary.degraded_sites;
  let site2 = List.find (fun r -> r.Summary.site = 2) s.Summary.sites in
  Alcotest.(check int) "site 2 up msgs incl. charged drop" 2
    site2.Summary.s_msgs_up;
  let site1f = List.find (fun r -> r.Summary.site = 1) s.Summary.sites in
  Alcotest.(check int) "site 1 drops" 1 site1f.Summary.s_drops;
  Alcotest.(check int) "site 1 retries" 1 site1f.Summary.s_retries;
  Alcotest.(check int) "site 1 crashes" 1 site1f.Summary.s_crashes;
  Alcotest.(check int) "site 1 recovers" 1 site1f.Summary.s_recovers;
  let site3 = List.find (fun r -> r.Summary.site = 3) s.Summary.sites in
  Alcotest.(check int) "site 3 duplicate copies" 2 site3.Summary.s_duplicates;
  Alcotest.(check int) "site 2 crossings" 1 site2.Summary.s_crossings;
  Alcotest.(check int) "site 2 resyncs" 1 site2.Summary.s_resyncs;
  (* The unicast-model broadcast (30 bytes over 3 recipients, except site
     1) adds 10 to sites 0, 2, 3; the radio one adds nothing per site. *)
  let site1 = List.find (fun r -> r.Summary.site = 1) s.Summary.sites in
  Alcotest.(check int) "excluded site skips broadcast share" 0
    site1.Summary.s_bytes_down;
  let site0 = List.find (fun r -> r.Summary.site = 0) s.Summary.sites in
  Alcotest.(check int) "site 0 down = unicast + share" 18
    site0.Summary.s_bytes_down

let test_summary_phases () =
  let rows = Summary.phases ~n:4 sample_events in
  Alcotest.(check int) "four phases" 4 (List.length rows);
  let total_events =
    List.fold_left (fun acc r -> acc + r.Summary.p_events) 0 rows
  in
  Alcotest.(check int) "every event lands in exactly one phase"
    (List.length sample_events) total_events;
  List.iter
    (fun r ->
      Alcotest.(check bool) "span well-formed" true
        (r.Summary.p_from <= r.Summary.p_to))
    rows;
  Alcotest.(check int) "spans start at update 1" 1
    (List.hd rows).Summary.p_from;
  Alcotest.(check bool) "empty trace yields no phases" true
    (Summary.phases ~n:3 [] = [])

let test_summary_send_gap () =
  let send t site =
    { Event.time = t; kind = Event.Sketch_sent { site; bytes = 8; items = None } }
  in
  let s = Summary.of_events [ send 10 0; send 30 0; send 50 0; send 5 1 ] in
  let site0 = List.find (fun r -> r.Summary.site = 0) s.Summary.sites in
  Alcotest.(check (float 1e-9)) "mean gap" 20.0 site0.Summary.s_mean_send_gap;
  let site1 = List.find (fun r -> r.Summary.site = 1) s.Summary.sites in
  Alcotest.(check bool) "single send has no gap" true
    (Float.is_nan site1.Summary.s_mean_send_gap)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "all kinds roundtrip" `Quick
            test_trace_roundtrip_all_kinds;
          Alcotest.test_case "decode errors" `Quick test_trace_decode_errors;
          Alcotest.test_case "extra fields tolerated" `Quick
            test_trace_tolerates_extra_fields;
          QCheck_alcotest.to_alcotest prop_trace_roundtrip;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "null disabled" `Quick test_null_sink_disabled;
          Alcotest.test_case "ring retention" `Quick
            test_ring_keeps_most_recent;
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_sink_roundtrip;
          Alcotest.test_case "fold_file" `Quick test_fold_file_and_blank_lines;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_metrics_basics;
          Alcotest.test_case "histogram buckets" `Quick
            test_metrics_histogram_buckets;
          Alcotest.test_case "power-of-two bucket edges" `Quick
            test_metrics_histogram_power_of_two_edges;
          Alcotest.test_case "prometheus text" `Quick
            test_metrics_prometheus_text;
          Alcotest.test_case "json dump" `Quick test_metrics_json_parses;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "dc trace = ledger" `Quick
            test_dc_trace_matches_ledger;
          Alcotest.test_case "ds trace = ledger" `Quick
            test_ds_trace_matches_ledger;
          Alcotest.test_case "metrics sink = ledger" `Quick
            test_metrics_sink_matches_ledger;
        ] );
      ( "summary",
        [
          Alcotest.test_case "crafted events" `Quick
            test_summary_of_crafted_events;
          Alcotest.test_case "phases" `Quick test_summary_phases;
          Alcotest.test_case "send gaps" `Quick test_summary_send_gap;
        ] );
    ]
