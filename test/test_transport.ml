(* The transport layer: Wire.Frame codec, the simulator/socket backend
   equivalence (fixed seed => identical estimates, message counts and
   byte ledgers), the ledger-vs-wire byte reconciliation, crash windows
   as real disconnections, and version-mismatch handshake rejection. *)

module Wire = Wd_net.Wire
module Frame = Wd_net.Wire.Frame
module Network = Wd_net.Network
module Faults = Wd_net.Faults
module Transport = Wd_net.Transport
module Socket = Wd_net.Transport_socket
module Tcp = Wd_net.Transport_tcp
module Frame_io = Wd_net.Frame_io
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Simulation = Whats_different.Simulation
module Query = Wd_view.Query
module Stream_gen = Wd_workload.Stream_gen
module Http = Wd_workload.Http_trace
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event

(* --- Frame codec --- *)

let encode ~kind ~site ~length =
  let b = Bytes.create Frame.header_bytes in
  Frame.encode_header b ~pos:0 ~kind ~site ~length;
  b

let all_kinds =
  Frame.
    [ Hello; Welcome; Deliver; Request_up; Up; Finish; Stats; Reject ]

let test_header_roundtrip () =
  List.iteri
    (fun i kind ->
      let b = encode ~kind ~site:(3 * i) ~length:(17 * i) in
      match Frame.decode_header b ~pos:0 with
      | Ok h ->
        Alcotest.(check bool) "kind" true (h.Frame.kind = kind);
        Alcotest.(check int) "site" (3 * i) h.Frame.site;
        Alcotest.(check int) "length" (17 * i) h.Frame.length
      | Error e -> Alcotest.failf "decode failed: %s" (Frame.error_to_string e))
    all_kinds;
  Alcotest.(check int)
    "bytes = header + payload"
    (Frame.header_bytes + 41)
    (Frame.bytes ~payload:41)

let expect_error name b pos pred =
  match Frame.decode_header b ~pos with
  | Ok _ -> Alcotest.failf "%s: decode should fail" name
  | Error e ->
    if not (pred e) then
      Alcotest.failf "%s: wrong error %s" name (Frame.error_to_string e)

let test_header_rejects () =
  let good = encode ~kind:Frame.Deliver ~site:1 ~length:8 in
  let bad = Bytes.copy good in
  Bytes.set bad 0 'X';
  expect_error "magic" bad 0 (function Frame.Bad_magic _ -> true | _ -> false);
  let bad = Bytes.copy good in
  Bytes.set_uint8 bad 2 (Frame.version + 1);
  expect_error "version" bad 0 (function
    | Frame.Version_mismatch { expected; got } ->
      expected = Frame.version && got = Frame.version + 1
    | _ -> false);
  let bad = Bytes.copy good in
  Bytes.set_uint8 bad 3 0;
  expect_error "kind zero" bad 0 (function
    | Frame.Bad_kind 0 -> true
    | _ -> false);
  let bad = Bytes.copy good in
  Bytes.set_uint8 bad 3 200;
  expect_error "kind out of range" bad 0 (function
    | Frame.Bad_kind 200 -> true
    | _ -> false);
  let bad = Bytes.copy good in
  Bytes.set_int32_le bad 8 (-1l);
  expect_error "negative length" bad 0 (function
    | Frame.Bad_length _ -> true
    | _ -> false);
  let bad = Bytes.copy good in
  Bytes.set_int32_le bad 8 (Int32.of_int (Frame.max_payload + 1));
  expect_error "oversized length" bad 0 (function
    | Frame.Bad_length _ -> true
    | _ -> false);
  expect_error "truncated" (Bytes.sub good 0 6) 0 (function
    | Frame.Truncated { wanted; got } ->
      wanted = Frame.header_bytes && got = 6
    | _ -> false)

(* A version-1 frame (no span support) must still decode: the header
   layout is unchanged, only the span flag was added in version 2. *)
let test_legacy_v1_decodes () =
  let b = encode ~kind:Frame.Up ~site:7 ~length:32 in
  Bytes.set_uint8 b 2 Frame.legacy_version;
  (match Frame.decode_header b ~pos:0 with
  | Ok h ->
    Alcotest.(check bool) "kind" true (h.Frame.kind = Frame.Up);
    Alcotest.(check int) "site" 7 h.Frame.site;
    Alcotest.(check int) "length" 32 h.Frame.length;
    Alcotest.(check bool) "v1 never has a span" false h.Frame.has_span
  | Error e -> Alcotest.failf "v1 decode failed: %s" (Frame.error_to_string e));
  (* On a v1 frame the span flag is not a flag, just an unknown kind. *)
  let b = encode ~kind:Frame.Up ~site:7 ~length:32 in
  Bytes.set_uint8 b 2 Frame.legacy_version;
  Bytes.set_uint8 b 3 (Bytes.get_uint8 b 3 lor Frame.span_flag);
  expect_error "v1 + span flag" b 0 (function
    | Frame.Bad_kind _ -> true
    | _ -> false)

let test_spanned_roundtrip () =
  let span =
    Frame.
      {
        trace_id = 0x1122334455667788L;
        span_id = 42L;
        parent_id = 7L;
        t1_ns = 1_722_000_000_123_456_000L;
        t2_ns = 1_722_000_000_123_789_000L;
      }
  in
  let b = Bytes.create (Frame.header_bytes + Frame.span_bytes) in
  Frame.encode_header_spanned b ~pos:0 ~kind:Frame.Deliver ~site:3 ~length:64;
  Frame.encode_span b ~pos:Frame.header_bytes span;
  (match Frame.decode_header b ~pos:0 with
  | Ok h ->
    Alcotest.(check bool) "kind" true (h.Frame.kind = Frame.Deliver);
    Alcotest.(check int) "site" 3 h.Frame.site;
    Alcotest.(check int) "length excludes span block" 64 h.Frame.length;
    Alcotest.(check bool) "has_span" true h.Frame.has_span
  | Error e ->
    Alcotest.failf "spanned decode failed: %s" (Frame.error_to_string e));
  (match Frame.decode_span b ~pos:Frame.header_bytes with
  | Ok s ->
    Alcotest.(check int64) "trace_id" span.Frame.trace_id s.Frame.trace_id;
    Alcotest.(check int64) "span_id" span.Frame.span_id s.Frame.span_id;
    Alcotest.(check int64) "parent_id" span.Frame.parent_id s.Frame.parent_id;
    Alcotest.(check int64) "t1_ns" span.Frame.t1_ns s.Frame.t1_ns;
    Alcotest.(check int64) "t2_ns" span.Frame.t2_ns s.Frame.t2_ns
  | Error e ->
    Alcotest.failf "span block decode failed: %s" (Frame.error_to_string e));
  (* A truncated span block is a typed error, not an exception. *)
  match
    Frame.decode_span
      (Bytes.sub b 0 (Frame.header_bytes + Frame.span_bytes - 1))
      ~pos:Frame.header_bytes
  with
  | Ok _ -> Alcotest.fail "truncated span block decoded"
  | Error (Frame.Truncated { wanted; got }) ->
    Alcotest.(check int) "wanted" Frame.span_bytes wanted;
    Alcotest.(check int) "got" (Frame.span_bytes - 1) got
  | Error e ->
    Alcotest.failf "wrong error for truncated span: %s"
      (Frame.error_to_string e)

(* --- batch envelopes --- *)

(* Build one complete inner frame (optionally span-stamped) and append
   it to the envelope's inner region. *)
let add_inner ?span buf ~kind ~site ~length =
  (match span with
  | None ->
    let f = Bytes.make (Frame.header_bytes + length) '\042' in
    Frame.encode_header f ~pos:0 ~kind ~site ~length;
    Buffer.add_bytes buf f
  | Some span ->
    let f =
      Bytes.make (Frame.header_bytes + Frame.span_bytes + length) '\042'
    in
    Frame.encode_header_spanned f ~pos:0 ~kind ~site ~length;
    Frame.encode_span f ~pos:Frame.header_bytes span;
    Buffer.add_bytes buf f)

let some_span =
  Frame.
    {
      trace_id = 99L;
      span_id = 3L;
      parent_id = 0L;
      t1_ns = 1_722_000_000_000_000_000L;
      t2_ns = 0L;
    }

let test_batch_roundtrip () =
  let buf = Buffer.create 256 in
  add_inner buf ~kind:Frame.Deliver ~site:0 ~length:10;
  add_inner buf ~kind:Frame.Deliver ~site:3 ~length:0 ~span:some_span;
  add_inner buf ~kind:Frame.Deliver ~site:1 ~length:7;
  let inner = Buffer.to_bytes buf in
  (* The envelope header itself: site field carries the inner count. *)
  let env = Bytes.create Frame.header_bytes in
  Frame.encode_batch_header env ~pos:0 ~count:3 ~length:(Bytes.length inner);
  (match Frame.decode_header env ~pos:0 with
  | Ok h ->
    Alcotest.(check bool) "kind is batch" true (h.Frame.kind = Frame.Batch);
    Alcotest.(check int) "count in site field" 3 h.Frame.site;
    Alcotest.(check int) "length is inner region" (Bytes.length inner)
      h.Frame.length
  | Error e ->
    Alcotest.failf "envelope header: %s" (Frame.error_to_string e));
  match Frame.decode_batch inner ~count:3 with
  | Error e -> Alcotest.failf "decode_batch: %s" (Frame.error_to_string e)
  | Ok frames ->
    Alcotest.(check int) "three inner frames" 3 (List.length frames);
    let sites = List.map (fun (h, _, _) -> h.Frame.site) frames in
    Alcotest.(check (list int)) "sites in order" [ 0; 3; 1 ] sites;
    List.iteri
      (fun i (h, span, payload_off) ->
        Alcotest.(check bool)
          (Printf.sprintf "inner %d is deliver" i)
          true
          (h.Frame.kind = Frame.Deliver);
        (match (i, span) with
        | 1, Some s ->
          Alcotest.(check int64) "span carried" 99L s.Frame.trace_id
        | 1, None -> Alcotest.fail "span block lost in batch"
        | _, None -> ()
        | _, Some _ -> Alcotest.failf "inner %d grew a span" i);
        if h.Frame.length > 0 then
          Alcotest.(check char)
            (Printf.sprintf "inner %d payload offset" i)
            '\042'
            (Bytes.get inner payload_off))
      frames

let expect_batch_error name inner ~count pred =
  match Frame.decode_batch inner ~count with
  | Ok _ -> Alcotest.failf "%s: decode_batch should fail" name
  | Error e ->
    if not (pred e) then
      Alcotest.failf "%s: wrong error %s" name (Frame.error_to_string e)

let test_batch_rejects () =
  let buf = Buffer.create 64 in
  add_inner buf ~kind:Frame.Deliver ~site:0 ~length:10;
  add_inner buf ~kind:Frame.Deliver ~site:1 ~length:4;
  let inner = Buffer.to_bytes buf in
  (* Announced count disagrees with the walked region, both ways. *)
  expect_batch_error "count too low" inner ~count:1 (function
    | Frame.Bad_count { expected = 1; got = 2 } -> true
    | _ -> false);
  expect_batch_error "count too high" inner ~count:3 (function
    | Frame.Bad_count { expected = 3; got = 2 } -> true
    | _ -> false);
  (* A cut anywhere in the region is a typed Truncated, not a crash. *)
  for cut = 1 to Bytes.length inner - 1 do
    expect_batch_error
      (Printf.sprintf "cut at %d" cut)
      (Bytes.sub inner 0 cut)
      ~count:2
      (function
        | Frame.Truncated _ -> true
        | Frame.Bad_count _ -> true (* cut exactly on a frame boundary *)
        | _ -> false)
  done;
  (* Nested envelopes are forbidden. *)
  let nested = Buffer.create 32 in
  let env = Bytes.create Frame.header_bytes in
  Frame.encode_batch_header env ~pos:0 ~count:0 ~length:0;
  Buffer.add_bytes nested env;
  expect_batch_error "nested batch" (Buffer.to_bytes nested) ~count:1
    (function
      | Frame.Bad_kind 9 -> true
      | _ -> false);
  (* A stomped inner length field overruns the region: typed error. *)
  let stomped = Bytes.copy inner in
  Bytes.set_int32_le stomped 8 1_000_000l;
  expect_batch_error "stomped inner length" stomped ~count:2 (function
    | Frame.Truncated _ -> true
    | _ -> false)

(* --- equivalence harness --- *)

let sites = 4

let stream =
  lazy (Stream_gen.zipf ~seed:11 ~sites ~events:20_000 ~universe:6_000 ())

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "/tmp/wdt-%d-%d.sock" (Unix.getpid ()) !counter

(* Fork one relay process per site; children never return. *)
let spawn_relays ~path =
  List.init sites (fun site ->
      match Unix.fork () with
      | 0 ->
        (try
           ignore (Socket.Site.run ~path ~site () : Socket.site_report);
           Unix._exit 0
         with _ -> Unix._exit 1)
      | pid -> pid)

let reap pids =
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "relay exited abnormally")
    pids

let run_dc ?transport ?topology ?(faults = Faults.none) ?sink () =
  Simulation.run ~seed:7 ?transport ?topology ~faults ?sink
    (Query.dc ~theta:0.015 ~alpha:0.085 Dc.LS)
    (Lazy.force stream)

(* The documented ledger-vs-wire laws, plus the relays' own counters. *)
let reconcile coord ws net =
  let extra = Frame.header_bytes - Wire.header_bytes in
  Alcotest.(check int)
    "wire bytes up reconcile"
    (Network.bytes_up net - ws.Transport.skipped_up
    + (ws.Transport.frames_up * extra))
    ws.Transport.wire_bytes_up;
  Alcotest.(check int)
    "wire bytes down reconcile"
    (Network.bytes_down net - ws.Transport.skipped_down
    + (ws.Transport.frames_down * extra))
    ws.Transport.wire_bytes_down;
  let reports = Socket.Coordinator.reports coord in
  Array.iteri
    (fun site r ->
      if r = None then Alcotest.failf "site %d never reported stats" site)
    reports;
  let sum f =
    Array.fold_left
      (fun acc r -> acc + Option.fold ~none:0 ~some:f r)
      0 reports
  in
  Alcotest.(check int)
    "relay bytes received"
    (ws.Transport.wire_bytes_down + ws.Transport.radio_copy_bytes
   + ws.Transport.control_bytes)
    (sum (fun r -> r.Socket.bytes_received));
  Alcotest.(check int)
    "relay bytes sent" ws.Transport.wire_bytes_up
    (sum (fun r -> r.Socket.bytes_sent))

(* One socket-backed dc run; returns the run record and the wire stats. *)
let socket_run ?topology ?faults ?sink () =
  let path = sock_path () in
  let pids = spawn_relays ~path in
  let coord = Socket.Coordinator.connect ~path ~sites () in
  let transport = Socket.Coordinator.pack coord in
  let r = run_dc ~transport ?topology ?faults ?sink () in
  reap pids;
  let ws = Option.get (Transport.wire_stats transport) in
  reconcile coord ws (Transport.ledger transport);
  (r, ws)

(* --- tcp harness --- *)

(* Two relays, two sites each: exercises the multiplexed connection,
   not just a per-site socket with a different address family. *)
let default_ranges = [ (0, 2); (2, 2) ]

let spawn_tcp_relays ~port ranges =
  List.map
    (fun (first_site, count) ->
      match Unix.fork () with
      | 0 ->
        (try
           ignore
             (Tcp.Relay.run ~port ~first_site ~count ()
               : Frame_io.site_report);
           Unix._exit 0
         with _ -> Unix._exit 1)
      | pid -> pid)
    ranges

let tcp_coordinator ?(ranges = default_ranges) ~sites () =
  let pids = ref [] in
  let coord =
    Tcp.Coordinator.connect ~timeout:30. ~port:0 ~sites
      ~on_listening:(fun port -> pids := spawn_tcp_relays ~port ranges)
      ()
  in
  (coord, !pids)

(* The TCP reconciliation laws: the up direction is unchanged from the
   socket backend, the down direction gains the batch-envelope term. *)
let reconcile_tcp coord ws net =
  let extra = Frame.header_bytes - Wire.header_bytes in
  Alcotest.(check int)
    "wire bytes up reconcile"
    (Network.bytes_up net - ws.Transport.skipped_up
    + (ws.Transport.frames_up * extra))
    ws.Transport.wire_bytes_up;
  Alcotest.(check int)
    "wire bytes down reconcile"
    (Network.bytes_down net - ws.Transport.skipped_down
    + (ws.Transport.frames_down * extra))
    ws.Transport.wire_bytes_down;
  let reports = Tcp.Coordinator.reports coord in
  List.iter
    (fun (first, count, r) ->
      if r = None then
        Alcotest.failf "relay %d+%d never reported stats" first count)
    reports;
  let sum f =
    List.fold_left
      (fun acc (_, _, r) -> acc + Option.fold ~none:0 ~some:f r)
      0 reports
  in
  Alcotest.(check int)
    "relay bytes received (incl. batch envelopes)"
    (ws.Transport.wire_bytes_down + ws.Transport.radio_copy_bytes
   + ws.Transport.control_bytes
    + (ws.Transport.span_frames_down * Frame.span_bytes)
    + (ws.Transport.batch_envelopes * Frame.header_bytes))
    (sum (fun r -> r.Frame_io.bytes_received));
  Alcotest.(check int)
    "relay bytes sent"
    (ws.Transport.wire_bytes_up
    + (ws.Transport.span_frames_up * Frame.span_bytes))
    (sum (fun r -> r.Frame_io.bytes_sent));
  Alcotest.(check int)
    "relay frames received = batch inner + control"
    (ws.Transport.batch_inner_frames + ws.Transport.control_frames)
    (sum (fun r -> r.Frame_io.frames_received));
  Alcotest.(check bool) "deliveries actually batched" true
    (ws.Transport.batch_envelopes > 0
    && ws.Transport.batch_inner_frames >= ws.Transport.batch_envelopes)

(* One tcp-backed dc run over two multiplexed relay processes. *)
let tcp_run ?topology ?faults ?sink () =
  let coord, pids = tcp_coordinator ~sites () in
  let transport = Tcp.Coordinator.pack coord in
  let r = run_dc ~transport ?topology ?faults ?sink () in
  reap pids;
  let ws = Option.get (Transport.wire_stats transport) in
  reconcile_tcp coord ws (Transport.ledger transport);
  (r, ws)

(* --- logical traces --- *)

(* The strongest equivalence check: the full protocol-decision and
   ledger event trace, event for event.  Span events are off (they
   carry wall clocks) and everything else — including Run_meta, whose
   run id is seed-derived — must be bit-identical across backends. *)
let trace_capacity = 300_000

let check_traces_equal label (a : Event.t list) (b : Event.t list) =
  Alcotest.(check int)
    (label ^ ": trace length")
    (List.length a) (List.length b);
  List.iteri
    (fun i (ea, eb) ->
      if ea <> eb then
        Alcotest.failf "%s: traces diverge at event %d (%s vs %s, time %d/%d)"
          label i
          (Event.kind_name ea.Event.kind)
          (Event.kind_name eb.Event.kind)
          ea.Event.time eb.Event.time)
    (List.combine a b)

let check_runs_equal (a : Simulation.run) (b : Simulation.run) =
  Alcotest.(check (float 0.0))
    "estimate" a.Simulation.final_estimate b.Simulation.final_estimate;
  Alcotest.(check int) "truth" a.Simulation.final_truth
    b.Simulation.final_truth;
  Alcotest.(check int) "sends" a.Simulation.sends b.Simulation.sends;
  Alcotest.(check int) "bytes up" a.Simulation.bytes_up
    b.Simulation.bytes_up;
  Alcotest.(check int) "bytes down" a.Simulation.bytes_down
    b.Simulation.bytes_down;
  Alcotest.(check int) "total bytes" a.Simulation.total_bytes
    b.Simulation.total_bytes;
  Alcotest.(check int) "backbone bytes" a.Simulation.backbone_bytes
    b.Simulation.backbone_bytes;
  Alcotest.(check int) "drops" a.Simulation.drops b.Simulation.drops;
  Alcotest.(check int) "retries" a.Simulation.retries
    b.Simulation.retries;
  Alcotest.(check int) "lost updates" a.Simulation.lost_updates
    b.Simulation.lost_updates

let test_sim_socket_equivalence () =
  let r_sim = run_dc () in
  let r_sock, ws = socket_run () in
  check_runs_equal r_sim r_sock;
  Alcotest.(check int) "no reconnects" 0 ws.Transport.reconnects;
  Alcotest.(check int) "nothing skipped" 0
    (ws.Transport.skipped_up + ws.Transport.skipped_down);
  Alcotest.(check bool) "frames actually crossed the wire" true
    (ws.Transport.frames_up > 0 && ws.Transport.frames_down > 0)

(* The three-way battery, DC cell: the same fixed-seed run through the
   simulator, the per-site socket backend and the multiplexed tcp
   backend must produce identical run records AND identical logical
   event traces. *)
let test_three_way_dc_equivalence () =
  let ring_sim = Sink.ring ~capacity:trace_capacity in
  let r_sim = run_dc ~sink:ring_sim () in
  let ring_sock = Sink.ring ~capacity:trace_capacity in
  let r_sock, _ = socket_run ~sink:ring_sock () in
  let ring_tcp = Sink.ring ~capacity:trace_capacity in
  let r_tcp, ws = tcp_run ~sink:ring_tcp () in
  check_runs_equal r_sim r_sock;
  check_runs_equal r_sim r_tcp;
  let t_sim = Sink.ring_contents ring_sim in
  check_traces_equal "sim=socket" t_sim (Sink.ring_contents ring_sock);
  check_traces_equal "sim=tcp" t_sim (Sink.ring_contents ring_tcp);
  Alcotest.(check bool) "trace non-trivial" true (List.length t_sim > 100);
  Alcotest.(check int) "no reconnects" 0 ws.Transport.reconnects;
  Alcotest.(check bool) "tcp actually carried frames" true
    (ws.Transport.frames_up > 0 && ws.Transport.frames_down > 0)

let crash_faults () =
  (* A fresh plan per run: plans carry generator state, so sharing one
     across two runs would break the fixed-seed equivalence. *)
  match Faults.of_spec ~seed:3 "drop=0.05,crash=1:5000:8000" with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_crash_reconnect_equivalence () =
  let r_sim = run_dc ~faults:(crash_faults ()) () in
  let r_sock, ws = socket_run ~faults:(crash_faults ()) () in
  check_runs_equal r_sim r_sock;
  Alcotest.(check bool) "run actually lost updates" true
    (r_sim.Simulation.lost_updates > 0);
  Alcotest.(check bool) "site reconnected" true (ws.Transport.reconnects >= 1);
  Alcotest.(check bool) "crash-window charges skipped on the wire" true
    (ws.Transport.skipped_up + ws.Transport.skipped_down >= 0)

(* Crash windows over tcp are logical detaches on a shared connection;
   the skipped/reconnect accounting must still match both the simulator
   and the socket backend's real disconnections, frame for frame. *)
let test_tcp_crash_reconnect_equivalence () =
  let r_sim = run_dc ~faults:(crash_faults ()) () in
  let r_sock, ws_sock = socket_run ~faults:(crash_faults ()) () in
  let r_tcp, ws_tcp = tcp_run ~faults:(crash_faults ()) () in
  check_runs_equal r_sim r_tcp;
  check_runs_equal r_sock r_tcp;
  Alcotest.(check bool) "run actually lost updates" true
    (r_tcp.Simulation.lost_updates > 0);
  Alcotest.(check bool) "crashed site detached and reattached" true
    (ws_tcp.Transport.reconnects >= 1);
  Alcotest.(check int) "same reconnect count as socket"
    ws_sock.Transport.reconnects ws_tcp.Transport.reconnects;
  Alcotest.(check int) "same skipped charges as socket"
    (ws_sock.Transport.skipped_up + ws_sock.Transport.skipped_down)
    (ws_tcp.Transport.skipped_up + ws_tcp.Transport.skipped_down)

(* --- three-way battery: DS and HH cells --- *)

let run_ds ?transport ?topology () =
  Simulation.run ~seed:7 ?transport ?topology
    (Query.ds ~theta:0.25 ~threshold:256 Ds.GCS)
    (Lazy.force stream)

let with_socket_transport ~sites f =
  let path = sock_path () in
  let pids =
    List.init sites (fun site ->
        match Unix.fork () with
        | 0 ->
          (try
             ignore (Socket.Site.run ~path ~site () : Socket.site_report);
             Unix._exit 0
           with _ -> Unix._exit 1)
        | pid -> pid)
  in
  let transport =
    Socket.Coordinator.pack (Socket.Coordinator.connect ~path ~sites ())
  in
  let r = f transport in
  reap pids;
  r

let with_tcp_transport ~sites f =
  (* One relay per two sites (odd trailing range of one). *)
  let ranges =
    let rec go first acc =
      if first >= sites then List.rev acc
      else
        let count = min 2 (sites - first) in
        go (first + count) ((first, count) :: acc)
    in
    go 0 []
  in
  let coord, pids = tcp_coordinator ~ranges ~sites () in
  let transport = Tcp.Coordinator.pack coord in
  let r = f transport in
  reap pids;
  let ws = Option.get (Transport.wire_stats transport) in
  reconcile_tcp coord ws (Transport.ledger transport);
  r

let test_three_way_ds_equivalence () =
  let r_sim = run_ds () in
  let r_sock =
    with_socket_transport ~sites (fun transport -> run_ds ~transport ())
  in
  let r_tcp =
    with_tcp_transport ~sites (fun transport -> run_ds ~transport ())
  in
  Alcotest.(check bool) "ds paid communication" true
    (r_sim.Simulation.total_bytes > 0);
  Alcotest.(check bool) "sim = socket (full ds record)" true (r_sim = r_sock);
  Alcotest.(check bool) "sim = tcp (full ds record)" true (r_sim = r_tcp)

let hh_inputs =
  lazy
    (let cfg = { Http.default with Http.requests = 5_000 } in
     let p = Simulation.pair_stream_of_requests cfg Http.Per_region (Http.generate cfg) in
     (p, Simulation.pair_stream_sites p))

let run_hh ?transport ?topology () =
  let p, _ = Lazy.force hh_inputs in
  Simulation.run ~seed:7 ?transport ?topology
    (Query.hh ~theta:0.2
       ~config:{ Wd_aggregate.Fm_array.rows = 3; cols = 128; bitmaps = 10 }
       Dc.LS)
    (Simulation.stream_of_pairs p)

let test_three_way_hh_equivalence () =
  let _, hh_sites = Lazy.force hh_inputs in
  let r_sim = run_hh () in
  let r_sock =
    with_socket_transport ~sites:hh_sites (fun transport ->
        run_hh ~transport ())
  in
  let r_tcp =
    with_tcp_transport ~sites:hh_sites (fun transport -> run_hh ~transport ())
  in
  Alcotest.(check bool) "hh paid communication" true
    (r_sim.Simulation.total_bytes > 0);
  Alcotest.(check bool) "sim = socket (full hh record)" true (r_sim = r_sock);
  Alcotest.(check bool) "sim = tcp (full hh record)" true (r_sim = r_tcp)

(* --- depth-2 tree battery --- *)

(* The hierarchical extension of the three-way battery: the same tree
   topology installed on every backend's ledger must leave the full run
   record — including the new backbone counters — bit-identical, because
   backbone hops are pure ledger arithmetic shared by construction. *)
let tree_topo () =
  match Wd_net.Topology.of_spec ~sites "tree:regions=2" with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_three_way_tree_dc_equivalence () =
  let topology = tree_topo () in
  Alcotest.(check int) "depth 2" 2 (Wd_net.Topology.depth topology);
  let r_sim = run_dc ~topology () in
  let r_sock, _ = socket_run ~topology () in
  let r_tcp, _ = tcp_run ~topology () in
  check_runs_equal r_sim r_sock;
  check_runs_equal r_sim r_tcp;
  Alcotest.(check bool) "backbone paid" true
    (r_sim.Simulation.backbone_bytes > 0);
  (* The tree only adds backbone charges on top of the flat run. *)
  let r_flat = run_dc () in
  Alcotest.(check int) "site-link bytes unchanged by the tree"
    r_flat.Simulation.total_bytes r_sim.Simulation.total_bytes;
  Alcotest.(check (float 0.0))
    "estimate unchanged by the tree" r_flat.Simulation.final_estimate
    r_sim.Simulation.final_estimate

(* An aggregator crash mid-run over the real TCP backend: the crash
   window swallows forwarded frames (charged but lost), and the sim and
   tcp ledgers must agree on every counter anyway. *)
let agg_crash_faults topology =
  let node = Wd_net.Topology.node_of_agg topology 0 in
  match
    Faults.of_spec ~seed:3 (Printf.sprintf "crash=%d:5000:8000" node)
  with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_tcp_tree_aggregator_crash () =
  let topology = tree_topo () in
  let r_sim = run_dc ~topology ~faults:(agg_crash_faults topology) () in
  let r_tcp, _ =
    tcp_run ~topology ~faults:(agg_crash_faults topology) ()
  in
  check_runs_equal r_sim r_tcp;
  Alcotest.(check bool) "backbone paid" true
    (r_tcp.Simulation.backbone_bytes > 0);
  (* The crash must actually have been exercised: frames charged into
     the dead aggregator were lost, so the answer still lands but the
     run is not byte-identical to the fault-free tree run. *)
  let r_clean = run_dc ~topology () in
  Alcotest.(check bool) "aggregator crash changed the run" true
    (r_sim.Simulation.backbone_bytes <> r_clean.Simulation.backbone_bytes
    || r_sim.Simulation.total_bytes <> r_clean.Simulation.total_bytes)

(* --- handshake rejection --- *)

let read_exact fd buf =
  let wanted = Bytes.length buf in
  let rec go pos =
    if pos < wanted then begin
      let r = Unix.read fd buf pos (wanted - pos) in
      if r = 0 then failwith "eof";
      go (pos + r)
    end
  in
  go 0

(* Retry connect until a wall-clock deadline, not a sleep count: under
   load the coordinator may take arbitrarily long to bind, and a retry
   budget measured in sleeps silently shrinks with scheduling jitter. *)
let connect_by_deadline fd path ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    try Unix.connect fd (Unix.ADDR_UNIX path)
    with
    | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline
      ->
      Unix.sleepf 0.02;
      go ()
  in
  go ()

(* Speak a Hello with the wrong version byte; the coordinator must
   answer Reject (and not count us toward its site quorum). *)
let bad_version_client path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  connect_by_deadline fd path ~timeout:10.0;
  let hello = encode ~kind:Frame.Hello ~site:0 ~length:0 in
  Bytes.set_uint8 hello 2 (Frame.version + 1);
  ignore (Unix.write fd hello 0 (Bytes.length hello));
  let resp = Bytes.create Frame.header_bytes in
  read_exact fd resp;
  let ok =
    match Frame.decode_header resp ~pos:0 with
    | Ok { Frame.kind = Frame.Reject; _ } -> true
    | _ -> false
  in
  Unix.close fd;
  ok

let test_version_mismatch_rejected () =
  let path = sock_path () in
  let bad_pid =
    match Unix.fork () with
    | 0 -> (
      try Unix._exit (if bad_version_client path then 0 else 1)
      with _ -> Unix._exit 1)
    | pid -> pid
  in
  let good_pid =
    match Unix.fork () with
    | 0 ->
      (try
         ignore (Socket.Site.run ~path ~site:0 () : Socket.site_report);
         Unix._exit 0
       with _ -> Unix._exit 1)
    | pid -> pid
  in
  let coord = Socket.Coordinator.connect ~path ~sites:1 () in
  let transport = Socket.Coordinator.pack coord in
  Transport.close transport;
  List.iter
    (fun (name, pid) ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.failf "%s exited abnormally" name)
    [ ("bad-version client", bad_pid); ("relay", good_pid) ]

(* Same check over TCP: a wrong version byte in the ranged Hello must
   draw a typed Reject and must not count toward the site quorum. *)
let tcp_bad_version_client port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec connect () =
    try Unix.connect fd addr
    with
    | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET), _, _)
      when Unix.gettimeofday () < deadline
      ->
      Unix.sleepf 0.02;
      connect ()
  in
  connect ();
  let hello = Bytes.create (Frame.header_bytes + 4) in
  Frame.encode_header hello ~pos:0 ~kind:Frame.Hello ~site:0 ~length:4;
  Bytes.set_int32_le hello Frame.header_bytes 1l;
  Bytes.set_uint8 hello 2 (Frame.version + 1);
  ignore (Unix.write fd hello 0 (Bytes.length hello));
  let resp = Bytes.create Frame.header_bytes in
  read_exact fd resp;
  let ok =
    match Frame.decode_header resp ~pos:0 with
    | Ok { Frame.kind = Frame.Reject; _ } -> true
    | _ -> false
  in
  Unix.close fd;
  ok

let test_tcp_version_mismatch_rejected () =
  let bad_pid = ref None in
  let good_pids = ref [] in
  let coord =
    Tcp.Coordinator.connect ~port:0 ~sites:1
      ~on_listening:(fun port ->
        (bad_pid :=
           match Unix.fork () with
           | 0 -> (
             try Unix._exit (if tcp_bad_version_client port then 0 else 1)
             with _ -> Unix._exit 1)
           | pid -> Some pid);
        good_pids := spawn_tcp_relays ~port [ (0, 1) ])
      ()
  in
  Transport.close (Tcp.Coordinator.pack coord);
  reap !good_pids;
  match Unix.waitpid [] (Option.get !bad_pid) with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "bad-version tcp client was not rejected"

(* Regression: a coordinator waiting on a site that never connects must
   fail with the documented [Failure] naming the missing sites once the
   timeout expires — it used to leak the raw [Unix_error EAGAIN] from
   the receive-timeout on the listening socket. *)
let test_coordinator_times_out_cleanly () =
  let path = sock_path () in
  (* Spawn only 3 of the 4 expected relays; give them a short connect
     budget so they exit on their own once the coordinator dies. *)
  let pids =
    List.init 3 (fun site ->
        match Unix.fork () with
        | 0 ->
          (try
             ignore
               (Socket.Site.run ~connect_timeout:2. ~path ~site ()
                 : Socket.site_report);
             Unix._exit 0
           with _ -> Unix._exit 0)
        | pid -> pid)
  in
  let started = Unix.gettimeofday () in
  (match Socket.Coordinator.connect ~timeout:0.4 ~path ~sites:4 () with
  | (_ : Socket.Coordinator.t) ->
    Alcotest.fail "coordinator connected without its fourth site"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "failure names the timeout: %S" msg)
      true
      (let re = "timed out" in
       let len = String.length re in
       let rec find i =
         i + len <= String.length msg
         && (String.sub msg i len = re || find (i + 1))
       in
       find 0)
  | exception Unix.Unix_error (e, fn, _) ->
    Alcotest.failf "raw Unix_error leaked: %s in %s" (Unix.error_message e) fn);
  let waited = Unix.gettimeofday () -. started in
  if waited > 5.0 then
    Alcotest.failf "coordinator hung %.1fs against a 0.4s timeout" waited;
  (* The orphaned relays notice the dead socket and exit; don't leak
     them past the test. *)
  List.iter
    (fun pid ->
      ignore (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    pids

let () =
  Alcotest.run "transport"
    [
      ( "frame",
        [
          Alcotest.test_case "header roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "header rejects" `Quick test_header_rejects;
          Alcotest.test_case "legacy v1 decodes" `Quick test_legacy_v1_decodes;
          Alcotest.test_case "spanned roundtrip" `Quick test_spanned_roundtrip;
          Alcotest.test_case "batch roundtrip" `Quick test_batch_roundtrip;
          Alcotest.test_case "batch rejects" `Quick test_batch_rejects;
        ] );
      ( "socket",
        [
          Alcotest.test_case "sim = socket (fixed seed)" `Quick
            test_sim_socket_equivalence;
          Alcotest.test_case "crash window reconnects" `Quick
            test_crash_reconnect_equivalence;
          Alcotest.test_case "version mismatch rejected" `Quick
            test_version_mismatch_rejected;
          Alcotest.test_case "coordinator times out cleanly" `Quick
            test_coordinator_times_out_cleanly;
        ] );
      ( "three-way",
        [
          Alcotest.test_case "dc: sim = socket = tcp (traces)" `Quick
            test_three_way_dc_equivalence;
          Alcotest.test_case "ds: sim = socket = tcp" `Quick
            test_three_way_ds_equivalence;
          Alcotest.test_case "hh: sim = socket = tcp" `Quick
            test_three_way_hh_equivalence;
          Alcotest.test_case "tcp crash windows detach and reattach" `Quick
            test_tcp_crash_reconnect_equivalence;
          Alcotest.test_case "dc depth-2 tree: sim = socket = tcp" `Quick
            test_three_way_tree_dc_equivalence;
          Alcotest.test_case "tcp aggregator crash mid-run" `Quick
            test_tcp_tree_aggregator_crash;
          Alcotest.test_case "tcp version mismatch rejected" `Quick
            test_tcp_version_mismatch_rejected;
        ] );
    ]
