(* The eval harness: statistics, artifact serialization, the baseline
   diff gates, and a miniature end-to-end grid run (including the
   injected-handicap bug detector).  Also the CLI regression test for
   [wdmon inspect] on an empty trace, which rides along because it needs
   the built binary. *)

module Stats = Wd_eval.Stats
module Spec = Wd_eval.Spec
module Theory = Wd_eval.Theory
module Runner = Wd_eval.Runner
module Artifact = Wd_eval.Artifact
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let checkf ?eps msg expected got =
  if not (feq ?eps expected got) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected got

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_quantile () =
  let xs = [| 3.0; 1.0; 2.0; 4.0 |] in
  checkf "q0" 1.0 (Stats.quantile xs 0.0);
  checkf "q1" 4.0 (Stats.quantile xs 1.0);
  checkf "median" 2.5 (Stats.quantile xs 0.5);
  (* type-7: rank = q * (n-1); q=0.9 on 4 points -> 2.7 -> 3 + 0.7*(4-3) *)
  checkf "p90" 3.7 (Stats.quantile xs 0.9);
  checkf "singleton" 7.0 (Stats.quantile [| 7.0 |] 0.25);
  Alcotest.(check bool)
    "empty is nan" true
    (Float.is_nan (Stats.quantile [||] 0.5));
  (* input must not be reordered *)
  Alcotest.(check bool) "no mutation" true (xs = [| 3.0; 1.0; 2.0; 4.0 |])

let test_mean_max () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "max" 3.0 (Stats.max_value [| 1.0; 3.0; 2.0 |]);
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Stats.mean [||]))

let test_binomial_law () =
  (* pmf sums to 1; cdf at n is 1 *)
  let n = 9 and p = 0.37 in
  let total = ref 0.0 in
  for k = 0 to n do
    total := !total +. Stats.binom_pmf ~n ~p k
  done;
  checkf "pmf sums to 1" 1.0 !total;
  checkf "cdf at n" 1.0 (Stats.binom_cdf ~n ~p n);
  checkf "pmf 0" (0.63 ** 9.0) (Stats.binom_pmf ~n ~p 0);
  (* monotone cdf *)
  for k = 1 to n do
    if Stats.binom_cdf ~n ~p k < Stats.binom_cdf ~n ~p (k - 1) then
      Alcotest.failf "cdf not monotone at %d" k
  done

let test_binomial_accept () =
  (* With 5 reps at confidence 0.9 and significance 0.005 the test
     rejects iff at most 1 rep succeeded: P(X<=1) ~ 4.6e-4 < 0.005 but
     P(X<=2) ~ 8.6e-3 > 0.005. *)
  let accept successes =
    Stats.binomial_accept ~trials:5 ~successes ~null_p:0.9
      ~significance:0.005
  in
  List.iter
    (fun (s, expect_pass) ->
      let v = accept s in
      Alcotest.(check bool)
        (Printf.sprintf "%d/5 pass" s)
        expect_pass v.Stats.pass;
      if v.Stats.p_value < 0.0 || v.Stats.p_value > 1.0 then
        Alcotest.failf "p-value out of range: %g" v.Stats.p_value)
    [ (0, false); (1, false); (2, true); (3, true); (5, true) ];
  checkf ~eps:1e-6 "p-value 1/5"
    (Stats.binom_cdf ~n:5 ~p:0.9 1)
    (accept 1).Stats.p_value;
  Alcotest.check_raises "trials 0"
    (Invalid_argument "Stats.binomial_accept: trials must be > 0")
    (fun () -> ignore (Stats.binomial_accept ~trials:0 ~successes:0
                         ~null_p:0.9 ~significance:0.005))

(* ------------------------------------------------------------------ *)
(* Artifact *)

let mk_cell ?(id = "cell-a") ?(accept_pass = true) ?(bytes_pass = true)
    ?(ratio_max = 0.5) ?(err_p90 = 0.04) ?faults () =
  {
    Artifact.id;
    family = "dc";
    algorithm = "LS";
    sketch = "fm";
    alpha = 0.1;
    delta = 0.1;
    sites = 4;
    events = 1000;
    workload = "zipf";
    transport = "sim";
    faults;
    reps = 5;
    successes = (if accept_pass then 5 else 1);
    accept_pass;
    p_value = (if accept_pass then 1.0 else 0.00046);
    err_mean = 0.03;
    err_p50 = 0.03;
    err_p90;
    err_max = err_p90 +. 0.01;
    bytes_mean = 1234.5;
    ratio_mean = ratio_max /. 2.0;
    ratio_max;
    ratio_ceiling = 2.0;
    bytes_pass;
    msgs_mean = 42.0;
    wall_s = 0.125;
  }

let mk_artifact cells =
  {
    Artifact.grid = "small";
    base_seed = 42;
    reps = 5;
    significance = 0.005;
    cells;
  }

let test_artifact_roundtrip () =
  let t =
    mk_artifact
      [ mk_cell (); mk_cell ~id:"cell-b" ~faults:"drop=0.05" ~ratio_max:1.9 () ]
  in
  (match Artifact.of_json (Artifact.to_json t) with
  | Ok t' -> Alcotest.(check bool) "json roundtrip" true (t = t')
  | Error e -> Alcotest.failf "of_json failed: %s" e);
  (* through the actual text rendering too (%.17g floats: lossless) *)
  (match
     Artifact.of_string (Wd_obs.Json.to_string_pretty (Artifact.to_json t))
   with
  | Ok t' -> Alcotest.(check bool) "string roundtrip" true (t = t')
  | Error e -> Alcotest.failf "of_string failed: %s" e);
  Alcotest.(check bool) "passes" true (Artifact.pass t);
  Alcotest.(check bool)
    "failing cell fails artifact" false
    (Artifact.pass (mk_artifact [ mk_cell ~accept_pass:false () ]))

let test_artifact_version_gate () =
  match Artifact.of_string {|{"version":"wd-eval/999","grid":"x"}|} with
  | Ok _ -> Alcotest.fail "accepted an unknown artifact version"
  | Error e ->
    Alcotest.(check bool)
      "error names the version" true
      (let re = "wd-eval/999" in
       let len = String.length re in
       let rec find i =
         i + len <= String.length e && (String.sub e i len = re || find (i + 1))
       in
       find 0)

let test_artifact_csv () =
  let t = mk_artifact [ mk_cell (); mk_cell ~id:"cell-b" () ] in
  let csv = Artifact.to_csv t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  Alcotest.(check int) "header + one row per cell" 3 (List.length lines);
  let header = List.hd lines in
  let cols = String.split_on_char ',' header in
  List.iter
    (fun row ->
      Alcotest.(check int)
        "row width matches header" (List.length cols)
        (List.length (String.split_on_char ',' row)))
    (List.tl lines);
  Alcotest.(check bool)
    "header has id column" true
    (List.mem "id" cols)

let test_diff_gates () =
  let baseline = mk_artifact [ mk_cell () ] in
  let clean_of current = Artifact.clean (Artifact.diff ~baseline ~current) in
  Alcotest.(check bool) "identical is clean" true (clean_of baseline);
  Alcotest.(check bool)
    "missing cell regresses" false
    (clean_of (mk_artifact []));
  Alcotest.(check bool)
    "accuracy flip regresses" false
    (clean_of (mk_artifact [ mk_cell ~accept_pass:false () ]));
  Alcotest.(check bool)
    "bytes flip regresses" false
    (clean_of (mk_artifact [ mk_cell ~bytes_pass:false () ]));
  Alcotest.(check bool)
    "ratio drift past 1.5x regresses" false
    (clean_of (mk_artifact [ mk_cell ~ratio_max:0.8 () ]));
  Alcotest.(check bool)
    "ratio drift under 1.5x is clean" true
    (clean_of (mk_artifact [ mk_cell ~ratio_max:0.7 () ]));
  Alcotest.(check bool)
    "err drift past the gate regresses" false
    (clean_of (mk_artifact [ mk_cell ~err_p90:0.08 () ]));
  (* near-zero baselines get the 0.01 absolute floor *)
  let tiny = mk_artifact [ mk_cell ~err_p90:0.001 () ] in
  Alcotest.(check bool)
    "error floor absorbs noise on tiny baselines" true
    (Artifact.clean
       (Artifact.diff ~baseline:tiny
          ~current:(mk_artifact [ mk_cell ~err_p90:0.009 () ])));
  (* a new cell is a note, not a regression *)
  let d =
    Artifact.diff ~baseline
      ~current:(mk_artifact [ mk_cell (); mk_cell ~id:"cell-new" () ])
  in
  Alcotest.(check bool) "new cell is clean" true (Artifact.clean d);
  Alcotest.(check bool) "new cell is noted" true (d.Artifact.notes <> [])

(* ------------------------------------------------------------------ *)
(* Runner: a miniature grid, and the handicap bug-detector *)

let tiny_config =
  { Runner.default_config with Runner.reps = 5; base_seed = 7 }

let test_runner_exact_cell () =
  let cell = Spec.base ~events:4_000 ~sites:3 (Spec.Dc Dc.EC) in
  let r = Runner.run_cell tiny_config cell in
  Alcotest.(check string) "id" (Spec.id cell) r.Artifact.id;
  Alcotest.(check int) "reps" 5 r.Artifact.reps;
  Alcotest.(check int) "all in band" 5 r.Artifact.successes;
  Alcotest.(check bool) "accept" true r.Artifact.accept_pass;
  Alcotest.(check bool) "bytes" true r.Artifact.bytes_pass;
  checkf "exact tracker has zero error" 0.0 r.Artifact.err_max;
  if r.Artifact.ratio_max > 1.01 then
    Alcotest.failf "exact envelope overshoot: %g" r.Artifact.ratio_max;
  if r.Artifact.msgs_mean <= 0.0 then
    Alcotest.failf "no messages measured: %g" r.Artifact.msgs_mean

let test_runner_sketch_cell_deterministic () =
  let cell = Spec.base ~events:6_000 ~alpha:0.2 (Spec.Dc Dc.LS) in
  let a = Runner.run_cell tiny_config cell in
  let b = Runner.run_cell tiny_config cell in
  Alcotest.(check bool)
    "rerun reproduces everything but wall time" true
    ({ a with Artifact.wall_s = 0.0 } = { b with Artifact.wall_s = 0.0 });
  Alcotest.(check bool) "cell passes" true (Artifact.cell_pass a);
  if a.Artifact.bytes_mean <= 0.0 then Alcotest.fail "no traffic measured"

let test_runner_grid_artifact () =
  let cells =
    [
      Spec.base ~events:3_000 (Spec.Dc Dc.EC);
      Spec.base ~events:3_000 ~alpha:0.2 (Spec.Ds Ds.EDS);
    ]
  in
  let t = Runner.run_grid ~name:"tiny" tiny_config cells in
  Alcotest.(check string) "grid name" "tiny" t.Artifact.grid;
  Alcotest.(check int) "cell count" 2 (List.length t.Artifact.cells);
  Alcotest.(check int) "base seed recorded" 7 t.Artifact.base_seed;
  Alcotest.(check bool) "grid passes" true (Artifact.pass t)

let test_handicap_detected () =
  (* The injected-bug dial must flip the DS acceptance verdict: handicap
     h inflates the count-lag theta by h^2 while the verdict still
     judges against the honest alpha, so err_max lands deterministically
     outside the band (Lemma 2 makes the lag, and hence the failure,
     non-probabilistic). *)
  let cell = Spec.base ~events:30_000 (Spec.Ds Ds.LCO) in
  let honest = Runner.run_cell tiny_config cell in
  Alcotest.(check bool) "honest run passes" true honest.Artifact.accept_pass;
  let rigged =
    Runner.run_cell { tiny_config with Runner.handicap = 2.0 } cell
  in
  Alcotest.(check bool)
    "handicapped run fails acceptance" false rigged.Artifact.accept_pass;
  Alcotest.(check int) "no rep survives" 0 rigged.Artifact.successes;
  if rigged.Artifact.p_value >= 0.005 then
    Alcotest.failf "failure not significant: p = %g" rigged.Artifact.p_value

(* ------------------------------------------------------------------ *)
(* wdmon inspect on an empty trace (CLI regression) *)

(* Under [dune runtest] the cwd is [_build/default/test]; under
   [dune exec] it is the project root — look in both places. *)
let wdmon =
  List.find_opt Sys.file_exists
    [
      Filename.concat ".." (Filename.concat "bin" "wdmon.exe");
      "_build/default/bin/wdmon.exe";
    ]

let test_inspect_empty_trace () =
  match wdmon with
  | None -> Alcotest.skip ()
  | Some wdmon ->
    let dir = Filename.get_temp_dir_name () in
    let trace =
      Filename.concat dir (Printf.sprintf "wd-empty-%d.jsonl" (Unix.getpid ()))
    in
    let out = trace ^ ".out" in
    let oc = open_out trace in
    close_out oc;
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ trace; out ])
      (fun () ->
        let cmd =
          Printf.sprintf "%s inspect %s > %s 2>&1"
            (Filename.quote wdmon) (Filename.quote trace) (Filename.quote out)
        in
        let status = Sys.command cmd in
        let text = In_channel.with_open_bin out In_channel.input_all in
        if status <> 0 then
          Alcotest.failf "inspect on empty trace exited %d:\n%s" status text;
        Alcotest.(check bool)
          "says the trace is empty" true
          (let re = "empty trace" in
           let len = String.length re in
           let rec find i =
             i + len <= String.length text
             && (String.sub text i len = re || find (i + 1))
           in
           find 0))

let () =
  Alcotest.run "eval"
    [
      ( "stats",
        [
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "mean/max" `Quick test_mean_max;
          Alcotest.test_case "binomial law" `Quick test_binomial_law;
          Alcotest.test_case "binomial acceptance" `Quick test_binomial_accept;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "version gate" `Quick test_artifact_version_gate;
          Alcotest.test_case "csv shape" `Quick test_artifact_csv;
          Alcotest.test_case "diff gates" `Quick test_diff_gates;
        ] );
      ( "runner",
        [
          Alcotest.test_case "exact cell" `Quick test_runner_exact_cell;
          Alcotest.test_case "deterministic rerun" `Quick
            test_runner_sketch_cell_deterministic;
          Alcotest.test_case "grid artifact" `Quick test_runner_grid_artifact;
          Alcotest.test_case "handicap detected" `Slow test_handicap_detected;
        ] );
      ( "cli",
        [
          Alcotest.test_case "inspect empty trace" `Quick
            test_inspect_empty_trace;
        ] );
    ]
