(* The eval harness: statistics, artifact serialization, the baseline
   diff gates, and a miniature end-to-end grid run (including the
   injected-handicap bug detector).  Also the CLI regression test for
   [wdmon inspect] on an empty trace, which rides along because it needs
   the built binary. *)

module Stats = Wd_eval.Stats
module Spec = Wd_eval.Spec
module Theory = Wd_eval.Theory
module Runner = Wd_eval.Runner
module Artifact = Wd_eval.Artifact
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let checkf ?eps msg expected got =
  if not (feq ?eps expected got) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected got

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_quantile () =
  let xs = [| 3.0; 1.0; 2.0; 4.0 |] in
  checkf "q0" 1.0 (Stats.quantile xs 0.0);
  checkf "q1" 4.0 (Stats.quantile xs 1.0);
  checkf "median" 2.5 (Stats.quantile xs 0.5);
  (* type-7: rank = q * (n-1); q=0.9 on 4 points -> 2.7 -> 3 + 0.7*(4-3) *)
  checkf "p90" 3.7 (Stats.quantile xs 0.9);
  checkf "singleton" 7.0 (Stats.quantile [| 7.0 |] 0.25);
  Alcotest.(check bool)
    "empty is nan" true
    (Float.is_nan (Stats.quantile [||] 0.5));
  (* input must not be reordered *)
  Alcotest.(check bool) "no mutation" true (xs = [| 3.0; 1.0; 2.0; 4.0 |])

let test_mean_max () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "max" 3.0 (Stats.max_value [| 1.0; 3.0; 2.0 |]);
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Stats.mean [||]))

let test_binomial_law () =
  (* pmf sums to 1; cdf at n is 1 *)
  let n = 9 and p = 0.37 in
  let total = ref 0.0 in
  for k = 0 to n do
    total := !total +. Stats.binom_pmf ~n ~p k
  done;
  checkf "pmf sums to 1" 1.0 !total;
  checkf "cdf at n" 1.0 (Stats.binom_cdf ~n ~p n);
  checkf "pmf 0" (0.63 ** 9.0) (Stats.binom_pmf ~n ~p 0);
  (* monotone cdf *)
  for k = 1 to n do
    if Stats.binom_cdf ~n ~p k < Stats.binom_cdf ~n ~p (k - 1) then
      Alcotest.failf "cdf not monotone at %d" k
  done

let test_binomial_accept () =
  (* With 5 reps at confidence 0.9 and significance 0.005 the test
     rejects iff at most 1 rep succeeded: P(X<=1) ~ 4.6e-4 < 0.005 but
     P(X<=2) ~ 8.6e-3 > 0.005. *)
  let accept successes =
    Stats.binomial_accept ~trials:5 ~successes ~null_p:0.9
      ~significance:0.005
  in
  List.iter
    (fun (s, expect_pass) ->
      let v = accept s in
      Alcotest.(check bool)
        (Printf.sprintf "%d/5 pass" s)
        expect_pass v.Stats.pass;
      if v.Stats.p_value < 0.0 || v.Stats.p_value > 1.0 then
        Alcotest.failf "p-value out of range: %g" v.Stats.p_value)
    [ (0, false); (1, false); (2, true); (3, true); (5, true) ];
  checkf ~eps:1e-6 "p-value 1/5"
    (Stats.binom_cdf ~n:5 ~p:0.9 1)
    (accept 1).Stats.p_value;
  Alcotest.check_raises "trials 0"
    (Invalid_argument "Stats.binomial_accept: trials must be > 0")
    (fun () -> ignore (Stats.binomial_accept ~trials:0 ~successes:0
                         ~null_p:0.9 ~significance:0.005))

(* Degenerate inputs the acceptance machinery must survive without NaN
   or misordered results: boundary quantile ranks, NaN ranks, p at the
   {0, 1} parameter boundary, single-trial laws, and out-of-range k. *)
let test_stats_boundaries () =
  (* quantile: q at the boundaries on a singleton, and a NaN q must be
     rejected, not silently propagated into the rank arithmetic. *)
  checkf "singleton q0" 5.0 (Stats.quantile [| 5.0 |] 0.0);
  checkf "singleton q1" 5.0 (Stats.quantile [| 5.0 |] 1.0);
  Alcotest.check_raises "nan q rejected"
    (Invalid_argument "Stats.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.quantile [| 1.0; 2.0 |] Float.nan));
  Alcotest.check_raises "q over 1 rejected"
    (Invalid_argument "Stats.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.quantile [| 1.0; 2.0 |] 1.5));
  (* binomial pmf at the parameter boundaries: all mass on one point,
     never NaN (the log-space form would produce log 0 here). *)
  checkf "p=0 all mass at 0" 1.0 (Stats.binom_pmf ~n:7 ~p:0.0 0);
  checkf "p=0 elsewhere" 0.0 (Stats.binom_pmf ~n:7 ~p:0.0 3);
  checkf "p=1 all mass at n" 1.0 (Stats.binom_pmf ~n:7 ~p:1.0 7);
  checkf "p=1 elsewhere" 0.0 (Stats.binom_pmf ~n:7 ~p:1.0 6);
  (* out-of-range k is probability zero, not garbage from the falling
     factorial. *)
  checkf "k < 0" 0.0 (Stats.binom_pmf ~n:5 ~p:0.4 (-1));
  checkf "k > n" 0.0 (Stats.binom_pmf ~n:5 ~p:0.4 6);
  checkf "cdf k < 0" 0.0 (Stats.binom_cdf ~n:5 ~p:0.4 (-1));
  checkf "cdf k >= n" 1.0 (Stats.binom_cdf ~n:5 ~p:0.4 5);
  (* n = 1: the two-point law, and the acceptance verdict on it. *)
  checkf "n=1 pmf 0" 0.6 (Stats.binom_pmf ~n:1 ~p:0.4 0);
  checkf "n=1 pmf 1" 0.4 (Stats.binom_pmf ~n:1 ~p:0.4 1);
  let v1 =
    Stats.binomial_accept ~trials:1 ~successes:1 ~null_p:0.9
      ~significance:0.005
  in
  Alcotest.(check bool) "1/1 passes" true v1.Stats.pass;
  (* all-successes / all-failures at the null_p boundaries: p_values are
     exact 1 and 0, never NaN. *)
  let all_good =
    Stats.binomial_accept ~trials:5 ~successes:5 ~null_p:1.0
      ~significance:0.005
  in
  checkf "5/5 under null_p=1" 1.0 all_good.Stats.p_value;
  Alcotest.(check bool) "5/5 passes" true all_good.Stats.pass;
  let all_bad =
    Stats.binomial_accept ~trials:5 ~successes:0 ~null_p:1.0
      ~significance:0.005
  in
  checkf "0/5 under null_p=1" 0.0 all_bad.Stats.p_value;
  Alcotest.(check bool) "0/5 fails" false all_bad.Stats.pass;
  let free =
    Stats.binomial_accept ~trials:5 ~successes:0 ~null_p:0.0
      ~significance:0.005
  in
  Alcotest.(check bool) "0/5 under null_p=0 passes" true free.Stats.pass;
  if Float.is_nan free.Stats.p_value then Alcotest.fail "p-value NaN"

(* ------------------------------------------------------------------ *)
(* Artifact *)

let mk_opt ?(opt_ratio_max = 8.0) ?(opt_pass = true) () =
  {
    Artifact.opt_lb_bytes = 512.0;
    opt_ratio_mean = opt_ratio_max /. 2.0;
    opt_ratio_max;
    opt_ceiling = 120.0;
    opt_pass;
  }

let mk_cell ?(id = "cell-a") ?(accept_pass = true) ?(bytes_pass = true)
    ?(ratio_max = 0.5) ?(err_p90 = 0.04) ?faults ?topology
    ?(opt = Some (mk_opt ())) () =
  {
    Artifact.id;
    family = "dc";
    algorithm = "LS";
    sketch = "fm";
    alpha = 0.1;
    delta = 0.1;
    sites = 4;
    events = 1000;
    workload = "zipf";
    transport = "sim";
    faults;
    topology;
    reps = 5;
    successes = (if accept_pass then 5 else 1);
    accept_pass;
    p_value = (if accept_pass then 1.0 else 0.00046);
    err_mean = 0.03;
    err_p50 = 0.03;
    err_p90;
    err_max = err_p90 +. 0.01;
    bytes_mean = 1234.5;
    ratio_mean = ratio_max /. 2.0;
    ratio_max;
    ratio_ceiling = 2.0;
    bytes_pass;
    opt;
    msgs_mean = 42.0;
    wall_s = 0.125;
    rep_wall_s =
      Some { Artifact.q_p50 = 0.02; q_p90 = 0.03; q_max = 0.031 };
    batch_span_ns =
      Some { Artifact.q_p50 = 250_000.0; q_p90 = 900_000.0; q_max = 1.2e6 };
  }

let mk_artifact cells =
  {
    Artifact.grid = "small";
    base_seed = 42;
    reps = 5;
    significance = 0.005;
    cells;
  }

(* Artifacts written before the informational timing digests existed
   (e.g. the committed baseline) must still load, with the new fields
   reading as None — and a cell without digests must roundtrip as-is. *)
let test_artifact_lenient_timing () =
  let t = mk_artifact [ mk_cell () ] in
  let stripped =
    let open Wd_obs.Json in
    match Artifact.to_json t with
    | Obj fields ->
      Obj
        (List.map
           (function
             | ("cells", List cells) ->
               ( "cells",
                 List
                   (List.map
                      (function
                        | Obj cf ->
                          Obj
                            (List.filter
                               (fun (k, _) ->
                                 k <> "rep_wall_s" && k <> "batch_span_ns"
                                 && k <> "opt" && k <> "topology")
                               cf)
                        | j -> j)
                      cells) )
             | kv -> kv)
           fields)
    | j -> j
  in
  (match Artifact.of_json stripped with
  | Ok t' ->
    List.iter
      (fun (c : Artifact.cell_result) ->
        Alcotest.(check bool) "rep_wall_s is None" true (c.rep_wall_s = None);
        Alcotest.(check bool)
          "batch_span_ns is None" true
          (c.batch_span_ns = None);
        Alcotest.(check bool) "opt is None" true (c.Artifact.opt = None);
        Alcotest.(check bool)
          "pre-opt cells pass the gate trivially" true
          (Artifact.cell_pass c))
      t'.Artifact.cells
  | Error e -> Alcotest.failf "stripped artifact rejected: %s" e);
  let none =
    mk_artifact
      [ { (mk_cell ()) with Artifact.rep_wall_s = None; batch_span_ns = None } ]
  in
  match Artifact.of_json (Artifact.to_json none) with
  | Ok t' -> Alcotest.(check bool) "digest-free roundtrip" true (none = t')
  | Error e -> Alcotest.failf "digest-free artifact rejected: %s" e

let test_artifact_roundtrip () =
  let t =
    mk_artifact
      [ mk_cell (); mk_cell ~id:"cell-b" ~faults:"drop=0.05" ~ratio_max:1.9 () ]
  in
  (match Artifact.of_json (Artifact.to_json t) with
  | Ok t' -> Alcotest.(check bool) "json roundtrip" true (t = t')
  | Error e -> Alcotest.failf "of_json failed: %s" e);
  (* through the actual text rendering too (%.17g floats: lossless) *)
  (match
     Artifact.of_string (Wd_obs.Json.to_string_pretty (Artifact.to_json t))
   with
  | Ok t' -> Alcotest.(check bool) "string roundtrip" true (t = t')
  | Error e -> Alcotest.failf "of_string failed: %s" e);
  Alcotest.(check bool) "passes" true (Artifact.pass t);
  Alcotest.(check bool)
    "failing cell fails artifact" false
    (Artifact.pass (mk_artifact [ mk_cell ~accept_pass:false () ]));
  Alcotest.(check bool)
    "optimality-gap failure fails artifact" false
    (Artifact.pass
       (mk_artifact [ mk_cell ~opt:(Some (mk_opt ~opt_pass:false ())) () ]));
  (* topology and opt survive the roundtrip *)
  let topo =
    mk_artifact [ mk_cell ~id:"cell-t" ~topology:"tree:regions=2" () ]
  in
  match Artifact.of_json (Artifact.to_json topo) with
  | Ok t' -> Alcotest.(check bool) "topology roundtrip" true (topo = t')
  | Error e -> Alcotest.failf "topology cell rejected: %s" e

let test_artifact_version_gate () =
  match Artifact.of_string {|{"version":"wd-eval/999","grid":"x"}|} with
  | Ok _ -> Alcotest.fail "accepted an unknown artifact version"
  | Error e ->
    Alcotest.(check bool)
      "error names the version" true
      (let re = "wd-eval/999" in
       let len = String.length re in
       let rec find i =
         i + len <= String.length e && (String.sub e i len = re || find (i + 1))
       in
       find 0)

let test_artifact_csv () =
  let t = mk_artifact [ mk_cell (); mk_cell ~id:"cell-b" () ] in
  let csv = Artifact.to_csv t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  Alcotest.(check int) "header + one row per cell" 3 (List.length lines);
  let header = List.hd lines in
  let cols = String.split_on_char ',' header in
  List.iter
    (fun row ->
      Alcotest.(check int)
        "row width matches header" (List.length cols)
        (List.length (String.split_on_char ',' row)))
    (List.tl lines);
  Alcotest.(check bool)
    "header has id column" true
    (List.mem "id" cols)

let test_diff_gates () =
  let baseline = mk_artifact [ mk_cell () ] in
  let clean_of current = Artifact.clean (Artifact.diff ~baseline ~current) in
  Alcotest.(check bool) "identical is clean" true (clean_of baseline);
  Alcotest.(check bool)
    "missing cell regresses" false
    (clean_of (mk_artifact []));
  Alcotest.(check bool)
    "accuracy flip regresses" false
    (clean_of (mk_artifact [ mk_cell ~accept_pass:false () ]));
  Alcotest.(check bool)
    "bytes flip regresses" false
    (clean_of (mk_artifact [ mk_cell ~bytes_pass:false () ]));
  Alcotest.(check bool)
    "ratio drift past 1.5x regresses" false
    (clean_of (mk_artifact [ mk_cell ~ratio_max:0.8 () ]));
  Alcotest.(check bool)
    "ratio drift under 1.5x is clean" true
    (clean_of (mk_artifact [ mk_cell ~ratio_max:0.7 () ]));
  Alcotest.(check bool)
    "err drift past the gate regresses" false
    (clean_of (mk_artifact [ mk_cell ~err_p90:0.08 () ]));
  Alcotest.(check bool)
    "optimality flip regresses" false
    (clean_of
       (mk_artifact [ mk_cell ~opt:(Some (mk_opt ~opt_pass:false ())) () ]));
  Alcotest.(check bool)
    "optimality drift past 1.5x regresses" false
    (clean_of
       (mk_artifact [ mk_cell ~opt:(Some (mk_opt ~opt_ratio_max:13.0 ())) () ]));
  Alcotest.(check bool)
    "optimality drift under 1.5x is clean" true
    (clean_of
       (mk_artifact [ mk_cell ~opt:(Some (mk_opt ~opt_ratio_max:11.0 ())) () ]));
  Alcotest.(check bool)
    "losing the optimality columns regresses" false
    (clean_of (mk_artifact [ mk_cell ~opt:None () ]));
  (* near-zero baselines get the 0.01 absolute floor *)
  let tiny = mk_artifact [ mk_cell ~err_p90:0.001 () ] in
  Alcotest.(check bool)
    "error floor absorbs noise on tiny baselines" true
    (Artifact.clean
       (Artifact.diff ~baseline:tiny
          ~current:(mk_artifact [ mk_cell ~err_p90:0.009 () ])));
  (* a new cell is a note, not a regression *)
  let d =
    Artifact.diff ~baseline
      ~current:(mk_artifact [ mk_cell (); mk_cell ~id:"cell-new" () ])
  in
  Alcotest.(check bool) "new cell is clean" true (Artifact.clean d);
  Alcotest.(check bool) "new cell is noted" true (d.Artifact.notes <> [])

(* ------------------------------------------------------------------ *)
(* Runner: a miniature grid, and the handicap bug-detector *)

let tiny_config =
  { Runner.default_config with Runner.reps = 5; base_seed = 7 }

let test_runner_exact_cell () =
  let cell = Spec.base ~events:4_000 ~sites:3 (Spec.Dc Dc.EC) in
  let r = Runner.run_cell tiny_config cell in
  Alcotest.(check string) "id" (Spec.id cell) r.Artifact.id;
  Alcotest.(check int) "reps" 5 r.Artifact.reps;
  Alcotest.(check int) "all in band" 5 r.Artifact.successes;
  Alcotest.(check bool) "accept" true r.Artifact.accept_pass;
  Alcotest.(check bool) "bytes" true r.Artifact.bytes_pass;
  checkf "exact tracker has zero error" 0.0 r.Artifact.err_max;
  if r.Artifact.ratio_max > 1.01 then
    Alcotest.failf "exact envelope overshoot: %g" r.Artifact.ratio_max;
  if r.Artifact.msgs_mean <= 0.0 then
    Alcotest.failf "no messages measured: %g" r.Artifact.msgs_mean

let test_runner_sketch_cell_deterministic () =
  let cell = Spec.base ~events:6_000 ~alpha:0.2 (Spec.Dc Dc.LS) in
  let a = Runner.run_cell tiny_config cell in
  let b = Runner.run_cell tiny_config cell in
  (* The informational timing digests are wall-clock measurements, so
     only the logical fields are required to reproduce. *)
  let untimed c =
    {
      c with
      Artifact.wall_s = 0.0;
      rep_wall_s = None;
      batch_span_ns = None;
    }
  in
  Alcotest.(check bool)
    "rerun reproduces everything but wall time" true
    (untimed a = untimed b);
  Alcotest.(check bool) "cell passes" true (Artifact.cell_pass a);
  Alcotest.(check bool)
    "per-rep wall digest measured" true
    (a.Artifact.rep_wall_s <> None);
  Alcotest.(check bool)
    "observe_batch span digest measured" true
    (a.Artifact.batch_span_ns <> None);
  (match a.Artifact.batch_span_ns with
  | Some q ->
    if not (q.Artifact.q_p50 >= 0.0 && q.Artifact.q_p50 <= q.Artifact.q_max)
    then
      Alcotest.failf "span digest out of order: p50 %g max %g"
        q.Artifact.q_p50 q.Artifact.q_max
  | None -> ());
  if a.Artifact.bytes_mean <= 0.0 then Alcotest.fail "no traffic measured"

let test_runner_grid_artifact () =
  let cells =
    [
      Spec.base ~events:3_000 (Spec.Dc Dc.EC);
      Spec.base ~events:3_000 ~alpha:0.2 (Spec.Ds Ds.EDS);
    ]
  in
  let t = Runner.run_grid ~name:"tiny" tiny_config cells in
  Alcotest.(check string) "grid name" "tiny" t.Artifact.grid;
  Alcotest.(check int) "cell count" 2 (List.length t.Artifact.cells);
  Alcotest.(check int) "base seed recorded" 7 t.Artifact.base_seed;
  Alcotest.(check bool) "grid passes" true (Artifact.pass t)

let test_handicap_detected () =
  (* The injected-bug dial must flip the DS acceptance verdict: handicap
     h inflates the count-lag theta by h^2 while the verdict still
     judges against the honest alpha, so err_max lands deterministically
     outside the band (Lemma 2 makes the lag, and hence the failure,
     non-probabilistic). *)
  let cell = Spec.base ~events:30_000 (Spec.Ds Ds.LCO) in
  let honest = Runner.run_cell tiny_config cell in
  Alcotest.(check bool) "honest run passes" true honest.Artifact.accept_pass;
  let rigged =
    Runner.run_cell { tiny_config with Runner.handicap = 2.0 } cell
  in
  Alcotest.(check bool)
    "handicapped run fails acceptance" false rigged.Artifact.accept_pass;
  Alcotest.(check int) "no rep survives" 0 rigged.Artifact.successes;
  if rigged.Artifact.p_value >= 0.005 then
    Alcotest.failf "failure not significant: p = %g" rigged.Artifact.p_value

let test_handicap_detected_mle () =
  (* Same dial on the new grid axes: a concentrated-hashing cell running
     the MLE estimator.  Scaling accuracy by sqrt(h) shrinks the bucket
     count h-fold, so the widened MLE must push enough repetitions out
     of the honest alpha band to flip the binomial verdict — proving the
     acceptance machinery is live for the new cells, not vacuously
     green. *)
  let cell =
    Spec.base ~sketch:Spec.Fmc ~estimator:Spec.Mle ~events:30_000
      (Spec.Dc Dc.LS)
  in
  let honest = Runner.run_cell tiny_config cell in
  Alcotest.(check bool) "honest run passes" true honest.Artifact.accept_pass;
  Alcotest.(check string)
    "artifact records the estimator" "fmc+mle" honest.Artifact.sketch;
  let rigged =
    Runner.run_cell { tiny_config with Runner.handicap = 16.0 } cell
  in
  Alcotest.(check bool)
    "handicapped run fails acceptance" false rigged.Artifact.accept_pass;
  if rigged.Artifact.p_value >= 0.005 then
    Alcotest.failf "failure not significant: p = %g" rigged.Artifact.p_value

(* ------------------------------------------------------------------ *)
(* wdmon inspect on an empty trace (CLI regression) *)

(* Under [dune runtest] the cwd is [_build/default/test]; under
   [dune exec] it is the project root — look in both places. *)
let wdmon =
  List.find_opt Sys.file_exists
    [
      Filename.concat ".." (Filename.concat "bin" "wdmon.exe");
      "_build/default/bin/wdmon.exe";
    ]

let contains text re =
  let len = String.length re in
  let rec find i =
    i + len <= String.length text && (String.sub text i len = re || find (i + 1))
  in
  find 0

(* Run a shell command, capturing combined output; fail the test on a
   nonzero exit unless [expect_fail]. *)
let run_cli ?(expect_fail = false) cmd =
  let out =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wd-cli-%d-%d.out" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let status = Sys.command (cmd ^ " > " ^ Filename.quote out ^ " 2>&1") in
      let text = In_channel.with_open_bin out In_channel.input_all in
      if (status <> 0) <> expect_fail then
        Alcotest.failf "%s exited %d:\n%s" cmd status text;
      text)

let test_inspect_empty_trace () =
  match wdmon with
  | None -> Alcotest.skip ()
  | Some wdmon ->
    let dir = Filename.get_temp_dir_name () in
    let trace =
      Filename.concat dir (Printf.sprintf "wd-empty-%d.jsonl" (Unix.getpid ()))
    in
    let oc = open_out trace in
    close_out oc;
    Fun.protect
      ~finally:(fun () -> try Sys.remove trace with Sys_error _ -> ())
      (fun () ->
        let text =
          run_cli
            (Printf.sprintf "%s inspect %s" (Filename.quote wdmon)
               (Filename.quote trace))
        in
        Alcotest.(check bool)
          "says the trace is empty" true
          (contains text "empty trace"))

(* Record a small simulator run's trace via the CLI; returns the path. *)
let record_trace wdmon ~faults ~tag =
  let trace =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wd-%s-%d.jsonl" tag (Unix.getpid ()))
  in
  let fault_args =
    if faults then " --faults drop=0.05,dup=0.05 --fault-seed 7" else ""
  in
  ignore
    (run_cli
       (Printf.sprintf
          "%s dc --workload http-pairs --scale 0.2 --sites 3 --trace-out %s%s"
          (Filename.quote wdmon) (Filename.quote trace) fault_args));
  trace

(* inspect reads a trace from stdin when the path is "-". *)
let test_inspect_stdin () =
  match wdmon with
  | None -> Alcotest.skip ()
  | Some wdmon ->
    let trace = record_trace wdmon ~faults:false ~tag:"stdin" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove trace with Sys_error _ -> ())
      (fun () ->
        let text =
          run_cli
            (Printf.sprintf "%s inspect - < %s" (Filename.quote wdmon)
               (Filename.quote trace))
        in
        Alcotest.(check bool)
          "renders the site table" true (contains text "mean gap");
        Alcotest.(check bool)
          "names the stdin source" true (contains text "trace summary: -"))

(* The site table's fault columns appear only when the trace actually
   contains fault events. *)
let test_inspect_fault_columns () =
  match wdmon with
  | None -> Alcotest.skip ()
  | Some wdmon ->
    let clean = record_trace wdmon ~faults:false ~tag:"clean" in
    let faulty = record_trace wdmon ~faults:true ~tag:"faulty" in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ clean; faulty ])
      (fun () ->
        let inspect path =
          run_cli
            (Printf.sprintf "%s inspect %s" (Filename.quote wdmon)
               (Filename.quote path))
        in
        let clean_text = inspect clean in
        Alcotest.(check bool)
          "clean trace hides fault columns" false
          (contains clean_text "cr/rec");
        Alcotest.(check bool)
          "clean trace still has the site table" true
          (contains clean_text "mean gap");
        let faulty_text = inspect faulty in
        Alcotest.(check bool)
          "faulted trace shows fault columns" true
          (contains faulty_text "cr/rec");
        Alcotest.(check bool)
          "faulted trace reports drops" true
          (contains faulty_text "dropped transmissions"))

(* wdmon top --trace renders the one-shot dashboard frame. *)
let test_top_trace_frame () =
  match wdmon with
  | None -> Alcotest.skip ()
  | Some wdmon ->
    let trace = record_trace wdmon ~faults:false ~tag:"top" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove trace with Sys_error _ -> ())
      (fun () ->
        let text =
          run_cli
            (Printf.sprintf "%s top --trace %s" (Filename.quote wdmon)
               (Filename.quote trace))
        in
        Alcotest.(check bool)
          "renders headroom column" true (contains text "est/thr");
        Alcotest.(check bool)
          "renders status column" true (contains text "status");
        let missing =
          run_cli ~expect_fail:true
            (Printf.sprintf "%s top --trace %s" (Filename.quote wdmon)
               (Filename.quote (trace ^ ".does-not-exist")))
        in
        Alcotest.(check bool)
          "missing trace is a clean error" true
          (contains missing "no such trace file"))

let () =
  Alcotest.run "eval"
    [
      ( "stats",
        [
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "mean/max" `Quick test_mean_max;
          Alcotest.test_case "binomial law" `Quick test_binomial_law;
          Alcotest.test_case "binomial acceptance" `Quick test_binomial_accept;
          Alcotest.test_case "boundary cases" `Quick test_stats_boundaries;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "lenient timing digests" `Quick
            test_artifact_lenient_timing;
          Alcotest.test_case "version gate" `Quick test_artifact_version_gate;
          Alcotest.test_case "csv shape" `Quick test_artifact_csv;
          Alcotest.test_case "diff gates" `Quick test_diff_gates;
        ] );
      ( "runner",
        [
          Alcotest.test_case "exact cell" `Quick test_runner_exact_cell;
          Alcotest.test_case "deterministic rerun" `Quick
            test_runner_sketch_cell_deterministic;
          Alcotest.test_case "grid artifact" `Quick test_runner_grid_artifact;
          Alcotest.test_case "handicap detected" `Slow test_handicap_detected;
          Alcotest.test_case "handicap detected (fmc+mle)" `Slow
            test_handicap_detected_mle;
        ] );
      ( "cli",
        [
          Alcotest.test_case "inspect empty trace" `Quick
            test_inspect_empty_trace;
          Alcotest.test_case "inspect stdin" `Quick test_inspect_stdin;
          Alcotest.test_case "inspect fault columns" `Quick
            test_inspect_fault_columns;
          Alcotest.test_case "top trace frame" `Quick test_top_trace_frame;
        ] );
    ]
