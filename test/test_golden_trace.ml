(* Golden-trace regression tests: fixed-seed DC and DS runs pinned to
   exact byte totals and event counts captured from the reliable-channel
   implementation.  A protocol-cost regression — or any fault-injection
   change that leaks into the no-fault path — fails these loudly instead
   of silently shifting every benchmark.  The DC constants were
   re-pinned when the linear-counting crossover became a blend
   (Estimators.linear_blend): the ramp-up estimates changed, so the
   threshold-crossing counts moved with them. *)

module Sim = Whats_different.Simulation
module Query = Wd_view.Query
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Network = Wd_net.Network
module Sink = Wd_obs.Sink
module Summary = Wd_obs.Summary
module Stream_gen = Wd_workload.Stream_gen

let golden_stream () =
  Stream_gen.zipf ~seed:11 ~sites:4 ~events:20_000 ~universe:6_000 ()

let check_kinds ~expected (summary : Summary.t) =
  List.iter
    (fun (kind, count) ->
      let got =
        Option.value ~default:0 (List.assoc_opt kind summary.kind_counts)
      in
      Alcotest.(check int) (Printf.sprintf "%s events" kind) count got)
    expected;
  (* And nothing unexpected appeared (e.g. stray fault events). *)
  List.iter
    (fun (kind, count) ->
      if not (List.mem_assoc kind expected) then
        Alcotest.failf "unexpected event kind %s (%d occurrences)" kind count)
    summary.kind_counts

let dc_ls_unicast () =
  let ring = Sink.ring ~capacity:8192 in
  let run =
    Sim.run ~seed:7 ~sink:ring
      (Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS)
      (golden_stream ())
  in
  Alcotest.(check int) "bytes up" 14204 run.Sim.bytes_up;
  Alcotest.(check int) "bytes down" 19140 run.Sim.bytes_down;
  Alcotest.(check int) "total bytes" 33344 run.Sim.total_bytes;
  Alcotest.(check int) "sends" 449 run.Sim.sends;
  Alcotest.(check (float 1e-6)) "estimate" 3362.014438 run.Sim.final_estimate;
  Alcotest.(check int) "truth" 3536 run.Sim.final_truth;
  let summary = Summary.of_events (Sink.ring_contents ring) in
  check_kinds summary
    ~expected:
      [
        ("estimate_update", 445);
        ("message", 898);
        ("resync", 449);
        ("run_meta", 1);
        ("sketch_sent", 449);
        ("threshold_crossed", 449);
      ];
  Alcotest.(check int) "trace bytes up = ledger" 14204 summary.Summary.bytes_up;
  Alcotest.(check int) "trace bytes down = ledger" 19140
    summary.Summary.bytes_down;
  Alcotest.(check int) "medium bytes" 0 summary.Summary.medium_bytes

let dc_ss_radio () =
  let ring = Sink.ring ~capacity:8192 in
  let run =
    Sim.run ~seed:7 ~cost_model:Network.Radio_broadcast ~sink:ring
      (Query.dc ~theta:0.03 ~alpha:0.07 Dc.SS)
      (golden_stream ())
  in
  Alcotest.(check int) "bytes up" 13920 run.Sim.bytes_up;
  Alcotest.(check int) "bytes down" 1633576 run.Sim.bytes_down;
  Alcotest.(check int) "total bytes" 1647496 run.Sim.total_bytes;
  Alcotest.(check int) "sends" 434 run.Sim.sends;
  Alcotest.(check (float 1e-6)) "estimate" 3386.897246
    run.Sim.final_estimate;
  let summary = Summary.of_events (Sink.ring_contents ring) in
  check_kinds summary
    ~expected:
      [
        ("broadcast", 434);
        ("estimate_update", 434);
        ("message", 434);
        ("run_meta", 1);
        ("sketch_sent", 434);
        ("threshold_crossed", 434);
      ];
  Alcotest.(check int) "medium bytes = all broadcast traffic" 1633576
    summary.Summary.medium_bytes

let ds_gcs () =
  let ring = Sink.ring ~capacity:16384 in
  let run =
    Sim.run ~seed:7 ~sink:ring
      (Query.ds ~theta:0.25 ~threshold:256 Ds.GCS)
      (golden_stream ())
  in
  Alcotest.(check int) "bytes up" 35640 run.Sim.bytes_up;
  Alcotest.(check int) "bytes down" 106820 run.Sim.bytes_down;
  Alcotest.(check int) "total bytes" 142460 run.Sim.total_bytes;
  Alcotest.(check int) "sends" 1782 run.Sim.sends;
  let final_level, max_count_error =
    match run.Sim.aux with
    | Sim.Ds_aux { level; max_count_error; _ } -> (level, max_count_error)
    | _ -> Alcotest.fail "ds run must carry Ds_aux"
  in
  Alcotest.(check int) "final level" 4 final_level;
  Alcotest.(check (float 1e-6)) "distinct estimate" 3120.0
    run.Sim.final_estimate;
  Alcotest.(check (float 1e-6)) "max count error" 0.146341 max_count_error;
  let summary = Summary.of_events (Sink.ring_contents ring) in
  check_kinds summary
    ~expected:
      [
        ("broadcast", 1783);
        ("count_sent", 1782);
        ("level_advance", 4);
        ("message", 1782);
        ("run_meta", 1);
        ("threshold_crossed", 1782);
      ];
  Alcotest.(check int) "trace bytes up = ledger" 35640 summary.Summary.bytes_up;
  Alcotest.(check int) "trace bytes down = ledger" 106820
    summary.Summary.bytes_down

let () =
  Alcotest.run "golden_trace"
    [
      ( "golden",
        [
          Alcotest.test_case "dc ls unicast" `Quick dc_ls_unicast;
          Alcotest.test_case "dc ss radio" `Quick dc_ss_radio;
          Alcotest.test_case "ds gcs" `Quick ds_gcs;
        ] );
    ]
