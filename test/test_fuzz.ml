(* Mutation fuzzing of the binary decoders and the topology-spec
   parser: Wire.Frame headers (including the multi-hop aggregator relay
   path), Trace_io trace files, and Topology.of_spec.  Start from a
   valid encoding, corrupt it (bit flips, truncations, length/count
   field garbage, spliced spec text), and require the decoder to answer
   with its typed error channel — Ok/Error for frame headers and
   topology specs, the Trace_io.Error exception for loaders — and never
   leak Invalid_argument, Out_of_memory, or friends. *)

module Frame = Wd_net.Wire.Frame
module Trace_io = Wd_workload.Trace_io
module Stream = Wd_workload.Stream
module Topology = Wd_net.Topology

let kinds =
  [|
    Frame.Hello;
    Frame.Welcome;
    Frame.Deliver;
    Frame.Request_up;
    Frame.Up;
    Frame.Finish;
    Frame.Stats;
    Frame.Reject;
  |]

(* One fuzz case: a valid header plus a mutation plan.  Everything is
   plain ints so cases print and shrink naturally. *)
type frame_case = {
  kind_i : int;
  site : int;
  length : int;
  spanned : int;  (* 1 = frame carries a span context block *)
  mutation : int;  (* 0 = none, 1 = bit flip, 2 = truncate, 3 = garbage length *)
  m_a : int;  (* mutation operand: byte index / kept prefix / random word *)
  m_b : int;  (* mutation operand: bit index / spare randomness *)
}

let show_frame_case c =
  Printf.sprintf "{kind=%d site=%d len=%d span=%d mut=%d a=%d b=%d}" c.kind_i
    c.site c.length c.spanned c.mutation c.m_a c.m_b

let gen_frame_case rng =
  {
    kind_i = Prop.int_range 0 (Array.length kinds - 1) rng;
    site = Prop.int_range 0 0xFFFF rng;
    length = Prop.int_range 0 Frame.max_payload rng;
    spanned = Prop.int_range 0 1 rng;
    mutation = Prop.int_range 0 3 rng;
    m_a = Prop.int_range 0 0x3FFFFFFF rng;
    m_b = Prop.int_range 0 0x3FFFFFFF rng;
  }

let shrink_frame_case c =
  List.concat
    [
      List.map (fun site -> { c with site }) (Prop.shrink_int c.site);
      List.map (fun length -> { c with length }) (Prop.shrink_int c.length);
      List.map (fun m_a -> { c with m_a }) (Prop.shrink_int c.m_a);
      List.map (fun m_b -> { c with m_b }) (Prop.shrink_int c.m_b);
    ]

(* Build the (possibly shortened) buffer and decode position.  Spanned
   cases append a 40-byte span context block after the header, with ids
   and stamps derived from the case's randomness; mutations then range
   over the whole buffer, so span bytes get flipped, truncated and
   stomped alongside header bytes. *)
let realize_frame c =
  let total =
    Frame.header_bytes + if c.spanned = 1 then Frame.span_bytes else 0
  in
  let buf = Bytes.create total in
  if c.spanned = 1 then begin
    Frame.encode_header_spanned buf ~pos:0 ~kind:kinds.(c.kind_i) ~site:c.site
      ~length:c.length;
    Frame.encode_span buf ~pos:Frame.header_bytes
      Frame.
        {
          trace_id = Int64.of_int c.m_a;
          span_id = Int64.of_int c.m_b;
          parent_id = Int64.of_int (c.m_a lxor c.m_b);
          t1_ns = Int64.of_int ((c.m_a lsl 20) lor c.m_b);
          t2_ns = Int64.of_int ((c.m_b lsl 20) lor c.m_a);
        }
  end
  else
    Frame.encode_header buf ~pos:0 ~kind:kinds.(c.kind_i) ~site:c.site
      ~length:c.length;
  match c.mutation with
  | 0 -> (buf, 0)
  | 1 ->
    let byte = c.m_a mod total in
    let bit = c.m_b mod 8 in
    Bytes.set_uint8 buf byte (Bytes.get_uint8 buf byte lxor (1 lsl bit));
    (buf, 0)
  | 2 ->
    (* Keep a strict prefix; also exercise pos pointing past the end. *)
    let keep = c.m_a mod total in
    (Bytes.sub buf 0 keep, c.m_b mod (keep + 2))
  | _ ->
    (* Stomp the length field with four random bytes (covers negative
       and far-beyond-max_payload values). *)
    Bytes.set_int32_le buf 8 (Int32.of_int c.m_a);
    (buf, 0)

let frame_decode_total c =
  let buf, pos = realize_frame c in
  match Frame.decode_header buf ~pos with
  | Ok h -> (
    (* Whatever decodes must satisfy the decoder's own invariants; when
       the header announces a span block, reading it must be equally
       total — any 40 bytes are a valid block, fewer are Truncated. *)
    h.Frame.length >= 0
    && h.Frame.length <= Frame.max_payload
    &&
    if not h.Frame.has_span then true
    else
      match Frame.decode_span buf ~pos:(pos + Frame.header_bytes) with
      | Ok _ -> true
      | Error (Frame.Truncated _) ->
        Bytes.length buf - (pos + Frame.header_bytes) < Frame.span_bytes
      | Error _ -> false
      | exception e ->
        Printf.eprintf "decode_span raised %s\n" (Printexc.to_string e);
        false)
  | Error _ -> true
  | exception e ->
    Printf.eprintf "decode_header raised %s\n" (Printexc.to_string e);
    false

let frame_roundtrip c =
  let c = { c with mutation = 0 } in
  let buf, pos = realize_frame c in
  match Frame.decode_header buf ~pos with
  | Ok h ->
    h.Frame.kind = kinds.(c.kind_i)
    && h.Frame.site = c.site
    && h.Frame.length = c.length
    && h.Frame.has_span = (c.spanned = 1)
    && (c.spanned = 0
       ||
       match Frame.decode_span buf ~pos:Frame.header_bytes with
       | Ok s ->
         s.Frame.trace_id = Int64.of_int c.m_a
         && s.Frame.span_id = Int64.of_int c.m_b
       | Error _ | (exception _) -> false)
  | Error _ | (exception _) -> false

let frame_truncation_typed c =
  (* Every strict prefix of a valid header must decode to Truncated
     specifically — the error callers use to wait for more bytes. *)
  let c = { c with mutation = 0 } in
  let buf, _ = realize_frame c in
  let keep = c.m_a mod Frame.header_bytes in
  match Frame.decode_header (Bytes.sub buf 0 keep) ~pos:0 with
  | Error (Frame.Truncated { wanted; got }) ->
    wanted = Frame.header_bytes && got = keep
  | Ok _ | Error _ | (exception _) -> false

let frame_span_prefix_typed c =
  (* A spanned frame cut anywhere inside its span block: the header
     decodes fine, the span block must answer Truncated with the exact
     byte counts — the signal socket readers use to keep the stream in
     sync. *)
  let c = { c with spanned = 1; mutation = 0 } in
  let buf, _ = realize_frame c in
  let keep = Frame.header_bytes + (c.m_a mod Frame.span_bytes) in
  let buf = Bytes.sub buf 0 keep in
  match Frame.decode_header buf ~pos:0 with
  | Ok h -> (
    h.Frame.has_span
    &&
    match Frame.decode_span buf ~pos:Frame.header_bytes with
    | Error (Frame.Truncated { wanted; got }) ->
      wanted = Frame.span_bytes && got = keep - Frame.header_bytes
    | Ok _ | Error _ | (exception _) -> false)
  | Error _ | (exception _) -> false

(* ------------------------------------------------------------------ *)
(* Batch envelopes *)

(* Kind table including Batch itself: a nested envelope is a corruption
   the decoder must answer with Bad_kind, never by recursing. *)
let inner_kinds = Array.append kinds [| Frame.Batch |]

type inner = { i_kind : int; i_site : int; i_len : int; i_span : int }

type batch_case = {
  b_inners : inner list;
  b_delta : int;  (* announced count = real count + (delta - 2) *)
  b_mutation : int;
      (* 0 = none, 1 = bit flip, 2 = truncate, 3 = oversize (append
         garbage), 4 = stomp one inner length field *)
  b_a : int;
  b_b : int;
}

let show_inner i =
  Printf.sprintf "{k=%d s=%d l=%d sp=%d}" i.i_kind i.i_site i.i_len i.i_span

let show_batch_case c =
  Printf.sprintf "{inners=%s delta=%d mut=%d a=%d b=%d}"
    (Prop.show_list show_inner c.b_inners)
    (c.b_delta - 2) c.b_mutation c.b_a c.b_b

let gen_inner rng =
  {
    i_kind = Prop.int_range 0 (Array.length inner_kinds - 1) rng;
    i_site = Prop.int_range 0 0xFFFF rng;
    i_len = Prop.int_range 0 200 rng;
    i_span = Prop.int_range 0 1 rng;
  }

let gen_batch_case rng =
  {
    b_inners = Prop.list ~max_len:8 gen_inner rng;
    b_delta = Prop.int_range 0 4 rng;
    b_mutation = Prop.int_range 0 4 rng;
    b_a = Prop.int_range 0 0x3FFFFFFF rng;
    b_b = Prop.int_range 0 0x3FFFFFFF rng;
  }

let shrink_batch_case c =
  List.concat
    [
      List.map
        (fun b_inners -> { c with b_inners })
        (Prop.shrink_list Prop.no_shrink c.b_inners);
      List.map (fun b_a -> { c with b_a }) (Prop.shrink_int c.b_a);
      List.map (fun b_b -> { c with b_b }) (Prop.shrink_int c.b_b);
    ]

(* Build the inner region (complete back-to-back frames) plus the list
   of header offsets, so the length-stomp mutation can aim precisely at
   a per-frame length field. *)
let realize_batch c =
  let buf = Buffer.create 256 in
  let offsets =
    List.map
      (fun i ->
        let off = Buffer.length buf in
        let kind = inner_kinds.(i.i_kind) in
        let total =
          Frame.header_bytes
          + (if i.i_span = 1 then Frame.span_bytes else 0)
          + i.i_len
        in
        let b = Bytes.make total '\042' in
        if i.i_span = 1 then begin
          Frame.encode_header_spanned b ~pos:0 ~kind ~site:i.i_site
            ~length:i.i_len;
          Frame.encode_span b ~pos:Frame.header_bytes
            Frame.
              {
                trace_id = 1L;
                span_id = 2L;
                parent_id = 0L;
                t1_ns = 3L;
                t2_ns = 4L;
              }
        end
        else Frame.encode_header b ~pos:0 ~kind ~site:i.i_site ~length:i.i_len;
        Buffer.add_bytes buf b;
        off)
      c.b_inners
  in
  let region = Buffer.to_bytes buf in
  let n = Bytes.length region in
  let region =
    match c.b_mutation with
    | 0 -> region
    | 1 when n > 0 ->
      let byte = c.b_a mod n in
      let bit = c.b_b mod 8 in
      Bytes.set_uint8 region byte
        (Bytes.get_uint8 region byte lxor (1 lsl bit));
      region
    | 2 when n > 0 ->
      (* Truncate anywhere: mid-header, mid-span-block, mid-payload. *)
      Bytes.sub region 0 (c.b_a mod n)
    | 3 ->
      (* Oversized region: trailing garbage after the last frame. *)
      let extra = Bytes.make (1 + (c.b_b mod 64)) '\161' in
      Bytes.cat region extra
    | 4 when offsets <> [] ->
      (* Stomp one inner frame's 4-byte length field (negative and
         beyond-max_payload values included). *)
      let off = List.nth offsets (c.b_a mod List.length offsets) in
      Bytes.set_int32_le region (off + 8) (Int32.of_int c.b_b);
      region
    | _ -> region
  in
  (region, List.length c.b_inners + c.b_delta - 2)

let batch_decode_total c =
  let region, count = realize_batch c in
  match Frame.decode_batch region ~count with
  | Ok frames ->
    (* Whatever decodes must satisfy the decoder's contract: exactly the
       announced number of frames, every payload inside the region. *)
    List.length frames = count
    && List.for_all
         (fun (h, _, payload_off) ->
           h.Frame.length >= 0
           && h.Frame.length <= Frame.max_payload
           && payload_off >= 0
           && payload_off + h.Frame.length <= Bytes.length region)
         frames
  | Error _ -> true
  | exception e ->
    Printf.eprintf "decode_batch raised %s\n" (Printexc.to_string e);
    false

let batch_roundtrip c =
  (* A clean envelope (no mutation, true count, no nested Batch kinds)
     must decode to exactly what was encoded, spans included. *)
  let c =
    {
      c with
      b_mutation = 0;
      b_delta = 2;
      b_inners =
        List.map
          (fun i -> { i with i_kind = i.i_kind mod Array.length kinds })
          c.b_inners;
    }
  in
  let region, count = realize_batch c in
  match Frame.decode_batch region ~count with
  | Error _ | (exception _) -> false
  | Ok frames ->
    List.length frames = List.length c.b_inners
    && List.for_all2
         (fun i (h, span, _) ->
           h.Frame.kind = kinds.(i.i_kind mod Array.length kinds)
           && h.Frame.site = i.i_site
           && h.Frame.length = i.i_len
           && h.Frame.has_span = (i.i_span = 1)
           && (span <> None) = (i.i_span = 1))
         c.b_inners frames

let batch_cut_typed c =
  (* Every strict prefix of a clean envelope region is a typed error:
     Truncated when the cut lands inside a frame (header, span block or
     payload), Bad_count when it lands exactly on a frame boundary. *)
  let c =
    {
      c with
      b_mutation = 0;
      b_delta = 2;
      b_inners =
        (match c.b_inners with
        | [] -> [ { i_kind = 2; i_site = 0; i_len = 8; i_span = 1 } ]
        | l -> List.map (fun i -> { i with i_kind = i.i_kind mod Array.length kinds }) l);
    }
  in
  let region, count = realize_batch c in
  let keep = c.b_a mod Bytes.length region in
  match Frame.decode_batch (Bytes.sub region 0 keep) ~count with
  | Error (Frame.Truncated _) -> true
  | Error (Frame.Bad_count { expected; got }) -> expected = count && got < count
  | Ok _ | Error _ | (exception _) -> false

let batch_nested_rejected c =
  (* Force at least one nested envelope among the inner frames. *)
  let c =
    match c.b_inners with
    | [] ->
      {
        c with
        b_mutation = 0;
        b_inners = [ { i_kind = Array.length kinds; i_site = 0; i_len = 0; i_span = 0 } ];
      }
    | l ->
      let nest_at = c.b_a mod List.length l in
      {
        c with
        b_mutation = 0;
        b_inners =
          List.mapi
            (fun j i ->
              if j = nest_at then { i with i_kind = Array.length kinds }
              else { i with i_kind = i.i_kind mod Array.length kinds })
            l;
      }
  in
  let region, _ = realize_batch c in
  match Frame.decode_batch region ~count:(List.length c.b_inners) with
  | Error (Frame.Bad_kind 9) -> true
  | Ok _ | Error _ | (exception _) -> false

(* ------------------------------------------------------------------ *)
(* Per-hop wire path: a frame crossing site -> aggregator -> ... -> root
   is decoded and re-encoded at every hop.  A clean relay must be
   bit-preserving end to end; a corruption injected at any hop must
   surface as a typed decode error at that hop or a later one, never as
   an escaped exception. *)

type hop_case = {
  r_kind : int;
  r_site : int;
  r_len : int;  (* payload bytes, 0..64 *)
  r_span : int;
  r_hops : int;  (* relay chain length, 1..4 *)
  r_mut_hop : int;  (* hop at which the mutation strikes *)
  r_mutation : int;  (* 0 = none, 1 = bit flip, 2 = truncate, 3 = length stomp *)
  r_a : int;
  r_b : int;
}

let show_hop_case c =
  Printf.sprintf
    "{kind=%d site=%d len=%d span=%d hops=%d mut_hop=%d mut=%d a=%d b=%d}"
    c.r_kind c.r_site c.r_len c.r_span c.r_hops c.r_mut_hop c.r_mutation c.r_a
    c.r_b

let gen_hop_case rng =
  {
    r_kind = Prop.int_range 0 (Array.length kinds - 1) rng;
    r_site = Prop.int_range 0 0xFFFF rng;
    r_len = Prop.int_range 0 64 rng;
    r_span = Prop.int_range 0 1 rng;
    r_hops = Prop.int_range 1 4 rng;
    r_mut_hop = Prop.int_range 0 3 rng;
    r_mutation = Prop.int_range 0 3 rng;
    r_a = Prop.int_range 0 0x3FFFFFFF rng;
    r_b = Prop.int_range 0 0x3FFFFFFF rng;
  }

let shrink_hop_case c =
  List.concat
    [
      List.map (fun r_len -> { c with r_len }) (Prop.shrink_int c.r_len);
      List.map (fun r_hops -> { c with r_hops = max 1 r_hops })
        (Prop.shrink_int c.r_hops);
      List.map (fun r_a -> { c with r_a }) (Prop.shrink_int c.r_a);
      List.map (fun r_b -> { c with r_b }) (Prop.shrink_int c.r_b);
    ]

let realize_hop_frame c =
  let total =
    Frame.header_bytes
    + (if c.r_span = 1 then Frame.span_bytes else 0)
    + c.r_len
  in
  let buf = Bytes.make total '\007' in
  if c.r_span = 1 then begin
    Frame.encode_header_spanned buf ~pos:0 ~kind:kinds.(c.r_kind)
      ~site:c.r_site ~length:c.r_len;
    Frame.encode_span buf ~pos:Frame.header_bytes
      Frame.
        {
          trace_id = Int64.of_int c.r_a;
          span_id = Int64.of_int c.r_b;
          parent_id = 5L;
          t1_ns = 6L;
          t2_ns = 7L;
        }
  end
  else
    Frame.encode_header buf ~pos:0 ~kind:kinds.(c.r_kind) ~site:c.r_site
      ~length:c.r_len;
  buf

let corrupt_hop c buf =
  let n = Bytes.length buf in
  match c.r_mutation with
  | 1 when n > 0 ->
    let buf = Bytes.copy buf in
    let byte = c.r_a mod n in
    Bytes.set_uint8 buf byte (Bytes.get_uint8 buf byte lxor (1 lsl (c.r_b mod 8)));
    buf
  | 2 when n > 0 -> Bytes.sub buf 0 (c.r_a mod n)
  | 3 when n >= Frame.header_bytes ->
    let buf = Bytes.copy buf in
    Bytes.set_int32_le buf 8 (Int32.of_int c.r_a);
    buf
  | _ -> buf

(* One relay hop: decode the frame as an aggregator would, then re-emit
   it for the parent.  Returns [Ok next_buf] on a clean decode, [Error
   `Typed] when the decoder answered through its error channel, [Error
   `Escaped] when an exception escaped. *)
let relay_hop buf =
  match Frame.decode_header buf ~pos:0 with
  | exception _ -> Error `Escaped
  | Error _ -> Error `Typed
  | Ok h -> (
    let body_pos =
      Frame.header_bytes + if h.Frame.has_span then Frame.span_bytes else 0
    in
    let span =
      if not h.Frame.has_span then Ok None
      else
        match Frame.decode_span buf ~pos:Frame.header_bytes with
        | Ok s -> Ok (Some s)
        | Error _ -> Error `Typed
        | exception _ -> Error `Escaped
    in
    match span with
    | Error e -> Error e
    | Ok _ when Bytes.length buf < body_pos + h.Frame.length ->
      (* The header promised more payload than arrived: a relay must
         treat this as a truncation, which the framed socket readers
         detect by byte count before re-forwarding. *)
      Error `Typed
    | Ok span ->
      let out = Bytes.make (body_pos + h.Frame.length) '\000' in
      (match span with
      | Some s ->
        Frame.encode_header_spanned out ~pos:0 ~kind:h.Frame.kind
          ~site:h.Frame.site ~length:h.Frame.length;
        Frame.encode_span out ~pos:Frame.header_bytes s
      | None ->
        Frame.encode_header out ~pos:0 ~kind:h.Frame.kind ~site:h.Frame.site
          ~length:h.Frame.length);
      Bytes.blit buf body_pos out body_pos h.Frame.length;
      Ok out)

let relay_clean_preserves c =
  let original = realize_hop_frame c in
  let rec loop buf hop =
    if hop >= c.r_hops then Bytes.equal buf original
    else
      match relay_hop buf with
      | Ok next -> loop next (hop + 1)
      | Error _ -> false
  in
  loop original 0

let relay_corrupted_typed c =
  let c = { c with r_mutation = 1 + (c.r_mutation mod 3) } in
  let mut_hop = c.r_mut_hop mod c.r_hops in
  let rec loop buf hop =
    if hop >= c.r_hops then true
    else
      let buf = if hop = mut_hop then corrupt_hop c buf else buf in
      match relay_hop buf with
      | Ok next -> loop next (hop + 1)
      | Error `Typed -> true
      | Error `Escaped -> false
  in
  loop (realize_hop_frame c) 0

(* ------------------------------------------------------------------ *)
(* Topology specs: of_spec must be total — Ok or Error, never an
   exception — over mutated valid specs and raw token soup, and every
   Ok must round-trip through to_spec. *)

type topo_case = {
  p_form : int;  (* 0 = flat, 1 = tree, 2 = tree+fanout, 3 = edges, 4 = soup *)
  p_sites : int;
  p_r : int;
  p_f : int;
  p_mutation : int;  (* 0 = none, 1 = splice char, 2 = truncate, 3 = append *)
  p_a : int;
  p_b : int;
}

let show_topo_case c =
  Printf.sprintf "{form=%d sites=%d r=%d f=%d mut=%d a=%d b=%d}" c.p_form
    c.p_sites c.p_r c.p_f c.p_mutation c.p_a c.p_b

let gen_topo_case rng =
  {
    p_form = Prop.int_range 0 4 rng;
    p_sites = Prop.int_range 1 8 rng;
    (* r and f range past validity on purpose: regions = 0 or > sites
       and fanout <= 1 must come back as Error. *)
    p_r = Prop.int_range (-1) 10 rng;
    p_f = Prop.int_range (-1) 6 rng;
    p_mutation = Prop.int_range 0 3 rng;
    p_a = Prop.int_range 0 0x3FFFFFFF rng;
    p_b = Prop.int_range 0 0x3FFFFFFF rng;
  }

let shrink_topo_case c =
  List.concat
    [
      List.map (fun p_sites -> { c with p_sites = max 1 p_sites })
        (Prop.shrink_int c.p_sites);
      List.map (fun p_a -> { c with p_a }) (Prop.shrink_int c.p_a);
      List.map (fun p_b -> { c with p_b }) (Prop.shrink_int c.p_b);
    ]

let spec_alphabet = "tree:gions=,fanout flatedgs>r0123456789a;."

let realize_spec c =
  let base =
    match c.p_form with
    | 0 -> "flat"
    | 1 -> Printf.sprintf "tree:regions=%d" c.p_r
    | 2 -> Printf.sprintf "tree:regions=%d,fanout=%d" c.p_r c.p_f
    | 3 -> Topology.to_spec (Topology.random ~seed:c.p_a ~sites:c.p_sites)
    | _ ->
      String.init
        (c.p_b mod 30)
        (fun i ->
          spec_alphabet.[(c.p_a + (i * 7)) mod String.length spec_alphabet])
  in
  let n = String.length base in
  match c.p_mutation with
  | 1 when n > 0 ->
    let i = c.p_a mod n in
    let ch = spec_alphabet.[c.p_b mod String.length spec_alphabet] in
    String.mapi (fun j c0 -> if j = i then ch else c0) base
  | 2 when n > 0 -> String.sub base 0 (c.p_a mod n)
  | 3 ->
    base
    ^ String.init (1 + (c.p_b mod 6)) (fun i ->
          spec_alphabet.[(c.p_a + i) mod String.length spec_alphabet])
  | _ -> base

let topo_of_spec_total c =
  let spec = realize_spec c in
  match Topology.of_spec ~sites:c.p_sites spec with
  | Error _ -> true
  | Ok t -> (
    (* Whatever parses must be internally consistent and round-trip. *)
    Topology.sites t = c.p_sites
    && Topology.depth t >= 1
    &&
    match Topology.of_spec ~sites:c.p_sites (Topology.to_spec t) with
    | Ok t' -> Topology.equal t t'
    | Error _ | (exception _) -> false)
  | exception e ->
    Printf.eprintf "of_spec %S raised %s\n" spec (Printexc.to_string e);
    false

let topo_malformed_rejected c =
  (* One structurally broken spec per case, spanning every rejection
     class the parser documents: bad counts, unknown forms, orphan
     sites, non-dense aggregator ids, cycles. *)
  let sites = 2 + (c.p_sites mod 3) in
  let spec =
    match c.p_a mod 8 with
    | 0 -> "tre:regions=2"
    | 1 -> "tree:regions=0"
    | 2 -> Printf.sprintf "tree:regions=%d" (sites + 1 + (c.p_b mod 5))
    | 3 -> "tree:regions=2,fanout=1"
    | 4 -> "tree:regions=2,fanout=-3"
    | 5 -> "edges:s0>a0,a0>root"  (* s1.. orphaned *)
    | 6 -> "edges:s0>a1,s1>a1,a1>root"  (* a0 missing: non-dense *)
    | _ -> "edges:s0>a0,s1>a1,a0>a1,a1>a0"  (* aggregator cycle *)
  in
  match Topology.of_spec ~sites spec with
  | Error _ -> true
  | Ok _ | (exception _) -> false

(* ------------------------------------------------------------------ *)
(* Trace_io *)

type trace_case = {
  events : (int * int) list;
  t_mutation : int;  (* 0 = none, 1 = bit flip, 2 = truncate, 3 = count field *)
  t_a : int;
  t_b : int;
}

let show_trace_case c =
  Printf.sprintf "{events=%s mut=%d a=%d b=%d}"
    (Prop.show_list
       (Prop.show_pair Prop.show_int Prop.show_int)
       c.events)
    c.t_mutation c.t_a c.t_b

let gen_trace_case rng =
  {
    events =
      Prop.list ~max_len:12
        (Prop.pair (Prop.int_range 0 7) (Prop.int_range 0 1000))
        rng;
    t_mutation = Prop.int_range 0 3 rng;
    t_a = Prop.int_range 0 0x3FFFFFFF rng;
    t_b = Prop.int_range 0 0x3FFFFFFF rng;
  }

let shrink_trace_case c =
  List.concat
    [
      List.map
        (fun events -> { c with events })
        (Prop.shrink_list Prop.no_shrink c.events);
      List.map (fun t_a -> { c with t_a }) (Prop.shrink_int c.t_a);
      List.map (fun t_b -> { c with t_b }) (Prop.shrink_int c.t_b);
    ]

let tmp_name =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wd-fuzz-%d-%d.trace" (Unix.getpid ()) !counter)

let with_tmp_file bytes f =
  let path = tmp_name () in
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let realize_trace c =
  let path = tmp_name () in
  Trace_io.save_binary path (Stream.of_events c.events);
  let bytes =
    In_channel.with_open_bin path (fun ic ->
      Bytes.of_string (In_channel.input_all ic))
  in
  Sys.remove path;
  let n = Bytes.length bytes in
  match c.t_mutation with
  | 0 -> bytes
  | 1 ->
    let byte = c.t_a mod n in
    let bit = c.t_b mod 8 in
    Bytes.set_uint8 bytes byte (Bytes.get_uint8 bytes byte lxor (1 lsl bit));
    bytes
  | 2 -> Bytes.sub bytes 0 (c.t_a mod n)
  | _ ->
    (* Stomp the 8-byte record-count field after the magic: random
       63-bit value, optionally negated — astronomical counts must fail
       as typed truncations, not as gigantic allocations. *)
    let v = Int64.of_int ((c.t_a lsl 30) lxor c.t_b) in
    let v = if c.t_b land 1 = 1 then Int64.neg v else v in
    Bytes.set_int64_le bytes 8 v;
    bytes

let trace_binary_load_typed c =
  let bytes = realize_trace c in
  with_tmp_file bytes (fun path ->
    match Trace_io.load_binary path with
    | (_ : Stream.t) -> true
    | exception Trace_io.Error _ -> true
    | exception e ->
      Printf.eprintf "load_binary raised %s\n" (Printexc.to_string e);
      false)

let trace_binary_roundtrip c =
  let c = { c with t_mutation = 0 } in
  let bytes = realize_trace c in
  with_tmp_file bytes (fun path ->
    match Trace_io.load_binary path with
    | s ->
      Stream.length s = List.length c.events
      && List.for_all2
           (fun (site, item) j -> Stream.site s j = site && Stream.item s j = item)
           c.events
           (List.init (Stream.length s) Fun.id)
    | exception _ -> false)

(* CSV: corrupt the text with a printable-garbage splice or truncation;
   the loader must answer with Malformed_line (or parse fine: plenty of
   corruptions still read as valid integer pairs). *)
let trace_csv_load_typed c =
  let path = tmp_name () in
  Trace_io.save_csv path (Stream.of_events c.events);
  let text = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  let n = String.length text in
  let mutated =
    match c.t_mutation with
    | 0 -> text
    | 1 ->
      let i = c.t_a mod n in
      let garbage = Char.chr (0x20 + (c.t_b mod 0x5f)) in
      String.mapi (fun j ch -> if j = i then garbage else ch) text
    | 2 -> String.sub text 0 (c.t_a mod n)
    | _ -> String.sub text 0 (c.t_a mod n) ^ "#!garbage," ^ string_of_int c.t_b
  in
  with_tmp_file (Bytes.of_string mutated) (fun path ->
    match Trace_io.load_csv path with
    | (_ : Stream.t) -> true
    | exception Trace_io.Error (_, Trace_io.Malformed_line _) -> true
    | exception e ->
      Printf.eprintf "load_csv raised %s\n" (Printexc.to_string e);
      false)

let () =
  Alcotest.run "fuzz"
    [
      ( "frame",
        [
          Prop.test_case ~count:400 ~shrink:shrink_frame_case
            ~show:show_frame_case ~name:"mutated header decode is total"
            gen_frame_case frame_decode_total;
          Prop.test_case ~count:200 ~shrink:shrink_frame_case
            ~show:show_frame_case ~name:"clean header roundtrips"
            gen_frame_case frame_roundtrip;
          Prop.test_case ~count:200 ~shrink:shrink_frame_case
            ~show:show_frame_case ~name:"every strict prefix is Truncated"
            gen_frame_case frame_truncation_typed;
          Prop.test_case ~count:200 ~shrink:shrink_frame_case
            ~show:show_frame_case ~name:"cut span block is Truncated"
            gen_frame_case frame_span_prefix_typed;
        ] );
      ( "batch",
        [
          Prop.test_case ~count:400 ~shrink:shrink_batch_case
            ~show:show_batch_case ~name:"mutated envelope decode is total"
            gen_batch_case batch_decode_total;
          Prop.test_case ~count:200 ~shrink:shrink_batch_case
            ~show:show_batch_case ~name:"clean envelope roundtrips"
            gen_batch_case batch_roundtrip;
          Prop.test_case ~count:200 ~shrink:shrink_batch_case
            ~show:show_batch_case ~name:"every strict prefix is typed"
            gen_batch_case batch_cut_typed;
          Prop.test_case ~count:200 ~shrink:shrink_batch_case
            ~show:show_batch_case ~name:"nested envelope is Bad_kind"
            gen_batch_case batch_nested_rejected;
        ] );
      ( "relay",
        [
          Prop.test_case ~count:200 ~shrink:shrink_hop_case
            ~show:show_hop_case ~name:"clean relay is bit-preserving"
            gen_hop_case relay_clean_preserves;
          Prop.test_case ~count:400 ~shrink:shrink_hop_case
            ~show:show_hop_case
            ~name:"corrupted hop never escapes typed errors" gen_hop_case
            relay_corrupted_typed;
        ] );
      ( "topology",
        [
          Prop.test_case ~count:400 ~shrink:shrink_topo_case
            ~show:show_topo_case ~name:"of_spec is total and round-trips"
            gen_topo_case topo_of_spec_total;
          Prop.test_case ~count:200 ~shrink:shrink_topo_case
            ~show:show_topo_case ~name:"malformed specs are Error"
            gen_topo_case topo_malformed_rejected;
        ] );
      ( "trace_io",
        [
          Prop.test_case ~count:200 ~shrink:shrink_trace_case
            ~show:show_trace_case ~name:"mutated binary load is typed"
            gen_trace_case trace_binary_load_typed;
          Prop.test_case ~count:100 ~shrink:shrink_trace_case
            ~show:show_trace_case ~name:"clean binary roundtrips"
            gen_trace_case trace_binary_roundtrip;
          Prop.test_case ~count:200 ~shrink:shrink_trace_case
            ~show:show_trace_case ~name:"mutated csv load is typed"
            gen_trace_case trace_csv_load_typed;
        ] );
    ]
