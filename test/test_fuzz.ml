(* Mutation fuzzing of the two binary decoders: Wire.Frame headers and
   Trace_io trace files.  Start from a valid encoding, corrupt it (bit
   flips, truncations, length/count-field garbage), and require the
   decoder to answer with its typed error channel — Ok/Error for frame
   headers, the Trace_io.Error exception for loaders — and never leak
   Invalid_argument, Out_of_memory, or friends. *)

module Frame = Wd_net.Wire.Frame
module Trace_io = Wd_workload.Trace_io
module Stream = Wd_workload.Stream

let kinds =
  [|
    Frame.Hello;
    Frame.Welcome;
    Frame.Deliver;
    Frame.Request_up;
    Frame.Up;
    Frame.Finish;
    Frame.Stats;
    Frame.Reject;
  |]

(* One fuzz case: a valid header plus a mutation plan.  Everything is
   plain ints so cases print and shrink naturally. *)
type frame_case = {
  kind_i : int;
  site : int;
  length : int;
  spanned : int;  (* 1 = frame carries a span context block *)
  mutation : int;  (* 0 = none, 1 = bit flip, 2 = truncate, 3 = garbage length *)
  m_a : int;  (* mutation operand: byte index / kept prefix / random word *)
  m_b : int;  (* mutation operand: bit index / spare randomness *)
}

let show_frame_case c =
  Printf.sprintf "{kind=%d site=%d len=%d span=%d mut=%d a=%d b=%d}" c.kind_i
    c.site c.length c.spanned c.mutation c.m_a c.m_b

let gen_frame_case rng =
  {
    kind_i = Prop.int_range 0 (Array.length kinds - 1) rng;
    site = Prop.int_range 0 0xFFFF rng;
    length = Prop.int_range 0 Frame.max_payload rng;
    spanned = Prop.int_range 0 1 rng;
    mutation = Prop.int_range 0 3 rng;
    m_a = Prop.int_range 0 0x3FFFFFFF rng;
    m_b = Prop.int_range 0 0x3FFFFFFF rng;
  }

let shrink_frame_case c =
  List.concat
    [
      List.map (fun site -> { c with site }) (Prop.shrink_int c.site);
      List.map (fun length -> { c with length }) (Prop.shrink_int c.length);
      List.map (fun m_a -> { c with m_a }) (Prop.shrink_int c.m_a);
      List.map (fun m_b -> { c with m_b }) (Prop.shrink_int c.m_b);
    ]

(* Build the (possibly shortened) buffer and decode position.  Spanned
   cases append a 40-byte span context block after the header, with ids
   and stamps derived from the case's randomness; mutations then range
   over the whole buffer, so span bytes get flipped, truncated and
   stomped alongside header bytes. *)
let realize_frame c =
  let total =
    Frame.header_bytes + if c.spanned = 1 then Frame.span_bytes else 0
  in
  let buf = Bytes.create total in
  if c.spanned = 1 then begin
    Frame.encode_header_spanned buf ~pos:0 ~kind:kinds.(c.kind_i) ~site:c.site
      ~length:c.length;
    Frame.encode_span buf ~pos:Frame.header_bytes
      Frame.
        {
          trace_id = Int64.of_int c.m_a;
          span_id = Int64.of_int c.m_b;
          parent_id = Int64.of_int (c.m_a lxor c.m_b);
          t1_ns = Int64.of_int ((c.m_a lsl 20) lor c.m_b);
          t2_ns = Int64.of_int ((c.m_b lsl 20) lor c.m_a);
        }
  end
  else
    Frame.encode_header buf ~pos:0 ~kind:kinds.(c.kind_i) ~site:c.site
      ~length:c.length;
  match c.mutation with
  | 0 -> (buf, 0)
  | 1 ->
    let byte = c.m_a mod total in
    let bit = c.m_b mod 8 in
    Bytes.set_uint8 buf byte (Bytes.get_uint8 buf byte lxor (1 lsl bit));
    (buf, 0)
  | 2 ->
    (* Keep a strict prefix; also exercise pos pointing past the end. *)
    let keep = c.m_a mod total in
    (Bytes.sub buf 0 keep, c.m_b mod (keep + 2))
  | _ ->
    (* Stomp the length field with four random bytes (covers negative
       and far-beyond-max_payload values). *)
    Bytes.set_int32_le buf 8 (Int32.of_int c.m_a);
    (buf, 0)

let frame_decode_total c =
  let buf, pos = realize_frame c in
  match Frame.decode_header buf ~pos with
  | Ok h -> (
    (* Whatever decodes must satisfy the decoder's own invariants; when
       the header announces a span block, reading it must be equally
       total — any 40 bytes are a valid block, fewer are Truncated. *)
    h.Frame.length >= 0
    && h.Frame.length <= Frame.max_payload
    &&
    if not h.Frame.has_span then true
    else
      match Frame.decode_span buf ~pos:(pos + Frame.header_bytes) with
      | Ok _ -> true
      | Error (Frame.Truncated _) ->
        Bytes.length buf - (pos + Frame.header_bytes) < Frame.span_bytes
      | Error _ -> false
      | exception e ->
        Printf.eprintf "decode_span raised %s\n" (Printexc.to_string e);
        false)
  | Error _ -> true
  | exception e ->
    Printf.eprintf "decode_header raised %s\n" (Printexc.to_string e);
    false

let frame_roundtrip c =
  let c = { c with mutation = 0 } in
  let buf, pos = realize_frame c in
  match Frame.decode_header buf ~pos with
  | Ok h ->
    h.Frame.kind = kinds.(c.kind_i)
    && h.Frame.site = c.site
    && h.Frame.length = c.length
    && h.Frame.has_span = (c.spanned = 1)
    && (c.spanned = 0
       ||
       match Frame.decode_span buf ~pos:Frame.header_bytes with
       | Ok s ->
         s.Frame.trace_id = Int64.of_int c.m_a
         && s.Frame.span_id = Int64.of_int c.m_b
       | Error _ | (exception _) -> false)
  | Error _ | (exception _) -> false

let frame_truncation_typed c =
  (* Every strict prefix of a valid header must decode to Truncated
     specifically — the error callers use to wait for more bytes. *)
  let c = { c with mutation = 0 } in
  let buf, _ = realize_frame c in
  let keep = c.m_a mod Frame.header_bytes in
  match Frame.decode_header (Bytes.sub buf 0 keep) ~pos:0 with
  | Error (Frame.Truncated { wanted; got }) ->
    wanted = Frame.header_bytes && got = keep
  | Ok _ | Error _ | (exception _) -> false

let frame_span_prefix_typed c =
  (* A spanned frame cut anywhere inside its span block: the header
     decodes fine, the span block must answer Truncated with the exact
     byte counts — the signal socket readers use to keep the stream in
     sync. *)
  let c = { c with spanned = 1; mutation = 0 } in
  let buf, _ = realize_frame c in
  let keep = Frame.header_bytes + (c.m_a mod Frame.span_bytes) in
  let buf = Bytes.sub buf 0 keep in
  match Frame.decode_header buf ~pos:0 with
  | Ok h -> (
    h.Frame.has_span
    &&
    match Frame.decode_span buf ~pos:Frame.header_bytes with
    | Error (Frame.Truncated { wanted; got }) ->
      wanted = Frame.span_bytes && got = keep - Frame.header_bytes
    | Ok _ | Error _ | (exception _) -> false)
  | Error _ | (exception _) -> false

(* ------------------------------------------------------------------ *)
(* Batch envelopes *)

(* Kind table including Batch itself: a nested envelope is a corruption
   the decoder must answer with Bad_kind, never by recursing. *)
let inner_kinds = Array.append kinds [| Frame.Batch |]

type inner = { i_kind : int; i_site : int; i_len : int; i_span : int }

type batch_case = {
  b_inners : inner list;
  b_delta : int;  (* announced count = real count + (delta - 2) *)
  b_mutation : int;
      (* 0 = none, 1 = bit flip, 2 = truncate, 3 = oversize (append
         garbage), 4 = stomp one inner length field *)
  b_a : int;
  b_b : int;
}

let show_inner i =
  Printf.sprintf "{k=%d s=%d l=%d sp=%d}" i.i_kind i.i_site i.i_len i.i_span

let show_batch_case c =
  Printf.sprintf "{inners=%s delta=%d mut=%d a=%d b=%d}"
    (Prop.show_list show_inner c.b_inners)
    (c.b_delta - 2) c.b_mutation c.b_a c.b_b

let gen_inner rng =
  {
    i_kind = Prop.int_range 0 (Array.length inner_kinds - 1) rng;
    i_site = Prop.int_range 0 0xFFFF rng;
    i_len = Prop.int_range 0 200 rng;
    i_span = Prop.int_range 0 1 rng;
  }

let gen_batch_case rng =
  {
    b_inners = Prop.list ~max_len:8 gen_inner rng;
    b_delta = Prop.int_range 0 4 rng;
    b_mutation = Prop.int_range 0 4 rng;
    b_a = Prop.int_range 0 0x3FFFFFFF rng;
    b_b = Prop.int_range 0 0x3FFFFFFF rng;
  }

let shrink_batch_case c =
  List.concat
    [
      List.map
        (fun b_inners -> { c with b_inners })
        (Prop.shrink_list Prop.no_shrink c.b_inners);
      List.map (fun b_a -> { c with b_a }) (Prop.shrink_int c.b_a);
      List.map (fun b_b -> { c with b_b }) (Prop.shrink_int c.b_b);
    ]

(* Build the inner region (complete back-to-back frames) plus the list
   of header offsets, so the length-stomp mutation can aim precisely at
   a per-frame length field. *)
let realize_batch c =
  let buf = Buffer.create 256 in
  let offsets =
    List.map
      (fun i ->
        let off = Buffer.length buf in
        let kind = inner_kinds.(i.i_kind) in
        let total =
          Frame.header_bytes
          + (if i.i_span = 1 then Frame.span_bytes else 0)
          + i.i_len
        in
        let b = Bytes.make total '\042' in
        if i.i_span = 1 then begin
          Frame.encode_header_spanned b ~pos:0 ~kind ~site:i.i_site
            ~length:i.i_len;
          Frame.encode_span b ~pos:Frame.header_bytes
            Frame.
              {
                trace_id = 1L;
                span_id = 2L;
                parent_id = 0L;
                t1_ns = 3L;
                t2_ns = 4L;
              }
        end
        else Frame.encode_header b ~pos:0 ~kind ~site:i.i_site ~length:i.i_len;
        Buffer.add_bytes buf b;
        off)
      c.b_inners
  in
  let region = Buffer.to_bytes buf in
  let n = Bytes.length region in
  let region =
    match c.b_mutation with
    | 0 -> region
    | 1 when n > 0 ->
      let byte = c.b_a mod n in
      let bit = c.b_b mod 8 in
      Bytes.set_uint8 region byte
        (Bytes.get_uint8 region byte lxor (1 lsl bit));
      region
    | 2 when n > 0 ->
      (* Truncate anywhere: mid-header, mid-span-block, mid-payload. *)
      Bytes.sub region 0 (c.b_a mod n)
    | 3 ->
      (* Oversized region: trailing garbage after the last frame. *)
      let extra = Bytes.make (1 + (c.b_b mod 64)) '\161' in
      Bytes.cat region extra
    | 4 when offsets <> [] ->
      (* Stomp one inner frame's 4-byte length field (negative and
         beyond-max_payload values included). *)
      let off = List.nth offsets (c.b_a mod List.length offsets) in
      Bytes.set_int32_le region (off + 8) (Int32.of_int c.b_b);
      region
    | _ -> region
  in
  (region, List.length c.b_inners + c.b_delta - 2)

let batch_decode_total c =
  let region, count = realize_batch c in
  match Frame.decode_batch region ~count with
  | Ok frames ->
    (* Whatever decodes must satisfy the decoder's contract: exactly the
       announced number of frames, every payload inside the region. *)
    List.length frames = count
    && List.for_all
         (fun (h, _, payload_off) ->
           h.Frame.length >= 0
           && h.Frame.length <= Frame.max_payload
           && payload_off >= 0
           && payload_off + h.Frame.length <= Bytes.length region)
         frames
  | Error _ -> true
  | exception e ->
    Printf.eprintf "decode_batch raised %s\n" (Printexc.to_string e);
    false

let batch_roundtrip c =
  (* A clean envelope (no mutation, true count, no nested Batch kinds)
     must decode to exactly what was encoded, spans included. *)
  let c =
    {
      c with
      b_mutation = 0;
      b_delta = 2;
      b_inners =
        List.map
          (fun i -> { i with i_kind = i.i_kind mod Array.length kinds })
          c.b_inners;
    }
  in
  let region, count = realize_batch c in
  match Frame.decode_batch region ~count with
  | Error _ | (exception _) -> false
  | Ok frames ->
    List.length frames = List.length c.b_inners
    && List.for_all2
         (fun i (h, span, _) ->
           h.Frame.kind = kinds.(i.i_kind mod Array.length kinds)
           && h.Frame.site = i.i_site
           && h.Frame.length = i.i_len
           && h.Frame.has_span = (i.i_span = 1)
           && (span <> None) = (i.i_span = 1))
         c.b_inners frames

let batch_cut_typed c =
  (* Every strict prefix of a clean envelope region is a typed error:
     Truncated when the cut lands inside a frame (header, span block or
     payload), Bad_count when it lands exactly on a frame boundary. *)
  let c =
    {
      c with
      b_mutation = 0;
      b_delta = 2;
      b_inners =
        (match c.b_inners with
        | [] -> [ { i_kind = 2; i_site = 0; i_len = 8; i_span = 1 } ]
        | l -> List.map (fun i -> { i with i_kind = i.i_kind mod Array.length kinds }) l);
    }
  in
  let region, count = realize_batch c in
  let keep = c.b_a mod Bytes.length region in
  match Frame.decode_batch (Bytes.sub region 0 keep) ~count with
  | Error (Frame.Truncated _) -> true
  | Error (Frame.Bad_count { expected; got }) -> expected = count && got < count
  | Ok _ | Error _ | (exception _) -> false

let batch_nested_rejected c =
  (* Force at least one nested envelope among the inner frames. *)
  let c =
    match c.b_inners with
    | [] ->
      {
        c with
        b_mutation = 0;
        b_inners = [ { i_kind = Array.length kinds; i_site = 0; i_len = 0; i_span = 0 } ];
      }
    | l ->
      let nest_at = c.b_a mod List.length l in
      {
        c with
        b_mutation = 0;
        b_inners =
          List.mapi
            (fun j i ->
              if j = nest_at then { i with i_kind = Array.length kinds }
              else { i with i_kind = i.i_kind mod Array.length kinds })
            l;
      }
  in
  let region, _ = realize_batch c in
  match Frame.decode_batch region ~count:(List.length c.b_inners) with
  | Error (Frame.Bad_kind 9) -> true
  | Ok _ | Error _ | (exception _) -> false

(* ------------------------------------------------------------------ *)
(* Trace_io *)

type trace_case = {
  events : (int * int) list;
  t_mutation : int;  (* 0 = none, 1 = bit flip, 2 = truncate, 3 = count field *)
  t_a : int;
  t_b : int;
}

let show_trace_case c =
  Printf.sprintf "{events=%s mut=%d a=%d b=%d}"
    (Prop.show_list
       (Prop.show_pair Prop.show_int Prop.show_int)
       c.events)
    c.t_mutation c.t_a c.t_b

let gen_trace_case rng =
  {
    events =
      Prop.list ~max_len:12
        (Prop.pair (Prop.int_range 0 7) (Prop.int_range 0 1000))
        rng;
    t_mutation = Prop.int_range 0 3 rng;
    t_a = Prop.int_range 0 0x3FFFFFFF rng;
    t_b = Prop.int_range 0 0x3FFFFFFF rng;
  }

let shrink_trace_case c =
  List.concat
    [
      List.map
        (fun events -> { c with events })
        (Prop.shrink_list Prop.no_shrink c.events);
      List.map (fun t_a -> { c with t_a }) (Prop.shrink_int c.t_a);
      List.map (fun t_b -> { c with t_b }) (Prop.shrink_int c.t_b);
    ]

let tmp_name =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wd-fuzz-%d-%d.trace" (Unix.getpid ()) !counter)

let with_tmp_file bytes f =
  let path = tmp_name () in
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let realize_trace c =
  let path = tmp_name () in
  Trace_io.save_binary path (Stream.of_events c.events);
  let bytes =
    In_channel.with_open_bin path (fun ic ->
      Bytes.of_string (In_channel.input_all ic))
  in
  Sys.remove path;
  let n = Bytes.length bytes in
  match c.t_mutation with
  | 0 -> bytes
  | 1 ->
    let byte = c.t_a mod n in
    let bit = c.t_b mod 8 in
    Bytes.set_uint8 bytes byte (Bytes.get_uint8 bytes byte lxor (1 lsl bit));
    bytes
  | 2 -> Bytes.sub bytes 0 (c.t_a mod n)
  | _ ->
    (* Stomp the 8-byte record-count field after the magic: random
       63-bit value, optionally negated — astronomical counts must fail
       as typed truncations, not as gigantic allocations. *)
    let v = Int64.of_int ((c.t_a lsl 30) lxor c.t_b) in
    let v = if c.t_b land 1 = 1 then Int64.neg v else v in
    Bytes.set_int64_le bytes 8 v;
    bytes

let trace_binary_load_typed c =
  let bytes = realize_trace c in
  with_tmp_file bytes (fun path ->
    match Trace_io.load_binary path with
    | (_ : Stream.t) -> true
    | exception Trace_io.Error _ -> true
    | exception e ->
      Printf.eprintf "load_binary raised %s\n" (Printexc.to_string e);
      false)

let trace_binary_roundtrip c =
  let c = { c with t_mutation = 0 } in
  let bytes = realize_trace c in
  with_tmp_file bytes (fun path ->
    match Trace_io.load_binary path with
    | s ->
      Stream.length s = List.length c.events
      && List.for_all2
           (fun (site, item) j -> Stream.site s j = site && Stream.item s j = item)
           c.events
           (List.init (Stream.length s) Fun.id)
    | exception _ -> false)

(* CSV: corrupt the text with a printable-garbage splice or truncation;
   the loader must answer with Malformed_line (or parse fine: plenty of
   corruptions still read as valid integer pairs). *)
let trace_csv_load_typed c =
  let path = tmp_name () in
  Trace_io.save_csv path (Stream.of_events c.events);
  let text = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  let n = String.length text in
  let mutated =
    match c.t_mutation with
    | 0 -> text
    | 1 ->
      let i = c.t_a mod n in
      let garbage = Char.chr (0x20 + (c.t_b mod 0x5f)) in
      String.mapi (fun j ch -> if j = i then garbage else ch) text
    | 2 -> String.sub text 0 (c.t_a mod n)
    | _ -> String.sub text 0 (c.t_a mod n) ^ "#!garbage," ^ string_of_int c.t_b
  in
  with_tmp_file (Bytes.of_string mutated) (fun path ->
    match Trace_io.load_csv path with
    | (_ : Stream.t) -> true
    | exception Trace_io.Error (_, Trace_io.Malformed_line _) -> true
    | exception e ->
      Printf.eprintf "load_csv raised %s\n" (Printexc.to_string e);
      false)

let () =
  Alcotest.run "fuzz"
    [
      ( "frame",
        [
          Prop.test_case ~count:400 ~shrink:shrink_frame_case
            ~show:show_frame_case ~name:"mutated header decode is total"
            gen_frame_case frame_decode_total;
          Prop.test_case ~count:200 ~shrink:shrink_frame_case
            ~show:show_frame_case ~name:"clean header roundtrips"
            gen_frame_case frame_roundtrip;
          Prop.test_case ~count:200 ~shrink:shrink_frame_case
            ~show:show_frame_case ~name:"every strict prefix is Truncated"
            gen_frame_case frame_truncation_typed;
          Prop.test_case ~count:200 ~shrink:shrink_frame_case
            ~show:show_frame_case ~name:"cut span block is Truncated"
            gen_frame_case frame_span_prefix_typed;
        ] );
      ( "batch",
        [
          Prop.test_case ~count:400 ~shrink:shrink_batch_case
            ~show:show_batch_case ~name:"mutated envelope decode is total"
            gen_batch_case batch_decode_total;
          Prop.test_case ~count:200 ~shrink:shrink_batch_case
            ~show:show_batch_case ~name:"clean envelope roundtrips"
            gen_batch_case batch_roundtrip;
          Prop.test_case ~count:200 ~shrink:shrink_batch_case
            ~show:show_batch_case ~name:"every strict prefix is typed"
            gen_batch_case batch_cut_typed;
          Prop.test_case ~count:200 ~shrink:shrink_batch_case
            ~show:show_batch_case ~name:"nested envelope is Bad_kind"
            gen_batch_case batch_nested_rejected;
        ] );
      ( "trace_io",
        [
          Prop.test_case ~count:200 ~shrink:shrink_trace_case
            ~show:show_trace_case ~name:"mutated binary load is typed"
            gen_trace_case trace_binary_load_typed;
          Prop.test_case ~count:100 ~shrink:shrink_trace_case
            ~show:show_trace_case ~name:"clean binary roundtrips"
            gen_trace_case trace_binary_roundtrip;
          Prop.test_case ~count:200 ~shrink:shrink_trace_case
            ~show:show_trace_case ~name:"mutated csv load is typed"
            gen_trace_case trace_csv_load_typed;
        ] );
    ]
