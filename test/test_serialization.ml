(* Roundtrip and validation tests for sketch serialization. *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Bjkst = Wd_sketch.Bjkst
module Hll = Wd_sketch.Hyperloglog
module Sampler = Wd_sketch.Distinct_sampler

let stream_gen = QCheck.(list_of_size (Gen.int_range 0 300) (int_range 0 5_000))

(* --- FM --- *)

let prop_fm_roundtrip =
  QCheck.Test.make ~name:"fm roundtrip" stream_gen (fun xs ->
      let fam = Fm.family_custom ~rng:(Rng.create 161) ~variant:Fm.Stochastic ~bitmaps:16 in
      let sk = Fm.create fam in
      List.iter (fun v -> ignore (Fm.add sk v : bool)) xs;
      let back = Fm.of_bytes fam (Fm.to_bytes sk) in
      Fm.equal sk back && Fm.estimate sk = Fm.estimate back)

let test_fm_wire_length_matches_size_bytes () =
  let fam = Fm.family_custom ~rng:(Rng.create 162) ~variant:Fm.Stochastic ~bitmaps:24 in
  let sk = Fm.create fam in
  ignore (Fm.add sk 1 : bool);
  Alcotest.(check int) "serialized = size_bytes" (Fm.size_bytes sk)
    (Bytes.length (Fm.to_bytes sk))

let test_fm_rejects_bad_length () =
  let fam = Fm.family_custom ~rng:(Rng.create 163) ~variant:Fm.Stochastic ~bitmaps:8 in
  Alcotest.check_raises "bad length"
    (Invalid_argument "Fm.of_bytes: buffer length does not match the family")
    (fun () -> ignore (Fm.of_bytes fam (Bytes.create 7) : Fm.t))

(* --- HLL --- *)

let prop_hll_roundtrip =
  QCheck.Test.make ~name:"hll roundtrip" stream_gen (fun xs ->
      let fam = Hll.family_custom ~rng:(Rng.create 164) ~registers:32 in
      let sk = Hll.create fam in
      List.iter (fun v -> ignore (Hll.add sk v : bool)) xs;
      let back = Hll.of_bytes fam (Hll.to_bytes sk) in
      Hll.equal sk back)

let test_hll_wire_length_matches_size_bytes () =
  let fam = Hll.family_custom ~rng:(Rng.create 165) ~registers:64 in
  let sk = Hll.create fam in
  Alcotest.(check int) "serialized = size_bytes" (Hll.size_bytes sk)
    (Bytes.length (Hll.to_bytes sk))

let test_hll_rejects_corrupt_register () =
  let fam = Hll.family_custom ~rng:(Rng.create 166) ~registers:16 in
  let buf = Bytes.make 16 '\255' in
  Alcotest.check_raises "register range"
    (Invalid_argument "Hyperloglog.of_bytes: register value out of range")
    (fun () -> ignore (Hll.of_bytes fam buf : Hll.t))

(* --- BJKST --- *)

let prop_bjkst_roundtrip =
  QCheck.Test.make ~name:"bjkst roundtrip" stream_gen (fun xs ->
      let fam = Bjkst.family_custom ~rng:(Rng.create 167) ~k:32 in
      let sk = Bjkst.create fam in
      List.iter (fun v -> ignore (Bjkst.add sk v : bool)) xs;
      let back = Bjkst.of_bytes fam (Bjkst.to_bytes sk) in
      Bjkst.equal sk back && Bjkst.estimate sk = Bjkst.estimate back)

let test_bjkst_rejects_overfull () =
  let fam = Bjkst.family_custom ~rng:(Rng.create 168) ~k:2 in
  let buf = Bytes.create (4 + 24) in
  Bytes.set_int32_le buf 0 3l;
  Alcotest.check_raises "count range"
    (Invalid_argument "Bjkst.of_bytes: value count out of range") (fun () ->
      ignore (Bjkst.of_bytes fam buf : Bjkst.t))

(* --- Distinct sampler --- *)

let prop_sampler_roundtrip =
  QCheck.Test.make ~name:"sampler roundtrip" stream_gen (fun xs ->
      let fam = Sampler.family ~rng:(Rng.create 169) ~threshold:16 in
      let s = Sampler.create fam in
      List.iter (Sampler.add s) xs;
      let back = Sampler.of_bytes fam (Sampler.to_bytes s) in
      Sampler.level back = Sampler.level s
      && Sampler.size back = Sampler.size s
      && List.for_all
           (fun (v, c) -> Sampler.count back v = c)
           (Sampler.contents s))

let test_sampler_rejects_level_violation () =
  let fam = Sampler.family ~rng:(Rng.create 170) ~threshold:16 in
  let probe = Sampler.create fam in
  (* Find an item with level 0 and claim it is retained at level 60. *)
  let low =
    let rec go v = if Sampler.item_level probe v = 0 then v else go (v + 1) in
    go 0
  in
  let buf = Bytes.create 21 in
  Bytes.set_uint8 buf 0 60;
  Bytes.set_int32_le buf 1 1l;
  Bytes.set_int64_le buf 5 (Int64.of_int low);
  Bytes.set_int64_le buf 13 1L;
  Alcotest.check_raises "level rule"
    (Invalid_argument "Distinct_sampler.of_bytes: pair violates the level rule")
    (fun () -> ignore (Sampler.of_bytes fam buf : Sampler.t))

let test_sampler_serialized_continues_correctly () =
  (* A deserialized sampler must keep working: inserts, merges, level. *)
  let fam = Sampler.family ~rng:(Rng.create 171) ~threshold:32 in
  let a = Sampler.create fam in
  for v = 0 to 999 do
    Sampler.add a v
  done;
  let b = Sampler.of_bytes fam (Sampler.to_bytes a) in
  for v = 1_000 to 1_999 do
    Sampler.add a v;
    Sampler.add b v
  done;
  Alcotest.(check int) "same level" (Sampler.level a) (Sampler.level b);
  Alcotest.(check int) "same size" (Sampler.size a) (Sampler.size b);
  List.iter
    (fun (v, c) -> Alcotest.(check int) "same counts" c (Sampler.count b v))
    (Sampler.contents a)

(* --- Workload trace files (Trace_io) --- *)

module Stream = Wd_workload.Stream
module Trace_io = Wd_workload.Trace_io

let tmp_file suffix =
  Filename.temp_file "wd_trace_io" suffix

let stream_to_list s =
  List.init (Stream.length s) (fun j -> (Stream.site s j, Stream.item s j))

(* Random multi-site streams via the hand-rolled Prop framework. *)
let stream_case_gen rng =
  let n = Prop.int_range 0 80 rng in
  let sites = Array.init n (fun _ -> Prop.int_range 0 5 rng) in
  let items = Array.init n (fun _ -> Prop.int_range 0 1_000 rng) in
  (Array.to_list sites, Array.to_list items)

let show_stream_case (sites, items) =
  Printf.sprintf "(sites=%s, items=%s)"
    (Prop.show_list Prop.show_int sites)
    (Prop.show_list Prop.show_int items)

let trace_io_roundtrip ~save ~load () =
  Prop.check ~count:50 ~show:show_stream_case ~name:"trace_io roundtrip"
    stream_case_gen (fun (sites, items) ->
      let s =
        Stream.make ~sites:(Array.of_list sites) ~items:(Array.of_list items)
      in
      let path = tmp_file ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          save path s;
          stream_to_list (load path) = stream_to_list s))

let expect_load_failure name load path =
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match load path with
      | (_ : Stream.t) -> Alcotest.failf "%s should fail to load" name
      | exception Trace_io.Error _ -> ())

let test_binary_bad_magic () =
  let path = tmp_file ".bin" in
  let oc = open_out_bin path in
  output_string oc "NOTTRACE00000000";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Trace_io.load_binary path with
      | (_ : Stream.t) -> Alcotest.fail "bad magic should fail to load"
      | exception Trace_io.Error (_, Trace_io.Bad_magic { got; _ }) ->
        Alcotest.(check string) "found magic reported" "NOTTRACE" got
      | exception Trace_io.Error (_, e) ->
        Alcotest.failf "expected Bad_magic, got %s" (Trace_io.error_to_string e))

let test_binary_truncated () =
  let s = Stream.make ~sites:[| 0; 1; 0 |] ~items:[| 7; 8; 9 |] in
  let whole = tmp_file ".bin" in
  Trace_io.save_binary whole s;
  let data =
    let ic = open_in_bin whole in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    Sys.remove whole;
    b
  in
  (* Cut inside the third record, inside the length header, and inside
     the magic: every prefix must be rejected, never silently shortened. *)
  List.iter
    (fun keep ->
      let path = tmp_file ".bin" in
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 keep);
      close_out oc;
      expect_load_failure
        (Printf.sprintf "truncated at %d" keep)
        Trace_io.load_binary path)
    [ String.length data - 8; 12; 4 ]

let test_csv_malformed () =
  List.iter
    (fun body ->
      let path = tmp_file ".csv" in
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      expect_load_failure body Trace_io.load_csv path)
    [
      "site,item\n1\n";
      "site,item\n1,2,3\n";
      "site,item\nx,2\n";
      "site,item\n-1,2\n";
    ]

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_fm_roundtrip;
        prop_hll_roundtrip;
        prop_bjkst_roundtrip;
        prop_sampler_roundtrip;
      ]
  in
  Alcotest.run "serialization"
    [
      ( "wire format",
        [
          Alcotest.test_case "fm length" `Quick
            test_fm_wire_length_matches_size_bytes;
          Alcotest.test_case "fm bad length" `Quick test_fm_rejects_bad_length;
          Alcotest.test_case "hll length" `Quick
            test_hll_wire_length_matches_size_bytes;
          Alcotest.test_case "hll corrupt" `Quick
            test_hll_rejects_corrupt_register;
          Alcotest.test_case "bjkst overfull" `Quick test_bjkst_rejects_overfull;
          Alcotest.test_case "sampler level rule" `Quick
            test_sampler_rejects_level_violation;
          Alcotest.test_case "sampler continues" `Quick
            test_sampler_serialized_continues_correctly;
        ] );
      ("roundtrips", props);
      ( "trace files",
        [
          Alcotest.test_case "csv roundtrip" `Quick
            (trace_io_roundtrip ~save:Trace_io.save_csv
               ~load:Trace_io.load_csv);
          Alcotest.test_case "binary roundtrip" `Quick
            (trace_io_roundtrip ~save:Trace_io.save_binary
               ~load:Trace_io.load_binary);
          Alcotest.test_case "binary bad magic" `Quick test_binary_bad_magic;
          Alcotest.test_case "binary truncated" `Quick test_binary_truncated;
          Alcotest.test_case "csv malformed" `Quick test_csv_malformed;
        ] );
    ]
