(* Integration and property tests for the distinct-sample tracking
   protocols (LCO, GCS, LCS, EDS). *)

module Rng = Wd_hashing.Rng
module Sampler = Wd_sketch.Distinct_sampler
module Network = Wd_net.Network
module Wire = Wd_net.Wire
module Ds = Wd_protocol.Ds_tracker
module Stream = Wd_workload.Stream
module Stream_gen = Wd_workload.Stream_gen

let mk_family ?(seed = 91) ~threshold () =
  Sampler.family ~rng:(Rng.create seed) ~threshold

let run_stream tracker stream =
  Stream.iter (fun ~site ~item -> Ds.observe tracker ~site item) stream

let algo_name = Ds.algorithm_to_string

(* --- Retained-set equivalence (deterministic) ---

   The coordinator's retained item set must equal the retained set of a
   centralized sampler fed the full union stream: thresholds only delay
   COUNT updates, never the first report of a new retained item. *)
let test_retained_set_matches_centralized algo () =
  let threshold = 48 in
  let family = mk_family ~threshold () in
  let stream = Stream_gen.zipf ~sites:4 ~events:30_000 ~universe:6_000 () in
  let tracker = Ds.create ~algorithm:algo ~theta:0.4 ~sites:4 ~family () in
  let central = Sampler.create family in
  Stream.iter
    (fun ~site ~item ->
      Ds.observe tracker ~site item;
      Sampler.add central item)
    stream;
  Alcotest.(check int)
    (algo_name algo ^ ": same level")
    (Sampler.level central) (Ds.level tracker);
  Alcotest.(check int)
    (algo_name algo ^ ": same sample size")
    (Sampler.size central) (Ds.sample_size tracker);
  List.iter
    (fun (v, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: item %d retained" (algo_name algo) v)
        true
        (Ds.count tracker v > 0))
    (Sampler.contents central)

(* --- Count-lag guarantee (Lemma 2) ---

   Every retained count at the coordinator is within a (1 + theta) factor
   of the exact global count. *)
let test_count_lag_bounded algo () =
  let theta = 0.3 in
  let family = mk_family ~threshold:64 () in
  let stream = Stream_gen.zipf ~sites:5 ~events:50_000 ~universe:2_000 () in
  let tracker = Ds.create ~algorithm:algo ~theta ~sites:5 ~family () in
  run_stream tracker stream;
  let exact = Stream.multiplicities stream in
  List.iter
    (fun (v, c) ->
      let c_true = Hashtbl.find exact v in
      Alcotest.(check bool)
        (Printf.sprintf "%s: item %d count %d vs true %d" (algo_name algo) v
           c c_true)
        true
        (c <= c_true && Float.of_int c_true <= (1.0 +. theta) *. Float.of_int c))
    (Ds.sample tracker)

(* --- EDS is exact --- *)

let test_eds_counts_exact () =
  let family = mk_family ~threshold:64 () in
  let stream = Stream_gen.zipf ~sites:3 ~events:20_000 ~universe:1_000 () in
  let tracker = Ds.create ~algorithm:Ds.EDS ~theta:0.5 ~sites:3 ~family () in
  run_stream tracker stream;
  let exact = Stream.multiplicities stream in
  List.iter
    (fun (v, c) ->
      Alcotest.(check int)
        (Printf.sprintf "EDS count of %d" v)
        (Hashtbl.find exact v) c)
    (Ds.sample tracker)

let test_eds_cost_formula () =
  let stream = Stream_gen.uniform ~sites:3 ~events:5_000 ~universe:1_000 () in
  let family = mk_family ~threshold:32 () in
  let tracker = Ds.create ~algorithm:Ds.EDS ~theta:0.5 ~sites:3 ~family () in
  run_stream tracker stream;
  Alcotest.(check int) "one message per update"
    (Stream.length stream * Wire.message ~payload:Wire.item_bytes)
    (Network.total_bytes (Ds.network tracker))

(* --- Cost behaviour --- *)

let test_cheaper_than_eds algo () =
  let stream =
    Stream_gen.duplicated ~sites:4 ~distinct:2_000 ~copies:25 ()
  in
  let family = mk_family ~threshold:64 () in
  let cost algorithm =
    let tracker = Ds.create ~algorithm ~theta:0.3 ~sites:4 ~family () in
    run_stream tracker stream;
    Network.total_bytes (Ds.network tracker)
  in
  let approx = cost algo and exact = cost Ds.EDS in
  Alcotest.(check bool)
    (Printf.sprintf "%s bytes %d < EDS bytes %d" (algo_name algo) approx exact)
    true (approx < exact)

let test_cost_grows_with_threshold algo () =
  (* Figure 6(a)/(b): communication scales with the sample size T. *)
  let stream = Stream_gen.zipf ~sites:4 ~events:40_000 ~universe:20_000 () in
  let cost threshold =
    let family = mk_family ~threshold () in
    let tracker = Ds.create ~algorithm:algo ~theta:0.3 ~sites:4 ~family () in
    run_stream tracker stream;
    Network.total_bytes (Ds.network tracker)
  in
  let small = cost 16 and large = cost 512 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: T=16 costs %d < T=512 costs %d" (algo_name algo)
       small large)
    true (small < large)

let test_theta_weakly_decreases_cost algo () =
  (* Figure 6(c): cost decays (weakly) as theta grows. *)
  let stream =
    Stream_gen.duplicated ~sites:4 ~distinct:500 ~copies:100 ()
  in
  let family = mk_family ~threshold:64 () in
  let cost theta =
    let tracker = Ds.create ~algorithm:algo ~theta ~sites:4 ~family () in
    run_stream tracker stream;
    Network.total_bytes (Ds.network tracker)
  in
  let tight = cost 0.05 and loose = cost 0.8 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: theta=0.05 costs %d >= theta=0.8 costs %d"
       (algo_name algo) tight loose)
    true (tight >= loose)

let test_lco_no_count_downstream () =
  (* LCO's only downstream traffic is level broadcasts. *)
  let stream = Stream_gen.zipf ~sites:4 ~events:30_000 ~universe:10_000 () in
  let family = mk_family ~threshold:32 () in
  let tracker = Ds.create ~algorithm:Ds.LCO ~theta:0.3 ~sites:4 ~family () in
  run_stream tracker stream;
  let net = Ds.network tracker in
  let levels = Ds.level tracker in
  (* Each level change is one broadcast of a level byte to 4 sites. *)
  Alcotest.(check bool)
    (Printf.sprintf "downstream %d = level broadcasts only"
       (Network.bytes_down net))
    true
    (Network.bytes_down net
    <= levels * 4 * Wire.message ~payload:Wire.level_bytes)

let test_duplicate_streams_same_sample algo () =
  (* Re-observing the same multiset at other sites must not change the
     retained set (counts grow, membership does not). *)
  let family = mk_family ~threshold:32 () in
  let base = Stream_gen.uniform ~sites:4 ~events:10_000 ~universe:3_000 () in
  let echo =
    Stream.make
      ~sites:(Array.init (Stream.length base) (fun j -> (Stream.site base j + 1) mod 4))
      ~items:(Array.init (Stream.length base) (Stream.item base))
  in
  let once = Ds.create ~algorithm:algo ~theta:0.3 ~sites:4 ~family () in
  run_stream once base;
  let twice = Ds.create ~algorithm:algo ~theta:0.3 ~sites:4 ~family () in
  run_stream twice (Stream.concat [ base; echo ]);
  Alcotest.(check int)
    (algo_name algo ^ ": same level")
    (Ds.level once) (Ds.level twice);
  let set t = List.sort compare (List.map fst (Ds.sample t)) in
  Alcotest.(check (list int))
    (algo_name algo ^ ": same retained set")
    (set once) (set twice)

let test_validation () =
  let family = mk_family ~threshold:8 () in
  Alcotest.check_raises "sites >= 1"
    (Invalid_argument "Ds_tracker.create: sites must be >= 1") (fun () ->
      ignore
        (Ds.create ~algorithm:Ds.LCO ~theta:0.1 ~sites:0 ~family () : Ds.t));
  Alcotest.check_raises "theta > 0"
    (Invalid_argument "Ds_tracker.create: theta must be positive") (fun () ->
      ignore
        (Ds.create ~algorithm:Ds.LCO ~theta:0.0 ~sites:2 ~family () : Ds.t));
  let t = Ds.create ~algorithm:Ds.LCO ~theta:0.1 ~sites:2 ~family () in
  Alcotest.check_raises "site range"
    (Invalid_argument "Ds_tracker.observe: site index out of range")
    (fun () -> Ds.observe t ~site:9 1);
  Alcotest.check_raises "observe_batch length mismatch"
    (Invalid_argument "Ds_tracker.observe_batch: sites/items length mismatch")
    (fun () ->
      Ds.observe_batch t ~sites:[| 0 |] ~items:[| 1; 2 |] ~pos:0 ~len:1);
  Alcotest.check_raises "observe_batch slice range"
    (Invalid_argument "Ds_tracker.observe_batch: slice out of range")
    (fun () -> Ds.observe_batch t ~sites:[| 0 |] ~items:[| 1 |] ~pos:1 ~len:1)

(* The exact algorithm has no send threshold: the error must name EDS so
   a caller poking the wrong mode learns which variant it holds. *)
let test_eds_has_no_threshold () =
  let family = mk_family ~threshold:8 () in
  let t = Ds.create ~algorithm:Ds.EDS ~theta:0.1 ~sites:2 ~family () in
  Alcotest.check_raises "threshold names EDS"
    (Invalid_argument
       "Ds_tracker.send_threshold: exact algorithm EDS has no send threshold")
    (fun () -> ignore (Ds.site_send_threshold t 0 7 : float));
  Alcotest.check_raises "site range checked first"
    (Invalid_argument "Ds_tracker.site_send_threshold: site index out of range")
    (fun () -> ignore (Ds.site_send_threshold t 9 7 : float));
  let t = Ds.create ~algorithm:Ds.LCO ~theta:0.1 ~sites:2 ~family () in
  Alcotest.(check bool)
    "LCO threshold finite" true
    (Float.is_finite (Ds.site_send_threshold t 0 7))

let test_algorithm_strings () =
  List.iter
    (fun a ->
      Alcotest.(check bool)
        "roundtrip" true
        (Ds.algorithm_of_string (Ds.algorithm_to_string a) = Some a))
    Ds.all_algorithms

(* --- QCheck: coordinator invariants on random streams --- *)

let prop_counts_never_exceed_truth =
  QCheck.Test.make ~name:"tracked counts never exceed exact counts" ~count:40
    QCheck.(
      triple (int_range 1 4)
        (list_of_size (Gen.int_range 1 500) (int_range 0 80))
        (int_range 0 2))
    (fun (k, items, algo_idx) ->
      let algo = List.nth Ds.approximate_algorithms algo_idx in
      let family = mk_family ~seed:92 ~threshold:8 () in
      let tracker = Ds.create ~algorithm:algo ~theta:0.5 ~sites:k ~family () in
      let exact = Hashtbl.create 64 in
      List.iteri
        (fun j v ->
          Ds.observe tracker ~site:(j mod k) v;
          Hashtbl.replace exact v
            (1 + Option.value (Hashtbl.find_opt exact v) ~default:0))
        items;
      List.for_all
        (fun (v, c) -> c <= Hashtbl.find exact v)
        (Ds.sample tracker))

let prop_retained_set_matches =
  QCheck.Test.make ~name:"retained set equals centralized sampler" ~count:40
    QCheck.(
      triple (int_range 1 4)
        (list_of_size (Gen.int_range 1 500) (int_range 0 300))
        (int_range 0 2))
    (fun (k, items, algo_idx) ->
      let algo = List.nth Ds.approximate_algorithms algo_idx in
      let family = mk_family ~seed:93 ~threshold:8 () in
      let tracker = Ds.create ~algorithm:algo ~theta:0.5 ~sites:k ~family () in
      let central = Sampler.create family in
      List.iteri
        (fun j v ->
          Ds.observe tracker ~site:(j mod k) v;
          Sampler.add central v)
        items;
      let set_a = List.sort compare (List.map fst (Ds.sample tracker)) in
      let set_b = List.sort compare (List.map fst (Sampler.contents central)) in
      set_a = set_b)

let () =
  let per_algo name f =
    List.map
      (fun a ->
        Alcotest.test_case
          (Printf.sprintf "%s (%s)" name (algo_name a))
          `Quick (f a))
      Ds.approximate_algorithms
  in
  Alcotest.run "ds-tracker"
    [
      ( "equivalence",
        per_algo "retained set" test_retained_set_matches_centralized
        @ per_algo "duplicate streams" test_duplicate_streams_same_sample );
      ("lag", per_algo "count lag" test_count_lag_bounded);
      ( "exact baseline",
        [
          Alcotest.test_case "EDS exact counts" `Quick test_eds_counts_exact;
          Alcotest.test_case "EDS cost formula" `Quick test_eds_cost_formula;
        ] );
      ( "cost",
        per_algo "cheaper than EDS" test_cheaper_than_eds
        @ per_algo "grows with T" test_cost_grows_with_threshold
        @ per_algo "decays with theta" test_theta_weakly_decreases_cost
        @ [
            Alcotest.test_case "LCO downstream" `Quick
              test_lco_no_count_downstream;
          ] );
      ( "api",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "EDS has no threshold" `Quick
            test_eds_has_no_threshold;
          Alcotest.test_case "algorithm strings" `Quick test_algorithm_strings;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_counts_never_exceed_truth; prop_retained_set_matches ] );
    ]
