(* Tests for the workload generators and the stream container. *)

module Rng = Wd_hashing.Rng
module Stream = Wd_workload.Stream
module Stream_gen = Wd_workload.Stream_gen
module Zipf = Wd_workload.Zipf
module Http = Wd_workload.Http_trace
module Two_phase = Wd_workload.Two_phase

(* --- Stream container --- *)

let test_stream_make_validates () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stream.make: sites and items must have equal length")
    (fun () ->
      ignore (Stream.make ~sites:[| 0 |] ~items:[| 1; 2 |] : Stream.t))

let test_stream_basics () =
  let s = Stream.of_events [ (0, 10); (1, 20); (0, 10) ] in
  Alcotest.(check int) "length" 3 (Stream.length s);
  Alcotest.(check int) "site" 1 (Stream.site s 1);
  Alcotest.(check int) "item" 10 (Stream.item s 2);
  Alcotest.(check int) "num_sites" 2 (Stream.num_sites s);
  Alcotest.(check int) "distinct" 2 (Stream.distinct_count s);
  Alcotest.(check (float 0.001)) "dup factor" 1.5 (Stream.duplication_factor s)

let test_stream_prefix_concat () =
  let s = Stream.of_events [ (0, 1); (1, 2); (2, 3) ] in
  let p = Stream.prefix s 2 in
  Alcotest.(check int) "prefix length" 2 (Stream.length p);
  let c = Stream.concat [ p; s ] in
  Alcotest.(check int) "concat length" 5 (Stream.length c);
  Alcotest.(check int) "concat order" 1 (Stream.item c 2)

let test_round_robin () =
  let a = Stream.of_events [ (9, 1); (9, 2) ] in
  let b = Stream.of_events [ (9, 10); (9, 20); (9, 30) ] in
  let rr = Stream.round_robin [| a; b |] in
  Alcotest.(check int) "total" 5 (Stream.length rr);
  (* Slots define sites; exhausted streams are skipped. *)
  let events = List.init 5 (fun j -> (Stream.site rr j, Stream.item rr j)) in
  Alcotest.(check (list (pair int int)))
    "interleaving"
    [ (0, 1); (1, 10); (0, 2); (1, 20); (1, 30) ]
    events

let test_shuffle_preserves_events () =
  let s = Stream_gen.uniform ~sites:3 ~events:500 ~universe:100 () in
  let sh = Stream.shuffle (Rng.create 5) s in
  let multiset t =
    let l = ref [] in
    Stream.iter (fun ~site ~item -> l := (site, item) :: !l) t;
    List.sort compare !l
  in
  Alcotest.(check (list (pair int int)))
    "same multiset" (multiset s) (multiset sh)

(* --- Zipf --- *)

let test_zipf_probabilities_sum_to_one () =
  let z = Zipf.create ~n:100 ~skew:1.0 in
  let total = ref 0.0 in
  for r = 0 to 99 do
    total := !total +. Zipf.probability z r
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total

let test_zipf_rank_ordering () =
  let z = Zipf.create ~n:50 ~skew:1.2 in
  Alcotest.(check bool) "rank 0 most likely" true
    (Zipf.probability z 0 > Zipf.probability z 1);
  Alcotest.(check bool) "monotone" true
    (Zipf.probability z 10 > Zipf.probability z 40)

let test_zipf_sampling_matches_distribution () =
  let z = Zipf.create ~n:10 ~skew:1.0 in
  let g = Rng.create 6 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Zipf.sample z g in
    counts.(r) <- counts.(r) + 1
  done;
  for r = 0 to 9 do
    let expected = Zipf.probability z r in
    let got = Float.of_int counts.(r) /. Float.of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d freq %.4f vs %.4f" r got expected)
      true
      (Float.abs (got -. expected) < 0.01)
  done

let test_zipf_skew_zero_is_uniform () =
  let z = Zipf.create ~n:4 ~skew:0.0 in
  for r = 0 to 3 do
    Alcotest.(check (float 1e-9)) "uniform" 0.25 (Zipf.probability z r)
  done

let test_zipf_expected_distinct () =
  let z = Zipf.create ~n:1_000 ~skew:0.0 in
  (* Uniform: E[distinct of d draws] = n (1 - (1 - 1/n)^d). *)
  let e = Zipf.expected_distinct z 1_000 in
  Alcotest.(check bool)
    (Printf.sprintf "expected distinct %.0f ~ 632" e)
    true
    (e > 600.0 && e < 660.0)

(* --- Two-phase --- *)

let test_two_phase_structure () =
  let k = 4 and n = 50 in
  let s = Two_phase.generate ~sites:k ~per_site:n () in
  Alcotest.(check int) "total events" ((k * n) + (k * k * n)) (Stream.length s);
  Alcotest.(check int) "universe" (k * n) (Stream.distinct_count s);
  (* Phase 1 is disjoint across sites. *)
  let boundary = Two_phase.phase_boundary ~sites:k ~per_site:n in
  let phase1 = Stream.prefix s boundary in
  Alcotest.(check int) "phase 1 all distinct" (k * n)
    (Stream.distinct_count phase1);
  let owner = Hashtbl.create 64 in
  let ok = ref true in
  Stream.iter
    (fun ~site ~item ->
      match Hashtbl.find_opt owner item with
      | None -> Hashtbl.replace owner item site
      | Some s0 -> if s0 <> site then ok := false)
    phase1;
  Alcotest.(check bool) "phase 1 disjoint per site" true !ok;
  (* Each site sees every item in phase 2. *)
  let seen = Array.init k (fun _ -> Hashtbl.create 64) in
  Stream.iteri
    (fun j ~site ~item ->
      if j >= boundary then Hashtbl.replace seen.(site) item ())
    s;
  Array.iteri
    (fun i tbl ->
      Alcotest.(check int)
        (Printf.sprintf "site %d saw the full universe in phase 2" i)
        (k * n) (Hashtbl.length tbl))
    seen

let test_two_phase_boundary_counts () =
  (* The workload's defining property: the distinct count is exactly the
     universe at the phase boundary and never grows again — phase 2
     contributes duplicates only. *)
  let k = 3 and n = 40 in
  let s = Two_phase.generate ~sites:k ~per_site:n () in
  let boundary = Two_phase.phase_boundary ~sites:k ~per_site:n in
  Alcotest.(check int) "boundary = k*n" (k * n) boundary;
  Alcotest.(check int) "all distinct by the boundary" (k * n)
    (Stream.distinct_count (Stream.prefix s boundary));
  (* Growth stops: sampling prefixes across phase 2 never adds an item. *)
  List.iter
    (fun extra ->
      Alcotest.(check int)
        (Printf.sprintf "distinct frozen at boundary + %d" extra)
        (k * n)
        (Stream.distinct_count (Stream.prefix s (boundary + extra))))
    [ 1; n; (k * k * n) / 2; k * k * n ];
  (* One before the boundary the last phase-1 item is still missing. *)
  Alcotest.(check int) "one short before the boundary" ((k * n) - 1)
    (Stream.distinct_count (Stream.prefix s (boundary - 1)))

let test_two_phase_duplication_accounting () =
  (* Every item appears once in phase 1 and once per site in phase 2, so
     the multiplicity is exactly 1 + k and the duplication factor of the
     whole stream is 1 + k. *)
  let k = 4 and n = 25 in
  let s = Two_phase.generate ~sites:k ~per_site:n () in
  Alcotest.(check (float 1e-9))
    "duplication factor = 1 + k"
    (Float.of_int (1 + k))
    (Stream.duplication_factor s);
  Hashtbl.iter
    (fun item c ->
      if c <> 1 + k then
        Alcotest.failf "item %d seen %d times, wanted %d" item c (1 + k))
    (Stream.multiplicities s)

let test_two_phase_deterministic () =
  let a = Two_phase.generate ~seed:3 ~sites:3 ~per_site:20 () in
  let b = Two_phase.generate ~seed:3 ~sites:3 ~per_site:20 () in
  let c = Two_phase.generate ~seed:4 ~sites:3 ~per_site:20 () in
  let events t =
    List.init (Stream.length t) (fun j -> (Stream.site t j, Stream.item t j))
  in
  Alcotest.(check bool) "same seed same stream" true (events a = events b);
  Alcotest.(check bool) "different seed differs" false (events a = events c)

(* --- HTTP trace --- *)

let test_http_trace_shape () =
  let cfg = { Http.default with requests = 20_000 } in
  let reqs = Http.generate cfg in
  Alcotest.(check bool) "duplication adds events" true
    (Array.length reqs >= cfg.requests);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "client in range" true
        (r.Http.client >= 0 && r.Http.client < cfg.clients);
      Alcotest.(check bool) "object in range" true
        (r.Http.obj >= 0 && r.Http.obj < cfg.objects);
      Alcotest.(check bool) "server in range" true
        (r.Http.server >= 0 && r.Http.server < cfg.servers))
    reqs

let test_http_views () =
  let cfg = { Http.default with requests = 20_000 } in
  let reqs = Http.generate cfg in
  let by_server = Http.view cfg Http.Client_id Http.Per_server reqs in
  let by_region = Http.view cfg Http.Client_id Http.Per_region reqs in
  Alcotest.(check bool) "29 server sites" true
    (Stream.num_sites by_server <= 29);
  Alcotest.(check bool) "4 region sites" true (Stream.num_sites by_region <= 4);
  Alcotest.(check int) "same length" (Stream.length by_server)
    (Stream.length by_region);
  (* Same clients either way. *)
  Alcotest.(check int) "same distinct clients"
    (Stream.distinct_count by_server)
    (Stream.distinct_count by_region)

let test_http_duplication_regimes () =
  (* The whole point of the substitute trace: clientID view is heavily
     duplicated, pair view only lightly. *)
  let cfg = { Http.default with requests = 50_000 } in
  let reqs = Http.generate cfg in
  let clients = Http.view cfg Http.Client_id Http.Per_region reqs in
  let pairs = Http.view cfg Http.Client_object_pair Http.Per_region reqs in
  let dup_clients = Stream.duplication_factor clients in
  let dup_pairs = Stream.duplication_factor pairs in
  Alcotest.(check bool)
    (Printf.sprintf "clientID dup %.1f > 20" dup_clients)
    true (dup_clients > 20.0);
  Alcotest.(check bool)
    (Printf.sprintf "pair dup %.2f in [1.05, 3]" dup_pairs)
    true
    (dup_pairs > 1.05 && dup_pairs < 3.0)

let test_http_deterministic () =
  let cfg = { Http.default with requests = 2_000 } in
  let a = Http.generate cfg and b = Http.generate cfg in
  Alcotest.(check bool) "same seed reproduces" true (a = b)

let test_http_seed_variation () =
  let a = Http.generate { Http.default with requests = 2_000 } in
  let b = Http.generate { Http.default with requests = 2_000; seed = 99 } in
  Alcotest.(check bool) "different seed differs" false (a = b);
  (* Structural invariants hold for any seed. *)
  Array.iter
    (fun r ->
      if r.Http.server < 0 || r.Http.server >= Http.default.Http.servers then
        Alcotest.failf "server %d out of range" r.Http.server)
    b

let test_http_duplication_accounting () =
  (* The generator only ever duplicates (retransmit/mirror), so the log
     is at least [requests] long, and the surplus is exactly the events
     beyond each pair's first occurrence in the pair view — duplication
     bookkeeping must agree between the raw log and the stream. *)
  let cfg = { Http.default with requests = 30_000 } in
  let reqs = Http.generate cfg in
  let pairs = Http.view cfg Http.Client_object_pair Http.Per_region reqs in
  Alcotest.(check int) "view keeps every request" (Array.length reqs)
    (Stream.length pairs);
  let m = Stream.multiplicities pairs in
  let total = Hashtbl.fold (fun _ c acc -> acc + c) m 0 in
  Alcotest.(check int) "multiplicities cover the log" (Array.length reqs)
    total;
  let duplicates = total - Hashtbl.length m in
  (* The calibration targets pair duplication ~1.25, i.e. a surplus of
     roughly a fifth of the log: a wide but telling band around it. *)
  Alcotest.(check bool)
    (Printf.sprintf "duplicate surplus %d plausible" duplicates)
    true
    (duplicates > Array.length reqs / 20
    && duplicates < Array.length reqs / 2)

let test_http_scaled () =
  let cfg = Http.scaled 0.1 in
  Alcotest.(check int) "requests scaled" 20_000 cfg.Http.requests;
  Alcotest.(check int) "clients scaled" 120 cfg.Http.clients

let test_http_flash_crowds_concentrate_traffic () =
  (* With flash crowds, the top objects absorb a much larger share of
     requests than the plain Zipf tail predicts. *)
  let base = { Http.default with requests = 30_000; flash_crowds = 0 } in
  let crowded = { base with flash_crowds = 4; seed = 43 } in
  let top_share cfg =
    let reqs = Http.generate cfg in
    let counts = Hashtbl.create 1024 in
    Array.iter
      (fun r ->
        Hashtbl.replace counts r.Http.obj
          (1 + Option.value (Hashtbl.find_opt counts r.Http.obj) ~default:0))
      reqs;
    let sorted =
      Hashtbl.fold (fun _ c acc -> c :: acc) counts []
      |> List.sort (fun a b -> compare b a)
    in
    let top = List.filteri (fun i _ -> i < 12) sorted in
    Float.of_int (List.fold_left ( + ) 0 top)
    /. Float.of_int (Array.length reqs)
  in
  let plain = top_share base and crowd = top_share crowded in
  Alcotest.(check bool)
    (Printf.sprintf "top-12 share %.2f (crowds) > %.2f (plain)" crowd plain)
    true
    (crowd > plain +. 0.05)

(* --- Generic generators --- *)

let test_partitioned_no_overlap () =
  let s = Stream_gen.partitioned ~sites:4 ~per_site:200 () in
  let owner = Hashtbl.create 64 in
  let ok = ref true in
  Stream.iter
    (fun ~site ~item ->
      match Hashtbl.find_opt owner item with
      | None -> Hashtbl.replace owner item site
      | Some s0 -> if s0 <> site then ok := false)
    s;
  Alcotest.(check bool) "no item crosses sites" true !ok

let test_overlapping_extremes () =
  let disjoint =
    Stream_gen.overlapping ~sites:4 ~per_site:500 ~shared_fraction:0.0 ()
  in
  let shared =
    Stream_gen.overlapping ~sites:4 ~per_site:500 ~shared_fraction:1.0 ()
  in
  Alcotest.(check bool) "full sharing has fewer distinct" true
    (Stream.distinct_count shared < Stream.distinct_count disjoint)

let test_duplicated_exact_copies () =
  let s = Stream_gen.duplicated ~sites:3 ~distinct:100 ~copies:7 () in
  let m = Stream.multiplicities s in
  Alcotest.(check int) "100 distinct" 100 (Hashtbl.length m);
  Hashtbl.iter
    (fun _ c -> Alcotest.(check int) "each item 7 times" 7 c)
    m

let test_sensor_gossip_duplication () =
  let s = Stream_gen.sensor_gossip ~sites:5 ~readings:300 ~gossip_rounds:3 () in
  let m = Stream.multiplicities s in
  Alcotest.(check int) "readings distinct" 300 (Hashtbl.length m);
  Hashtbl.iter
    (fun _ c -> Alcotest.(check int) "1 + rounds copies" 4 c)
    m

(* --- Window_truth --- *)

module Wt = Wd_workload.Window_truth

let brute_force_window events w =
  let n = Array.length events in
  let seen = Hashtbl.create 64 in
  for j = max 0 (n - w) to n - 1 do
    Hashtbl.replace seen events.(j) ()
  done;
  Hashtbl.length seen

let test_window_truth_basics () =
  let t = Wt.create () in
  Alcotest.(check int) "empty" 0 (Wt.distinct_last t 10);
  List.iter (Wt.add t) [ 1; 2; 1; 3 ];
  Alcotest.(check int) "arrivals" 4 (Wt.arrivals t);
  Alcotest.(check int) "total distinct" 3 (Wt.distinct_total t);
  (* Last 2 arrivals are [1; 3]. *)
  Alcotest.(check int) "window 2" 2 (Wt.distinct_last t 2);
  (* Last 3 arrivals are [2; 1; 3]. *)
  Alcotest.(check int) "window 3" 3 (Wt.distinct_last t 3);
  Alcotest.(check int) "window larger than stream" 3 (Wt.distinct_last t 100);
  Alcotest.(check int) "window 0" 0 (Wt.distinct_last t 0)

let test_window_truth_growth () =
  (* Force several capacity doublings. *)
  let t = Wt.create ~initial_capacity:16 () in
  let events = Array.init 5_000 (fun j -> j mod 700) in
  Array.iter (Wt.add t) events;
  Alcotest.(check int) "distinct total" 700 (Wt.distinct_total t);
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Printf.sprintf "window %d" w)
        (brute_force_window events w)
        (Wt.distinct_last t w))
    [ 1; 10; 350; 699; 700; 701; 1_400; 5_000 ]

let prop_window_truth_matches_brute_force =
  QCheck.Test.make ~name:"window truth = brute force" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 400) (int_range 0 50))
        (int_range 1 100))
    (fun (xs, w) ->
      let t = Wt.create ~initial_capacity:16 () in
      List.iter (Wt.add t) xs;
      Wt.distinct_last t w = brute_force_window (Array.of_list xs) w)

(* --- Trace_io --- *)

module Tio = Wd_workload.Trace_io

let with_temp f =
  let path = Filename.temp_file "wd_trace" ".dat" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let stream_equal a b =
  Stream.length a = Stream.length b
  && (let ok = ref true in
      for j = 0 to Stream.length a - 1 do
        if Stream.site a j <> Stream.site b j || Stream.item a j <> Stream.item b j
        then ok := false
      done;
      !ok)

let test_trace_csv_roundtrip () =
  let s = Stream_gen.zipf ~sites:5 ~events:2_000 ~universe:300 () in
  with_temp (fun path ->
      Tio.save_csv path s;
      Alcotest.(check bool) "roundtrip" true (stream_equal s (Tio.load_csv path)))

let test_trace_binary_roundtrip () =
  let s = Stream_gen.uniform ~sites:3 ~events:2_000 ~universe:999 () in
  with_temp (fun path ->
      Tio.save_binary path s;
      Alcotest.(check bool) "roundtrip" true
        (stream_equal s (Tio.load_binary path)))

let test_trace_csv_rejects () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "site,item\n1,2\nnonsense\n";
      close_out oc;
      match Tio.load_csv path with
      | _ -> Alcotest.fail "malformed CSV accepted"
      | exception Tio.Error (_, Tio.Malformed_line { line; _ }) ->
        Alcotest.(check int) "offending line number" 3 line
      | exception Tio.Error (_, e) ->
        Alcotest.failf "expected Malformed_line, got %s" (Tio.error_to_string e))

let test_trace_binary_rejects () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "NOTATRACE";
      close_out oc;
      match Tio.load_binary path with
      | _ -> Alcotest.fail "bad magic accepted"
      | exception Tio.Error (_, (Tio.Bad_magic _ | Tio.Truncated _)) -> ())

let () =
  Alcotest.run "workload"
    [
      ( "stream",
        [
          Alcotest.test_case "make validates" `Quick test_stream_make_validates;
          Alcotest.test_case "basics" `Quick test_stream_basics;
          Alcotest.test_case "prefix/concat" `Quick test_stream_prefix_concat;
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "shuffle" `Quick test_shuffle_preserves_events;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "probabilities" `Quick
            test_zipf_probabilities_sum_to_one;
          Alcotest.test_case "ordering" `Quick test_zipf_rank_ordering;
          Alcotest.test_case "sampling" `Quick
            test_zipf_sampling_matches_distribution;
          Alcotest.test_case "uniform limit" `Quick test_zipf_skew_zero_is_uniform;
          Alcotest.test_case "expected distinct" `Quick test_zipf_expected_distinct;
        ] );
      ( "two-phase",
        [
          Alcotest.test_case "structure" `Quick test_two_phase_structure;
          Alcotest.test_case "boundary counts" `Quick
            test_two_phase_boundary_counts;
          Alcotest.test_case "duplication accounting" `Quick
            test_two_phase_duplication_accounting;
          Alcotest.test_case "deterministic" `Quick test_two_phase_deterministic;
        ] );
      ( "http trace",
        [
          Alcotest.test_case "shape" `Quick test_http_trace_shape;
          Alcotest.test_case "views" `Quick test_http_views;
          Alcotest.test_case "duplication regimes" `Quick
            test_http_duplication_regimes;
          Alcotest.test_case "deterministic" `Quick test_http_deterministic;
          Alcotest.test_case "seed variation" `Quick test_http_seed_variation;
          Alcotest.test_case "duplication accounting" `Quick
            test_http_duplication_accounting;
          Alcotest.test_case "scaled" `Quick test_http_scaled;
          Alcotest.test_case "flash crowds" `Quick
            test_http_flash_crowds_concentrate_traffic;
        ] );
      ( "generators",
        [
          Alcotest.test_case "partitioned" `Quick test_partitioned_no_overlap;
          Alcotest.test_case "overlapping" `Quick test_overlapping_extremes;
          Alcotest.test_case "duplicated" `Quick test_duplicated_exact_copies;
          Alcotest.test_case "sensor gossip" `Quick test_sensor_gossip_duplication;
        ] );
      ( "window truth",
        [
          Alcotest.test_case "basics" `Quick test_window_truth_basics;
          Alcotest.test_case "growth" `Quick test_window_truth_growth;
          QCheck_alcotest.to_alcotest prop_window_truth_matches_brute_force;
        ] );
      ( "trace io",
        [
          Alcotest.test_case "csv roundtrip" `Quick test_trace_csv_roundtrip;
          Alcotest.test_case "binary roundtrip" `Quick
            test_trace_binary_roundtrip;
          Alcotest.test_case "csv rejects junk" `Quick test_trace_csv_rejects;
          Alcotest.test_case "binary rejects junk" `Quick
            test_trace_binary_rejects;
        ] );
    ]
