(* Integration and property tests for the distinct-count tracking
   protocols (NS, SC, SS, LS, EC). *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Network = Wd_net.Network
module Wire = Wd_net.Wire
module Dc = Wd_protocol.Dc_tracker
module Stream = Wd_workload.Stream
module Stream_gen = Wd_workload.Stream_gen

let mk_family ?(seed = 81) ?(bitmaps = 256) () =
  Fm.family_custom ~rng:(Rng.create seed) ~variant:Fm.Stochastic ~bitmaps

let run_stream tracker stream =
  Stream.iter (fun ~site ~item -> Dc.Fm.observe tracker ~site item) stream

let algo_name = Dc.algorithm_to_string

(* --- EC (exact baseline) --- *)

let test_ec_is_exact () =
  let stream = Stream_gen.zipf ~sites:4 ~events:20_000 ~universe:5_000 () in
  let tracker =
    Dc.Fm.create ~algorithm:Dc.EC ~theta:0.1 ~sites:4 ~family:(mk_family ())
      ()
  in
  run_stream tracker stream;
  Alcotest.(check (float 0.001))
    "EC estimate is exact"
    (Float.of_int (Stream.distinct_count stream))
    (Dc.Fm.estimate tracker)

let test_ec_cost_formula () =
  (* EC sends exactly one (header + item) message per locally-new item. *)
  let stream = Stream_gen.zipf ~sites:3 ~events:10_000 ~universe:2_000 () in
  let tracker =
    Dc.Fm.create ~algorithm:Dc.EC ~theta:0.1 ~sites:3 ~family:(mk_family ())
      ()
  in
  run_stream tracker stream;
  let locally_new = Array.init 3 (fun _ -> Hashtbl.create 64) in
  let expected = ref 0 in
  Stream.iter
    (fun ~site ~item ->
      if not (Hashtbl.mem locally_new.(site) item) then begin
        Hashtbl.replace locally_new.(site) item ();
        incr expected
      end)
    stream;
  Alcotest.(check int) "bytes = new items x message size"
    (!expected * Wire.message ~payload:Wire.item_bytes)
    (Network.total_bytes (Dc.Fm.network tracker));
  Alcotest.(check int) "no downstream traffic" 0
    (Network.bytes_down (Dc.Fm.network tracker))

(* --- Correctness guarantee (Lemma 1) --- *)

(* Statistical check: the coordinator's estimate should track the true
   distinct count within alpha + theta most of the time.  With m=256
   bitmaps alpha ~ 5%; theta = 5%; we allow errors up to 2x the budget
   and demand 95% of continuous samples inside. *)
let test_guarantee algo () =
  let stream =
    Stream_gen.overlapping ~sites:5 ~per_site:8_000 ~shared_fraction:0.4 ()
  in
  let tracker =
    Dc.Fm.create ~algorithm:algo ~theta:0.05 ~sites:5 ~family:(mk_family ())
      ()
  in
  let truth = Hashtbl.create 4096 in
  let samples = ref 0 and violations = ref 0 in
  Stream.iteri
    (fun j ~site ~item ->
      Dc.Fm.observe tracker ~site item;
      if not (Hashtbl.mem truth item) then Hashtbl.replace truth item ();
      if j mod 199 = 0 && Hashtbl.length truth > 100 then begin
        incr samples;
        let n0 = Float.of_int (Hashtbl.length truth) in
        let err = Float.abs (Dc.Fm.estimate tracker -. n0) /. n0 in
        if err > 2.0 *. (0.05 +. 0.05) then incr violations
      end)
    stream;
  let ratio = Float.of_int !violations /. Float.of_int (max 1 !samples) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d/%d samples out of budget" (algo_name algo)
       !violations !samples)
    true (ratio < 0.05)

(* --- Information conservation (deterministic) ---

   At any instant, merging the coordinator sketch with every site's local
   sketch must reconstruct exactly the sketch of all items seen anywhere:
   the protocols never lose information, they only defer shipping it. *)
let test_no_information_loss algo () =
  let family = mk_family ~bitmaps:32 () in
  let stream =
    Stream_gen.overlapping ~sites:4 ~per_site:3_000 ~shared_fraction:0.5 ()
  in
  let tracker =
    Dc.Fm.create ~algorithm:algo ~theta:0.2 ~sites:4 ~family ()
  in
  let reference = Fm.create family in
  run_stream tracker stream;
  Stream.iter (fun ~site:_ ~item -> ignore (Fm.add reference item : bool)) stream;
  let reconstructed =
    match Dc.Fm.coordinator_sketch tracker with
    | None -> Alcotest.fail "approximate tracker must expose its sketch"
    | Some sk0 -> Fm.copy sk0
  in
  (* Site sketches are not exposed; instead check the coordinator sketch is
     dominated by the reference (no invented bits) and that local holdback
     is bounded: replaying the stream into the coordinator sketch yields
     the reference exactly. *)
  Stream.iter
    (fun ~site:_ ~item -> ignore (Fm.add reconstructed item : bool))
    stream;
  Alcotest.(check bool)
    (algo_name algo ^ ": coordinator sketch consistent with reference")
    true
    (Fm.equal reconstructed reference)

(* --- Shared-sketch structural invariants (deterministic) --- *)

let test_ss_sites_dominate_coordinator () =
  (* In SS every global change is broadcast, so each site's copy always
     contains the coordinator's sketch: merging sk0 into a site sketch
     must change nothing. *)
  let family = mk_family ~bitmaps:16 () in
  let stream =
    Stream_gen.overlapping ~sites:4 ~per_site:2_000 ~shared_fraction:0.5 ()
  in
  let tracker = Dc.Fm.create ~algorithm:Dc.SS ~theta:0.2 ~sites:4 ~family () in
  run_stream tracker stream;
  match Dc.Fm.coordinator_sketch tracker with
  | None -> Alcotest.fail "no coordinator sketch"
  | Some sk0 ->
    for i = 0 to 3 do
      match Dc.Fm.site_sketch tracker i with
      | None -> Alcotest.fail "no site sketch"
      | Some sk ->
        let merged = Fm.copy sk in
        Fm.merge_into ~dst:merged sk0;
        Alcotest.(check bool)
          (Printf.sprintf "site %d copy contains Sk_0" i)
          true (Fm.equal merged sk)
    done

let test_ls_sender_sync () =
  (* After an LS exchange the sender and coordinator agree exactly; we
     can't observe "just after" from outside, but at any point each LS
     site's sketch merged with sk0 equals sk0 merged with the site's
     unsent local additions — and crucially the coordinator dominates
     every site that has just exchanged.  Weaker checkable form: sk0
     contains every site's last-synced state, i.e. merging all site
     sketches into sk0 only adds information sites accumulated since
     their last send (bounded by the threshold band). *)
  let family = mk_family ~bitmaps:64 () in
  let stream =
    Stream_gen.overlapping ~sites:3 ~per_site:4_000 ~shared_fraction:0.3 ()
  in
  let tracker = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.1 ~sites:3 ~family () in
  run_stream tracker stream;
  match Dc.Fm.coordinator_sketch tracker with
  | None -> Alcotest.fail "no coordinator sketch"
  | Some sk0 ->
    let d0 = Fm.estimate sk0 in
    let full = Fm.copy sk0 in
    for i = 0 to 2 do
      match Dc.Fm.site_sketch tracker i with
      | Some sk -> Fm.merge_into ~dst:full sk
      | None -> Alcotest.fail "no site sketch"
    done;
    (* Unsent residue across k sites is at most ~theta of the total. *)
    Alcotest.(check bool)
      (Printf.sprintf "residue bounded: full %.0f vs d0 %.0f"
         (Fm.estimate full) d0)
      true
      (Fm.estimate full <= d0 *. 1.25)

(* --- Duplicate resilience --- *)

let test_duplicate_resilience algo () =
  (* Stream B = stream A with every event duplicated 3x across random
     sites; final coordinator estimates must agree closely since the
     distinct set is identical. *)
  let family = mk_family ~bitmaps:128 () in
  let base = Stream_gen.uniform ~sites:4 ~events:8_000 ~universe:3_000 () in
  let rng = Rng.create 99 in
  let dup_sites = Array.init (3 * Stream.length base) (fun _ -> Rng.int rng 4) in
  let dup_items =
    Array.init (3 * Stream.length base) (fun j -> Stream.item base (j mod Stream.length base))
  in
  let dup = Stream.concat [ base; Stream.make ~sites:dup_sites ~items:dup_items ] in
  let run stream =
    let tracker =
      Dc.Fm.create ~algorithm:algo ~theta:0.1 ~sites:4 ~family ()
    in
    run_stream tracker stream;
    Dc.Fm.estimate tracker
  in
  let e1 = run base and e2 = run dup in
  let rel = Float.abs (e1 -. e2) /. e1 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: duplicated stream estimate %.0f vs %.0f"
       (algo_name algo) e2 e1)
    true
    (rel < 0.15)

(* --- Communication cost sanity --- *)

let test_cheaper_than_exact algo () =
  (* On a large stream with many duplicates, every approximate protocol
     must beat the exact baseline.  Section 4.2's guarantee covers the
     outward (site-to-coordinator) traffic only: SS's eager downstream
     broadcasts can exceed EC — that is exactly why the paper drops SS
     from Figure 5(c) — so SS is held to the upstream bound while the
     others must win on total bytes. *)
  let stream =
    Stream_gen.duplicated ~sites:4 ~distinct:4_000 ~copies:20 ()
  in
  let family = mk_family ~bitmaps:64 () in
  let run algorithm =
    let tracker = Dc.Fm.create ~algorithm ~theta:0.1 ~sites:4 ~family () in
    run_stream tracker stream;
    Dc.Fm.network tracker
  in
  let approx = run algo and exact = run Dc.EC in
  if algo = Dc.SS then
    Alcotest.(check bool)
      (Printf.sprintf "SS upstream %d <= EC %d"
         (Network.bytes_up approx)
         (Network.total_bytes exact))
      true
      (Network.bytes_up approx <= Network.total_bytes exact)
  else
    Alcotest.(check bool)
      (Printf.sprintf "%s bytes %d < EC bytes %d" (algo_name algo)
         (Network.total_bytes approx)
         (Network.total_bytes exact))
      true
      (Network.total_bytes approx < Network.total_bytes exact)

let test_larger_theta_cheaper algo () =
  let stream =
    Stream_gen.overlapping ~sites:4 ~per_site:5_000 ~shared_fraction:0.3 ()
  in
  let family = mk_family ~bitmaps:64 () in
  let cost theta =
    let tracker = Dc.Fm.create ~algorithm:algo ~theta ~sites:4 ~family () in
    run_stream tracker stream;
    Network.total_bytes (Dc.Fm.network tracker)
  in
  let tight = cost 0.02 and loose = cost 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: theta=0.02 costs %d >= theta=0.5 costs %d"
       (algo_name algo) tight loose)
    true (tight >= loose)

let test_ns_has_no_downstream () =
  let stream = Stream_gen.uniform ~sites:3 ~events:10_000 ~universe:4_000 () in
  let tracker =
    Dc.Fm.create ~algorithm:Dc.NS ~theta:0.1 ~sites:3
      ~family:(mk_family ~bitmaps:64 ()) ()
  in
  run_stream tracker stream;
  Alcotest.(check int) "NS never sends downstream" 0
    (Network.bytes_down (Dc.Fm.network tracker))

let test_ls_downstream_unicast_only () =
  (* LS replies only to the sender: downstream messages = upstream
     sketch deliveries, never k-1 broadcasts. *)
  let stream = Stream_gen.uniform ~sites:6 ~events:20_000 ~universe:8_000 () in
  let tracker =
    Dc.Fm.create ~algorithm:Dc.LS ~theta:0.1 ~sites:6
      ~family:(mk_family ~bitmaps:64 ()) ()
  in
  run_stream tracker stream;
  let net = Dc.Fm.network tracker in
  Alcotest.(check bool) "downstream messages = upstream messages" true
    (Network.messages_down net = Network.messages_up net)

let test_radio_model_favors_ss () =
  (* Section 7.2: with broadcast-priced downstream, SS becomes much more
     competitive; its radio cost must be well below its unicast cost. *)
  let stream =
    Stream_gen.overlapping ~sites:8 ~per_site:4_000 ~shared_fraction:0.5 ()
  in
  let family = mk_family ~bitmaps:64 () in
  let cost cost_model =
    let tracker =
      Dc.Fm.create ~cost_model ~algorithm:Dc.SS ~theta:0.1 ~sites:8 ~family ()
    in
    run_stream tracker stream;
    Network.total_bytes (Dc.Fm.network tracker)
  in
  let unicast = cost Network.Unicast in
  let radio = cost Network.Radio_broadcast in
  Alcotest.(check bool)
    (Printf.sprintf "SS radio %d < unicast %d" radio unicast)
    true (radio < unicast)

let test_item_batching_never_worse () =
  let stream = Stream_gen.zipf ~sites:4 ~events:30_000 ~universe:10_000 () in
  let family = mk_family ~bitmaps:256 () in
  let cost item_batching =
    let tracker =
      Dc.Fm.create ~item_batching ~algorithm:Dc.NS ~theta:0.1 ~sites:4
        ~family ()
    in
    run_stream tracker stream;
    Network.total_bytes (Dc.Fm.network tracker)
  in
  let with_b = cost true and without = cost false in
  Alcotest.(check bool)
    (Printf.sprintf "batching %d <= plain %d" with_b without)
    true
    (with_b <= without)

let test_validation () =
  let family = mk_family () in
  Alcotest.check_raises "sites >= 1"
    (Invalid_argument "Dc_tracker.create: sites must be >= 1") (fun () ->
      ignore
        (Dc.Fm.create ~algorithm:Dc.NS ~theta:0.1 ~sites:0 ~family ()
          : Dc.Fm.t));
  Alcotest.check_raises "theta > 0"
    (Invalid_argument "Dc_tracker.create: theta must be positive") (fun () ->
      ignore
        (Dc.Fm.create ~algorithm:Dc.NS ~theta:0.0 ~sites:2 ~family ()
          : Dc.Fm.t));
  let t = Dc.Fm.create ~algorithm:Dc.NS ~theta:0.1 ~sites:2 ~family () in
  Alcotest.check_raises "site range"
    (Invalid_argument "Dc_tracker.observe: site index out of range")
    (fun () -> Dc.Fm.observe t ~site:5 42);
  Alcotest.check_raises "observe_batch length mismatch"
    (Invalid_argument "Dc_tracker.observe_batch: sites/items length mismatch")
    (fun () ->
      Dc.Fm.observe_batch t ~sites:[| 0 |] ~items:[| 1; 2 |] ~pos:0 ~len:1);
  Alcotest.check_raises "observe_batch slice range"
    (Invalid_argument "Dc_tracker.observe_batch: slice out of range")
    (fun () ->
      Dc.Fm.observe_batch t ~sites:[| 0 |] ~items:[| 1 |] ~pos:0 ~len:2)

(* The exact algorithm has no send threshold: the error must name EC so a
   caller poking the wrong mode learns which variant it holds. *)
let test_ec_has_no_threshold () =
  let family = mk_family () in
  let t = Dc.Fm.create ~algorithm:Dc.EC ~theta:0.1 ~sites:2 ~family () in
  Alcotest.check_raises "threshold names EC"
    (Invalid_argument
       "Dc_tracker.send_threshold: exact algorithm EC has no send threshold")
    (fun () -> ignore (Dc.Fm.site_send_threshold t 0 : float));
  Alcotest.check_raises "site range checked first"
    (Invalid_argument "Dc_tracker.site_send_threshold: site index out of range")
    (fun () -> ignore (Dc.Fm.site_send_threshold t 9 : float));
  (* Approximate algorithms do expose a finite threshold. *)
  let t = Dc.Fm.create ~algorithm:Dc.NS ~theta:0.1 ~sites:2 ~family () in
  Alcotest.(check bool)
    "NS threshold finite" true
    (Float.is_finite (Dc.Fm.site_send_threshold t 0))

let test_algorithm_strings () =
  List.iter
    (fun a ->
      Alcotest.(check bool)
        "roundtrip" true
        (Dc.algorithm_of_string (Dc.algorithm_to_string a) = Some a))
    Dc.all_algorithms;
  Alcotest.(check bool) "unknown" true (Dc.algorithm_of_string "XX" = None)

(* --- QCheck: conservation property on random multi-site streams --- *)

let prop_no_information_loss =
  QCheck.Test.make ~name:"no information loss on random streams" ~count:30
    QCheck.(
      triple (int_range 1 4)
        (list_of_size (Gen.int_range 1 300) (int_range 0 400))
        (int_range 0 3))
    (fun (k, items, algo_idx) ->
      let algo = List.nth Dc.approximate_algorithms algo_idx in
      let family = mk_family ~seed:82 ~bitmaps:8 () in
      let tracker = Dc.Fm.create ~algorithm:algo ~theta:0.3 ~sites:k ~family () in
      let reference = Fm.create family in
      List.iteri
        (fun j v ->
          Dc.Fm.observe tracker ~site:(j mod k) v;
          ignore (Fm.add reference v : bool))
        items;
      match Dc.Fm.coordinator_sketch tracker with
      | None -> false
      | Some sk0 ->
        let reconstructed = Fm.copy sk0 in
        List.iter (fun v -> ignore (Fm.add reconstructed v : bool)) items;
        Fm.equal reconstructed reference)

let () =
  let per_algo name f =
    List.map
      (fun a ->
        Alcotest.test_case
          (Printf.sprintf "%s (%s)" name (algo_name a))
          `Quick (f a))
      Dc.approximate_algorithms
  in
  Alcotest.run "dc-tracker"
    [
      ( "exact baseline",
        [
          Alcotest.test_case "EC exact" `Quick test_ec_is_exact;
          Alcotest.test_case "EC cost formula" `Quick test_ec_cost_formula;
        ] );
      ("guarantee", per_algo "error budget" test_guarantee);
      ("conservation", per_algo "no info loss" test_no_information_loss);
      ( "sharing invariants",
        [
          Alcotest.test_case "SS sites dominate Sk0" `Quick
            test_ss_sites_dominate_coordinator;
          Alcotest.test_case "LS residue bounded" `Quick test_ls_sender_sync;
        ] );
      ("duplicates", per_algo "duplicate resilience" test_duplicate_resilience);
      ( "cost",
        per_algo "cheaper than exact" test_cheaper_than_exact
        @ per_algo "theta monotone" test_larger_theta_cheaper
        @ [
            Alcotest.test_case "NS silent downstream" `Quick
              test_ns_has_no_downstream;
            Alcotest.test_case "LS unicast replies" `Quick
              test_ls_downstream_unicast_only;
            Alcotest.test_case "radio favors SS" `Quick test_radio_model_favors_ss;
            Alcotest.test_case "batching never worse" `Quick
              test_item_batching_never_worse;
          ] );
      ( "api",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "EC has no threshold" `Quick
            test_ec_has_no_threshold;
          Alcotest.test_case "algorithm strings" `Quick test_algorithm_strings;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_no_information_loss ]);
    ]
