(* Tests for the simulation / measurement harness. *)

(* The legacy run_dc/run_ds/run_hh wrappers are exercised here on
   purpose: they must stay bit-identical to the unified Simulation.run. *)
[@@@ocaml.alert "-deprecated"]

module Sim = Whats_different.Simulation
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Stream = Wd_workload.Stream
module Stream_gen = Wd_workload.Stream_gen
module Http = Wd_workload.Http_trace

let stream = Stream_gen.zipf ~sites:4 ~events:20_000 ~universe:5_000 ()

let test_run_dc_report_consistency () =
  let r =
    Sim.run_dc ~algorithm:Dc.LS ~theta:0.05 ~alpha:0.05 ~checkpoints:10 stream
  in
  Alcotest.(check int) "updates" (Stream.length stream) r.Sim.dc_updates;
  Alcotest.(check int) "total = up + down"
    (r.Sim.dc_bytes_up + r.Sim.dc_bytes_down)
    r.Sim.dc_total_bytes;
  Alcotest.(check int) "truth" (Stream.distinct_count stream)
    r.Sim.dc_final_truth;
  Alcotest.(check int) "checkpoint count" 10
    (Array.length r.Sim.dc_bytes_series);
  (* Series is cumulative, hence nondecreasing, ending at the total. *)
  let last = ref 0 in
  Array.iter
    (fun (_, b) ->
      Alcotest.(check bool) "nondecreasing" true (b >= !last);
      last := b)
    r.Sim.dc_bytes_series;
  Alcotest.(check int) "series ends at total" r.Sim.dc_total_bytes !last;
  let final_err =
    Float.abs (r.Sim.dc_final_estimate -. Float.of_int r.Sim.dc_final_truth)
    /. Float.of_int r.Sim.dc_final_truth
  in
  Alcotest.(check bool)
    (Printf.sprintf "final error %.3f within budget" final_err)
    true (final_err < 0.25)

let test_run_dc_deterministic () =
  let r1 = Sim.run_dc ~seed:5 ~algorithm:Dc.NS ~theta:0.05 ~alpha:0.05 stream in
  let r2 = Sim.run_dc ~seed:5 ~algorithm:Dc.NS ~theta:0.05 ~alpha:0.05 stream in
  Alcotest.(check int) "same bytes" r1.Sim.dc_total_bytes r2.Sim.dc_total_bytes;
  Alcotest.(check (float 0.0)) "same estimate" r1.Sim.dc_final_estimate
    r2.Sim.dc_final_estimate

let test_exact_dc_bytes_matches_ec_run () =
  let r = Sim.run_dc ~algorithm:Dc.EC ~theta:0.1 ~alpha:0.1 stream in
  Alcotest.(check int) "closed form = EC run" (Sim.exact_dc_bytes stream)
    r.Sim.dc_total_bytes

let test_run_ds_report_consistency () =
  let r = Sim.run_ds ~algorithm:Ds.LCO ~theta:0.3 ~threshold:64 stream in
  Alcotest.(check int) "updates" (Stream.length stream) r.Sim.ds_updates;
  Alcotest.(check bool) "sample bounded" true
    (List.length r.Sim.ds_final_sample <= 64);
  Alcotest.(check bool)
    (Printf.sprintf "count error %.3f <= theta" r.Sim.ds_max_count_error)
    true
    (r.Sim.ds_max_count_error <= 0.3 +. 1e-9);
  let d = r.Sim.ds_distinct_estimate in
  let n0 = Float.of_int (Stream.distinct_count stream) in
  Alcotest.(check bool)
    (Printf.sprintf "distinct estimate %.0f ~ %.0f" d n0)
    true
    (Float.abs (d -. n0) /. n0 < 0.5)

let test_exact_ds_bytes_matches_eds_run () =
  let r = Sim.run_ds ~algorithm:Ds.EDS ~theta:0.3 ~threshold:64 stream in
  Alcotest.(check int) "closed form = EDS run" (Sim.exact_ds_bytes stream)
    r.Sim.ds_total_bytes

let test_true_distinct_prefixes () =
  let prefixes = Sim.true_distinct_prefixes stream ~samples:5 in
  Alcotest.(check int) "5 samples" 5 (Array.length prefixes);
  let _, final = prefixes.(4) in
  Alcotest.(check int) "final is global truth"
    (Stream.distinct_count stream)
    final;
  (* Monotone. *)
  let last = ref 0 in
  Array.iter
    (fun (_, d) ->
      Alcotest.(check bool) "monotone" true (d >= !last);
      last := d)
    prefixes

let test_pair_stream_of_requests () =
  let cfg = { Http.default with requests = 5_000 } in
  let reqs = Http.generate cfg in
  let p = Sim.pair_stream_of_requests cfg Http.Per_region reqs in
  Alcotest.(check int) "length" (Array.length reqs) (Sim.pair_stream_length p);
  Alcotest.(check bool) "regions" true (Sim.pair_stream_sites p <= 4)

let test_run_hh_report () =
  let cfg = { Http.default with requests = 5_000 } in
  let reqs = Http.generate cfg in
  let p = Sim.pair_stream_of_requests cfg Http.Per_region reqs in
  let r =
    Sim.run_hh ~algorithm:Dc.LS ~theta:0.2
      ~config:{ Wd_aggregate.Fm_array.rows = 3; cols = 128; bitmaps = 10 }
      p
  in
  Alcotest.(check int) "updates" (Sim.pair_stream_length p) r.Sim.hh_updates;
  Alcotest.(check bool) "recall in [0,1]" true
    (r.Sim.hh_topk_recall >= 0.0 && r.Sim.hh_topk_recall <= 1.0);
  Alcotest.(check bool) "paid communication" true (r.Sim.hh_total_bytes > 0);
  Alcotest.(check bool) "exact baseline positive" true (r.Sim.hh_exact_bytes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "norm error %.4f small" r.Sim.hh_avg_norm_error)
    true
    (r.Sim.hh_avg_norm_error < 0.05)

let test_sketch_ablation_runs () =
  (* The generic runner must work over BJKST and HLL too. *)
  let module B = Sim.Make_dc (Wd_sketch.Bjkst) in
  let module H = Sim.Make_dc (Wd_sketch.Hyperloglog) in
  let rb = B.run ~algorithm:Dc.LS ~theta:0.05 ~alpha:0.05 stream in
  let rh = H.run ~algorithm:Dc.LS ~theta:0.05 ~alpha:0.05 stream in
  List.iter
    (fun r ->
      let err =
        Float.abs (r.Sim.dc_final_estimate -. Float.of_int r.Sim.dc_final_truth)
        /. Float.of_int r.Sim.dc_final_truth
      in
      Alcotest.(check bool)
        (Printf.sprintf "final error %.3f acceptable" err)
        true (err < 0.25))
    [ rb; rh ]

let () =
  Alcotest.run "simulation"
    [
      ( "dc",
        [
          Alcotest.test_case "report consistency" `Quick
            test_run_dc_report_consistency;
          Alcotest.test_case "deterministic" `Quick test_run_dc_deterministic;
          Alcotest.test_case "exact bytes closed form" `Quick
            test_exact_dc_bytes_matches_ec_run;
        ] );
      ( "ds",
        [
          Alcotest.test_case "report consistency" `Quick
            test_run_ds_report_consistency;
          Alcotest.test_case "exact bytes closed form" `Quick
            test_exact_ds_bytes_matches_eds_run;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "true prefixes" `Quick test_true_distinct_prefixes;
          Alcotest.test_case "pair stream" `Quick test_pair_stream_of_requests;
        ] );
      ( "hh",
        [ Alcotest.test_case "report" `Quick test_run_hh_report ] );
      ( "ablation",
        [ Alcotest.test_case "other sketches" `Quick test_sketch_ablation_runs ] );
    ]
