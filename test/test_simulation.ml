(* Tests for the simulation / measurement harness. *)

module Sim = Whats_different.Simulation
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Query = Wd_view.Query
module Stream = Wd_workload.Stream
module Stream_gen = Wd_workload.Stream_gen
module Http = Wd_workload.Http_trace

let stream = Stream_gen.zipf ~sites:4 ~events:20_000 ~universe:5_000 ()

let test_run_dc_report_consistency () =
  let r =
    Sim.run ~checkpoints:10 (Query.dc ~theta:0.05 ~alpha:0.05 Dc.LS) stream
  in
  Alcotest.(check int) "updates" (Stream.length stream) r.Sim.updates;
  Alcotest.(check int) "total = up + down"
    (r.Sim.bytes_up + r.Sim.bytes_down)
    r.Sim.total_bytes;
  Alcotest.(check int) "flat run pays no backbone" 0 r.Sim.backbone_bytes;
  Alcotest.(check int) "truth" (Stream.distinct_count stream)
    r.Sim.final_truth;
  Alcotest.(check int) "checkpoint count" 10 (Array.length r.Sim.bytes_series);
  (* Series is cumulative, hence nondecreasing, ending at the total. *)
  let last = ref 0 in
  Array.iter
    (fun (_, b) ->
      Alcotest.(check bool) "nondecreasing" true (b >= !last);
      last := b)
    r.Sim.bytes_series;
  Alcotest.(check int) "series ends at total" r.Sim.total_bytes !last;
  let final_err =
    Float.abs (r.Sim.final_estimate -. Float.of_int r.Sim.final_truth)
    /. Float.of_int r.Sim.final_truth
  in
  Alcotest.(check bool)
    (Printf.sprintf "final error %.3f within budget" final_err)
    true (final_err < 0.25)

let test_run_dc_deterministic () =
  let r1 = Sim.run ~seed:5 (Query.dc ~theta:0.05 ~alpha:0.05 Dc.NS) stream in
  let r2 = Sim.run ~seed:5 (Query.dc ~theta:0.05 ~alpha:0.05 Dc.NS) stream in
  Alcotest.(check int) "same bytes" r1.Sim.total_bytes r2.Sim.total_bytes;
  Alcotest.(check (float 0.0)) "same estimate" r1.Sim.final_estimate
    r2.Sim.final_estimate

let test_exact_dc_bytes_matches_ec_run () =
  let r = Sim.run (Query.dc ~theta:0.1 ~alpha:0.1 Dc.EC) stream in
  Alcotest.(check int) "closed form = EC run" (Sim.exact_dc_bytes stream)
    r.Sim.total_bytes

let ds_aux (r : Sim.run) =
  match r.Sim.aux with
  | Sim.Ds_aux { level; sample; max_count_error } ->
    (level, sample, max_count_error)
  | _ -> Alcotest.fail "ds run must carry Ds_aux"

let test_run_ds_report_consistency () =
  let r = Sim.run (Query.ds ~theta:0.3 ~threshold:64 Ds.LCO) stream in
  let _, sample, max_count_error = ds_aux r in
  Alcotest.(check int) "updates" (Stream.length stream) r.Sim.updates;
  Alcotest.(check bool) "sample bounded" true (List.length sample <= 64);
  Alcotest.(check bool)
    (Printf.sprintf "count error %.3f <= theta" max_count_error)
    true
    (max_count_error <= 0.3 +. 1e-9);
  let d = r.Sim.final_estimate in
  let n0 = Float.of_int (Stream.distinct_count stream) in
  Alcotest.(check bool)
    (Printf.sprintf "distinct estimate %.0f ~ %.0f" d n0)
    true
    (Float.abs (d -. n0) /. n0 < 0.5)

let test_exact_ds_bytes_matches_eds_run () =
  let r = Sim.run (Query.ds ~theta:0.3 ~threshold:64 Ds.EDS) stream in
  Alcotest.(check int) "closed form = EDS run" (Sim.exact_ds_bytes stream)
    r.Sim.total_bytes

let test_true_distinct_prefixes () =
  let prefixes = Sim.true_distinct_prefixes stream ~samples:5 in
  Alcotest.(check int) "5 samples" 5 (Array.length prefixes);
  let _, final = prefixes.(4) in
  Alcotest.(check int) "final is global truth"
    (Stream.distinct_count stream)
    final;
  (* Monotone. *)
  let last = ref 0 in
  Array.iter
    (fun (_, d) ->
      Alcotest.(check bool) "monotone" true (d >= !last);
      last := d)
    prefixes

let test_pair_stream_of_requests () =
  let cfg = { Http.default with requests = 5_000 } in
  let reqs = Http.generate cfg in
  let p = Sim.pair_stream_of_requests cfg Http.Per_region reqs in
  Alcotest.(check int) "length" (Array.length reqs) (Sim.pair_stream_length p);
  Alcotest.(check bool) "regions" true (Sim.pair_stream_sites p <= 4)

let hh_config = { Wd_aggregate.Fm_array.rows = 3; cols = 128; bitmaps = 10 }

let test_run_hh_report () =
  let cfg = { Http.default with requests = 5_000 } in
  let reqs = Http.generate cfg in
  let p = Sim.pair_stream_of_requests cfg Http.Per_region reqs in
  let r =
    Sim.run
      (Query.hh ~theta:0.2 ~config:hh_config Dc.LS)
      (Sim.stream_of_pairs p)
  in
  let avg_norm_error, topk_recall, exact_bytes =
    match r.Sim.aux with
    | Sim.Hh_aux { avg_norm_error; topk_recall; exact_bytes } ->
      (avg_norm_error, topk_recall, exact_bytes)
    | _ -> Alcotest.fail "hh run must carry Hh_aux"
  in
  Alcotest.(check int) "updates" (Sim.pair_stream_length p) r.Sim.updates;
  Alcotest.(check bool) "recall in [0,1]" true
    (topk_recall >= 0.0 && topk_recall <= 1.0);
  Alcotest.(check bool) "paid communication" true (r.Sim.total_bytes > 0);
  Alcotest.(check bool) "exact baseline positive" true (exact_bytes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "norm error %.4f small" avg_norm_error)
    true (avg_norm_error < 0.05)

let test_sketch_ablation_runs () =
  (* The generic runner must work over BJKST and HLL too. *)
  let module B = Sim.Make_dc (Wd_sketch.Bjkst) in
  let module H = Sim.Make_dc (Wd_sketch.Hyperloglog) in
  let rb = B.run ~algorithm:Dc.LS ~theta:0.05 ~alpha:0.05 stream in
  let rh = H.run ~algorithm:Dc.LS ~theta:0.05 ~alpha:0.05 stream in
  List.iter
    (fun r ->
      let err =
        Float.abs (r.Sim.dc_final_estimate -. Float.of_int r.Sim.dc_final_truth)
        /. Float.of_int r.Sim.dc_final_truth
      in
      Alcotest.(check bool)
        (Printf.sprintf "final error %.3f acceptable" err)
        true (err < 0.25))
    [ rb; rh ]

(* The deprecated wrappers are exercised here ON PURPOSE, and nowhere
   else: this is the one test that pins them bit-identical to the
   unified Simulation.run, field by field, so every other caller can
   migrate with confidence. *)
module Legacy = struct
  [@@@ocaml.alert "-deprecated"]

  let run_dc = Sim.run_dc
  let run_ds = Sim.run_ds
  let run_hh = Sim.run_hh
end

let test_legacy_wrappers_bit_identical () =
  (* DC *)
  let l = Legacy.run_dc ~seed:5 ~algorithm:Dc.LS ~theta:0.05 ~alpha:0.05 stream in
  let u = Sim.run ~seed:5 (Query.dc ~theta:0.05 ~alpha:0.05 Dc.LS) stream in
  Alcotest.(check int) "dc updates" u.Sim.updates l.Sim.dc_updates;
  Alcotest.(check int) "dc total bytes" u.Sim.total_bytes l.Sim.dc_total_bytes;
  Alcotest.(check int) "dc bytes up" u.Sim.bytes_up l.Sim.dc_bytes_up;
  Alcotest.(check int) "dc bytes down" u.Sim.bytes_down l.Sim.dc_bytes_down;
  Alcotest.(check int) "dc sends" u.Sim.sends l.Sim.dc_sends;
  Alcotest.(check (float 0.0))
    "dc estimate" u.Sim.final_estimate l.Sim.dc_final_estimate;
  Alcotest.(check int) "dc truth" u.Sim.final_truth l.Sim.dc_final_truth;
  (* DS *)
  let l = Legacy.run_ds ~seed:5 ~algorithm:Ds.GCS ~theta:0.3 ~threshold:64 stream in
  let u = Sim.run ~seed:5 (Query.ds ~theta:0.3 ~threshold:64 Ds.GCS) stream in
  let level, sample, max_count_error = ds_aux u in
  Alcotest.(check int) "ds total bytes" u.Sim.total_bytes l.Sim.ds_total_bytes;
  Alcotest.(check int) "ds sends" u.Sim.sends l.Sim.ds_sends;
  Alcotest.(check int) "ds level" level l.Sim.ds_final_level;
  Alcotest.(check bool) "ds sample" true (sample = l.Sim.ds_final_sample);
  Alcotest.(check (float 0.0))
    "ds estimate" u.Sim.final_estimate l.Sim.ds_distinct_estimate;
  Alcotest.(check (float 0.0))
    "ds count error" max_count_error l.Sim.ds_max_count_error;
  (* HH *)
  let cfg = { Http.default with requests = 2_000 } in
  let p = Sim.pair_stream_of_requests cfg Http.Per_region (Http.generate cfg) in
  let l = Legacy.run_hh ~seed:5 ~algorithm:Dc.LS ~theta:0.2 ~config:hh_config p in
  let u =
    Sim.run ~seed:5
      (Query.hh ~theta:0.2 ~config:hh_config Dc.LS)
      (Sim.stream_of_pairs p)
  in
  Alcotest.(check int) "hh total bytes" u.Sim.total_bytes l.Sim.hh_total_bytes;
  Alcotest.(check int) "hh sends" u.Sim.sends l.Sim.hh_sends

let () =
  Alcotest.run "simulation"
    [
      ( "dc",
        [
          Alcotest.test_case "report consistency" `Quick
            test_run_dc_report_consistency;
          Alcotest.test_case "deterministic" `Quick test_run_dc_deterministic;
          Alcotest.test_case "exact bytes closed form" `Quick
            test_exact_dc_bytes_matches_ec_run;
        ] );
      ( "ds",
        [
          Alcotest.test_case "report consistency" `Quick
            test_run_ds_report_consistency;
          Alcotest.test_case "exact bytes closed form" `Quick
            test_exact_ds_bytes_matches_eds_run;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "true prefixes" `Quick test_true_distinct_prefixes;
          Alcotest.test_case "pair stream" `Quick test_pair_stream_of_requests;
        ] );
      ( "hh",
        [ Alcotest.test_case "report" `Quick test_run_hh_report ] );
      ( "ablation",
        [ Alcotest.test_case "other sketches" `Quick test_sketch_ablation_runs ] );
      ( "legacy",
        [
          Alcotest.test_case "wrappers = unified run" `Quick
            test_legacy_wrappers_bit_identical;
        ] );
    ]
