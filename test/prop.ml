(* A minimal hand-rolled property-testing harness over the repo's own
   deterministic RNG (no new dependencies).

   Every property runs [count] cases (default 200) from a seed taken
   from WD_PROP_SEED (default 42), so CI can run the suite both pinned
   and randomized.  On falsification the counterexample is greedily
   shrunk and the failure report carries the seed, the case index, and
   the shrunk value — enough to reproduce with
   [WD_PROP_SEED=<seed> dune exec test/<test>.exe]. *)

module Rng = Wd_hashing.Rng

let seed =
  match Sys.getenv_opt "WD_PROP_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg "WD_PROP_SEED must be an integer")
  | None -> 42

type 'a gen = Rng.t -> 'a

(* ------------------------------------------------------------------ *)
(* Generators *)

let int_range lo hi rng =
  if hi < lo then invalid_arg "Prop.int_range: hi < lo";
  lo + Rng.int rng (hi - lo + 1)

let list ?(min_len = 0) ~max_len (g : 'a gen) rng =
  let n = int_range min_len max_len rng in
  List.init n (fun _ -> g rng)

let pair ga gb rng =
  let a = ga rng in
  let b = gb rng in
  (a, b)

let triple ga gb gc rng =
  let a = ga rng in
  let b = gb rng in
  let c = gc rng in
  (a, b, c)

(* ------------------------------------------------------------------ *)
(* Shrinking: candidate lists, tried in order, greedily. *)

let shrink_int n =
  if n = 0 then [] else List.sort_uniq compare [ 0; n / 2; n - 1 ]

(* Halve-removal first (fast structural shrinking), then point-shrink
   elements. *)
let shrink_list shrink_elt l =
  let n = List.length l in
  let removals =
    if n = 0 then []
    else if n = 1 then [ [] ]
    else
      let half = n / 2 in
      let front = List.filteri (fun i _ -> i < half) l in
      let back = List.filteri (fun i _ -> i >= half) l in
      [ front; back ]
      @ List.init n (fun i -> List.filteri (fun j _ -> j <> i) l)
  in
  let elt_shrinks =
    List.concat
      (List.mapi
         (fun i x ->
           List.map
             (fun x' -> List.mapi (fun j y -> if i = j then x' else y) l)
             (shrink_elt x))
         l)
  in
  removals @ elt_shrinks

let no_shrink _ = []

(* ------------------------------------------------------------------ *)
(* Display *)

let show_int = string_of_int

let show_list show l =
  "[" ^ String.concat "; " (List.map show l) ^ "]"

let show_pair sa sb (a, b) = Printf.sprintf "(%s, %s)" (sa a) (sb b)

(* ------------------------------------------------------------------ *)
(* Runner *)

let greedy_shrink ~shrink ~fails x0 =
  let steps = ref 0 in
  let rec go x =
    if !steps > 1_000 then x
    else
      match List.find_opt (fun c -> incr steps; fails c) (shrink x) with
      | Some smaller -> go smaller
      | None -> x
  in
  go x0

let check ?(count = 200) ?(shrink = no_shrink) ~show ~name (gen : 'a gen) prop
    =
  let rng = Rng.create seed in
  for case = 1 to count do
    let x = gen rng in
    let ok = try prop x with e -> raise e in
    if not ok then begin
      let fails c = not (try prop c with _ -> false) in
      let small = greedy_shrink ~shrink ~fails x in
      Alcotest.failf
        "property %S falsified (WD_PROP_SEED=%d, case %d/%d)\n\
         counterexample: %s\n\
         shrunk to:      %s"
        name seed case count (show x) (show small)
    end
  done

(* Alcotest glue: one property = one quick test case. *)
let test_case ?count ?shrink ~show ~name gen prop =
  Alcotest.test_case name `Quick (fun () ->
      check ?count ?shrink ~show ~name gen prop)
