(* Fault-injection harness tests: the Faults plan itself, ledger-charging
   semantics under drops/duplicates, trace/ledger reconciliation, and
   end-to-end convergence of the DC and DS protocols over an unreliable
   network with a mid-run site crash. *)

module Faults = Wd_net.Faults
module Network = Wd_net.Network
module Wire = Wd_net.Wire
module Sim = Whats_different.Simulation
module Query = Wd_view.Query
module Monitor = Whats_different.Monitor
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event
module Summary = Wd_obs.Summary
module Stream_gen = Wd_workload.Stream_gen

(* ------------------------------------------------------------------ *)
(* Faults plan *)

let spec_parsing () =
  (match Faults.of_spec ~seed:3 "drop=0.1,dup=0.02,crash=1:500:800" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok p ->
    Alcotest.(check bool) "enabled" true (Faults.enabled p);
    Alcotest.(check bool) "has crashes" true (Faults.has_crashes p);
    Alcotest.(check int) "crash count" 1 (List.length (Faults.crashes p));
    Alcotest.(check bool) "down inside window" true
      (Faults.is_down p ~site:1 ~time:500);
    Alcotest.(check bool) "up at window end" false
      (Faults.is_down p ~site:1 ~time:800);
    Alcotest.(check bool) "other site up" false
      (Faults.is_down p ~site:0 ~time:600));
  List.iter
    (fun bad ->
      match Faults.of_spec ~seed:3 bad with
      | Ok _ -> Alcotest.failf "spec %S should be rejected" bad
      | Error _ -> ())
    [ "drop=1.5"; "drop=0.6,dup=0.6"; "crash=1:800:500"; "wibble=1"; "drop=x" ]

let roll_determinism () =
  let mk () =
    match Faults.of_spec ~seed:9 "drop=0.3,dup=0.2,corrupt=0.1" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let trace p =
    List.init 200 (fun i ->
        match Faults.roll p ~site:(i mod 4) ~time:i with
        | Faults.Delivered n -> n
        | Faults.Lost Event.Link_drop -> -1
        | Faults.Lost Event.Corrupt_drop -> -2
        | Faults.Lost Event.Crash_drop -> -3)
  in
  Alcotest.(check (list int)) "same seed, same outcomes" (trace (mk ()))
    (trace (mk ()));
  let p = mk () in
  let outcomes = trace p in
  Alcotest.(check bool) "drops occur" true (List.mem (-1) outcomes);
  Alcotest.(check bool) "corruptions occur" true (List.mem (-2) outcomes);
  Alcotest.(check bool) "duplicates occur" true (List.mem 2 outcomes)

(* ------------------------------------------------------------------ *)
(* Ledger-charging semantics *)

let duplicates_are_charged () =
  let net = Network.create ~sites:2 () in
  Network.set_faults net (Faults.create ~duplicate:1.0 ~seed:5 ());
  (match Network.transmit_up net ~site:0 ~payload:6 with
  | Faults.Delivered 2 -> ()
  | _ -> Alcotest.fail "expected a duplicated delivery");
  let m = Wire.message ~payload:6 in
  Alcotest.(check int) "both copies charged" (2 * m) (Network.bytes_up net);
  Alcotest.(check int) "both copies are messages" 2 (Network.messages_up net);
  Alcotest.(check int) "duplicate counted" 1 (Network.duplicate_deliveries net);
  ignore (Network.transmit_down net ~site:1 ~payload:4);
  let md = Wire.message ~payload:4 in
  Alcotest.(check int) "down copies charged" (2 * md) (Network.bytes_down net);
  Alcotest.(check int) "per-site ledger sees both copies" (2 * md)
    (Network.site_bytes_down net 1);
  (* The bytes_down = medium + sum(site links) invariant is asserted
     inside Network on every send and on reset; exercise reset here. *)
  Network.reset net;
  Alcotest.(check int) "reset clears fault counters" 0
    (Network.duplicate_deliveries net)

let drops_are_charged () =
  let plan = Faults.create ~drop:1.0 ~seed:5 () in
  let net = Network.create ~sites:2 () in
  Network.set_faults net plan;
  (match Network.transmit_up net ~site:0 ~payload:8 with
  | Faults.Lost Event.Link_drop -> ()
  | _ -> Alcotest.fail "expected a link drop");
  Alcotest.(check int) "lost transmission still charged"
    (Wire.message ~payload:8) (Network.bytes_up net);
  Alcotest.(check int) "drop counted" 1 (Network.drops net);
  let d = Network.reliable_up ~max_retries:3 net ~site:0 ~payload:8 in
  Alcotest.(check bool) "never received" false d.Network.received;
  Alcotest.(check bool) "never acked" false d.Network.acked;
  Alcotest.(check int) "initial try + retries" 4 d.Network.attempts;
  Alcotest.(check int) "retries counted" 3 (Network.retries net)

let reliable_survives_ack_loss () =
  (* Under a modest drop rate every exchange must eventually land the
     payload, possibly unacked (ack losses force resends, absorbed by
     the sketches' idempotence). *)
  let plan = Faults.create ~drop:0.3 ~seed:11 () in
  let net = Network.create ~sites:1 () in
  Network.set_faults net plan;
  let acked = ref 0 and received = ref 0 in
  for _ = 1 to 100 do
    let d = Network.reliable_up ~max_retries:10 net ~site:0 ~payload:16 in
    if d.Network.received then incr received;
    if d.Network.acked then incr acked
  done;
  Alcotest.(check bool) "acked implies received" true (!acked <= !received);
  Alcotest.(check int) "all exchanges eventually received" 100 !received

(* ------------------------------------------------------------------ *)
(* End-to-end convergence + trace/ledger reconciliation *)

let stream () =
  Stream_gen.zipf ~seed:11 ~sites:4 ~events:20_000 ~universe:6_000 ()

let faulty_plan () =
  Faults.create ~drop:0.1 ~duplicate:0.02
    ~crashes:[ { Faults.site = 1; down_from = 5_000; down_until = 8_000 } ]
    ~seed:3 ()

let reconcile_with_summary ~drops ~duplicates ~retries ~bytes_up ~bytes_down
    events =
  let s = Summary.of_events events in
  Alcotest.(check int) "trace drops = ledger" drops s.Summary.drops;
  Alcotest.(check int) "trace duplicates = ledger" duplicates
    s.Summary.duplicates;
  Alcotest.(check int) "trace retries = ledger" retries s.Summary.retries;
  Alcotest.(check int) "trace bytes up = ledger" bytes_up s.Summary.bytes_up;
  Alcotest.(check int) "trace bytes down = ledger" bytes_down
    s.Summary.bytes_down;
  Alcotest.(check bool) "every crash recovered or degraded" true
    (s.Summary.crashes = s.Summary.recovers || s.Summary.degraded_sites <> []);
  s

let dc_converges_under_faults () =
  let ring = Sink.ring ~capacity:65536 in
  let theta = 0.03 and alpha = 0.07 in
  let r =
    Sim.run ~seed:7 ~sink:ring ~faults:(faulty_plan ())
      (Query.dc ~theta ~alpha Dc.LS) (stream ())
  in
  Alcotest.(check bool) "faults actually fired" true (r.Sim.drops > 0);
  Alcotest.(check bool) "retries happened" true (r.Sim.retries > 0);
  Alcotest.(check bool) "crash lost updates" true (r.Sim.lost_updates > 0);
  let rel_err =
    Float.abs (r.Sim.final_estimate -. Float.of_int r.Sim.final_truth)
    /. Float.of_int r.Sim.final_truth
  in
  Alcotest.(check bool)
    (Printf.sprintf "relative error %.4f within theta+alpha" rel_err)
    true
    (rel_err <= theta +. alpha);
  let s =
    reconcile_with_summary ~drops:r.Sim.drops
      ~duplicates:r.Sim.duplicates ~retries:r.Sim.retries
      ~bytes_up:r.Sim.bytes_up ~bytes_down:r.Sim.bytes_down
      (Sink.ring_contents ring)
  in
  Alcotest.(check int) "one crash" 1 s.Summary.crashes;
  Alcotest.(check int) "one recovery" 1 s.Summary.recovers;
  Alcotest.(check (list int)) "no site left degraded" []
    s.Summary.degraded_sites

let ds_converges_under_faults () =
  let ring = Sink.ring ~capacity:65536 in
  let theta = 0.25 in
  let r =
    Sim.run ~seed:7 ~sink:ring ~faults:(faulty_plan ())
      (Query.ds ~theta ~threshold:256 Ds.GCS) (stream ())
  in
  Alcotest.(check bool) "faults actually fired" true (r.Sim.drops > 0);
  Alcotest.(check bool) "crash lost updates" true (r.Sim.lost_updates > 0);
  let max_count_error =
    match r.Sim.aux with
    | Sim.Ds_aux { max_count_error; _ } -> max_count_error
    | _ -> Alcotest.fail "ds run must carry Ds_aux"
  in
  Alcotest.(check bool)
    (Printf.sprintf "max count error %.4f within theta" max_count_error)
    true
    (max_count_error <= theta);
  ignore
    (reconcile_with_summary ~drops:r.Sim.drops ~duplicates:r.Sim.duplicates
       ~retries:r.Sim.retries ~bytes_up:r.Sim.bytes_up
       ~bytes_down:r.Sim.bytes_down
       (Sink.ring_contents ring))

let radio_loss_reconciles () =
  (* Radio reception losses emit bytes-0 drops: the medium was charged
     once, so per-site attribution must not double count. *)
  let ring = Sink.ring ~capacity:65536 in
  let r =
    Sim.run ~seed:7 ~cost_model:Network.Radio_broadcast ~sink:ring
      ~faults:(Faults.create ~drop:0.1 ~seed:3 ())
      (Query.dc ~theta:0.03 ~alpha:0.07 Dc.SS)
      (stream ())
  in
  let s = Summary.of_events (Sink.ring_contents ring) in
  Alcotest.(check int) "trace bytes down = ledger" r.Sim.bytes_down
    s.Summary.bytes_down;
  Alcotest.(check bool) "medium carries the broadcasts" true
    (s.Summary.medium_bytes > 0);
  Alcotest.(check bool) "drops recorded" true (s.Summary.drops > 0)

let monitor_degraded_status () =
  (* A site crashed past the staleness bound surfaces as Degraded; a
     short outage does not. *)
  let cfg =
    {
      (Monitor.default_config ~sites:3) with
      Monitor.faults =
        Faults.create
          ~crashes:
            [ { Faults.site = 2; down_from = 100; down_until = 100_000 } ]
          ~seed:4 ();
      staleness_bound = 500;
    }
  in
  let m = Monitor.create cfg in
  let rng = Wd_hashing.Rng.create 8 in
  for i = 1 to 2_000 do
    Monitor.observe m ~site:(i mod 3) (Wd_hashing.Rng.int rng 1_000)
  done;
  (match Monitor.status m with
  | Monitor.Degraded [ 2 ] -> ()
  | Monitor.Degraded l ->
    Alcotest.failf "degraded sites %s, expected [2]"
      (String.concat "," (List.map string_of_int l))
  | Monitor.Healthy -> Alcotest.fail "expected Degraded");
  Alcotest.(check bool) "lost updates counted" true
    (Monitor.lost_updates m > 0);
  let healthy = Monitor.create (Monitor.default_config ~sites:3) in
  Monitor.observe healthy ~site:0 7;
  match Monitor.status healthy with
  | Monitor.Healthy -> ()
  | Monitor.Degraded _ -> Alcotest.fail "no-fault monitor must be healthy"

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "spec parsing" `Quick spec_parsing;
          Alcotest.test_case "roll determinism" `Quick roll_determinism;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "duplicates charged" `Quick duplicates_are_charged;
          Alcotest.test_case "drops charged" `Quick drops_are_charged;
          Alcotest.test_case "reliable survives ack loss" `Quick
            reliable_survives_ack_loss;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "dc converges under faults" `Quick
            dc_converges_under_faults;
          Alcotest.test_case "ds converges under faults" `Quick
            ds_converges_under_faults;
          Alcotest.test_case "radio loss reconciles" `Quick
            radio_loss_reconciles;
          Alcotest.test_case "monitor degraded status" `Quick
            monitor_degraded_status;
        ] );
    ]
