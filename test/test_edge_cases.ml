(* Edge-case tests across the protocol stack: single-site topologies,
   empty states, saturation, and boundary parameters. *)

module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Sampler = Wd_sketch.Distinct_sampler
module Network = Wd_net.Network
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Stream = Wd_workload.Stream

let fm_family ?(bitmaps = 32) () =
  Fm.family_custom ~rng:(Rng.create 221) ~variant:Fm.Stochastic ~bitmaps

(* --- Single-site topologies (k = 1) --- *)

let test_dc_single_site algo () =
  (* With one site the protocols degenerate gracefully: thresholds use
     theta/1 and broadcasts reach nobody else. *)
  let t = Dc.Fm.create ~algorithm:algo ~theta:0.1 ~sites:1 ~family:(fm_family ()) () in
  for v = 0 to 9_999 do
    Dc.Fm.observe t ~site:0 v
  done;
  let est = Dc.Fm.estimate t in
  Alcotest.(check bool)
    (Printf.sprintf "%s k=1 estimate %.0f ~ 10000" (Dc.algorithm_to_string algo) est)
    true
    (Float.abs (est -. 10_000.0) /. 10_000.0 < 0.3);
  Alcotest.(check bool) "some communication happened" true
    (Network.total_bytes (Dc.Fm.network t) > 0)

let test_ds_single_site algo () =
  let family = Sampler.family ~rng:(Rng.create 222) ~threshold:32 in
  let t = Ds.create ~algorithm:algo ~theta:0.3 ~sites:1 ~family () in
  for v = 0 to 4_999 do
    Ds.observe t ~site:0 (v mod 500)
  done;
  Alcotest.(check bool) "sample bounded" true (Ds.sample_size t <= 32);
  List.iter
    (fun (_, c) ->
      Alcotest.(check bool) "counts within lag" true
        (c <= 10 && Float.of_int 10 <= 1.3 *. Float.of_int c))
    (Ds.sample t)

(* --- Fresh trackers answer before any data --- *)

let test_fresh_trackers_answer () =
  let dc = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.1 ~sites:2 ~family:(fm_family ()) () in
  Alcotest.(check (float 0.0)) "fresh DC estimate" 0.0 (Dc.Fm.estimate dc);
  let family = Sampler.family ~rng:(Rng.create 223) ~threshold:8 in
  let ds = Ds.create ~algorithm:Ds.LCO ~theta:0.3 ~sites:2 ~family () in
  Alcotest.(check (float 0.0)) "fresh DS estimate" 0.0 (Ds.estimate_distinct ds);
  Alcotest.(check (list (pair int int))) "fresh sample" [] (Ds.sample ds);
  Alcotest.(check int) "no traffic yet" 0
    (Network.total_bytes (Dc.Fm.network dc))

(* --- Degenerate item values --- *)

let test_extreme_item_values () =
  let t = Dc.Fm.create ~algorithm:Dc.NS ~theta:0.1 ~sites:2 ~family:(fm_family ()) () in
  List.iter
    (fun v -> Dc.Fm.observe t ~site:0 v)
    [ 0; max_int; min_int; -1; 1 ];
  Alcotest.(check bool) "estimate sane for extreme keys" true
    (Dc.Fm.estimate t >= 1.0 && Dc.Fm.estimate t < 100.0)

(* --- Sampler level saturation --- *)

let test_sampler_level_saturation () =
  let family = Sampler.family ~rng:(Rng.create 224) ~threshold:4 in
  let s = Sampler.create family in
  Sampler.set_level s 64;
  (* Nothing can have level >= 64 (levels cap at 63): all adds vanish. *)
  for v = 0 to 999 do
    Sampler.add s v
  done;
  Alcotest.(check int) "nothing retained at level 64" 0 (Sampler.size s)

(* --- Threshold T = 1 --- *)

let test_sampler_threshold_one () =
  let family = Sampler.family ~rng:(Rng.create 225) ~threshold:1 in
  let s = Sampler.create family in
  for v = 0 to 999 do
    Sampler.add s v
  done;
  Alcotest.(check bool) "at most one item" true (Sampler.size s <= 1);
  (* The estimate is still an (extremely noisy) nonnegative number. *)
  Alcotest.(check bool) "estimate nonnegative" true
    (Sampler.estimate_distinct s >= 0.0)

(* --- Ds tracker with every item identical --- *)

let test_ds_single_hot_item algo () =
  let family = Sampler.family ~rng:(Rng.create 226) ~threshold:16 in
  let t = Ds.create ~algorithm:algo ~theta:0.2 ~sites:3 ~family () in
  for j = 0 to 29_999 do
    Ds.observe t ~site:(j mod 3) 42
  done;
  (match Ds.sample t with
  | [ (42, c) ] ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: count %d within (1+theta) of 30000"
         (Ds.algorithm_to_string algo) c)
      true
      (c <= 30_000 && 30_000 <= int_of_float (Float.of_int c *. 1.2) + 3)
  | [] ->
    (* Permissible only if 42's level is below the initial one — level
       starts at 0, so an empty sample is a failure. *)
    Alcotest.fail "hot item not retained"
  | _ -> Alcotest.fail "unexpected sample contents");
  (* Cost must be logarithmic-ish, not linear: far fewer sends than
     arrivals. *)
  Alcotest.(check bool)
    (Printf.sprintf "sends %d << 30000" (Ds.sends t))
    true
    (Ds.sends t < 500)

(* --- Window tracker with a window of 1 --- *)

let test_window_one () =
  let module W = Wd_protocol.Window_tracker in
  let module Wfm = Wd_sketch.Fm_window in
  let family = Wfm.family_custom ~rng:(Rng.create 227) ~bitmaps:16 in
  let t = W.create ~algorithm:W.NS ~theta:0.5 ~window:1 ~sites:1 ~family () in
  for j = 0 to 99 do
    W.observe t ~site:0 ~time:j j
  done;
  (* At most one arrival is inside a width-1 window. *)
  Alcotest.(check bool) "tiny estimate" true (W.estimate t ~now:99 < 5.0)

(* --- Stream edge cases --- *)

let test_empty_stream_rejected_by_runners () =
  let empty = Stream.make ~sites:[||] ~items:[||] in
  Alcotest.check_raises "run rejects empty"
    (Invalid_argument "Simulation.run: empty stream") (fun () ->
      ignore
        (Whats_different.Simulation.run
           (Wd_view.Query.dc ~theta:0.1 ~alpha:0.1 Dc.NS)
           empty
          : Whats_different.Simulation.run))

let test_stream_prefix_bounds () =
  let s = Stream.of_events [ (0, 1) ] in
  Alcotest.check_raises "prefix too long"
    (Invalid_argument "Stream.prefix: bad length") (fun () ->
      ignore (Stream.prefix s 2 : Stream.t))

let () =
  let dc_algos = List.map (fun a -> (Dc.algorithm_to_string a, a)) Dc.all_algorithms in
  let ds_algos =
    List.map (fun a -> (Ds.algorithm_to_string a, a)) Ds.approximate_algorithms
  in
  Alcotest.run "edge-cases"
    [
      ( "single site",
        List.map
          (fun (n, a) ->
            Alcotest.test_case ("dc " ^ n) `Quick (test_dc_single_site a))
          dc_algos
        @ List.map
            (fun (n, a) ->
              Alcotest.test_case ("ds " ^ n) `Quick (test_ds_single_site a))
            ds_algos );
      ( "degenerate inputs",
        [
          Alcotest.test_case "fresh trackers" `Quick test_fresh_trackers_answer;
          Alcotest.test_case "extreme values" `Quick test_extreme_item_values;
          Alcotest.test_case "level saturation" `Quick
            test_sampler_level_saturation;
          Alcotest.test_case "threshold one" `Quick test_sampler_threshold_one;
          Alcotest.test_case "window one" `Quick test_window_one;
          Alcotest.test_case "empty stream" `Quick
            test_empty_stream_rejected_by_runners;
          Alcotest.test_case "prefix bounds" `Quick test_stream_prefix_bounds;
        ] );
      ( "hot item",
        List.map
          (fun (n, a) ->
            Alcotest.test_case n `Quick (test_ds_single_hot_item a))
          ds_algos );
    ]
