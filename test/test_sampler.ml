(* Tests for Gibbons-Tirthapura distinct sampling. *)

module Rng = Wd_hashing.Rng
module Sampler = Wd_sketch.Distinct_sampler

let mk_family ?(seed = 71) ~threshold () =
  Sampler.family ~rng:(Rng.create seed) ~threshold

let feed s lo hi =
  for v = lo to hi - 1 do
    Sampler.add s v
  done

let test_below_threshold_keeps_everything () =
  let fam = mk_family ~threshold:100 () in
  let s = Sampler.create fam in
  feed s 0 50;
  Alcotest.(check int) "all retained" 50 (Sampler.size s);
  Alcotest.(check int) "level stays 0" 0 (Sampler.level s);
  Alcotest.(check (float 0.001)) "estimate exact" 50.0
    (Sampler.estimate_distinct s)

let test_counts_are_exact () =
  let fam = mk_family ~threshold:100 () in
  let s = Sampler.create fam in
  for _ = 1 to 7 do
    Sampler.add s 3
  done;
  Sampler.add_count s 4 11;
  Alcotest.(check int) "count of 3" 7 (Sampler.count s 3);
  Alcotest.(check int) "count of 4" 11 (Sampler.count s 4);
  Alcotest.(check int) "count of absent" 0 (Sampler.count s 99)

let test_threshold_respected () =
  let fam = mk_family ~threshold:64 () in
  let s = Sampler.create fam in
  feed s 0 10_000;
  Alcotest.(check bool) "size <= T" true (Sampler.size s <= 64);
  Alcotest.(check bool) "level rose" true (Sampler.level s > 0)

let test_retention_is_level_rule () =
  let fam = mk_family ~threshold:32 () in
  let s = Sampler.create fam in
  feed s 0 5_000;
  let l = Sampler.level s in
  (* Every item of the stream with hash level >= l must be retained, and
     nothing else. *)
  for v = 0 to 4_999 do
    let expected = Sampler.item_level s v >= l in
    Alcotest.(check bool)
      (Printf.sprintf "membership of %d" v)
      expected (Sampler.mem s v)
  done

let test_estimate_accuracy () =
  let fam = mk_family ~threshold:1024 () in
  let s = Sampler.create fam in
  let n = 100_000 in
  feed s 0 n;
  let est = Sampler.estimate_distinct s in
  let rel = Float.abs (est -. Float.of_int n) /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f rel %.3f" est rel)
    true (rel < 0.15)

let test_set_level_prunes () =
  let fam = mk_family ~threshold:1000 () in
  let s = Sampler.create fam in
  feed s 0 500;
  Sampler.set_level s 2;
  Alcotest.(check int) "level set" 2 (Sampler.level s);
  Alcotest.(check bool) "about a quarter retained" true
    (Sampler.size s < 250);
  (* set_level never lowers. *)
  Sampler.set_level s 1;
  Alcotest.(check int) "no lowering" 2 (Sampler.level s)

let test_counts_survive_level_changes () =
  let fam = mk_family ~threshold:16 () in
  let s = Sampler.create fam in
  (* Feed each item 5 times; counts of survivors must be exactly 5. *)
  for _ = 1 to 5 do
    feed s 0 2_000
  done;
  List.iter
    (fun (v, c) ->
      Alcotest.(check int) (Printf.sprintf "count of survivor %d" v) 5 c)
    (Sampler.contents s)

let test_merge_equals_centralized () =
  let fam = mk_family ~threshold:32 () in
  let a = Sampler.create fam and b = Sampler.create fam in
  let central = Sampler.create fam in
  feed a 0 3_000;
  feed b 1_500 4_500;
  feed central 0 4_500;
  feed central 1_500 3_000;
  (* central saw [0,4500) plus repeats of [1500,3000): same multiset as
     a + b. *)
  Sampler.merge_into ~dst:a b;
  Alcotest.(check int) "same level" (Sampler.level central) (Sampler.level a);
  Alcotest.(check int) "same size" (Sampler.size central) (Sampler.size a);
  List.iter
    (fun (v, c) ->
      Alcotest.(check int) (Printf.sprintf "count of %d" v) c
        (Sampler.count a v))
    (Sampler.contents central)

let test_copy_independent () =
  let fam = mk_family ~threshold:100 () in
  let a = Sampler.create fam in
  feed a 0 10;
  let b = Sampler.copy a in
  feed b 10 20;
  Alcotest.(check bool) "sizes differ" true (Sampler.size a < Sampler.size b)

let test_family_of_params () =
  let fam =
    Sampler.family_of_params ~alpha:0.1 ~delta:0.1 ~seed:72
  in
  Alcotest.(check bool)
    (Printf.sprintf "T=%d >= 1/eps^2" (Sampler.threshold fam))
    true
    (Sampler.threshold fam >= 100)

let test_size_bytes () =
  let fam = mk_family ~threshold:100 () in
  let s = Sampler.create fam in
  feed s 0 10;
  Alcotest.(check int) "16 bytes per pair" 160 (Sampler.size_bytes s)

let test_uniformity_of_sample () =
  (* Sampled items should not be biased by multiplicity: feed item 0 a
     million times and items 1..4095 once; Pr[0 retained] must equal the
     level rule, not be inflated. *)
  let fam = mk_family ~seed:73 ~threshold:64 () in
  let s = Sampler.create fam in
  Sampler.add_count s 0 1_000_000;
  feed s 1 4_096;
  let l = Sampler.level s in
  Alcotest.(check bool) "heavy item retained iff its level permits"
    (Sampler.item_level s 0 >= l)
    (Sampler.mem s 0)

(* --- Deletions (Section 8 extension) --- *)

let test_delete_decrements_and_removes () =
  let fam = mk_family ~threshold:100 () in
  let s = Sampler.create fam in
  Sampler.add_count s 5 3;
  Sampler.delete s 5;
  Alcotest.(check int) "decremented" 2 (Sampler.count s 5);
  Sampler.delete_count s 5 2;
  Alcotest.(check bool) "removed at zero" false (Sampler.mem s 5);
  Alcotest.(check int) "size drops" 0 (Sampler.size s)

let test_delete_validates () =
  let fam = mk_family ~threshold:100 () in
  let s = Sampler.create fam in
  Sampler.add s 5;
  Alcotest.check_raises "over-deletion"
    (Invalid_argument "Distinct_sampler.delete_count: deletions exceed insertions")
    (fun () -> Sampler.delete_count s 5 2);
  (* Find an item retained-eligible but never inserted. *)
  let absent =
    let rec go v = if Sampler.item_level s v >= Sampler.level s && v <> 5 then v else go (v + 1) in
    go 0
  in
  Alcotest.check_raises "absent deletion"
    (Invalid_argument "Distinct_sampler.delete_count: deleting an absent item")
    (fun () -> Sampler.delete s absent)

let test_delete_below_level_is_noop () =
  let fam = mk_family ~threshold:100 () in
  let s = Sampler.create fam in
  Sampler.set_level s 10;
  (* An item with level < 10 was never tracked; deleting it is silent. *)
  let low =
    let rec go v = if Sampler.item_level s v < 10 then v else go (v + 1) in
    go 0
  in
  Sampler.delete s low;
  Alcotest.(check int) "still empty" 0 (Sampler.size s)

let test_delete_keeps_sample_law () =
  (* After deleting a subset, the retained set must still be exactly the
     current distinct items at level >= l. *)
  let fam = mk_family ~threshold:64 () in
  let s = Sampler.create fam in
  for v = 0 to 4_999 do
    Sampler.add s v
  done;
  (* Remove the even items that are retained. *)
  for v = 0 to 2_499 do
    if Sampler.mem s (2 * v) then Sampler.delete s (2 * v)
  done;
  let l = Sampler.level s in
  for v = 0 to 4_999 do
    let expected = v mod 2 = 1 && Sampler.item_level s v >= l in
    Alcotest.(check bool)
      (Printf.sprintf "membership of %d after deletes" v)
      expected (Sampler.mem s v)
  done

(* --- QCheck properties --- *)

let multiset_gen =
  QCheck.(list_of_size (Gen.int_range 0 400) (int_range 0 500))

let prop_merge_equals_single_stream =
  QCheck.Test.make ~name:"merge = processing both streams centrally"
    QCheck.(pair multiset_gen multiset_gen)
    (fun (xs, ys) ->
      let fam = mk_family ~seed:74 ~threshold:16 () in
      let a = Sampler.create fam
      and b = Sampler.create fam
      and central = Sampler.create fam in
      List.iter (Sampler.add a) xs;
      List.iter (Sampler.add b) ys;
      List.iter (Sampler.add central) (xs @ ys);
      Sampler.merge_into ~dst:a b;
      Sampler.level a = Sampler.level central
      && Sampler.size a = Sampler.size central
      && List.for_all
           (fun (v, c) -> Sampler.count a v = c)
           (Sampler.contents central))

let prop_retained_counts_exact =
  QCheck.Test.make ~name:"retained counts equal exact multiplicities"
    multiset_gen
    (fun xs ->
      let fam = mk_family ~seed:75 ~threshold:32 () in
      let s = Sampler.create fam in
      List.iter (Sampler.add s) xs;
      let exact = Hashtbl.create 64 in
      List.iter
        (fun v ->
          Hashtbl.replace exact v
            (1 + Option.value (Hashtbl.find_opt exact v) ~default:0))
        xs;
      List.for_all
        (fun (v, c) -> Hashtbl.find_opt exact v = Some c)
        (Sampler.contents s))

let prop_add_count_negative_rejected =
  QCheck.Test.make ~name:"negative add_count rejected" QCheck.small_int
    (fun v ->
      let fam = mk_family ~threshold:8 () in
      let s = Sampler.create fam in
      try
        Sampler.add_count s v (-1);
        false
      with Invalid_argument _ -> true)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_merge_equals_single_stream;
        prop_retained_counts_exact;
        prop_add_count_negative_rejected;
      ]
  in
  Alcotest.run "distinct-sampler"
    [
      ( "basics",
        [
          Alcotest.test_case "below threshold" `Quick
            test_below_threshold_keeps_everything;
          Alcotest.test_case "exact counts" `Quick test_counts_are_exact;
          Alcotest.test_case "threshold respected" `Quick test_threshold_respected;
          Alcotest.test_case "retention rule" `Quick test_retention_is_level_rule;
          Alcotest.test_case "estimate accuracy" `Quick test_estimate_accuracy;
          Alcotest.test_case "set_level prunes" `Quick test_set_level_prunes;
          Alcotest.test_case "counts across levels" `Quick
            test_counts_survive_level_changes;
          Alcotest.test_case "merge = centralized" `Quick
            test_merge_equals_centralized;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "family_of_params" `Quick test_family_of_params;
          Alcotest.test_case "size bytes" `Quick test_size_bytes;
          Alcotest.test_case "multiplicity-unbiased" `Quick
            test_uniformity_of_sample;
        ] );
      ( "deletions",
        [
          Alcotest.test_case "decrement and remove" `Quick
            test_delete_decrements_and_removes;
          Alcotest.test_case "validation" `Quick test_delete_validates;
          Alcotest.test_case "below level noop" `Quick
            test_delete_below_level_is_noop;
          Alcotest.test_case "sample law preserved" `Quick
            test_delete_keeps_sample_law;
        ] );
      ("properties", qsuite);
    ]
