(* Estimator-focused tests: the crossover-continuity property (the
   estimate must stay inside the family's accuracy envelope with no
   single-add step larger than the envelope width, across the
   linear-counting crossover raw ~ 2.5m where the pre-fix code hard-
   switched regimes), the empty = 0 low-raw fallback corner, MLE
   accuracy / merge-compatibility for every family, and the
   Fm_concentrated sketch's serialization and sizing. *)

module Rng = Wd_hashing.Rng
module Mt = Wd_hashing.Mixed_tabulation
module Fm = Wd_sketch.Fm
module Fmc = Wd_sketch.Fm_concentrated
module Bjkst = Wd_sketch.Bjkst
module Hll = Wd_sketch.Hyperloglog

let mle = Wd_sketch.Sketch_intf.Mle

(* ------------------------------------------------------------------ *)
(* Mixed tabulation *)

let test_mixed_tabulation_deterministic () =
  let h1 = Mt.create (Rng.create 7) and h2 = Mt.create (Rng.create 7) in
  for v = 0 to 1000 do
    Alcotest.(check int64)
      (Printf.sprintf "hash %d" v)
      (Mt.hash h1 v) (Mt.hash h2 v)
  done;
  let h3 = Mt.create (Rng.create 8) in
  let differs = ref false in
  for v = 0 to 100 do
    if Mt.hash h1 v <> Mt.hash h3 v then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_mixed_tabulation_spread () =
  let h = Mt.create (Rng.create 11) in
  let seen = Hashtbl.create 20_000 in
  let n = 10_000 in
  for v = 0 to n - 1 do
    Hashtbl.replace seen (Mt.hash h v) ()
  done;
  Alcotest.(check bool)
    "10k keys, no collisions expected" true
    (Hashtbl.length seen = n);
  (* Low-bit balance: trailing-zero levels must look geometric. *)
  let zero_low = ref 0 in
  for v = 0 to n - 1 do
    if Int64.to_int (Mt.hash h v) land 1 = 0 then incr zero_low
  done;
  let frac = float_of_int !zero_low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "low bit balanced (%.3f)" frac)
    true
    (frac > 0.47 && frac < 0.53)

let test_concentrated_sizing () =
  let m1 = Mt.concentrated_buckets ~alpha:0.1 ~delta:0.1 in
  let m2 = Mt.concentrated_buckets ~alpha:0.05 ~delta:0.1 in
  let m3 = Mt.concentrated_buckets ~alpha:0.1 ~delta:0.01 in
  Alcotest.(check bool) "tighter alpha, more buckets" true (m2 > m1);
  Alcotest.(check bool) "tighter delta, more buckets" true (m3 > m1);
  (* The single-repetition sizing beats Fm's conservative-constant m at
     equal parameters — the serialized-bytes saving the broadcast
     protocols inherit. *)
  let fm_m = Fm.bitmaps (Fm.family_of_params ~alpha:0.1 ~delta:0.1 ~seed:1) in
  let fmc_m =
    Fmc.buckets (Fmc.family_of_params ~alpha:0.1 ~delta:0.1 ~seed:1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fmc %d < fm %d buckets" fmc_m fm_m)
    true (fmc_m < fm_m);
  Alcotest.(check bool) "invalid alpha rejected" true
    (try
       ignore (Mt.concentrated_buckets ~alpha:0.0 ~delta:0.1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Crossover continuity: sweep n across the linear-counting band *)

module type EST_SKETCH = sig
  type family
  type t

  val create : family -> t
  val add : t -> int -> bool
  val estimate : t -> float
end

(* Sweep n = 1 .. 4m adding one fresh item at a time.  The estimate must
   stay inside +-env(n) of the truth, env(n) = rel * n + slack with
   [rel] a few standard errors of the family, and no single add may move
   the estimate by more than the envelope width 2 * env(n) — the hard
   2.5m switch failed exactly this (a regime change is a jump the size
   of the estimator gap, unbounded by any per-item increment). *)
let sweep (type f) (module M : EST_SKETCH with type family = f) ~label ~fam ~m
    ~rel ~slack ~seed =
  let s = M.create fam in
  let prev = ref 0.0 in
  for n = 1 to 4 * m do
    ignore (M.add s ((seed * 1_000_003) + n) : bool);
    let est = M.estimate s in
    let nf = float_of_int n in
    let env = (rel *. nf) +. slack in
    if Float.abs (est -. nf) > env then
      Alcotest.failf "%s seed=%d: estimate %.2f off truth %d beyond +-%.2f"
        label seed est n env;
    if Float.abs (est -. !prev) > 2.0 *. env then
      Alcotest.failf
        "%s seed=%d: step %.2f -> %.2f at n=%d exceeds envelope width %.2f"
        label seed !prev est n (2.0 *. env);
    prev := est
  done

let fm_sto fam_of m seed =
  sweep
    (module Fm : EST_SKETCH with type family = Fm.family)
    ~label:(Printf.sprintf "fm-stochastic m=%d" m)
    ~fam:(fam_of (Fm.family_custom ~rng:(Rng.create seed) ~variant:Fm.Stochastic ~bitmaps:m))
    ~m
    ~rel:(Float.max 0.3 (2.8 *. 0.78 /. Float.sqrt (float_of_int m)))
    ~slack:(6.0 +. (0.05 *. float_of_int m))
    ~seed

let hll_of fam_of m seed =
  sweep
    (module Hll : EST_SKETCH with type family = Hll.family)
    ~label:(Printf.sprintf "hll m=%d" m)
    ~fam:(fam_of (Hll.family_custom ~rng:(Rng.create seed) ~registers:m))
    ~m
    ~rel:(Float.max 0.3 (2.8 *. 1.04 /. Float.sqrt (float_of_int m)))
    ~slack:(6.0 +. (0.05 *. float_of_int m))
    ~seed

let fmc_of fam_of m seed =
  sweep
    (module Fmc : EST_SKETCH with type family = Fmc.family)
    ~label:(Printf.sprintf "fmc m=%d" m)
    ~fam:(fam_of (Fmc.family_custom ~rng:(Rng.create seed) ~buckets:m))
    ~m
    ~rel:(Float.max 0.3 (2.8 *. 0.78 /. Float.sqrt (float_of_int m)))
    ~slack:(6.0 +. (0.05 *. float_of_int m))
    ~seed

let seeds = [ 3; 17; 101 ]

let test_crossover_fm () =
  List.iter
    (fun seed ->
      List.iter (fun m -> fm_sto (fun f -> f) m seed) [ 64; 256 ])
    seeds

let test_crossover_fm_mle () =
  List.iter
    (fun seed -> List.iter (fun m -> fm_sto (Fm.with_estimator mle) m seed) [ 64; 256 ])
    seeds

let test_crossover_hll () =
  List.iter
    (fun seed -> List.iter (fun m -> hll_of (fun f -> f) m seed) [ 64; 256 ])
    seeds

let test_crossover_hll_mle () =
  List.iter
    (fun seed ->
      List.iter (fun m -> hll_of (Hll.with_estimator mle) m seed) [ 64; 256 ])
    seeds

let test_crossover_fmc () =
  List.iter
    (fun seed ->
      List.iter (fun m -> fmc_of (fun f -> f) m seed) [ 128 ];
      List.iter (fun m -> fmc_of (Fmc.with_estimator mle) m seed) [ 128 ])
    seeds

(* ------------------------------------------------------------------ *)
(* The empty = 0, low-raw corner: every bitmap non-empty (so linear
   counting has no observation) while raw sits far below 2.5m.  A
   bitmap whose only set bit is bit 3 has lowest zero 0, so raw = m/phi
   ~ 1.29m.  The documented behavior: Classic returns raw itself. *)

let test_fm_empty_zero_guard () =
  let m = 8 in
  let fam =
    Fm.family_custom ~rng:(Rng.create 5) ~variant:Fm.Stochastic ~bitmaps:m
  in
  let buf = Bytes.create (8 * m) in
  for j = 0 to m - 1 do
    Bytes.set_int64_le buf (8 * j) 8L (* only bit 3 set: lowest zero 0 *)
  done;
  let s = Fm.of_bytes fam buf in
  let est = Fm.estimate s in
  let raw = float_of_int m /. Wd_sketch.Fm_bitmap.phi in
  Alcotest.(check bool)
    (Printf.sprintf "raw %.3f < 2.5m yet returned as-is (est %.3f)" raw est)
    true
    (Float.abs (est -. raw) < 1e-9);
  (* Same corner through the MLE: every lowest-zero is 0, and the
     z-statistic likelihood is then maximized at zero intensity. *)
  let s_mle = Fm.of_bytes (Fm.with_estimator mle fam) buf in
  Alcotest.(check (float 1e-9)) "mle of all-z=0 state" 0.0 (Fm.estimate s_mle)

let test_hll_zeros_guard () =
  let m = 16 in
  let fam = Hll.family_custom ~rng:(Rng.create 5) ~registers:m in
  let buf = Bytes.make m '\001' (* every register 1: zeros = 0 *) in
  let s = Hll.of_bytes fam buf in
  let est = Hll.estimate s in
  let mf = float_of_int m in
  let raw = Hll.alpha m *. mf *. mf /. (mf *. 0.5) in
  Alcotest.(check bool)
    (Printf.sprintf "zeros=0: raw %.3f returned (est %.3f)" raw est)
    true
    (Float.abs (est -. raw) < 1e-9)

(* ------------------------------------------------------------------ *)
(* MLE accuracy and merge-compatibility *)

let distinct_items ~seed n =
  Array.init n (fun i -> (seed * 10_000_019) + i)

let rel_err est truth = Float.abs (est -. truth) /. truth

let test_mle_accuracy_fm () =
  let fam =
    Fm.with_estimator mle
      (Fm.family_custom ~rng:(Rng.create 23) ~variant:Fm.Stochastic
         ~bitmaps:256)
  in
  List.iter
    (fun n ->
      let s = Fm.create fam in
      Fm.add_batch s (distinct_items ~seed:23 n);
      let e = rel_err (Fm.estimate s) (float_of_int n) in
      if e > 0.15 then
        Alcotest.failf "fm-mle n=%d rel err %.3f > 0.15" n e)
    [ 2_000; 20_000; 100_000 ]

let test_mle_accuracy_fm_averaged () =
  let fam =
    Fm.with_estimator mle
      (Fm.family_custom ~rng:(Rng.create 29) ~variant:Fm.Averaged ~bitmaps:32)
  in
  let n = 20_000 in
  let s = Fm.create fam in
  Fm.add_batch s (distinct_items ~seed:29 n);
  let e = rel_err (Fm.estimate s) (float_of_int n) in
  if e > 0.25 then Alcotest.failf "fm-averaged-mle rel err %.3f > 0.25" e

let test_mle_accuracy_hll () =
  let fam =
    Hll.with_estimator mle
      (Hll.family_custom ~rng:(Rng.create 31) ~registers:1024)
  in
  List.iter
    (fun n ->
      let s = Hll.create fam in
      Hll.add_batch s (distinct_items ~seed:31 n);
      let e = rel_err (Hll.estimate s) (float_of_int n) in
      if e > 0.1 then Alcotest.failf "hll-mle n=%d rel err %.3f > 0.1" n e)
    [ 2_000; 100_000 ]

let test_mle_accuracy_bjkst () =
  let fam =
    Bjkst.with_estimator mle (Bjkst.family_custom ~rng:(Rng.create 37) ~k:1024)
  in
  let n = 20_000 in
  let s = Bjkst.create fam in
  Bjkst.add_batch s (distinct_items ~seed:37 n);
  let e = rel_err (Bjkst.estimate s) (float_of_int n) in
  if e > 0.15 then Alcotest.failf "bjkst-mle rel err %.3f > 0.15" e

let test_fmc_accuracy () =
  List.iter
    (fun (est, label) ->
      let fam =
        est (Fmc.family_of_params ~alpha:0.1 ~delta:0.1 ~seed:41)
      in
      List.iter
        (fun n ->
          let s = Fmc.create fam in
          Fmc.add_batch s (distinct_items ~seed:41 n);
          let e = rel_err (Fmc.estimate s) (float_of_int n) in
          if e > 0.2 then
            Alcotest.failf "fmc(%s) n=%d rel err %.3f > 0.2" label n e)
        [ 1_000; 20_000; 200_000 ])
    [ ((fun f -> f), "classic"); (Fmc.with_estimator mle, "mle") ]

(* MLE sees only merged state, so the estimate of a merge must equal the
   estimate of the centralized sketch bit for bit. *)
let test_mle_merge_compatible () =
  let items = distinct_items ~seed:47 30_000 in
  let third = Array.length items / 3 in
  let parts =
    [ Array.sub items 0 third;
      Array.sub items third third;
      Array.sub items (2 * third) (Array.length items - (2 * third)) ]
  in
  let check_eq label whole merged =
    if whole <> merged then
      Alcotest.failf "%s: merged mle %.6f <> centralized mle %.6f" label
        merged whole
  in
  (* Fm *)
  let fam =
    Fm.with_estimator mle
      (Fm.family_custom ~rng:(Rng.create 47) ~variant:Fm.Stochastic
         ~bitmaps:128)
  in
  let whole = Fm.create fam in
  Fm.add_batch whole items;
  let dst = Fm.create fam in
  List.iter
    (fun part ->
      let s = Fm.create fam in
      Fm.add_batch s part;
      Fm.merge_into ~dst s)
    parts;
  check_eq "fm" (Fm.estimate whole) (Fm.estimate dst);
  (* Fmc *)
  let fam = Fmc.with_estimator mle (Fmc.family_custom ~rng:(Rng.create 47) ~buckets:128) in
  let whole = Fmc.create fam in
  Fmc.add_batch whole items;
  let dst = Fmc.create fam in
  List.iter
    (fun part ->
      let s = Fmc.create fam in
      Fmc.add_batch s part;
      Fmc.merge_into ~dst s)
    parts;
  check_eq "fmc" (Fmc.estimate whole) (Fmc.estimate dst);
  (* Hll *)
  let fam =
    Hll.with_estimator mle (Hll.family_custom ~rng:(Rng.create 47) ~registers:256)
  in
  let whole = Hll.create fam in
  Hll.add_batch whole items;
  let dst = Hll.create fam in
  List.iter
    (fun part ->
      let s = Hll.create fam in
      Hll.add_batch s part;
      Hll.merge_into ~dst s)
    parts;
  check_eq "hll" (Hll.estimate whole) (Hll.estimate dst)

(* The point of the MLE: tighter than Classic on average over seeds. *)
let test_mle_tighter_on_average () =
  let n = 2_000 in
  let truth = float_of_int n in
  let total_classic = ref 0.0 and total_mle = ref 0.0 in
  let n_seeds = 40 in
  for seed = 1 to n_seeds do
    let base = Hll.family_custom ~rng:(Rng.create seed) ~registers:64 in
    let items = distinct_items ~seed:(seed * 7) n in
    let classic = Hll.create base in
    Hll.add_batch classic items;
    let m = Hll.create (Hll.with_estimator mle base) in
    Hll.add_batch m items;
    total_classic := !total_classic +. rel_err (Hll.estimate classic) truth;
    total_mle := !total_mle +. rel_err (Hll.estimate m) truth
  done;
  let mc = !total_classic /. float_of_int n_seeds
  and mm = !total_mle /. float_of_int n_seeds in
  if mm > mc *. 1.05 then
    Alcotest.failf "mle mean rel err %.4f vs classic %.4f: not tighter" mm mc

(* ------------------------------------------------------------------ *)
(* Fm_concentrated serialization and sketch laws not covered by the
   generic property suite *)

let test_fmc_roundtrip () =
  let fam = Fmc.family_custom ~rng:(Rng.create 53) ~buckets:64 in
  let s = Fmc.create fam in
  Fmc.add_batch s (distinct_items ~seed:53 5_000);
  let s' = Fmc.of_bytes fam (Fmc.to_bytes s) in
  Alcotest.(check bool) "roundtrip equal" true (Fmc.equal s s');
  Alcotest.(check (float 1e-9)) "roundtrip estimate" (Fmc.estimate s)
    (Fmc.estimate s');
  Alcotest.(check bool) "bad length rejected" true
    (try
       ignore (Fmc.of_bytes fam (Bytes.create 12));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "size_bytes is the wire size" (8 * 64)
    (Bytes.length (Fmc.to_bytes s))

let test_fmc_delta_bytes () =
  let fam = Fmc.family_custom ~rng:(Rng.create 59) ~buckets:32 in
  let a = Fmc.create fam in
  Fmc.add_batch a (distinct_items ~seed:59 1_000);
  let b = Fmc.copy a in
  Alcotest.(check int) "delta of equal sketches" 0 (Fmc.delta_bytes ~from:a b);
  Fmc.add_batch b (distinct_items ~seed:61 1_000);
  let d = Fmc.delta_bytes ~from:a b in
  Alcotest.(check bool) "delta positive and bounded" true
    (d > 0 && d <= 4 * 64 * 32)

let () =
  Alcotest.run "estimators"
    [
      ( "mixed-tabulation",
        [
          Alcotest.test_case "deterministic" `Quick
            test_mixed_tabulation_deterministic;
          Alcotest.test_case "spread" `Quick test_mixed_tabulation_spread;
          Alcotest.test_case "concentrated sizing" `Quick
            test_concentrated_sizing;
        ] );
      ( "crossover-continuity",
        [
          Alcotest.test_case "fm stochastic classic" `Quick test_crossover_fm;
          Alcotest.test_case "fm stochastic mle" `Quick test_crossover_fm_mle;
          Alcotest.test_case "hll classic" `Quick test_crossover_hll;
          Alcotest.test_case "hll mle" `Quick test_crossover_hll_mle;
          Alcotest.test_case "fmc both estimators" `Quick test_crossover_fmc;
        ] );
      ( "fallback-guards",
        [
          Alcotest.test_case "fm empty=0 low raw" `Quick
            test_fm_empty_zero_guard;
          Alcotest.test_case "hll zeros=0" `Quick test_hll_zeros_guard;
        ] );
      ( "mle",
        [
          Alcotest.test_case "fm stochastic accuracy" `Quick
            test_mle_accuracy_fm;
          Alcotest.test_case "fm averaged accuracy" `Quick
            test_mle_accuracy_fm_averaged;
          Alcotest.test_case "hll accuracy" `Quick test_mle_accuracy_hll;
          Alcotest.test_case "bjkst accuracy" `Quick test_mle_accuracy_bjkst;
          Alcotest.test_case "fmc accuracy" `Quick test_fmc_accuracy;
          Alcotest.test_case "merge compatible" `Quick
            test_mle_merge_compatible;
          Alcotest.test_case "tighter on average" `Quick
            test_mle_tighter_on_average;
        ] );
      ( "fm-concentrated",
        [
          Alcotest.test_case "serialization roundtrip" `Quick
            test_fmc_roundtrip;
          Alcotest.test_case "delta bytes" `Quick test_fmc_delta_bytes;
        ] );
    ]
