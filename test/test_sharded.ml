(* The sharded coordinator merge engine: randomized shard counts and
   job interleavings must publish exactly the single-domain result for
   every sketch family (the PR 2 merge laws made executable), and a
   sharded tracker run — including one under a fault plan — must be
   bit-identical to the historical single-domain run. *)

module Dc = Wd_protocol.Dc_tracker
module Sharded = Wd_protocol.Sharded
module Faults = Wd_net.Faults
module Simulation = Whats_different.Simulation
module Stream_gen = Wd_workload.Stream_gen

(* ------------------------------------------------------------------ *)
(* Engine-level properties, per sketch family *)

(* One randomized workload: a list of jobs, each either a batch of raw
   items or a pre-built sketch contribution, attributed to a site. *)
type job = { site : int; items : int list; as_sketch : bool }

let gen_job rng =
  {
    site = Prop.int_range 0 63 rng;
    items = Prop.list ~max_len:40 (Prop.int_range 0 5_000) rng;
    as_sketch = Prop.int_range 0 1 rng = 1;
  }

let gen_case rng =
  let shards = Prop.int_range 1 5 rng in
  (* Sync points: after which job indices to force a mid-stream publish
     (exercises idempotent re-merging of still-growing partials). *)
  let jobs = Prop.list ~min_len:1 ~max_len:60 gen_job rng in
  let syncs = Prop.list ~max_len:3 (Prop.int_range 0 59 rng |> Fun.const) rng in
  (shards, jobs, syncs)

let show_job j =
  Printf.sprintf "{site=%d;%s;items=%s}" j.site
    (if j.as_sketch then "sketch" else "raw")
    (Prop.show_list Prop.show_int j.items)

let show_case (shards, jobs, syncs) =
  Printf.sprintf "shards=%d syncs=%s jobs=%s" shards
    (Prop.show_list Prop.show_int syncs)
    (Prop.show_list show_job jobs)

let shrink_case (shards, jobs, syncs) =
  List.map (fun jobs -> (shards, jobs, syncs)) (Prop.shrink_list (fun _ -> []) jobs)
  @ (if shards > 1 then [ (shards - 1, jobs, syncs) ] else [])
  @ if syncs <> [] then [ (shards, jobs, []) ] else []

module Check_family (Sketch : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) = struct
  module Engine = Sharded.Make (Sketch)

  let family = Sketch.family_of_params ~alpha:0.2 ~delta:0.1 ~seed:5

  (* Feed the same jobs to an engine and read back the published global
     sketch, honoring the case's mid-stream sync points. *)
  let publish ~shards (jobs, syncs) =
    let eng = Engine.create ~shards ~family () in
    let scratch = Sketch.create family in
    List.iteri
      (fun i j ->
        (if j.as_sketch then begin
           let sk = Sketch.create family in
           List.iter (fun v -> ignore (Sketch.add sk v : bool)) j.items;
           Engine.submit eng ~site:j.site sk
         end
         else Engine.submit_items eng ~site:j.site (Array.of_list j.items));
        if List.mem i syncs then Engine.sync eng ~into:scratch)
      jobs;
    let out = Sketch.create family in
    Engine.sync eng ~into:out;
    (* Re-syncing after everything drained must change nothing. *)
    Engine.sync eng ~into:out;
    Engine.close eng;
    out

  (* The plain sequential reference: no engine at all. *)
  let reference jobs =
    let out = Sketch.create family in
    List.iter
      (fun j -> List.iter (fun v -> ignore (Sketch.add out v : bool)) j.items)
      jobs;
    out

  let prop (shards, jobs, syncs) =
    let sharded = publish ~shards (jobs, syncs) in
    let single = publish ~shards:1 (jobs, syncs) in
    Sketch.equal sharded single
    && Sketch.equal sharded (reference jobs)
    && Sketch.estimate sharded = Sketch.estimate single

  let test_case ~name =
    Prop.test_case ~count:40 ~shrink:shrink_case ~show:show_case ~name
      gen_case prop
end

(* Every DISTINCT_SKETCH family in the repo (the distinct sampler is a
   different structure, not a mergeable cardinality sketch). *)
module P_fm = Check_family (Wd_sketch.Fm)
module P_bjkst = Check_family (Wd_sketch.Bjkst)
module P_hll = Check_family (Wd_sketch.Hyperloglog)

(* ------------------------------------------------------------------ *)
(* Engine mechanics *)

module Engine = Sharded.Make (Wd_sketch.Fm)

let fm_family = Wd_sketch.Fm.family_of_params ~alpha:0.2 ~delta:0.1 ~seed:5

let test_engine_counters () =
  let eng = Engine.create ~shards:3 ~family:fm_family () in
  Alcotest.(check int) "shards" 3 (Engine.shards eng);
  for site = 0 to 199 do
    Engine.submit_items eng ~site [| site; site + 1 |]
  done;
  let out = Wd_sketch.Fm.create fm_family in
  Engine.sync eng ~into:out;
  Alcotest.(check int) "submitted" 200 (Engine.submitted eng);
  let merges = Engine.merges_per_shard eng in
  Alcotest.(check int)
    "every job merged by someone" 200
    (Array.fold_left ( + ) 0 merges);
  Engine.close eng;
  Alcotest.check_raises "submit after close"
    (Invalid_argument "Sharded.submit: engine is closed") (fun () ->
      Engine.submit_items eng ~site:0 [| 1 |])

let test_engine_rejects () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Sharded.create: shards must be >= 1") (fun () ->
      ignore (Engine.create ~shards:0 ~family:fm_family ()));
  (* A bounded queue far smaller than the job count must not deadlock:
     submits block until workers drain. *)
  let eng = Engine.create ~queue_capacity:2 ~shards:2 ~family:fm_family () in
  for site = 0 to 499 do
    Engine.submit_items eng ~site [| site |]
  done;
  let out = Wd_sketch.Fm.create fm_family in
  Engine.sync eng ~into:out;
  Engine.close eng;
  Alcotest.(check bool)
    "all items published" true
    (Wd_sketch.Fm.estimate out > 0.0)

(* ------------------------------------------------------------------ *)
(* Tracker-level: a sharded run is the single-domain run *)

let stream =
  lazy (Stream_gen.zipf ~seed:11 ~sites:4 ~events:20_000 ~universe:6_000 ())

let run ?faults ~shards ~algorithm () =
  Simulation.run ~seed:7 ?faults ~shards
    (Wd_view.Query.dc ~theta:0.015 ~alpha:0.085 algorithm)
    (Lazy.force stream)

let check_identical algorithm (a : Simulation.run) (b : Simulation.run) =
  let name = Dc.algorithm_to_string algorithm in
  Alcotest.(check (float 0.0))
    (name ^ ": estimate")
    a.Simulation.final_estimate b.Simulation.final_estimate;
  Alcotest.(check int)
    (name ^ ": sends")
    a.Simulation.sends b.Simulation.sends;
  Alcotest.(check int)
    (name ^ ": total bytes")
    a.Simulation.total_bytes b.Simulation.total_bytes;
  Alcotest.(check bool) (name ^ ": full record") true (a = b)

let test_sharded_run_identical () =
  List.iter
    (fun algorithm ->
      let single = run ~shards:1 ~algorithm () in
      let sharded = run ~shards:3 ~algorithm () in
      check_identical algorithm single sharded)
    Dc.approximate_algorithms

(* The stress case: four worker domains under a drop+crash fault plan.
   Recovery resyncs and crash-window losses must not perturb the
   merge-then-publish equality. *)
let stress_faults () =
  match Faults.of_spec ~seed:3 "drop=0.05,crash=1:5000:8000" with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_sharded_run_identical_under_faults () =
  List.iter
    (fun algorithm ->
      let single = run ~faults:(stress_faults ()) ~shards:1 ~algorithm () in
      let sharded = run ~faults:(stress_faults ()) ~shards:4 ~algorithm () in
      Alcotest.(check bool)
        (Dc.algorithm_to_string algorithm ^ ": faults actually bit")
        true
        (single.Simulation.lost_updates > 0
        || single.Simulation.drops > 0);
      check_identical algorithm single sharded)
    Dc.approximate_algorithms

let test_ec_refuses_shards () =
  match run ~shards:2 ~algorithm:Dc.EC () with
  | (_ : Simulation.run) -> Alcotest.fail "EC accepted shards > 1"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "sharded"
    [
      ( "engine",
        [
          P_fm.test_case ~name:"fm: sharded = single-domain";
          P_bjkst.test_case ~name:"bjkst: sharded = single-domain";
          P_hll.test_case ~name:"hyperloglog: sharded = single-domain";
          Alcotest.test_case "counters and close" `Quick test_engine_counters;
          Alcotest.test_case "bounded queues, bad args" `Quick
            test_engine_rejects;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "sharded run = single-domain run" `Quick
            test_sharded_run_identical;
          Alcotest.test_case "shards=4 under drop+crash faults" `Quick
            test_sharded_run_identical_under_faults;
          Alcotest.test_case "EC refuses sharding" `Quick
            test_ec_refuses_shards;
        ] );
    ]
