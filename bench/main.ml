(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Section 7) as a printed table, runs the design-choice ablations, and
   measures update throughput with Bechamel (the paper's Section 7.2
   remark: sketch tracking processed ~0.5M items/s, distinct sampling up
   to an order of magnitude faster).

   Usage:
     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig5a fig7c  # selected experiments
     dune exec bench/main.exe -- --scale 0.2  # smaller/faster workloads
     dune exec bench/main.exe -- --csv DIR    # also write one CSV per table
     dune exec bench/main.exe -- --list       # available experiment ids
     dune exec bench/main.exe -- --no-throughput

   CI gates:
     dune exec bench/main.exe -- --assert-overhead [--baseline BENCH_PR3.json]
       runs only the observability overhead checks (null-sink guard
       budget, and the disabled-span batch hot path vs the committed
       baseline) and exits nonzero when either exceeds its 5% budget.
     dune exec bench/main.exe -- --assert-concentrated [--baseline ...]
       asserts the concentrated-hashing FM family's batched per-update
       cost beats the committed averaged-FM throughput row.
     dune exec bench/main.exe -- --assert-fanout [--scale S]
       measures the view-registry fan-out (1 / 100 / 10k standing views
       over one stream) and exits nonzero when the marginal per-view
       update cost at 10k views exceeds 0.25x a standalone tracker
       update. *)

module Experiments = Whats_different.Experiments
module Report = Whats_different.Report
module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Fmc = Wd_sketch.Fm_concentrated
module Sampler = Wd_sketch.Distinct_sampler
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Stream_gen = Wd_workload.Stream_gen
module Stream = Wd_workload.Stream
module Sink = Wd_obs.Sink
module Metrics = Wd_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Throughput microbenchmarks (Bechamel) *)

let zipf_items n =
  let rng = Rng.create 7 in
  let dist = Wd_workload.Zipf.create ~n:100_000 ~skew:1.0 in
  Array.init n (fun _ -> Wd_workload.Zipf.sample dist rng)

(* Cycle through [items] one element per call.  Wraps with a compare
   instead of a bit mask so any array length works (the mask variant
   silently mis-iterated non-power-of-two arrays). *)
let cyclic items =
  let n = Array.length items in
  let i = ref 0 in
  fun () ->
    let v = items.(!i) in
    incr i;
    if !i = n then i := 0;
    v

(* Batched benchmark runs process [batch_chunk] updates per closure call;
   reporting divides the measured ns by this to get per-update cost. *)
let batch_chunk = 256

let cyclic_chunks items =
  let n = Array.length items in
  if n mod batch_chunk <> 0 then invalid_arg "cyclic_chunks: ragged chunks";
  cyclic
    (Array.init (n / batch_chunk) (fun c ->
         Array.sub items (c * batch_chunk) batch_chunk))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Tests whose name marks them as batched are divided by [batch_chunk]
   when reported, so every row of the throughput table is ns/update. *)
let runs_per_call name = if contains name "_batch" then batch_chunk else 1

let throughput_tests () =
  let open Bechamel in
  let items = zipf_items 65_536 in
  let fm_stochastic =
    let fam =
      Fm.family_custom ~rng:(Rng.create 1) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let sk = Fm.create fam in
    let next = cyclic items in
    Test.make ~name:"fm-add(stochastic,m=128)"
      (Staged.stage (fun () -> ignore (Fm.add sk (next ()) : bool)))
  in
  let fm_averaged =
    let fam =
      Fm.family_custom ~rng:(Rng.create 2) ~variant:Fm.Averaged ~bitmaps:10
    in
    let sk = Fm.create fam in
    let next = cyclic items in
    Test.make ~name:"fm-add(averaged,m=10)"
      (Staged.stage (fun () -> ignore (Fm.add sk (next ()) : bool)))
  in
  let hll =
    let fam = Wd_sketch.Hyperloglog.family_custom ~rng:(Rng.create 3) ~registers:1024 in
    let sk = Wd_sketch.Hyperloglog.create fam in
    let next = cyclic items in
    Test.make ~name:"hll-add(m=1024)"
      (Staged.stage (fun () -> ignore (Wd_sketch.Hyperloglog.add sk (next ()) : bool)))
  in
  let bjkst =
    let fam = Wd_sketch.Bjkst.family_custom ~rng:(Rng.create 4) ~k:1024 in
    let sk = Wd_sketch.Bjkst.create fam in
    let next = cyclic items in
    Test.make ~name:"bjkst-add(k=1024)"
      (Staged.stage (fun () -> ignore (Wd_sketch.Bjkst.add sk (next ()) : bool)))
  in
  let fmc =
    (* Sized for the same (0.1, 0.1) guarantee the eval grid's default
       cells use; one mixed-tabulation hash per add regardless of m. *)
    let fam = Fmc.family_of_params ~alpha:0.1 ~delta:0.1 ~seed:9 in
    let sk = Fmc.create fam in
    let next = cyclic items in
    Test.make ~name:(Printf.sprintf "fmc-add(m=%d)" (Fmc.buckets fam))
      (Staged.stage (fun () -> ignore (Fmc.add sk (next ()) : bool)))
  in
  let sampler =
    let fam = Sampler.family ~rng:(Rng.create 5) ~threshold:1_000 in
    let s = Sampler.create fam in
    let next = cyclic items in
    Test.make ~name:"sampler-add(T=1000)"
      (Staged.stage (fun () -> Sampler.add s (next ())))
  in
  let dc_observe =
    let fam =
      Fm.family_custom ~rng:(Rng.create 6) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let t = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:4 ~family:fam () in
    let next = cyclic items in
    let site = ref 0 in
    Test.make ~name:"dc-observe(LS,4 sites)"
      (Staged.stage (fun () ->
           site := (!site + 1) land 3;
           Dc.Fm.observe t ~site:!site (next ())))
  in
  let ds_observe =
    let fam = Sampler.family ~rng:(Rng.create 8) ~threshold:1_000 in
    let t = Ds.create ~algorithm:Ds.LCO ~theta:0.25 ~sites:4 ~family:fam () in
    let next = cyclic items in
    let site = ref 0 in
    Test.make ~name:"ds-observe(LCO,4 sites)"
      (Staged.stage (fun () ->
           site := (!site + 1) land 3;
           Ds.observe t ~site:!site (next ())))
  in
  (* Batched counterparts: one closure call consumes [batch_chunk]
     updates through the add_batch/observe_batch entry points, isolating
     the per-update win from hoisted hash state and bounds checks. *)
  let fm_stochastic_batch =
    let fam =
      Fm.family_custom ~rng:(Rng.create 1) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let sk = Fm.create fam in
    let next = cyclic_chunks items in
    Test.make ~name:"fm-add_batch(stochastic,m=128)"
      (Staged.stage (fun () -> Fm.add_batch sk (next ())))
  in
  let hll_batch =
    let fam =
      Wd_sketch.Hyperloglog.family_custom ~rng:(Rng.create 3) ~registers:1024
    in
    let sk = Wd_sketch.Hyperloglog.create fam in
    let next = cyclic_chunks items in
    Test.make ~name:"hll-add_batch(m=1024)"
      (Staged.stage (fun () -> Wd_sketch.Hyperloglog.add_batch sk (next ())))
  in
  let bjkst_batch =
    let fam = Wd_sketch.Bjkst.family_custom ~rng:(Rng.create 4) ~k:1024 in
    let sk = Wd_sketch.Bjkst.create fam in
    let next = cyclic_chunks items in
    Test.make ~name:"bjkst-add_batch(k=1024)"
      (Staged.stage (fun () -> Wd_sketch.Bjkst.add_batch sk (next ())))
  in
  let fmc_batch =
    let fam = Fmc.family_of_params ~alpha:0.1 ~delta:0.1 ~seed:9 in
    let sk = Fmc.create fam in
    let next = cyclic_chunks items in
    Test.make ~name:(Printf.sprintf "fmc-add_batch(m=%d)" (Fmc.buckets fam))
      (Staged.stage (fun () -> Fmc.add_batch sk (next ())))
  in
  (* Estimate cost, classic vs MLE, on fully loaded sketches: the MLE
     pays a short Newton/bisection loop per call and must stay cheap
     enough for the trackers' per-send refresh. *)
  let fmc_estimate est label =
    let fam =
      Fmc.with_estimator est (Fmc.family_of_params ~alpha:0.1 ~delta:0.1 ~seed:9)
    in
    let sk = Fmc.create fam in
    Fmc.add_batch sk items;
    Test.make ~name:(Printf.sprintf "fmc-estimate(%s)" label)
      (Staged.stage (fun () -> ignore (Fmc.estimate sk : float)))
  in
  let hll_estimate est label =
    let fam =
      Wd_sketch.Hyperloglog.with_estimator est
        (Wd_sketch.Hyperloglog.family_custom ~rng:(Rng.create 3)
           ~registers:1024)
    in
    let sk = Wd_sketch.Hyperloglog.create fam in
    Wd_sketch.Hyperloglog.add_batch sk items;
    Test.make ~name:(Printf.sprintf "hll-estimate(%s,m=1024)" label)
      (Staged.stage (fun () ->
           ignore (Wd_sketch.Hyperloglog.estimate sk : float)))
  in
  let sampler_batch =
    let fam = Sampler.family ~rng:(Rng.create 5) ~threshold:1_000 in
    let s = Sampler.create fam in
    let next = cyclic_chunks items in
    Test.make ~name:"sampler-add_batch(T=1000)"
      (Staged.stage (fun () -> Sampler.add_batch s (next ())))
  in
  let bench_sites = Array.init (Array.length items) (fun j -> j land 3) in
  let dc_observe_batch =
    let fam =
      Fm.family_custom ~rng:(Rng.create 6) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let t = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:4 ~family:fam () in
    let pos = ref 0 in
    Test.make ~name:"dc-observe_batch(LS,4 sites)"
      (Staged.stage (fun () ->
           Dc.Fm.observe_batch t ~sites:bench_sites ~items ~pos:!pos
             ~len:batch_chunk;
           pos := !pos + batch_chunk;
           if !pos = Array.length items then pos := 0))
  in
  let ds_observe_batch =
    let fam = Sampler.family ~rng:(Rng.create 8) ~threshold:1_000 in
    let t = Ds.create ~algorithm:Ds.LCO ~theta:0.25 ~sites:4 ~family:fam () in
    let pos = ref 0 in
    Test.make ~name:"ds-observe_batch(LCO,4 sites)"
      (Staged.stage (fun () ->
           Ds.observe_batch t ~sites:bench_sites ~items ~pos:!pos
             ~len:batch_chunk;
           pos := !pos + batch_chunk;
           if !pos = Array.length items then pos := 0))
  in
  Test.make_grouped ~name:"throughput"
    [
      fm_stochastic;
      fm_averaged;
      fmc;
      hll;
      bjkst;
      sampler;
      dc_observe;
      ds_observe;
      fm_stochastic_batch;
      fmc_batch;
      hll_batch;
      bjkst_batch;
      sampler_batch;
      dc_observe_batch;
      ds_observe_batch;
      fmc_estimate Wd_sketch.Sketch_intf.Classic "classic";
      fmc_estimate Wd_sketch.Sketch_intf.Mle "mle";
      hll_estimate Wd_sketch.Sketch_intf.Classic "classic";
      hll_estimate Wd_sketch.Sketch_intf.Mle "mle";
    ]

(* Runs one Bechamel group and returns raw [(name, ns_per_call)] rows —
   the shared measurement core of every microbenchmark section. *)
let measure_ols tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let measured = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns :: _) when ns > 0.0 -> measured := (name, ns) :: !measured
      | _ -> ())
    results;
  !measured

(* Measures the throughput group and returns per-update rows
   [(name, ns_per_update, m_updates_per_s)], batch runs normalized by
   [batch_chunk]. *)
let run_throughput () =
  Report.print_section
    "throughput: update cost per primitive (paper 7.2: sampling ~10x faster than sketching)";
  let rows =
    measure_ols (throughput_tests ())
    |> List.map (fun (name, ns) ->
           let ns = ns /. Float.of_int (runs_per_call name) in
           (name, ns, 1e9 /. ns))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  Report.print_table ~header:[ "operation"; "ns/update"; "M updates/s" ]
    (List.map
       (fun (name, ns, ips) -> Report.[ S name; F ns; F (ips /. 1e6) ])
       rows);
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* Bytes per run: end-to-end communication of every approximate
   algorithm on one seeded stream, for machine-readable regression
   tracking alongside the throughput numbers. *)

type bytes_row = {
  b_protocol : string;
  b_algorithm : string;
  b_updates : int;
  b_total_bytes : int;
  b_bytes_up : int;
  b_bytes_down : int;
  b_sends : int;
}

let run_bytes ~scale =
  let module Sim = Whats_different.Simulation in
  Report.print_section
    "bytes: total communication per algorithm on a seeded zipf stream";
  let events = max 1_000 (int_of_float (100_000.0 *. scale)) in
  let stream =
    Stream_gen.zipf ~seed:11 ~sites:8 ~events ~universe:(max 500 (events / 2))
      ()
  in
  let dc_rows =
    List.map
      (fun alg ->
        let r =
          Sim.run ~seed:1
            (Wd_view.Query.dc ~theta:0.05 ~alpha:0.1 alg)
            stream
        in
        {
          b_protocol = "dc";
          b_algorithm = Dc.algorithm_to_string alg;
          b_updates = r.Sim.updates;
          b_total_bytes = r.Sim.total_bytes;
          b_bytes_up = r.Sim.bytes_up;
          b_bytes_down = r.Sim.bytes_down;
          b_sends = r.Sim.sends;
        })
      Dc.approximate_algorithms
  in
  let ds_rows =
    List.map
      (fun alg ->
        let r =
          Sim.run ~seed:1
            (Wd_view.Query.ds ~theta:0.5 ~threshold:500 alg)
            stream
        in
        {
          b_protocol = "ds";
          b_algorithm = Ds.algorithm_to_string alg;
          b_updates = r.Sim.updates;
          b_total_bytes = r.Sim.total_bytes;
          b_bytes_up = r.Sim.bytes_up;
          b_bytes_down = r.Sim.bytes_down;
          b_sends = r.Sim.sends;
        })
      Ds.approximate_algorithms
  in
  let rows = dc_rows @ ds_rows in
  Report.print_table
    ~header:[ "protocol"; "algorithm"; "updates"; "bytes"; "up"; "down"; "sends" ]
    (List.map
       (fun r ->
         Report.
           [
             S r.b_protocol;
             S r.b_algorithm;
             I r.b_updates;
             I r.b_total_bytes;
             I r.b_bytes_up;
             I r.b_bytes_down;
             I r.b_sends;
           ])
       rows);
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* Serialized sketch size at equal (alpha, delta): what each broadcast
   of the DC protocols pays per site, the concrete bytes win of the
   concentrated-hashing family over the averaged-FM repetitions. *)

type sketch_bytes_row = {
  k_alpha : float;
  k_delta : float;
  k_fm_bytes : int;
  k_fmc_bytes : int;
}

let run_sketch_bytes () =
  Report.print_section
    "sketch bytes: serialized size at equal (alpha, delta), averaged FM vs concentrated FM";
  let delta = 0.1 in
  let rows =
    List.map
      (fun alpha ->
        let size (module S : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) =
          S.size_bytes (S.of_params ~alpha ~delta ~seed:9)
        in
        {
          k_alpha = alpha;
          k_delta = delta;
          k_fm_bytes = size (module Fm);
          k_fmc_bytes = size (module Fmc);
        })
      [ 0.05; 0.1; 0.2 ]
  in
  Report.print_table
    ~header:[ "alpha"; "delta"; "fm bytes"; "fmc bytes"; "fmc/fm" ]
    (List.map
       (fun r ->
         Report.
           [
             F r.k_alpha;
             F r.k_delta;
             I r.k_fm_bytes;
             I r.k_fmc_bytes;
             S
               (Printf.sprintf "%.2fx"
                  (Float.of_int r.k_fmc_bytes /. Float.of_int r.k_fm_bytes));
           ])
       rows);
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* Site-count scaling: end-to-end LS tracking at k = 10 / 100 / 1000
   sites on one seeded stream, plus the sharded coordinator at k = 1000
   with 1 vs 4 worker domains.  The shard comparison is only meaningful
   on a multicore host; the committed JSON records the runner's
   recommended domain count so single-core baselines are not misread as
   a parallel-speedup regression. *)

type scaling_row = {
  s_sites : int;
  s_shards : int;
  s_updates : int;
  s_wall_s : float;
  s_total_bytes : int;
  s_sends : int;
}

let run_scaling ~scale =
  let module Sim = Whats_different.Simulation in
  Report.print_section
    "scaling: LS tracking at k sites (and the sharded coordinator at k=1000)";
  let events = max 10_000 (int_of_float (200_000.0 *. scale)) in
  let one ~sites ~shards =
    let stream =
      Stream_gen.zipf ~seed:11 ~sites ~events ~universe:(max 500 (events / 2))
        ()
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Sim.run ~seed:1 ~shards
        (Wd_view.Query.dc ~theta:0.05 ~alpha:0.1 Dc.LS)
        stream
    in
    let wall = Unix.gettimeofday () -. t0 in
    {
      s_sites = sites;
      s_shards = shards;
      s_updates = r.Sim.updates;
      s_wall_s = wall;
      s_total_bytes = r.Sim.total_bytes;
      s_sends = r.Sim.sends;
    }
  in
  let rows =
    [
      one ~sites:10 ~shards:1;
      one ~sites:100 ~shards:1;
      one ~sites:1000 ~shards:1;
      one ~sites:1000 ~shards:4;
    ]
  in
  Report.print_table
    ~header:
      [ "sites"; "shards"; "updates"; "wall s"; "M updates/s"; "ledger bytes";
        "sends" ]
    (List.map
       (fun r ->
         Report.
           [
             I r.s_sites;
             I r.s_shards;
             I r.s_updates;
             F r.s_wall_s;
             F (Float.of_int r.s_updates /. r.s_wall_s /. 1e6);
             I r.s_total_bytes;
             I r.s_sends;
           ])
       rows);
  Printf.printf "host recommended domain count: %d\n"
    (Domain.recommended_domain_count ());
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* View fan-out: end-to-end cost of V standing views sharing one
   hash-once stream, and the marginal per-view cost of each extra view.
   Satellites are key-class fanout queries (one residue each, all on one
   modulus), so the registry routes them through a single dispatch
   table; the gate below asserts the resulting marginal cost stays a
   small fraction of a standalone tracker update. *)

type views_row = {
  w_views : int;
  w_updates : int;
  w_wall_s : float;
  w_ns_per_update : float;
  w_marginal_ns : float;
      (* extra ns per update per added view vs the 1-view run; nan at V=1 *)
}

let view_counts = [ 1; 100; 10_000 ]

let fanout_satellites ~views =
  let sats = views - 1 in
  List.init sats (fun i ->
      Wd_view.Query.dc
        ~name:(Printf.sprintf "v%d" (i + 1))
        ~sketch:Wd_view.Query.Fanout
        ~selector:(Wd_view.Query.Key_mod { modulus = sats; residue = i })
        ~theta:0.05 ~alpha:0.1 Dc.NS)

let measure_views ~scale =
  let module Sim = Whats_different.Simulation in
  let events = max 10_000 (int_of_float (200_000.0 *. scale)) in
  let stream =
    Stream_gen.zipf ~seed:11 ~sites:4 ~events ~universe:(max 500 (events / 2))
      ()
  in
  let one views =
    let satellites = if views > 1 then fanout_satellites ~views else [] in
    let t0 = Unix.gettimeofday () in
    let r =
      Sim.run ~seed:1 ~views:satellites
        (Wd_view.Query.dc ~theta:0.05 ~alpha:0.1 Dc.NS)
        stream
    in
    let wall = Unix.gettimeofday () -. t0 in
    (r.Sim.updates, wall)
  in
  (* Warm-up so allocator and page-fault effects don't land on the
     baseline 1-view row. *)
  ignore (one 1);
  let base = ref Float.nan in
  List.map
    (fun views ->
      let updates, wall = one views in
      let ns = wall *. 1e9 /. Float.of_int updates in
      if views = 1 then base := ns;
      let marginal =
        if views = 1 then Float.nan
        else (ns -. !base) /. Float.of_int (views - 1)
      in
      {
        w_views = views;
        w_updates = updates;
        w_wall_s = wall;
        w_ns_per_update = ns;
        w_marginal_ns = marginal;
      })
    view_counts

let print_views_rows rows =
  Report.print_table
    ~header:
      [ "views"; "updates"; "wall s"; "ns/update"; "marginal ns/update/view" ]
    (List.map
       (fun r ->
         Report.
           [
             I r.w_views;
             I r.w_updates;
             F r.w_wall_s;
             F r.w_ns_per_update;
             (if Float.is_nan r.w_marginal_ns then S "baseline"
              else F r.w_marginal_ns);
           ])
       rows)

let run_views ~scale =
  Report.print_section
    "views: V standing views over one hash-once stream (key-class fanout satellites)";
  let rows = measure_views ~scale in
  print_views_rows rows;
  print_newline ();
  rows

(* The fan-out CI gate: at the largest view count, adding one more view
   must cost at most a quarter of a standalone tracker update — i.e. the
   registry's fan-out is strongly sublinear in V, not a per-view scan. *)
let fanout_budget = 0.25

let run_assert_fanout ~scale =
  Report.print_section
    (Printf.sprintf
       "--assert-fanout: marginal view cost at V=%d vs the standalone \
        per-update cost (budget %.2fx)"
       (List.fold_left max 1 view_counts)
       fanout_budget);
  let rows = measure_views ~scale in
  print_views_rows rows;
  let base =
    List.find_opt (fun r -> r.w_views = 1) rows
    |> Option.map (fun r -> r.w_ns_per_update)
  in
  let last = List.nth rows (List.length rows - 1) in
  match base with
  | None ->
    print_endline "no 1-view baseline row measured";
    false
  | Some base_ns ->
    let ratio = last.w_marginal_ns /. base_ns in
    let ok = Float.is_finite ratio && ratio <= fanout_budget in
    Printf.printf
      "marginal cost at %d views: %.3f ns/update/view = %.4fx of a \
       standalone update (%.1f ns): %s\n\n"
      last.w_views last.w_marginal_ns ratio base_ns
      (if ok then "OK" else "OVER BUDGET");
    ok

(* ------------------------------------------------------------------ *)
(* JSON result files (--json PATH): machine-readable snapshot of the
   throughput and bytes runs, written with the in-tree codec.  The
   committed BENCH_*.json baselines use this format; see README.md
   "Performance" for how to regenerate and compare. *)

module Json = Wd_obs.Json

let json_of_results ~scale ~throughput ~bytes ~scaling ~sketch_bytes ~views =
  let fields = [ ("schema", Json.Str "wd-bench/1"); ("scale", Json.Float scale) ] in
  let fields =
    match throughput with
    | None -> fields
    | Some rows ->
      fields
      @ [
          ( "throughput",
            Json.List
              (List.map
                 (fun (name, ns, ips) ->
                   Json.Obj
                     [
                       ("name", Json.Str name);
                       ("ns_per_update", Json.Float ns);
                       ("m_updates_per_s", Json.Float (ips /. 1e6));
                     ])
                 rows) );
        ]
  in
  let fields =
    match bytes with
    | None -> fields
    | Some rows ->
      fields
      @ [
          ( "bytes",
            Json.List
              (List.map
                 (fun r ->
                   Json.Obj
                     [
                       ("protocol", Json.Str r.b_protocol);
                       ("algorithm", Json.Str r.b_algorithm);
                       ("updates", Json.Int r.b_updates);
                       ("total_bytes", Json.Int r.b_total_bytes);
                       ("bytes_up", Json.Int r.b_bytes_up);
                       ("bytes_down", Json.Int r.b_bytes_down);
                       ("sends", Json.Int r.b_sends);
                     ])
                 rows) );
        ]
  in
  let fields =
    match sketch_bytes with
    | None -> fields
    | Some rows ->
      fields
      @ [
          ( "sketch_bytes",
            Json.List
              (List.map
                 (fun r ->
                   Json.Obj
                     [
                       ("alpha", Json.Float r.k_alpha);
                       ("delta", Json.Float r.k_delta);
                       ("fm_bytes", Json.Int r.k_fm_bytes);
                       ("fmc_bytes", Json.Int r.k_fmc_bytes);
                     ])
                 rows) );
        ]
  in
  let fields =
    match views with
    | None -> fields
    | Some rows ->
      fields
      @ [
          ( "views",
            Json.List
              (List.map
                 (fun r ->
                   Json.Obj
                     [
                       ("views", Json.Int r.w_views);
                       ("updates", Json.Int r.w_updates);
                       ("wall_s", Json.Float r.w_wall_s);
                       ("ns_per_update", Json.Float r.w_ns_per_update);
                       ( "marginal_ns_per_update_per_view",
                         if Float.is_nan r.w_marginal_ns then Json.Null
                         else Json.Float r.w_marginal_ns );
                     ])
                 rows) );
        ]
  in
  let fields =
    match scaling with
    | None -> fields
    | Some rows ->
      fields
      @ [
          ("cores", Json.Int (Domain.recommended_domain_count ()));
          ( "scaling",
            Json.List
              (List.map
                 (fun r ->
                   Json.Obj
                     [
                       ("sites", Json.Int r.s_sites);
                       ("shards", Json.Int r.s_shards);
                       ("updates", Json.Int r.s_updates);
                       ("wall_s", Json.Float r.s_wall_s);
                       ( "updates_per_s",
                         Json.Float (Float.of_int r.s_updates /. r.s_wall_s) );
                       ("ledger_bytes", Json.Int r.s_total_bytes);
                       ("sends", Json.Int r.s_sends);
                     ])
                 rows) );
        ]
  in
  Json.Obj fields

let write_json path ~scale ~throughput ~bytes ~scaling ~sketch_bytes ~views =
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (json_of_results ~scale ~throughput ~bytes ~scaling ~sketch_bytes
          ~views));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Sink overhead (Wd_obs acceptance: null sink must cost <= 5%) *)

let sink_overhead_tests () =
  let open Bechamel in
  let items = zipf_items 65_536 in
  let observe_case ~name sink =
    let fam =
      Fm.family_custom ~rng:(Rng.create 6) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let t = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:4 ~family:fam () in
    Option.iter
      (fun s ->
        Dc.Fm.set_sink t s;
        Wd_net.Network.set_sink (Dc.Fm.network t) s)
      sink;
    let next = cyclic items in
    let site = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           site := (!site + 1) land 3;
           Dc.Fm.observe t ~site:!site (next ())))
  in
  let guard =
    (* The entire per-event cost an inactive sink adds to a hot path is
       one [Sink.enabled] test guarding the event allocation.  Batched 16x
       per run so the harness's closure-call floor doesn't swamp it. *)
    let s = Sink.null in
    Test.make ~name:"null-guard(x16)"
      (Staged.stage (fun () ->
           for _ = 1 to 16 do
             ignore (Sink.enabled (Sys.opaque_identity s))
           done))
  in
  Test.make_grouped ~name:"sink-overhead"
    [
      observe_case ~name:"dc-observe(null)" None;
      observe_case ~name:"dc-observe(ring)" (Some (Sink.ring ~capacity:4096));
      observe_case ~name:"dc-observe(metrics)"
        (Some (Sink.metrics (Metrics.create ())));
      observe_case ~name:"dc-observe(jsonl)" (Some (Sink.jsonl "/dev/null"));
      guard;
    ]

(* Returns whether the null-sink guard landed within its 5% budget
   (vacuously true when the measurement is unavailable, so the default
   figure run never turns benchmark hiccups into failures — the
   [--assert-overhead] gate is what consumes the verdict). *)
let run_sink_overhead () =
  Report.print_section
    "sink overhead: Dc_tracker.observe with trace sinks attached";
  let measured = measure_ols (sink_overhead_tests ()) in
  let find needle =
    List.find_opt (fun (name, _) -> Filename.check_suffix name needle) measured
  in
  match find "dc-observe(null)" with
  | None ->
    print_endline "  (no baseline measurement; skipped)";
    true
  | Some (_, base_ns) ->
    let rows =
      List.sort (fun (a, _) (b, _) -> compare a b) measured
      |> List.filter (fun (name, _) ->
             not (Filename.check_suffix name "null-guard(x16)"))
      |> List.map (fun (name, ns) ->
             let pct = 100.0 *. (ns -. base_ns) /. base_ns in
             Report.
               [
                 S (Filename.basename name);
                 F ns;
                 (if Filename.check_suffix name "dc-observe(null)" then
                    S "baseline"
                  else S (Printf.sprintf "%+.1f%%" pct));
               ])
    in
    Report.print_table ~header:[ "case"; "ns/update"; "vs null sink" ] rows;
    let guard_ok =
      match find "null-guard(x16)" with
      | Some (_, batch_ns) ->
        let guard_ns = batch_ns /. 16.0 in
        let pct = 100.0 *. guard_ns /. base_ns in
        let ok = pct <= 5.0 in
        Printf.printf
          "null-sink guard costs %.2f ns/event = %.2f%% of an observe (budget 5%%): %s\n"
          guard_ns pct
          (if ok then "OK" else "OVER BUDGET");
        ok
      | None -> true
    in
    print_newline ();
    guard_ok

(* ------------------------------------------------------------------ *)
(* Span overhead on the batched hot path, and the --assert-overhead CI
   gate.

   The observability acceptance bound: with no recorder attached the
   span check on [observe_batch] is a single option match per
   [batch_chunk]-update batch, and that disabled path must stay within
   5% of the committed throughput baseline.  The recorder-attached
   cases are informational — they price two clock reads and one event
   per batch. *)

let span_batch_tests ?(with_recorder = true) () =
  let open Bechamel in
  let items = zipf_items 65_536 in
  let bench_sites = Array.init (Array.length items) (fun j -> j land 3) in
  let recorder () =
    Wd_obs.Span.create ~clock:Wd_net.Clock.ns ~emit:(fun _ -> ()) ()
  in
  let dc_case ~name ~spans =
    let fam =
      Fm.family_custom ~rng:(Rng.create 6) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let t = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:4 ~family:fam () in
    if spans then
      Wd_net.Network.set_spans (Dc.Fm.network t) (Some (recorder ()));
    let pos = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           Dc.Fm.observe_batch t ~sites:bench_sites ~items ~pos:!pos
             ~len:batch_chunk;
           pos := !pos + batch_chunk;
           if !pos = Array.length items then pos := 0))
  in
  let ds_case ~name ~spans =
    let fam = Sampler.family ~rng:(Rng.create 8) ~threshold:1_000 in
    let t = Ds.create ~algorithm:Ds.LCO ~theta:0.25 ~sites:4 ~family:fam () in
    if spans then Wd_net.Network.set_spans (Ds.network t) (Some (recorder ()));
    let pos = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           Ds.observe_batch t ~sites:bench_sites ~items ~pos:!pos
             ~len:batch_chunk;
           pos := !pos + batch_chunk;
           if !pos = Array.length items then pos := 0))
  in
  let off =
    [
      dc_case ~name:"dc-observe_batch(spans off)" ~spans:false;
      ds_case ~name:"ds-observe_batch(spans off)" ~spans:false;
    ]
  in
  let on =
    if with_recorder then
      [
        dc_case ~name:"dc-observe_batch(recorder)" ~spans:true;
        ds_case ~name:"ds-observe_batch(recorder)" ~spans:true;
      ]
    else []
  in
  Test.make_grouped ~name:"span-overhead" (off @ on)

let run_span_overhead () =
  Report.print_section
    "span overhead: observe_batch with the span recorder detached vs attached";
  let per_update =
    measure_ols (span_batch_tests ())
    |> List.map (fun (name, ns) -> (name, ns /. Float.of_int batch_chunk))
  in
  let find needle =
    List.find_opt (fun (name, _) -> Filename.check_suffix name needle)
      per_update
  in
  let row proto off_case on_case =
    match (find off_case, find on_case) with
    | Some (_, off), Some (_, on) ->
      [
        Report.
          [
            S proto;
            F off;
            F on;
            S (Printf.sprintf "%+.1f%%" (100.0 *. (on -. off) /. off));
          ];
      ]
    | _ -> []
  in
  let rows =
    row "dc-observe_batch" "dc-observe_batch(spans off)"
      "dc-observe_batch(recorder)"
    @ row "ds-observe_batch" "ds-observe_batch(spans off)"
        "ds-observe_batch(recorder)"
  in
  Report.print_table
    ~header:[ "hot path"; "spans off ns/up"; "recorder ns/up"; "delta" ]
    rows;
  print_newline ()

(* The baseline's observe_batch throughput rows: [(name, ns_per_update)]
   from a committed wd-bench/1 file. *)
let baseline_batch_rows path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> (
    match Json.of_string s with
    | Error e -> Error e
    | Ok j -> (
      match Json.member "throughput" j with
      | Some (Json.List rows) ->
        Ok
          (List.filter_map
             (fun row ->
               match
                 ( Option.bind (Json.member "name" row) Json.to_str,
                   Option.bind (Json.member "ns_per_update" row) Json.to_float
                 )
               with
               | Some name, Some ns when contains name "observe_batch" ->
                 Some (name, ns)
               | _ -> None)
             rows)
      | _ -> Error "no \"throughput\" rows in baseline"))

let overhead_slack = 1.05

(* Cross-run wall-clock gates flake: the first Bechamel estimate after
   process start is routinely a large outlier (observed 5687 ns for a
   ~50 ns case, settling on the immediate rerun), so the gate discards
   one warm-up round and then judges the best of three estimates —
   the minimum is the noise-robust statistic for "how fast can this
   path go", which is what an overhead bound asks. *)
let run_assert_overhead ~baseline =
  Report.print_section
    (Printf.sprintf
       "--assert-overhead: disabled-span batch hot path vs %s (budget +5%%)"
       baseline);
  match baseline_batch_rows baseline with
  | Error e ->
    Printf.eprintf "cannot load baseline %s: %s\n" baseline e;
    false
  | Ok [] ->
    Printf.eprintf "baseline %s has no observe_batch throughput rows\n"
      baseline;
    false
  | Ok base ->
    (* Baseline names come from the throughput group
       ("dc-observe_batch(LS,4 sites)"); the gate measures the matching
       spans-off case of the span-overhead group. *)
    let case_for name =
      if contains name "dc-observe_batch" then
        Some "dc-observe_batch(spans off)"
      else if contains name "ds-observe_batch" then
        Some "ds-observe_batch(spans off)"
      else None
    in
    let base =
      List.filter_map
        (fun (name, ns) ->
          Option.map (fun case -> (name, case, ns)) (case_for name))
        base
    in
    let gate_tests () = span_batch_tests ~with_recorder:false () in
    ignore (measure_ols (gate_tests ()) : (string * float) list);
    let best = Hashtbl.create 8 in
    for _ = 1 to 3 do
      List.iter
        (fun (name, ns) ->
          let ns = ns /. Float.of_int batch_chunk in
          match Hashtbl.find_opt best name with
          | Some prev when prev <= ns -> ()
          | _ -> Hashtbl.replace best name ns)
        (measure_ols (gate_tests ()))
    done;
    let ok = ref true in
    let rows =
      List.map
        (fun (bname, case, base_ns) ->
          let measured =
            Hashtbl.fold
              (fun name ns acc ->
                if Filename.check_suffix name case then Some ns else acc)
              best None
          in
          match measured with
          | None ->
            ok := false;
            Report.[ S bname; F base_ns; S "-"; S "-"; S "NOT MEASURED" ]
          | Some ns ->
            let ratio = ns /. base_ns in
            if ratio > overhead_slack then ok := false;
            Report.
              [
                S bname;
                F base_ns;
                F ns;
                S (Printf.sprintf "%.3fx" ratio);
                S (if ratio <= overhead_slack then "OK" else "OVER BUDGET");
              ])
        base
    in
    Report.print_table
      ~header:[ "baseline row"; "baseline ns"; "best-of-3 ns"; "ratio"; "verdict" ]
      rows;
    print_newline ();
    !ok

(* ------------------------------------------------------------------ *)
(* --assert-concentrated: the tentpole's perf claim as a CI gate.  The
   concentrated-hashing FM family pays one mixed-tabulation hash per
   update where the averaged FM family pays one weak hash and one bitmap
   update per repetition, so its batched per-update cost must land below
   the committed averaged-FM throughput baseline — not merely within a
   slack band of it. *)

(* The ns/update of one exactly-named throughput row of a committed
   wd-bench/1 file. *)
let baseline_throughput_row path ~name:wanted =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> (
    match Json.of_string s with
    | Error e -> Error e
    | Ok j -> (
      match Json.member "throughput" j with
      | Some (Json.List rows) -> (
        let found =
          List.find_map
            (fun row ->
              match
                ( Option.bind (Json.member "name" row) Json.to_str,
                  Option.bind (Json.member "ns_per_update" row) Json.to_float
                )
              with
              | Some name, Some ns when contains name wanted -> Some ns
              | _ -> None)
            rows
        in
        match found with
        | Some ns -> Ok ns
        | None -> Error (Printf.sprintf "no %S row in baseline" wanted))
      | _ -> Error "no \"throughput\" rows in baseline"))

let concentrated_gate_tests () =
  let open Bechamel in
  let items = zipf_items 65_536 in
  let fam = Fmc.family_of_params ~alpha:0.1 ~delta:0.1 ~seed:9 in
  let sk = Fmc.create fam in
  let next = cyclic_chunks items in
  Test.make_grouped ~name:"concentrated"
    [
      Test.make ~name:"fmc-add_batch(gate)"
        (Staged.stage (fun () -> Fmc.add_batch sk (next ())));
    ]

let averaged_fm_row = "fm-add(averaged,m=10)"

let run_assert_concentrated ~baseline =
  Report.print_section
    (Printf.sprintf
       "--assert-concentrated: fmc-add_batch ns/update vs the committed %s row of %s"
       averaged_fm_row baseline);
  match baseline_throughput_row baseline ~name:averaged_fm_row with
  | Error e ->
    Printf.eprintf "cannot load baseline %s: %s\n" baseline e;
    false
  | Ok base_ns ->
    (* Same noise discipline as --assert-overhead: discard one warm-up
       round, judge the best of three estimates. *)
    ignore (measure_ols (concentrated_gate_tests ()) : (string * float) list);
    let best = ref Float.infinity in
    for _ = 1 to 3 do
      List.iter
        (fun (_, ns) -> best := Float.min !best (ns /. Float.of_int batch_chunk))
        (measure_ols (concentrated_gate_tests ()))
    done;
    let measured = !best in
    let ok = Float.is_finite measured && measured < base_ns in
    Report.print_table
      ~header:[ "case"; "baseline ns"; "best-of-3 ns"; "verdict" ]
      [
        Report.
          [
            S "fmc-add_batch vs averaged fm-add";
            F base_ns;
            F measured;
            S (if ok then "FASTER" else "NOT FASTER");
          ];
      ];
    print_newline ();
    ok

(* ------------------------------------------------------------------ *)
(* Driver *)

let write_csv dir (t : Experiments.table) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (t.Experiments.id ^ ".csv") in
  let oc = open_out path in
  output_string oc
    (Report.render_csv ~header:t.Experiments.header t.Experiments.rows);
  output_char oc '\n';
  close_out oc

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1.0 in
  let with_throughput = ref true in
  let csv_dir = ref None in
  let json_path = ref None in
  let assert_overhead = ref false in
  let assert_concentrated = ref false in
  let assert_fanout = ref false in
  let baseline = ref "BENCH_PR3.json" in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--no-throughput" :: rest ->
      with_throughput := false;
      parse rest
    | "--assert-overhead" :: rest ->
      assert_overhead := true;
      parse rest
    | "--assert-concentrated" :: rest ->
      assert_concentrated := true;
      parse rest
    | "--assert-fanout" :: rest ->
      assert_fanout := true;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline := path;
      parse rest
    | "--list" :: _ ->
      List.iter print_endline
        ("throughput" :: "bytes" :: "scaling" :: "sketch-bytes" :: "views"
       :: "sink-overhead" :: "span-overhead" :: Experiments.ids);
      exit 0
    | id :: rest ->
      selected := id :: !selected;
      parse rest
  in
  parse args;
  let options = { Experiments.default_options with scale = !scale } in
  let emit t =
    Experiments.print t;
    Option.iter (fun dir -> write_csv dir t) !csv_dir
  in
  let throughput_rows = ref None in
  let bytes_rows = ref None in
  let scaling_rows = ref None in
  let sketch_bytes_rows = ref None in
  let views_rows = ref None in
  let do_throughput () = throughput_rows := Some (run_throughput ()) in
  let do_bytes () = bytes_rows := Some (run_bytes ~scale:!scale) in
  let do_scaling () = scaling_rows := Some (run_scaling ~scale:!scale) in
  let do_sketch_bytes () = sketch_bytes_rows := Some (run_sketch_bytes ()) in
  let do_views () = views_rows := Some (run_views ~scale:!scale) in
  let selected = List.rev !selected in
  let t0 = Unix.gettimeofday () in
  let gate_ok = ref true in
  let run_gates () =
    if !assert_overhead then begin
      let sink_ok = run_sink_overhead () in
      let span_ok = run_assert_overhead ~baseline:!baseline in
      if not (sink_ok && span_ok) then gate_ok := false
    end;
    if !assert_concentrated then
      if not (run_assert_concentrated ~baseline:!baseline) then
        gate_ok := false;
    if !assert_fanout then
      if not (run_assert_fanout ~scale:!scale) then gate_ok := false
  in
  (match selected with
  | [] when !assert_overhead || !assert_concentrated || !assert_fanout ->
    (* Gate-only mode (the CI bench steps): skip the figure
       reproduction, just run the requested assertions. *)
    run_gates ()
  | [] ->
    Printf.printf
      "Reproducing all figures of 'What's Different' (ICDE 2006) at scale %g\n"
      !scale;
    List.iter emit (Experiments.all ~options ());
    if !with_throughput then (
      do_throughput ();
      do_bytes ();
      do_scaling ();
      do_sketch_bytes ();
      do_views ();
      ignore (run_sink_overhead () : bool);
      run_span_overhead ())
  | ids ->
    List.iter
      (fun id ->
        if id = "throughput" then do_throughput ()
        else if id = "bytes" then do_bytes ()
        else if id = "scaling" then do_scaling ()
        else if id = "sketch-bytes" then do_sketch_bytes ()
        else if id = "views" then do_views ()
        else if id = "sink-overhead" then ignore (run_sink_overhead () : bool)
        else if id = "span-overhead" then run_span_overhead ()
        else
          match Experiments.by_id id with
          | Some f -> emit (f options)
          | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 1)
      ids;
    run_gates ());
  Option.iter
    (fun path ->
      write_json path ~scale:!scale ~throughput:!throughput_rows
        ~bytes:!bytes_rows ~scaling:!scaling_rows
        ~sketch_bytes:!sketch_bytes_rows ~views:!views_rows)
    !json_path;
  Printf.printf "total wall time: %.1fs\n" (Unix.gettimeofday () -. t0);
  if not !gate_ok then (
    prerr_endline "overhead assertion FAILED";
    exit 1)
