(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Section 7) as a printed table, runs the design-choice ablations, and
   measures update throughput with Bechamel (the paper's Section 7.2
   remark: sketch tracking processed ~0.5M items/s, distinct sampling up
   to an order of magnitude faster).

   Usage:
     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig5a fig7c  # selected experiments
     dune exec bench/main.exe -- --scale 0.2  # smaller/faster workloads
     dune exec bench/main.exe -- --csv DIR    # also write one CSV per table
     dune exec bench/main.exe -- --list       # available experiment ids
     dune exec bench/main.exe -- --no-throughput *)

module Experiments = Whats_different.Experiments
module Report = Whats_different.Report
module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Sampler = Wd_sketch.Distinct_sampler
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Stream_gen = Wd_workload.Stream_gen
module Stream = Wd_workload.Stream
module Sink = Wd_obs.Sink
module Metrics = Wd_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Throughput microbenchmarks (Bechamel) *)

let zipf_items n =
  let rng = Rng.create 7 in
  let dist = Wd_workload.Zipf.create ~n:100_000 ~skew:1.0 in
  Array.init n (fun _ -> Wd_workload.Zipf.sample dist rng)

let cyclic items =
  let i = ref 0 in
  fun () ->
    let v = items.(!i) in
    i := (!i + 1) land (Array.length items - 1);
    v

let throughput_tests () =
  let open Bechamel in
  let items = zipf_items 65_536 in
  let fm_stochastic =
    let fam =
      Fm.family_custom ~rng:(Rng.create 1) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let sk = Fm.create fam in
    let next = cyclic items in
    Test.make ~name:"fm-add(stochastic,m=128)"
      (Staged.stage (fun () -> ignore (Fm.add sk (next ()) : bool)))
  in
  let fm_averaged =
    let fam =
      Fm.family_custom ~rng:(Rng.create 2) ~variant:Fm.Averaged ~bitmaps:10
    in
    let sk = Fm.create fam in
    let next = cyclic items in
    Test.make ~name:"fm-add(averaged,m=10)"
      (Staged.stage (fun () -> ignore (Fm.add sk (next ()) : bool)))
  in
  let hll =
    let fam = Wd_sketch.Hyperloglog.family_custom ~rng:(Rng.create 3) ~registers:1024 in
    let sk = Wd_sketch.Hyperloglog.create fam in
    let next = cyclic items in
    Test.make ~name:"hll-add(m=1024)"
      (Staged.stage (fun () -> ignore (Wd_sketch.Hyperloglog.add sk (next ()) : bool)))
  in
  let bjkst =
    let fam = Wd_sketch.Bjkst.family_custom ~rng:(Rng.create 4) ~k:1024 in
    let sk = Wd_sketch.Bjkst.create fam in
    let next = cyclic items in
    Test.make ~name:"bjkst-add(k=1024)"
      (Staged.stage (fun () -> ignore (Wd_sketch.Bjkst.add sk (next ()) : bool)))
  in
  let sampler =
    let fam = Sampler.family ~rng:(Rng.create 5) ~threshold:1_000 in
    let s = Sampler.create fam in
    let next = cyclic items in
    Test.make ~name:"sampler-add(T=1000)"
      (Staged.stage (fun () -> Sampler.add s (next ())))
  in
  let dc_observe =
    let fam =
      Fm.family_custom ~rng:(Rng.create 6) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let t = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:4 ~family:fam () in
    let next = cyclic items in
    let site = ref 0 in
    Test.make ~name:"dc-observe(LS,4 sites)"
      (Staged.stage (fun () ->
           site := (!site + 1) land 3;
           Dc.Fm.observe t ~site:!site (next ())))
  in
  let ds_observe =
    let fam = Sampler.family ~rng:(Rng.create 8) ~threshold:1_000 in
    let t = Ds.create ~algorithm:Ds.LCO ~theta:0.25 ~sites:4 ~family:fam () in
    let next = cyclic items in
    let site = ref 0 in
    Test.make ~name:"ds-observe(LCO,4 sites)"
      (Staged.stage (fun () ->
           site := (!site + 1) land 3;
           Ds.observe t ~site:!site (next ())))
  in
  Test.make_grouped ~name:"throughput"
    [ fm_stochastic; fm_averaged; hll; bjkst; sampler; dc_observe; ds_observe ]

let run_throughput () =
  let open Bechamel in
  Report.print_section
    "throughput: update cost per primitive (paper 7.2: sampling ~10x faster than sketching)";
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (throughput_tests ()) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns :: _) when ns > 0.0 ->
        rows :=
          (name, ns, 1e9 /. ns) :: !rows
      | _ -> ())
    results;
  let rows =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows
    |> List.map (fun (name, ns, ips) ->
           Report.[ S name; F ns; F (ips /. 1e6) ])
  in
  Report.print_table ~header:[ "operation"; "ns/update"; "M updates/s" ] rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Sink overhead (Wd_obs acceptance: null sink must cost <= 5%) *)

let sink_overhead_tests () =
  let open Bechamel in
  let items = zipf_items 65_536 in
  let observe_case ~name sink =
    let fam =
      Fm.family_custom ~rng:(Rng.create 6) ~variant:Fm.Stochastic ~bitmaps:128
    in
    let t = Dc.Fm.create ~algorithm:Dc.LS ~theta:0.03 ~sites:4 ~family:fam () in
    Option.iter
      (fun s ->
        Dc.Fm.set_sink t s;
        Wd_net.Network.set_sink (Dc.Fm.network t) s)
      sink;
    let next = cyclic items in
    let site = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           site := (!site + 1) land 3;
           Dc.Fm.observe t ~site:!site (next ())))
  in
  let guard =
    (* The entire per-event cost an inactive sink adds to a hot path is
       one [Sink.enabled] test guarding the event allocation.  Batched 16x
       per run so the harness's closure-call floor doesn't swamp it. *)
    let s = Sink.null in
    Test.make ~name:"null-guard(x16)"
      (Staged.stage (fun () ->
           for _ = 1 to 16 do
             ignore (Sink.enabled (Sys.opaque_identity s))
           done))
  in
  Test.make_grouped ~name:"sink-overhead"
    [
      observe_case ~name:"dc-observe(null)" None;
      observe_case ~name:"dc-observe(ring)" (Some (Sink.ring ~capacity:4096));
      observe_case ~name:"dc-observe(metrics)"
        (Some (Sink.metrics (Metrics.create ())));
      observe_case ~name:"dc-observe(jsonl)" (Some (Sink.jsonl "/dev/null"));
      guard;
    ]

let run_sink_overhead () =
  let open Bechamel in
  Report.print_section
    "sink overhead: Dc_tracker.observe with trace sinks attached";
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ]
      (sink_overhead_tests ())
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let measured = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns :: _) when ns > 0.0 -> measured := (name, ns) :: !measured
      | _ -> ())
    results;
  let find needle =
    List.find_opt (fun (name, _) -> Filename.check_suffix name needle)
      !measured
  in
  match find "dc-observe(null)" with
  | None -> print_endline "  (no baseline measurement; skipped)"
  | Some (_, base_ns) ->
    let rows =
      List.sort (fun (a, _) (b, _) -> compare a b) !measured
      |> List.filter (fun (name, _) ->
             not (Filename.check_suffix name "null-guard(x16)"))
      |> List.map (fun (name, ns) ->
             let pct = 100.0 *. (ns -. base_ns) /. base_ns in
             Report.
               [
                 S (Filename.basename name);
                 F ns;
                 (if Filename.check_suffix name "dc-observe(null)" then
                    S "baseline"
                  else S (Printf.sprintf "%+.1f%%" pct));
               ])
    in
    Report.print_table ~header:[ "case"; "ns/update"; "vs null sink" ] rows;
    (match find "null-guard(x16)" with
    | Some (_, batch_ns) ->
      let guard_ns = batch_ns /. 16.0 in
      let pct = 100.0 *. guard_ns /. base_ns in
      Printf.printf
        "null-sink guard costs %.2f ns/event = %.2f%% of an observe (budget 5%%): %s\n"
        guard_ns pct
        (if pct <= 5.0 then "OK" else "OVER BUDGET")
    | None -> ());
    print_newline ()

(* ------------------------------------------------------------------ *)
(* Driver *)

let write_csv dir (t : Experiments.table) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (t.Experiments.id ^ ".csv") in
  let oc = open_out path in
  output_string oc
    (Report.render_csv ~header:t.Experiments.header t.Experiments.rows);
  output_char oc '\n';
  close_out oc

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1.0 in
  let with_throughput = ref true in
  let csv_dir = ref None in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | "--no-throughput" :: rest ->
      with_throughput := false;
      parse rest
    | "--list" :: _ ->
      List.iter print_endline
        ("throughput" :: "sink-overhead" :: Experiments.ids);
      exit 0
    | id :: rest ->
      selected := id :: !selected;
      parse rest
  in
  parse args;
  let options = { Experiments.default_options with scale = !scale } in
  let emit t =
    Experiments.print t;
    Option.iter (fun dir -> write_csv dir t) !csv_dir
  in
  let selected = List.rev !selected in
  let t0 = Unix.gettimeofday () in
  (match selected with
  | [] ->
    Printf.printf
      "Reproducing all figures of 'What's Different' (ICDE 2006) at scale %g\n"
      !scale;
    List.iter emit (Experiments.all ~options ());
    if !with_throughput then (
      run_throughput ();
      run_sink_overhead ())
  | ids ->
    List.iter
      (fun id ->
        if id = "throughput" then run_throughput ()
        else if id = "sink-overhead" then run_sink_overhead ()
        else
          match Experiments.by_id id with
          | Some f -> emit (f options)
          | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 1)
      ids);
  Printf.printf "total wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
