(* wdmon: command-line driver for the duplicate-resilient monitoring
   library.

   Subcommands:
     experiment  - reproduce a paper figure / ablation (or all of them)
     dc          - one distinct-count tracking run with chosen parameters
     ds          - one distinct-sample tracking run
     hh          - one distinct heavy-hitters tracking run
     run         - one simulation from a declarative query spec, with
                   optional --views standing satellite queries
     coord       - run a tracking protocol over the socket or TCP transport
     site        - one site relay process for the socket transport
     relay       - one multiplexed relay process for the TCP transport
     eval        - run the acceptance grid and diff against a baseline
     inspect     - replay a JSONL trace into summary tables
     top         - live /metrics dashboard, or a one-shot trace view
     list        - list available experiments and workloads *)

open Cmdliner
module Experiments = Whats_different.Experiments
module Simulation = Whats_different.Simulation
module Report = Whats_different.Report
module Stream = Wd_workload.Stream
module Http = Wd_workload.Http_trace
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Network = Wd_net.Network
module Wire = Wd_net.Wire
module Transport = Wd_net.Transport
module Socket = Wd_net.Transport_socket
module Tcp = Wd_net.Transport_tcp
module Sink = Wd_obs.Sink
module Metrics = Wd_obs.Metrics
module Trace = Wd_obs.Trace
module Summary = Wd_obs.Summary
module Espec = Wd_eval.Spec
module Runner = Wd_eval.Runner
module Artifact = Wd_eval.Artifact
module Query = Wd_view.Query

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let scale_arg =
  let doc = "Workload scale factor (1.0 = calibrated default)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F" ~doc)

let seed_arg =
  let doc = "Random seed; equal seeds reproduce runs bit for bit." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let epsilon_arg =
  let doc = "Total relative-error budget epsilon." in
  Arg.(value & opt float 0.1 & info [ "epsilon" ] ~docv:"EPS" ~doc)

let sites_arg =
  let doc = "Number of remote sites for synthetic workloads." in
  Arg.(value & opt int 4 & info [ "sites" ] ~docv:"K" ~doc)

let events_arg =
  let doc = "Number of stream events for synthetic workloads." in
  Arg.(value & opt int 100_000 & info [ "events" ] ~docv:"N" ~doc)

let workload_arg =
  let doc =
    "Workload: http-pairs (lightly duplicated (clientID,objectID) pairs), \
     http-clients (heavily duplicated clientIDs), http-objects (moderately \
     duplicated objectIDs), two-phase (the paper's synthetic), zipf, or \
     gossip (sensor-network style duplication)."
  in
  Arg.(
    value
    & opt (enum
             [ ("http-pairs", `Http_pairs);
               ("http-clients", `Http_clients);
               ("http-objects", `Http_objects);
               ("two-phase", `Two_phase);
               ("zipf", `Zipf);
               ("gossip", `Gossip) ])
        `Http_pairs
    & info [ "workload"; "w" ] ~docv:"NAME" ~doc)

let trace_arg =
  let doc =
    "Replay a saved trace instead of generating a workload (.csv or the \
     WDTRACE1 binary format, auto-detected by extension)."
  in
  Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc)

let faults_arg =
  let doc =
    "Inject network faults: comma-separated $(i,drop=P), $(i,dup=P), \
     $(i,corrupt=P) link probabilities and repeatable \
     $(i,crash=SITE:FROM:UNTIL) windows (update indices), e.g. \
     --faults drop=0.1,dup=0.02,crash=1:5000:8000."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let topology_arg =
  let doc =
    "Tree topology spec routing sites through intermediate aggregators: \
     $(i,flat), $(i,tree:regions=R\\[,fanout=F\\]), or an explicit \
     $(i,edges:s0>a0,a0>root,...) list.  Backbone hops are charged \
     separately from the site links in the ledger."
  in
  Arg.(value & opt (some string) None & info [ "topology" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault-injection randomness (independent of --seed)." in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let parse_faults ~fault_seed = function
  | None -> Ok Wd_net.Faults.none
  | Some spec -> Wd_net.Faults.of_spec ~seed:fault_seed spec

(* Fault-counter rows for the dc/ds reports; empty without --faults. *)
let fault_kv ~drops ~duplicates ~retries ~lost faults =
  if not (Wd_net.Faults.enabled faults) then []
  else
    [
      ("dropped transmissions", string_of_int drops);
      ("duplicate deliveries", string_of_int duplicates);
      ("retransmissions", string_of_int retries);
      ("updates lost to crashes", string_of_int lost);
    ]

let load_trace path =
  if Filename.check_suffix path ".csv" then Wd_workload.Trace_io.load_csv path
  else Wd_workload.Trace_io.load_binary path

(* ------------------------------------------------------------------ *)
(* Observability plumbing shared by dc and ds *)

let trace_out_arg =
  let doc = "Write a JSONL protocol trace of the run to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Write run metrics to $(docv): Prometheus text exposition, or a JSON \
     dump when the file ends in .json."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Build the (sink, registry) pair the run should be instrumented with. *)
let build_obs ~trace_out ~metrics_out =
  let metrics = Option.map (fun _ -> Metrics.create ()) metrics_out in
  let sinks =
    Option.to_list (Option.map (fun path -> Sink.jsonl path) trace_out)
    @ Option.to_list (Option.map Sink.metrics metrics)
  in
  let sink = match sinks with [] -> None | l -> Some (Sink.fanout l) in
  (sink, metrics)

let finish_obs ~trace_out ~metrics_out sink metrics =
  Option.iter Sink.close sink;
  Option.iter
    (fun path -> Printf.printf "trace written to %s\n" path)
    trace_out;
  match (metrics_out, metrics) with
  | Some path, Some m ->
    let oc = open_out path in
    if Filename.check_suffix path ".json" then
      output_string oc (Wd_obs.Json.to_string (Metrics.to_json m))
    else output_string oc (Metrics.to_prometheus m);
    close_out oc;
    Printf.printf "metrics written to %s\n" path
  | _ -> ()

(* --views: satellite standing queries riding on a run's stream. *)
let views_arg =
  let doc =
    "Satellite standing views sharing the run's stream: a file of one \
     query spec per line ($(i,#) comments allowed), or $(i,;)-separated \
     specs, e.g. \
     $(i,dc:ls:sketch=fanout,mod=10/3;ds:lco:threshold=200).  Per-view \
     answers are reported at the end of the run and, with \
     $(b,--trace-out), as $(i,view_report) trace events."
  in
  Arg.(
    value & opt (some string) None & info [ "views" ] ~docv:"FILE|SPEC" ~doc)

let parse_views = function
  | None -> Ok []
  | Some s ->
    if Sys.file_exists s then Query.of_file s
    else
      let specs =
        String.split_on_char ';' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | sp :: rest -> (
          match Query.of_spec sp with
          | Ok q -> go (q :: acc) rest
          | Error e -> Error (Printf.sprintf "--views %S: %s" sp e))
      in
      go [] specs

let view_report_table (reports : Simulation.view_report array) =
  if Array.length reports > 1 then begin
    print_newline ();
    Report.print_table
      ~header:[ "view"; "spec"; "estimate"; "routed"; "bytes" ]
      (Array.to_list reports
      |> List.map (fun (vr : Simulation.view_report) ->
             Report.
               [
                 S vr.Simulation.view_label;
                 S vr.Simulation.view_spec;
                 F vr.Simulation.view_estimate;
                 I vr.Simulation.view_routed;
                 I vr.Simulation.view_total_bytes;
               ]))
  end

let build_workload which ~scale ~seed ~sites ~events =
  match which with
  | `Http_pairs ->
    let cfg = Http.scaled ~seed scale in
    Http.view cfg Http.Client_object_pair Http.Per_region (Http.generate cfg)
  | `Http_clients ->
    let cfg = Http.scaled ~seed scale in
    Http.view cfg Http.Client_id Http.Per_region (Http.generate cfg)
  | `Http_objects ->
    let cfg = Http.scaled ~seed scale in
    Http.view cfg Http.Object_id Http.Per_region (Http.generate cfg)
  | `Two_phase ->
    let per_site = max 20 (events / (sites * (sites + 1))) in
    Wd_workload.Two_phase.generate ~seed ~sites ~per_site ()
  | `Zipf ->
    Wd_workload.Stream_gen.zipf ~seed ~sites ~events
      ~universe:(max 16 (events / 3))
      ()
  | `Gossip ->
    Wd_workload.Stream_gen.sensor_gossip ~seed ~sites
      ~readings:(max 1 (events / 4))
      ~gossip_rounds:3 ()

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment_cmd =
  let ids_arg =
    let doc =
      "Experiment ids (fig5a..fig7c, ablation_*); runs everything when \
       omitted."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run ids scale seed epsilon =
    let options = { Experiments.default_options with scale; seed; epsilon } in
    match ids with
    | [] ->
      List.iter Experiments.print (Experiments.all ~options ());
      `Ok ()
    | ids -> (
      try
        List.iter
          (fun id ->
            match Experiments.by_id id with
            | Some f -> Experiments.print (f options)
            | None -> raise Exit)
          ids;
        `Ok ()
      with Exit ->
        `Error
          (false,
           Printf.sprintf "unknown experiment; known ids: %s"
             (String.concat ", " Experiments.ids)))
  in
  let doc = "Reproduce the paper's figures and the ablations." in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(ret (const run $ ids_arg $ scale_arg $ seed_arg $ epsilon_arg))

(* ------------------------------------------------------------------ *)
(* dc *)

let dc_cmd =
  let algo_arg =
    let doc = "Tracking algorithm: NS, SC, SS, LS or EC." in
    Arg.(
      value
      & opt (enum (List.map (fun a -> (Dc.algorithm_to_string a, a)) Dc.all_algorithms))
          Dc.LS
      & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)
  in
  let theta_frac_arg =
    let doc = "Lag share of the error budget (theta = F * epsilon)." in
    Arg.(value & opt float 0.3 & info [ "theta-frac" ] ~docv:"F" ~doc)
  in
  let run algorithm theta_frac workload trace scale seed epsilon sites events
      trace_out metrics_out faults_spec fault_seed =
    match parse_faults ~fault_seed faults_spec with
    | Error e -> `Error (false, e)
    | Ok faults ->
      let stream =
        match trace with
        | Some path -> load_trace path
        | None -> build_workload workload ~scale ~seed ~sites ~events
      in
      let theta = theta_frac *. epsilon in
      let alpha = epsilon -. theta in
      let sink, metrics = build_obs ~trace_out ~metrics_out in
      let r =
        Simulation.run ~seed ?sink ?metrics ~faults
          (Query.dc ~theta ~alpha algorithm)
          stream
      in
      let exact = Simulation.exact_dc_bytes stream in
      Report.print_section
        (Printf.sprintf "distinct count tracking (%s)"
           (Dc.algorithm_to_string algorithm));
      Report.print_kv
        ([
           ("sites", string_of_int (Stream.num_sites stream));
           ("updates", string_of_int r.Simulation.updates);
           ("true distinct", string_of_int r.Simulation.final_truth);
           ("estimate", Printf.sprintf "%.0f" r.Simulation.final_estimate);
           ( "relative error",
             Printf.sprintf "%.4f"
               (Float.abs
                  (r.Simulation.final_estimate
                  -. Float.of_int r.Simulation.final_truth)
               /. Float.of_int (max 1 r.Simulation.final_truth)) );
           ("bytes up / down",
            Printf.sprintf "%d / %d" r.Simulation.bytes_up
              r.Simulation.bytes_down);
           ("total bytes", string_of_int r.Simulation.total_bytes);
           ("exact (EC) bytes", string_of_int exact);
           ( "cost ratio",
             Printf.sprintf "%.3e"
               (Float.of_int r.Simulation.total_bytes /. Float.of_int exact)
           );
           ("site->coord messages", string_of_int r.Simulation.sends);
         ]
        @ fault_kv ~drops:r.Simulation.drops
            ~duplicates:r.Simulation.duplicates
            ~retries:r.Simulation.retries ~lost:r.Simulation.lost_updates
            faults);
      (* The asymmetric information flow the paper's conclusion highlights:
         per-direction traffic differs sharply across algorithms. *)
      Printf.printf "up/down asymmetry    : %.2f\n"
        (Float.of_int r.Simulation.bytes_up
        /. Float.of_int (max 1 r.Simulation.bytes_down));
      finish_obs ~trace_out ~metrics_out sink metrics;
      `Ok ()
  in
  let doc = "Run one distinct-count tracking simulation." in
  Cmd.v (Cmd.info "dc" ~doc)
    Term.(
      ret
        (const run $ algo_arg $ theta_frac_arg $ workload_arg $ trace_arg
        $ scale_arg $ seed_arg $ epsilon_arg $ sites_arg $ events_arg
        $ trace_out_arg $ metrics_out_arg $ faults_arg $ fault_seed_arg))

(* ------------------------------------------------------------------ *)
(* ds *)

let ds_cmd =
  let algo_arg =
    let doc = "Tracking algorithm: LCO, GCS, LCS or EDS." in
    Arg.(
      value
      & opt (enum (List.map (fun a -> (Ds.algorithm_to_string a, a)) Ds.all_algorithms))
          Ds.LCO
      & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)
  in
  let threshold_arg =
    let doc = "Distinct-sample size bound T." in
    Arg.(value & opt int 500 & info [ "threshold"; "T" ] ~docv:"T" ~doc)
  in
  let theta_arg =
    let doc = "Count lag budget theta." in
    Arg.(value & opt float 0.25 & info [ "theta" ] ~docv:"THETA" ~doc)
  in
  let run algorithm threshold theta workload trace scale seed sites events
      trace_out metrics_out faults_spec fault_seed =
    match parse_faults ~fault_seed faults_spec with
    | Error e -> `Error (false, e)
    | Ok faults ->
      let stream =
        match trace with
        | Some path -> load_trace path
        | None -> build_workload workload ~scale ~seed ~sites ~events
      in
      let sink, metrics = build_obs ~trace_out ~metrics_out in
      let r =
        Simulation.run ~seed ?sink ~faults
          (Query.ds ~theta ~threshold algorithm)
          stream
      in
      let exact = Simulation.exact_ds_bytes stream in
      let level, sample, max_count_error =
        match r.Simulation.aux with
        | Simulation.Ds_aux { level; sample; max_count_error } ->
          (level, sample, max_count_error)
        | _ -> assert false
      in
      let module D = Wd_aggregate.Duplication in
      Report.print_section
        (Printf.sprintf "distinct sample tracking (%s)"
           (Ds.algorithm_to_string algorithm));
      Report.print_kv
        ([
           ("sites", string_of_int (Stream.num_sites stream));
           ("updates", string_of_int r.Simulation.updates);
           ("sample size / T",
            Printf.sprintf "%d / %d" (List.length sample) threshold);
           ("sampling level", string_of_int level);
           ("distinct estimate",
            Printf.sprintf "%.0f" r.Simulation.final_estimate);
           ("true distinct", string_of_int (Stream.distinct_count stream));
           ("unique-event estimate",
            Printf.sprintf "%.0f" (D.unique_count ~level sample));
           ( "median duplication",
             match D.median_count sample with
             | Some m -> string_of_int m
             | None -> "n/a" );
           ("max count error", Printf.sprintf "%.4f" max_count_error);
           ("total bytes", string_of_int r.Simulation.total_bytes);
           ("exact (EDS) bytes", string_of_int exact);
           ( "cost ratio",
             Printf.sprintf "%.3e"
               (Float.of_int r.Simulation.total_bytes /. Float.of_int exact)
           );
         ]
        @ fault_kv ~drops:r.Simulation.drops
            ~duplicates:r.Simulation.duplicates
            ~retries:r.Simulation.retries ~lost:r.Simulation.lost_updates
            faults);
      finish_obs ~trace_out ~metrics_out sink metrics;
      `Ok ()
  in
  let doc = "Run one distinct-sample tracking simulation." in
  Cmd.v (Cmd.info "ds" ~doc)
    Term.(
      ret
        (const run $ algo_arg $ threshold_arg $ theta_arg $ workload_arg
        $ trace_arg $ scale_arg $ seed_arg $ sites_arg $ events_arg
        $ trace_out_arg $ metrics_out_arg $ faults_arg $ fault_seed_arg))

(* ------------------------------------------------------------------ *)
(* hh *)

let hh_cmd =
  let algo_arg =
    let doc = "Tracking algorithm: NS, SC, SS or LS." in
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun a -> (Dc.algorithm_to_string a, a))
                Dc.approximate_algorithms))
          Dc.LS
      & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)
  in
  let top_arg =
    let doc = "Report the top-K distinct heavy hitters." in
    Arg.(value & opt int 10 & info [ "top"; "k" ] ~docv:"K" ~doc)
  in
  let run algorithm top_k scale seed =
    let cfg = Http.scaled ~seed scale in
    let pairs =
      Simulation.pair_stream_of_requests cfg Http.Per_region (Http.generate cfg)
    in
    let r =
      Simulation.run ~seed ~top_k
        (Query.hh
           ~config:{ Wd_aggregate.Fm_array.rows = 3; cols = 500; bitmaps = 10 }
           ~theta:0.03 algorithm)
        (Simulation.stream_of_pairs pairs)
    in
    let avg_norm_error, topk_recall, exact_bytes =
      match r.Simulation.aux with
      | Simulation.Hh_aux { avg_norm_error; topk_recall; exact_bytes } ->
        (avg_norm_error, topk_recall, exact_bytes)
      | _ -> assert false
    in
    Report.print_section
      (Printf.sprintf "distinct heavy hitters (%s): objects by distinct clients"
         (Dc.algorithm_to_string algorithm));
    Report.print_kv
      [
        ("updates", string_of_int r.Simulation.updates);
        ("total bytes", string_of_int r.Simulation.total_bytes);
        ("exact-pair bytes", string_of_int exact_bytes);
        ( "cost ratio",
          Printf.sprintf "%.3e"
            (Float.of_int r.Simulation.total_bytes
            /. Float.of_int exact_bytes) );
        (Printf.sprintf "recall@%d" top_k,
         Printf.sprintf "%.2f" topk_recall);
        ("normalized degree error", Printf.sprintf "%.5f" avg_norm_error);
      ]
  in
  let doc = "Run one distinct heavy-hitters tracking simulation." in
  Cmd.v (Cmd.info "hh" ~doc)
    Term.(const run $ algo_arg $ top_arg $ scale_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* run: the generic entry point — one declarative query, any protocol,
   plus optional satellite views sharing the stream *)

let run_cmd =
  let query_arg =
    let doc =
      "The primary query spec: $(i,family:alg\\[:key=value,...\\]), e.g. \
       $(i,dc:ls:alpha=0.07,theta=0.03) or $(i,ds:lco:threshold=500).  \
       Families: dc, ds, hh, window."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let run spec views_spec workload trace scale seed sites events trace_out
      metrics_out faults_spec fault_seed topology_spec =
    match
      let ( let* ) = Result.bind in
      let* q = Query.of_spec spec in
      let* views = parse_views views_spec in
      let* faults =
        Result.map_error
          (fun e -> e)
          (parse_faults ~fault_seed faults_spec)
      in
      Ok (q, views, faults)
    with
    | Error e -> `Error (false, e)
    | Ok (q, views, faults) -> (
      let stream =
        match trace with
        | Some path -> load_trace path
        | None -> (
          match q.Query.protocol with
          | Query.Hh _ ->
            (* HH queries consume packed (v, w) pairs; satellites then
               track the packed pair keys. *)
            let cfg = Http.scaled ~seed scale in
            Simulation.stream_of_pairs
              (Simulation.pair_stream_of_requests cfg Http.Per_region
                 (Http.generate cfg))
          | _ -> build_workload workload ~scale ~seed ~sites ~events)
      in
      (* The tree is validated against the stream's own site count, which
         a trace may dictate independently of --sites. *)
      match
        match topology_spec with
        | None -> Ok None
        | Some s ->
          Result.map Option.some
            (Wd_net.Topology.of_spec ~sites:(Stream.num_sites stream) s)
      with
      | Error e -> `Error (false, e)
      | Ok topology -> (
        let sink, metrics = build_obs ~trace_out ~metrics_out in
        match
          Simulation.run ~seed ?sink ?metrics ?topology ~faults ~views q
            stream
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | r ->
          Report.print_section
            (Printf.sprintf "continuous run: %s" (Query.to_spec q));
          Report.print_kv
            ([
               ( "views",
                 string_of_int (Array.length r.Simulation.view_reports) );
               ("sites", string_of_int (Stream.num_sites stream));
               ("updates", string_of_int r.Simulation.updates);
               ("estimate", Printf.sprintf "%.1f" r.Simulation.final_estimate);
               ("true distinct", string_of_int r.Simulation.final_truth);
               ( "bytes up / down",
                 Printf.sprintf "%d / %d" r.Simulation.bytes_up
                   r.Simulation.bytes_down );
               ("total bytes", string_of_int r.Simulation.total_bytes);
               ("site->coord messages", string_of_int r.Simulation.sends);
             ]
            @ (match topology with
              | None -> []
              | Some t ->
                [
                  ("topology", Wd_net.Topology.to_spec t);
                  ( "backbone bytes",
                    string_of_int r.Simulation.backbone_bytes );
                  ( "grand total bytes",
                    string_of_int
                      (r.Simulation.total_bytes + r.Simulation.backbone_bytes)
                  );
                ])
            @ fault_kv ~drops:r.Simulation.drops
                ~duplicates:r.Simulation.duplicates
                ~retries:r.Simulation.retries ~lost:r.Simulation.lost_updates
                faults);
          view_report_table r.Simulation.view_reports;
          finish_obs ~trace_out ~metrics_out sink metrics;
          `Ok ()))
  in
  let doc =
    "Run one simulation from a declarative query spec, optionally with \
     satellite standing views sharing the stream."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ query_arg $ views_arg $ workload_arg $ trace_arg
        $ scale_arg $ seed_arg $ sites_arg $ events_arg $ trace_out_arg
        $ metrics_out_arg $ faults_arg $ fault_seed_arg $ topology_arg))

(* ------------------------------------------------------------------ *)
(* coord / site: the Unix-socket transport, sites as real processes *)

let socket_path_arg =
  let doc =
    "Unix-domain socket path shared by the coordinator and its site relays \
     (keep it short: the OS caps socket paths around 100 bytes)."
  in
  Arg.(
    value & opt string "/tmp/wdmon.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let socket_timeout_arg =
  let doc = "Socket send/receive timeout in seconds." in
  Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"S" ~doc)

let site_cmd =
  let site_idx_arg =
    let doc = "This relay's 0-based site index." in
    Arg.(required & opt (some int) None & info [ "site" ] ~docv:"I" ~doc)
  in
  let run path site timeout =
    match Socket.Site.run ~timeout ~path ~site () with
    | r ->
      Printf.printf
        "site %d: received %d frames / %d bytes, sent %d frames / %d bytes\n"
        site r.Socket.frames_received r.Socket.bytes_received
        r.Socket.frames_sent r.Socket.bytes_sent;
      `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let doc =
    "Run one site relay for the socket transport: connect to a $(b,wdmon \
     coord) process, answer its frames until told to finish, and print the \
     relay-side byte counters."
  in
  Cmd.v (Cmd.info "site" ~doc)
    Term.(ret (const run $ socket_path_arg $ site_idx_arg $ socket_timeout_arg))

let relay_cmd =
  let port_arg =
    let doc = "Coordinator TCP port (see $(b,wdmon coord --tcp-port))." in
    Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let first_site_arg =
    let doc = "First 0-based site index this relay serves." in
    Arg.(value & opt int 0 & info [ "first-site" ] ~docv:"I" ~doc)
  in
  let count_arg =
    let doc = "Number of contiguous sites this relay serves." in
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"N" ~doc)
  in
  let connect_timeout_arg =
    let doc =
      "Wall-clock deadline in seconds for the initial connect (retried \
       while the coordinator is still binding)."
    in
    Arg.(value & opt float 10.0 & info [ "connect-timeout" ] ~docv:"S" ~doc)
  in
  let run port first_site count timeout connect_timeout =
    match
      Tcp.Relay.run ~connect_timeout ~timeout ~port ~first_site ~count ()
    with
    | r ->
      Printf.printf
        "relay %d+%d: received %d frames / %d bytes, sent %d frames / %d \
         bytes\n"
        first_site count r.Socket.frames_received r.Socket.bytes_received
        r.Socket.frames_sent r.Socket.bytes_sent;
      `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let doc =
    "Run one multiplexed relay for the TCP transport: connect to a \
     $(b,wdmon coord --tcp-port) process, claim a contiguous range of \
     sites, answer its (batched) frames until told to finish, and print \
     the relay-side byte counters."
  in
  Cmd.v (Cmd.info "relay" ~doc)
    Term.(
      ret
        (const run $ port_arg $ first_site_arg $ count_arg
        $ socket_timeout_arg $ connect_timeout_arg))

(* Split [k] sites into [n] contiguous ranges, as evenly as possible. *)
let site_ranges ~k ~n =
  let n = max 1 (min n k) in
  let base = k / n and rem = k mod n in
  let rec go first i acc =
    if i = n then List.rev acc
    else
      let count = base + if i < rem then 1 else 0 in
      go (first + count) (i + 1) ((first, count) :: acc)
  in
  go 0 0 []

let coord_cmd =
  let protocol_arg =
    let doc = "Protocol to run over the socket transport: dc (LS) or ds (LCO)." in
    Arg.(
      value
      & opt (enum [ ("dc", `Dc); ("ds", `Ds) ]) `Dc
      & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc)
  in
  let spawn_arg =
    let doc =
      "Fork one site relay per site in this process's image instead of \
       waiting for externally started $(b,wdmon site) processes."
    in
    Arg.(value & flag & info [ "spawn" ] ~doc)
  in
  let metrics_port_arg =
    let doc =
      "Serve $(b,GET /metrics) (Prometheus text exposition) on \
       127.0.0.1:$(docv) for the duration of the run, polled from the \
       coordinator's event loop; 0 lets the kernel pick a free port \
       (printed at startup)."
    in
    Arg.(
      value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)
  in
  let spans_flag =
    let doc =
      "Record causal wall-clock spans: every message, broadcast and \
       tracker batch becomes a span event, and frames carry span \
       contexts across the process boundary (cross-process round-trip \
       timing).  Combine with $(b,--trace-out) to keep the spans and/or \
       $(b,--metrics-port) to see latency histograms."
    in
    Arg.(value & flag & info [ "spans" ] ~doc)
  in
  let tcp_port_arg =
    let doc =
      "Use the multiplexed TCP transport instead of the Unix socket: \
       listen on 127.0.0.1:$(docv) (0 picks an ephemeral port, printed at \
       startup); sites are served by $(b,wdmon relay) processes, each \
       carrying a contiguous range over one connection with frame \
       batching."
    in
    Arg.(value & opt (some int) None & info [ "tcp-port" ] ~docv:"PORT" ~doc)
  in
  let relays_arg =
    let doc =
      "With $(b,--tcp-port) and $(b,--spawn): fork this many relay \
       processes, each serving an even contiguous slice of the sites."
    in
    Arg.(value & opt int 4 & info [ "relays" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc =
      "Shard the coordinator's sketch merges across this many OCaml 5 \
       worker domains (dc only; the merge laws make the published \
       results identical to $(b,--shards 1))."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let run protocol spawn path timeout workload scale seed epsilon sites events
      faults_spec fault_seed metrics_port spans trace_out tcp_port relays
      shards views_spec =
    match
      let ( let* ) = Result.bind in
      let* faults = parse_faults ~fault_seed faults_spec in
      let* views = parse_views views_spec in
      Ok (faults, views)
    with
    | Error e -> `Error (false, e)
    | Ok _ when shards > 1 && protocol = `Ds ->
      `Error (false, "--shards applies to the dc protocol only")
    | Ok (faults, views) ->
      let stream = build_workload workload ~scale ~seed ~sites ~events in
      let k = Stream.num_sites stream in
      let children = ref [] in
      (* Relay children: serve frames, then exit without flushing the
         parent's inherited stdout buffer. *)
      let spawn_socket_children () =
        children :=
          List.init k (fun site ->
              match Unix.fork () with
              | 0 ->
                (try
                   ignore (Socket.Site.run ~path ~site () : Socket.site_report)
                 with _ -> ());
                Unix._exit 0
              | pid -> pid)
      in
      let spawn_tcp_children port =
        children :=
          List.map
            (fun (first_site, count) ->
              match Unix.fork () with
              | 0 ->
                (try
                   ignore
                     (Tcp.Relay.run ~timeout ~port ~first_site ~count ()
                       : Socket.site_report)
                 with _ -> ());
                Unix._exit 0
              | pid -> pid)
            (site_ranges ~k ~n:relays)
      in
      let reap () =
        List.iter (fun pid -> ignore (Unix.waitpid [] pid)) !children
      in
      let connect_backend () =
        match tcp_port with
        | None ->
          if spawn then spawn_socket_children ();
          `Sock (Socket.Coordinator.connect ~timeout ~path ~sites:k ())
        | Some port ->
          `Tcp
            (Tcp.Coordinator.connect ~timeout ~port ~sites:k
               ~on_listening:(fun port ->
                 Printf.printf "tcp: listening on 127.0.0.1:%d\n%!" port;
                 if spawn then spawn_tcp_children port)
               ())
      in
      (match connect_backend () with
      | exception Failure msg ->
        List.iter
          (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          !children;
        reap ();
        `Error (false, msg)
      | backend ->
        let transport =
          match backend with
          | `Sock c -> Socket.Coordinator.pack c
          | `Tcp c -> Tcp.Coordinator.pack c
        in
        let set_on_poll f =
          match backend with
          | `Sock c -> Socket.Coordinator.set_on_poll c f
          | `Tcp c -> Tcp.Coordinator.set_on_poll c f
        in
        (* Live telemetry: a metrics registry fed by the event sink, a
           scrape endpoint polled from the coordinator's clock ticks,
           and an optional span trace. *)
        let metrics = Option.map (fun _ -> Metrics.create ()) metrics_port in
        let trace_sink = Option.map Sink.jsonl trace_out in
        let sinks =
          Option.to_list trace_sink
          @ Option.to_list (Option.map Sink.metrics metrics)
        in
        let sink =
          match sinks with [] -> None | l -> Some (Sink.fanout l)
        in
        let http =
          Option.map
            (fun port ->
              let h = Wd_net.Metrics_http.create ~port () in
              Printf.printf "metrics: listening on http://127.0.0.1:%d/metrics\n%!"
                (Wd_net.Metrics_http.port h);
              h)
            metrics_port
        in
        (match (http, metrics) with
        | Some h, Some m ->
          (* Polled on every clock tick; throttle the accept syscall to
             one per 64 updates. *)
          let tick = ref 0 in
          set_on_poll
            (Some
               (fun () ->
                 incr tick;
                 if !tick land 63 = 0 then
                   Wd_net.Metrics_http.poll h ~body:(fun () ->
                       Metrics.to_prometheus m)))
        | _ -> ());
        (* The runs close the transport on completion, which finishes every
           relay and collects its stats frame. *)
        let label, estimate, truth, view_reports =
          match protocol with
          | `Dc ->
            let theta = 0.3 *. epsilon in
            let alpha = epsilon -. theta in
            let r =
              Simulation.run ~seed ~transport ~faults ?sink ?metrics ~spans
                ~shards ~views
                (Query.dc ~theta ~alpha Dc.LS)
                stream
            in
            ( "distinct count (LS)",
              r.Simulation.final_estimate,
              r.Simulation.final_truth,
              r.Simulation.view_reports )
          | `Ds ->
            let r =
              Simulation.run ~seed ~transport ~faults ?sink ~spans ~views
                (Query.ds ~theta:0.25 ~threshold:500 Ds.LCO)
                stream
            in
            ( "distinct sample (LCO)",
              r.Simulation.final_estimate,
              Stream.distinct_count stream,
              r.Simulation.view_reports )
        in
        reap ();
        (* Serve any scrape that arrived after the last clock tick, then
           stop listening. *)
        (match (http, metrics) with
        | Some h, Some m ->
          Wd_net.Metrics_http.poll h ~body:(fun () -> Metrics.to_prometheus m);
          Wd_net.Metrics_http.close h
        | _ -> ());
        Option.iter Sink.close trace_sink;
        Option.iter
          (fun path -> Printf.printf "trace written to %s\n" path)
          trace_out;
        let net = Transport.ledger transport in
        let ws =
          match Transport.wire_stats transport with
          | Some ws -> ws
          | None -> assert false (* the socket backend always reports *)
        in
        let extra = Wire.Frame.header_bytes - Wire.header_bytes in
        let expect_up =
          Network.bytes_up net - ws.Transport.skipped_up
          + (ws.Transport.frames_up * extra)
        in
        let expect_down =
          Network.bytes_down net - ws.Transport.skipped_down
          + (ws.Transport.frames_down * extra)
        in
        let reports =
          match backend with
          | `Sock c -> Array.to_list (Socket.Coordinator.reports c)
          | `Tcp c -> List.map (fun (_, _, r) -> r) (Tcp.Coordinator.reports c)
        in
        let missing = List.length (List.filter Option.is_none reports) in
        let sum f =
          List.fold_left
            (fun acc r -> acc + Option.fold ~none:0 ~some:f r)
            0 reports
        in
        let relay_received = sum (fun r -> r.Socket.bytes_received) in
        let relay_sent = sum (fun r -> r.Socket.bytes_sent) in
        (* Span context blocks (frames stamped when a span recorder is
           attached) are wire overhead outside wire_bytes_*; the relays'
           raw byte reports include them. *)
        let expect_received =
          (* batch_envelopes is 0 on the socket backend, so the law is
             uniform across carriers. *)
          ws.Transport.wire_bytes_down + ws.Transport.radio_copy_bytes
          + ws.Transport.control_bytes
          + (ws.Transport.span_frames_down * Wire.Frame.span_bytes)
          + (ws.Transport.batch_envelopes * Wire.Frame.header_bytes)
        in
        let expect_sent =
          ws.Transport.wire_bytes_up
          + (ws.Transport.span_frames_up * Wire.Frame.span_bytes)
        in
        let check name got want =
          Printf.printf "%-22s: %d vs %d  [%s]\n" name got want
            (if got = want then "ok" else "MISMATCH");
          got = want
        in
        Report.print_section
          (Printf.sprintf "%s over the %s transport" label
             (match backend with `Sock _ -> "socket" | `Tcp _ -> "tcp"));
        Report.print_kv
          ([
            ("sites", string_of_int k);
            ("updates", string_of_int (Stream.length stream));
            ("true distinct", string_of_int truth);
            ("estimate", Printf.sprintf "%.0f" estimate);
            ( "ledger bytes up / down",
              Printf.sprintf "%d / %d" (Network.bytes_up net)
                (Network.bytes_down net) );
            ( "wire frames up / down",
              Printf.sprintf "%d / %d" ws.Transport.frames_up
                ws.Transport.frames_down );
            ( "wire bytes up / down",
              Printf.sprintf "%d / %d" ws.Transport.wire_bytes_up
                ws.Transport.wire_bytes_down );
            ( "control frames / bytes",
              Printf.sprintf "%d / %d" ws.Transport.control_frames
                ws.Transport.control_bytes );
            ("radio copy bytes", string_of_int ws.Transport.radio_copy_bytes);
            ( "skipped up / down",
              Printf.sprintf "%d / %d" ws.Transport.skipped_up
                ws.Transport.skipped_down );
            ("site reconnects", string_of_int ws.Transport.reconnects);
          ]
          @ (match backend with
            | `Sock _ -> []
            | `Tcp _ ->
              [
                ( "batch envelopes / inner frames",
                  Printf.sprintf "%d / %d" ws.Transport.batch_envelopes
                    ws.Transport.batch_inner_frames );
              ])
          @ (if shards > 1 then
               [ ("coordinator shards", string_of_int shards) ]
             else [])
          @ (if spans then
               [
                 ( "span frames up / down",
                   Printf.sprintf "%d / %d" ws.Transport.span_frames_up
                     ws.Transport.span_frames_down );
               ]
             else [])
          @ Option.fold ~none:[]
              ~some:(fun h ->
                [
                  ( "metrics scrapes served",
                    string_of_int (Wd_net.Metrics_http.served h) );
                ])
              http);
        view_report_table view_reports;
        print_endline "reconciliation (got vs expected):";
        let ok_up = check "wire bytes up" ws.Transport.wire_bytes_up expect_up in
        let ok_down =
          check "wire bytes down" ws.Transport.wire_bytes_down expect_down
        in
        let ok_recv =
          missing = 0 && check "relay bytes received" relay_received expect_received
        in
        let ok_sent =
          missing = 0 && check "relay bytes sent" relay_sent expect_sent
        in
        if missing > 0 then
          Printf.printf "%d site(s) never reported final stats\n" missing;
        if ok_up && ok_down && ok_recv && ok_sent then `Ok ()
        else `Error (false, "ledger/wire reconciliation failed"))
  in
  let doc =
    "Run a tracking protocol with sites as real processes — one per site \
     over a Unix-domain socket, or multiplexed relay ranges over TCP with \
     $(b,--tcp-port) — then reconcile the simulator byte ledger against \
     the bytes that actually crossed the wire (exit status reflects the \
     reconciliation)."
  in
  Cmd.v (Cmd.info "coord" ~doc)
    Term.(
      ret
        (const run $ protocol_arg $ spawn_arg $ socket_path_arg
        $ socket_timeout_arg $ workload_arg $ scale_arg $ seed_arg
        $ epsilon_arg $ sites_arg $ events_arg $ faults_arg $ fault_seed_arg
        $ metrics_port_arg $ spans_flag $ trace_out_arg $ tcp_port_arg
        $ relays_arg $ shards_arg $ views_arg))

(* ------------------------------------------------------------------ *)
(* eval *)

let eval_cmd =
  let grid_arg =
    let small =
      ( `Small,
        Arg.info [ "small" ]
          ~doc:"Run the committed 20-cell acceptance grid (the default)." )
    in
    let full =
      ( `Full,
        Arg.info [ "full" ]
          ~doc:
            "Run the full matrix: every DC/DS algorithm, the two-phase and \
             HTTP workloads, fault cells, HH and window trackers." )
    in
    Arg.(value & vflag `Small [ small; full ])
  in
  let reps_arg =
    let doc =
      "Seeded repetitions per cell; the binomial acceptance test needs at \
       least 5."
    in
    Arg.(value & opt int 5 & info [ "reps"; "R" ] ~docv:"R" ~doc)
  in
  let significance_arg =
    let doc =
      "Rejection level of the binomial acceptance test (a cell fails only \
       when its in-band count is this implausible under the configured \
       confidence)."
    in
    Arg.(
      value & opt float 0.005 & info [ "significance" ] ~docv:"P" ~doc)
  in
  let out_arg =
    let doc = "Write the wd-eval/1 JSON artifact to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let csv_arg =
    let doc = "Also write the per-cell results as CSV to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let diff_arg =
    let doc =
      "Diff this run against the baseline artifact at $(docv); exit \
       non-zero on any regression."
    in
    Arg.(value & opt (some string) None & info [ "diff" ] ~docv:"BASELINE" ~doc)
  in
  let update_arg =
    let doc =
      "Write this run as the new baseline (to the $(b,--diff) path, or \
       EVAL_BASELINE.json) instead of diffing."
    in
    Arg.(value & flag & info [ "update" ] ~doc)
  in
  let handicap_arg =
    let doc =
      "Injected-estimator-bug dial for self-tests: scale the sketch error \
       budget so a value of 2 emulates halving the FM repetitions.  The \
       grid is expected to FAIL for values above 1."
    in
    Arg.(
      value & opt float 1.0 & info [ "inject-handicap" ] ~docv:"H" ~doc)
  in
  let run grid reps seed significance handicap out csv diff_path update
      metrics_out =
    if reps < 1 then `Error (false, "--reps must be >= 1")
    else begin
      let name = match grid with `Small -> "small" | `Full -> "full" in
      let cells = Option.get (Espec.by_name name) in
      let metrics = Option.map (fun _ -> Metrics.create ()) metrics_out in
      let cfg =
        {
          Runner.default_config with
          reps;
          base_seed = seed;
          significance;
          handicap;
          progress = Some (fun line -> Printf.eprintf "%s\n%!" line);
          metrics;
        }
      in
      let artifact = Runner.run_grid ~name cfg cells in
      Report.print_section
        (Printf.sprintf "eval grid %s: %d cells x %d reps, seed %d" name
           (List.length artifact.Artifact.cells)
           reps seed);
      Report.print_table
        ~header:
          [ "cell"; "in-band"; "p-value"; "err p90"; "ratio"; "verdict" ]
        (List.map
           (fun (c : Artifact.cell_result) ->
             Report.
               [
                 S c.id;
                 S (Printf.sprintf "%d/%d" c.successes c.reps);
                 S (Printf.sprintf "%.3g" c.p_value);
                 S (Printf.sprintf "%.4f" c.err_p90);
                 S (Printf.sprintf "%.3g" c.ratio_max);
                 S (if Artifact.cell_pass c then "pass" else "FAIL");
               ])
           artifact.Artifact.cells);
      Option.iter
        (fun path ->
          Artifact.save ~path artifact;
          Printf.printf "artifact written to %s\n" path)
        out;
      Option.iter
        (fun path ->
          Artifact.save_csv ~path artifact;
          Printf.printf "csv written to %s\n" path)
        csv;
      (match (metrics_out, metrics) with
      | Some path, Some m ->
        let oc = open_out path in
        if Filename.check_suffix path ".json" then
          output_string oc (Wd_obs.Json.to_string (Metrics.to_json m))
        else output_string oc (Metrics.to_prometheus m);
        close_out oc;
        Printf.printf "metrics written to %s\n" path
      | _ -> ());
      let acceptance_ok = Artifact.pass artifact in
      if not acceptance_ok then
        print_endline "acceptance: FAIL (see table above)";
      if update then begin
        let path = Option.value diff_path ~default:"EVAL_BASELINE.json" in
        Artifact.save ~path artifact;
        Printf.printf "baseline updated: %s\n" path;
        if acceptance_ok then `Ok ()
        else `Error (false, "grid failed acceptance (baseline written anyway)")
      end
      else
        match diff_path with
        | None ->
          if acceptance_ok then `Ok ()
          else `Error (false, "grid failed acceptance")
        | Some path -> (
          match Artifact.load path with
          | Error e ->
            `Error (false, Printf.sprintf "cannot load baseline %s: %s" path e)
          | Ok baseline ->
            let d = Artifact.diff ~baseline ~current:artifact in
            List.iter
              (fun n -> Printf.printf "note: %s\n" n)
              d.Artifact.notes;
            List.iter
              (fun r -> Printf.printf "regression: %s\n" r)
              d.Artifact.regressions;
            if Artifact.clean d && acceptance_ok then begin
              print_endline "baseline diff: clean";
              `Ok ()
            end
            else if not acceptance_ok then
              `Error (false, "grid failed acceptance")
            else
              `Error
                ( false,
                  Printf.sprintf "%d regression(s) against %s"
                    (List.length d.Artifact.regressions)
                    path ))
    end
  in
  let doc =
    "Run the experiment-matrix acceptance grid (protocol x sketch x alpha \
     over seeded workloads), emit the versioned wd-eval/1 artifact, and \
     gate on the binomial acceptance test and the committed baseline."
  in
  Cmd.v (Cmd.info "eval" ~doc)
    Term.(
      ret
        (const run $ grid_arg $ reps_arg $ seed_arg $ significance_arg
        $ handicap_arg $ out_arg $ csv_arg $ diff_arg $ update_arg
        $ metrics_out_arg))

(* ------------------------------------------------------------------ *)
(* workload *)

let workload_cmd =
  let out_arg =
    let doc = "Output file (.csv for text, anything else for binary)." in
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run workload out scale seed sites events =
    let stream = build_workload workload ~scale ~seed ~sites ~events in
    if Filename.check_suffix out ".csv" then
      Wd_workload.Trace_io.save_csv out stream
    else Wd_workload.Trace_io.save_binary out stream;
    Printf.printf "wrote %d events (%d sites, %d distinct, dup %.2f) to %s\n"
      (Stream.length stream) (Stream.num_sites stream)
      (Stream.distinct_count stream)
      (Stream.duplication_factor stream)
      out
  in
  let doc = "Generate a workload and save it as a replayable trace." in
  Cmd.v (Cmd.info "workload" ~doc)
    Term.(
      const run $ workload_arg $ out_arg $ scale_arg $ seed_arg $ sites_arg
      $ events_arg)

(* ------------------------------------------------------------------ *)
(* inspect *)

(* Load a JSONL trace from a file path, or from stdin when the path is
   "-" (so traces can be piped straight out of a run or a filter). *)
let read_trace_events path =
  if path = "-" then
    Result.map List.rev
      (Trace.fold_channel ~name:"<stdin>"
         ~f:(fun acc ev -> ev :: acc)
         ~init:[] stdin)
  else if Sys.file_exists path then Trace.read_file path
  else Error (Printf.sprintf "no such trace file: %s" path)

(* Humanize a nanosecond duration for dashboards. *)
let fmt_ns ns =
  if Float.is_nan ns then "-"
  else if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let span_stats_table (stats : (string * Summary.span_stat) list) =
  Report.print_table
    ~header:[ "span"; "count"; "p50"; "p90"; "max" ]
    (List.map
       (fun (name, (st : Summary.span_stat)) ->
         Report.
           [
             S name;
             I st.Summary.sp_count;
             S (fmt_ns st.Summary.sp_p50_ns);
             S (fmt_ns st.Summary.sp_p90_ns);
             S (fmt_ns st.Summary.sp_max_ns);
           ])
       stats)

let inspect_cmd =
  let file_arg =
    let doc = "JSONL trace produced by --trace-out, or - for stdin." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let phases_arg =
    let doc = "Number of equal update-index spans in the phase table." in
    Arg.(value & opt int 4 & info [ "phases" ] ~docv:"N" ~doc)
  in
  let fmt_estimate = function
    | Some e -> Printf.sprintf "%.1f" e
    | None -> "-"
  in
  let run file phases =
    if phases < 1 then `Error (false, "--phases must be >= 1")
    else
      match read_trace_events file with
      | Error e -> `Error (false, e)
      | Ok events when events = [] ->
        (* A trace file with no events (e.g. a run that recorded nothing,
           or a freshly truncated file) gets a clean one-line summary
           instead of a page of degenerate zero tables. *)
        Report.print_section (Printf.sprintf "trace summary: %s" file);
        print_endline "empty trace: no events";
        `Ok ()
      | Ok events ->
        let s = Summary.of_events events in
        Report.print_section (Printf.sprintf "trace summary: %s" file);
        Report.print_kv
          (s.Summary.run
          @ [
              ("events", string_of_int s.Summary.events);
              ("updates covered", string_of_int s.Summary.updates);
              ( "messages up / down",
                Printf.sprintf "%d / %d" s.Summary.msgs_up s.Summary.msgs_down
              );
              ( "bytes up / down",
                Printf.sprintf "%d / %d" s.Summary.bytes_up
                  s.Summary.bytes_down );
              ("broadcasts", string_of_int s.Summary.broadcasts);
              ("shared-medium bytes", string_of_int s.Summary.medium_bytes);
              ( "estimate first -> last",
                Printf.sprintf "%s -> %s"
                  (fmt_estimate s.Summary.first_estimate)
                  (fmt_estimate s.Summary.last_estimate) );
              ("final level", string_of_int s.Summary.level);
            ]
          @
          (* Fault section, only when the trace actually saw faults. *)
          if
            s.Summary.drops = 0 && s.Summary.duplicates = 0
            && s.Summary.retries = 0 && s.Summary.crashes = 0
          then []
          else
            [
              ( "dropped transmissions",
                Printf.sprintf "%d (%d bytes)" s.Summary.drops
                  s.Summary.dropped_bytes );
              ( "duplicate deliveries",
                Printf.sprintf "%d (%d bytes)" s.Summary.duplicates
                  s.Summary.duplicate_bytes );
              ("retransmissions", string_of_int s.Summary.retries);
              ( "crashes / recoveries",
                Printf.sprintf "%d / %d" s.Summary.crashes s.Summary.recovers
              );
              ( "degraded sites",
                match s.Summary.degraded_sites with
                | [] -> "none"
                | l -> String.concat "," (List.map string_of_int l) );
            ]);
        Report.print_table
          ~header:[ "event"; "count" ]
          (List.map
             (fun (k, n) -> Report.[ S k; I n ])
             s.Summary.kind_counts);
        print_newline ();
        (* Fault columns only when the trace contains fault events at
           all — a clean run's table should not be half zeros. *)
        let with_faults =
          List.exists
            (fun (r : Summary.site_row) ->
              r.s_drops > 0 || r.s_duplicates > 0 || r.s_retries > 0
              || r.s_crashes > 0 || r.s_recovers > 0)
            s.Summary.sites
          || s.Summary.drops > 0 || s.Summary.duplicates > 0
          || s.Summary.retries > 0 || s.Summary.crashes > 0
        in
        let fault_header = [ "drops"; "dups"; "retries"; "cr/rec" ] in
        let fault_cells (r : Summary.site_row) =
          Report.
            [
              I r.s_drops;
              I r.s_duplicates;
              I r.s_retries;
              S (Printf.sprintf "%d/%d" r.s_crashes r.s_recovers);
            ]
        in
        Report.print_table
          ~header:
            ([
               "site";
               "msgs up";
               "bytes up";
               "bytes down";
               "sketch";
               "items";
               "counts";
               "crossings";
               "resyncs";
             ]
            @ (if with_faults then fault_header else [])
            @ [ "mean gap" ])
          (List.map
             (fun (r : Summary.site_row) ->
               Report.
                 [
                   I r.site;
                   I r.s_msgs_up;
                   I r.s_bytes_up;
                   I r.s_bytes_down;
                   I r.s_sketch_sends;
                   I r.s_item_sends;
                   I r.s_count_sends;
                   I r.s_crossings;
                   I r.s_resyncs;
                 ]
               @ (if with_faults then fault_cells r else [])
               @ [
                   (if Float.is_nan r.s_mean_send_gap then Report.S "-"
                    else Report.F r.s_mean_send_gap);
                 ])
             s.Summary.sites);
        print_newline ();
        if s.Summary.span_stats <> [] then begin
          span_stats_table s.Summary.span_stats;
          print_newline ()
        end;
        if s.Summary.views <> [] then begin
          Report.print_table
            ~header:[ "view"; "spec"; "estimate"; "routed"; "bytes" ]
            (List.map
               (fun (v : Summary.view_row) ->
                 Report.
                   [
                     S v.v_label;
                     S v.v_spec;
                     F v.v_estimate;
                     I v.v_routed;
                     I v.v_bytes;
                   ])
               s.Summary.views);
          print_newline ()
        end;
        Report.print_table
          ~header:
            [
              "phase";
              "updates";
              "events";
              "bytes up";
              "bytes down";
              "sends";
              "crossings";
              "estimate";
            ]
          (List.map
             (fun (r : Summary.phase_row) ->
               Report.
                 [
                   I r.phase;
                   S (Printf.sprintf "%d-%d" r.p_from r.p_to);
                   I r.p_events;
                   I r.p_bytes_up;
                   I r.p_bytes_down;
                   I r.p_sends;
                   I r.p_crossings;
                   S (fmt_estimate r.p_estimate);
                 ])
             (Summary.phases ~n:phases events));
        `Ok ()
  in
  let doc =
    "Replay a JSONL trace into per-site and per-phase summary tables."
  in
  Cmd.v
    (Cmd.info "inspect" ~doc)
    Term.(ret (const run $ file_arg $ phases_arg))

(* ------------------------------------------------------------------ *)
(* top *)

(* Live per-site dashboard.  Two sources: a running coordinator's
   /metrics endpoint (hand-rolled HTTP GET + the exposition parser —
   refreshed every --interval seconds with per-site byte rates computed
   from successive scrapes), or a finished run's JSONL trace (one frame
   from the Summary fold, with headroom and degradation columns the
   metrics registry does not carry). *)

(* One GET against host:port.  The endpoint answers Connection: close,
   so the response is simply everything until EOF. *)
let http_get_metrics ~host ~port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  with
  | [] | (exception Not_found) ->
    Error (Printf.sprintf "cannot resolve %s:%d" host port)
  | ai :: _ -> (
    let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    match
      Fun.protect ~finally (fun () ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0;
          Unix.connect fd ai.Unix.ai_addr;
          let req =
            Printf.sprintf
              "GET /metrics HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
              host port
          in
          let b = Bytes.of_string req in
          let rec send pos =
            if pos < Bytes.length b then
              send (pos + Unix.write fd b pos (Bytes.length b - pos))
          in
          send 0;
          let buf = Buffer.create 8192 in
          let chunk = Bytes.create 8192 in
          let rec recv () =
            let n = Unix.read fd chunk 0 (Bytes.length chunk) in
            if n > 0 then begin
              Buffer.add_subbytes buf chunk 0 n;
              recv ()
            end
          in
          recv ();
          Buffer.contents buf)
    with
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "scrape http://%s:%d/metrics: %s" host port
           (Unix.error_message e))
    | raw -> (
      (* Split the status line and headers off; require a 200. *)
      match String.index_opt raw ' ' with
      | None -> Error "malformed HTTP response"
      | Some sp ->
        let status =
          let rest = String.sub raw (sp + 1) (String.length raw - sp - 1) in
          match String.index_opt rest ' ' with
          | Some sp2 -> String.sub rest 0 sp2
          | None -> String.trim rest
        in
        if status <> "200" then Error ("HTTP status " ^ status)
        else
          let rec find_sep i =
            if i + 3 >= String.length raw then None
            else if
              raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
              && raw.[i + 3] = '\n'
            then Some (i + 4)
            else find_sep (i + 1)
          in
          (match find_sep 0 with
          | None -> Error "HTTP response without header terminator"
          | Some body ->
            Ok (String.sub raw body (String.length raw - body)))))

(* Scrape-sample lookups. *)

let sample_matches name labels (s : Metrics.sample) =
  s.Metrics.sample_name = name
  && List.for_all
       (fun (k, v) -> List.assoc_opt k s.Metrics.sample_labels = Some v)
       labels

let sample_value ?(labels = []) samples name =
  Option.map
    (fun s -> s.Metrics.sample_value)
    (List.find_opt (sample_matches name labels) samples)

let sample_int ?labels samples name =
  match sample_value ?labels samples name with
  | Some v -> int_of_float v
  | None -> 0

let label_values samples name label =
  List.sort_uniq compare
    (List.filter_map
       (fun (s : Metrics.sample) ->
         if s.Metrics.sample_name = name then
           List.assoc_opt label s.Metrics.sample_labels
         else None)
       samples)

(* Nearest-upper-bound quantile from cumulative _bucket samples: the
   smallest [le] whose cumulative count reaches [q] of the total. *)
let bucket_quantile samples name labels q =
  let parse_le le =
    match String.lowercase_ascii le with
    | "+inf" | "inf" -> Float.infinity
    | _ -> ( try float_of_string le with Failure _ -> Float.nan)
  in
  let buckets =
    List.filter_map
      (fun (s : Metrics.sample) ->
        if sample_matches (name ^ "_bucket") labels s then
          Option.map
            (fun le -> (parse_le le, s.Metrics.sample_value))
            (List.assoc_opt "le" s.Metrics.sample_labels)
        else None)
      samples
  in
  let buckets = List.sort (fun (a, _) (b, _) -> compare a b) buckets in
  match List.rev buckets with
  | [] -> Float.nan
  | (_, total) :: _ ->
    if total <= 0. then Float.nan
    else
      let target = q *. total in
      (match List.find_opt (fun (_, c) -> c >= target) buckets with
      | Some (ub, _) -> ub
      | None -> Float.nan)

let fmt_rate bytes_per_s =
  if Float.is_nan bytes_per_s then "-"
  else if bytes_per_s < 1024. then Printf.sprintf "%.0f B/s" bytes_per_s
  else if bytes_per_s < 1024. *. 1024. then
    Printf.sprintf "%.1f KiB/s" (bytes_per_s /. 1024.)
  else Printf.sprintf "%.1f MiB/s" (bytes_per_s /. (1024. *. 1024.))

(* Render one live frame.  [prev] is the previous (timestamp, samples)
   scrape, for rate columns. *)
let render_scrape_frame ~source ~prev ~now samples =
  let dt =
    match prev with
    | Some (t0, _) when now > t0 -> now -. t0
    | _ -> Float.nan
  in
  let prev_samples = match prev with Some (_, s) -> s | None -> [] in
  let rate ?labels name =
    if Float.is_nan dt then Float.nan
    else
      float_of_int (sample_int ?labels samples name - sample_int ?labels prev_samples name)
      /. dt
  in
  let fmt_opt = function
    | Some v -> Printf.sprintf "%.1f" v
    | None -> "-"
  in
  Report.print_section (Printf.sprintf "wdmon top: %s" source);
  let crashes = sample_int samples "wd_crashes_total" in
  let recovers = sample_int samples "wd_recovers_total" in
  Report.print_kv
    [
      ("estimate", fmt_opt (sample_value samples "wd_estimate"));
      ( "level",
        match sample_value samples "wd_level" with
        | Some v -> string_of_int (int_of_float v)
        | None -> "-" );
      ( "messages up / down",
        Printf.sprintf "%d / %d"
          (sample_int ~labels:[ ("dir", "up") ] samples "wd_messages_total")
          (sample_int ~labels:[ ("dir", "down") ] samples "wd_messages_total")
      );
      ( "bytes up / down",
        Printf.sprintf "%d / %d"
          (sample_int ~labels:[ ("dir", "up") ] samples "wd_bytes_total")
          (sample_int ~labels:[ ("dir", "down") ] samples "wd_bytes_total") );
      ( "rate up / down",
        Printf.sprintf "%s / %s"
          (fmt_rate (rate ~labels:[ ("dir", "up") ] "wd_bytes_total"))
          (fmt_rate (rate ~labels:[ ("dir", "down") ] "wd_bytes_total")) );
      ("broadcasts", string_of_int (sample_int samples "wd_broadcasts_total"));
      ( "crossings / resyncs",
        Printf.sprintf "%d / %d"
          (sample_int samples "wd_threshold_crossings_total")
          (sample_int samples "wd_resyncs_total") );
      ( "drops / dups / retries",
        Printf.sprintf "%d / %d / %d"
          (sample_int samples "wd_drops_total")
          (sample_int samples "wd_duplicates_total")
          (sample_int samples "wd_retries_total") );
      ( "crashes / recovers",
        Printf.sprintf "%d / %d%s" crashes recovers
          (if crashes > recovers then
             Printf.sprintf "  (%d site(s) DEGRADED)" (crashes - recovers)
           else "") );
    ];
  (match label_values samples "wd_site_bytes_total" "site" with
  | [] -> ()
  | sites ->
    let sites =
      List.sort compare
        (List.filter_map int_of_string_opt sites)
    in
    print_newline ();
    Report.print_table
      ~header:[ "site"; "bytes up"; "bytes down"; "up rate"; "down rate" ]
      (List.map
         (fun site ->
           let labels dir =
             [ ("dir", dir); ("site", string_of_int site) ]
           in
           Report.
             [
               I site;
               I (sample_int ~labels:(labels "up") samples "wd_site_bytes_total");
               I
                 (sample_int ~labels:(labels "down") samples
                    "wd_site_bytes_total");
               S (fmt_rate (rate ~labels:(labels "up") "wd_site_bytes_total"));
               S
                 (fmt_rate (rate ~labels:(labels "down") "wd_site_bytes_total"));
             ])
         sites));
  (* Histograms expose only their expanded series, so enumerate span
     names from the _count samples. *)
  (match label_values samples "wd_span_duration_ns_count" "span" with
  | [] -> ()
  | spans ->
    print_newline ();
    Report.print_table
      ~header:[ "span"; "count"; "p50 <="; "p90 <="; "p99 <=" ]
      (List.map
         (fun span ->
           let labels = [ ("span", span) ] in
           let q p = bucket_quantile samples "wd_span_duration_ns" labels p in
           Report.
             [
               S span;
               I
                 (sample_int ~labels samples "wd_span_duration_ns_count");
               S (fmt_ns (q 0.5));
               S (fmt_ns (q 0.9));
               S (fmt_ns (q 0.99));
             ])
         spans));
  print_newline ()

(* Render one frame from a finished run's trace: the Summary fold plus
   the per-site headroom (last threshold crossing's estimate vs the
   threshold it had to beat) and degradation status. *)
let render_trace_frame file events =
  let s = Summary.of_events events in
  let last_cross = Hashtbl.create 16 in
  List.iter
    (fun (ev : Wd_obs.Event.t) ->
      match ev.Wd_obs.Event.kind with
      | Wd_obs.Event.Threshold_crossed { site; estimate; threshold } ->
        Hashtbl.replace last_cross site (estimate, threshold)
      | _ -> ())
    events;
  let fmt_estimate = function
    | Some e -> Printf.sprintf "%.1f" e
    | None -> "-"
  in
  Report.print_section (Printf.sprintf "wdmon top: %s" file);
  Report.print_kv
    (s.Summary.run
    @ [
        ("updates covered", string_of_int s.Summary.updates);
        ( "estimate first -> last",
          Printf.sprintf "%s -> %s"
            (fmt_estimate s.Summary.first_estimate)
            (fmt_estimate s.Summary.last_estimate) );
        ("final level", string_of_int s.Summary.level);
        ( "messages up / down",
          Printf.sprintf "%d / %d" s.Summary.msgs_up s.Summary.msgs_down );
        ( "bytes up / down",
          Printf.sprintf "%d / %d" s.Summary.bytes_up s.Summary.bytes_down );
        ( "drops / dups / retries",
          Printf.sprintf "%d / %d / %d" s.Summary.drops s.Summary.duplicates
            s.Summary.retries );
        ( "crashes / recovers",
          Printf.sprintf "%d / %d" s.Summary.crashes s.Summary.recovers );
        ( "degraded sites",
          match s.Summary.degraded_sites with
          | [] -> "none"
          | l -> String.concat "," (List.map string_of_int l) );
      ]);
  print_newline ();
  Report.print_table
    ~header:
      [
        "site";
        "msgs up";
        "bytes up";
        "bytes down";
        "sends";
        "retries";
        "drops";
        "dups";
        "cr/rec";
        "gap";
        "est/thr";
        "status";
      ]
    (List.map
       (fun (r : Summary.site_row) ->
         let headroom =
           match Hashtbl.find_opt last_cross r.Summary.site with
           | Some (est, thr) when thr > 0. ->
             Printf.sprintf "%.2fx" (est /. thr)
           | _ -> "-"
         in
         Report.
           [
             I r.site;
             I r.s_msgs_up;
             I r.s_bytes_up;
             I r.s_bytes_down;
             I (r.s_sketch_sends + r.s_item_sends + r.s_count_sends);
             I r.s_retries;
             I r.s_drops;
             I r.s_duplicates;
             S (Printf.sprintf "%d/%d" r.s_crashes r.s_recovers);
             (if Float.is_nan r.s_mean_send_gap then S "-"
              else F r.s_mean_send_gap);
             S headroom;
             S
               (if List.mem r.site s.Summary.degraded_sites then "DEGRADED"
                else "ok");
           ])
       s.Summary.sites);
  if s.Summary.span_stats <> [] then begin
    print_newline ();
    span_stats_table s.Summary.span_stats
  end;
  if s.Summary.views <> [] then begin
    print_newline ();
    Report.print_table
      ~header:[ "view"; "spec"; "estimate"; "routed"; "bytes" ]
      (List.map
         (fun (v : Summary.view_row) ->
           Report.
             [ S v.v_label; S v.v_spec; F v.v_estimate; I v.v_routed; I v.v_bytes ])
         s.Summary.views)
  end;
  print_newline ()

let top_cmd =
  let scrape_arg =
    let doc =
      "Scrape a live coordinator's /metrics endpoint.  HOST:PORT, or just \
       PORT for 127.0.0.1 (see coord --metrics-port)."
    in
    Arg.(
      value & opt (some string) None & info [ "scrape" ] ~docv:"HOST:PORT" ~doc)
  in
  let trace_arg =
    let doc =
      "Render one dashboard frame from a JSONL trace file (- for stdin)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"TRACE" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between scrapes in live mode." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SEC" ~doc)
  in
  let once_flag =
    let doc = "Render a single frame and exit (no screen clearing)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let frames_arg =
    let doc = "Stop after N frames (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "frames" ] ~docv:"N" ~doc)
  in
  let parse_endpoint addr =
    match int_of_string_opt addr with
    | Some port -> Ok ("127.0.0.1", port)
    | None -> (
      match String.rindex_opt addr ':' with
      | None -> Error (Printf.sprintf "bad endpoint %S (want HOST:PORT)" addr)
      | Some i -> (
        let host = String.sub addr 0 i in
        let port = String.sub addr (i + 1) (String.length addr - i - 1) in
        match int_of_string_opt port with
        | Some p when host <> "" -> Ok (host, p)
        | _ ->
          Error (Printf.sprintf "bad endpoint %S (want HOST:PORT)" addr)))
  in
  let run_live ~host ~port ~interval ~once ~frames =
    let source = Printf.sprintf "http://%s:%d/metrics" host port in
    let prev = ref None in
    let frame = ref 0 in
    let errors = ref 0 in
    let result = ref (`Ok ()) in
    let continue = ref true in
    while !continue do
      (match http_get_metrics ~host ~port with
      | Error e ->
        (* In loop modes a failed scrape is retried — the dashboard may
           be attached before the coordinator opens its port, or outlive
           the run — but bounded, so a dead endpoint cannot hang CI. *)
        incr errors;
        if once || !errors >= 50 then begin
          result := `Error (false, e);
          continue := false
        end
        else Printf.printf "%s (retrying)\n%!" e
      | Ok body -> (
        match Metrics.parse_prometheus body with
        | Error e ->
          result := `Error (false, "bad exposition: " ^ e);
          continue := false
        | Ok samples ->
          errors := 0;
          let now = Unix.gettimeofday () in
          if not once then print_string "\027[2J\027[H";
          render_scrape_frame ~source ~prev:!prev ~now samples;
          prev := Some (now, samples);
          incr frame));
      if !continue then begin
        if once || (frames > 0 && !frame >= frames) then continue := false
        else Unix.sleepf interval
      end
    done;
    !result
  in
  let run scrape trace interval once frames =
    if interval <= 0. then `Error (false, "--interval must be > 0")
    else
      match (scrape, trace) with
      | None, None -> `Error (true, "one of --scrape or --trace is required")
      | Some _, Some _ ->
        `Error (true, "--scrape and --trace are mutually exclusive")
      | None, Some file -> (
        match read_trace_events file with
        | Error e -> `Error (false, e)
        | Ok events ->
          render_trace_frame file events;
          `Ok ())
      | Some addr, None -> (
        match parse_endpoint addr with
        | Error e -> `Error (false, e)
        | Ok (host, port) -> run_live ~host ~port ~interval ~once ~frames)
  in
  let doc =
    "Live per-site dashboard: refreshing /metrics scrape of a running \
     coordinator, or a one-shot view of a finished run's trace."
  in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(
      ret
        (const run $ scrape_arg $ trace_arg $ interval_arg $ once_flag
       $ frames_arg))

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let run () =
    print_endline "experiments:";
    List.iter (fun id -> Printf.printf "  %s\n" id) Experiments.ids;
    print_endline
      "workloads: http-pairs http-clients http-objects two-phase zipf gossip"
  in
  let doc = "List available experiments and workloads." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc =
    "Distributed, continuous monitoring of duplicate-resilient aggregates \
     (reproduction of Cormode, Muthukrishnan & Zhuang, ICDE 2006)."
  in
  let info = Cmd.info "wdmon" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiment_cmd;
            dc_cmd;
            ds_cmd;
            hh_cmd;
            run_cmd;
            coord_cmd;
            site_cmd;
            relay_cmd;
            eval_cmd;
            workload_cmd;
            inspect_cmd;
            top_cmd;
            list_cmd;
          ]))
