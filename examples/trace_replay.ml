(* Trace export / replay pipeline.

   Production deployments record traffic once and re-analyze it under
   many protocol configurations.  This example:

   1. generates the calibrated WorldCup-like HTTP workload,
   2. saves it as a replayable binary trace (Trace_io),
   3. reloads it and replays it under every distinct-count algorithm,
   4. prints the cost/accuracy comparison — byte-for-byte reproducible
      because the trace pins the arrival order.

   Run with:  dune exec examples/trace_replay.exe *)

module Http = Wd_workload.Http_trace
module Stream = Wd_workload.Stream
module Trace_io = Wd_workload.Trace_io
module Sim = Whats_different.Simulation
module Dc = Wd_protocol.Dc_tracker

let () =
  let cfg = Http.scaled 0.3 in
  let stream = Http.view cfg Http.Client_object_pair Http.Per_region (Http.generate cfg) in

  let path = Filename.temp_file "wd_replay" ".trace" in
  Trace_io.save_binary path stream;
  Printf.printf "saved %d events to %s (%d bytes on disk)\n"
    (Stream.length stream) path
    (let st = open_in_bin path in
     let n = in_channel_length st in
     close_in st;
     n);

  let replayed = Trace_io.load_binary path in
  assert (Stream.length replayed = Stream.length stream);

  let exact = Sim.exact_dc_bytes replayed in
  Printf.printf "\nreplaying under every distinct-count algorithm (eps = 0.1):\n";
  Printf.printf "%-4s  %12s  %10s  %9s\n" "algo" "bytes" "ratio" "rel err";
  List.iter
    (fun algorithm ->
      let r =
        Sim.run ~seed:7 ~error_samples:1
          (Wd_view.Query.dc ~theta:0.03 ~alpha:0.07 algorithm)
          replayed
      in
      let err =
        Float.abs (r.Sim.final_estimate -. Float.of_int r.Sim.final_truth)
        /. Float.of_int r.Sim.final_truth
      in
      Printf.printf "%-4s  %12d  %10.3e  %9.4f\n"
        (Dc.algorithm_to_string algorithm)
        r.Sim.total_bytes
        (Float.of_int r.Sim.total_bytes /. Float.of_int exact)
        err)
    Dc.all_algorithms;

  Sys.remove path
