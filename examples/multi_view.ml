(* Many standing views over one stream (the README example): a global
   distinct-count primary plus ten per-key-class satellites sharing one
   hash-once fanout plane, all driven by a single Simulation.run. *)

module Query = Wd_view.Query
module Sim = Whats_different.Simulation
module Dc = Wd_protocol.Dc_tracker

let () =
  let stream =
    Wd_workload.Stream_gen.zipf ~sites:4 ~events:100_000 ~universe:20_000 ()
  in
  (* The primary: global distinct count, exactly a standalone run. *)
  let q = Query.dc ~theta:0.03 ~alpha:0.07 Dc.LS in
  (* Satellites: one distinct count per key class, sharing one hash. *)
  let views =
    List.init 10 (fun r ->
        Query.dc ~sketch:Query.Fanout
          ~selector:(Query.Key_mod { modulus = 10; residue = r })
          ~theta:0.05 ~alpha:0.1 Dc.NS)
  in
  let r = Sim.run ~seed:42 ~views q stream in
  Printf.printf "global: %.0f of %d distinct\n" r.Sim.final_estimate
    r.Sim.final_truth;
  Array.iter
    (fun (v : Sim.view_report) ->
      Printf.printf "%-16s %10.0f  (%d routed, %d bytes)\n" v.Sim.view_spec
        v.Sim.view_estimate v.Sim.view_routed v.Sim.view_total_bytes)
    r.Sim.view_reports
