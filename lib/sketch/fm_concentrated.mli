(** Single-repetition FM sketch over concentrated (mixed tabulation)
    hashing — "No Repetition: Fast Streaming with Highly Concentrated
    Hashing" (Aamand, Knudsen, Knudsen, Rasmussen & Thorup) applied to
    the paper's primary sketch.

    {!Fm}'s [Averaged] variant pays m independent hash evaluations and m
    bitmap updates per item to buy its (alpha, delta) guarantee from
    weak hash functions.  Here one {!Wd_hashing.Mixed_tabulation} hash
    per item supplies both the bucket and the level (the PCSA split),
    and the family's Chernoff-style concentration makes a single sketch
    of [Mixed_tabulation.concentrated_buckets ~alpha ~delta] buckets
    meet the same guarantee — O(1) hashing per update with no averaging
    loop, and ~40% fewer serialized bytes than [Fm.family] at equal
    parameters, which the SS/LS broadcast protocols inherit directly.

    Implements {!Sketch_intf.DISTINCT_SKETCH}; merging is bitwise OR per
    bucket, duplicate-insensitive and monotone, exactly as in {!Fm}. *)

type family
type t

val name : string

val family :
  rng:Wd_hashing.Rng.t -> accuracy:float -> confidence:float -> family
(** Sizes the sketch with
    {!Wd_hashing.Mixed_tabulation.concentrated_buckets}: one repetition,
    [ceil ((0.78/accuracy)^2 * max 1 (ln (1/(1-confidence))))] buckets. *)

val family_custom : rng:Wd_hashing.Rng.t -> buckets:int -> family
(** [family_custom ~rng ~buckets] uses exactly [buckets] FM bitmaps.
    Requires [buckets >= 1]. *)

val family_of_params : alpha:float -> delta:float -> seed:int -> family
(** {!family} under the paper's parameter names. *)

val buckets : family -> int

val with_estimator : Sketch_intf.estimator -> family -> family
(** Selects [Classic] (default) or [Mle] estimation; summary state and
    merging are estimator-independent (see {!Fm.with_estimator}). *)

val estimator : family -> Sketch_intf.estimator

val create : family -> t
val of_params : alpha:float -> delta:float -> seed:int -> t
val copy : t -> t

val add : t -> int -> bool
(** One mixed-tabulation hash: bucket from the high bits, level from the
    trailing zeros of the low bits.  [true] iff a bit was newly set. *)

val add_batch : t -> int array -> unit
(** Folding {!add} with the hash tables hoisted out of the loop — the
    row the bench gate compares against the committed [Averaged] FM
    baseline. *)

val merge_into : dst:t -> t -> unit

val estimate : t -> float
(** [Classic]: the PCSA stochastic-averaging estimate with the blended
    linear-counting crossover of {!Estimators.linear_blend} (same
    small-range policy as {!Fm.estimate}, including the empty = 0 raw
    fallback).  [Mle]: the Clifford–Cosma maximum-likelihood estimate
    ({!Estimators.fm}). *)

val size_bytes : t -> int
(** [8 * buckets] bytes. *)

val delta_bytes : from:t -> t -> int
(** 4 bytes per bit of the target not present in [from]. *)

val equal : t -> t -> bool
val is_empty : t -> bool
val family_of : t -> family

(** {1 Serialization} — raw little-endian bitmaps, [8 * buckets] bytes,
    as in {!Fm}. *)

val to_bytes : t -> bytes

val of_bytes : family -> bytes -> t
(** Raises [Invalid_argument] if the buffer length does not match the
    family. *)
