(** Shared estimation machinery: the blended linear-counting crossover
    and the Clifford–Cosma maximum-likelihood solvers ("A Statistical
    Analysis of Probabilistic Counting Algorithms", Clifford & Cosma).

    The MLE solvers work on the Poissonized per-bucket model: the items
    landing in one bucket are Poisson with intensity [lambda], every
    bucket observation (an FM lowest-zero index, an HLL register value)
    has an explicit likelihood in [lambda], and the aggregated score
    function is strictly decreasing — safeguarded Newton with a
    bisection bracket finds the unique root.  Callers own a small
    integer counts scratch (one slot per possible bucket value) so the
    estimate path allocates nothing; the weight tables are precomputed
    at module initialization. *)

val linear_blend : m:float -> empty:int -> raw:float -> float
(** [linear_blend ~m ~empty ~raw] is the Classic small-range policy
    shared by the PCSA-style estimates: linear counting
    [m * ln (m / empty)] below [raw = 2m], the bias-corrected [raw]
    above [raw = 3m], and a linear crossfade between the two inside the
    band — continuous in [raw] where the old hard switch at [2.5m]
    could step discontinuously.  When [empty = 0] (no empty bucket to
    count) or [m <= 1], returns [raw] unconditionally. *)

val fm : counts:int array -> init:float -> float
(** [fm ~counts ~init] is the MLE per-bucket intensity for FM bitmaps
    observed through their lowest-zero statistic. [counts.(z)] must be
    the number of bitmaps with lowest zero [z], [z] in [0, 64] (length
    >= 65); the array is clobbered.  [init] seeds the Newton iteration
    (use the Classic estimate divided by the bucket count; any
    non-positive value falls back to 1).  Returns 0 when every bitmap
    has lowest zero 0.  The distinct estimate is [m * lambda] for
    stochastic averaging and [lambda] for the Averaged variant (where
    every bitmap sees the full stream). *)

val hll : counts:int array -> init:float -> float
(** [hll ~counts ~init] is the MLE per-register intensity for HLL
    registers: [counts.(r)] must be the number of registers holding
    value [r], [r] in [0, 63] (length >= 64); the array is clobbered.
    The distinct estimate is [m * lambda]. *)
