module Rng = Wd_hashing.Rng
module Universal = Wd_hashing.Universal
module Geometric = Wd_hashing.Geometric

type variant = Averaged | Stochastic

type family = {
  variant : variant;
  estimator : Sketch_intf.estimator;
  m : int;
  (* Averaged: m level hashes, one per bitmap.
     Stochastic: hashes.(0) provides both bucket (high bits) and level
     (trailing zeros), which are independent enough for PCSA. *)
  hashes : Universal.t array;
  bucket_hash : Universal.t;
  frac_pow : float array;
  (* frac_pow.(r) = 2^(r/m): the fractional part of the estimate's
     [2^(sum/m)], precomputed once per family so the estimate loop is
     free of [Float.pow] (see [pow2_mean]). *)
}

(* [scratch] is the MLE counts buffer (one slot per lowest-zero value,
   clobbered by every Mle estimate); owning it per sketch keeps the
   estimate path allocation-free without sharing mutable state between
   sketches living on different domains. *)
type t = { fam : family; bitmaps : Fm_bitmap.t array; scratch : int array }

let name = "fm"

let family_custom ~rng ~variant ~bitmaps =
  if bitmaps < 1 then invalid_arg "Fm.family_custom: bitmaps must be >= 1";
  let n_hashes = match variant with Averaged -> bitmaps | Stochastic -> 1 in
  {
    variant;
    estimator = Sketch_intf.Classic;
    m = bitmaps;
    hashes = Array.init n_hashes (fun _ -> Universal.of_rng rng);
    bucket_hash = Universal.of_rng rng;
    frac_pow =
      Array.init bitmaps (fun r ->
          2.0 ** (Float.of_int r /. Float.of_int bitmaps));
  }

let family ~rng ~accuracy ~confidence =
  if accuracy <= 0.0 || accuracy >= 1.0 then
    invalid_arg "Fm.family: accuracy must be in (0,1)";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Fm.family: confidence must be in (0,1)";
  (* Standard error of the averaged estimator is ~0.78/sqrt m
     asymptotically; continuous monitoring evaluates the estimate at
     every prefix, so the worst point of the trajectory sits in the
     tail — size with a conservative constant 1.0 to keep the whole
     run inside the budget.  Boosting to confidence 1-delta multiplies
     m by ln(1/delta). *)
  let delta = 1.0 -. confidence in
  let base = (1.0 /. accuracy) ** 2.0 in
  let m = int_of_float (Float.ceil (base *. Float.max 1.0 (Float.log (1.0 /. delta)))) in
  family_custom ~rng ~variant:Stochastic ~bitmaps:(max 1 m)

let bitmaps fam = fam.m
let variant fam = fam.variant
let with_estimator estimator fam = { fam with estimator }
let estimator fam = fam.estimator

let create fam =
  {
    fam;
    bitmaps = Array.init fam.m (fun _ -> Fm_bitmap.create ());
    scratch = Array.make 65 0;
  }

let copy t =
  { t with bitmaps = Array.map Fm_bitmap.copy t.bitmaps; scratch = Array.make 65 0 }

let add t v =
  let fam = t.fam in
  match fam.variant with
  | Averaged ->
    let changed = ref false in
    for j = 0 to fam.m - 1 do
      if Fm_bitmap.add_level t.bitmaps.(j) (Geometric.level fam.hashes.(j) v)
      then changed := true
    done;
    !changed
  | Stochastic ->
    let j = Universal.to_range fam.bucket_hash ~buckets:fam.m v in
    Fm_bitmap.add_level t.bitmaps.(j) (Geometric.level fam.hashes.(0) v)

(* Equal to folding [add] over [vs] (change flags discarded): the family
   dispatch, field loads and bounds checks are hoisted out of the loop,
   which is what makes the batched path worth threading up through the
   trackers and the simulator. *)
let add_batch t vs =
  let fam = t.fam in
  let bitmaps = t.bitmaps in
  let n = Array.length vs in
  match fam.variant with
  | Averaged ->
    let hashes = fam.hashes in
    let m = fam.m in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get vs i in
      for j = 0 to m - 1 do
        ignore
          (Fm_bitmap.add_level
             (Array.unsafe_get bitmaps j)
             (Geometric.level (Array.unsafe_get hashes j) v)
            : bool)
      done
    done
  | Stochastic ->
    let bucket_hash = fam.bucket_hash in
    let level_hash = Array.unsafe_get fam.hashes 0 in
    let m = fam.m in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get vs i in
      (* [to_range] yields j in [0, m), so the bitmap access is in
         bounds by construction. *)
      let j = Universal.to_range bucket_hash ~buckets:m v in
      ignore
        (Fm_bitmap.add_level
           (Array.unsafe_get bitmaps j)
           (Geometric.level level_hash v)
          : bool)
    done

let merge_into ~dst src =
  if dst.fam != src.fam && dst.fam <> src.fam then
    invalid_arg "Fm.merge_into: sketches from different families";
  Array.iteri
    (fun j bm -> Fm_bitmap.merge_into ~dst:dst.bitmaps.(j) bm)
    src.bitmaps

(* [2^(sum/m)] with [sum] an integer in [0, 64m]: split into quotient and
   remainder so the only table lookup plus an exact [ldexp] replaces a
   transcendental [Float.pow] — this runs on the tracker hot path (the
   estimate is refreshed whenever an add changes the sketch). *)
let pow2_mean fam sum =
  Float.ldexp fam.frac_pow.(sum mod fam.m) (sum / fam.m)

let estimate t =
  let fam = t.fam in
  let sum = ref 0 and empty = ref 0 in
  for j = 0 to fam.m - 1 do
    let bm = Array.unsafe_get t.bitmaps j in
    sum := !sum + Fm_bitmap.lowest_zero bm;
    if Fm_bitmap.is_empty bm then incr empty
  done;
  let m = Float.of_int fam.m in
  let classic =
    match fam.variant with
    | Averaged -> pow2_mean fam !sum /. Fm_bitmap.phi
    | Stochastic ->
      (* Stochastic averaging is biased upwards when the number of
         distinct items is comparable to m (many bitmaps still empty):
         blend towards linear counting on the empty-bitmap fraction in
         that regime.  When no bitmap is empty — reachable with low raw,
         e.g. bitmaps whose only set bits sit above bit 0 — linear
         counting has no signal to read and [linear_blend] keeps the raw
         estimate unconditionally. *)
      let raw = m *. pow2_mean fam !sum /. Fm_bitmap.phi in
      Estimators.linear_blend ~m ~empty:!empty ~raw
  in
  match fam.estimator with
  | Sketch_intf.Classic -> classic
  | Sketch_intf.Mle ->
    let counts = t.scratch in
    Array.fill counts 0 65 0;
    for j = 0 to fam.m - 1 do
      let z = Fm_bitmap.lowest_zero (Array.unsafe_get t.bitmaps j) in
      counts.(z) <- counts.(z) + 1
    done;
    let scale = match fam.variant with Averaged -> 1.0 | Stochastic -> m in
    scale *. Estimators.fm ~counts ~init:(classic /. scale)

let size_bytes t = Fm_bitmap.size_bytes * t.fam.m

(* Each missing bit ships as a (bitmap index, level) coordinate: 4 bytes. *)
let delta_bytes ~from target =
  let missing = ref 0 in
  for j = 0 to target.fam.m - 1 do
    let extra =
      Int64.logand
        (Fm_bitmap.bits target.bitmaps.(j))
        (Int64.lognot (Fm_bitmap.bits from.bitmaps.(j)))
    in
    let x = ref extra in
    while !x <> 0L do
      x := Int64.logand !x (Int64.sub !x 1L);
      incr missing
    done
  done;
  4 * !missing

let equal a b =
  Array.length a.bitmaps = Array.length b.bitmaps
  && (let ok = ref true in
      Array.iteri (fun j bm -> if not (Fm_bitmap.equal bm b.bitmaps.(j)) then ok := false) a.bitmaps;
      !ok)

let is_empty t = Array.for_all Fm_bitmap.is_empty t.bitmaps

let family_of t = t.fam

let to_bytes t =
  let buf = Bytes.create (8 * t.fam.m) in
  Array.iteri
    (fun j bm -> Bytes.set_int64_le buf (8 * j) (Fm_bitmap.bits bm))
    t.bitmaps;
  buf

let of_bytes fam buf =
  if Bytes.length buf <> 8 * fam.m then
    invalid_arg "Fm.of_bytes: buffer length does not match the family";
  {
    fam;
    bitmaps =
      Array.init fam.m (fun j ->
          Fm_bitmap.of_bits (Bytes.get_int64_le buf (8 * j)));
    scratch = Array.make 65 0;
  }

(* The uniform (alpha, delta, seed) constructor pair: the paper's
   parameter names over the (accuracy, confidence) sizing above. *)

let family_of_params ~alpha ~delta ~seed =
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Fm.family_of_params: delta must be in (0,1)";
  family
    ~rng:(Wd_hashing.Rng.create seed)
    ~accuracy:alpha
    ~confidence:(1.0 -. delta)

let of_params ~alpha ~delta ~seed =
  create (family_of_params ~alpha ~delta ~seed)
