(** HyperLogLog distinct-count summary (Flajolet, Fusy, Gandouet, Meunier).

    [m] one-byte registers; register [j] keeps the maximum geometric level
    (+1) of the items routed to bucket [j]; the harmonic mean of [2^-M_j]
    yields the estimate, with linear-counting correction for small
    cardinalities.  Standard error [~1.04/sqrt m].

    Included as a second drop-in sketch type for the paper's Section 4.2
    observation; its 1-byte registers make shared-sketch protocols (SS/LS)
    markedly cheaper per message than with FM bitmaps, which the sketch-type
    ablation bench quantifies. *)

type family
type t

val name : string

val family :
  rng:Wd_hashing.Rng.t -> accuracy:float -> confidence:float -> family
(** Sizes [m] as the power of two with [1.04/sqrt m <= accuracy], times a
    [ln (1/delta)] boost. *)

val family_custom : rng:Wd_hashing.Rng.t -> registers:int -> family
(** [registers] must be a power of two [>= 16]. *)

val family_of_params : alpha:float -> delta:float -> seed:int -> family
(** {!family} under the paper's parameter names: relative error [alpha],
    failure probability [delta = 1 - confidence], hashes drawn from a
    fresh generator seeded with [seed]. *)


val registers : family -> int

val with_estimator : Sketch_intf.estimator -> family -> family
(** [with_estimator e fam] selects the estimate computation (default
    [Classic]).  State, [add] and [merge_into] are estimator-independent,
    so MLE estimates compose with merging. *)

val estimator : family -> Sketch_intf.estimator

val create : family -> t
val of_params : alpha:float -> delta:float -> seed:int -> t
(** [create (family_of_params ~alpha ~delta ~seed)]. *)

val copy : t -> t

(** [add t v] inserts the item; [true] iff some register increased. *)
val add : t -> int -> bool

val add_batch : t -> int array -> unit
(** [add_batch t vs] inserts every element of [vs]; equal to folding
    {!add} with the change flags discarded. *)

val alpha : int -> float
(** [alpha m] is the bias-correction constant applied to the raw harmonic
    estimate for [m] registers (Flajolet et al., Fig. 3).  Total: register
    counts below the constructible minimum of 16 clamp to the [m = 16]
    constant 0.673 rather than extrapolating the asymptotic formula, which
    would bias small-[m] estimates. *)

val merge_into : dst:t -> t -> unit

val estimate : t -> float
(** Under [Classic], the bias-corrected harmonic mean with the small
    range blended towards linear counting on the zero-register count
    (continuous crossfade over [raw/m] in [2, 3] rather than a hard
    switch at [2.5m]; raw alone when no register is zero — see
    {!Estimators.linear_blend}).  Under [Mle], the Clifford–Cosma
    maximum-likelihood estimate from the register-value counts
    ({!Estimators.hll}). *)

val size_bytes : t -> int
(** One byte per register. *)

val delta_bytes : from:t -> t -> int
(** 3 bytes per register of the target exceeding [from]'s (a (register,
    value) pair each). *)

val equal : t -> t -> bool
val family_of : t -> family

(** {1 Serialization} — the raw register array, [m] bytes. *)

val to_bytes : t -> bytes

val of_bytes : family -> bytes -> t
(** Raises [Invalid_argument] on a length mismatch or a register value
    above 63. *)
