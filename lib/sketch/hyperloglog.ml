module Rng = Wd_hashing.Rng
module Universal = Wd_hashing.Universal
module Geometric = Wd_hashing.Geometric

type family = {
  m : int;
  log2m : int;
  hash : Universal.t;
  estimator : Sketch_intf.estimator;
}

(* [scratch] is the MLE register-value counts buffer (clobbered by every
   Mle estimate); per-sketch so estimates never share mutable state. *)
type t = { fam : family; regs : Bytes.t; scratch : int array }

let name = "hll"

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let min_registers = 16

let family_custom ~rng ~registers =
  if registers < min_registers || not (is_power_of_two registers) then
    invalid_arg "Hyperloglog.family_custom: registers must be a power of two >= 16";
  let rec log2 n acc = if n = 1 then acc else log2 (n / 2) (acc + 1) in
  {
    m = registers;
    log2m = log2 registers 0;
    hash = Universal.of_rng rng;
    estimator = Sketch_intf.Classic;
  }

let family ~rng ~accuracy ~confidence =
  if accuracy <= 0.0 || accuracy >= 1.0 then
    invalid_arg "Hyperloglog.family: accuracy must be in (0,1)";
  let delta = 1.0 -. confidence in
  let target =
    (1.04 /. accuracy) ** 2.0 *. Float.max 1.0 (Float.log (1.0 /. delta))
  in
  let m = ref min_registers in
  while Float.of_int !m < target do
    m := !m * 2
  done;
  family_custom ~rng ~registers:!m

let registers fam = fam.m
let with_estimator estimator fam = { fam with estimator }
let estimator fam = fam.estimator

let create fam = { fam; regs = Bytes.make fam.m '\000'; scratch = Array.make 64 0 }

let copy t = { t with regs = Bytes.copy t.regs; scratch = Array.make 64 0 }

(* Bucket from the top log2m bits; rank from the remaining low bits.  The
   low [64 - log2m <= 60] bits fit a native int, so the rank (a
   trailing-zero count of those bits, 1-based) needs no Int64 loop: when
   they are all zero the old 64-bit count was [>= 64 - log2m] and the
   [min 63] cap produced the same 63 the fast path returns. *)
let add t v =
  let fam = t.fam in
  let log2m = fam.log2m in
  let h = Universal.hash fam.hash v in
  let j = Int64.to_int (Int64.shift_right_logical h (64 - log2m)) in
  let rest = Int64.to_int h land ((1 lsl (64 - log2m)) - 1) in
  let rank =
    if rest = 0 then 63
    else min 63 (1 + Geometric.trailing_zeros_int rest)
  in
  (* j < 2^log2m = m = |regs| by construction. *)
  if rank > Char.code (Bytes.unsafe_get t.regs j) then begin
    Bytes.unsafe_set t.regs j (Char.unsafe_chr rank);
    true
  end
  else false

(* Equal to folding [add] (change flags discarded) with the family loads
   hoisted out of the loop. *)
let add_batch t vs =
  let fam = t.fam in
  let hash = fam.hash in
  let log2m = fam.log2m in
  let shift = 64 - log2m in
  let low_mask = (1 lsl shift) - 1 in
  let regs = t.regs in
  for i = 0 to Array.length vs - 1 do
    let h = Universal.hash hash (Array.unsafe_get vs i) in
    let j = Int64.to_int (Int64.shift_right_logical h shift) in
    let rest = Int64.to_int h land low_mask in
    let rank =
      if rest = 0 then 63
      else min 63 (1 + Geometric.trailing_zeros_int rest)
    in
    if rank > Char.code (Bytes.unsafe_get regs j) then
      Bytes.unsafe_set regs j (Char.unsafe_chr rank)
  done

let merge_into ~dst src =
  for j = 0 to dst.fam.m - 1 do
    let a = Bytes.get dst.regs j and b = Bytes.get src.regs j in
    if Char.code b > Char.code a then Bytes.set dst.regs j b
  done

(* Bias-correction constant.  Only [m >= 16] is constructible
   ({!family_custom} rejects smaller register counts), so the asymptotic
   formula is reached only for [m >= 128] where it is accurate; the
   [m <= 16] clamp keeps the function total (and unbiased-by-accident)
   should a smaller count ever be computed with. *)
let alpha m =
  if m <= 16 then 0.673
  else if m = 32 then 0.697
  else if m = 64 then 0.709
  else 0.7213 /. (1.0 +. (1.079 /. Float.of_int m))

(* 2^-r for every possible register value, exact; replaces a
   transcendental [2.0 ** Float.of_int (-r)] per register per estimate. *)
let inv_pow2 = Array.init 64 (fun r -> Float.ldexp 1.0 (-r))

let estimate t =
  let m = t.fam.m in
  let regs = t.regs in
  let sum = ref 0.0 and zeros = ref 0 in
  for j = 0 to m - 1 do
    let r = Char.code (Bytes.unsafe_get regs j) in
    sum := !sum +. Array.unsafe_get inv_pow2 r;
    if r = 0 then incr zeros
  done;
  let mf = Float.of_int m in
  (* Small range blends towards linear counting on the zero-register
     count instead of hard-switching at 2.5m — see
     [Estimators.linear_blend] for the crossfade and the zeros = 0
     fallback. *)
  let raw = alpha m *. mf *. mf /. !sum in
  let classic = Estimators.linear_blend ~m:mf ~empty:!zeros ~raw in
  match t.fam.estimator with
  | Sketch_intf.Classic -> classic
  | Sketch_intf.Mle ->
    let counts = t.scratch in
    Array.fill counts 0 64 0;
    for j = 0 to m - 1 do
      let r = Char.code (Bytes.unsafe_get regs j) in
      counts.(r) <- counts.(r) + 1
    done;
    mf *. Estimators.hll ~counts ~init:(classic /. mf)

let size_bytes t = t.fam.m

(* Each register of the target exceeding the receiver's ships as a
   (register index, value) pair: 3 bytes. *)
let delta_bytes ~from target =
  let missing = ref 0 in
  for j = 0 to target.fam.m - 1 do
    if Char.code (Bytes.get target.regs j) > Char.code (Bytes.get from.regs j)
    then incr missing
  done;
  3 * !missing

let equal a b = Bytes.equal a.regs b.regs

let family_of t = t.fam

let to_bytes t = Bytes.copy t.regs

let of_bytes fam buf =
  if Bytes.length buf <> fam.m then
    invalid_arg "Hyperloglog.of_bytes: buffer length does not match the family";
  Bytes.iter
    (fun c ->
      if Char.code c > 63 then
        invalid_arg "Hyperloglog.of_bytes: register value out of range")
    buf;
  { fam; regs = Bytes.copy buf; scratch = Array.make 64 0 }

(* The uniform (alpha, delta, seed) constructor pair: the paper's
   parameter names over the (accuracy, confidence) sizing above. *)

let family_of_params ~alpha ~delta ~seed =
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Hyperloglog.family_of_params: delta must be in (0,1)";
  family
    ~rng:(Wd_hashing.Rng.create seed)
    ~accuracy:alpha
    ~confidence:(1.0 -. delta)

let of_params ~alpha ~delta ~seed =
  create (family_of_params ~alpha ~delta ~seed)
