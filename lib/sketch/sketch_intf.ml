(** Common signature of mergeable distinct-counting summaries.

    Section 4.2 of the paper observes that the distinct-count tracking
    protocols need nothing from the Flajolet–Martin structure beyond
    "adding new items, merging two sketches and outputting the approximate
    number of distinct items"; any such structure can be substituted.  The
    tracker ({!Wd_protocol.Dc_tracker.Make}) is therefore a functor over this
    signature, and {!Fm}, {!Bjkst} and {!Hyperloglog} all implement it.

    A {e family} fixes the hash functions and the dimensioning of the
    summary.  Sketches are mergeable only within one family: every site and
    the coordinator of a tracking protocol share a single family, mirroring
    the shared public hash functions of the paper's model. *)

type estimator = Classic | Mle
(** How a family turns summary state into a distinct-count estimate.

    [Classic] is each sketch's textbook bias-corrected estimator (with
    the blended linear-counting crossover of {!Estimators.linear_blend}
    in the small range).  [Mle] is the Clifford–Cosma maximum-likelihood
    estimator over the same state ({!Estimators}): strictly tighter in
    the observed-information sense, hence fewer spurious threshold
    crossings in the tracking protocols.

    The estimator is {e family} state, set with each sketch module's
    [with_estimator]: the summary representation, [add] and [merge_into]
    are identical under both, so sketches from [with_estimator Mle fam]
    merge exactly like their [Classic] siblings and the estimate of a
    merged sketch is the estimator applied to the merged state — MLE is
    merge-compatible by construction, which the protocols rely on
    (state merges first, estimation happens at the coordinator). *)

module type DISTINCT_SKETCH = sig
  type family
  (** Shared hash functions and dimensioning. *)

  type t
  (** A mutable summary of a set of items. *)

  val name : string
  (** Short human-readable name ("fm", "bjkst", "hll"). *)

  val family : rng:Wd_hashing.Rng.t -> accuracy:float -> confidence:float ->
    family
  (** [family ~rng ~accuracy ~confidence] draws hash functions from [rng]
      and sizes the summary so that [estimate] is within a [1 +/- accuracy]
      factor of the true distinct count with probability at least
      [confidence].  Requires [0 < accuracy < 1] and [0 < confidence < 1]. *)

  val family_of_params : alpha:float -> delta:float -> seed:int -> family
  (** {!family} under the paper's parameter names: relative error
      [alpha], failure probability [delta = 1 - confidence], hash
      functions drawn from a fresh generator seeded with [seed].
      Requires [0 < alpha < 1] and [0 < delta < 1]. *)

  val create : family -> t
  (** [create fam] is an empty summary of the family [fam]. *)

  val of_params : alpha:float -> delta:float -> seed:int -> t
  (** [create (family_of_params ~alpha ~delta ~seed)]: the uniform
      one-call constructor every sketch module provides. *)

  val copy : t -> t
  (** Deep copy; subsequent mutations of either side are independent. *)

  val add : t -> int -> bool
  (** [add t v] inserts item [v] and reports whether the summary changed.
      Duplicate insertions are no-ops on the summarized set (this is the
      duplicate-resilience the paper builds on) and always return [false];
      a [false] result lets callers skip estimate recomputation and, in the
      tracking protocols, skip threshold checks that cannot fire. *)

  val add_batch : t -> int array -> unit
  (** [add_batch t vs] inserts every element of [vs] in order.
      Observationally equal to folding {!add} over [vs] with the change
      flags discarded, but with hash state and bounds checks hoisted out
      of the per-item loop — the preferred entry point when a caller
      already holds a chunk of arrivals (the batched simulator, bulk
      loaders, benchmarks). *)

  val merge_into : dst:t -> t -> unit
  (** [merge_into ~dst src] makes [dst] summarize the union of both input
      sets.  Requires both sketches to belong to the same family. *)

  val estimate : t -> float
  (** Approximate number of distinct items inserted (union semantics). *)

  val size_bytes : t -> int
  (** Wire size of the summary in bytes, as counted by the paper's
      byte-for-byte communication accounting. *)

  val delta_bytes : from:t -> t -> int
  (** [delta_bytes ~from target] is the wire size of the information in
      [target] that is missing from [from] — the cost of bringing a
      receiver that holds [from] up to [target] by shipping only the
      difference (Section 4.2 mentions this delta encoding between
      subsequent sketches).  Zero when [target] adds nothing.  Both
      summaries must belong to the same family, and [from] must be
      dominated by (mergeable into) the receiver's true state for the
      delta to be lossless — which holds whenever [from] is a snapshot
      the receiver is known to have reached. *)

  val equal : t -> t -> bool
  (** Structural equality of summary contents (same family assumed).  Used
      by trackers to skip sending a sketch that cannot change the
      coordinator's state. *)
end
