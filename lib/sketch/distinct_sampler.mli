(** Gibbons–Tirthapura distinct sampling (VLDB 2001 / SPAA 2001).

    Maintains a uniform sample of the {e distinct} items of a stream,
    together with the exact number of occurrences of each sampled item
    (Section 3.3 of the paper).  A geometric hash assigns each item a level;
    the sampler retains every item whose level is at least the current
    sampling level [l], with its count.  When more than [threshold] items
    are retained, [l] is incremented and items below the new level are
    discarded — each increment halves the expected retained fraction [2^-l].

    Because the retained set is a deterministic function of the item set and
    the hash, two samplers of the same family can be merged into exactly the
    sampler a single site would have produced (the property the distributed
    protocols simulate at the coordinator).

    [|sample| * 2^l] is an unbiased estimate of the distinct count, and the
    sample supports the inverse-distribution queries of Section 6. *)

type family
(** Shared hash function and threshold [T]. *)

type t

val family : rng:Wd_hashing.Rng.t -> threshold:int -> family
(** [family ~rng ~threshold] draws the level hash.  Requires
    [threshold >= 1]. *)

val family_of_params : alpha:float -> delta:float -> seed:int -> family
(** Chooses [threshold = ceil ((1/alpha)^2 * ln (1/delta))] per the
    paper's [T = Omega(1/alpha^2 log 1/delta)], with the level hash
    drawn from a fresh generator seeded with [seed]. *)

val threshold : family -> int

val create : family -> t

val of_params : alpha:float -> delta:float -> seed:int -> t
(** [create (family_of_params ~alpha ~delta ~seed)]. *)

val copy : t -> t

val level : t -> int
(** Current sampling level [l]; an item is retained iff its geometric hash
    level is [>= l]. *)

val item_level : t -> int -> int
(** [item_level t v] is the geometric level of [v] under the family hash
    (independent of the sampler state). *)

val add : t -> int -> unit
(** [add t v] processes one arrival of [v]: retained items get their count
    incremented; over-threshold states trigger level increments. *)

val add_count : t -> int -> int -> unit
(** [add_count t v c] processes [c] arrivals at once.  [c >= 0]. *)

val add_batch : t -> int array -> unit
(** [add_batch t vs] processes one arrival of every element of [vs], in
    order; equal to folding {!add} with per-item overhead hoisted. *)

val delete : t -> int -> unit
(** [delete t v] processes one deletion of [v] (the paper's Section 8
    notes the extension to deletions).  Because the retained set is a
    deterministic function of the {e current} item multiset and the hash,
    removing the last copy of a retained item keeps the sample a uniform
    sample of the remaining distinct items.  The level [l] never
    decreases, so heavy deletion shrinks the sample below [threshold]
    and widens the estimate's variance rather than biasing it.

    Deleting an item that is not retained is a silent no-op when the
    item's level is below [l] (its copies were never tracked at this
    level); deleting a retained item below count zero raises
    [Invalid_argument] — deletions must not outnumber insertions. *)

val delete_count : t -> int -> int -> unit
(** [delete_count t v c] processes [c] deletions at once.  [c >= 0]. *)

val set_level : t -> int -> unit
(** [set_level t l] raises the sampling level to [l] (no-op if already
    [>= l]), discarding retained items below it.  Used by remote sites when
    the coordinator broadcasts a new level. *)

val mem : t -> int -> bool
(** Whether [v] is currently retained. *)

val count : t -> int -> int
(** Retained count of [v] ([0] if not retained). *)

val size : t -> int
(** Number of retained items; always [<= threshold]. *)

val contents : t -> (int * int) list
(** Retained [(item, count)] pairs, unordered. *)

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] applies [f item count] to each retained pair. *)

val estimate_distinct : t -> float
(** [size * 2^level]: unbiased distinct-count estimate. *)

val merge_into : dst:t -> t -> unit
(** Union-merge (Section 3.3): levels are reconciled to the maximum, counts
    of common items are summed, and threshold overflow triggers further
    level increments.  The result is identical to processing both input
    streams through a single sampler. *)

val size_bytes : t -> int
(** Wire size: 16 bytes per retained pair (item + count). *)

(** {1 Serialization} — 1-byte level, 4-byte pair count, then 16-byte
    (item, count) pairs; order-insensitive. *)

val to_bytes : t -> bytes

val of_bytes : family -> bytes -> t
(** Raises [Invalid_argument] on a malformed buffer, a pair that the
    level rule would not retain, or a non-positive count. *)
