(** BJKST / k-minimum-values distinct-count summary.

    Bar-Yossef, Jayram, Kumar, Sivakumar & Trevisan (RANDOM 2002), in the
    k-minimum-values formulation: keep the [k] smallest hash values seen;
    if the k-th smallest normalized hash is [v_k] then [(k - 1) / v_k]
    estimates the distinct count.  Standard error is [~1/sqrt k].

    Mergeable (union of the value sets, re-truncated to the [k] smallest),
    duplicate-resilient (hash values are a function of the item), and
    monotone under merging — everything {!Sketch_intf.DISTINCT_SKETCH}
    requires.  Cited by the paper (Section 4.2) as a drop-in replacement for
    the FM sketch; the bench suite uses it for the sketch-type ablation. *)

type family
type t

val name : string

val family :
  rng:Wd_hashing.Rng.t -> accuracy:float -> confidence:float -> family
(** Sizes [k ~= (1 / accuracy)^2 * ln (1 / (1 - confidence))]. *)

val family_custom : rng:Wd_hashing.Rng.t -> k:int -> family
(** Keep exactly the [k] smallest hash values.  Requires [k >= 1]. *)

val family_of_params : alpha:float -> delta:float -> seed:int -> family
(** {!family} under the paper's parameter names: relative error [alpha],
    failure probability [delta = 1 - confidence], hashes drawn from a
    fresh generator seeded with [seed]. *)


val k : family -> int

val with_estimator : Sketch_intf.estimator -> family -> family
(** [with_estimator e fam] selects the estimate computation (default
    [Classic]: the unbiased [(k-1)/u_k]; [Mle]: the order-statistic
    maximum-likelihood [k/u_k - 1]).  The retained value set, [add] and
    [merge_into] are estimator-independent, so MLE composes with
    merging. *)

val estimator : family -> Sketch_intf.estimator

val create : family -> t
val of_params : alpha:float -> delta:float -> seed:int -> t
(** [create (family_of_params ~alpha ~delta ~seed)]. *)

val copy : t -> t

(** [add t v] inserts the item; [true] iff the retained value set changed. *)
val add : t -> int -> bool

val add_batch : t -> int array -> unit
(** [add_batch t vs] inserts every element of [vs]; equal to folding
    {!add} with the change flags discarded. *)

val merge_into : dst:t -> t -> unit
val estimate : t -> float
val size_bytes : t -> int
(** 8 bytes per stored hash value: [8 * min k (distinct items seen)]. *)

val delta_bytes : from:t -> t -> int
(** 8 bytes per retained hash value of the target missing from [from]. *)

val equal : t -> t -> bool
val family_of : t -> family

(** {1 Serialization} — a 4-byte count followed by the retained hash
    values, 8 bytes each (order-insensitive). *)

val to_bytes : t -> bytes

val of_bytes : family -> bytes -> t
(** Raises [Invalid_argument] on a malformed buffer or more values than
    the family's [k]. *)
