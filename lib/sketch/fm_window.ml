module Rng = Wd_hashing.Rng
module Universal = Wd_hashing.Universal
module Geometric = Wd_hashing.Geometric

let levels = 64

type family = { m : int; bucket_hash : Universal.t; level_hash : Universal.t }

(* cells.(j * levels + l) is the latest time bit l of bitmap j was set,
   or -1 if never. *)
type t = { fam : family; cells : int array }

let family_custom ~rng ~bitmaps =
  if bitmaps < 1 then invalid_arg "Fm_window.family_custom: bitmaps must be >= 1";
  { m = bitmaps; bucket_hash = Universal.of_rng rng; level_hash = Universal.of_rng rng }

let family ~rng ~accuracy ~confidence =
  if accuracy <= 0.0 || accuracy >= 1.0 then
    invalid_arg "Fm_window.family: accuracy must be in (0,1)";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Fm_window.family: confidence must be in (0,1)";
  let delta = 1.0 -. confidence in
  let base = (0.78 /. accuracy) ** 2.0 in
  let m =
    int_of_float (Float.ceil (base *. Float.max 1.0 (Float.log (1.0 /. delta))))
  in
  family_custom ~rng ~bitmaps:(max 1 m)

let bitmaps fam = fam.m

let create fam = { fam; cells = Array.make (fam.m * levels) (-1) }

let copy t = { t with cells = Array.copy t.cells }

let add t ~time v =
  if time < 0 then invalid_arg "Fm_window.add: time must be >= 0";
  let fam = t.fam in
  let j = Universal.to_range fam.bucket_hash ~buckets:fam.m v in
  let l = Geometric.level fam.level_hash v in
  let idx = (j * levels) + l in
  if time > t.cells.(idx) then begin
    t.cells.(idx) <- time;
    true
  end
  else false

let estimate t ~now ~window =
  if window <= 0 then 0.0
  else begin
    let fam = t.fam in
    let cutoff = max 0 (now - window + 1) in
    (* A bit is alive iff ever set (>= 0) and last set within the window. *)
    let sum = ref 0 and empty = ref 0 in
    for j = 0 to fam.m - 1 do
      let z = ref 0 in
      while
        !z < levels && t.cells.((j * levels) + !z) >= cutoff
      do
        incr z
      done;
      sum := !sum + !z;
      if !z = 0 then incr empty
    done;
    let m = Float.of_int fam.m in
    let mean_z = Float.of_int !sum /. m in
    let raw = m *. (2.0 ** mean_z) /. Fm_bitmap.phi in
    if fam.m > 1 && !empty > 0 && raw < 2.5 *. m then
      m *. Float.log (m /. Float.of_int !empty)
    else raw
  end

let estimate_all t = estimate t ~now:0 ~window:max_int

let merge_into ~dst src =
  Array.iteri
    (fun idx time -> if time > dst.cells.(idx) then dst.cells.(idx) <- time)
    src.cells

let equal a b = a.cells = b.cells

let size_bytes t =
  let occupied = Array.fold_left (fun acc c -> if c >= 0 then acc + 1 else acc) 0 t.cells in
  8 * occupied

let delta_bytes ~from target =
  let missing = ref 0 in
  Array.iteri
    (fun idx time -> if time > from.cells.(idx) then incr missing)
    target.cells;
  8 * !missing

(* The uniform (alpha, delta, seed) constructor pair: the paper's
   parameter names over the (accuracy, confidence) sizing above. *)

let family_of_params ~alpha ~delta ~seed =
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Fm_window.family_of_params: delta must be in (0,1)";
  family
    ~rng:(Wd_hashing.Rng.create seed)
    ~accuracy:alpha
    ~confidence:(1.0 -. delta)

let of_params ~alpha ~delta ~seed =
  create (family_of_params ~alpha ~delta ~seed)
