(** Sliding-window Flajolet–Martin sketch.

    The paper's Section 8 notes that the tracking results "can be
    extended to handling ... sliding window semantics".  This module is
    the standard construction enabling that: each FM bit carries the
    {e most recent} timestamp at which it was set, so the sketch can
    answer "how many distinct items arrived in the last [window] time
    units" for {e any} window at query time — a bit counts as set for a
    window iff its timestamp falls inside it.

    Merging takes the pointwise maximum of timestamps, so the structure
    is exactly as mergeable (and duplicate-resilient) as the plain FM
    sketch, and a union of site sketches answers windowed distinct counts
    over the union stream.

    Timestamps are caller-supplied integers (event indices or clock
    ticks); they need not be strictly monotone — [max] reconciles
    out-of-order arrivals. *)

type family
type t

val family_custom : rng:Wd_hashing.Rng.t -> bitmaps:int -> family
(** Stochastic-averaging layout: one bucket hash splits items over
    [bitmaps] timestamp-bitmaps, one level hash supplies geometric
    levels.  Requires [bitmaps >= 1]. *)

val family : rng:Wd_hashing.Rng.t -> accuracy:float -> confidence:float ->
  family
(** Same sizing rule as {!Fm.family}. *)

val family_of_params : alpha:float -> delta:float -> seed:int -> family
(** {!family} under the paper's parameter names: relative error [alpha],
    failure probability [delta = 1 - confidence], hashes drawn from a
    fresh generator seeded with [seed]. *)


val bitmaps : family -> int

val create : family -> t
val of_params : alpha:float -> delta:float -> seed:int -> t
(** [create (family_of_params ~alpha ~delta ~seed)]. *)

val copy : t -> t

val add : t -> time:int -> int -> bool
(** [add t ~time v] records an arrival of [v] at [time] (a non-negative
    integer); [true] iff some cell's timestamp advanced. *)

val estimate : t -> now:int -> window:int -> float
(** [estimate t ~now ~window] estimates the number of distinct items
    among arrivals with [time > now - window].  [window <= 0] gives 0;
    a [window] larger than [now] covers the whole history. *)

val estimate_all : t -> float
(** Distinct estimate over the whole history (infinite window). *)

val merge_into : dst:t -> t -> unit
val equal : t -> t -> bool

val size_bytes : t -> int
(** Wire size: 8 bytes per cell that has ever been set (a (bitmap,
    level, timestamp) record). *)

val delta_bytes : from:t -> t -> int
(** 8 bytes per cell of the target whose timestamp exceeds [from]'s. *)
