module Rng = Wd_hashing.Rng
module Universal = Wd_hashing.Universal

type family = { k : int; hash : Universal.t; estimator : Sketch_intf.estimator }

(* The k smallest hash values, as a max-heap of unsigned 64-bit words so the
   largest retained value is evicted in O(log k); a hash set mirrors the heap
   for duplicate suppression. *)
type t = {
  fam : family;
  heap : int64 array; (* max-heap on unsigned compare; [0, size) live *)
  mutable size : int;
  members : (int64, unit) Hashtbl.t;
}

let name = "bjkst"

let family_custom ~rng ~k =
  if k < 1 then invalid_arg "Bjkst.family_custom: k must be >= 1";
  { k; hash = Universal.of_rng rng; estimator = Sketch_intf.Classic }

let with_estimator estimator fam = { fam with estimator }
let estimator fam = fam.estimator

let family ~rng ~accuracy ~confidence =
  if accuracy <= 0.0 || accuracy >= 1.0 then
    invalid_arg "Bjkst.family: accuracy must be in (0,1)";
  let delta = 1.0 -. confidence in
  let k =
    int_of_float
      (Float.ceil
         ((1.0 /. accuracy) ** 2.0 *. Float.max 1.0 (Float.log (1.0 /. delta))))
  in
  family_custom ~rng ~k:(max 2 k)

let k fam = fam.k

let create fam =
  { fam; heap = Array.make fam.k 0L; size = 0; members = Hashtbl.create (2 * fam.k) }

let copy t =
  { t with heap = Array.copy t.heap; members = Hashtbl.copy t.members }

let ult a b = Int64.unsigned_compare a b < 0

let sift_up t i0 =
  let i = ref i0 in
  while !i > 0 && ult t.heap.((!i - 1) / 2) t.heap.(!i) do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let largest = ref !i in
    if l < t.size && ult t.heap.(!largest) t.heap.(l) then largest := l;
    if r < t.size && ult t.heap.(!largest) t.heap.(r) then largest := r;
    if !largest = !i then continue := false
    else begin
      let tmp = t.heap.(!i) in
      t.heap.(!i) <- t.heap.(!largest);
      t.heap.(!largest) <- tmp;
      i := !largest
    end
  done

let insert_hash t h =
  if Hashtbl.mem t.members h then false
  else if t.size < t.fam.k then begin
    t.heap.(t.size) <- h;
    t.size <- t.size + 1;
    Hashtbl.replace t.members h ();
    sift_up t (t.size - 1);
    true
  end
  else if ult h t.heap.(0) then begin
    Hashtbl.remove t.members t.heap.(0);
    t.heap.(0) <- h;
    Hashtbl.replace t.members h ();
    sift_down t;
    true
  end
  else false

let add t v = insert_hash t (Universal.hash t.fam.hash v)

(* Equal to folding [add] (change flags discarded); the hash function
   load is hoisted out of the loop. *)
let add_batch t vs =
  let hash = t.fam.hash in
  for i = 0 to Array.length vs - 1 do
    ignore (insert_hash t (Universal.hash hash (Array.unsafe_get vs i)) : bool)
  done

let merge_into ~dst src =
  for i = 0 to src.size - 1 do
    ignore (insert_hash dst src.heap.(i) : bool)
  done

(* Normalize an unsigned 64-bit word into (0, 1]. *)
let normalized h =
  let top53 = Int64.to_float (Int64.shift_right_logical h 11) in
  (top53 +. 1.0) /. 9007199254740992.0

let estimate t =
  if t.size = 0 then 0.0
  else if t.size < t.fam.k then Float.of_int t.size
  else begin
    (* kth smallest value is the heap root (max of the retained minima). *)
    let u = normalized t.heap.(0) in
    match t.fam.estimator with
    | Sketch_intf.Classic -> Float.of_int (t.fam.k - 1) /. u
    | Sketch_intf.Mle ->
      (* The likelihood of the kth order statistic of n uniforms,
         C(n,k) k u^(k-1) (1-u)^(n-k), is maximized over n at
         n ~= k/u - 1 (the integer MLE is its floor): the Clifford-Cosma
         counterpart for KMV, against the classical unbiased (k-1)/u. *)
      (Float.of_int t.fam.k /. u) -. 1.0
  end

let size_bytes t = 8 * t.size

(* Each hash value of the target the receiver lacks ships whole. *)
let delta_bytes ~from target =
  let missing = ref 0 in
  for i = 0 to target.size - 1 do
    if not (Hashtbl.mem from.members target.heap.(i)) then incr missing
  done;
  8 * !missing

let equal a b =
  a.size = b.size
  && Hashtbl.fold (fun h () acc -> acc && Hashtbl.mem b.members h) a.members true

let family_of t = t.fam

let to_bytes t =
  let buf = Bytes.create (4 + (8 * t.size)) in
  Bytes.set_int32_le buf 0 (Int32.of_int t.size);
  for i = 0 to t.size - 1 do
    Bytes.set_int64_le buf (4 + (8 * i)) t.heap.(i)
  done;
  buf

let of_bytes fam buf =
  if Bytes.length buf < 4 then invalid_arg "Bjkst.of_bytes: truncated buffer";
  let n = Int32.to_int (Bytes.get_int32_le buf 0) in
  if n < 0 || n > fam.k then
    invalid_arg "Bjkst.of_bytes: value count out of range";
  if Bytes.length buf <> 4 + (8 * n) then
    invalid_arg "Bjkst.of_bytes: buffer length does not match the count";
  let t = create fam in
  for i = 0 to n - 1 do
    insert_hash t (Bytes.get_int64_le buf (4 + (8 * i))) |> ignore
  done;
  t

(* The uniform (alpha, delta, seed) constructor pair: the paper's
   parameter names over the (accuracy, confidence) sizing above. *)

let family_of_params ~alpha ~delta ~seed =
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Bjkst.family_of_params: delta must be in (0,1)";
  family
    ~rng:(Wd_hashing.Rng.create seed)
    ~accuracy:alpha
    ~confidence:(1.0 -. delta)

let of_params ~alpha ~delta ~seed =
  create (family_of_params ~alpha ~delta ~seed)
