(* Shared estimation machinery for the distinct sketches: the blended
   linear-counting crossover used by every Classic estimate, and the
   Clifford–Cosma maximum-likelihood solvers used by the Mle estimates.
   All tables are precomputed at module init so the per-estimate work is
   table lookups, [expm1] and a short Newton/bisection loop — no
   allocation beyond the caller-owned counts scratch. *)

let lc_low = 2.0
let lc_high = 3.0

(* Crossfade between linear counting on the empty-bucket fraction and
   the bias-corrected raw estimate over raw/m in [lc_low, lc_high],
   instead of hard-switching at raw = 2.5m: a hard switch makes the
   estimate jump by the (nonzero) gap between the two estimators exactly
   where a threshold protocol is most likely to sit, and a jump across
   the threshold is a spurious send.  When [empty = 0] linear counting
   is undefined (log of m/0), so the raw estimate is used regardless of
   how small it is — the explicit low-raw fallback documented in
   [Fm.estimate]. *)
let linear_blend ~m ~empty ~raw =
  if empty <= 0 || m <= 1.0 then raw
  else begin
    let lc = m *. Float.log (m /. Float.of_int empty) in
    if raw <= lc_low *. m then lc
    else if raw >= lc_high *. m then raw
    else begin
      let w = ((raw /. m) -. lc_low) /. (lc_high -. lc_low) in
      ((1.0 -. w) *. lc) +. (w *. raw)
    end
  end

(* Both likelihood scores below share one canonical shape.  Under
   Poissonization with per-bucket intensity [lambda], the derivative of
   the log-likelihood aggregated over bucket-value counts is

     f(lambda) = sum_i a.(i) * w.(i) / expm1 (lambda * w.(i)) - total

   with nonnegative integer coefficients [a] and positive [total]: a
   strictly decreasing function of [lambda] falling from +inf to
   [-total], so the MLE is its unique root and safeguarded Newton
   (bisection fallback inside a maintained bracket) cannot diverge.
   Terms with [lambda * w > 45] contribute < 3e-20 and are skipped,
   which also keeps the [exp] in the derivative finite. *)
let solve ~w ~a ~total ~init =
  let n = Array.length a in
  let any = ref false in
  for i = 0 to n - 1 do
    if Array.unsafe_get a i > 0 then any := true
  done;
  if not !any then 0.0
  else begin
    let eval lambda =
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        let ai = Array.unsafe_get a i in
        if ai > 0 then begin
          let wi = Array.unsafe_get w i in
          let x = lambda *. wi in
          if x < 45.0 then
            s := !s +. (Float.of_int ai *. wi /. Float.expm1 x)
        end
      done;
      !s -. total
    in
    let eval' lambda =
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        let ai = Array.unsafe_get a i in
        if ai > 0 then begin
          let wi = Array.unsafe_get w i in
          let x = lambda *. wi in
          if x < 45.0 then begin
            let e = Float.expm1 x in
            s := !s -. (Float.of_int ai *. wi *. wi *. (e +. 1.0) /. (e *. e))
          end
        end
      done;
      !s
    in
    let lo = ref 0.0 and hi = ref (if init > 0.0 then init else 1.0) in
    let rounds = ref 0 in
    while eval !hi > 0.0 && !rounds < 300 do
      lo := !hi;
      hi := !hi *. 2.0;
      incr rounds
    done;
    let lambda = ref (0.5 *. (!lo +. !hi)) in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < 80 do
      incr iter;
      let f = eval !lambda in
      if f > 0.0 then lo := !lambda else hi := !lambda;
      let f' = eval' !lambda in
      let next = if f' < 0.0 then !lambda -. (f /. f') else 0.5 *. (!lo +. !hi) in
      let next = if next > !lo && next < !hi then next else 0.5 *. (!lo +. !hi) in
      if Float.abs (next -. !lambda) <= 1e-10 *. Float.max next 1.0 then
        converged := true;
      lambda := next
    done;
    !lambda
  end

(* P(level = i) = 2^-(i+1): bit i of an FM bitmap with intensity lambda
   is set with probability 1 - exp (-lambda * w i), w i = 2^-(i+1).
   Observing lowest zero z has log-likelihood
   sum_{i<z} log (1 - exp (-lambda * w i)) - lambda * w z. *)
let fm_weights = Array.init 65 (fun i -> Float.ldexp 1.0 (-(i + 1)))

let fm ~counts ~init =
  if Array.length counts < 65 then
    invalid_arg "Estimators.fm: counts must have length >= 65";
  let total = ref 0.0 in
  for z = 0 to 64 do
    total :=
      !total +. (Float.of_int (Array.unsafe_get counts z) *. fm_weights.(z))
  done;
  (* In place: counts.(i) becomes the number of observations with z > i,
     the coefficient of the log (1 - e^-lambda.w_i) terms. *)
  let acc = ref 0 in
  for i = 64 downto 0 do
    let c = counts.(i) in
    counts.(i) <- !acc;
    acc := !acc + c
  done;
  solve ~w:fm_weights ~a:counts ~total:!total ~init

(* P(register = r) = e^(-lambda * x_r) * (1 - e^(-lambda * x_r)) for
   r >= 1 with x_r = 2^-r, and e^-lambda for r = 0 (Poissonized HLL
   register law). *)
let hll_weights = Array.init 64 (fun r -> Float.ldexp 1.0 (-r))

let hll ~counts ~init =
  if Array.length counts < 64 then
    invalid_arg "Estimators.hll: counts must have length >= 64";
  let total = ref 0.0 in
  for r = 0 to 63 do
    total :=
      !total +. (Float.of_int (Array.unsafe_get counts r) *. hll_weights.(r))
  done;
  (* The r = 0 likelihood term is linear in lambda (coefficient folded
     into [total]); only r >= 1 contributes an expm1 term. *)
  counts.(0) <- 0;
  solve ~w:hll_weights ~a:counts ~total:!total ~init
