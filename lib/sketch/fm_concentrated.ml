module Rng = Wd_hashing.Rng
module Mixed_tabulation = Wd_hashing.Mixed_tabulation
module Geometric = Wd_hashing.Geometric

type family = {
  m : int;
  hash : Mixed_tabulation.t;
  estimator : Sketch_intf.estimator;
  frac_pow : float array; (* frac_pow.(r) = 2^(r/m), see Fm.pow2_mean *)
}

(* [scratch] is the MLE counts buffer, as in {!Fm}. *)
type t = { fam : family; bitmaps : Fm_bitmap.t array; scratch : int array }

let name = "fmc"

let family_custom ~rng ~buckets =
  if buckets < 1 then
    invalid_arg "Fm_concentrated.family_custom: buckets must be >= 1";
  {
    m = buckets;
    hash = Mixed_tabulation.create rng;
    estimator = Sketch_intf.Classic;
    frac_pow =
      Array.init buckets (fun r ->
          2.0 ** (Float.of_int r /. Float.of_int buckets));
  }

let family ~rng ~accuracy ~confidence =
  if accuracy <= 0.0 || accuracy >= 1.0 then
    invalid_arg "Fm_concentrated.family: accuracy must be in (0,1)";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Fm_concentrated.family: confidence must be in (0,1)";
  let delta = 1.0 -. confidence in
  family_custom ~rng
    ~buckets:(Mixed_tabulation.concentrated_buckets ~alpha:accuracy ~delta)

let buckets fam = fam.m
let with_estimator estimator fam = { fam with estimator }
let estimator fam = fam.estimator

let create fam =
  {
    fam;
    bitmaps = Array.init fam.m (fun _ -> Fm_bitmap.create ());
    scratch = Array.make 65 0;
  }

let copy t =
  { t with bitmaps = Array.map Fm_bitmap.copy t.bitmaps; scratch = Array.make 65 0 }

(* One mixed-tabulation hash per item supplies both coordinates: bucket
   from the high 32 bits (mod m), level from the trailing zeros of the
   low 32 bits — the PCSA split, but through a family strong enough that
   no averaging over independent repetitions is needed.  Levels cap at
   32, bounding each bucket near 2^32 phi; with m >= 16 buckets the
   sketch range exceeds any int stream this code can see. *)
let coords fam v =
  let h = Mixed_tabulation.hash fam.hash v in
  let j = Int64.to_int (Int64.shift_right_logical h 32) mod fam.m in
  let low = Int64.to_int h land 0xFFFFFFFF in
  let level = if low = 0 then 32 else Geometric.trailing_zeros_int low in
  (j, level)

let add t v =
  let j, level = coords t.fam v in
  Fm_bitmap.add_level t.bitmaps.(j) level

(* Equal to folding [add] (change flags discarded) with the hash tables
   and bounds checks hoisted out of the loop. *)
let add_batch t vs =
  let fam = t.fam in
  let hash = fam.hash in
  let m = fam.m in
  let bitmaps = t.bitmaps in
  for i = 0 to Array.length vs - 1 do
    let h = Mixed_tabulation.hash hash (Array.unsafe_get vs i) in
    let j = Int64.to_int (Int64.shift_right_logical h 32) mod m in
    let low = Int64.to_int h land 0xFFFFFFFF in
    let level = if low = 0 then 32 else Geometric.trailing_zeros_int low in
    ignore (Fm_bitmap.add_level (Array.unsafe_get bitmaps j) level : bool)
  done

let merge_into ~dst src =
  if dst.fam != src.fam && dst.fam <> src.fam then
    invalid_arg "Fm_concentrated.merge_into: sketches from different families";
  Array.iteri
    (fun j bm -> Fm_bitmap.merge_into ~dst:dst.bitmaps.(j) bm)
    src.bitmaps

let pow2_mean fam sum =
  Float.ldexp fam.frac_pow.(sum mod fam.m) (sum / fam.m)

let estimate t =
  let fam = t.fam in
  let sum = ref 0 and empty = ref 0 in
  for j = 0 to fam.m - 1 do
    let bm = Array.unsafe_get t.bitmaps j in
    sum := !sum + Fm_bitmap.lowest_zero bm;
    if Fm_bitmap.is_empty bm then incr empty
  done;
  let m = Float.of_int fam.m in
  let raw = m *. pow2_mean fam !sum /. Fm_bitmap.phi in
  let classic = Estimators.linear_blend ~m ~empty:!empty ~raw in
  match fam.estimator with
  | Sketch_intf.Classic -> classic
  | Sketch_intf.Mle ->
    let counts = t.scratch in
    Array.fill counts 0 65 0;
    for j = 0 to fam.m - 1 do
      let z = Fm_bitmap.lowest_zero (Array.unsafe_get t.bitmaps j) in
      counts.(z) <- counts.(z) + 1
    done;
    m *. Estimators.fm ~counts ~init:(classic /. m)

let size_bytes t = Fm_bitmap.size_bytes * t.fam.m

(* Each missing bit ships as a (bucket index, level) coordinate: 4 bytes,
   as in {!Fm.delta_bytes}. *)
let delta_bytes ~from target =
  let missing = ref 0 in
  for j = 0 to target.fam.m - 1 do
    let extra =
      Int64.logand
        (Fm_bitmap.bits target.bitmaps.(j))
        (Int64.lognot (Fm_bitmap.bits from.bitmaps.(j)))
    in
    let x = ref extra in
    while !x <> 0L do
      x := Int64.logand !x (Int64.sub !x 1L);
      incr missing
    done
  done;
  4 * !missing

let equal a b =
  Array.length a.bitmaps = Array.length b.bitmaps
  && (let ok = ref true in
      Array.iteri
        (fun j bm -> if not (Fm_bitmap.equal bm b.bitmaps.(j)) then ok := false)
        a.bitmaps;
      !ok)

let is_empty t = Array.for_all Fm_bitmap.is_empty t.bitmaps

let family_of t = t.fam

let to_bytes t =
  let buf = Bytes.create (8 * t.fam.m) in
  Array.iteri
    (fun j bm -> Bytes.set_int64_le buf (8 * j) (Fm_bitmap.bits bm))
    t.bitmaps;
  buf

let of_bytes fam buf =
  if Bytes.length buf <> 8 * fam.m then
    invalid_arg "Fm_concentrated.of_bytes: buffer length does not match the family";
  {
    fam;
    bitmaps =
      Array.init fam.m (fun j ->
          Fm_bitmap.of_bits (Bytes.get_int64_le buf (8 * j)));
    scratch = Array.make 65 0;
  }

(* The uniform (alpha, delta, seed) constructor pair. *)

let family_of_params ~alpha ~delta ~seed =
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Fm_concentrated.family_of_params: delta must be in (0,1)";
  family
    ~rng:(Wd_hashing.Rng.create seed)
    ~accuracy:alpha
    ~confidence:(1.0 -. delta)

let of_params ~alpha ~delta ~seed =
  create (family_of_params ~alpha ~delta ~seed)
