(** Multi-bitmap Flajolet–Martin distinct-count sketch.

    The paper's primary sketch (Section 3.2): to reduce the variance of one
    {!Fm_bitmap}, keep [m] of them and average.  Two classical variants are
    provided:

    - [Averaged] — the variant described in the paper's Section 3.2: every
      item is inserted into all [m] bitmaps under [m] independent hash
      functions, and the estimate is [2^(mean z) / phi].  O(m) per update.
    - [Stochastic] — Flajolet–Martin's own "stochastic averaging" (PCSA):
      one hash splits items across the [m] bitmaps and a second provides
      the level, so each update touches exactly one bitmap.  The estimate is
      [m * 2^(mean z) / phi].  O(1) per update, same asymptotic accuracy.

    The default family uses [Stochastic]; the benchmark suite contains an
    ablation comparing the two.  Both variants merge by bitwise OR and give
    estimates that are monotone under merging, which the tracking protocols
    rely on. *)

type variant = Averaged | Stochastic

type family
type t

val name : string

val family :
  rng:Wd_hashing.Rng.t -> accuracy:float -> confidence:float -> family
(** Sizes [m ~= (0.78 / accuracy)^2 * ln (1 / (1 - confidence))] bitmaps,
    [Stochastic] variant.  See {!family_custom} for explicit control. *)

val family_custom :
  rng:Wd_hashing.Rng.t -> variant:variant -> bitmaps:int -> family
(** [family_custom ~rng ~variant ~bitmaps] uses exactly [bitmaps] bitmaps
    with the given update discipline.  Requires [bitmaps >= 1]. *)

val family_of_params : alpha:float -> delta:float -> seed:int -> family
(** {!family} under the paper's parameter names: relative error [alpha],
    failure probability [delta = 1 - confidence], hashes drawn from a
    fresh generator seeded with [seed]. *)

val bitmaps : family -> int
(** Number of bitmaps [m] in the family. *)

val variant : family -> variant

val with_estimator : Sketch_intf.estimator -> family -> family
(** [with_estimator e fam] is [fam] with its estimate computed by [e]
    (families default to [Classic]).  Summary state, [add] and
    [merge_into] are unchanged, so the MLE is merge-compatible: the
    estimate of a merged sketch is the MLE of the merged state. *)

val estimator : family -> Sketch_intf.estimator

val create : family -> t

val of_params : alpha:float -> delta:float -> seed:int -> t
(** [create (family_of_params ~alpha ~delta ~seed)]. *)

val copy : t -> t

(** [add t v] inserts the item; [true] iff some bitmap bit was newly set. *)
val add : t -> int -> bool

val add_batch : t -> int array -> unit
(** [add_batch t vs] inserts every element of [vs]; equal to folding
    {!add} with the change flags discarded, with the variant dispatch and
    hash loads hoisted out of the loop. *)

val merge_into : dst:t -> t -> unit

val estimate : t -> float
(** Under [Classic], the bias-corrected mean [2^(mean z) / phi] (times
    [m] for [Stochastic]).  The [Stochastic] small range blends towards
    linear counting on the empty-bitmap count: linear counting below
    [raw = 2m], raw above [raw = 3m], a continuous crossfade between —
    never a hard switch, so the estimate cannot step across a protocol
    threshold by changing regime (see {!Estimators.linear_blend}).

    When {e no} bitmap is empty the linear-counting correction is
    skipped and the raw estimate is returned {e even if} [raw < 2.5m].
    This corner is reachable — a bitmap whose only set bits lie above
    bit 0 has lowest zero 0, so all [m] bitmaps can be non-empty while
    [raw] is as small as [m / phi] — and with [empty = 0] linear
    counting has no observation to invert ([log (m / 0)]), so raw is
    the only defined estimate.  The behavior is deliberate and
    regression-tested, not an accident of guard ordering.

    Under [Mle], the Clifford–Cosma maximum-likelihood estimate from
    the per-bitmap lowest-zero counts ({!Estimators.fm}); no crossover
    exists because the likelihood already models the small range. *)

val size_bytes : t -> int
(** [8 * m] bytes: the bitmaps are the wire payload. *)

val delta_bytes : from:t -> t -> int
(** 4 bytes per bit of the target not present in [from] (a (bitmap,
    level) coordinate each). *)

val equal : t -> t -> bool
val is_empty : t -> bool

val family_of : t -> family
(** The family a sketch was created from. *)

(** {1 Serialization}

    The wire format is the raw little-endian bitmaps, [8 * m] bytes —
    exactly the {!size_bytes} the protocols charge for a sketch payload.
    Hash functions are family state and are shared out of band (all
    parties of a protocol hold the same family). *)

val to_bytes : t -> bytes

val of_bytes : family -> bytes -> t
(** Raises [Invalid_argument] if the buffer length does not match the
    family's [8 * m] bytes. *)
