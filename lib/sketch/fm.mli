(** Multi-bitmap Flajolet–Martin distinct-count sketch.

    The paper's primary sketch (Section 3.2): to reduce the variance of one
    {!Fm_bitmap}, keep [m] of them and average.  Two classical variants are
    provided:

    - [Averaged] — the variant described in the paper's Section 3.2: every
      item is inserted into all [m] bitmaps under [m] independent hash
      functions, and the estimate is [2^(mean z) / phi].  O(m) per update.
    - [Stochastic] — Flajolet–Martin's own "stochastic averaging" (PCSA):
      one hash splits items across the [m] bitmaps and a second provides
      the level, so each update touches exactly one bitmap.  The estimate is
      [m * 2^(mean z) / phi].  O(1) per update, same asymptotic accuracy.

    The default family uses [Stochastic]; the benchmark suite contains an
    ablation comparing the two.  Both variants merge by bitwise OR and give
    estimates that are monotone under merging, which the tracking protocols
    rely on. *)

type variant = Averaged | Stochastic

type family
type t

val name : string

val family :
  rng:Wd_hashing.Rng.t -> accuracy:float -> confidence:float -> family
(** Sizes [m ~= (0.78 / accuracy)^2 * ln (1 / (1 - confidence))] bitmaps,
    [Stochastic] variant.  See {!family_custom} for explicit control. *)

val family_custom :
  rng:Wd_hashing.Rng.t -> variant:variant -> bitmaps:int -> family
(** [family_custom ~rng ~variant ~bitmaps] uses exactly [bitmaps] bitmaps
    with the given update discipline.  Requires [bitmaps >= 1]. *)

val family_of_params : alpha:float -> delta:float -> seed:int -> family
(** {!family} under the paper's parameter names: relative error [alpha],
    failure probability [delta = 1 - confidence], hashes drawn from a
    fresh generator seeded with [seed]. *)

val bitmaps : family -> int
(** Number of bitmaps [m] in the family. *)

val variant : family -> variant

val create : family -> t

val of_params : alpha:float -> delta:float -> seed:int -> t
(** [create (family_of_params ~alpha ~delta ~seed)]. *)

val copy : t -> t

(** [add t v] inserts the item; [true] iff some bitmap bit was newly set. *)
val add : t -> int -> bool

val add_batch : t -> int array -> unit
(** [add_batch t vs] inserts every element of [vs]; equal to folding
    {!add} with the change flags discarded, with the variant dispatch and
    hash loads hoisted out of the loop. *)

val merge_into : dst:t -> t -> unit
val estimate : t -> float
val size_bytes : t -> int
(** [8 * m] bytes: the bitmaps are the wire payload. *)

val delta_bytes : from:t -> t -> int
(** 4 bytes per bit of the target not present in [from] (a (bitmap,
    level) coordinate each). *)

val equal : t -> t -> bool
val is_empty : t -> bool

val family_of : t -> family
(** The family a sketch was created from. *)

(** {1 Serialization}

    The wire format is the raw little-endian bitmaps, [8 * m] bytes —
    exactly the {!size_bytes} the protocols charge for a sketch payload.
    Hash functions are family state and are shared out of band (all
    parties of a protocol hold the same family). *)

val to_bytes : t -> bytes

val of_bytes : family -> bytes -> t
(** Raises [Invalid_argument] if the buffer length does not match the
    family's [8 * m] bytes. *)
