module Rng = Wd_hashing.Rng
module Universal = Wd_hashing.Universal
module Geometric = Wd_hashing.Geometric

type family = { hash : Universal.t; threshold : int }

type t = {
  fam : family;
  mutable level : int;
  table : (int, int) Hashtbl.t; (* retained item -> count *)
}

let family ~rng ~threshold =
  if threshold < 1 then invalid_arg "Distinct_sampler.family: threshold must be >= 1";
  { hash = Universal.of_rng rng; threshold }

let threshold fam = fam.threshold

let create fam = { fam; level = 0; table = Hashtbl.create 64 }

let copy t = { t with table = Hashtbl.copy t.table }

let level t = t.level

let item_level t v = Geometric.level t.fam.hash v

let prune t =
  Hashtbl.iter
    (fun v _ -> if item_level t v < t.level then Hashtbl.remove t.table v)
    (Hashtbl.copy t.table)

(* Raise the level until at most [threshold] items are retained. *)
let rebalance t =
  while Hashtbl.length t.table > t.fam.threshold do
    t.level <- t.level + 1;
    prune t
  done

let add_count t v c =
  if c < 0 then invalid_arg "Distinct_sampler.add_count: negative count";
  if c > 0 && item_level t v >= t.level then begin
    let current = Option.value (Hashtbl.find_opt t.table v) ~default:0 in
    Hashtbl.replace t.table v (current + c);
    rebalance t
  end

let add t v = add_count t v 1

(* Equal to folding [add]: one arrival per element, with the level-hash
   load and the count-positivity test hoisted out of the loop. *)
let add_batch t vs =
  let hash = t.fam.hash in
  for i = 0 to Array.length vs - 1 do
    let v = Array.unsafe_get vs i in
    if Geometric.level hash v >= t.level then begin
      let current = Option.value (Hashtbl.find_opt t.table v) ~default:0 in
      Hashtbl.replace t.table v (current + 1);
      rebalance t
    end
  done

let delete_count t v c =
  if c < 0 then invalid_arg "Distinct_sampler.delete_count: negative count";
  if c > 0 && item_level t v >= t.level then begin
    match Hashtbl.find_opt t.table v with
    | None ->
      if c > 0 then
        invalid_arg "Distinct_sampler.delete_count: deleting an absent item"
    | Some current ->
      if c > current then
        invalid_arg "Distinct_sampler.delete_count: deletions exceed insertions"
      else if c = current then Hashtbl.remove t.table v
      else Hashtbl.replace t.table v (current - c)
  end

let delete t v = delete_count t v 1

let set_level t l =
  if l > t.level then begin
    t.level <- l;
    prune t
  end

let mem t v = Hashtbl.mem t.table v

let count t v = Option.value (Hashtbl.find_opt t.table v) ~default:0

let size t = Hashtbl.length t.table

let contents t = Hashtbl.fold (fun v c acc -> (v, c) :: acc) t.table []

let iter f t = Hashtbl.iter f t.table

(* [Float.ldexp 1.0 l] is exactly 2^l, bit-identical to the former
   [2.0 ** Float.of_int l] but transcendental-free. *)
let estimate_distinct t = Float.of_int (size t) *. Float.ldexp 1.0 t.level

let merge_into ~dst src =
  dst.level <- max dst.level src.level;
  prune dst;
  Hashtbl.iter
    (fun v c ->
      if item_level dst v >= dst.level then begin
        let current = Option.value (Hashtbl.find_opt dst.table v) ~default:0 in
        Hashtbl.replace dst.table v (current + c)
      end)
    src.table;
  rebalance dst

let size_bytes t = 16 * size t

let to_bytes t =
  let n = size t in
  let buf = Bytes.create (5 + (16 * n)) in
  Bytes.set_uint8 buf 0 t.level;
  Bytes.set_int32_le buf 1 (Int32.of_int n);
  let i = ref 0 in
  Hashtbl.iter
    (fun v c ->
      Bytes.set_int64_le buf (5 + (16 * !i)) (Int64.of_int v);
      Bytes.set_int64_le buf (13 + (16 * !i)) (Int64.of_int c);
      incr i)
    t.table;
  buf

let of_bytes fam buf =
  if Bytes.length buf < 5 then
    invalid_arg "Distinct_sampler.of_bytes: truncated buffer";
  let level = Bytes.get_uint8 buf 0 in
  let n = Int32.to_int (Bytes.get_int32_le buf 1) in
  if n < 0 || n > fam.threshold then
    invalid_arg "Distinct_sampler.of_bytes: pair count out of range";
  if Bytes.length buf <> 5 + (16 * n) then
    invalid_arg "Distinct_sampler.of_bytes: buffer length does not match";
  let t = create fam in
  t.level <- level;
  for i = 0 to n - 1 do
    let v = Int64.to_int (Bytes.get_int64_le buf (5 + (16 * i))) in
    let c = Int64.to_int (Bytes.get_int64_le buf (13 + (16 * i))) in
    if c <= 0 then invalid_arg "Distinct_sampler.of_bytes: non-positive count";
    if item_level t v < level then
      invalid_arg "Distinct_sampler.of_bytes: pair violates the level rule";
    Hashtbl.replace t.table v c
  done;
  t

(* The uniform (alpha, delta, seed) constructor pair over the
   error-driven threshold sizing. *)

let family_of_params ~alpha ~delta ~seed =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Distinct_sampler.family_of_params: alpha must be in (0,1)";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Distinct_sampler.family_of_params: delta must be in (0,1)";
  let threshold =
    int_of_float
      (Float.ceil
         ((1.0 /. alpha) ** 2.0 *. Float.max 1.0 (Float.log (1.0 /. delta))))
  in
  family ~rng:(Rng.create seed) ~threshold

let of_params ~alpha ~delta ~seed =
  create (family_of_params ~alpha ~delta ~seed)
