(* The 64-bit bitmap is stored as two 32-bit native halves: bit [l] lives
   in [lo] for [l < 32] and in [hi] for [l >= 32].  A [mutable int64]
   field would box on every store and every mask computation; with native
   halves the set-bit test-and-set is pure machine arithmetic, which keeps
   the per-item sketch update path allocation-free. *)
type t = { mutable lo : int; mutable hi : int }

let phi = 0.77351

(* 2^i for i in [0, 64], exact ([Float.ldexp] of 1.0). *)
let pow2 = Array.init 65 (fun i -> Float.ldexp 1.0 i)

let create () = { lo = 0; hi = 0 }

let copy t = { lo = t.lo; hi = t.hi }

let add_level t lvl =
  if lvl < 0 || lvl > 63 then invalid_arg "Fm_bitmap.add_level: level out of range";
  if lvl < 32 then begin
    let mask = 1 lsl lvl in
    if t.lo land mask = 0 then begin
      t.lo <- t.lo lor mask;
      true
    end
    else false
  end
  else begin
    let mask = 1 lsl (lvl - 32) in
    if t.hi land mask = 0 then begin
      t.hi <- t.hi lor mask;
      true
    end
    else false
  end

let lowest_zero t =
  (* Index of lowest zero = trailing zeros of the complement, one half at
     a time. *)
  let m = lnot t.lo land 0xFFFFFFFF in
  if m <> 0 then Wd_hashing.Geometric.trailing_zeros_int m
  else
    let m = lnot t.hi land 0xFFFFFFFF in
    if m <> 0 then 32 + Wd_hashing.Geometric.trailing_zeros_int m else 64

let estimate t = pow2.(lowest_zero t) /. phi

let merge_into ~dst src =
  dst.lo <- dst.lo lor src.lo;
  dst.hi <- dst.hi lor src.hi

let equal a b = a.lo = b.lo && a.hi = b.hi

let is_empty t = t.lo = 0 && t.hi = 0

let bits t =
  Int64.logor
    (Int64.shift_left (Int64.of_int t.hi) 32)
    (Int64.of_int t.lo)

let of_bits bits =
  {
    lo = Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
    hi = Int64.to_int (Int64.shift_right_logical bits 32);
  }

let size_bytes = 8
