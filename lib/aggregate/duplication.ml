type sample = (int * int) list

(* Exactly 2^level ([Float.ldexp] of 1.0), without the transcendental
   [Float.pow] the [2.0 ** Float.of_int _] spelling compiles to. *)
let scale level = Float.ldexp 1.0 level

let unique_count ~level s =
  let ones = List.length (List.filter (fun (_, c) -> c = 1) s) in
  Float.of_int ones *. scale level

let distinct_count ~level s = Float.of_int (List.length s) *. scale level

let fraction pred s =
  match s with
  | [] -> 0.0
  | _ ->
    let hit = List.length (List.filter (fun (_, c) -> pred c) s) in
    Float.of_int hit /. Float.of_int (List.length s)

let inverse_quantile ~count s = fraction (fun c -> c <= count) s

let inverse_range ~lo ~hi s = fraction (fun c -> lo <= c && c <= hi) s

let inverse_heavy_hitters ~phi s =
  if phi <= 0.0 || phi > 1.0 then
    invalid_arg "Duplication.inverse_heavy_hitters: phi must be in (0,1]";
  match s with
  | [] -> []
  | _ ->
    let total = Float.of_int (List.length s) in
    let by_count = Hashtbl.create 64 in
    List.iter
      (fun (_, c) ->
        Hashtbl.replace by_count c
          (1 + Option.value (Hashtbl.find_opt by_count c) ~default:0))
      s;
    Hashtbl.fold
      (fun c n acc ->
        let share = Float.of_int n /. total in
        if share >= phi then (c, share) :: acc else acc)
      by_count []
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let count_quantile ~q s =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Duplication.count_quantile: q must be in [0,1]";
  match s with
  | [] -> None
  | _ ->
    let counts = List.sort compare (List.map snd s) in
    let n = List.length counts in
    let rank = min (n - 1) (int_of_float (q *. Float.of_int n)) in
    Some (List.nth counts rank)

let median_count s = count_quantile ~q:0.5 s

let mean_count s =
  match s with
  | [] -> 0.0
  | _ ->
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 s in
    Float.of_int total /. Float.of_int (List.length s)

let value_quantile ~q s =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Duplication.value_quantile: q must be in [0,1]";
  match s with
  | [] -> None
  | _ ->
    let values = List.sort compare (List.map fst s) in
    let n = List.length values in
    let rank = min (n - 1) (int_of_float (q *. Float.of_int n)) in
    Some (List.nth values rank)

let value_median s = value_quantile ~q:0.5 s
