module Network = Wd_net.Network
module Topology = Wd_net.Topology
module Transport = Wd_net.Transport
module Transport_sim = Wd_net.Transport_sim
module Faults = Wd_net.Faults
module Wire = Wd_net.Wire
module Tracker_intf = Wd_protocol.Tracker_intf
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event

type site_state = {
  seen : (int, unit) Hashtbl.t; (* items this site already shipped *)
  mutable batch : int list; (* locally-new items awaiting shipment *)
  mutable batch_len : int;
  mutable round_d : int; (* last round announcement received *)
  mutable down : bool;
  mutable down_since : int;
  mutable lost : int;
}

type t = {
  k : int;
  epsilon : float;
  universe : int; (* power of two; items are folded into [0, universe) *)
  mask : int;
  transport : Transport.t;
  net : Network.t;
  site_states : site_state array;
  coord : Distinct_quantiles.Centralized.t;
  mutable applied_distinct : float; (* coordinator distinct estimate cache *)
  mutable round_d : int; (* current round threshold ~D *)
  max_retries : int;
  mutable sends : int;
  mutable updates : int;
  mutable sink : Sink.t;
}

(* Communication never depends on this structure's size (sites ship raw
   item batches), so it is dimensioned for accuracy: the dyadic FM noise
   must stay well inside the epsilon rank budget. *)
let default_config =
  {
    Distinct_quantiles.default_config with
    Distinct_quantiles.cols = 4096;
    bitmaps = 128;
  }

let next_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

let create ?(cost_model = Network.Unicast) ?network ?transport
    ?(max_retries = 5) ?(sink = Sink.null) ?(universe = 1 lsl 20)
    ?(config = default_config) ~rng ~epsilon ~sites () =
  if sites < 1 then
    invalid_arg "Yz_quantile_tracker.create: sites must be >= 1";
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Yz_quantile_tracker.create: epsilon must be in (0,1)";
  if universe < 2 then
    invalid_arg "Yz_quantile_tracker.create: universe must be >= 2";
  let transport =
    match (transport, network) with
    | Some _, Some _ ->
      invalid_arg
        "Yz_quantile_tracker.create: pass ?network or ?transport, not both"
    | Some tr, None ->
      if Transport.sites tr <> sites then
        invalid_arg
          "Yz_quantile_tracker.create: shared transport has wrong site count";
      tr
    | None, Some net ->
      if Network.sites net <> sites then
        invalid_arg
          "Yz_quantile_tracker.create: shared network has wrong site count";
      Transport_sim.of_network net
    | None, None -> Transport_sim.create ~cost_model ~sites ()
  in
  let net = Transport.ledger transport in
  let universe = next_pow2 universe in
  let family =
    Distinct_quantiles.family ~rng
      { config with Distinct_quantiles.universe }
  in
  let fresh_site () =
    {
      seen = Hashtbl.create 256;
      batch = [];
      batch_len = 0;
      round_d = 1;
      down = false;
      down_since = 0;
      lost = 0;
    }
  in
  {
    k = sites;
    epsilon;
    universe;
    mask = universe - 1;
    transport;
    net;
    site_states = Array.init sites (fun _ -> fresh_site ());
    coord = Distinct_quantiles.Centralized.create ~family;
    applied_distinct = 0.0;
    round_d = 1;
    max_retries;
    sends = 0;
    updates = 0;
    sink;
  }

let sites t = t.k
let epsilon t = t.epsilon
let universe t = t.universe
let network t = t.net
let transport t = t.transport
let sends t = t.sends
let updates t = t.updates
let set_sink t sink = t.sink <- sink
let round t = t.round_d
let clamp t v = (if v >= 0 then v else -v) land t.mask
let distinct t = Distinct_quantiles.Centralized.distinct t.coord
let rank t x = Distinct_quantiles.Centralized.rank t.coord x
let quantile t q = Distinct_quantiles.Centralized.quantile t.coord q
let median t = Distinct_quantiles.Centralized.median t.coord

let emit t kind =
  if Sink.enabled t.sink then Sink.emit t.sink { Event.time = t.updates; kind }

let site_down_for t i =
  let st = t.site_states.(i) in
  if st.down then t.updates - st.down_since else 0

let lost_updates t =
  Array.fold_left (fun acc st -> acc + st.lost) 0 t.site_states

(* The round's batch threshold Delta = eps * ~D / (2k): total unshipped
   distinct items across sites stay below eps * D / 2, so every rank the
   coordinator reports lags truth by at most that many items (on top of
   the dyadic structure's own sketching error). *)
let delta_of t round_d =
  max 1
    (int_of_float
       (t.epsilon *. Float.of_int round_d /. (2.0 *. Float.of_int t.k)))

let site_send_threshold t i =
  if i < 0 || i >= t.k then
    invalid_arg
      "Yz_quantile_tracker.site_send_threshold: site index out of range";
  Float.of_int (delta_of t t.site_states.(i).round_d)

(* Store-and-forward over a tree backbone: a mid-route aggregator could
   in principle dedup items across subtrees, but the coordinator
   structure is already duplicate-resilient, so the reference protocol
   ships batches unchanged. *)
let forward_path t ~site ~payload =
  match Network.tree_topology t.net with
  | None -> ()
  | Some topo ->
    (try
       List.iter
         (fun j ->
           if not (Network.forward_up t.net ~agg:j ~payload) then raise Exit)
         (Topology.path_of_site topo site)
     with Exit -> ())

let maybe_advance_round t =
  let d = distinct t in
  t.applied_distinct <- d;
  if d >= 2.0 *. Float.of_int t.round_d then begin
    while Float.of_int t.round_d *. 2.0 <= d do
      t.round_d <- t.round_d * 2
    done;
    emit t (Event.Level_advance { previous = 0; level = t.round_d });
    let outcomes =
      Transport.transmit_broadcast t.transport ~except:None
        ~payload:Wire.count_bytes
    in
    Array.iteri
      (fun j (st : site_state) ->
        match outcomes.(j) with
        | Faults.Delivered n when n > 0 -> st.round_d <- t.round_d
        | Faults.Delivered _ | Faults.Lost _ -> ())
      t.site_states
  end

(* Ship the accumulated batch of locally-new items.  Items are applied
   on delivery; the batch clears only on ack, so an unacknowledged site
   re-sends the same items later — harmless, because the coordinator
   structure is duplicate-resilient by construction. *)
let flush_batch t site st =
  if st.batch_len > 0 then begin
    let payload = Wire.items st.batch_len in
    if Sink.enabled t.sink then
      emit t
        (Event.Sketch_sent
           { site; bytes = Wire.message ~payload; items = Some st.batch_len });
    let delivery =
      Transport.reliable_up ~max_retries:t.max_retries t.transport ~site
        ~payload
    in
    t.sends <- t.sends + 1;
    if delivery.Network.received then begin
      forward_path t ~site ~payload;
      List.iter
        (fun v -> Distinct_quantiles.Centralized.add t.coord v)
        st.batch;
      maybe_advance_round t
    end;
    if delivery.Network.acked then begin
      st.batch <- [];
      st.batch_len <- 0
    end
  end

let wipe_site st =
  Hashtbl.reset st.seen;
  st.batch <- [];
  st.batch_len <- 0

let scan_crashes t =
  Array.iteri
    (fun i st ->
      let now_down = Transport.site_down t.transport ~site:i in
      if now_down && not st.down then begin
        st.down <- true;
        st.down_since <- t.updates;
        (* The local dedup memory dies with the site.  No resync is
           needed: a restarted site may re-ship items it already sent,
           which the duplicate-resilient coordinator absorbs for free. *)
        wipe_site st;
        emit t (Event.Crash { site = i })
      end
      else if (not now_down) && st.down then begin
        st.down <- false;
        st.round_d <- t.round_d;
        emit t (Event.Recover { site = i; resync_bytes = 0 })
      end)
    t.site_states

let[@inline] observe_one t ~crashes ~site v =
  t.updates <- t.updates + 1;
  Transport.set_time t.transport t.updates;
  if crashes then scan_crashes t;
  let st = t.site_states.(site) in
  if st.down then st.lost <- st.lost + 1
  else begin
    let v = clamp t v in
    if not (Hashtbl.mem st.seen v) then begin
      Hashtbl.replace st.seen v ();
      st.batch <- v :: st.batch;
      st.batch_len <- st.batch_len + 1;
      if st.batch_len >= delta_of t st.round_d then flush_batch t site st
    end
  end

let observe t ~site v =
  if site < 0 || site >= t.k then
    invalid_arg "Yz_quantile_tracker.observe: site index out of range";
  observe_one t ~crashes:(Faults.has_crashes (Network.faults t.net)) ~site v

let observe_batch t ~sites ~items ~pos ~len =
  let n = Array.length sites in
  if Array.length items <> n then
    invalid_arg "Yz_quantile_tracker.observe_batch: sites/items length mismatch";
  if pos < 0 || len < 0 || pos + len > n then
    invalid_arg "Yz_quantile_tracker.observe_batch: slice out of range";
  let crashes = Faults.has_crashes (Network.faults t.net) in
  let k = t.k in
  for j = pos to pos + len - 1 do
    let site = Array.unsafe_get sites j in
    if site < 0 || site >= k then
      invalid_arg "Yz_quantile_tracker.observe_batch: site index out of range";
    observe_one t ~crashes ~site (Array.unsafe_get items j)
  done

(* The shared-surface view drivers dispatch over (Tracker_intf). *)
module Generic = struct
  type nonrec t = t

  let kind = "yzq"
  let algorithm_name _ = "YZ"
  let sites = sites
  let observe = observe
  let observe_batch = observe_batch
  let estimate = distinct
  let site_send_threshold t ~site ~item:_ = site_send_threshold t site
  let updates = updates
  let sends = sends
  let lost_updates = lost_updates
  let site_down_for = site_down_for
  let set_sink = set_sink
  let network = network
  let transport = transport
end

let generic t = Tracker_intf.Tracker ((module Generic), t)
