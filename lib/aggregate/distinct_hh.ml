let top_by_estimate ~estimate ~k candidates =
  let scored = List.map (fun v -> (v, estimate v)) candidates in
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) scored in
  List.filteri (fun i _ -> i < k) sorted

module Registry = struct
  type t = (int, unit) Hashtbl.t

  let create () : t = Hashtbl.create 1024

  let note t v = if not (Hashtbl.mem t v) then Hashtbl.replace t v ()

  let to_list t = Hashtbl.fold (fun v () acc -> v :: acc) t []
end

module Centralized = struct
  type t = { array : Fm_array.t; keys : Registry.t }

  let create ~family = { array = Fm_array.create family; keys = Registry.create () }

  let add t ~v ~w =
    Registry.note t.keys v;
    ignore
      (Fm_array.add t.array ~key:v ~element:(Fm_array.pair_element ~v ~w)
        : bool)

  let estimate t v = Fm_array.estimate t.array ~key:v

  let top_of_candidates t ~k candidates =
    top_by_estimate ~estimate:(estimate t) ~k candidates

  let top t ~k = top_of_candidates t ~k (Registry.to_list t.keys)

  let array t = t.array
end

module Tracked = struct
  type t = { tracked : Tracked_fm_array.t; keys : Registry.t }

  let create ?cost_model ?transport ?item_batching ~algorithm ~theta ~sites
      ~family () =
    {
      tracked =
        Tracked_fm_array.create ?cost_model ?transport ?item_batching
          ~algorithm ~theta ~sites ~family ();
      keys = Registry.create ();
    }

  let observe t ~site ~v ~w =
    Registry.note t.keys v;
    Tracked_fm_array.observe t.tracked ~site ~key:v
      ~element:(Fm_array.pair_element ~v ~w)

  let estimate t v = Tracked_fm_array.estimate t.tracked ~key:v

  let top_of_candidates t ~k candidates =
    top_by_estimate ~estimate:(estimate t) ~k candidates

  let top t ~k = top_of_candidates t ~k (Registry.to_list t.keys)

  let network t = Tracked_fm_array.network t.tracked
  let transport t = Tracked_fm_array.transport t.tracked
  let sends t = Tracked_fm_array.sends t.tracked
  let set_sink t sink = Tracked_fm_array.set_sink t.tracked sink
end

let exact_degrees pairs =
  let partners : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 1024 in
  Seq.iter
    (fun (v, w) ->
      let set =
        match Hashtbl.find_opt partners v with
        | Some set -> set
        | None ->
          let set = Hashtbl.create 8 in
          Hashtbl.replace partners v set;
          set
      in
      if not (Hashtbl.mem set w) then Hashtbl.replace set w ())
    pairs;
  let degrees = Hashtbl.create (Hashtbl.length partners) in
  Hashtbl.iter (fun v set -> Hashtbl.replace degrees v (Hashtbl.length set)) partners;
  degrees
