(** Distinct heavy hitters (Section 6.2).

    The input is a stream of pairs [(v, w)] — e.g. (objectID, clientID)
    HTTP requests — and the degree of [v] is

    [d_v = |{ w : (v, w) in S_0 }|],

    the number of {e distinct} partners [v] occurs with, regardless of how
    many times each pair repeats or at how many sites it is seen.  The
    distinct heavy hitters are the [v]s with the largest [d_v]: "the
    objects requested by the largest number of distinct clients, without
    being influenced by clients requesting the same object multiple
    times".

    Both forms use the {!Fm_array} structure of [10, 18]; estimates of
    [d_v] are min-over-rows of the FM cells [v] hashes to.

    {!Centralized} is the single-site structure; {!Tracked} runs every
    cell under a distinct-count tracking algorithm as in Figure 7(c).

    Both keep an (uncharged) registry of the keys they have seen so that
    [top] can be answered without an externally supplied candidate set;
    the paper's experiments query known objectIDs, so the registry is a
    query-side convenience that adds no protocol communication. *)

module Centralized : sig
  type t

  val create : family:Fm_array.family -> t
  val add : t -> v:int -> w:int -> unit
  val estimate : t -> int -> float
  (** [estimate t v] approximates [d_v]. *)

  val top : t -> k:int -> (int * float) list
  (** The [k] keys with the largest estimated degrees, descending. *)

  val top_of_candidates : t -> k:int -> int list -> (int * float) list
  (** Like [top] but over an explicit candidate set. *)

  val array : t -> Fm_array.t
end

module Tracked : sig
  type t

  val create :
    ?cost_model:Wd_net.Network.cost_model ->
    ?transport:Wd_net.Transport.t ->
    ?item_batching:bool ->
    algorithm:Wd_protocol.Dc_tracker.algorithm ->
    theta:float ->
    sites:int ->
    family:Fm_array.family ->
    unit ->
    t
  (** [transport] supplies the communication backend shared by every
      per-cell tracker (default: a fresh in-process simulator with
      [cost_model]). *)

  val observe : t -> site:int -> v:int -> w:int -> unit
  val estimate : t -> int -> float
  (** The coordinator's continuous approximation of [d_v]. *)

  val top : t -> k:int -> (int * float) list
  val top_of_candidates : t -> k:int -> int list -> (int * float) list

  val network : t -> Wd_net.Network.t

  val transport : t -> Wd_net.Transport.t
  (** The communication backend shared by all cell trackers. *)

  val sends : t -> int

  val set_sink : t -> Wd_obs.Sink.t -> unit
  (** Attach one trace sink to the shared ledger and all cell trackers. *)
end

val exact_degrees : (int * int) Seq.t -> (int, int) Hashtbl.t
(** Ground truth: exact [d_v] for every [v] in a pair sequence (for
    evaluation only — linear space). *)
