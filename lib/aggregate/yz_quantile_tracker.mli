(** Continuous duplicate-resilient quantile tracking in the Yi–Zhang
    style (PODS'09): round-based batched forwarding with worst-case
    communication O((k/eps) log U log D) — the quantile counterpart of
    {!Wd_protocol.Yz_hh_tracker}, and the optimality target the eval
    harness gates the measured bytes against.

    Each site keeps a dedup set of the items it has already shipped;
    locally-new items accumulate into a batch that is sent when it
    reaches [Delta = eps * ~D / (2k)] items, where [~D] is the
    coordinator's current distinct estimate (maintained by doubling,
    announced by broadcast).  The coordinator feeds every arriving item
    into a {!Distinct_quantiles.Centralized} dyadic structure — which is
    duplicate-resilient, so the cross-site duplicates this protocol
    never filters (and any fault-driven re-sends) are absorbed for
    free.  Ranks and quantiles are then continuously available within
    [eps * D] of the duplicate-resilient truth, on top of the dyadic
    structure's own sketching error.

    Items are folded into [\[0, universe)] (a power of two) by absolute
    value and mask; compare against ground truth computed over the same
    folding.

    Under a tree topology ({!Wd_net.Topology}) delivered batches
    store-and-forward over the backbone unchanged. *)

type t

val default_config : Distinct_quantiles.config
(** {!Distinct_quantiles.default_config} widened to [cols = 4096],
    [bitmaps = 128].  The coordinator structure is purely local — sites
    ship raw item batches, never sketches — so its dimensioning costs
    memory, not communication, and it must be accurate enough that the
    dyadic FM noise stays well inside the [epsilon] rank budget the
    protocol promises. *)

val create :
  ?cost_model:Wd_net.Network.cost_model ->
  ?network:Wd_net.Network.t ->
  ?transport:Wd_net.Transport.t ->
  ?max_retries:int ->
  ?sink:Wd_obs.Sink.t ->
  ?universe:int ->
  ?config:Distinct_quantiles.config ->
  rng:Wd_hashing.Rng.t ->
  epsilon:float ->
  sites:int ->
  unit ->
  t
(** [create ~rng ~epsilon ~sites ()] builds a fresh tracker.  [epsilon]
    sets the batching lag (rank error at most [epsilon * D] beyond the
    sketch error); [universe] (default [2^20], rounded up to a power of
    two) overrides the item domain of the dyadic structure; [config]
    (default {!default_config}) overrides its dimensioning (its
    [universe] field is replaced).
    [network]/[transport]/[max_retries]/[sink] behave as in
    {!Wd_protocol.Ds_tracker.create}.  Requires [sites >= 1] and
    [0 < epsilon < 1]. *)

val observe : t -> site:int -> int -> unit

val observe_batch :
  t -> sites:int array -> items:int array -> pos:int -> len:int -> unit

val sites : t -> int
val epsilon : t -> float
val universe : t -> int

val clamp : t -> int -> int
(** The folding applied to every observed item — use it to fold ground
    truth identically. *)

val distinct : t -> float
(** The coordinator's distinct estimate over everything applied. *)

val rank : t -> int -> float
(** Approximate number of distinct items [<= x]. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [\[0, 1\]]. *)

val median : t -> int

val round : t -> int
(** The current round threshold [~D]. *)

val site_send_threshold : t -> int -> float
(** The site's current batch threshold [Delta], in items. *)

val sends : t -> int
val updates : t -> int
val lost_updates : t -> int
val site_down_for : t -> int -> int
val set_sink : t -> Wd_obs.Sink.t -> unit
val network : t -> Wd_net.Network.t
val transport : t -> Wd_net.Transport.t

(** This tracker seen through the shared
    {!Wd_protocol.Tracker_intf.TRACKER} surface ([estimate] is the
    distinct estimate; [item] is ignored by the threshold). *)
module Generic : Wd_protocol.Tracker_intf.TRACKER with type t = t

val generic : t -> Wd_protocol.Tracker_intf.packed
