(** Distributed, continuously-tracked {!Fm_array}.

    Section 6.2's recipe: "for every update that arrives, we update the
    [d] sketches that it affects, and run the sketch tracking algorithms
    on each sketch independently."  Each of the [rows x cols] cells is an
    independent {!Wd_protocol.Dc_tracker} instance (NS/SC/SS/LS) over the
    cell's FM sketch; all cells share one byte ledger, so the total is the
    communication cost Figure 7(c) reports.

    Per-cell estimates at the coordinator are within the tracker
    guarantees of the true cell estimates, hence min-over-rows inherits
    the [alpha + theta] bound of Lemma 1 cell-wise, extending the
    guarantees of the underlying structure to the distributed continuous
    setting.

    Item batching (the Section 4.2 optimization) is {e off} by default
    here to match the paper's Figure 7(c) setup, where "any time a FM
    sketch changed it would trigger a communication of that FM sketch". *)

type t

val create :
  ?cost_model:Wd_net.Network.cost_model ->
  ?network:Wd_net.Network.t ->
  ?transport:Wd_net.Transport.t ->
  ?item_batching:bool ->
  algorithm:Wd_protocol.Dc_tracker.algorithm ->
  theta:float ->
  sites:int ->
  family:Fm_array.family ->
  unit ->
  t
(** [transport] supplies the communication backend every cell tracker
    shares ({!Wd_net.Transport}); [network] instead shares an existing
    byte ledger (e.g. across the per-level arrays of the quantile
    structure), wrapped in a simulator backend — passing both is an
    error.  By default a fresh simulator is created with [cost_model].
    Requires an approximate algorithm (NS/SC/SS/LS);
    [EC] is rejected — the exact baseline for pair streams forwards raw
    pairs, which {!Wd_protocol.Dc_tracker} over pair elements already
    provides. *)

val observe : t -> site:int -> key:int -> element:int -> unit
(** One [(key, element)] arrival at a site: the element enters [rows]
    per-cell trackers, each of which may trigger its own communication. *)

val estimate : t -> key:int -> float
(** Coordinator-side min-over-rows distinct-element estimate for [key]. *)

val family : t -> Fm_array.family
val algorithm : t -> Wd_protocol.Dc_tracker.algorithm
val network : t -> Wd_net.Network.t

val transport : t -> Wd_net.Transport.t
(** The communication backend shared by all cell trackers. *)

val sends : t -> int
(** Total upstream communications across all cells. *)

val set_sink : t -> Wd_obs.Sink.t -> unit
(** Attach one trace sink to the shared byte ledger and every per-cell
    tracker.  Cell trackers stamp events with their own update counts,
    so expect interleaved clocks in the trace. *)
