module Network = Wd_net.Network
module Transport = Wd_net.Transport
module Transport_sim = Wd_net.Transport_sim
module Dc = Wd_protocol.Dc_tracker

type t = {
  fam : Fm_array.family;
  algorithm : Dc.algorithm;
  transport : Transport.t; (* shared by every cell tracker *)
  net : Network.t; (* its ledger *)
  cells : Dc.Fm.t array; (* row-major, one tracker per cell *)
}

let create ?(cost_model = Network.Unicast) ?network ?transport
    ?(item_batching = false) ~algorithm ~theta ~sites ~family:fam () =
  if algorithm = Dc.EC then
    invalid_arg "Tracked_fm_array.create: EC is not a per-cell algorithm";
  let transport =
    match (transport, network) with
    | Some _, Some _ ->
      invalid_arg
        "Tracked_fm_array.create: pass ?network or ?transport, not both"
    | Some tr, None -> tr
    | None, Some net -> Transport_sim.of_network net
    | None, None -> Transport_sim.create ~cost_model ~sites ()
  in
  let net = Transport.ledger transport in
  let cfg = Fm_array.config fam in
  (* Every cell shares the FM hash family of [fam], so a tracked array and
     a centralized Fm_array of the same family are directly comparable. *)
  let fm_family = Fm_array.fm_family fam in
  let cells =
    Array.init (Fm_array.config_cells cfg) (fun _ ->
        Dc.Fm.create ~transport ~item_batching ~delta_replies:item_batching
          ~algorithm ~theta ~sites ~family:fm_family ())
  in
  { fam; algorithm; transport; net; cells }

let cell t ~row ~col = t.cells.((row * (Fm_array.config t.fam).cols) + col)

let observe t ~site ~key ~element =
  let cfg = Fm_array.config t.fam in
  for row = 0 to cfg.rows - 1 do
    let col = Fm_array.cell_index t.fam ~row ~key in
    Dc.Fm.observe (cell t ~row ~col) ~site element
  done

let estimate t ~key =
  let cfg = Fm_array.config t.fam in
  let best = ref Float.infinity in
  for row = 0 to cfg.rows - 1 do
    let col = Fm_array.cell_index t.fam ~row ~key in
    let e = Dc.Fm.estimate (cell t ~row ~col) in
    if e < !best then best := e
  done;
  !best

let family t = t.fam
let algorithm t = t.algorithm
let network t = t.net
let transport t = t.transport

let sends t = Array.fold_left (fun acc c -> acc + Dc.Fm.sends c) 0 t.cells

let set_sink t sink =
  Network.set_sink t.net sink;
  Array.iter (fun c -> Dc.Fm.set_sink c sink) t.cells
