(** Mixed tabulation hashing (Dahlgaard, Knudsen, Rotenberg & Thorup,
    FOCS 2015), the "highly concentrated" hash family of Aamand,
    Knudsen, Knudsen, Rasmussen & Thorup ("No Repetition: Fast Streaming
    with Highly Concentrated Hashing").

    Simple tabulation ({!Tabulation}) splits the key into 8 characters
    and XORs 8 random table words.  Mixed tabulation additionally
    derives [d] extra characters from a second set of words looked up by
    the same key characters, and XORs [d] more table lookups indexed by
    those derived characters into the output.  The resulting family
    obeys Chernoff-style concentration bounds on the hash-based sums
    that distinct-count sketches compute — strong enough that a single
    sketch meets an (alpha, delta) guarantee where weaker families need
    the median or mean of [Theta(log 1/delta)] independent repetitions.

    That is the load-bearing property here: {!Wd_sketch.Fm_concentrated}
    hashes each item exactly once through this family, against the
    [Averaged] FM variant's m independent hashes per item. *)

type t

val derived_chars : int
(** Number of derived characters [d] (4: the C/D recommendation from the
    mixed-tabulation literature for 64-bit keys and 8-bit characters). *)

val create : Rng.t -> t
(** [create rng] fills the (8 + {!derived_chars}) × 256 tables from
    [rng] (~24 KiB of state). *)

val hash : t -> int -> int64
(** [hash h x] hashes the integer key [x]. *)

val hash64 : t -> int64 -> int64
(** [hash64 h x] hashes a raw 64-bit key: 8 simple-tabulation lookups
    producing the value word and the derived-character word, then
    {!derived_chars} further lookups XORed into the value word. *)

val concentrated_buckets : alpha:float -> delta:float -> int
(** The single-repetition sizing rule.  With a concentrated hash the
    relative error of a one-pass PCSA-style sketch with [m] buckets obeys
    an exponential tail [P(|err| > alpha) <= exp(-c * m * alpha^2)], so
    one sketch with

    {[ m = ceil ((0.78 / alpha)^2 * max 1 (ln (1 / delta))) ]}

    buckets meets the (alpha, delta) guarantee — the [ln (1/delta)]
    factor buys confidence by widening the single sketch instead of
    multiplying whole independent repetitions, and the asymptotic PCSA
    constant 0.78 replaces the conservative 1.0 that {!Wd_sketch.Fm}
    must use to cover weak-hash worst cases.  At equal (alpha, delta)
    the result is ~40% fewer buckets than [Fm.family], which is exactly
    the serialized-bytes saving the SS/LS broadcast protocols inherit.
    Requires [alpha, delta] in (0,1); the result is always >= 16. *)
