type t =
  (* The stored word is [Splitmix.mix seed], not the raw seed:
     [mix_seeded] re-derives it on every call, so premixing once at
     construction halves the per-hash work while producing bit-identical
     hash values. *)
  | Mixer of int64 (* premixed seed for SplitMix finalizer *)
  | Multiply_shift of int64 * int64 (* odd multiplier a, offset b *)

let create ~seed = Mixer (Splitmix.mix seed)

let of_rng rng = Mixer (Splitmix.mix (Rng.int64 rng))

let multiply_shift rng =
  let a = Int64.logor (Rng.int64 rng) 1L in
  let b = Rng.int64 rng in
  Multiply_shift (a, b)

let hash64 h x =
  match h with
  | Mixer premixed -> Splitmix.mix (Int64.add premixed x)
  | Multiply_shift (a, b) ->
    (* (a*x + b) over Z/2^64; the high bits are the universal ones, so we
       swap halves to make low bits usable by callers too. *)
    let v = Int64.add (Int64.mul a x) b in
    Int64.logor (Int64.shift_right_logical v 32) (Int64.shift_left v 32)

let hash h x = hash64 h (Int64.of_int x)

let to_range h ~buckets x =
  if buckets <= 0 then invalid_arg "Universal.to_range: buckets must be > 0";
  (* Use the top 62 bits to stay within OCaml's native int range. *)
  let v = Int64.to_int (Int64.shift_right_logical (hash h x) 2) in
  v mod buckets
