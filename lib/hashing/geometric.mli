(** Geometric level hash.

    Both the Flajolet–Martin sketch and the Gibbons–Tirthapura distinct
    sampler need a hash [h] such that [Pr[h(v) = i] = 2^-(i+1)] (equivalently
    [Pr[h(v) >= l] = 2^-l]).  The standard construction is to hash [v] to a
    uniform 64-bit word and take the number of trailing zero bits; this module
    packages that construction over a {!Universal.t}. *)

val trailing_zeros : int64 -> int
(** [trailing_zeros w] is the number of trailing zero bits of [w];
    [trailing_zeros 0L = 64]. *)

val trailing_zeros_int : int -> int
(** [trailing_zeros_int w] is the number of trailing zero bits of the
    native 63-bit word [w]; [trailing_zeros_int 0 = 63].  Allocation-free
    (no [Int64] boxing), which is why the sketch update paths prefer it. *)

val level : Universal.t -> int -> int
(** [level h v] is the geometric level of item [v] under hash [h]:
    the count of trailing zeros of the hashed word, capped at 63.
    [Pr[level h v >= l] = 2^-l] for [l <= 63] over the choice of [h]. *)

val level64 : Universal.t -> int64 -> int
(** [level64] is {!level} on a raw 64-bit key. *)
