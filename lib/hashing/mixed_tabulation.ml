let derived_chars = 4

type t = {
  value : int64 array array; (* 8 tables of 256: value-word contribution *)
  derive : int64 array array; (* 8 tables of 256: derived-character word *)
  mix : int64 array array; (* derived_chars tables of 256 *)
}

let create rng =
  let table () = Array.init 256 (fun _ -> Rng.int64 rng) in
  {
    value = Array.init 8 (fun _ -> table ());
    derive = Array.init 8 (fun _ -> table ());
    mix = Array.init derived_chars (fun _ -> table ());
  }

let hash64 t x =
  let v = ref 0L and d = ref 0L in
  for byte = 0 to 7 do
    let idx =
      Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * byte)) 0xFFL)
    in
    v := Int64.logxor !v (Array.unsafe_get (Array.unsafe_get t.value byte) idx);
    d := Int64.logxor !d (Array.unsafe_get (Array.unsafe_get t.derive byte) idx)
  done;
  for c = 0 to derived_chars - 1 do
    let idx =
      Int64.to_int (Int64.logand (Int64.shift_right_logical !d (8 * c)) 0xFFL)
    in
    v := Int64.logxor !v (Array.unsafe_get (Array.unsafe_get t.mix c) idx)
  done;
  !v

let hash t x = hash64 t (Int64.of_int x)

let concentrated_buckets ~alpha ~delta =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Mixed_tabulation.concentrated_buckets: alpha must be in (0,1)";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Mixed_tabulation.concentrated_buckets: delta must be in (0,1)";
  let base = (0.78 /. alpha) ** 2.0 in
  let m =
    int_of_float (Float.ceil (base *. Float.max 1.0 (Float.log (1.0 /. delta))))
  in
  max 16 m
