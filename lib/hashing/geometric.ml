(* Branchless-ish trailing-zero count via de Bruijn would be overkill here;
   a byte-stepped loop is fast enough and obviously correct. *)
let trailing_zeros w =
  if w = 0L then 64
  else begin
    let w = ref w and n = ref 0 in
    while Int64.logand !w 0xFFL = 0L do
      w := Int64.shift_right_logical !w 8;
      n := !n + 8
    done;
    while Int64.logand !w 1L = 0L do
      w := Int64.shift_right_logical !w 1;
      incr n
    done;
    !n
  end

(* Same byte-stepped loop on a native int (63 significant bits).  All
   operations are unboxed machine arithmetic, so callers on sketch update
   paths pay no Int64 allocation.  [lsr] is a logical shift, so the sign
   bit of a negative word is treated as an ordinary data bit. *)
let trailing_zeros_int w =
  if w = 0 then 63
  else begin
    let w = ref w and n = ref 0 in
    while !w land 0xFF = 0 do
      w := !w lsr 8;
      n := !n + 8
    done;
    while !w land 1 = 0 do
      w := !w lsr 1;
      incr n
    done;
    !n
  end

(* [Int64.to_int] keeps exactly the low 63 bits of the hash.  When any of
   them is set, the trailing-zero count of the full word equals that of
   the truncated word (< 63).  When all are zero the full count is 63 or
   64, and the cap makes both answers 63 — so the native-int fast path is
   bit-for-bit the old [min 63 (trailing_zeros (hash64 h v))]. *)
let level64 h v =
  let low = Int64.to_int (Universal.hash64 h v) in
  if low = 0 then 63 else trailing_zeros_int low

let level h v = level64 h (Int64.of_int v)
