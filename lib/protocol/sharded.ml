(* Sharded coordinator merge engine: the global Sk_0 merge fanned out
   across OCaml 5 domains.

   Contributions (a site's sketch, or a batch of raw items) are routed
   to a shard by site id and merged into that shard's private partial
   sketch by a worker domain; idle workers steal from the longest other
   queue, so a hot shard cannot serialize the engine.  Nothing is locked
   on the merge path itself — each partial belongs to exactly one worker
   — and the published global sketch is produced by merging the partials
   at a sync point (merge-then-publish).

   Correctness leans entirely on the PR 2 sketch-algebra laws:
   commutativity and associativity make the shard assignment and steal
   order irrelevant, and idempotence makes re-merging a still-growing
   partial at the next sync harmless — which is why [sync] can merge
   partials without clearing them and the publish path needs no delta
   tracking.  The property suite in [test_sharded.ml] pins published ==
   single-domain for every sketch family under randomized interleavings.

   One global mutex guards the queues and counters only; merge work runs
   outside it.  Signaling a job's completion under the lock after the
   merge is what makes the partials safely readable at a drained sync
   point. *)

module Make (Sketch : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) = struct
  type job = Merge of Sketch.t | Add of int array

  type t = {
    shards : int;
    partials : Sketch.t array; (* partials.(w) touched only by worker w *)
    queues : job Queue.t array;
    lock : Mutex.t;
    work : Condition.t; (* new job or shutdown *)
    done_ : Condition.t; (* a job completed *)
    space : Condition.t; (* a queue drained below capacity *)
    capacity : int;
    mutable submitted : int;
    mutable completed : int;
    mutable stolen : int;
    merges : int array; (* jobs merged by worker w (incl. stolen) *)
    mutable closing : bool;
    mutable domains : unit Domain.t array;
  }

  let perform t w job =
    (match job with
    | Merge sk -> Sketch.merge_into ~dst:t.partials.(w) sk
    | Add items -> Sketch.add_batch t.partials.(w) items);
    t.merges.(w) <- t.merges.(w) + 1

  (* Pop from our own queue, else steal one job from the longest other
     queue. *)
  let take_locked t w =
    if not (Queue.is_empty t.queues.(w)) then Some (Queue.pop t.queues.(w))
    else begin
      let best = ref (-1) and best_len = ref 0 in
      Array.iteri
        (fun i q ->
          if i <> w then begin
            let len = Queue.length q in
            if len > !best_len then begin
              best := i;
              best_len := len
            end
          end)
        t.queues;
      if !best < 0 then None
      else begin
        t.stolen <- t.stolen + 1;
        Some (Queue.pop t.queues.(!best))
      end
    end

  let worker t w () =
    Mutex.lock t.lock;
    let rec loop () =
      match take_locked t w with
      | Some job ->
        Condition.signal t.space;
        Mutex.unlock t.lock;
        perform t w job;
        Mutex.lock t.lock;
        t.completed <- t.completed + 1;
        Condition.broadcast t.done_;
        loop ()
      | None ->
        if t.closing then Mutex.unlock t.lock
        else begin
          Condition.wait t.work t.lock;
          loop ()
        end
    in
    loop ()

  let create ?(queue_capacity = 128) ~shards ~family () =
    if shards < 1 then invalid_arg "Sharded.create: shards must be >= 1";
    if queue_capacity < 1 then
      invalid_arg "Sharded.create: queue_capacity must be >= 1";
    let t =
      {
        shards;
        partials = Array.init shards (fun _ -> Sketch.create family);
        queues = Array.init shards (fun _ -> Queue.create ());
        lock = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        space = Condition.create ();
        capacity = queue_capacity;
        submitted = 0;
        completed = 0;
        stolen = 0;
        merges = Array.make shards 0;
        closing = false;
        domains = [||];
      }
    in
    if shards > 1 then
      t.domains <- Array.init shards (fun w -> Domain.spawn (worker t w));
    t

  let shard_of t ~site = ((site mod t.shards) + t.shards) mod t.shards

  let enqueue t ~site job =
    if t.shards = 1 then begin
      (* Single shard: no domains, merge inline.  This is the
         deterministic reference the property tests compare against. *)
      perform t 0 job;
      t.submitted <- t.submitted + 1;
      t.completed <- t.completed + 1
    end
    else begin
      let w = shard_of t ~site in
      Mutex.lock t.lock;
      if t.closing then begin
        Mutex.unlock t.lock;
        invalid_arg "Sharded.submit: engine is closed"
      end;
      (* Bounded queues: block (deadline-free, a worker always drains)
         rather than grow without bound under a fast producer. *)
      while Queue.length t.queues.(w) >= t.capacity do
        Condition.wait t.space t.lock
      done;
      Queue.push job t.queues.(w);
      t.submitted <- t.submitted + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.lock
    end

  let submit t ~site sk = enqueue t ~site (Merge sk)
  let submit_items t ~site items = enqueue t ~site (Add items)

  (* Wait until every submitted job has been merged into some partial. *)
  let drain_locked t =
    while t.completed < t.submitted do
      Condition.wait t.done_ t.lock
    done

  let sync t ~into =
    if t.shards = 1 then Sketch.merge_into ~dst:into t.partials.(0)
    else begin
      Mutex.lock t.lock;
      drain_locked t;
      (* Merge-then-publish: partials are not cleared; idempotence makes
         re-merging them at the next sync a no-op for items already
         published. *)
      Array.iter (fun p -> Sketch.merge_into ~dst:into p) t.partials;
      Mutex.unlock t.lock
    end

  let shards t = t.shards
  let submitted t = t.submitted
  let stolen t = t.stolen
  let merges_per_shard t = Array.copy t.merges

  let close t =
    if not t.closing then begin
      if t.shards = 1 then t.closing <- true
      else begin
        Mutex.lock t.lock;
        drain_locked t;
        t.closing <- true;
        Condition.broadcast t.work;
        Mutex.unlock t.lock;
        Array.iter Domain.join t.domains;
        t.domains <- [||]
      end
    end
end
