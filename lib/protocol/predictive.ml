module Network = Wd_net.Network
module Faults = Wd_net.Faults
module Wire = Wd_net.Wire
module Fm = Wd_sketch.Fm

type model = Static | Linear_growth

let model_to_string = function
  | Static -> "static"
  | Linear_growth -> "linear-growth"

type site_state = {
  mutable sk : Fm.t;
  mutable coord_known : Fm.t; (* coordinator's model of the site's sketch *)
  mutable d_est : float;
  mutable d_sync : float; (* local estimate at last sync *)
  mutable t_sync : int; (* global time of last sync *)
  mutable rate : float; (* advertised distinct-per-update growth *)
  mutable down : bool;
  mutable lost : int; (* arrivals discarded while down *)
}

type t = {
  model : model;
  k : int;
  theta : float;
  net : Network.t;
  site_states : site_state array;
  sk0 : Fm.t;
  mutable d0_sync : float; (* |Sk_0| at the last sync event *)
  (* Overlap discount: the ratio of cumulative global growth to
     cumulative claimed local growth.  Cumulative sums, not per-sync
     ratios — single syncs are lumpy (FM estimates move in quantized
     steps) and clamping per-sync ratios would bias the estimate down. *)
  mutable observed_total : float;
  mutable claimed_total : float;
  mutable clock : int;
  mutable sends : int;
  family : Fm.family;
  max_retries : int;
}

let create ?(cost_model = Network.Unicast) ?(max_retries = 5) ~model ~theta
    ~sites ~family () =
  if sites < 1 then invalid_arg "Predictive.create: sites must be >= 1";
  if theta <= 0.0 then invalid_arg "Predictive.create: theta must be positive";
  let fresh_site () =
    {
      sk = Fm.create family;
      coord_known = Fm.create family;
      d_est = 0.0;
      d_sync = 0.0;
      t_sync = 0;
      rate = 0.0;
      down = false;
      lost = 0;
    }
  in
  {
    model;
    k = sites;
    theta;
    net = Network.create ~cost_model ~sites ();
    site_states = Array.init sites (fun _ -> fresh_site ());
    sk0 = Fm.create family;
    d0_sync = 0.0;
    observed_total = 0.0;
    claimed_total = 0.0;
    clock = 0;
    sends = 0;
    family;
    max_retries;
  }

let network t = t.net
let sends t = t.sends

let gamma t =
  if t.claimed_total <= 0.0 then 1.0
  else Float.min 1.0 (Float.max 0.0 (t.observed_total /. t.claimed_total))

let predicted_local t st =
  match t.model with
  | Static -> st.d_sync
  | Linear_growth -> st.d_sync +. (st.rate *. Float.of_int (t.clock - st.t_sync))

let estimate t =
  match t.model with
  | Static -> t.d0_sync
  | Linear_growth ->
    let extra =
      Array.fold_left
        (fun acc st -> acc +. (st.rate *. Float.of_int (t.clock - st.t_sync)))
        0.0 t.site_states
    in
    t.d0_sync +. (gamma t *. Float.max 0.0 extra)

let sync t i st =
  (* Ship the sketch delta plus the new rate advertisement.  Reliable
     when a fault plan is enabled: the coordinator learns from whatever
     arrives, but the site rolls its sync markers forward only once the
     exchange is acknowledged — otherwise it stays out of prediction and
     syncs again shortly (a retransmitted sketch merge is idempotent). *)
  let payload =
    min (Fm.size_bytes st.sk) (Fm.delta_bytes ~from:st.coord_known st.sk)
    + Wire.count_bytes
  in
  let delivery =
    Network.reliable_up ~max_retries:t.max_retries t.net ~site:i ~payload
  in
  t.sends <- t.sends + 1;
  if delivery.Network.received then begin
    Fm.merge_into ~dst:t.sk0 st.sk;
    let d0_new = Fm.estimate t.sk0 in
    (* Learn the overlap discount from what this interval actually added
       globally versus what the site claims it added locally. *)
    let claimed = st.d_est -. st.d_sync in
    let observed = d0_new -. t.d0_sync in
    if claimed > 0.0 then begin
      t.claimed_total <- t.claimed_total +. claimed;
      t.observed_total <- t.observed_total +. Float.max 0.0 observed
    end;
    t.d0_sync <- d0_new
  end;
  if delivery.Network.acked then begin
    Fm.merge_into ~dst:st.coord_known st.sk;
    (* Advertise the growth rate of the interval that just ended. *)
    let dt = t.clock - st.t_sync in
    st.rate <-
      (match t.model with
      | Static -> 0.0
      | Linear_growth ->
        if dt > 0 then
          Float.max 0.0 ((st.d_est -. st.d_sync) /. Float.of_int dt)
        else st.rate);
    st.d_sync <- st.d_est;
    st.t_sync <- t.clock
  end

let resync_restarted t i st =
  let d =
    Network.reliable_down ~max_retries:t.max_retries t.net ~site:i
      ~payload:(Fm.size_bytes t.sk0)
  in
  if d.Network.received then begin
    Fm.merge_into ~dst:st.sk t.sk0;
    st.d_est <- Fm.estimate st.sk;
    st.d_sync <- st.d_est;
    st.t_sync <- t.clock;
    st.rate <- 0.0
  end;
  if d.Network.acked then Fm.merge_into ~dst:st.coord_known t.sk0

let scan_crashes t =
  Array.iteri
    (fun i st ->
      let now_down = Network.site_down t.net ~site:i in
      if now_down && not st.down then begin
        st.down <- true;
        st.sk <- Fm.create t.family;
        st.coord_known <- Fm.create t.family;
        st.d_est <- 0.0;
        st.d_sync <- 0.0;
        st.t_sync <- t.clock;
        st.rate <- 0.0
      end
      else if (not now_down) && st.down then begin
        st.down <- false;
        resync_restarted t i st
      end)
    t.site_states

let observe t ~site v =
  if site < 0 || site >= t.k then
    invalid_arg "Predictive.observe: site index out of range";
  t.clock <- t.clock + 1;
  Network.set_time t.net t.clock;
  if Faults.has_crashes (Network.faults t.net) then scan_crashes t;
  let st = t.site_states.(site) in
  if st.down then st.lost <- st.lost + 1
  else if Fm.add st.sk v then begin
    st.d_est <- Fm.estimate st.sk;
    let predicted = predicted_local t st in
    let slack = t.theta /. Float.of_int t.k *. Float.max st.d_est 1.0 in
    if Float.abs (st.d_est -. predicted) > slack then sync t site st
  end
