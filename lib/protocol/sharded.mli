(** Sharded coordinator merge engine: the global [Sk_0] merge fanned out
    across OCaml 5 domains.

    At CDN scale the coordinator's work is dominated by merging site
    contributions into the global sketch.  This engine shards that work
    by site id: each shard has a bounded job queue and a private partial
    sketch owned by one worker domain; idle workers steal from the
    longest other queue.  The published global state is produced at a
    {e sync point} by draining the queues and merging every partial into
    the caller's sketch — merge-then-publish.

    The PR 2 sketch-algebra property suite (merge commutativity,
    associativity, idempotence) is the correctness argument, not an
    optimization: commutativity/associativity make shard routing and
    steal order irrelevant to the merged result, and idempotence lets
    {!sync} re-merge still-growing partials without clearing them or
    tracking deltas.  Hence no lock is held on the merge path — each
    partial has exactly one writer — and the result is {e equal} (not
    just close) to the single-domain merge, which [test_sharded.ml]
    pins for every sketch family under randomized shard counts and
    interleavings.

    With [shards = 1] no domains are spawned and every submit merges
    inline — the deterministic reference. *)

module Make (Sketch : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) : sig
  type t

  val create :
    ?queue_capacity:int -> shards:int -> family:Sketch.family -> unit -> t
  (** [create ~shards ~family ()] spawns [shards] worker domains (none
      when [shards = 1]) with empty partials of [family].  Each shard
      queue holds at most [queue_capacity] (default 128) pending jobs;
      submits beyond that block until a worker drains.  Raises
      [Invalid_argument] if [shards < 1]. *)

  val submit : t -> site:int -> Sketch.t -> unit
  (** Queue a site's sketch contribution for merging.  The engine takes
      ownership of the sketch — pass a copy if the caller keeps mutating
      it.  Routed to shard [site mod shards]. *)

  val submit_items : t -> site:int -> int array -> unit
  (** Queue a batch of raw items (the tracker's pending-item fast path). *)

  val sync : t -> into:Sketch.t -> unit
  (** Publish: wait until every submitted job is merged, then merge all
      shard partials into [into].  Safe to call repeatedly; partials are
      never cleared (idempotence makes re-merging harmless). *)

  val shards : t -> int
  (** The shard (and worker-domain) count this engine was created with. *)

  val submitted : t -> int
  (** Jobs accepted so far. *)

  val stolen : t -> int
  (** Jobs a worker stole from another shard's queue. *)

  val merges_per_shard : t -> int array
  (** Jobs merged by each worker (steals count for the thief). *)

  val close : t -> unit
  (** Drain outstanding jobs, stop and join the worker domains.
      Idempotent; {!submit} after close raises. *)
end
