module Network = Wd_net.Network
module Topology = Wd_net.Topology
module Transport = Wd_net.Transport
module Transport_sim = Wd_net.Transport_sim
module Faults = Wd_net.Faults
module Wire = Wd_net.Wire
module Space_saving = Wd_frequency.Space_saving
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event

type site_state = {
  counts : (int, int) Hashtbl.t; (* exact local occurrence counts *)
  last_sent : (int, int) Hashtbl.t; (* count at the item's last report *)
  mutable n_local : int; (* exact local total *)
  mutable n_sent : int; (* local total at the last total report *)
  mutable round_n : int; (* last round announcement received *)
  mutable down : bool;
  mutable down_since : int;
  mutable lost : int;
}

type t = {
  k : int;
  epsilon : float;
  top_k : int;
  transport : Transport.t;
  net : Network.t;
  site_states : site_state array;
  ss : Space_saving.t; (* coordinator top-k structure *)
  applied : (int, int) Hashtbl.t array;
  (* Per site: item -> the absolute local count already incorporated.
     Reports carry absolute counts, so retransmitted or duplicated
     copies re-derive a delta of zero — the same dedup discipline as
     {!Ds_tracker.applied}. *)
  applied_total : int array; (* per site: absolute local total applied *)
  mutable n_hat : int; (* coordinator's total-count estimate *)
  mutable round_n : int; (* current round threshold ~N *)
  max_retries : int;
  mutable sends : int;
  mutable updates : int;
  mutable sink : Sink.t;
}

let create ?(cost_model = Network.Unicast) ?network ?transport
    ?(max_retries = 5) ?(sink = Sink.null) ~epsilon ~top_k ~sites () =
  if sites < 1 then invalid_arg "Yz_hh_tracker.create: sites must be >= 1";
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Yz_hh_tracker.create: epsilon must be in (0,1)";
  if top_k < 1 then invalid_arg "Yz_hh_tracker.create: top_k must be >= 1";
  let transport =
    match (transport, network) with
    | Some _, Some _ ->
      invalid_arg "Yz_hh_tracker.create: pass ?network or ?transport, not both"
    | Some tr, None ->
      if Transport.sites tr <> sites then
        invalid_arg
          "Yz_hh_tracker.create: shared transport has wrong site count";
      tr
    | None, Some net ->
      if Network.sites net <> sites then
        invalid_arg "Yz_hh_tracker.create: shared network has wrong site count";
      Transport_sim.of_network net
    | None, None -> Transport_sim.create ~cost_model ~sites ()
  in
  let net = Transport.ledger transport in
  let fresh_site () =
    {
      counts = Hashtbl.create 64;
      last_sent = Hashtbl.create 64;
      n_local = 0;
      n_sent = 0;
      round_n = 1;
      down = false;
      down_since = 0;
      lost = 0;
    }
  in
  let capacity =
    max top_k (int_of_float (Float.ceil (2.0 /. epsilon)))
  in
  {
    k = sites;
    epsilon;
    top_k;
    transport;
    net;
    site_states = Array.init sites (fun _ -> fresh_site ());
    ss = Space_saving.create ~capacity;
    applied = Array.init sites (fun _ -> Hashtbl.create 64);
    applied_total = Array.make sites 0;
    n_hat = 0;
    round_n = 1;
    max_retries;
    sends = 0;
    updates = 0;
    sink;
  }

let sites t = t.k
let epsilon t = t.epsilon
let network t = t.net
let transport t = t.transport
let sends t = t.sends
let updates t = t.updates
let set_sink t sink = t.sink <- sink
let total_estimate t = t.n_hat
let round t = t.round_n
let top t ~k = Space_saving.top t.ss ~k
let query t v = Space_saving.query t.ss v
let max_count_error t = Space_saving.max_error t.ss

let emit t kind =
  if Sink.enabled t.sink then Sink.emit t.sink { Event.time = t.updates; kind }

let site_down_for t i =
  let st = t.site_states.(i) in
  if st.down then t.updates - st.down_since else 0

let lost_updates t =
  Array.fold_left (fun acc st -> acc + st.lost) 0 t.site_states

let find0 table v = Option.value (Hashtbl.find_opt table v) ~default:0

(* The round's report threshold Delta = eps * ~N / (2k), floored at 1:
   each site's knowledge lag is < Delta per tracked quantity, so the
   coordinator's per-item and total lags stay within eps * N overall. *)
let delta_of t round_n =
  max 1 (int_of_float (t.epsilon *. Float.of_int round_n /. (2.0 *. Float.of_int t.k)))

let site_send_threshold t i =
  if i < 0 || i >= t.k then
    invalid_arg "Yz_hh_tracker.site_send_threshold: site index out of range";
  Float.of_int (delta_of t t.site_states.(i).round_n)

(* Store-and-forward over a tree backbone: reports carry absolute
   per-site state no intermediate aggregator can merge away. *)
let forward_path t ~site ~payload =
  match Network.tree_topology t.net with
  | None -> ()
  | Some topo ->
    (try
       List.iter
         (fun j ->
           if not (Network.forward_up t.net ~agg:j ~payload) then raise Exit)
         (Topology.path_of_site topo site)
     with Exit -> ())

(* When the applied total crosses the doubling point, advance the round
   and announce the new ~N.  A site that misses the announcement keeps
   its smaller Delta — it merely reports more often than needed, never
   less, so the error bound is fault-safe. *)
let maybe_advance_round t =
  if t.n_hat >= 2 * t.round_n then begin
    while t.n_hat >= 2 * t.round_n do
      t.round_n <- t.round_n * 2
    done;
    emit t (Event.Level_advance { previous = 0; level = t.round_n });
    let outcomes =
      Transport.transmit_broadcast t.transport ~except:None
        ~payload:Wire.count_bytes
    in
    Array.iteri
      (fun j (st : site_state) ->
        match outcomes.(j) with
        | Faults.Delivered n when n > 0 -> st.round_n <- t.round_n
        | Faults.Delivered _ | Faults.Lost _ -> ())
      t.site_states
  end

(* Ship one report: (item, absolute item count, absolute site total). *)
let report t site st v c =
  if Sink.enabled t.sink then
    emit t (Event.Count_sent { site; item = v; count = c; delta = c - find0 st.last_sent v });
  let payload = Wire.item_bytes + (2 * Wire.count_bytes) in
  let delivery =
    Transport.reliable_up ~max_retries:t.max_retries t.transport ~site ~payload
  in
  t.sends <- t.sends + 1;
  if delivery.Network.acked then begin
    Hashtbl.replace st.last_sent v c;
    st.n_sent <- st.n_local
  end;
  if delivery.Network.received then begin
    forward_path t ~site ~payload;
    let applied = t.applied.(site) in
    let item_delta = c - find0 applied v in
    if item_delta > 0 then begin
      Space_saving.add t.ss ~count:item_delta v;
      Hashtbl.replace applied v c
    end;
    let total_delta = st.n_local - t.applied_total.(site) in
    if total_delta > 0 then begin
      t.n_hat <- t.n_hat + total_delta;
      t.applied_total.(site) <- st.n_local
    end;
    maybe_advance_round t
  end

let wipe_site st =
  Hashtbl.reset st.counts;
  Hashtbl.reset st.last_sent;
  st.n_local <- 0;
  st.n_sent <- 0

(* Re-seed a restarted site with the counts the coordinator has credited
   to it, so it resumes from there instead of silently undercounting. *)
let resync_restarted t i st =
  let tbl = t.applied.(i) in
  let payload =
    Wire.count_bytes + Wire.item_count_pairs (Hashtbl.length tbl)
  in
  let d =
    Transport.reliable_down ~max_retries:t.max_retries t.transport ~site:i
      ~payload
  in
  if d.Network.received then begin
    Hashtbl.iter
      (fun v c ->
        Hashtbl.replace st.counts v c;
        Hashtbl.replace st.last_sent v c)
      tbl;
    st.n_local <- t.applied_total.(i);
    st.n_sent <- t.applied_total.(i);
    st.round_n <- t.round_n
  end

let scan_crashes t =
  Array.iteri
    (fun i st ->
      let now_down = Transport.site_down t.transport ~site:i in
      if now_down && not st.down then begin
        st.down <- true;
        st.down_since <- t.updates;
        wipe_site st;
        emit t (Event.Crash { site = i })
      end
      else if (not now_down) && st.down then begin
        st.down <- false;
        let before = Network.total_bytes t.net in
        resync_restarted t i st;
        let resync_bytes = Network.total_bytes t.net - before in
        if resync_bytes > 0 then
          emit t (Event.Resync { site = i; bytes = resync_bytes });
        emit t (Event.Recover { site = i; resync_bytes })
      end)
    t.site_states

let[@inline] observe_one t ~crashes ~site v =
  t.updates <- t.updates + 1;
  Transport.set_time t.transport t.updates;
  if crashes then scan_crashes t;
  let st = t.site_states.(site) in
  if st.down then st.lost <- st.lost + 1
  else begin
    st.n_local <- st.n_local + 1;
    let c = find0 st.counts v + 1 in
    Hashtbl.replace st.counts v c;
    let d = delta_of t st.round_n in
    if c - find0 st.last_sent v >= d || st.n_local - st.n_sent >= d then
      report t site st v c
  end

let observe t ~site v =
  if site < 0 || site >= t.k then
    invalid_arg "Yz_hh_tracker.observe: site index out of range";
  observe_one t ~crashes:(Faults.has_crashes (Network.faults t.net)) ~site v

let observe_batch t ~sites ~items ~pos ~len =
  let n = Array.length sites in
  if Array.length items <> n then
    invalid_arg "Yz_hh_tracker.observe_batch: sites/items length mismatch";
  if pos < 0 || len < 0 || pos + len > n then
    invalid_arg "Yz_hh_tracker.observe_batch: slice out of range";
  let crashes = Faults.has_crashes (Network.faults t.net) in
  let k = t.k in
  for j = pos to pos + len - 1 do
    let site = Array.unsafe_get sites j in
    if site < 0 || site >= k then
      invalid_arg "Yz_hh_tracker.observe_batch: site index out of range";
    observe_one t ~crashes ~site (Array.unsafe_get items j)
  done

let site_space_bytes t i =
  let st = t.site_states.(i) in
  Wire.item_count_pairs (Hashtbl.length st.counts + Hashtbl.length st.last_sent)
  + (2 * Wire.count_bytes)

let coordinator_space_bytes t =
  Wire.item_count_pairs (Space_saving.monitored t.ss)
  + (Wire.count_bytes * (1 + t.k))

(* The shared-surface view drivers dispatch over (Tracker_intf). *)
module Generic = struct
  type nonrec t = t

  let kind = "yzhh"
  let algorithm_name _ = "YZ"
  let sites = sites
  let observe = observe
  let observe_batch = observe_batch
  let estimate t = Float.of_int t.n_hat
  let site_send_threshold t ~site ~item:_ = site_send_threshold t site
  let updates = updates
  let sends = sends
  let lost_updates = lost_updates
  let site_down_for = site_down_for
  let set_sink = set_sink
  let network = network
  let transport = transport
end

let generic t = Tracker_intf.Tracker ((module Generic), t)
