(** Deterministic continuous heavy-hitter tracking in the Yi–Zhang
    style (PODS'09, "Optimal Tracking of Distributed Heavy Hitters and
    Quantiles"): worst-case communication O((k/eps) log N), matching the
    lower bound — the optimality target the eval harness gates against.

    Protocol shape: the run proceeds in rounds, each with a threshold
    [~N] (the coordinator's current total-count estimate, maintained by
    doubling).  Within a round a site reports whenever a local quantity
    — an item's occurrence count, or the site's total — has grown by
    [Delta = eps * ~N / (2k)] since its last report; each report carries
    the item with its {e absolute} local count plus the site's absolute
    total, so duplicated or retransmitted reports are harmless (the
    coordinator applies deltas against what it already credited, as in
    {!Ds_tracker}).  When the applied total doubles, the coordinator
    broadcasts the new round threshold.  The coordinator folds item
    deltas into a {!Wd_frequency.Space_saving} structure of capacity
    [max top_k (2/eps)], so any item with frequency above [eps * N] is
    monitored and every estimate is within [eps * N] of truth.

    This is the classical duplicate-{e sensitive} notion of heavy hitter
    (like {!Wd_frequency.Space_saving} itself): the optimal
    frequency-based contender run beside the paper's duplicate-resilient
    distinct heavy hitters, byte for byte.

    Under a tree topology ({!Wd_net.Topology}) delivered reports
    store-and-forward over the backbone unchanged — absolute per-site
    state cannot be merged mid-route. *)

type t

val create :
  ?cost_model:Wd_net.Network.cost_model ->
  ?network:Wd_net.Network.t ->
  ?transport:Wd_net.Transport.t ->
  ?max_retries:int ->
  ?sink:Wd_obs.Sink.t ->
  epsilon:float ->
  top_k:int ->
  sites:int ->
  unit ->
  t
(** [create ~epsilon ~top_k ~sites ()] builds a fresh tracker.
    [epsilon] is the total-count accuracy (errors are within
    [epsilon * N]); [top_k] floors the coordinator structure's capacity.
    [network]/[transport]/[max_retries]/[sink] behave as in
    {!Ds_tracker.create}.  Requires [sites >= 1], [0 < epsilon < 1] and
    [top_k >= 1]. *)

val observe : t -> site:int -> int -> unit

val observe_batch :
  t -> sites:int array -> items:int array -> pos:int -> len:int -> unit

val sites : t -> int
val epsilon : t -> float

val total_estimate : t -> int
(** The coordinator's running total-count estimate [~N]; within
    [epsilon * N] of the true number of (surviving) arrivals. *)

val round : t -> int
(** The current round threshold (a power of two times the initial 1). *)

val top : t -> k:int -> (int * int) list
(** The [k] heaviest monitored items with their estimated global
    occurrence counts, descending. *)

val query : t -> int -> int option
(** Estimated global count of one item, if monitored. *)

val max_count_error : t -> int
(** Worst-case overestimate of any monitored count (the Space-Saving
    bound at the coordinator; site lag adds at most
    [epsilon * N / 2]). *)

val site_send_threshold : t -> int -> float
(** The site's current report threshold [Delta]. *)

val sends : t -> int
val updates : t -> int
val lost_updates : t -> int
val site_down_for : t -> int -> int
val set_sink : t -> Wd_obs.Sink.t -> unit
val network : t -> Wd_net.Network.t
val transport : t -> Wd_net.Transport.t
val site_space_bytes : t -> int -> int
val coordinator_space_bytes : t -> int

(** This tracker seen through the shared {!Tracker_intf.TRACKER}
    surface ([estimate] is the total-count estimate; [item] is ignored
    by the threshold, which is per-site). *)
module Generic : Tracker_intf.TRACKER with type t = t

val generic : t -> Tracker_intf.packed
