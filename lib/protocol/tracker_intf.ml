(** The shared [TRACKER] signature both continuous-monitoring protocols
    implement.

    {!Dc_tracker} (distinct counts, Section 4) and {!Ds_tracker}
    (distinct samples, Section 5) expose the same operational surface:
    feed updates in, read a continuously-valid estimate out, introspect
    the send threshold that decides when a site speaks.  This module
    names that surface once so drivers — Monitor's health scan,
    Simulation's feed loop — dispatch over a [packed] tracker instead of
    duplicating per-variant glue.

    Construction stays per-tracker (the two [create]s legitimately
    differ: sketch families vs. sampler families, item batching vs.
    delta dedup), so the signature covers a {e running} tracker; each
    tracker module provides [generic : t -> packed] to enter it. *)

module type TRACKER = sig
  type t

  val kind : string
  (** Which protocol family: ["dc"] or ["ds"]. *)

  val algorithm_name : t -> string
  (** The paper's name for the running algorithm (["LS"], ["GCS"], …). *)

  val sites : t -> int

  val observe : t -> site:int -> int -> unit
  (** Process one arrival at a remote site. *)

  val observe_batch :
    t -> sites:int array -> items:int array -> pos:int -> len:int -> unit
  (** Process a slice of arrivals; update-for-update identical to a loop
      of {!observe}. *)

  val estimate : t -> float
  (** The coordinator's continuously-valid answer: the distinct-count
      estimate for ["dc"], the sampler's distinct estimate for ["ds"]. *)

  val site_send_threshold : t -> site:int -> item:int -> float
  (** The threshold governing when [site] next speaks, under current
      shared state.  ["dc"] thresholds are per-site ([item] is ignored);
      ["ds"] thresholds are per-(site, item) counts.  Raises
      [Invalid_argument] for the exact algorithms (EC/EDS), which have
      no threshold. *)

  val updates : t -> int
  val sends : t -> int

  val lost_updates : t -> int
  (** Arrivals discarded because their site was inside a crash window. *)

  val site_down_for : t -> int -> int
  (** Updates since the site's crash-window entry ([0] when up). *)

  val set_sink : t -> Wd_obs.Sink.t -> unit
  val network : t -> Wd_net.Network.t
  val transport : t -> Wd_net.Transport.t
end

type packed = Tracker : (module TRACKER with type t = 'a) * 'a -> packed
(** A running tracker with its protocol hidden; drivers hold this. *)

(** {1 Dispatch} *)

let kind (Tracker ((module T), _)) = T.kind
let algorithm_name (Tracker ((module T), tr)) = T.algorithm_name tr
let sites (Tracker ((module T), tr)) = T.sites tr
let observe (Tracker ((module T), tr)) ~site v = T.observe tr ~site v

let observe_batch (Tracker ((module T), tr)) ~sites ~items ~pos ~len =
  T.observe_batch tr ~sites ~items ~pos ~len

let estimate (Tracker ((module T), tr)) = T.estimate tr

let site_send_threshold (Tracker ((module T), tr)) ~site ~item =
  T.site_send_threshold tr ~site ~item

let updates (Tracker ((module T), tr)) = T.updates tr
let sends (Tracker ((module T), tr)) = T.sends tr
let lost_updates (Tracker ((module T), tr)) = T.lost_updates tr
let site_down_for (Tracker ((module T), tr)) site = T.site_down_for tr site
let set_sink (Tracker ((module T), tr)) sink = T.set_sink tr sink
let network (Tracker ((module T), tr)) = T.network tr
let transport (Tracker ((module T), tr)) = T.transport tr
