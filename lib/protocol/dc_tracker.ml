module Network = Wd_net.Network
module Transport = Wd_net.Transport
module Transport_sim = Wd_net.Transport_sim
module Topology = Wd_net.Topology
module Faults = Wd_net.Faults
module Wire = Wd_net.Wire
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event

type algorithm = NS | SC | SS | LS | EC

let all_algorithms = [ NS; SC; SS; LS; EC ]

let approximate_algorithms = [ NS; SC; SS; LS ]

let algorithm_to_string = function
  | NS -> "NS"
  | SC -> "SC"
  | SS -> "SS"
  | LS -> "LS"
  | EC -> "EC"

let algorithm_of_string s =
  match String.uppercase_ascii s with
  | "NS" -> Some NS
  | "SC" -> Some SC
  | "SS" -> Some SS
  | "LS" -> Some LS
  | "EC" -> Some EC
  | _ -> None

module Make (Sketch : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) = struct
  module Engine = Sharded.Make (Sketch)

  type site_state = {
    mutable sk : Sketch.t;
    (* Local sketch.  Under NS/SC it summarizes only the local stream;
       under SS/LS it is the site's copy of the global sketch, into which
       local arrivals are also inserted.  Mutable so a crash can wipe it. *)
    mutable d_est : float; (* cached |sk| *)
    mutable d_last : float; (* D_i^t: |sk| when this site last sent *)
    mutable d0_known : float; (* D_0^t: last global estimate received *)
    pending : (int, unit) Hashtbl.t;
    (* Items whose insertion changed [sk] since the last send; shipping
       these verbatim reconstructs the site's contribution at the
       coordinator (Section 4.2 optimization). *)
    mutable pending_valid : bool;
    (* False once [pending] overflowed its space cap; the next send must
       ship the sketch itself. *)
    mutable coord_known : Sketch.t;
    (* Coordinator side: everything this site is known to hold — its past
       contributions plus (LS) the global sketches returned to it.  LS
       replies are priced as the delta against this model.  Must stay a
       subset of the site's real state, so it is wiped on crash and only
       grows again on acknowledged exchanges. *)
    seen : (int, unit) Hashtbl.t; (* EC only: exact local duplicate filter *)
    mutable down : bool;
    mutable down_since : int; (* update index of the crash transition *)
    mutable lost : int; (* arrivals discarded while down *)
  }

  (* One intermediate aggregator of a tree topology.  An aggregator
     holds only dedup memory — the union of everything it has forwarded
     toward the root — so a crash loses no protocol state: the sketch is
     wiped and subsequent contributions are simply forwarded in full
     again (more bytes, never a wrong answer), which is exactly the
     merge-idempotence argument that makes the protocols fault-safe. *)
  type agg_state = {
    mutable a_sk : Sketch.t; (* merged copies of forwarded contributions *)
    a_seen : (int, unit) Hashtbl.t; (* EC: exact forwarded-item filter *)
    mutable a_down : bool;
  }

  type t = {
    algorithm : algorithm;
    k : int;
    theta : float;
    family : Sketch.family;
    item_batching : bool;
    delta_replies : bool;
    pending_cap : int; (* max tracked pending items per site *)
    transport : Transport.t; (* the pluggable carrier all traffic rides *)
    net : Network.t; (* its ledger, cached for accounting reads *)
    site_states : site_state array;
    sk0 : Sketch.t; (* coordinator's merged sketch (unused by EC) *)
    (* Sharded coordinator: contributions are routed to per-shard worker
       domains and merged into [sk0] at publish points (see
       {!Sharded}).  [None] keeps the historical inline merge. *)
    sharding : Engine.t option;
    mutable sk0_dirty : bool; (* sharded NS: submits not yet published *)
    mutable d0 : float; (* coordinator's current estimate *)
    exact : (int, unit) Hashtbl.t; (* EC only: coordinator's exact set *)
    max_retries : int;
    mutable sends : int;
    mutable updates : int;
    mutable sink : Sink.t; (* protocol-decision events; see Wd_obs *)
    mutable aggs : agg_state array;
    (* Tree aggregators, lazily sized to the ledger's installed topology
       (which may be set after tracker creation); empty for the star. *)
  }

  let create ?(cost_model = Network.Unicast) ?network ?transport
      ?(item_batching = true) ?(delta_replies = true) ?(max_retries = 5)
      ?(sink = Sink.null) ?(shards = 1) ~algorithm ~theta ~sites ~family () =
    if sites < 1 then invalid_arg "Dc_tracker.create: sites must be >= 1";
    if algorithm <> EC && theta <= 0.0 then
      invalid_arg "Dc_tracker.create: theta must be positive";
    if shards < 1 then invalid_arg "Dc_tracker.create: shards must be >= 1";
    if shards > 1 && algorithm = EC then
      invalid_arg
        "Dc_tracker.create: EC keeps an exact set, not a mergeable sketch; \
         sharding does not apply";
    let transport =
      match (transport, network) with
      | Some _, Some _ ->
        invalid_arg "Dc_tracker.create: pass ?network or ?transport, not both"
      | Some tr, None ->
        if Transport.sites tr <> sites then
          invalid_arg "Dc_tracker.create: shared transport has wrong site count";
        tr
      | None, Some net ->
        if Network.sites net <> sites then
          invalid_arg "Dc_tracker.create: shared network has wrong site count";
        Transport_sim.of_network net
      | None, None -> Transport_sim.create ~cost_model ~sites ()
    in
    let net = Transport.ledger transport in
    let fresh_site () =
      {
        sk = Sketch.create family;
        d_est = 0.0;
        d_last = 0.0;
        d0_known = 0.0;
        pending = Hashtbl.create 16;
        pending_valid = true;
        coord_known = Sketch.create family;
        seen = Hashtbl.create 16;
        down = false;
        down_since = 0;
        lost = 0;
      }
    in
    let sketch_bytes = Sketch.size_bytes (Sketch.create family) in
    {
      algorithm;
      k = sites;
      theta;
      family;
      item_batching;
      delta_replies;
      pending_cap = max 1 (sketch_bytes / Wire.item_bytes);
      transport;
      net;
      site_states = Array.init sites (fun _ -> fresh_site ());
      sk0 = Sketch.create family;
      sharding =
        (if shards > 1 then Some (Engine.create ~shards ~family ()) else None);
      sk0_dirty = false;
      d0 = 0.0;
      exact = Hashtbl.create 1024;
      max_retries;
      sends = 0;
      updates = 0;
      sink;
      aggs = [||];
    }

  let algorithm t = t.algorithm
  let sites t = t.k
  let theta t = t.theta
  let network t = t.net
  let transport t = t.transport
  let sends t = t.sends
  let updates t = t.updates
  let set_sink t sink = t.sink <- sink

  let shards t =
    match t.sharding with None -> 1 | Some eng -> Engine.shards eng

  let shard_merges t =
    match t.sharding with
    | None -> None
    | Some eng -> Some (Engine.merges_per_shard eng)

  let emit t kind =
    if Sink.enabled t.sink then
      Sink.emit t.sink { Event.time = t.updates; kind }

  let site_down_for t i =
    let st = t.site_states.(i) in
    if st.down then t.updates - st.down_since else 0

  let lost_updates t =
    Array.fold_left (fun acc st -> acc + st.lost) 0 t.site_states

  (* Publish point of the sharded merge path: drain the engine, merge
     every shard partial into [sk0] and refresh [d0].  Only sharded NS
     ever defers (it has no coordinator reaction that reads the global
     state per send); the other algorithms sync inside
     [deliver_contribution], so this is a no-op for them. *)
  let publish t =
    match t.sharding with
    | None -> ()
    | Some eng ->
      if t.sk0_dirty then begin
        Engine.sync eng ~into:t.sk0;
        t.sk0_dirty <- false;
        let d0_old = t.d0 in
        t.d0 <- Sketch.estimate t.sk0;
        if t.d0 <> d0_old then
          emit t (Event.Estimate_update { previous = d0_old; estimate = t.d0 })
      end

  let estimate t =
    match t.algorithm with
    | EC -> Float.of_int (Hashtbl.length t.exact)
    | NS | SC | SS | LS ->
      publish t;
      t.d0

  let site_estimate t i = t.site_states.(i).d_est

  let coordinator_sketch t =
    match t.algorithm with
    | EC -> None
    | NS | SC | SS | LS ->
      publish t;
      Some t.sk0

  let site_sketch t i =
    match t.algorithm with
    | EC -> None
    | NS | SC | SS | LS -> Some t.site_states.(i).sk

  (* The per-algorithm threshold skt(theta, k, D_0^t, D_i^t) of Figure 2. *)
  let send_threshold t st =
    let over = t.theta /. Float.of_int t.k in
    match t.algorithm with
    | NS -> st.d_last *. (1.0 +. over)
    | SC -> st.d_last +. (over *. st.d0_known)
    | SS | LS -> st.d0_known *. (1.0 +. over)
    | EC ->
      invalid_arg
        "Dc_tracker.send_threshold: exact algorithm EC has no send threshold"

  let site_send_threshold t i =
    if i < 0 || i >= t.k then
      invalid_arg "Dc_tracker.site_send_threshold: site index out of range";
    send_threshold t t.site_states.(i)

  let ensure_aggs t =
    match Network.tree_topology t.net with
    | None -> [||]
    | Some topo ->
      let a = Topology.aggs topo in
      if Array.length t.aggs <> a then
        t.aggs <-
          Array.init a (fun _ ->
              {
                a_sk = Sketch.create t.family;
                a_seen = Hashtbl.create 16;
                a_down = false;
              });
      t.aggs

  (* Walk the sender's backbone route after a delivered contribution: at
     each aggregator, merge the contribution into its dedup sketch and
     forward only what is genuinely new to it.  A hop that learns
     nothing forwards nothing and ends the walk — everything it just saw
     already passed through it (and, inductively, through every ancestor)
     on an earlier contribution.  This is the tree's bandwidth story:
     cross-site duplicates die at the lowest common aggregator instead
     of riding every hop to the root. *)
  let forward_through_tree t site st ~use_items =
    match
      match Network.tree_topology t.net with
      | None -> []
      | Some topo -> Topology.path_of_site topo site
    with
    | [] -> ()
    | path ->
      let aggs = ensure_aggs t in
      let continue = ref true in
      List.iter
        (fun j ->
          if !continue then begin
            let a = aggs.(j) in
            let payload =
              if use_items then begin
                let n_new =
                  Hashtbl.fold
                    (fun v () n -> if Sketch.add a.a_sk v then n + 1 else n)
                    st.pending 0
                in
                if n_new = 0 then None else Some (Wire.items n_new)
              end
              else begin
                let d = Sketch.delta_bytes ~from:a.a_sk st.sk in
                Sketch.merge_into ~dst:a.a_sk st.sk;
                if d = 0 then None
                else Some (min d (Sketch.size_bytes st.sk))
              end
            in
            match payload with
            | None -> continue := false
            | Some payload ->
              ignore (Network.forward_up t.net ~agg:j ~payload : bool)
          end)
        path

  (* EC's per-item analogue: forward the item only past aggregators that
     have never seen it. *)
  let forward_item_through_tree t site v =
    match
      match Network.tree_topology t.net with
      | None -> []
      | Some topo -> Topology.path_of_site topo site
    with
    | [] -> ()
    | path -> (
      let aggs = ensure_aggs t in
      try
        List.iter
          (fun j ->
            let a = aggs.(j) in
            if Hashtbl.mem a.a_seen v then raise Exit;
            Hashtbl.replace a.a_seen v ();
            ignore
              (Network.forward_up t.net ~agg:j ~payload:Wire.item_bytes : bool))
          path
      with Exit -> ())

  let emit_sketch_sent t ~site ~payload ~items =
    if Sink.enabled t.sink then
      Sink.emit t.sink
        {
          Event.time = t.updates;
          kind =
            Event.Sketch_sent
              { site; bytes = Wire.message ~payload; items };
        }

  (* Ship site [i]'s contribution upstream: the accumulated new items if
     that is the cheaper encoding, else the whole local sketch.  With an
     enabled fault plan the send is acknowledged and retried
     ({!Network.reliable_up}); the coordinator merges only what actually
     arrived, and the site clears its send state only once the exchange
     is acknowledged — an unacknowledged site keeps its pending set and
     simply retriggers later, which is safe precisely because sketch
     merges are idempotent.  Returns the delivery outcome and whether the
     coordinator sketch changed. *)
  let deliver_contribution t i st =
    let n_pending = Hashtbl.length st.pending in
    let use_items =
      st.pending_valid && t.item_batching
      && Wire.items n_pending < Sketch.size_bytes st.sk
    in
    let payload, items =
      if use_items then (Wire.items n_pending, Some n_pending)
      else (Sketch.size_bytes st.sk, None)
    in
    let delivery =
      Transport.reliable_up ~max_retries:t.max_retries t.transport ~site:i ~payload
    in
    emit_sketch_sent t ~site:i ~payload ~items;
    if delivery.Network.received then forward_through_tree t i st ~use_items;
    let changed =
      if not delivery.Network.received then false
      else
        match t.sharding with
        | None ->
          if use_items then
            Hashtbl.fold
              (fun v () changed ->
                ignore (Sketch.add st.coord_known v : bool);
                Sketch.add t.sk0 v || changed)
              st.pending false
          else begin
            Sketch.merge_into ~dst:st.coord_known st.sk;
            let before = Sketch.copy t.sk0 in
            Sketch.merge_into ~dst:t.sk0 st.sk;
            not (Sketch.equal before t.sk0)
          end
        | Some eng ->
          (* The per-site model [coord_known] stays on this thread (it
             has one writer anyway); only the global merge crosses
             shards.  NS has no coordinator reaction reading the global
             state, so its submits stay queued until the next publish
             point; the other algorithms read [sk0]/[d0] immediately in
             [coordinator_react], so they sync here — every read of the
             published state sees exactly the single-domain result. *)
          if use_items then begin
            let items = Array.make (Hashtbl.length st.pending) 0 in
            let j = ref 0 in
            Hashtbl.iter
              (fun v () ->
                ignore (Sketch.add st.coord_known v : bool);
                items.(!j) <- v;
                incr j)
              st.pending;
            Engine.submit_items eng ~site:i items
          end
          else begin
            Sketch.merge_into ~dst:st.coord_known st.sk;
            Engine.submit eng ~site:i (Sketch.copy st.sk)
          end;
          t.sk0_dirty <- true;
          if t.algorithm = NS then false
          else begin
            let before = Sketch.copy t.sk0 in
            Engine.sync eng ~into:t.sk0;
            t.sk0_dirty <- false;
            (* Exact also for the items path: sketches grow monotonically
               under [add]/[merge_into], so "some add changed the state"
               and "the drained merge left a different state" coincide. *)
            not (Sketch.equal before t.sk0)
          end
    in
    if delivery.Network.acked then begin
      Hashtbl.reset st.pending;
      st.pending_valid <- true;
      st.d_last <- st.d_est
    end;
    t.sends <- t.sends + 1;
    (delivery, changed)

  (* The coordinator's reaction skm(i, Sk_0) of Figure 2.  Only runs when
     the sender's contribution was received; [acked] says whether the
     sender knows that.  Downstream state installs are gated on actual
     delivery, so a site behind a lossy link keeps a stale (never wrong)
     view and catches up on a later exchange. *)
  let coordinator_react t ~sender:i ~acked ~sk0_changed =
    let d0_old = t.d0 in
    (* Sharded NS defers the global estimate to the next publish point
       (it reads nothing global here); everyone else just synced in
       [deliver_contribution], so [sk0] is current. *)
    (match t.sharding with
    | Some _ when t.algorithm = NS -> ()
    | None | Some _ ->
      t.d0 <- Sketch.estimate t.sk0;
      if t.d0 <> d0_old then
        emit t (Event.Estimate_update { previous = d0_old; estimate = t.d0 }));
    match t.algorithm with
    | NS -> ()
    | SC ->
      if t.d0 <> d0_old then begin
        let outcomes =
          Transport.transmit_broadcast t.transport ~except:None
            ~payload:Wire.count_bytes
        in
        Array.iteri
          (fun j st ->
            match outcomes.(j) with
            | Faults.Delivered n when n > 0 -> st.d0_known <- t.d0
            | Faults.Delivered _ | Faults.Lost _ -> ())
          t.site_states
      end
    | SS ->
      (* Sender's copy now equals Sk_0 (it just contributed everything it
         knew, and every earlier global change was broadcast to it), so it
         refreshes its own D_0^t locally — but only once it knows the
         contribution arrived; everyone else gets the sketch. *)
      let sender_st = t.site_states.(i) in
      if acked then sender_st.d0_known <- sender_st.d_est;
      if sk0_changed then begin
        let outcomes =
          Transport.transmit_broadcast t.transport ~except:(Some i)
            ~payload:(Sketch.size_bytes t.sk0)
        in
        Array.iteri
          (fun j st ->
            if j <> i then begin
              match outcomes.(j) with
              | Faults.Delivered n when n > 0 ->
                Sketch.merge_into ~dst:st.sk t.sk0;
                st.d_est <- Sketch.estimate st.sk;
                st.d0_known <- t.d0
              | Faults.Delivered _ | Faults.Lost _ -> ()
            end)
          t.site_states
      end
    | LS ->
      let st = t.site_states.(i) in
      (* The coordinator knows exactly what the sender holds (it just
         received the site's full contribution on top of the last reply),
         so the reply can carry only the missing information when delta
         encoding is on. *)
      let payload =
        if t.delta_replies then
          min (Sketch.size_bytes t.sk0)
            (Sketch.delta_bytes ~from:st.coord_known t.sk0)
        else Sketch.size_bytes t.sk0
      in
      let reply =
        Transport.reliable_down ~max_retries:t.max_retries t.transport ~site:i ~payload
      in
      emit t (Event.Resync { site = i; bytes = Wire.message ~payload });
      if reply.Network.received then begin
        Sketch.merge_into ~dst:st.sk t.sk0;
        st.d_est <- Sketch.estimate st.sk;
        st.d0_known <- t.d0
      end;
      if reply.Network.acked then begin
        (* Both ends saw the full exchange: they now agree exactly, and
           the coordinator may extend its model of the site.  (On a lost
           or unacknowledged reply the model stays a subset of the site's
           state, which keeps delta pricing lossless.) *)
        Sketch.merge_into ~dst:st.coord_known t.sk0;
        st.d_last <- st.d_est
      end
    | EC ->
      invalid_arg
        "Dc_tracker.coordinator_react: exact algorithm EC has no sketch \
         reaction"

  let observe_exact t ~site v =
    let st = t.site_states.(site) in
    if not (Hashtbl.mem st.seen v) then begin
      let delivery =
        Transport.reliable_up ~max_retries:t.max_retries t.transport ~site
          ~payload:Wire.item_bytes
      in
      (* Remember the item only when the coordinator confirmed it; an
         unconfirmed item is resent on its next local arrival, and the
         coordinator's exact set absorbs any duplicates. *)
      if delivery.Network.acked then Hashtbl.replace st.seen v ();
      if delivery.Network.received then begin
        forward_item_through_tree t site v;
        if not (Hashtbl.mem t.exact v) then Hashtbl.replace t.exact v ()
      end;
      t.sends <- t.sends + 1
    end

  let wipe_site t st =
    st.sk <- Sketch.create t.family;
    st.coord_known <- Sketch.create t.family;
    Hashtbl.reset st.pending;
    st.pending_valid <- true;
    st.d_est <- 0.0;
    st.d_last <- 0.0;
    st.d0_known <- 0.0;
    Hashtbl.reset st.seen

  (* Re-seed a freshly restarted site from the coordinator, replaying the
     current global state rather than the lost per-message deltas. *)
  let resync_restarted t i st =
    match t.algorithm with
    | NS | EC -> () (* no downstream state to replay; the site restarts cold *)
    | SC ->
      let d =
        Transport.reliable_down ~max_retries:t.max_retries t.transport ~site:i
          ~payload:Wire.count_bytes
      in
      if d.Network.received then st.d0_known <- t.d0
    | SS | LS ->
      let payload = Sketch.size_bytes t.sk0 in
      let d =
        Transport.reliable_down ~max_retries:t.max_retries t.transport ~site:i ~payload
      in
      if d.Network.received then begin
        Sketch.merge_into ~dst:st.sk t.sk0;
        st.d_est <- Sketch.estimate st.sk;
        st.d0_known <- t.d0
      end;
      if d.Network.acked then begin
        Sketch.merge_into ~dst:st.coord_known t.sk0;
        st.d_last <- st.d_est
      end

  (* Aggregator crash transitions (fault-plan node [k + j]).  An
     aggregator holds only dedup memory — merged copies of contributions
     it already forwarded — so a crash loses no protocol state: wipe the
     memory and later contributions re-forward through it, which is safe
     because sketch merges are idempotent (the root just pays the hop
     again).  No resync traffic is ever needed. *)
  let scan_agg_crashes t =
    Array.iteri
      (fun j a ->
        let node = t.k + j in
        let now_down = Transport.site_down t.transport ~site:node in
        if now_down && not a.a_down then begin
          a.a_down <- true;
          a.a_sk <- Sketch.create t.family;
          Hashtbl.reset a.a_seen;
          emit t (Event.Crash { site = node })
        end
        else if (not now_down) && a.a_down then begin
          a.a_down <- false;
          emit t (Event.Recover { site = node; resync_bytes = 0 })
        end)
      (ensure_aggs t)

  let scan_crashes t =
    scan_agg_crashes t;
    Array.iteri
      (fun i st ->
        let now_down = Transport.site_down t.transport ~site:i in
        if now_down && not st.down then begin
          st.down <- true;
          st.down_since <- t.updates;
          (* Volatile state dies with the site; the coordinator's model of
             it must shrink to match (it now holds nothing). *)
          wipe_site t st;
          emit t (Event.Crash { site = i })
        end
        else if (not now_down) && st.down then begin
          st.down <- false;
          let before = Network.total_bytes t.net in
          resync_restarted t i st;
          let resync_bytes = Network.total_bytes t.net - before in
          if resync_bytes > 0 then
            emit t (Event.Resync { site = i; bytes = resync_bytes });
          emit t (Event.Recover { site = i; resync_bytes })
        end)
      t.site_states

  let observe_approx t ~site v =
    let st = t.site_states.(site) in
    if Sketch.add st.sk v then begin
      (* The local summary changed: refresh the cached estimate, remember
         the item for cheap shipping, and test the send threshold. *)
      st.d_est <- Sketch.estimate st.sk;
      if st.pending_valid then
        if Hashtbl.length st.pending >= t.pending_cap then begin
          Hashtbl.reset st.pending;
          st.pending_valid <- false
        end
        else Hashtbl.replace st.pending v ();
      let threshold = send_threshold t st in
      if st.d_est > threshold then begin
        if Sink.enabled t.sink then
          Sink.emit t.sink
            {
              Event.time = t.updates;
              kind =
                Event.Threshold_crossed
                  { site; estimate = st.d_est; threshold };
            };
        let delivery, sk0_changed = deliver_contribution t site st in
        if delivery.Network.received then
          coordinator_react t ~sender:site ~acked:delivery.Network.acked
            ~sk0_changed
      end
    end

  (* One update with the crash-scan decision already made; [observe] and
     [observe_batch] share this body so their behaviour is identical
     update for update. *)
  let[@inline] observe_one t ~crashes ~site v =
    t.updates <- t.updates + 1;
    Transport.set_time t.transport t.updates;
    if crashes then scan_crashes t;
    let st = t.site_states.(site) in
    if st.down then
      (* A dead site observes nothing; the arrival is gone for good. *)
      st.lost <- st.lost + 1
    else begin
      match t.algorithm with
      | EC -> observe_exact t ~site v
      | NS | SC | SS | LS -> observe_approx t ~site v
    end

  let observe t ~site v =
    if site < 0 || site >= t.k then
      invalid_arg "Dc_tracker.observe: site index out of range";
    observe_one t ~crashes:(Faults.has_crashes (Network.faults t.net)) ~site v

  let observe_batch t ~sites ~items ~pos ~len =
    let n = Array.length sites in
    if Array.length items <> n then
      invalid_arg "Dc_tracker.observe_batch: sites/items length mismatch";
    if pos < 0 || len < 0 || pos + len > n then
      invalid_arg "Dc_tracker.observe_batch: slice out of range";
    (* Whether crash windows exist is a property of the installed fault
       plan, which cannot change mid-batch: hoist the test out of the
       per-update loop (with no plan this also skips the per-update
       crash scan entirely, as [observe] does). *)
    let crashes = Faults.has_crashes (Network.faults t.net) in
    let k = t.k in
    (* Span timing wraps the whole batch (one recorder lookup per call,
       not per update), so the disabled cost on the hot path is a single
       option match per batch. *)
    let spans = Network.spans t.net in
    let start_ns =
      match spans with None -> 0L | Some r -> Wd_obs.Span.now r
    in
    for j = pos to pos + len - 1 do
      let site = Array.unsafe_get sites j in
      if site < 0 || site >= k then
        invalid_arg "Dc_tracker.observe_batch: site index out of range";
      observe_one t ~crashes ~site (Array.unsafe_get items j)
    done;
    match spans with
    | None -> ()
    | Some r ->
      ignore
        (Wd_obs.Span.finish r ~name:"observe_batch"
           ~time:(Network.time t.net) ~start_ns ()
          : Wd_obs.Span.ctx)

  let site_space_bytes t i =
    let st = t.site_states.(i) in
    match t.algorithm with
    | EC -> Wire.item_bytes * Hashtbl.length st.seen
    | NS | SC | SS | LS ->
      Sketch.size_bytes st.sk + (Wire.item_bytes * Hashtbl.length st.pending)

  let coordinator_space_bytes t =
    match t.algorithm with
    | EC -> Wire.item_bytes * Hashtbl.length t.exact
    | NS | SC | SS | LS ->
      publish t;
      Sketch.size_bytes t.sk0
      + (if t.delta_replies then
           Array.fold_left
             (fun acc st -> acc + Sketch.size_bytes st.coord_known)
             0 t.site_states
         else 0)

  (* Publish any deferred sharded merges and join the worker domains.
     A no-op without sharding; idempotent; the tracker stays readable
     afterwards (observing again would raise from the closed engine). *)
  let close t =
    match t.sharding with
    | None -> ()
    | Some eng ->
      publish t;
      Engine.close eng

  (* The shared-surface view drivers dispatch over (Tracker_intf). *)
  module Generic = struct
    type nonrec t = t

    let kind = "dc"
    let algorithm_name t = algorithm_to_string t.algorithm
    let sites = sites
    let observe = observe
    let observe_batch = observe_batch
    let estimate = estimate
    let site_send_threshold t ~site ~item:_ = site_send_threshold t site
    let updates = updates
    let sends = sends
    let lost_updates = lost_updates
    let site_down_for = site_down_for
    let set_sink = set_sink
    let network = network
    let transport = transport
  end

  let generic t = Tracker_intf.Tracker ((module Generic), t)
end

module Fm = Make (Wd_sketch.Fm)
