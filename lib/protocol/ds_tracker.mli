(** Continuous distributed maintenance of a distinct sample with
    per-item counts (Section 5 of the paper).

    The coordinator simulates a single Gibbons–Tirthapura distinct sampler
    over the union of all remote streams: a global sampling level [l]
    (broadcast eagerly whenever it changes, so sites can drop items the
    coordinator no longer wants) and, for every retained item [v], an
    approximate global count [C_{v,0}] within a [1 + theta] factor of the
    truth (Definition 2, Lemma 2).

    Each site tracks local counts [C_{v,i}] of retained-level items and
    pushes a delta upstream when the count passes a threshold [dst]; the
    variants differ in [dst] and in what the coordinator sends back
    (the paper's Figure 4):

    {ul
    {- {!LCO} (Local Counts Only): [dst = (1 + theta) C_{v,i}^t]; nothing
       flows downstream except level changes.}
    {- {!GCS} (Global Count Sharing): [dst = C_{v,i}^t + (theta/k)
       C_{v,0}^t]; the coordinator broadcasts the new [C_{v,0}] to every
       other site whenever it changes.}
    {- {!LCS} (Lazy Count Sharing): same threshold; [C_{v,0}] is returned
       only to the site that sent the delta.}
    {- {!EDS} (Exact Distinct Sample): the baseline — every update is
       forwarded to the coordinator, whose sampler then holds exact
       counts.  Communication [O(|S_0|)].}} *)

type algorithm = LCO | GCS | LCS | EDS

val all_algorithms : algorithm list
val approximate_algorithms : algorithm list
val algorithm_to_string : algorithm -> string
val algorithm_of_string : string -> algorithm option

type t

val create :
  ?cost_model:Wd_net.Network.cost_model ->
  ?network:Wd_net.Network.t ->
  ?transport:Wd_net.Transport.t ->
  ?max_retries:int ->
  ?sink:Wd_obs.Sink.t ->
  algorithm:algorithm ->
  theta:float ->
  sites:int ->
  family:Wd_sketch.Distinct_sampler.family ->
  unit ->
  t
(** [create ~algorithm ~theta ~sites ~family ()] builds a fresh tracker.
    [family] fixes the shared level hash and the sample-size threshold [T];
    [theta] is the count-lag budget (ignored by [EDS]).  [sink] receives
    protocol-decision trace events (threshold crossings, count reports,
    level advances, LCS resyncs); the default null sink is free on the
    update path.  [transport] supplies the communication backend all
    traffic rides ({!Wd_net.Transport}); by default the tracker builds an
    in-process simulator ({!Wd_net.Transport_sim}) with the given
    [cost_model].  [network] instead supplies a shared byte ledger (with
    a matching site count), wrapped in a simulator backend; passing both
    is an error.  [max_retries] (default 5) bounds retransmissions per
    reliable exchange when the network carries an enabled
    {!Wd_net.Faults.plan}; count reports ship the {e absolute} local count
    and the coordinator applies the difference against what it has already
    incorporated, so retried or duplicated reports never double count —
    on a reliable channel this reproduces the paper's delta protocol
    byte-for-byte.  Requires [sites >= 1] and [theta > 0]. *)

val set_sink : t -> Wd_obs.Sink.t -> unit
(** Attach a trace sink for protocol-decision events.  Network-level
    [message]/[broadcast] events are emitted by the byte ledger — attach a
    sink there too ({!Wd_net.Network.set_sink} on {!network}) to capture
    both layers. *)

val updates : t -> int
(** Number of {!observe} calls so far (the update index stamped on
    emitted trace events). *)

val observe : t -> site:int -> int -> unit
(** Process the arrival of one item at a remote site. *)

val observe_batch :
  t -> sites:int array -> items:int array -> pos:int -> len:int -> unit
(** [observe_batch t ~sites ~items ~pos ~len] processes the [len]
    arrivals [items.(pos) .. items.(pos + len - 1)], each at the site
    given by the matching entry of [sites].  Observationally identical,
    update for update, to calling {!observe} in a loop, with the
    fault-plan and bounds checks hoisted out of the per-item loop.
    Raises [Invalid_argument] on a [sites]/[items] length mismatch or a
    slice out of range. *)

val sample : t -> (int * int) list
(** The coordinator's current distinct sample: retained [(item, count)]
    pairs, where each count approximates the item's global occurrence
    count within [1 + theta] ([EDS]: exactly). *)

val sample_size : t -> int
val level : t -> int
(** The current global sampling level [l]. *)

val estimate_distinct : t -> float
(** [sample_size * 2^level] — the sampler's own distinct-count estimate. *)

val count : t -> int -> int
(** [count t v] is the coordinator's current count for [v] ([0] if [v] is
    not retained). *)

val algorithm : t -> algorithm
val sites : t -> int
val theta : t -> float
val threshold : t -> int
(** The sample-size bound [T] from the family. *)

val site_send_threshold : t -> int -> int -> float
(** [site_send_threshold t i v] is the count threshold [dst] site [i]'s
    local count of [v] must pass before it reports upstream (Figure 4),
    under the current shared state — for tests and introspection.  Raises
    [Invalid_argument] for {!EDS}, naming the algorithm: the exact
    protocol forwards every update and has no send threshold. *)

(** This tracker seen through the shared {!Tracker_intf.TRACKER} surface
    (the generic [estimate] is {!estimate_distinct}). *)
module Generic : Tracker_intf.TRACKER with type t = t

val generic : t -> Tracker_intf.packed
(** Pack for generic drivers ({!Tracker_intf}). *)

val network : t -> Wd_net.Network.t
(** The byte ledger: always [Wd_net.Transport.ledger (transport t)]. *)

val transport : t -> Wd_net.Transport.t
(** The communication backend this tracker sends through. *)

val sends : t -> int
(** Site-to-coordinator messages so far. *)

val site_down_for : t -> int -> int
(** How many updates ago site [i] entered its current crash window; [0]
    when the site is up. *)

val lost_updates : t -> int
(** Stream arrivals discarded because their site was inside a crash
    window. *)

val site_space_bytes : t -> int -> int
(** Current memory footprint of one remote site: its tracked local
    counts, last-sent counts, and (GCS/LCS) known global counts — the
    paper's Section 5 space bound is O(T) per site. *)

val coordinator_space_bytes : t -> int
(** The coordinator's retained sample, 16 bytes per pair. *)
