module Network = Wd_net.Network
module Wire = Wd_net.Wire
module Wfm = Wd_sketch.Fm_window

type algorithm = NS | SC | LS

let algorithm_to_string = function NS -> "NS" | SC -> "SC" | LS -> "LS"

let all_algorithms = [ NS; SC; LS ]

type site_state = {
  wsk : Wfm.t; (* local window sketch (LS: merged with global) *)
  coord_known : Wfm.t; (* coordinator's model of this site's sketch *)
  mutable d_last : float; (* windowed estimate at last send *)
  mutable d0_known : float; (* last global estimate received *)
}

type t = {
  algorithm : algorithm;
  k : int;
  theta : float;
  win : int;
  net : Network.t;
  site_states : site_state array;
  wsk0 : Wfm.t;
  mutable clock : int;
  mutable sends : int;
}

let create ?(cost_model = Network.Unicast) ~algorithm ~theta ~window ~sites
    ~family () =
  if sites < 1 then invalid_arg "Window_tracker.create: sites must be >= 1";
  if theta <= 0.0 then invalid_arg "Window_tracker.create: theta must be positive";
  if window < 1 then invalid_arg "Window_tracker.create: window must be >= 1";
  let fresh_site () =
    {
      wsk = Wfm.create family;
      coord_known = Wfm.create family;
      d_last = 0.0;
      d0_known = 0.0;
    }
  in
  {
    algorithm;
    k = sites;
    theta;
    win = window;
    net = Network.create ~cost_model ~sites ();
    site_states = Array.init sites (fun _ -> fresh_site ());
    wsk0 = Wfm.create family;
    clock = 0;
    sends = 0;
  }

let window t = t.win
let algorithm_of t = t.algorithm
let network t = t.net
let sends t = t.sends

let estimate t ~now = Wfm.estimate t.wsk0 ~now ~window:t.win

let site_estimate t st = Wfm.estimate st.wsk ~now:t.clock ~window:t.win

(* Two-sided band around the last synchronized value. *)
let out_of_band t st d_est =
  let over = 1.0 +. (t.theta /. Float.of_int t.k) in
  let base =
    match t.algorithm with NS -> st.d_last | SC | LS -> Float.max st.d_last st.d0_known
  in
  (* Before any sync the base is 0: any arrival triggers, nothing can
     shrink below zero. *)
  d_est > (base *. over) +. 1e-9
  || (base > 0.0 && d_est < base /. over -. 1e-9)

let deliver t i st =
  (* Upstream: ship only the timestamps the coordinator's model lacks. *)
  let payload =
    min (Wfm.size_bytes st.wsk) (Wfm.delta_bytes ~from:st.coord_known st.wsk)
  in
  Network.send_up t.net ~site:i ~payload;
  (* Windowed timestamps can't be deduped mid-route without replicating
     the coordinator's merge state, so the backbone store-and-forwards
     the frame unchanged. *)
  (match Network.tree_topology t.net with
  | None -> ()
  | Some topo ->
    List.iter
      (fun j -> ignore (Network.forward_up t.net ~agg:j ~payload : bool))
      (Wd_net.Topology.path_of_site topo i));
  t.sends <- t.sends + 1;
  Wfm.merge_into ~dst:st.coord_known st.wsk;
  Wfm.merge_into ~dst:t.wsk0 st.wsk;
  st.d_last <- site_estimate t st;
  match t.algorithm with
  | NS -> ()
  | SC ->
    let d0 = estimate t ~now:t.clock in
    Network.broadcast_down t.net ~except:None ~payload:Wire.count_bytes;
    Array.iter (fun st' -> st'.d0_known <- d0) t.site_states
  | LS ->
    let payload =
      min (Wfm.size_bytes t.wsk0) (Wfm.delta_bytes ~from:st.coord_known t.wsk0)
    in
    Network.send_down t.net ~site:i ~payload;
    Wfm.merge_into ~dst:st.coord_known t.wsk0;
    Wfm.merge_into ~dst:st.wsk t.wsk0;
    st.d0_known <- estimate t ~now:t.clock;
    st.d_last <- site_estimate t st

let check_site t i st =
  let d_est = site_estimate t st in
  if out_of_band t st d_est then deliver t i st

let observe t ~site ~time v =
  if site < 0 || site >= t.k then
    invalid_arg "Window_tracker.observe: site index out of range";
  if time < t.clock then
    invalid_arg "Window_tracker.observe: time must be nondecreasing";
  t.clock <- time;
  let st = t.site_states.(site) in
  (* Timestamp refreshes matter even for known items: they keep bits
     alive, so the threshold is checked whenever a cell advanced. *)
  if Wfm.add st.wsk ~time v then check_site t site st

let tick t ~time =
  if time < t.clock then
    invalid_arg "Window_tracker.tick: time must be nondecreasing";
  t.clock <- time;
  Array.iteri (fun i st -> check_site t i st) t.site_states

let exact_bytes ~updates = updates * Wire.message ~payload:(Wire.item_bytes + 6)
