module Network = Wd_net.Network
module Topology = Wd_net.Topology
module Transport = Wd_net.Transport
module Transport_sim = Wd_net.Transport_sim
module Faults = Wd_net.Faults
module Wire = Wd_net.Wire
module Sampler = Wd_sketch.Distinct_sampler
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event

type algorithm = LCO | GCS | LCS | EDS

let all_algorithms = [ LCO; GCS; LCS; EDS ]

let approximate_algorithms = [ LCO; GCS; LCS ]

let algorithm_to_string = function
  | LCO -> "LCO"
  | GCS -> "GCS"
  | LCS -> "LCS"
  | EDS -> "EDS"

let algorithm_of_string s =
  match String.uppercase_ascii s with
  | "LCO" -> Some LCO
  | "GCS" -> Some GCS
  | "LCS" -> Some LCS
  | "EDS" -> Some EDS
  | _ -> None

type site_state = {
  counts : (int, int) Hashtbl.t; (* C_{v,i}: local count of retained items *)
  last_sent : (int, int) Hashtbl.t; (* C_{v,i}^t *)
  known_global : (int, int) Hashtbl.t; (* C_{v,0}^t (GCS/LCS) *)
  mutable level : int; (* latest l received from the coordinator *)
  mutable down : bool;
  mutable down_since : int; (* update index of the crash transition *)
  mutable lost : int; (* arrivals discarded while down *)
}

type t = {
  algorithm : algorithm;
  k : int;
  theta : float;
  family : Sampler.family;
  transport : Transport.t; (* the pluggable carrier all traffic rides *)
  net : Network.t; (* its ledger, cached for accounting reads *)
  site_states : site_state array;
  coord : Sampler.t; (* the simulated global sampler, with approx counts *)
  applied : (int, int) Hashtbl.t array;
  (* Per site: item -> the absolute local count this coordinator has
     already incorporated.  Count reports carry the absolute C_{v,i}, and
     the coordinator applies [c - applied] — so a retransmitted or
     duplicated report re-derives a delta of zero instead of double
     counting.  On a reliable channel [applied.(i)] always equals the
     site's [last_sent], reproducing the paper's delta protocol
     byte-for-byte. *)
  max_retries : int;
  mutable sends : int;
  mutable updates : int;
  mutable sink : Sink.t; (* protocol-decision events; see Wd_obs *)
}

let create ?(cost_model = Network.Unicast) ?network ?transport
    ?(max_retries = 5) ?(sink = Sink.null) ~algorithm ~theta ~sites ~family ()
    =
  if sites < 1 then invalid_arg "Ds_tracker.create: sites must be >= 1";
  if algorithm <> EDS && theta <= 0.0 then
    invalid_arg "Ds_tracker.create: theta must be positive";
  let transport =
    match (transport, network) with
    | Some _, Some _ ->
      invalid_arg "Ds_tracker.create: pass ?network or ?transport, not both"
    | Some tr, None ->
      if Transport.sites tr <> sites then
        invalid_arg "Ds_tracker.create: shared transport has wrong site count";
      tr
    | None, Some net ->
      if Network.sites net <> sites then
        invalid_arg "Ds_tracker.create: shared network has wrong site count";
      Transport_sim.of_network net
    | None, None -> Transport_sim.create ~cost_model ~sites ()
  in
  let net = Transport.ledger transport in
  let fresh_site () =
    {
      counts = Hashtbl.create 64;
      last_sent = Hashtbl.create 64;
      known_global = Hashtbl.create 64;
      level = 0;
      down = false;
      down_since = 0;
      lost = 0;
    }
  in
  {
    algorithm;
    k = sites;
    theta;
    family;
    transport;
    net;
    site_states = Array.init sites (fun _ -> fresh_site ());
    coord = Sampler.create family;
    applied = Array.init sites (fun _ -> Hashtbl.create 64);
    max_retries;
    sends = 0;
    updates = 0;
    sink;
  }

let algorithm t = t.algorithm
let sites t = t.k
let theta t = t.theta
let threshold t = Sampler.threshold t.family
let network t = t.net
let transport t = t.transport
let sends t = t.sends
let updates t = t.updates
let set_sink t sink = t.sink <- sink
let sample t = Sampler.contents t.coord
let sample_size t = Sampler.size t.coord
let level t = Sampler.level t.coord
let estimate_distinct t = Sampler.estimate_distinct t.coord
let count t v = Sampler.count t.coord v

let emit t kind =
  if Sink.enabled t.sink then Sink.emit t.sink { Event.time = t.updates; kind }

let site_down_for t i =
  let st = t.site_states.(i) in
  if st.down then t.updates - st.down_since else 0

let lost_updates t =
  Array.fold_left (fun acc st -> acc + st.lost) 0 t.site_states

let find0 table v = Option.value (Hashtbl.find_opt table v) ~default:0

(* Drop, at one site, every tracked item below the new level: the
   coordinator has announced it is no longer interested in them. *)
let raise_site_level t st l =
  if l > st.level then begin
    st.level <- l;
    let prune table =
      Hashtbl.iter
        (fun v _ ->
          if Sampler.item_level t.coord v < l then Hashtbl.remove table v)
        (Hashtbl.copy table)
    in
    prune st.counts;
    prune st.last_sent;
    prune st.known_global
  end

(* If processing an update pushed the coordinator's sampler over T, its
   level moved: broadcast the new level eagerly (Section 5 argues this is
   the important step) and prune everywhere.  Under faults a site can
   miss the announcement; it keeps tracking below-level items the
   coordinator will simply ignore, until a later report triggers a level
   repair. *)
let propagate_level_change t old_level =
  let l = Sampler.level t.coord in
  if l > old_level then begin
    emit t (Event.Level_advance { previous = old_level; level = l });
    let outcomes =
      Transport.transmit_broadcast t.transport ~except:None ~payload:Wire.level_bytes
    in
    Array.iteri
      (fun j st ->
        match outcomes.(j) with
        | Faults.Delivered n when n > 0 -> raise_site_level t st l
        | Faults.Delivered _ | Faults.Lost _ -> ())
      t.site_states;
    (* The coordinator itself forgets below-level items everywhere. *)
    Array.iter
      (fun tbl ->
        Hashtbl.iter
          (fun v _ ->
            if Sampler.item_level t.coord v < l then Hashtbl.remove tbl v)
          (Hashtbl.copy tbl))
      t.applied
  end

(* The per-algorithm threshold dst(theta, C_{v,i}^t, C_{v,0}^t) of Fig. 4. *)
let send_threshold t st v =
  match t.algorithm with
  | LCO -> (1.0 +. t.theta) *. Float.of_int (find0 st.last_sent v)
  | GCS | LCS ->
    Float.of_int (find0 st.last_sent v)
    +. (t.theta /. Float.of_int t.k *. Float.of_int (find0 st.known_global v))
  | EDS ->
    invalid_arg
      "Ds_tracker.send_threshold: exact algorithm EDS has no send threshold"

let site_send_threshold t i v =
  if i < 0 || i >= t.k then
    invalid_arg "Ds_tracker.site_send_threshold: site index out of range";
  send_threshold t t.site_states.(i) v

(* The coordinator's reaction dsm(i, v, C_{v,0}) of Fig. 4.  [acked]
   says whether the sender learned its report arrived; state installs on
   other sites are gated on actual delivery of the share. *)
let coordinator_react t ~sender:i ~acked v =
  match t.algorithm with
  | LCO -> ()
  | GCS ->
    (* The new global count goes to everyone; the sender reconstructs it
       locally from the delta it just contributed (so it only may do so
       once the exchange is acknowledged). *)
    let c0 = Sampler.count t.coord v in
    if c0 > 0 then begin
      let outcomes =
        Transport.transmit_broadcast t.transport ~except:(Some i)
          ~payload:(Wire.item_bytes + Wire.count_bytes)
      in
      Array.iteri
        (fun j st ->
          if j = i then begin
            if acked then Hashtbl.replace st.known_global v c0
          end
          else begin
            match outcomes.(j) with
            | Faults.Delivered n when n > 0 ->
              Hashtbl.replace st.known_global v c0
            | Faults.Delivered _ | Faults.Lost _ -> ()
          end)
        t.site_states
    end
  | LCS ->
    let c0 = Sampler.count t.coord v in
    if c0 > 0 then begin
      let payload = Wire.item_bytes + Wire.count_bytes in
      let reply =
        Transport.reliable_down ~max_retries:t.max_retries t.transport ~site:i ~payload
      in
      emit t (Event.Resync { site = i; bytes = Wire.message ~payload });
      if reply.Network.received then
        Hashtbl.replace t.site_states.(i).known_global v c0
    end
  | EDS ->
    invalid_arg
      "Ds_tracker.coordinator_react: exact algorithm EDS has no count \
       reaction"

(* A report about an item below the coordinator's current level means
   the site missed a level announcement (lossy broadcast): replay just
   the level so the site stops tracking pruned items. *)
let repair_site_level t ~site st =
  let l = Sampler.level t.coord in
  if st.level < l then begin
    let d =
      Transport.reliable_down ~max_retries:t.max_retries t.transport ~site
        ~payload:Wire.level_bytes
    in
    emit t
      (Event.Resync { site; bytes = Wire.message ~payload:Wire.level_bytes });
    if d.Network.received then raise_site_level t st l
  end

(* Under a tree topology a delivered site report hops the backbone
   unchanged (store-and-forward): DS reports carry absolute per-site
   counts, which no intermediate aggregator can merge away, so the tree
   here is routing rather than dedup.  A crashed aggregator on the path
   swallows the frame ({!Network.forward_up} returns [false]); the
   absolute-count encoding already makes the retransmission harmless. *)
let forward_path t ~site ~payload =
  match Network.tree_topology t.net with
  | None -> ()
  | Some topo ->
    (try
       List.iter
         (fun j ->
           if not (Network.forward_up t.net ~agg:j ~payload) then raise Exit)
         (Topology.path_of_site topo site)
     with Exit -> ())

let observe_approx t ~site v =
  let st = t.site_states.(site) in
  if Sampler.item_level t.coord v >= st.level then begin
    let c = find0 st.counts v + 1 in
    Hashtbl.replace st.counts v c;
    let threshold = send_threshold t st v in
    if Float.of_int c > threshold then begin
      let delta = c - find0 st.last_sent v in
      if Sink.enabled t.sink then begin
        Sink.emit t.sink
          {
            Event.time = t.updates;
            kind =
              Event.Threshold_crossed
                { site; estimate = Float.of_int c; threshold };
          };
        Sink.emit t.sink
          {
            Event.time = t.updates;
            kind = Event.Count_sent { site; item = v; count = c; delta };
          }
      end;
      (* The report carries the absolute local count, so losing it or
         receiving it twice is harmless: the coordinator derives the
         delta against what it has already applied. *)
      let delivery =
        Transport.reliable_up ~max_retries:t.max_retries t.transport ~site
          ~payload:(Wire.item_bytes + Wire.count_bytes)
      in
      t.sends <- t.sends + 1;
      if delivery.Network.acked then Hashtbl.replace st.last_sent v c;
      if delivery.Network.received then begin
        forward_path t ~site ~payload:(Wire.item_bytes + Wire.count_bytes);
        let applied = t.applied.(site) in
        let delta0 = c - find0 applied v in
        if delta0 > 0 then begin
          let old_level = Sampler.level t.coord in
          Sampler.add_count t.coord v delta0;
          Hashtbl.replace applied v c;
          coordinator_react t ~sender:site ~acked:delivery.Network.acked v;
          propagate_level_change t old_level
        end;
        if
          Faults.enabled (Network.faults t.net)
          && Sampler.item_level t.coord v < Sampler.level t.coord
        then repair_site_level t ~site st
      end
    end
  end

(* EDS forwards every raw update; the sampler lives entirely at the
   coordinator so no level traffic is needed.  Under faults each logical
   update is applied at most once however many copies arrive — the
   sequence-number dedup a real deployment would perform. *)
let observe_exact t ~site v =
  let d =
    Transport.reliable_up ~max_retries:t.max_retries t.transport ~site
      ~payload:Wire.item_bytes
  in
  t.sends <- t.sends + 1;
  if d.Network.received then begin
    forward_path t ~site ~payload:Wire.item_bytes;
    Sampler.add t.coord v
  end

let wipe_site st =
  Hashtbl.reset st.counts;
  Hashtbl.reset st.last_sent;
  Hashtbl.reset st.known_global;
  st.level <- 0

(* Re-seed a freshly restarted site: replay the sampling level and the
   per-item counts the coordinator has credited to it, so the site
   resumes counting where the coordinator left off instead of from
   zero (which would silently undercount until it caught up). *)
let resync_restarted t i st =
  match t.algorithm with
  | EDS -> () (* sites are stateless under the exact baseline *)
  | LCO | GCS | LCS ->
    let tbl = t.applied.(i) in
    let payload =
      Wire.level_bytes + Wire.item_count_pairs (Hashtbl.length tbl)
    in
    let d =
      Transport.reliable_down ~max_retries:t.max_retries t.transport ~site:i ~payload
    in
    if d.Network.received then begin
      st.level <- Sampler.level t.coord;
      Hashtbl.iter
        (fun v c ->
          if Sampler.item_level t.coord v >= st.level then begin
            Hashtbl.replace st.counts v c;
            Hashtbl.replace st.last_sent v c
          end)
        tbl
    end

let scan_crashes t =
  Array.iteri
    (fun i st ->
      let now_down = Transport.site_down t.transport ~site:i in
      if now_down && not st.down then begin
        st.down <- true;
        st.down_since <- t.updates;
        wipe_site st;
        emit t (Event.Crash { site = i })
      end
      else if (not now_down) && st.down then begin
        st.down <- false;
        let before = Network.total_bytes t.net in
        resync_restarted t i st;
        let resync_bytes = Network.total_bytes t.net - before in
        if resync_bytes > 0 then
          emit t (Event.Resync { site = i; bytes = resync_bytes });
        emit t (Event.Recover { site = i; resync_bytes })
      end)
    t.site_states

(* One update with the crash-scan decision already made; [observe] and
   [observe_batch] share this body so their behaviour is identical update
   for update. *)
let[@inline] observe_one t ~crashes ~site v =
  t.updates <- t.updates + 1;
  Transport.set_time t.transport t.updates;
  if crashes then scan_crashes t;
  let st = t.site_states.(site) in
  if st.down then st.lost <- st.lost + 1
  else begin
    match t.algorithm with
    | EDS -> observe_exact t ~site v
    | LCO | GCS | LCS -> observe_approx t ~site v
  end

let observe t ~site v =
  if site < 0 || site >= t.k then
    invalid_arg "Ds_tracker.observe: site index out of range";
  observe_one t ~crashes:(Faults.has_crashes (Network.faults t.net)) ~site v

let observe_batch t ~sites ~items ~pos ~len =
  let n = Array.length sites in
  if Array.length items <> n then
    invalid_arg "Ds_tracker.observe_batch: sites/items length mismatch";
  if pos < 0 || len < 0 || pos + len > n then
    invalid_arg "Ds_tracker.observe_batch: slice out of range";
  (* The installed fault plan cannot change mid-batch: hoist the
     crash-window test out of the per-update loop. *)
  let crashes = Faults.has_crashes (Network.faults t.net) in
  let k = t.k in
  (* One recorder lookup per batch: the disabled-span cost on the hot
     path is a single option match. *)
  let spans = Network.spans t.net in
  let start_ns = match spans with None -> 0L | Some r -> Wd_obs.Span.now r in
  for j = pos to pos + len - 1 do
    let site = Array.unsafe_get sites j in
    if site < 0 || site >= k then
      invalid_arg "Ds_tracker.observe_batch: site index out of range";
    observe_one t ~crashes ~site (Array.unsafe_get items j)
  done;
  match spans with
  | None -> ()
  | Some r ->
    ignore
      (Wd_obs.Span.finish r ~name:"observe_batch" ~time:(Network.time t.net)
         ~start_ns ()
        : Wd_obs.Span.ctx)

let site_space_bytes t i =
  let st = t.site_states.(i) in
  Wire.item_count_pairs
    (Hashtbl.length st.counts + Hashtbl.length st.last_sent
    + Hashtbl.length st.known_global)

let coordinator_space_bytes t = Sampler.size_bytes t.coord

(* The shared-surface view drivers dispatch over (Tracker_intf). *)
module Generic = struct
  type nonrec t = t

  let kind = "ds"
  let algorithm_name t = algorithm_to_string t.algorithm
  let sites = sites
  let observe = observe
  let observe_batch = observe_batch
  let estimate = estimate_distinct
  let site_send_threshold t ~site ~item = site_send_threshold t site item
  let updates = updates
  let sends = sends
  let lost_updates = lost_updates
  let site_down_for = site_down_for
  let set_sink = set_sink
  let network = network
  let transport = transport
end

let generic t = Tracker_intf.Tracker ((module Generic), t)
