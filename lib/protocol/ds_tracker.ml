module Network = Wd_net.Network
module Wire = Wd_net.Wire
module Sampler = Wd_sketch.Distinct_sampler
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event

type algorithm = LCO | GCS | LCS | EDS

let all_algorithms = [ LCO; GCS; LCS; EDS ]

let approximate_algorithms = [ LCO; GCS; LCS ]

let algorithm_to_string = function
  | LCO -> "LCO"
  | GCS -> "GCS"
  | LCS -> "LCS"
  | EDS -> "EDS"

let algorithm_of_string s =
  match String.uppercase_ascii s with
  | "LCO" -> Some LCO
  | "GCS" -> Some GCS
  | "LCS" -> Some LCS
  | "EDS" -> Some EDS
  | _ -> None

type site_state = {
  counts : (int, int) Hashtbl.t; (* C_{v,i}: local count of retained items *)
  last_sent : (int, int) Hashtbl.t; (* C_{v,i}^t *)
  known_global : (int, int) Hashtbl.t; (* C_{v,0}^t (GCS/LCS) *)
  mutable level : int; (* latest l received from the coordinator *)
}

type t = {
  algorithm : algorithm;
  k : int;
  theta : float;
  family : Sampler.family;
  net : Network.t;
  site_states : site_state array;
  coord : Sampler.t; (* the simulated global sampler, with approx counts *)
  mutable sends : int;
  mutable updates : int;
  mutable sink : Sink.t; (* protocol-decision events; see Wd_obs *)
}

let create ?(cost_model = Network.Unicast) ?(sink = Sink.null) ~algorithm
    ~theta ~sites ~family () =
  if sites < 1 then invalid_arg "Ds_tracker.create: sites must be >= 1";
  if algorithm <> EDS && theta <= 0.0 then
    invalid_arg "Ds_tracker.create: theta must be positive";
  let fresh_site () =
    {
      counts = Hashtbl.create 64;
      last_sent = Hashtbl.create 64;
      known_global = Hashtbl.create 64;
      level = 0;
    }
  in
  {
    algorithm;
    k = sites;
    theta;
    family;
    net = Network.create ~cost_model ~sites ();
    site_states = Array.init sites (fun _ -> fresh_site ());
    coord = Sampler.create family;
    sends = 0;
    updates = 0;
    sink;
  }

let algorithm t = t.algorithm
let sites t = t.k
let theta t = t.theta
let threshold t = Sampler.threshold t.family
let network t = t.net
let sends t = t.sends
let updates t = t.updates
let set_sink t sink = t.sink <- sink
let sample t = Sampler.contents t.coord
let sample_size t = Sampler.size t.coord
let level t = Sampler.level t.coord
let estimate_distinct t = Sampler.estimate_distinct t.coord
let count t v = Sampler.count t.coord v

let find0 table v = Option.value (Hashtbl.find_opt table v) ~default:0

(* Drop, at one site, every tracked item below the new level: the
   coordinator has announced it is no longer interested in them. *)
let raise_site_level t st l =
  if l > st.level then begin
    st.level <- l;
    let prune table =
      Hashtbl.iter
        (fun v _ ->
          if Sampler.item_level t.coord v < l then Hashtbl.remove table v)
        (Hashtbl.copy table)
    in
    prune st.counts;
    prune st.last_sent;
    prune st.known_global
  end

(* If processing an update pushed the coordinator's sampler over T, its
   level moved: broadcast the new level eagerly (Section 5 argues this is
   the important step) and prune everywhere. *)
let propagate_level_change t old_level =
  let l = Sampler.level t.coord in
  if l > old_level then begin
    if Sink.enabled t.sink then
      Sink.emit t.sink
        {
          Event.time = t.updates;
          kind = Event.Level_advance { previous = old_level; level = l };
        };
    Network.broadcast_down t.net ~except:None ~payload:Wire.level_bytes;
    Array.iter (fun st -> raise_site_level t st l) t.site_states
  end

(* The per-algorithm threshold dst(theta, C_{v,i}^t, C_{v,0}^t) of Fig. 4. *)
let send_threshold t st v =
  match t.algorithm with
  | LCO -> (1.0 +. t.theta) *. Float.of_int (find0 st.last_sent v)
  | GCS | LCS ->
    Float.of_int (find0 st.last_sent v)
    +. (t.theta /. Float.of_int t.k *. Float.of_int (find0 st.known_global v))
  | EDS -> assert false

(* The coordinator's reaction dsm(i, v, C_{v,0}) of Fig. 4. *)
let coordinator_react t ~sender:i v delta =
  match t.algorithm with
  | LCO -> ()
  | GCS ->
    (* The new global count goes to everyone; the sender reconstructs it
       locally from the delta it just contributed. *)
    let c0 = Sampler.count t.coord v in
    if c0 > 0 then begin
      Network.broadcast_down t.net ~except:(Some i)
        ~payload:(Wire.item_bytes + Wire.count_bytes);
      Array.iter (fun st -> Hashtbl.replace st.known_global v c0) t.site_states
    end;
    ignore delta
  | LCS ->
    let c0 = Sampler.count t.coord v in
    if c0 > 0 then begin
      Network.send_down t.net ~site:i
        ~payload:(Wire.item_bytes + Wire.count_bytes);
      if Sink.enabled t.sink then
        Sink.emit t.sink
          {
            Event.time = t.updates;
            kind =
              Event.Resync
                {
                  site = i;
                  bytes =
                    Wire.message
                      ~payload:(Wire.item_bytes + Wire.count_bytes);
                };
          };
      Hashtbl.replace t.site_states.(i).known_global v c0
    end
  | EDS -> assert false

let observe_approx t ~site v =
  let st = t.site_states.(site) in
  if Sampler.item_level t.coord v >= st.level then begin
    let c = find0 st.counts v + 1 in
    Hashtbl.replace st.counts v c;
    let threshold = send_threshold t st v in
    if Float.of_int c > threshold then begin
      let delta = c - find0 st.last_sent v in
      if Sink.enabled t.sink then begin
        Sink.emit t.sink
          {
            Event.time = t.updates;
            kind =
              Event.Threshold_crossed
                { site; estimate = Float.of_int c; threshold };
          };
        Sink.emit t.sink
          {
            Event.time = t.updates;
            kind = Event.Count_sent { site; item = v; count = c; delta };
          }
      end;
      Network.send_up t.net ~site
        ~payload:(Wire.item_bytes + Wire.count_bytes);
      t.sends <- t.sends + 1;
      Hashtbl.replace st.last_sent v c;
      let old_level = Sampler.level t.coord in
      Sampler.add_count t.coord v delta;
      coordinator_react t ~sender:site v delta;
      propagate_level_change t old_level
    end
  end

(* EDS forwards every raw update; the sampler lives entirely at the
   coordinator so no level traffic is needed. *)
let observe_exact t ~site v =
  Network.send_up t.net ~site ~payload:Wire.item_bytes;
  t.sends <- t.sends + 1;
  Sampler.add t.coord v

let observe t ~site v =
  if site < 0 || site >= t.k then
    invalid_arg "Ds_tracker.observe: site index out of range";
  t.updates <- t.updates + 1;
  Network.set_time t.net t.updates;
  match t.algorithm with
  | EDS -> observe_exact t ~site v
  | LCO | GCS | LCS -> observe_approx t ~site v

let site_space_bytes t i =
  let st = t.site_states.(i) in
  Wire.item_count_pairs
    (Hashtbl.length st.counts + Hashtbl.length st.last_sent
    + Hashtbl.length st.known_global)

let coordinator_space_bytes t = Sampler.size_bytes t.coord
