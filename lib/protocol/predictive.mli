(** Prediction-model distinct-count tracking — the Section 8 extension
    "a limited set of prediction models in the style of [8, 9]"
    (Cormode & Garofalakis, VLDB 2005; Cormode et al., SIGMOD 2005).

    In the base protocols a site stays silent while its value sits inside
    a {e static} band around the last synchronized value.  With a
    prediction model, site and coordinator instead agree on a {e moving}
    prediction of the site's distinct count, and the site speaks up only
    when reality drifts from the prediction — steady growth then costs
    nothing, where the static band pays for every [1 + theta/k] step.

    Models:

    - {!Static}: predicted value = value at last sync.  This degenerates
      to the NS algorithm and serves as the ablation baseline.
    - {!Linear_growth}: at each sync the site advertises its recent
      growth rate (distinct items per update); both sides extrapolate
      linearly.  The site resynchronizes when its true local estimate
      deviates from the extrapolation by more than [theta/k]
      (relative).

    Because local growth overlaps across sites (the whole point of
    duplicate-resilience), the coordinator cannot add up predicted local
    growths directly; it learns an overlap discount [gamma] online — the
    observed ratio of global sketch growth to claimed local growth,
    exponentially averaged — and answers
    [|Sk_0| + gamma * sum_i rate_i * (t - t_sync_i)].

    The error guarantee is correspondingly empirical rather than worst
    case: when sites' growth is steady the answer stays within the usual
    budget at a fraction of the communication; adversarial growth
    reverts it to NS-like cost (every deviation forces a sync).  The
    [ext_predictive] benchmark quantifies both. *)

type model = Static | Linear_growth

val model_to_string : model -> string

type t

val create :
  ?cost_model:Wd_net.Network.cost_model ->
  ?max_retries:int ->
  model:model ->
  theta:float ->
  sites:int ->
  family:Wd_sketch.Fm.family ->
  unit ->
  t
(** Requires [sites >= 1] and [theta > 0].  [max_retries] (default 5)
    bounds retransmissions per sync when {!network} carries an enabled
    {!Wd_net.Faults.plan}; crashed sites are wiped, skipped while down,
    and re-seeded from the coordinator's sketch on restart. *)

val observe : t -> site:int -> int -> unit
(** Process one arrival; global time is the running count of [observe]
    calls across all sites (the shared clock of the simulation). *)

val estimate : t -> float
(** The coordinator's current model-extrapolated answer. *)

val gamma : t -> float
(** The learned overlap discount in [\[0, 1\]] (1 = no cross-site
    duplication observed). *)

val network : t -> Wd_net.Network.t
val sends : t -> int
