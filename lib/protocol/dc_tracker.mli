(** Continuous distributed tracking of the number of distinct items
    (Section 4 of the paper).

    [k] remote sites each observe an insertion stream; the coordinator must
    at all times hold an estimate [DC] of the number of distinct items in
    the union of the streams with [Pr[|DC - N_0| <= eps * N_0] >= 1 - delta]
    (Definition 1), while minimizing the bytes exchanged.

    Every algorithm follows the same skeleton (the paper's Figure 2): each
    update enters a local sketch; when the local estimate exceeds a
    threshold [skt], the site ships its sketch to the coordinator, which
    merges it and possibly sends information back ([skm]).  The four
    variants differ only in [skt] and [skm]:

    {ul
    {- {!NS} (No Sharing): [skt = D_i^t (1 + theta/k)], no downstream
       traffic.}
    {- {!SC} (Shared Count): [skt = D_i^t + (theta/k) D_0^t]; the
       coordinator broadcasts its estimate [D_0] whenever it changes.}
    {- {!SS} (Shared Sketch): sites maintain a copy of the {e global}
       sketch; [skt = D_0^t (1 + theta/k)]; the coordinator broadcasts the
       merged sketch [Sk_0] to every site except the sender on every
       update.}
    {- {!LS} (Lazily Shared Sketch): same threshold as SS, but [Sk_0]
       is returned only to the site that triggered the update.}
    {- {!EC} (Exact Count): the exact baseline — each site forwards each
       item the first time it is seen locally; the coordinator counts
       exactly.  Communication [O(sum_i N_i)], space [Omega(U)].}}

    All four approximate algorithms guarantee error at most [alpha + theta]
    with probability [1 - delta] (Lemma 1), where [alpha] is the sketch
    accuracy baked into the family.

    The implementation includes the Section 4.2 communication optimization
    (on by default): while the set of sketch-changing items accumulated
    since a site's last send is smaller on the wire than the sketch itself,
    the site ships those items verbatim instead of the sketch — so a
    sketch-based site never sends more than the exact algorithm would. *)

type algorithm = NS | SC | SS | LS | EC

val all_algorithms : algorithm list
(** [NS; SC; SS; LS; EC] in paper order. *)

val approximate_algorithms : algorithm list
(** [NS; SC; SS; LS]. *)

val algorithm_to_string : algorithm -> string
val algorithm_of_string : string -> algorithm option

module Make (Sketch : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) : sig
  type t
  (** One protocol instance: [k] site states plus the coordinator state,
      with a byte ledger. *)

  val create :
    ?cost_model:Wd_net.Network.cost_model ->
    ?network:Wd_net.Network.t ->
    ?transport:Wd_net.Transport.t ->
    ?item_batching:bool ->
    ?delta_replies:bool ->
    ?max_retries:int ->
    ?sink:Wd_obs.Sink.t ->
    ?shards:int ->
    algorithm:algorithm ->
    theta:float ->
    sites:int ->
    family:Sketch.family ->
    unit ->
    t
  (** [create ~algorithm ~theta ~sites ~family ()] builds a fresh tracker.
      [theta] is the lag budget (ignored by [EC]); [family] fixes the
      shared sketch hash functions and dimensioning (its accuracy is the
      [alpha] of Lemma 1).  [item_batching] toggles the Section 4.2
      optimization (default [true]).  [delta_replies] (default [true])
      prices LS replies as the delta against what the coordinator knows
      the sender already holds — the Section 4.2 "encode the difference
      between subsequent sketches" optimization, applicable to LS because
      the reply's recipient state is known exactly; turn it off to ship
      full sketches as the paper's plain description does.  [transport]
      supplies the communication backend all traffic rides
      ({!Wd_net.Transport}); by default the tracker builds an in-process
      simulator ({!Wd_net.Transport_sim}) with the given [cost_model].
      [network] instead supplies a shared byte ledger (with a matching
      site count) so that many tracker instances — e.g. the per-cell
      trackers of the distinct heavy-hitter structure — can account
      their traffic jointly; it is wrapped in a simulator backend, and
      passing both [network] and [transport] is an error.  [sink]
      receives
      protocol-decision trace events (threshold crossings, sketch sends,
      estimate updates, LS resyncs); the default null sink is free on the
      update path.  [max_retries] (default 5) bounds retransmissions per
      reliable exchange when the shared network carries an enabled
      {!Wd_net.Faults.plan}; with no fault plan the tracker behaves — and
      spends — exactly as the reliable-channel protocol.  [shards]
      (default 1) > 1 routes the coordinator's global sketch merges
      through a {!Sharded} engine of that many OCaml 5 worker domains:
      site contributions land in per-shard partials and are published
      into [Sk_0] merge-then-publish, which the sketch merge laws make
      order-insensitive — every published read equals the single-domain
      result.  NS (whose coordinator is a pure merge sink) defers
      publishing to the next {!estimate}/{!close}; SC/SS/LS read global
      state on every send and therefore sync per send.  Not applicable
      to [EC] (raises).  Requires [sites >= 1] and [theta > 0]. *)

  val close : t -> unit
  (** Publish any deferred sharded merges and join the worker domains;
      a no-op without sharding.  Idempotent.  Call when done observing
      (the simulator drivers do). *)

  val shards : t -> int
  (** Coordinator shard count (1 = historical inline merge). *)

  val shard_merges : t -> int array option
  (** Per-shard merged-job counts ([None] without sharding). *)

  val set_sink : t -> Wd_obs.Sink.t -> unit
  (** Attach a trace sink for protocol-decision events.  Network-level
      [message]/[broadcast] events are emitted by the byte ledger itself —
      attach a sink there too ({!Wd_net.Network.set_sink} on {!network})
      to capture both layers. *)

  val updates : t -> int
  (** Number of {!observe} calls so far (the update index stamped on
      emitted trace events). *)

  val observe : t -> site:int -> int -> unit
  (** [observe t ~site v] processes the arrival of item [v] at remote site
      [site], triggering whatever communication the algorithm requires. *)

  val observe_batch :
    t -> sites:int array -> items:int array -> pos:int -> len:int -> unit
  (** [observe_batch t ~sites ~items ~pos ~len] processes the [len]
      arrivals [items.(pos) .. items.(pos + len - 1)], each at the site
      given by the matching entry of [sites].  Observationally identical,
      update for update, to calling {!observe} in a loop — every
      threshold crossing, send and byte charged lands at the same update
      index — but the fault-plan and bounds checks are hoisted out of the
      per-item loop.  The preferred feed for the batched simulator, which
      hands whole stream slices to the tracker between its sample points.
      Raises [Invalid_argument] on a [sites]/[items] length mismatch or a
      slice out of range. *)

  val estimate : t -> float
  (** The coordinator's current answer [DC] — available continuously with
      no further communication. *)

  val algorithm : t -> algorithm
  val sites : t -> int
  val theta : t -> float

  val network : t -> Wd_net.Network.t
  (** The byte ledger: read it to measure communication cost.  Always
      [Wd_net.Transport.ledger (transport t)]. *)

  val transport : t -> Wd_net.Transport.t
  (** The communication backend this tracker sends through. *)

  val site_estimate : t -> int -> float
  (** A site's current local-sketch estimate [D_i] (for tests and
      introspection; not a protocol output). *)

  val site_send_threshold : t -> int -> float
  (** The threshold [skt] a site's estimate must exceed before it ships
      its sketch (Figure 2), under the current shared state — for tests
      and introspection.  Raises [Invalid_argument] for {!EC}, naming the
      algorithm: the exact protocol forwards items unconditionally and
      has no send threshold. *)

  (** This tracker seen through the shared {!Tracker_intf.TRACKER}
      surface (thresholds are per-site, so the generic view's [item] is
      ignored). *)
  module Generic : Tracker_intf.TRACKER with type t = t

  val generic : t -> Tracker_intf.packed
  (** Pack for generic drivers ({!Tracker_intf}). *)

  val coordinator_sketch : t -> Sketch.t option
  (** The coordinator's merged sketch ([None] for {!EC}). *)

  val site_sketch : t -> int -> Sketch.t option
  (** A site's local sketch — under SS/LS this is its copy of the global
      sketch merged with local arrivals ([None] for {!EC}).  Exposed for
      tests and introspection; treat as read-only. *)

  val sends : t -> int
  (** Number of site-to-coordinator communication events so far. *)

  val site_down_for : t -> int -> int
  (** How many updates ago site [i] entered its current crash window; [0]
      when the site is up.  Feeds the monitor's staleness/degraded
      status. *)

  val lost_updates : t -> int
  (** Stream arrivals discarded because their site was inside a crash
      window — information no protocol can recover. *)

  val site_space_bytes : t -> int -> int
  (** Current memory footprint of one remote site, in the paper's
      Section 4.2 accounting: its sketch(es) plus the pending-item set of
      the communication optimization (EC: the exact seen-item set, the
      [Omega(U)] cost the approximate algorithms avoid). *)

  val coordinator_space_bytes : t -> int
  (** Current memory footprint of the coordinator: its merged sketch and
      (when delta replies are enabled) its per-site knowledge models. *)
end

module Fm : module type of Make (Wd_sketch.Fm)
(** The default instantiation over the Flajolet–Martin sketch, as in the
    paper's experiments. *)
