(** TCP backend of {!Transport}: many sites multiplexed per connection,
    frame batching on the wire.

    Like {!Transport_socket}, the protocol engine and the {!Network.t}
    ledger stay in the coordinator; this carrier only {e realizes}
    ledger charges as real {!Wire.Frame}s — so a fixed-seed run is
    byte-identical (estimates, ledger, logical trace) to the simulator
    and socket backends by construction.  What changes is the wire
    shape, built for thousands of sites:

    - {b TCP listener + event loop}: one loopback TCP listener; all
      readiness waits go through {!Evloop} (select today, poll/epoll
      behind the same interface) and are wall-clock-deadline bounded.
    - {b Multiplexing}: each relay connection carries a contiguous
      range of sites ([first_site, first_site + count)), declared in a
      ranged [Hello] (site field = first site, 4-byte payload = count).
      Ranges must partition [0, sites); overlaps and bad versions are
      answered with a typed [Reject].
    - {b Batching}: down-direction [Deliver] frames accumulate per
      connection and leave as one {!Wire.Frame.Batch} envelope per
      flush — a single write call coalescing many complete v2 inner
      frames (span blocks included, carried unchanged).  Flushes happen
      on high water ([flush_bytes]), before any [Request_up] on the same
      connection (TCP ordering then guarantees the relay consumed every
      buffered Deliver before answering), and at close.  The up
      direction stays synchronous and unbatched: [Request_up]/[Up]
      round trips as in the socket backend, span-stamped the same way.
    - {b Crash windows are logical}: the connection carries other sites,
      so window entry detaches the site (charges are recorded as
      [skipped_up]/[skipped_down] exactly like the socket backend's
      closed-socket case) and window exit counts a reconnect — no
      socket churn.  The per-tick scan only runs when the fault plan
      contains crashes, so a clean k=1000 run pays nothing per tick.

    Reconciliation gains the batch terms: a relay's received bytes are
    [wire_bytes_down + radio_copy_bytes + control_bytes
     + span_frames_down * Wire.Frame.span_bytes
     + batch_envelopes * Wire.Frame.header_bytes],
    while the up-direction law is unchanged from the socket backend. *)

(** The coordinator half: owns the listener, the ledger, the tap and
    the per-connection batch buffers. *)
module Coordinator : sig
  include Transport.S

  val connect :
    ?cost_model:Network.cost_model ->
    ?timeout:float ->
    ?flush_bytes:int ->
    ?on_listening:(int -> unit) ->
    port:int ->
    sites:int ->
    unit ->
    t
  (** Listen on [127.0.0.1:port] ([port = 0] requests an ephemeral
      port), call [on_listening] with the bound port (the hook to spawn
      relays from), then block until ranged handshakes cover all
      [sites].  One wall-clock [timeout] (default 30s) bounds the whole
      accept phase and every later blocking operation; [flush_bytes]
      (default 8192) is the batch high-water mark.  Raises [Failure] on
      timeout or handshake errors. *)

  val pack : t -> Transport.t
  val port : t -> int
  (** The actually-bound listener port. *)

  val reports : t -> (int * int * Frame_io.site_report option) list
  (** Per-connection [(first_site, count, report)] in accept order;
      reports are collected by [close] ([None] marks a relay that never
      answered [Finish]). *)

  val set_on_poll : t -> (unit -> unit) option -> unit
  (** As {!Transport_socket.Coordinator.set_on_poll}. *)
end

(** The relay half: one process serving a contiguous range of sites
    over a single multiplexed connection (run via [wdmon relay]). *)
module Relay : sig
  val run :
    ?connect_timeout:float ->
    ?timeout:float ->
    ?host:string ->
    port:int ->
    first_site:int ->
    count:int ->
    unit ->
    Frame_io.site_report
  (** Connect to the coordinator (retrying on refusal until the
      wall-clock [connect_timeout] deadline, default 10s), declare the
      site range, then serve frames until [Finish]: batch envelopes are
      decoded with {!Wire.Frame.decode_batch} and validated (inner
      frames must be in-range [Deliver]s), [Request_up]s are answered
      with [Up] frames of the requested size.  Returns (and reports in
      its [Stats] frame) connection-level counters.  Raises [Failure]
      on a [Reject], malformed frames, or a coordinator silence longer
      than [timeout]. *)
end

val connect :
  ?cost_model:Network.cost_model ->
  ?timeout:float ->
  ?flush_bytes:int ->
  ?on_listening:(int -> unit) ->
  port:int ->
  sites:int ->
  unit ->
  Transport.t
(** [Coordinator.connect] followed by {!Coordinator.pack}. *)
