(** Deterministic fault plans for the simulated star network.

    The paper's setting — duplicated sensor reports from multi-path
    routing and retransmission — motivates duplicate-resilient sketches,
    but the seed simulator still assumed a perfectly reliable channel
    (the Section 3 simplification noted in {!Network}).  A fault plan
    relaxes that: it is a pure, seeded description of how each
    coordinator–site link misbehaves (drop / duplicate / corrupt
    probabilities) and of scheduled site crash windows.  {!Network.t}
    consults the plan on every transmission, so the same seed replays
    the same faults byte for byte.

    All randomness comes from one {!Wd_hashing.Rng.t} consumed in
    transmission order; [is_down] is a pure function of the schedule and
    consumes no randomness. *)

type link = { drop : float; duplicate : float; corrupt : float }
(** Per-transmission probabilities on one link, each in [[0, 1]] with
    [drop +. duplicate +. corrupt <= 1.].  [drop]: the frame vanishes.
    [corrupt]: the frame arrives damaged and the receiver's checksum
    discards it (a distinct loss cause in traces).  [duplicate]: the
    frame arrives twice (multi-path routing). *)

type crash = { site : int; down_from : int; down_until : int }
(** Site [site] is dead for logical times [t] with
    [down_from <= t < down_until]: it makes no observations, sends
    nothing, receives nothing, and loses its volatile protocol state.
    At [down_until] it restarts empty and must be resynchronized. *)

type loss = Wd_obs.Event.loss = Link_drop | Corrupt_drop | Crash_drop
(** Alias of {!Wd_obs.Event.loss} so network and trace code pattern-match
    one type. *)

type outcome = Delivered of int | Lost of loss
(** Result of one transmission attempt: [Delivered n] means [n] copies
    reached the receiver ([n >= 1]; [n = 0] marks a non-recipient in
    broadcast outcome arrays); [Lost] names why nothing arrived. *)

type plan

val none : plan
(** The reliable channel: no losses, no duplicates, no crashes.
    [enabled none = false]. *)

val create :
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?link_overrides:(int * link) list ->
  ?crashes:crash list ->
  seed:int ->
  unit ->
  plan
(** [create ~seed ()] builds a plan whose default link has the given
    probabilities (all default [0.]) for every site, except sites listed
    in [link_overrides].  Raises [Invalid_argument] on probabilities
    outside [[0, 1]], sums above [1.], or crash windows with
    [down_from >= down_until] or [down_from < 0]. *)

val of_spec : seed:int -> string -> (plan, string) result
(** Parse a compact command-line spec: comma-separated
    [drop=P | dup=P | corrupt=P | crash=SITE:FROM:UNTIL] clauses, e.g.
    ["drop=0.1,dup=0.02,crash=2:5000:9000"].  Repeated [crash] clauses
    accumulate. *)

val enabled : plan -> bool
(** [true] iff any link probability is positive or any crash is
    scheduled — i.e. iff the channel can misbehave.  Recovery machinery
    (acks, retries, resync) activates only on enabled plans, so a
    disabled plan is byte-identical to no plan at all. *)

val has_crashes : plan -> bool
val crashes : plan -> crash list
val seed : plan -> int

val link_for : plan -> int -> link
(** The effective probabilities on one site's link. *)

val is_down : plan -> site:int -> time:int -> bool
(** Whether [site] is inside a crash window at logical time [time]. *)

val roll : plan -> site:int -> time:int -> outcome
(** Decide the fate of one transmission on [site]'s link at [time].
    A down site loses the frame ([Lost Crash_drop], no randomness);
    otherwise one uniform draw is split across the link's probability
    bands.  [Delivered] is [1] or [2] copies. *)
