(* Minimal single-threaded HTTP scrape endpoint.

   The coordinator's event loop is synchronous (one process, no threads),
   so the server is a non-blocking listening socket the driver polls
   between protocol steps: [poll] accepts whatever connections are
   pending, serves each one completely (bounded by socket timeouts so a
   stalled scraper cannot wedge the run for long), and returns.  One
   request per connection, [Connection: close] — exactly the shape of a
   Prometheus scrape or a curl. *)

type t = {
  fd : Unix.file_descr;
  port : int;
  timeout : float;
  mutable served : int;
  mutable closed : bool;
}

let create ?(host = "127.0.0.1") ?(port = 0) ?(timeout = 1.0) () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 16;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false (* bound to ADDR_INET above *)
  in
  { fd; port; timeout; served = 0; closed = false }

let port t = t.port
let served t = t.served

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

let contains_terminator s =
  let n = String.length s in
  let rec go i =
    i + 3 < n
    && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
         && s.[i + 3] = '\n')
       || go (i + 1))
  in
  (* Bare "\n\n" tolerated for hand-typed requests. *)
  let rec go_lf i = (i + 1 < n && s.[i] = '\n' && s.[i + 1] = '\n') || go_lf (i + 1) in
  n > 3 && (go 0 || go_lf 0)

(* Read until the end of the request headers (the request body, if any,
   is ignored: we only ever serve GET). *)
let read_request conn =
  let chunk = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  let rec go () =
    if Buffer.length acc > 16384 then Buffer.contents acc
    else
      let n = Unix.read conn chunk 0 (Bytes.length chunk) in
      if n = 0 then Buffer.contents acc
      else begin
        Buffer.add_subbytes acc chunk 0 n;
        let s = Buffer.contents acc in
        if contains_terminator s then s else go ()
      end
  in
  go ()

let request_target req =
  match String.index_opt req '\n' with
  | None -> None
  | Some eol -> (
    let line = String.trim (String.sub req 0 eol) in
    match String.split_on_char ' ' line with
    | meth :: target :: _ -> Some (meth, target)
    | _ -> None)

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status content_type (String.length body) body

(* Prometheus text exposition format version. *)
let exposition_content_type = "text/plain; version=0.0.4; charset=utf-8"

let serve t conn ~body =
  Unix.setsockopt_float conn Unix.SO_RCVTIMEO t.timeout;
  Unix.setsockopt_float conn Unix.SO_SNDTIMEO t.timeout;
  let reply =
    match request_target (read_request conn) with
    | Some ("GET", target)
      when target = "/metrics"
           || String.length target > 8
              && String.sub target 0 9 = "/metrics?" ->
      response ~status:"200 OK" ~content_type:exposition_content_type (body ())
    | Some ("GET", _) ->
      response ~status:"404 Not Found" ~content_type:"text/plain"
        "not found; scrape /metrics\n"
    | Some _ ->
      response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "only GET is supported\n"
    | None ->
      response ~status:"400 Bad Request" ~content_type:"text/plain"
        "malformed request\n"
  in
  write_all conn (Bytes.of_string reply) 0 (String.length reply);
  t.served <- t.served + 1

let poll t ~body =
  if not t.closed then begin
    let continue = ref true in
    while !continue do
      match Unix.accept t.fd with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        continue := false
      | conn, _ ->
        (try serve t conn ~body
         with Unix.Unix_error _ | End_of_file -> ());
        (try Unix.close conn with Unix.Unix_error _ -> ())
    done
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
