module Backend = Transport.Of_carrier (struct
  type t = Network.t

  let name = "sim"
  let ledger t = t
  let on_time _ _ = ()
  let close _ = ()
  let wire_stats _ = None
end)

include Backend

let of_network net = Transport.Packed ((module Backend), net)

let create ?cost_model ~sites () =
  of_network (Network.create ?cost_model ~sites ())
