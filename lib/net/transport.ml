type wire_stats = {
  frames_up : int;
  frames_down : int;
  wire_bytes_up : int;
  wire_bytes_down : int;
  control_frames : int;
  control_bytes : int;
  radio_copy_bytes : int;
  skipped_up : int;
  skipped_down : int;
  reconnects : int;
  span_frames_up : int;
  span_frames_down : int;
  batch_envelopes : int;
  batch_inner_frames : int;
}

module type S = sig
  type t

  val name : string
  val ledger : t -> Network.t
  val sites : t -> int
  val cost_model : t -> Network.cost_model
  val set_sink : t -> Wd_obs.Sink.t -> unit
  val sink : t -> Wd_obs.Sink.t
  val set_time : t -> int -> unit
  val time : t -> int
  val set_faults : t -> Faults.plan -> unit
  val faults : t -> Faults.plan
  val site_down : t -> site:int -> bool
  val send_up : t -> site:int -> payload:int -> unit
  val send_down : t -> site:int -> payload:int -> unit
  val broadcast_down : t -> except:int option -> payload:int -> unit
  val transmit_up : t -> site:int -> payload:int -> Faults.outcome
  val transmit_down : t -> site:int -> payload:int -> Faults.outcome

  val transmit_broadcast :
    t -> except:int option -> payload:int -> Faults.outcome array

  val reliable_up :
    ?max_retries:int -> t -> site:int -> payload:int -> Network.delivery

  val reliable_down :
    ?max_retries:int -> t -> site:int -> payload:int -> Network.delivery

  val close : t -> unit
  val wire_stats : t -> wire_stats option
end

type t = Packed : (module S with type t = 'a) * 'a -> t

let name (Packed ((module B), _)) = B.name
let ledger (Packed ((module B), h)) = B.ledger h
let sites (Packed ((module B), h)) = B.sites h
let cost_model (Packed ((module B), h)) = B.cost_model h
let set_sink (Packed ((module B), h)) sink = B.set_sink h sink
let sink (Packed ((module B), h)) = B.sink h
let set_time (Packed ((module B), h)) time = B.set_time h time
let time (Packed ((module B), h)) = B.time h
let set_faults (Packed ((module B), h)) plan = B.set_faults h plan
let faults (Packed ((module B), h)) = B.faults h
let site_down (Packed ((module B), h)) ~site = B.site_down h ~site
let send_up (Packed ((module B), h)) ~site ~payload = B.send_up h ~site ~payload

let send_down (Packed ((module B), h)) ~site ~payload =
  B.send_down h ~site ~payload

let broadcast_down (Packed ((module B), h)) ~except ~payload =
  B.broadcast_down h ~except ~payload

let transmit_up (Packed ((module B), h)) ~site ~payload =
  B.transmit_up h ~site ~payload

let transmit_down (Packed ((module B), h)) ~site ~payload =
  B.transmit_down h ~site ~payload

let transmit_broadcast (Packed ((module B), h)) ~except ~payload =
  B.transmit_broadcast h ~except ~payload

let reliable_up ?max_retries (Packed ((module B), h)) ~site ~payload =
  B.reliable_up ?max_retries h ~site ~payload

let reliable_down ?max_retries (Packed ((module B), h)) ~site ~payload =
  B.reliable_down ?max_retries h ~site ~payload

let close (Packed ((module B), h)) = B.close h
let wire_stats (Packed ((module B), h)) = B.wire_stats h

module type CARRIER = sig
  type t

  val name : string
  val ledger : t -> Network.t
  val on_time : t -> int -> unit
  val close : t -> unit
  val wire_stats : t -> wire_stats option
end

(* Everything but the three carrier hooks is fixed by the ledger: the
   delivery semantics (fault rolls, retries, duplicate copies, byte
   charges) run in Network, and any wire machinery rides on the taps
   the carrier has installed there.  Delegating here is what makes a
   fixed-seed run bit-identical across backends. *)
module Of_carrier (C : CARRIER) : S with type t = C.t = struct
  type t = C.t

  let name = C.name
  let ledger = C.ledger
  let sites t = Network.sites (C.ledger t)
  let cost_model t = Network.cost_model (C.ledger t)
  let set_sink t sink = Network.set_sink (C.ledger t) sink
  let sink t = Network.sink (C.ledger t)

  let set_time t time =
    Network.set_time (C.ledger t) time;
    C.on_time t time

  let time t = Network.time (C.ledger t)
  let set_faults t plan = Network.set_faults (C.ledger t) plan
  let faults t = Network.faults (C.ledger t)
  let site_down t ~site = Network.site_down (C.ledger t) ~site
  let send_up t ~site ~payload = Network.send_up (C.ledger t) ~site ~payload

  let send_down t ~site ~payload =
    Network.send_down (C.ledger t) ~site ~payload

  let broadcast_down t ~except ~payload =
    Network.broadcast_down (C.ledger t) ~except ~payload

  let transmit_up t ~site ~payload =
    Network.transmit_up (C.ledger t) ~site ~payload

  let transmit_down t ~site ~payload =
    Network.transmit_down (C.ledger t) ~site ~payload

  let transmit_broadcast t ~except ~payload =
    Network.transmit_broadcast (C.ledger t) ~except ~payload

  let reliable_up ?max_retries t ~site ~payload =
    Network.reliable_up ?max_retries (C.ledger t) ~site ~payload

  let reliable_down ?max_retries t ~site ~payload =
    Network.reliable_down ?max_retries (C.ledger t) ~site ~payload

  let close = C.close
  let wire_stats = C.wire_stats
end
