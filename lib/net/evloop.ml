(* Readiness waits for the TCP backend, in one place.  OCaml's Unix
   module exposes [select] portably (no [poll]/[epoll] binding without a
   C stub), so this is a select loop; the interface is
   registration-based so a poll/epoll implementation can slot in without
   touching callers. *)

type t = { mutable fds : Unix.file_descr list }

let create () = { fds = [] }

let add t fd = if not (List.memq fd t.fds) then t.fds <- fd :: t.fds

let remove t fd = t.fds <- List.filter (fun fd' -> fd' != fd) t.fds

let registered t = List.length t.fds

(* Remaining budget of a wall-clock deadline, clamped so [select] never
   gets a negative timeout; 0 means "poll once, don't sleep". *)
let remaining ~deadline =
  let r = deadline -. Unix.gettimeofday () in
  if r < 0. then 0. else r

let rec select_retry read timeout =
  match Unix.select read [] [] timeout with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    (* Retrying with the same timeout could stretch the wait under a
       signal storm; callers loop against their own deadline, so a
       shortened wait here is safe and simpler. *)
    select_retry read timeout

let wait t ~deadline =
  if t.fds = [] then []
  else select_retry t.fds (remaining ~deadline)

let wait_readable fd ~deadline =
  match select_retry [ fd ] (remaining ~deadline) with
  | [] -> false
  | _ :: _ -> true

(* Block until [fd] is readable or the deadline passes, re-polling after
   spurious wakeups; the loop is bounded by wall clock, never by an
   iteration count. *)
let rec await_readable fd ~deadline =
  if wait_readable fd ~deadline then true
  else if Unix.gettimeofday () >= deadline then false
  else await_readable fd ~deadline
