(** Wire-size constants for byte-for-byte communication accounting.

    The paper measures the communication cost of every protocol "as the
    number of bytes sent between the coordinator and each remote site",
    comparing approximate protocols against the exact baselines byte for
    byte.  This module fixes the sizes used everywhere so that those ratios
    are consistent and documented in one place.

    Items come from the integer domain [\[U\]] with [U = 2^32] or [2^64];
    we account 8 bytes per item and per count, matching the wider domain. *)

val header_bytes : int
(** Per-message framing: message tag + site identifier (4 bytes). *)

val item_bytes : int
(** One stream item / identifier (8 bytes). *)

val count_bytes : int
(** One occurrence count or distinct-count estimate (8 bytes). *)

val level_bytes : int
(** One sampling level, [0..64] (1 byte). *)

val ack_bytes : int
(** One delivery acknowledgement payload (1 byte); used by the recovery
    protocol when a fault plan is active. *)

val message : payload:int -> int
(** [message ~payload] is the full cost of one message: header + payload. *)

val items : int -> int
(** [items n] is the payload size of [n] packed items. *)

val item_count_pairs : int -> int
(** [item_count_pairs n] is the payload size of [n] (item, count) pairs. *)
