(** Wire-size constants for byte-for-byte communication accounting.

    The paper measures the communication cost of every protocol "as the
    number of bytes sent between the coordinator and each remote site",
    comparing approximate protocols against the exact baselines byte for
    byte.  This module fixes the sizes used everywhere so that those ratios
    are consistent and documented in one place.

    Items come from the integer domain [\[U\]] with [U = 2^32] or [2^64];
    we account 8 bytes per item and per count, matching the wider domain. *)

val header_bytes : int
(** Per-message framing: message tag + site identifier (4 bytes). *)

val item_bytes : int
(** One stream item / identifier (8 bytes). *)

val count_bytes : int
(** One occurrence count or distinct-count estimate (8 bytes). *)

val level_bytes : int
(** One sampling level, [0..64] (1 byte). *)

val ack_bytes : int
(** One delivery acknowledgement payload (1 byte); used by the recovery
    protocol when a fault plan is active. *)

val message : payload:int -> int
(** [message ~payload] is the full cost of one message: header + payload. *)

val items : int -> int
(** [items n] is the payload size of [n] packed items. *)

val item_count_pairs : int -> int
(** [item_count_pairs n] is the payload size of [n] (item, count) pairs. *)

(** {1 Frames}

    The on-wire encoding used by the socket transport backend
    ({!Transport_socket}): every message travels as one length-prefixed,
    version-tagged frame.  The frame header is deliberately {e larger}
    than the simulator's accounting {!header_bytes} (real framing needs a
    magic, a version and an explicit length); the transport reconciles
    the two with the documented formula
    [wire bytes = ledger bytes + frames * (Frame.header_bytes -
    header_bytes)].

    Layout, little-endian:
    {v
      offset 0  magic      2 bytes  "WD"
      offset 2  version    1 byte   {!Frame.version}
      offset 3  kind       1 byte   {!Frame.kind}; top bit = span flag (v2)
      offset 4  site       4 bytes  sender / addressee site id
      offset 8  length     4 bytes  payload length in bytes
      offset 12 span ctx   40 bytes, only when the span flag is set
      ...       payload    [length] bytes
    v}

    Version 2 (current) optionally carries a 40-byte span-context block
    between header and payload, announced by the top bit of the kind
    byte ({!Frame.span_flag}) — this is how causal trace context crosses
    process boundaries.  Version 1 frames (no span flag, no block) are
    still accepted on decode, so a v1 peer's frames remain readable; the
    fixed 12-byte header is common to both.

    Decoding rejects wrong magics, unknown kinds, negative or oversized
    lengths, and — the protocol-version gate — any version byte other
    than {!Frame.version} or {!Frame.legacy_version}, each with a
    distinct typed {!Frame.error}. *)

module Frame : sig
  val magic : string
  (** ["WD"], the two leading bytes of every frame. *)

  val version : int
  (** Protocol version written by this build (2: optional span-context
      block); bumped on any incompatible frame or handshake change. *)

  val legacy_version : int
  (** Oldest version still accepted on decode (1: no span support). *)

  val header_bytes : int
  (** Fixed frame-header size (12 bytes), identical across versions. *)

  val span_bytes : int
  (** Size of the optional span-context block (40 bytes). *)

  val span_flag : int
  (** Kind-byte bit announcing a span-context block ([0x80]). *)

  val max_payload : int
  (** Upper bound on a frame payload accepted by {!decode_header}
      (16 MiB); a defense against garbage lengths, far above any sketch. *)

  (** Frame kinds of the site/coordinator socket protocol. *)
  type kind =
    | Hello  (** site -> coordinator: handshake carrying the site id *)
    | Welcome  (** coordinator -> site: handshake accepted *)
    | Deliver  (** coordinator -> site: one down-direction protocol message *)
    | Request_up
        (** coordinator -> site: control frame asking the site to emit one
            {!Up} frame; the 4-byte payload is the requested payload size *)
    | Up  (** site -> coordinator: one up-direction protocol message *)
    | Finish  (** coordinator -> site: end of run, report {!Stats} *)
    | Stats
        (** site -> coordinator: final per-direction byte/frame counters *)
    | Reject
        (** either direction: handshake refused (version mismatch); the
            payload is a UTF-8 reason *)
    | Batch
        (** coordinator -> site: envelope coalescing several complete
            frames into one wire write; the site field carries the
            inner-frame count, the length field the size of the inner
            region, and the payload is the inner frames back to back,
            carried unchanged (span blocks included).  Nesting is
            forbidden. *)

  val kind_to_string : kind -> string

  type header = { kind : kind; site : int; length : int; has_span : bool }
  (** [has_span] is true when a {!span} block sits between this header
      and the payload (version 2 frames only). *)

  type span = {
    trace_id : int64;
    span_id : int64;
    parent_id : int64;
    t1_ns : int64;
    t2_ns : int64;
  }
  (** The span-context block: the run-scoped trace id, the sender's span
      and its parent, and two wall-clock stamps whose meaning depends on
      the frame kind (a [Request_up] carries the coordinator's send
      time; the [Up] reply carries the relay's receive and send
      times). *)

  (** Decode failures, each naming exactly what was wrong.  A
      [Version_mismatch] is the typed rejection the protocol-version byte
      exists for. *)
  type error =
    | Bad_magic of string  (** the two leading bytes, verbatim *)
    | Version_mismatch of { expected : int; got : int }
    | Bad_kind of int
    | Bad_length of int
    | Truncated of { wanted : int; got : int }
        (** fewer bytes available than the header (or its length field)
            announced *)
    | Bad_count of { expected : int; got : int }
        (** a batch envelope whose inner region parsed clean but held a
            different number of frames than the envelope announced *)

  val error_to_string : error -> string

  val bytes : payload:int -> int
  (** [bytes ~payload] is the full on-wire size of one frame:
      [header_bytes + payload]. *)

  val encode_header : Bytes.t -> pos:int -> kind:kind -> site:int -> length:int -> unit
  (** Write a 12-byte header at [pos] (no span flag); the buffer must
      have room. *)

  val encode_header_spanned :
    Bytes.t -> pos:int -> kind:kind -> site:int -> length:int -> unit
  (** Like {!encode_header} with the span flag set: the sender must
      follow the header with an {!encode_span} block. *)

  val decode_header : Bytes.t -> pos:int -> (header, error) result
  (** Parse a 12-byte header at [pos].  Returns [Truncated] if fewer than
      {!header_bytes} bytes remain. *)

  val encode_span : Bytes.t -> pos:int -> span -> unit
  (** Write a 40-byte span-context block at [pos]. *)

  val decode_span : Bytes.t -> pos:int -> (span, error) result
  (** Parse a 40-byte span-context block at [pos].  Returns [Truncated]
      if fewer than {!span_bytes} bytes remain. *)

  (** {2 Batch envelopes}

      The TCP backend coalesces per-site deliveries into one write per
      flush: a {!Batch} frame whose payload is several complete v2
      frames back to back, each with its own header and optional span
      block, byte-for-byte as they would have travelled alone. *)

  val encode_batch_header : Bytes.t -> pos:int -> count:int -> length:int -> unit
  (** Write a batch-envelope header at [pos]: kind {!Batch}, the site
      field carrying [count] (inner frames) and the length field
      [length] (total bytes of the inner region). *)

  val decode_batch :
    Bytes.t -> count:int -> ((header * span option * int) list, error) result
  (** [decode_batch buf ~count] parses [buf] — exactly the payload
      region of a batch envelope announcing [count] inner frames — into
      [(header, span, payload offset)] triples in wire order, payloads
      left in place in [buf].  Allocation is bounded by the region size.
      Typed failures: short headers/spans/payloads (including stomped
      inner length fields) are [Truncated] against the region end, a
      nested {!Batch} is [Bad_kind], a clean parse with the wrong number
      of frames is [Bad_count]. *)
end
