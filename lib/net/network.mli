(** Simulated star network between [k] remote sites and one coordinator,
    with byte-level communication accounting.

    The paper simulates the distributed system on one machine and measures
    bytes exchanged; this module is that simulator's bookkeeping.  Message
    delivery is instantaneous (the paper's simplifying assumption in
    Section 3); what matters is the cost of each send.  Attaching a
    {!Faults.plan} relaxes the reliability half of that assumption: the
    [transmit_*] / [reliable_*] entry points consult the plan on every
    transmission and can drop, duplicate, or corrupt frames and black out
    crashed sites, while the ledger keeps charging every byte that hit a
    link.  With no plan (or a disabled one) those entry points degrade to
    the plain [send_*] recorders, byte for byte.

    Two cost models (Section 7.2 compares them):

    - {!Unicast}: point-to-point links.  A coordinator broadcast to [k]
      sites costs [k] messages.
    - {!Radio_broadcast}: shared medium ("all data is effectively
      broadcast").  A coordinator broadcast costs one message regardless of
      the number of recipients; this is the model in which the paper found
      the eager Shared Sketch algorithm to win by a factor of two.

    Every ledger additionally emits a {!Wd_obs.Event.t} per recorded send
    through its attached {!Wd_obs.Sink.t} (default: the null sink, which
    costs one branch and no allocation).  Protocol drivers stamp the
    ledger's logical clock ({!set_time}) with their update index so
    emitted events carry stream positions. *)

type cost_model = Unicast | Radio_broadcast

val cost_model_to_string : cost_model -> string

type t
(** Mutable communication ledger for one protocol run. *)

val create : ?cost_model:cost_model -> sites:int -> unit -> t
(** [create ~sites ()] is a fresh ledger for [sites] remote sites
    (default cost model {!Unicast}).  Requires [sites >= 1]. *)

val sites : t -> int
val cost_model : t -> cost_model

(** {1 Observability} *)

val set_sink : t -> Wd_obs.Sink.t -> unit
(** Attach a trace sink; every subsequent send emits one event. *)

val sink : t -> Wd_obs.Sink.t

val set_time : t -> int -> unit
(** Set the logical clock stamped on emitted events (callers pass their
    update index).  Also the clock against which {!Faults.crash} windows
    are evaluated, so fault-injected runs must keep it current. *)

val time : t -> int

(** {1 Fault injection} *)

val set_faults : t -> Faults.plan -> unit
(** Attach a fault plan consulted by the [transmit_*] and [reliable_*]
    functions below (default {!Faults.none}). *)

val faults : t -> Faults.plan

val site_down : t -> site:int -> bool
(** Whether [site] is inside a crash window at the current {!time}. *)

(** {1 Tree topology}

    Installing a {!Topology.t} turns the star into a multi-level tree:
    site frames cross their site link as before, then hop the backbone
    (aggregator→aggregator→root) — and coordinator messages hop it in
    reverse.  Backbone charges accumulate in dedicated counters, {e not}
    in [bytes_up]/[bytes_down], so the flat-star ledger semantics, the
    golden traces, and the transports' wire reconciliation laws are all
    unchanged by this feature; a flat topology (or none) is
    bit-identical to the seed behaviour.

    Backbone edges are the reliable CDN backbone: they never roll
    drop/duplicate/corrupt faults (and consume no randomness), but an
    aggregator inside a fault-plan crash window — addressed as node
    [sites + j], see {!Topology.node_of_agg} — swallows every frame
    routed through it, failing the transmission end-to-end.  Under
    {!Radio_broadcast} the shared medium still reaches every site
    directly, so broadcasts ignore the tree.

    The up direction is priced by the {e trackers}: after a delivered
    site contribution they walk the site's path calling {!forward_up}
    once per hop with the bytes genuinely new to each aggregator's
    merged sketch — the tree's dedup savings.  The down direction is
    charged automatically by every [send_down]/[transmit_down]/
    broadcast entry point. *)

val set_topology : t -> Topology.t -> unit
(** Install a topology ([Topology.sites] must equal this ledger's
    [sites]; raises [Invalid_argument] otherwise).  Resets the backbone
    counters; install before recording traffic.  A flat topology
    uninstalls the tree. *)

val topology : t -> Topology.t
(** The installed topology ({!Topology.flat} when none was set). *)

val tree_topology : t -> Topology.t option
(** [Some] iff a non-flat tree is installed; allocation-free, for hot
    paths that only need to know whether backbone hops exist. *)

val forward_up : t -> agg:int -> payload:int -> bool
(** Charge one aggregator→parent backbone hop ({!Wire.header_bytes}
    added as usual) and emit a [Forward] event.  Returns [false] iff the
    parent aggregator is inside a crash window (the frame is charged but
    lost).  Raises [Invalid_argument] without a tree topology. *)

val backbone_bytes_up : t -> int
val backbone_bytes_down : t -> int
val backbone_bytes : t -> int
val backbone_messages : t -> int

val grand_total_bytes : t -> int
(** [total_bytes] plus all backbone charges — the whole-tree cost. *)

val root_bytes_in : t -> int
(** Up-direction bytes that actually arrived at the coordinator
    (delivered copies only, acks included), accumulated via each
    sender's parent lookup.  The conservation law — this equals the sum
    of {!edge_delivered_up} over last-hop nodes — is asserted by the
    debug checks after every down-side charge. *)

val agg_bytes_up : t -> int -> int
(** Bytes aggregator [j] forwarded toward the root. *)

val agg_bytes_down : t -> int -> int
(** Bytes relayed down through aggregator [j]. *)

val edge_delivered_up : t -> node:int -> int
(** Delivered up-direction bytes on [node]'s edge to its parent
    ([node < sites]: a site link; otherwise aggregator
    [node - sites]). *)

val set_debug_checks : t -> bool -> unit
(** Enable/disable the internal ledger invariant assertion
    [bytes_down = medium_bytes + sum of site down-links], checked after
    every down-side charge and on {!reset} (default: enabled). *)

(** {1 Wire taps}

    A tap observes every {e charged} transmission at the moment the
    ledger records it — one callback per message copy that occupied a
    link (or the shared medium), including copies that were then lost.
    Transport backends use this to realize the simulator's accounting as
    real frames on a wire: delivery semantics (fault rolls, retries,
    duplicate copies) stay in this module, so every backend shares them
    by construction.  Taps never consume randomness and never affect the
    ledger, so an installed tap leaves runs bit-identical. *)

type tap = {
  on_up : site:int -> payload:int -> lost:Faults.loss option -> unit;
      (** one up-direction message copy charged to [site]'s uplink;
          [lost] names the loss cause when the copy never arrived *)
  on_down : site:int -> payload:int -> lost:Faults.loss option -> unit;
      (** one down-direction message copy charged to [site]'s link *)
  on_medium : payload:int -> unit;
      (** one {!Radio_broadcast} transmission charged to the shared
          medium (per-site reception failures charge nothing and are not
          tapped) *)
}

val set_tap : t -> tap option -> unit
(** Install (or remove) the wire tap (default none). *)

val set_spans : t -> Wd_obs.Span.t option -> unit
(** Attach (or detach) a span recorder (default none).  With a recorder
    attached, every charged message copy and broadcast becomes a
    {!Wd_obs.Event.kind.Span} wrapped around the tap call — under the
    socket transport the tap is where the real I/O happens, so the span
    measures the wire.  The recorder is also the attachment point the
    transports and trackers read ({!spans}) to stamp their own spans, so
    one [set_spans] call turns on span timing for the whole stack. *)

val spans : t -> Wd_obs.Span.t option

(** {1 Recording traffic}

    All sizes are message payload sizes; {!Wire.header_bytes} is added per
    message automatically. *)

val send_up : t -> site:int -> payload:int -> unit
(** A message from remote site [site] to the coordinator. *)

val send_down : t -> site:int -> payload:int -> unit
(** A unicast message from the coordinator to site [site]. *)

val broadcast_down : t -> except:int option -> payload:int -> unit
(** A coordinator message to every site (except [except] if given).  Under
    {!Unicast} this costs one message per recipient; under
    {!Radio_broadcast} exactly one message (even with [except], since the
    medium is shared). *)

(** {1 Fault-aware delivery}

    These charge the ledger like their [send_*] counterparts and
    additionally report whether the frame(s) arrived, according to the
    attached fault plan.  Lost transmissions are still charged to the
    sender's link (the bytes crossed the wire; the receiver just never
    saw them); duplicate deliveries charge, and count as, one extra
    message per extra copy.  With a disabled plan they are exactly
    [send_*] plus [Delivered 1]. *)

val transmit_up : t -> site:int -> payload:int -> Faults.outcome
val transmit_down : t -> site:int -> payload:int -> Faults.outcome

val transmit_broadcast :
  t -> except:int option -> payload:int -> Faults.outcome array
(** Per-site outcomes, indexed by site; the [except] site reads
    [Delivered 0].  Under {!Unicast} each recipient link is a separate
    transmission (separately charged, separately faulted); under
    {!Radio_broadcast} the shared medium is charged once and only
    reception can fail, at no extra ledger cost. *)

type delivery = { received : bool; acked : bool; attempts : int }
(** Outcome of a reliable exchange: [received] — at least one copy of the
    payload reached the receiver; [acked] — the sender saw an
    acknowledgement (so both ends agree); [attempts] — transmissions of
    the payload, 1 with no retries. [received && not acked] is the
    classic uncertainty window: the receiver has the data but the sender
    must assume it doesn't. *)

val reliable_up :
  ?max_retries:int -> t -> site:int -> payload:int -> delivery
(** Send up with a coordinator ack ({!Wire.ack_bytes} payload down the
    same link) and up to [max_retries] (default 5) retransmissions while
    no ack arrives.  Every attempt and ack is charged and traced
    ([Retry] events mark retransmissions).  With faults disabled this is
    exactly one {!send_up}. *)

val reliable_down :
  ?max_retries:int -> t -> site:int -> payload:int -> delivery
(** Mirror image of {!reliable_up}: payload down, ack up. *)

(** {1 Reading the ledger} *)

val bytes_up : t -> int
val bytes_down : t -> int
val total_bytes : t -> int
val messages_up : t -> int
val messages_down : t -> int
val total_messages : t -> int

val site_bytes_up : t -> int -> int
(** Bytes sent by one site to the coordinator. *)

val site_bytes_down : t -> int -> int
(** Bytes delivered to one site over its point-to-point link: unicast
    sends plus (under {!Unicast}) its copy of each broadcast.  Under
    {!Radio_broadcast}, broadcasts occupy the shared medium rather than
    any site's link and are reported by {!medium_bytes} instead, so
    [bytes_down t = medium_bytes t + sum_i site_bytes_down t i] holds in
    both models. *)

val medium_bytes : t -> int
(** Bytes that crossed the shared broadcast medium ({!Radio_broadcast}
    broadcasts); always [0] under {!Unicast}. *)

(** {1 Fault counters}

    Zero unless an enabled fault plan is attached. *)

val drops : t -> int
(** Transmissions lost for any reason ([link_drops + corrupt_drops +
    crash_drops]). *)

val link_drops : t -> int
val corrupt_drops : t -> int
val crash_drops : t -> int

val duplicate_deliveries : t -> int
(** Extra copies delivered beyond the first, across all links. *)

val retries : t -> int
(** Retransmissions performed by {!reliable_up} / {!reliable_down}. *)

val reset : t -> unit
(** Zero all counters and the logical clock (the cost model, topology and
    attached sink are kept). *)
