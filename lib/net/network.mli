(** Simulated star network between [k] remote sites and one coordinator,
    with byte-level communication accounting.

    The paper simulates the distributed system on one machine and measures
    bytes exchanged; this module is that simulator's bookkeeping.  Message
    delivery is instantaneous (the paper's simplifying assumption in
    Section 3); what matters is the cost of each send.

    Two cost models (Section 7.2 compares them):

    - {!Unicast}: point-to-point links.  A coordinator broadcast to [k]
      sites costs [k] messages.
    - {!Radio_broadcast}: shared medium ("all data is effectively
      broadcast").  A coordinator broadcast costs one message regardless of
      the number of recipients; this is the model in which the paper found
      the eager Shared Sketch algorithm to win by a factor of two.

    Every ledger additionally emits a {!Wd_obs.Event.t} per recorded send
    through its attached {!Wd_obs.Sink.t} (default: the null sink, which
    costs one branch and no allocation).  Protocol drivers stamp the
    ledger's logical clock ({!set_time}) with their update index so
    emitted events carry stream positions. *)

type cost_model = Unicast | Radio_broadcast

val cost_model_to_string : cost_model -> string

type t
(** Mutable communication ledger for one protocol run. *)

val create : ?cost_model:cost_model -> sites:int -> unit -> t
(** [create ~sites ()] is a fresh ledger for [sites] remote sites
    (default cost model {!Unicast}).  Requires [sites >= 1]. *)

val sites : t -> int
val cost_model : t -> cost_model

(** {1 Observability} *)

val set_sink : t -> Wd_obs.Sink.t -> unit
(** Attach a trace sink; every subsequent send emits one event. *)

val sink : t -> Wd_obs.Sink.t

val set_time : t -> int -> unit
(** Set the logical clock stamped on emitted events (callers pass their
    update index).  Purely observational; does not affect accounting. *)

val time : t -> int

(** {1 Recording traffic}

    All sizes are message payload sizes; {!Wire.header_bytes} is added per
    message automatically. *)

val send_up : t -> site:int -> payload:int -> unit
(** A message from remote site [site] to the coordinator. *)

val send_down : t -> site:int -> payload:int -> unit
(** A unicast message from the coordinator to site [site]. *)

val broadcast_down : t -> except:int option -> payload:int -> unit
(** A coordinator message to every site (except [except] if given).  Under
    {!Unicast} this costs one message per recipient; under
    {!Radio_broadcast} exactly one message (even with [except], since the
    medium is shared). *)

(** {1 Reading the ledger} *)

val bytes_up : t -> int
val bytes_down : t -> int
val total_bytes : t -> int
val messages_up : t -> int
val messages_down : t -> int
val total_messages : t -> int

val site_bytes_up : t -> int -> int
(** Bytes sent by one site to the coordinator. *)

val site_bytes_down : t -> int -> int
(** Bytes delivered to one site over its point-to-point link: unicast
    sends plus (under {!Unicast}) its copy of each broadcast.  Under
    {!Radio_broadcast}, broadcasts occupy the shared medium rather than
    any site's link and are reported by {!medium_bytes} instead, so
    [bytes_down t = medium_bytes t + sum_i site_bytes_down t i] holds in
    both models. *)

val medium_bytes : t -> int
(** Bytes that crossed the shared broadcast medium ({!Radio_broadcast}
    broadcasts); always [0] under {!Unicast}. *)

val reset : t -> unit
(** Zero all counters and the logical clock (the cost model, topology and
    attached sink are kept). *)
