let header_bytes = 4
let item_bytes = 8
let count_bytes = 8
let level_bytes = 1
let ack_bytes = 1

let message ~payload = header_bytes + payload

let items n = n * item_bytes

let item_count_pairs n = n * (item_bytes + count_bytes)
