let header_bytes = 4
let item_bytes = 8
let count_bytes = 8
let level_bytes = 1
let ack_bytes = 1

let message ~payload = header_bytes + payload

let items n = n * item_bytes

let item_count_pairs n = n * (item_bytes + count_bytes)

module Frame = struct
  let magic = "WD"
  let version = 1
  let header_bytes = 12
  let max_payload = 16 * 1024 * 1024

  type kind =
    | Hello
    | Welcome
    | Deliver
    | Request_up
    | Up
    | Finish
    | Stats
    | Reject

  let kind_to_string = function
    | Hello -> "hello"
    | Welcome -> "welcome"
    | Deliver -> "deliver"
    | Request_up -> "request-up"
    | Up -> "up"
    | Finish -> "finish"
    | Stats -> "stats"
    | Reject -> "reject"

  let kind_to_byte = function
    | Hello -> 1
    | Welcome -> 2
    | Deliver -> 3
    | Request_up -> 4
    | Up -> 5
    | Finish -> 6
    | Stats -> 7
    | Reject -> 8

  let kind_of_byte = function
    | 1 -> Some Hello
    | 2 -> Some Welcome
    | 3 -> Some Deliver
    | 4 -> Some Request_up
    | 5 -> Some Up
    | 6 -> Some Finish
    | 7 -> Some Stats
    | 8 -> Some Reject
    | _ -> None

  type header = { kind : kind; site : int; length : int }

  type error =
    | Bad_magic of string
    | Version_mismatch of { expected : int; got : int }
    | Bad_kind of int
    | Bad_length of int
    | Truncated of { wanted : int; got : int }

  let error_to_string = function
    | Bad_magic m -> Printf.sprintf "bad magic %S (want %S)" m magic
    | Version_mismatch { expected; got } ->
      Printf.sprintf "protocol version mismatch: peer speaks %d, we speak %d"
        got expected
    | Bad_kind k -> Printf.sprintf "unknown frame kind %d" k
    | Bad_length n -> Printf.sprintf "bad frame length %d" n
    | Truncated { wanted; got } ->
      Printf.sprintf "truncated frame: wanted %d bytes, got %d" wanted got

  let bytes ~payload = header_bytes + payload

  let encode_header buf ~pos ~kind ~site ~length =
    Bytes.set buf pos magic.[0];
    Bytes.set buf (pos + 1) magic.[1];
    Bytes.set_uint8 buf (pos + 2) version;
    Bytes.set_uint8 buf (pos + 3) (kind_to_byte kind);
    Bytes.set_int32_le buf (pos + 4) (Int32.of_int site);
    Bytes.set_int32_le buf (pos + 8) (Int32.of_int length)

  let decode_header buf ~pos =
    let avail = Bytes.length buf - pos in
    if avail < header_bytes then
      Error (Truncated { wanted = header_bytes; got = max 0 avail })
    else if Bytes.get buf pos <> magic.[0] || Bytes.get buf (pos + 1) <> magic.[1]
    then Error (Bad_magic (Bytes.sub_string buf pos 2))
    else
      let v = Bytes.get_uint8 buf (pos + 2) in
      if v <> version then Error (Version_mismatch { expected = version; got = v })
      else
        match kind_of_byte (Bytes.get_uint8 buf (pos + 3)) with
        | None -> Error (Bad_kind (Bytes.get_uint8 buf (pos + 3)))
        | Some kind ->
          let site = Int32.to_int (Bytes.get_int32_le buf (pos + 4)) in
          let length = Int32.to_int (Bytes.get_int32_le buf (pos + 8)) in
          if length < 0 || length > max_payload then Error (Bad_length length)
          else Ok { kind; site; length }
end
