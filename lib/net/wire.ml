let header_bytes = 4
let item_bytes = 8
let count_bytes = 8
let level_bytes = 1
let ack_bytes = 1

let message ~payload = header_bytes + payload

let items n = n * item_bytes

let item_count_pairs n = n * (item_bytes + count_bytes)

module Frame = struct
  let magic = "WD"
  let version = 2
  let legacy_version = 1
  let header_bytes = 12
  let span_bytes = 40
  let span_flag = 0x80
  let max_payload = 16 * 1024 * 1024

  type kind =
    | Hello
    | Welcome
    | Deliver
    | Request_up
    | Up
    | Finish
    | Stats
    | Reject
    | Batch

  let kind_to_string = function
    | Hello -> "hello"
    | Welcome -> "welcome"
    | Deliver -> "deliver"
    | Request_up -> "request-up"
    | Up -> "up"
    | Finish -> "finish"
    | Stats -> "stats"
    | Reject -> "reject"
    | Batch -> "batch"

  let kind_to_byte = function
    | Hello -> 1
    | Welcome -> 2
    | Deliver -> 3
    | Request_up -> 4
    | Up -> 5
    | Finish -> 6
    | Stats -> 7
    | Reject -> 8
    | Batch -> 9

  let kind_of_byte = function
    | 1 -> Some Hello
    | 2 -> Some Welcome
    | 3 -> Some Deliver
    | 4 -> Some Request_up
    | 5 -> Some Up
    | 6 -> Some Finish
    | 7 -> Some Stats
    | 8 -> Some Reject
    | 9 -> Some Batch
    | _ -> None

  type header = { kind : kind; site : int; length : int; has_span : bool }

  (* Span context block, between header and payload when the kind byte's
     top bit is set (version 2 frames only).  [t1_ns]/[t2_ns] are the
     sender's two wall-clock stamps; their meaning depends on the frame
     kind (e.g. a Request_up carries the coordinator's send time, the Up
     reply carries the relay's receive and send times). *)
  type span = {
    trace_id : int64;
    span_id : int64;
    parent_id : int64;
    t1_ns : int64;
    t2_ns : int64;
  }

  type error =
    | Bad_magic of string
    | Version_mismatch of { expected : int; got : int }
    | Bad_kind of int
    | Bad_length of int
    | Truncated of { wanted : int; got : int }
    | Bad_count of { expected : int; got : int }

  let error_to_string = function
    | Bad_magic m -> Printf.sprintf "bad magic %S (want %S)" m magic
    | Version_mismatch { expected; got } ->
      Printf.sprintf "protocol version mismatch: peer speaks %d, we speak %d"
        got expected
    | Bad_kind k -> Printf.sprintf "unknown frame kind %d" k
    | Bad_length n -> Printf.sprintf "bad frame length %d" n
    | Truncated { wanted; got } ->
      Printf.sprintf "truncated frame: wanted %d bytes, got %d" wanted got
    | Bad_count { expected; got } ->
      Printf.sprintf "batch count mismatch: envelope announced %d frame(s), found %d"
        expected got

  let bytes ~payload = header_bytes + payload

  let encode_header_raw buf ~pos ~kind_byte ~site ~length =
    Bytes.set buf pos magic.[0];
    Bytes.set buf (pos + 1) magic.[1];
    Bytes.set_uint8 buf (pos + 2) version;
    Bytes.set_uint8 buf (pos + 3) kind_byte;
    Bytes.set_int32_le buf (pos + 4) (Int32.of_int site);
    Bytes.set_int32_le buf (pos + 8) (Int32.of_int length)

  let encode_header buf ~pos ~kind ~site ~length =
    encode_header_raw buf ~pos ~kind_byte:(kind_to_byte kind) ~site ~length

  let encode_header_spanned buf ~pos ~kind ~site ~length =
    encode_header_raw buf ~pos
      ~kind_byte:(kind_to_byte kind lor span_flag)
      ~site ~length

  let decode_header buf ~pos =
    let avail = Bytes.length buf - pos in
    if avail < header_bytes then
      Error (Truncated { wanted = header_bytes; got = max 0 avail })
    else if Bytes.get buf pos <> magic.[0] || Bytes.get buf (pos + 1) <> magic.[1]
    then Error (Bad_magic (Bytes.sub_string buf pos 2))
    else
      let v = Bytes.get_uint8 buf (pos + 2) in
      if v <> version && v <> legacy_version then
        Error (Version_mismatch { expected = version; got = v })
      else
        (* The span flag exists since version 2; on a legacy frame a set
           top bit is just an unknown kind. *)
        let kind_byte = Bytes.get_uint8 buf (pos + 3) in
        let has_span = v >= 2 && kind_byte land span_flag <> 0 in
        let plain = if has_span then kind_byte land lnot span_flag else kind_byte in
        match kind_of_byte plain with
        | None -> Error (Bad_kind kind_byte)
        | Some kind ->
          let site = Int32.to_int (Bytes.get_int32_le buf (pos + 4)) in
          let length = Int32.to_int (Bytes.get_int32_le buf (pos + 8)) in
          if length < 0 || length > max_payload then Error (Bad_length length)
          else Ok { kind; site; length; has_span }

  let encode_span buf ~pos (s : span) =
    Bytes.set_int64_le buf pos s.trace_id;
    Bytes.set_int64_le buf (pos + 8) s.span_id;
    Bytes.set_int64_le buf (pos + 16) s.parent_id;
    Bytes.set_int64_le buf (pos + 24) s.t1_ns;
    Bytes.set_int64_le buf (pos + 32) s.t2_ns

  let decode_span buf ~pos =
    let avail = Bytes.length buf - pos in
    if avail < span_bytes then
      Error (Truncated { wanted = span_bytes; got = max 0 avail })
    else
      Ok
        {
          trace_id = Bytes.get_int64_le buf pos;
          span_id = Bytes.get_int64_le buf (pos + 8);
          parent_id = Bytes.get_int64_le buf (pos + 16);
          t1_ns = Bytes.get_int64_le buf (pos + 24);
          t2_ns = Bytes.get_int64_le buf (pos + 32);
        }

  (* --- batch envelope ---

     A [Batch] frame coalesces several complete v2 frames into one wire
     write: the envelope header's site field carries the inner-frame
     count and its length field the total size of the inner region; the
     payload is the inner frames back to back, each with its own header
     (and span block when flagged) carried unchanged.  Nesting is
     forbidden. *)

  let encode_batch_header buf ~pos ~count ~length =
    encode_header buf ~pos ~kind:Batch ~site:count ~length

  (* Decode the payload region of a batch envelope: [buf] is exactly the
     inner region, [count] the envelope's announced frame count.  Returns
     the inner frames newest-last as (header, span, payload offset); the
     payloads stay in [buf], so decoding allocates only the result list
     (bounded by [length / header_bytes]).  Every failure is typed: a
     short header/span/payload is [Truncated] against the region end, a
     nested envelope is [Bad_kind], and a region that parses clean but
     holds a different number of frames than announced is [Bad_count]. *)
  let decode_batch buf ~count =
    let limit = Bytes.length buf in
    let rec go off acc n =
      if off = limit then
        if n = count then Ok (List.rev acc)
        else Error (Bad_count { expected = count; got = n })
      else if limit - off < header_bytes then
        Error (Truncated { wanted = header_bytes; got = limit - off })
      else
        match decode_header buf ~pos:off with
        | Error e -> Error e
        | Ok h when h.kind = Batch -> Error (Bad_kind (kind_to_byte Batch))
        | Ok h ->
          let span_extra = if h.has_span then span_bytes else 0 in
          let body = off + header_bytes in
          if limit - body < span_extra then
            Error (Truncated { wanted = span_bytes; got = limit - body })
          else begin
            let span =
              if not h.has_span then None
              else
                match decode_span buf ~pos:body with
                | Ok s -> Some s
                | Error _ -> None (* unreachable: bounds checked above *)
            in
            let payload = body + span_extra in
            if limit - payload < h.length then
              Error (Truncated { wanted = h.length; got = limit - payload })
            else go (payload + h.length) ((h, span, payload) :: acc) (n + 1)
          end
    in
    go 0 [] 0
end
