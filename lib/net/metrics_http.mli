(** Polled HTTP scrape endpoint for live telemetry.

    Serves [GET /metrics] (Prometheus text exposition format 0.0.4) from
    a synchronous, single-threaded event loop: the listening socket is
    non-blocking and {!poll} — called by the driver between protocol
    steps — accepts and serves whatever scrapes are pending, then
    returns immediately.  There are no threads and no buffering of
    half-served connections; each request is answered completely under a
    per-socket timeout, [Connection: close].

    The body callback is invoked once per served scrape, so the endpoint
    always exposes the registry's state as of the most recent poll. *)

type t

val create : ?host:string -> ?port:int -> ?timeout:float -> unit -> t
(** Bind and listen.  [host] defaults to ["127.0.0.1"] (loopback only);
    [port] defaults to 0 — let the kernel pick, then read {!port}.
    [timeout] (default 1.0 s) bounds each accepted socket's reads and
    writes, so a stalled client delays the caller at most briefly.
    Raises [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val served : t -> int
(** Requests answered so far (any status). *)

val poll : t -> body:(unit -> string) -> unit
(** Accept and serve every pending connection, then return.  Returns
    immediately when none are waiting.  [body] produces the exposition
    text for [GET /metrics] (see {!Wd_obs.Metrics.to_prometheus}); other
    targets get 404/405/400.  Per-connection I/O errors are swallowed —
    a dying scraper must not kill the monitored run. *)

val close : t -> unit
(** Stop listening.  Idempotent; {!poll} becomes a no-op. *)
