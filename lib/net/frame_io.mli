(** Blocking {!Wire.Frame} I/O over file descriptors, shared by the
    socket and TCP transport backends: exact reads/writes, one-buffer
    frame construction (plain and span-stamped), the [Reject] helper,
    and the fixed-layout [Stats] report both relays answer [Finish]
    with. *)

type site_report = {
  frames_received : int;  (** [Deliver] + [Request_up] frames seen *)
  bytes_received : int;  (** their total on-wire size *)
  frames_sent : int;  (** [Up] frames written *)
  bytes_sent : int;  (** their total on-wire size *)
}
(** A relay's own frame counters (handshake and teardown frames —
    [Hello]/[Welcome]/[Finish]/[Stats]/[Reject] — are not counted on
    either side, so these compare directly against the coordinator's
    {!Transport.wire_stats}). *)

val ignore_sigpipe : unit -> unit
(** Turn SIGPIPE into EPIPE for the current process (idempotent). *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Write exactly [len] bytes, looping over short writes. *)

val read_exact : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Read exactly [len] bytes; raises [End_of_file] on EOF. *)

val frame_buf :
  kind:Wire.Frame.kind -> site:int -> payload_len:int -> Bytes.t
(** One frame as one buffer: encoded header followed by a zeroed
    payload the caller may poke before writing. *)

val write_frame :
  Unix.file_descr -> kind:Wire.Frame.kind -> site:int -> payload_len:int -> unit
(** [write_all] of a [frame_buf] with a zeroed payload. *)

val spanned_buf :
  kind:Wire.Frame.kind ->
  site:int ->
  payload_len:int ->
  span:Wire.Frame.span ->
  Bytes.t
(** Like {!frame_buf} with the span flag set and the 40-byte span block
    encoded between header and payload. *)

val read_frame :
  ?spans:Wd_obs.Span.t ->
  Unix.file_descr ->
  (Wire.Frame.header * Wire.Frame.span option * Bytes.t, Wire.Frame.error)
  result
(** Read one frame: header, span block when announced, payload.  With
    [spans], header decoding is additionally timed into the
    ["frame.decode"] histogram.  Raises [End_of_file] on a closed
    peer. *)

val frame_error : backend:string -> string -> Wire.Frame.error -> 'a
(** Raise [Failure] naming the backend, the operation and the typed
    decode error. *)

val set_timeouts : Unix.file_descr -> float -> unit
(** Arm SO_RCVTIMEO and SO_SNDTIMEO so every blocking operation on the
    descriptor is bounded. *)

val reject : Unix.file_descr -> string -> unit
(** Best-effort [Reject] frame carrying [reason]; write errors are
    swallowed (the peer may already be gone). *)

val stats_payload_len : int
(** Payload size of a [Stats] frame (4 int64 counters). *)

val send_stats : Unix.file_descr -> site:int -> site_report -> unit
(** Write the [Stats] frame a relay answers [Finish] with. *)

val decode_report : Bytes.t -> site_report
(** Parse a [Stats] payload (must be {!stats_payload_len} bytes). *)
