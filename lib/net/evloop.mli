(** A minimal readiness event loop for the TCP backend.

    Wraps [Unix.select] behind a registration interface so the one place
    that blocks on socket readiness is swappable for a [poll]/[epoll]
    implementation without touching callers.  All waits are bounded by a
    wall-clock {e deadline}, never a retry count — the flakiness class
    the PR 5 connect-retry hardening removed stays removed. *)

type t

val create : unit -> t

val add : t -> Unix.file_descr -> unit
(** Register [fd] for readability interest (idempotent). *)

val remove : t -> Unix.file_descr -> unit
(** Unregister [fd]; unknown descriptors are ignored. *)

val registered : t -> int
(** Number of registered descriptors. *)

val wait : t -> deadline:float -> Unix.file_descr list
(** Descriptors readable now, blocking until at least one is ready or
    the wall-clock [deadline] (as of [Unix.gettimeofday]) passes —
    whichever is first.  An expired deadline degrades to a non-blocking
    poll; with nothing registered the result is immediately []. *)

val wait_readable : Unix.file_descr -> deadline:float -> bool
(** One-shot readiness wait on a single descriptor. *)

val await_readable : Unix.file_descr -> deadline:float -> bool
(** Like {!wait_readable}, but re-polls after spurious wakeups until
    readable ([true]) or the deadline passes ([false]). *)
