type parent = Root | Agg of int

type t = {
  sites : int;
  site_parent : int array; (* length sites; aggregator id or -1 for root *)
  agg_parent : int array; (* length aggs; aggregator id or -1 for root *)
}

let sites t = t.sites
let aggs t = Array.length t.agg_parent
let is_flat t = aggs t = 0
let node_of_agg t j = t.sites + j

let parent_of_index i = if i < 0 then Root else Agg i

let site_parent t i =
  if i < 0 || i >= t.sites then invalid_arg "Topology.site_parent";
  parent_of_index t.site_parent.(i)

let agg_parent t j =
  if j < 0 || j >= aggs t then invalid_arg "Topology.agg_parent";
  parent_of_index t.agg_parent.(j)

let path_of_site t i =
  if i < 0 || i >= t.sites then invalid_arg "Topology.path_of_site";
  let rec up acc j =
    if j < 0 then List.rev acc else up (j :: acc) t.agg_parent.(j)
  in
  up [] t.site_parent.(i)

let depth t =
  let d = ref 0 in
  for i = 0 to t.sites - 1 do
    let hops = 1 + List.length (path_of_site t i) in
    if hops > !d then d := hops
  done;
  (* Aggregators with no sites below still count for down-path length. *)
  for j = 0 to aggs t - 1 do
    let rec up n j = if j < 0 then n else up (n + 1) t.agg_parent.(j) in
    let hops = up 1 j in
    if hops > !d then d := hops
  done;
  !d

let last_hop_nodes t =
  let acc = ref [] in
  for j = aggs t - 1 downto 0 do
    if t.agg_parent.(j) < 0 then acc := node_of_agg t j :: !acc
  done;
  for i = t.sites - 1 downto 0 do
    if t.site_parent.(i) < 0 then acc := i :: !acc
  done;
  !acc

let iter_sites_under t j f =
  for i = 0 to t.sites - 1 do
    if List.mem j (path_of_site t i) then f i
  done

let equal a b =
  a.sites = b.sites
  && a.site_parent = b.site_parent
  && a.agg_parent = b.agg_parent

(* ------------------------------------------------------------------ *)
(* Construction. *)

let flat ~sites =
  if sites < 0 then invalid_arg "Topology.flat: sites < 0";
  { sites; site_parent = Array.make sites (-1); agg_parent = [||] }

(* Validate that [agg_parent] is acyclic and every index in range.
   Returns an error message rather than raising so [of_spec] can relay
   it; constructors wrap it in [Invalid_argument]. *)
let check ~sites ~site_parent ~agg_parent =
  let a = Array.length agg_parent in
  let bad = ref None in
  Array.iteri
    (fun i p ->
      if p >= a || p < -1 then
        bad := Some (Printf.sprintf "site %d: parent a%d does not exist" i p))
    site_parent;
  Array.iteri
    (fun j p ->
      if p >= a || p < -1 then
        bad :=
          Some (Printf.sprintf "aggregator a%d: parent a%d does not exist" j p)
      else if p = j then
        bad := Some (Printf.sprintf "aggregator a%d: parent is itself" j))
    agg_parent;
  (match !bad with
  | Some _ -> ()
  | None ->
    (* Cycle check: walking up from any aggregator must reach the root
       within [a] steps. *)
    let j = ref 0 in
    while !bad = None && !j < a do
      let steps = ref 0 and at = ref !j in
      while !at >= 0 && !steps <= a do
        at := agg_parent.(!at);
        incr steps
      done;
      if !at >= 0 || !steps > a then
        bad := Some (Printf.sprintf "cycle through aggregator a%d" !j);
      incr j
    done);
  match !bad with
  | Some msg -> Error msg
  | None -> Ok { sites; site_parent; agg_parent }

let tree ~sites ~regions ?fanout () =
  if sites <= 0 then invalid_arg "Topology.tree: sites <= 0";
  if regions <= 0 then invalid_arg "Topology.tree: regions <= 0";
  if regions > sites then invalid_arg "Topology.tree: regions > sites";
  (match fanout with
  | Some f when f <= 1 -> invalid_arg "Topology.tree: fanout <= 1"
  | _ -> ());
  let block = (sites + regions - 1) / regions in
  let site_parent = Array.init sites (fun i -> i / block) in
  (* First layer: [regions] aggregators.  With a fanout, keep grouping
     consecutive aggregators of the top layer under fresh parents until
     the top layer fits under the root. *)
  let parents = ref [] in
  let next = ref regions in
  let layer_start = ref 0 and layer_len = ref regions in
  (match fanout with
  | None -> ()
  | Some f ->
    while !layer_len > f do
      let groups = (!layer_len + f - 1) / f in
      for idx = 0 to !layer_len - 1 do
        parents := (!layer_start + idx, !next + (idx / f)) :: !parents
      done;
      layer_start := !next;
      next := !next + groups;
      layer_len := groups
    done);
  let agg_parent = Array.make !next (-1) in
  List.iter (fun (child, parent) -> agg_parent.(child) <- parent) !parents;
  match check ~sites ~site_parent ~agg_parent with
  | Ok t -> t
  | Error msg -> invalid_arg ("Topology.tree: " ^ msg)

let random ~seed ~sites =
  if sites <= 0 then invalid_arg "Topology.random: sites <= 0";
  let rng = Wd_hashing.Rng.create seed in
  let a = 1 + Wd_hashing.Rng.int rng (max 1 (sites - 1)) in
  let site_parent = Array.init sites (fun _ -> Wd_hashing.Rng.int rng a) in
  let agg_parent =
    Array.init a (fun j ->
        (* Parent strictly above [j] or the root: acyclic by construction. *)
        let above = a - 1 - j in
        if above = 0 then -1
        else
          let pick = Wd_hashing.Rng.int rng (above + 1) in
          if pick = 0 then -1 else j + pick)
  in
  match check ~sites ~site_parent ~agg_parent with
  | Ok t -> t
  | Error msg -> invalid_arg ("Topology.random: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Specs.  Parse like fault plans: compact, comma-separated, typed
   errors via [result]. *)

let ( let* ) = Result.bind

let parse_int key s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not an integer: %S" key s)

let parse_tree ~sites opts =
  let* regions, fanout =
    List.fold_left
      (fun acc kv ->
        let* regions, fanout = acc in
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "bad option %S (want key=value)" kv)
        | Some i -> (
          let key = String.sub kv 0 i in
          let value = String.sub kv (i + 1) (String.length kv - i - 1) in
          match key with
          | "regions" ->
            let* v = parse_int key value in
            if v < 1 then Error "regions: must be >= 1"
            else Ok (Some v, fanout)
          | "fanout" ->
            let* v = parse_int key value in
            if v < 2 then Error "fanout: must be >= 2"
            else Ok (regions, Some v)
          | _ -> Error (Printf.sprintf "tree: unknown key %S" key)))
      (Ok (None, None))
      opts
  in
  match regions with
  | None -> Error "tree: missing regions=R"
  | Some r ->
    if r > sites then
      Error (Printf.sprintf "tree: regions=%d exceeds %d sites" r sites)
    else (
      match tree ~sites ~regions:r ?fanout () with
      | t -> Ok t
      | exception Invalid_argument msg -> Error msg)

(* Node names in edge lists: sN, aN, root. *)
let parse_node s =
  let sub () = String.sub s 1 (String.length s - 1) in
  if s = "root" then Ok `Root
  else if String.length s >= 2 && s.[0] = 's' then
    let* i = parse_int "site" (sub ()) in
    if i < 0 then Error (Printf.sprintf "bad site %S" s) else Ok (`Site i)
  else if String.length s >= 2 && s.[0] = 'a' then
    let* j = parse_int "aggregator" (sub ()) in
    if j < 0 then Error (Printf.sprintf "bad aggregator %S" s) else Ok (`Agg j)
  else Error (Printf.sprintf "bad node %S (want sN, aN, or root)" s)

let parse_edges ~sites clauses =
  let* pairs =
    List.fold_left
      (fun acc clause ->
        let* pairs = acc in
        match String.index_opt clause '>' with
        | None -> Error (Printf.sprintf "bad edge %S (want child>parent)" clause)
        | Some i ->
          let child = String.sub clause 0 i in
          let parent =
            String.sub clause (i + 1) (String.length clause - i - 1)
          in
          let* c = parse_node child in
          let* p = parse_node parent in
          let* () =
            match (c, p) with
            | `Root, _ -> Error "edges: root cannot be a child"
            | _, `Site i ->
              Error (Printf.sprintf "edges: site s%d cannot be a parent" i)
            | _ -> Ok ()
          in
          Ok ((c, p) :: pairs))
      (Ok []) clauses
  in
  let pairs = List.rev pairs in
  let max_agg = ref (-1) in
  List.iter
    (fun (c, p) ->
      (match c with `Agg j when j > !max_agg -> max_agg := j | _ -> ());
      match p with `Agg j when j > !max_agg -> max_agg := j | _ -> ())
    pairs;
  let a = !max_agg + 1 in
  let site_parent = Array.make sites min_int in
  let agg_parent = Array.make a min_int in
  let* () =
    List.fold_left
      (fun acc (c, p) ->
        let* () = acc in
        let p_idx = match p with `Root -> -1 | `Agg j -> j | `Site _ -> -1 in
        match c with
        | `Site i ->
          if i >= sites then
            Error (Printf.sprintf "edges: site s%d out of range (%d sites)" i sites)
          else if site_parent.(i) <> min_int then
            Error (Printf.sprintf "edges: site s%d has two parents" i)
          else (
            site_parent.(i) <- p_idx;
            Ok ())
        | `Agg j ->
          if agg_parent.(j) <> min_int then
            Error (Printf.sprintf "edges: aggregator a%d has two parents" j)
          else (
            agg_parent.(j) <- p_idx;
            Ok ())
        | `Root -> Ok ())
      (Ok ()) pairs
  in
  let* () =
    let missing = ref None in
    Array.iteri
      (fun i p -> if p = min_int && !missing = None then missing := Some i)
      site_parent;
    match !missing with
    | Some i -> Error (Printf.sprintf "edges: site s%d has no parent" i)
    | None -> Ok ()
  in
  let* () =
    let missing = ref None in
    Array.iteri
      (fun j p -> if p = min_int && !missing = None then missing := Some j)
      agg_parent;
    match !missing with
    | Some j ->
      Error
        (Printf.sprintf
           "edges: aggregator a%d has no parent (aggregator ids must be dense \
            and each must have one parent edge)"
           j)
    | None -> Ok ()
  in
  check ~sites ~site_parent ~agg_parent

let of_spec ~sites spec =
  if sites < 0 then Error "sites < 0"
  else
    let spec = String.trim spec in
    match String.index_opt spec ':' with
    | None -> (
      match spec with
      | "flat" | "star" -> Ok (flat ~sites)
      | "" -> Error "empty topology spec"
      | s -> Error (Printf.sprintf "unknown topology %S (want flat, tree:..., or edges:...)" s))
    | Some i -> (
      let form = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let clauses = String.split_on_char ',' rest in
      match form with
      | "tree" -> parse_tree ~sites clauses
      | "edges" -> parse_edges ~sites clauses
      | f -> Error (Printf.sprintf "unknown topology form %S (want tree or edges)" f))

let to_spec t =
  if is_flat t then "flat"
  else
    let buf = Buffer.create 64 in
    Buffer.add_string buf "edges:";
    let first = ref true in
    let emit child parent =
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf child;
      Buffer.add_char buf '>';
      Buffer.add_string buf parent
    in
    let name p = if p < 0 then "root" else Printf.sprintf "a%d" p in
    Array.iteri (fun i p -> emit (Printf.sprintf "s%d" i) (name p)) t.site_parent;
    Array.iteri (fun j p -> emit (Printf.sprintf "a%d" j) (name p)) t.agg_parent;
    Buffer.contents buf
