(** Multi-level tree topologies for the monitoring network.

    The paper's protocols deploy at CDN scale as trees: sites report to
    regional aggregators, aggregators merge their children's sketches
    and forward only what is new, and the root runs the coordinator.
    The seed networks were all flat site→coordinator stars; a topology
    makes the intermediate hops explicit so the {!Network} ledger can
    charge every edge a frame actually crosses.

    A topology is a static rooted tree over [sites] leaf sites and
    [aggs] intermediate aggregators.  Sites are leaves; every site's
    parent is either an aggregator or the root, every aggregator's
    parent likewise.  The flat star is the degenerate tree with zero
    aggregators, and behaves bit-identically to having no topology at
    all.

    Aggregators share the fault plan's crash machinery: aggregator [j]
    is addressed as node [sites + j] ({!node_of_agg}) in
    [crash=NODE:FROM:UNTIL] clauses, so a plan can take a regional
    aggregator down mid-run.  Aggregators hold only dedup memory (merged
    copies of what already passed through), so a crash loses no
    protocol state: in-flight contributions fail end-to-end and the
    sites retry, exactly as for a coordinator-link loss.

    Specs parse like fault plans, with typed [result] errors:
    - ["flat"] — the star (no aggregators);
    - ["tree:regions=R"] — one aggregator per region, sites split into
      [R] contiguous blocks, regions attached to the root;
    - ["tree:regions=R,fanout=F"] — as above, but layers of aggregators
      are recursively grouped [F] per parent until one layer fits under
      the root;
    - ["edges:s0>a0,s1>a0,a0>root"] — an explicit edge list.  Every
      site must have exactly one parent; aggregator ids must be dense
      ([a0..aN] all mentioned); the graph must be a tree. *)

type parent = Root | Agg of int
(** A node's parent: the coordinator itself, or aggregator [j]. *)

type t

val flat : sites:int -> t
(** The star: every site's parent is the root; no aggregators. *)

val tree : sites:int -> regions:int -> ?fanout:int -> unit -> t
(** [tree ~sites ~regions ()] splits sites into [regions] contiguous
    blocks, one aggregator each.  With [?fanout], aggregator layers are
    recursively grouped [fanout] per parent while a layer exceeds
    [fanout].  Raises [Invalid_argument] on [sites <= 0],
    [regions <= 0], [regions > sites], or [fanout <= 1]. *)

val of_spec : sites:int -> string -> (t, string) result
(** Parse a spec (see module doc).  All structural errors — unknown
    forms, bad counts, orphan sites, non-dense aggregator ids, cycles —
    come back as [Error], never an exception. *)

val to_spec : t -> string
(** Canonical spec; [of_spec ~sites (to_spec t)] reparses to an equal
    topology. *)

val random : seed:int -> sites:int -> t
(** A seeded random tree (for property tests): a random aggregator
    count in [[1, max 1 (sites-1)]], each site attached to a uniform
    aggregator, each aggregator attached to a strictly higher-numbered
    aggregator or the root — acyclic by construction. *)

val sites : t -> int
val aggs : t -> int
(** Number of intermediate aggregators ([0] for the flat star). *)

val is_flat : t -> bool
(** [true] iff there are no aggregators. *)

val depth : t -> int
(** Maximum number of edges from any site to the root ([1] for the
    star, [2] for a single aggregator layer, ...). *)

val site_parent : t -> int -> parent
val agg_parent : t -> int -> parent

val path_of_site : t -> int -> int list
(** [path_of_site t i] is the aggregators on site [i]'s route to the
    root, first hop first.  [[]] iff the site reports directly. *)

val node_of_agg : t -> int -> int
(** The fault-plan node id of aggregator [j]: [sites t + j]. *)

val last_hop_nodes : t -> int list
(** Node ids (site ids, plus [node_of_agg] ids) whose parent is the
    root — the edges over which bytes arrive at the coordinator. *)

val iter_sites_under : t -> int -> (int -> unit) -> unit
(** [iter_sites_under t j f] applies [f] to every site whose route to
    the root passes through aggregator [j]. *)

val equal : t -> t -> bool
